package repro_test

import (
	"testing"
	"time"

	"repro"
)

func TestSimReadWriteRoundtrip(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 5
	sim := repro.NewSim(topo, cfg)
	w := sim.Write("k", []byte("v"), repro.Quorum)
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	r := sim.Read("k", repro.Quorum)
	if r.Err != nil || string(r.Value) != "v" || r.Stale {
		t.Fatalf("read: %+v", r)
	}
	missing := sim.Read("nope", repro.One)
	if missing.Err != nil || missing.Exists {
		t.Fatalf("missing key: %+v", missing)
	}
}

func TestSimRunWorkloadWithHarmony(t *testing.T) {
	topo := repro.G5KTwoSites(8)
	cfg := repro.Defaults(topo)
	cfg.Seed = 6
	sim := repro.NewSim(topo, cfg)
	sess, ctl := sim.HarmonySession(0.05)
	m, err := sim.RunWorkload(repro.HeavyReadUpdate(1000), sess, 10000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops != 10000 {
		t.Errorf("ops = %d", m.Ops)
	}
	if m.StaleRate() > 0.075 {
		t.Errorf("stale rate %.3f above tolerance with margin", m.StaleRate())
	}
	if len(ctl.Journal()) == 0 {
		t.Error("controller never ran")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		topo := repro.EC2TwoAZ(6)
		cfg := repro.Defaults(topo)
		cfg.Seed = 7
		sim := repro.NewSim(topo, cfg)
		m, err := sim.RunWorkload(repro.WorkloadB(500), sim.StaticSession(repro.One, repro.One), 5000, 16)
		if err != nil {
			t.Fatal(err)
		}
		return m.Throughput(), m.StaleRate()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Errorf("same seed diverged: (%f,%f) vs (%f,%f)", t1, s1, t2, s2)
	}
}

func TestFacadeBehaviorPipeline(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 8
	sim := repro.NewSim(topo, cfg)
	col := sim.CollectTrace(0)

	sess := sim.StaticSession(repro.One, repro.One)
	if _, err := sim.RunWorkload(repro.WorkloadC(500), sess, 4000, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunWorkload(repro.MixWorkload(100, 0.5, 0, 0.99), sess, 4000, 16); err != nil {
		t.Fatal(err)
	}
	tl := repro.BuildTimeline(col.Trace(), 50*time.Millisecond)
	model, err := repro.BuildBehaviorModel(tl, repro.DefaultBehaviorOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(model.States) < 2 {
		t.Errorf("expected ≥2 states, got %d", len(model.States))
	}

	sim2 := repro.NewSim(topo, cfg)
	bsess, ctl := sim2.BehaviorSession(model)
	if _, err := sim2.RunWorkload(repro.WorkloadC(500), bsess, 4000, 16); err != nil {
		t.Fatal(err)
	}
	if len(ctl.Journal()) == 0 {
		t.Error("behavior session never decided")
	}
}

func TestLiveFacade(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 9
	lv := repro.NewLive(topo, cfg, 0.2)
	defer lv.Close()
	if w := lv.Write("k", []byte("v"), repro.Quorum); w.Err != nil {
		t.Fatal(w.Err)
	}
	if r := lv.Read("k", repro.One); r.Err != nil || string(r.Value) != "v" {
		t.Fatalf("live read: %+v", r)
	}
	sess, ctl := lv.AdaptiveSession(repro.NewHarmonyTuner(0.1, cfg.RF), 50*time.Millisecond)
	sess.Write("k2", []byte("x"))
	if r := sess.Read("k2"); r.Err != nil {
		t.Fatal(r.Err)
	}
	if ctl == nil {
		t.Fatal("no controller")
	}
}

func TestCountLevelClamp(t *testing.T) {
	if repro.Count(0) != repro.One || repro.Count(1) != repro.One {
		t.Error("Count must clamp to ONE")
	}
}
