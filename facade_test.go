package repro_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
)

func TestSimClientRoundtrip(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 5
	sim := repro.NewSim(topo, cfg)
	cli := sim.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()

	w := cli.Put(ctx, "k", []byte("v"))
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	r := cli.Get(ctx, "k")
	if r.Err != nil || string(r.Value) != "v" || r.Stale {
		t.Fatalf("read: %+v", r)
	}
	missing := cli.Get(ctx, "nope", repro.WithLevel(repro.One))
	if missing.Err != nil || missing.Exists {
		t.Fatalf("missing key: %+v", missing)
	}
	d := cli.Delete(ctx, "k")
	if d.Err != nil {
		t.Fatal(d.Err)
	}
	if r := cli.Get(ctx, "k"); r.Exists {
		t.Fatalf("deleted key still visible: %+v", r)
	}
}

func TestSimClientBatchOps(t *testing.T) {
	topo := repro.G5KTwoSites(8)
	cfg := repro.Defaults(topo)
	cfg.Seed = 12
	sim := repro.NewSim(topo, cfg)
	cli := sim.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()

	ops := []repro.PutOp{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: []byte("2")},
		{Key: "c", Value: []byte("3")},
	}
	for i, w := range cli.BatchPut(ctx, ops) {
		if w.Err != nil {
			t.Fatalf("batch put %d: %v", i, w.Err)
		}
	}
	rs := cli.BatchGet(ctx, []string{"a", "b", "c"})
	want := []string{"1", "2", "3"}
	for i, r := range rs {
		if r.Err != nil || string(r.Value) != want[i] {
			t.Fatalf("batch get %d: %+v", i, r)
		}
	}
	// Mixed put+delete batch with a per-op level override.
	mixed := cli.BatchPut(ctx, []repro.PutOp{
		{Key: "a", Delete: true},
		{Key: "d", Value: []byte("4")},
	}, repro.WithLevel(repro.All))
	for i, w := range mixed {
		if w.Err != nil {
			t.Fatalf("mixed batch %d: %v", i, w.Err)
		}
	}
	if r := cli.Get(ctx, "a"); r.Exists {
		t.Errorf("a survived batch delete: %+v", r)
	}
	if r := cli.Get(ctx, "d"); string(r.Value) != "4" {
		t.Errorf("d = %+v", r)
	}
}

func TestSimClientFuturesPipeline(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 13
	sim := repro.NewSim(topo, cfg)
	cli := sim.StaticClient(repro.One, repro.One)
	ctx := context.Background()

	// Issue several writes before waiting on any: the futures pipeline
	// through the store concurrently in virtual time.
	futs := []*repro.WriteFuture{
		cli.PutAsync(ctx, "f1", []byte("x")),
		cli.PutAsync(ctx, "f2", []byte("y")),
		cli.PutAsync(ctx, "f3", []byte("z")),
	}
	for i, f := range futs {
		if w := f.Wait(ctx); w.Err != nil {
			t.Fatalf("future %d: %v", i, w.Err)
		}
	}
	g := cli.GetAsync(ctx, "f2")
	if r := g.Wait(ctx); string(r.Value) != "y" {
		t.Fatalf("async get: %+v", r)
	}
	if !g.Ready() {
		t.Error("waited future not ready")
	}
}

func TestClientContextAndDeadline(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 14
	sim := repro.NewSim(topo, cfg)
	cli := sim.StaticClient(repro.Quorum, repro.Quorum)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if r := cli.Get(canceled, "k"); !errors.Is(r.Err, repro.ErrCanceled) {
		t.Errorf("canceled ctx: %+v", r)
	}
	// A 1 ns virtual deadline expires before any replica can answer.
	r := cli.Get(context.Background(), "k", repro.WithDeadline(time.Nanosecond))
	if !errors.Is(r.Err, repro.ErrDeadline) {
		t.Errorf("deadline: %+v", r)
	}
	// A generous deadline leaves the result untouched.
	cli.Put(context.Background(), "k", []byte("v"))
	ok := cli.Get(context.Background(), "k", repro.WithDeadline(time.Minute))
	if ok.Err != nil || string(ok.Value) != "v" {
		t.Errorf("deadline no-op: %+v", ok)
	}
}

func TestSimRunWorkloadWithHarmony(t *testing.T) {
	topo := repro.G5KTwoSites(8)
	cfg := repro.Defaults(topo)
	cfg.Seed = 6
	sim := repro.NewSim(topo, cfg)
	cli, ctl := sim.HarmonyClient(0.05)
	m, err := cli.Run(repro.HeavyReadUpdate(1000), repro.RunOptions{Ops: 10000, Threads: 32})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops != 10000 {
		t.Errorf("ops = %d", m.Ops)
	}
	if m.StaleRate() > 0.075 {
		t.Errorf("stale rate %.3f above tolerance with margin", m.StaleRate())
	}
	if len(ctl.Journal()) == 0 {
		t.Error("controller never ran")
	}
}

func TestSimRunBatchedWorkload(t *testing.T) {
	topo := repro.G5KTwoSites(8)
	cfg := repro.Defaults(topo)
	cfg.Seed = 16
	sim := repro.NewSim(topo, cfg)
	cli := sim.StaticClient(repro.Quorum, repro.Quorum)
	m, err := cli.Run(repro.HeavyReadUpdate(1000), repro.RunOptions{Ops: 8000, Threads: 16, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops != 8000 {
		t.Errorf("ops = %d", m.Ops)
	}

	// The same op count unbatched must need more virtual time: batches
	// amortize admission and round trips.
	sim2 := repro.NewSim(topo, cfg)
	cli2 := sim2.StaticClient(repro.Quorum, repro.Quorum)
	m2, err := cli2.Run(repro.HeavyReadUpdate(1000), repro.RunOptions{Ops: 8000, Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput() <= m2.Throughput() {
		t.Errorf("batched throughput %.0f not above unbatched %.0f", m.Throughput(), m2.Throughput())
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		topo := repro.EC2TwoAZ(6)
		cfg := repro.Defaults(topo)
		cfg.Seed = 7
		sim := repro.NewSim(topo, cfg)
		cli := sim.StaticClient(repro.One, repro.One)
		m, err := cli.Run(repro.WorkloadB(500), repro.RunOptions{Ops: 5000, Threads: 16})
		if err != nil {
			t.Fatal(err)
		}
		return m.Throughput(), m.StaleRate()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Errorf("same seed diverged: (%f,%f) vs (%f,%f)", t1, s1, t2, s2)
	}
}

func TestFacadeBehaviorPipeline(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 8
	sim := repro.NewSim(topo, cfg)
	col := sim.CollectTrace(0)

	cli := sim.StaticClient(repro.One, repro.One)
	if _, err := cli.Run(repro.WorkloadC(500), repro.RunOptions{Ops: 4000, Threads: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Run(repro.MixWorkload(100, 0.5, 0, 0.99), repro.RunOptions{Ops: 4000, Threads: 16}); err != nil {
		t.Fatal(err)
	}
	tl := repro.BuildTimeline(col.Trace(), 50*time.Millisecond)
	model, err := repro.BuildBehaviorModel(tl, repro.DefaultBehaviorOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(model.States) < 2 {
		t.Errorf("expected ≥2 states, got %d", len(model.States))
	}

	sim2 := repro.NewSim(topo, cfg)
	bcli, ctl := sim2.BehaviorClient(model)
	if _, err := bcli.Run(repro.WorkloadC(500), repro.RunOptions{Ops: 4000, Threads: 16}); err != nil {
		t.Fatal(err)
	}
	if len(ctl.Journal()) == 0 {
		t.Error("behavior session never decided")
	}
}

func TestLiveClient(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 9
	lv := repro.NewLive(topo, cfg, 0.2)
	defer lv.Close()
	ctx := context.Background()

	cli := lv.StaticClient(repro.Quorum, repro.One)
	if w := cli.Put(ctx, "k", []byte("v")); w.Err != nil {
		t.Fatal(w.Err)
	}
	if r := cli.Get(ctx, "k"); r.Err != nil || string(r.Value) != "v" {
		t.Fatalf("live read: %+v", r)
	}
	for i, w := range cli.BatchPut(ctx, []repro.PutOp{
		{Key: "b1", Value: []byte("x")},
		{Key: "b2", Value: []byte("y")},
	}) {
		if w.Err != nil {
			t.Fatalf("live batch put %d: %v", i, w.Err)
		}
	}
	rs := cli.BatchGet(ctx, []string{"b1", "b2"}, repro.WithLevel(repro.All))
	if string(rs[0].Value) != "x" || string(rs[1].Value) != "y" {
		t.Fatalf("live batch get: %+v", rs)
	}
	if d := cli.Delete(ctx, "b1"); d.Err != nil {
		t.Fatal(d.Err)
	}

	acli, ctl := lv.HarmonyClient(0.1, 50*time.Millisecond)
	acli.Put(ctx, "k2", []byte("x"))
	if r := acli.Get(ctx, "k2"); r.Err != nil {
		t.Fatal(r.Err)
	}
	if ctl == nil {
		t.Fatal("no controller")
	}
}

func TestCountLevelClamp(t *testing.T) {
	if repro.Count(0) != repro.One || repro.Count(1) != repro.One {
		t.Error("Count must clamp to ONE")
	}
}

// TestSimAutoscale drives sustained load at a cluster sitting at the
// provisioning floor and checks the facade-level autoscaler grows it,
// journaling its decisions.
func TestSimAutoscale(t *testing.T) {
	topo := repro.SingleDC(6)
	cfg := repro.Defaults(topo)
	cfg.Seed = 11
	cfg.InitialMembers = []repro.NodeID{0, 1, 2, 3}
	cfg.WarmupDuration = 200 * time.Millisecond
	cfg.AntiEntropyInterval = 500 * time.Millisecond
	s := repro.NewSim(topo, cfg)

	asc := s.Autoscale(repro.AutoscaleConfig{
		// A deliberately small node model: the observed load (smeared
		// over the monitor's 10 s default window) still exceeds what the
		// model says the floor can carry, so the controller must grow.
		NodeType: repro.NodeType{
			Name: "sim", HourlyCost: 0.24, Concurrency: 1,
			ReadServiceMean:  2 * time.Millisecond,
			WriteServiceMean: 2 * time.Millisecond,
		},
		Constraints: repro.ProvisionConstraints{
			RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, FailureBudget: 1,
		},
		Pricing:  repro.EC2Pricing2013().PerSecond(),
		Interval: 100 * time.Millisecond,
		Cooldown: 400 * time.Millisecond,
	})
	cli := s.StaticClient(repro.One, repro.One)
	if _, err := cli.Run(repro.WorkloadB(500), repro.RunOptions{Ops: 40_000, Threads: 64}); err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Second)
	asc.Stop()

	if len(asc.Log()) == 0 {
		t.Fatal("no autoscale decisions journaled")
	}
	joined := false
	for _, d := range asc.Log() {
		if d.Action == repro.AutoscaleJoin {
			joined = true
		}
	}
	if !joined {
		t.Fatalf("sustained load at the floor never scaled up; members=%d", len(s.Members()))
	}
	if got := len(s.Members()); got <= 4 {
		t.Fatalf("members = %d after autoscaling, want > 4", got)
	}
}
