package repro

import (
	"context"
	"sync"
	"time"

	"repro/internal/kv"
)

// PutOp is one item of a multi-key batch mutation; Delete issues a
// tombstone for Key instead of storing Value.
type PutOp = kv.BatchOp

// Store-level errors surfaced through result Err fields.
var (
	// ErrTimeout: the store did not complete the operation in time.
	ErrTimeout = kv.ErrTimeout
	// ErrUnavailable: fewer live replicas than the level requires.
	ErrUnavailable = kv.ErrUnavailable
	// ErrDeadline: the per-operation deadline (WithDeadline) expired.
	ErrDeadline = kv.ErrDeadline
	// ErrCanceled: the operation's context was canceled before issue.
	ErrCanceled = kv.ErrCanceled
)

// Client is the unified, context-aware surface both backends implement:
// the simulated deployment (Sim.Client) and the live deployment
// (Live.Client) serve the identical API, so examples, tools, workload
// drivers and embedding services are written once. Blocking forms return
// when the result is in; *Async forms return a Future immediately.
// Multi-key Batch operations are coordinated as true batches in the
// store — one coordinator admission and at most one request message per
// replica per batch — not as N independent operations.
//
// Per-operation options override the session's consistency level
// (WithLevel) and bound client-visible completion time (WithDeadline).
// A canceled context fails the operation with ErrCanceled before issue;
// cancellation mid-wait returns a result carrying the context's error
// while the underlying operation completes in the store regardless.
//
// Clients are membership-transparent: operations issued across a
// Join/Decommission (Sim.Join, Live.Join, ...) route by whatever
// placement is current when the coordinator admits them, and in-flight
// operations drain on the old owners — callers never observe a
// membership change except as shifting replica sets.
type Client interface {
	Get(ctx context.Context, key string, opts ...OpOption) ReadResult
	Put(ctx context.Context, key string, value []byte, opts ...OpOption) WriteResult
	Delete(ctx context.Context, key string, opts ...OpOption) WriteResult
	BatchGet(ctx context.Context, keys []string, opts ...OpOption) []ReadResult
	BatchPut(ctx context.Context, ops []PutOp, opts ...OpOption) []WriteResult

	GetAsync(ctx context.Context, key string, opts ...OpOption) *ReadFuture
	PutAsync(ctx context.Context, key string, value []byte, opts ...OpOption) *WriteFuture
	DeleteAsync(ctx context.Context, key string, opts ...OpOption) *WriteFuture
	BatchGetAsync(ctx context.Context, keys []string, opts ...OpOption) *BatchGetFuture
	BatchPutAsync(ctx context.Context, ops []PutOp, opts ...OpOption) *BatchPutFuture

	// Run drives a YCSB-style workload through this client's session to
	// completion and returns its metrics.
	Run(w Workload, o RunOptions) (*Metrics, error)
	// Session exposes the underlying session, the seam for wrappers
	// (freshness enforcement, tracing) that predate the Client API.
	Session() Session
}

// RunOptions parameterizes Client.Run. The zero value runs 10k
// operations on 16 closed-loop threads with the workload's records
// preloaded.
type RunOptions struct {
	Ops          uint64  // operations to run; 0 means 10 000
	Threads      int     // closed-loop client threads; 0 means 16
	BatchSize    int     // >1 dispatches multi-key batches of this size
	WarmupOps    uint64  // completions ignored before measurement starts
	OpenLoopRate float64 // ops/s Poisson arrivals; 0 selects closed loop
	NoPreload    bool    // skip loading the workload's records first
}

// opOptions is the resolved per-operation option set.
type opOptions struct {
	level    *Level
	deadline time.Duration
}

// OpOption customizes one client operation.
type OpOption func(*opOptions)

// WithLevel overrides the session's consistency level for this
// operation (for a batch: for every item of the batch).
func WithLevel(l Level) OpOption { return func(o *opOptions) { o.level = &l } }

// WithDeadline fails the operation with ErrDeadline if the result has
// not arrived within d of issue — virtual time on the simulated
// backend, wall time live. The store may still complete the operation
// afterwards; the deadline bounds the client-visible wait only.
func WithDeadline(d time.Duration) OpOption { return func(o *opOptions) { o.deadline = d } }

func resolveOpts(opts []OpOption) opOptions {
	var o opOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Future is a pending operation result. Wait blocks until the result is
// available (on the simulated backend it advances virtual time on the
// caller's goroutine); Ready polls without blocking.
type Future[T any] struct {
	mu       sync.Mutex //repolint:allow simpure futures resolve from live-engine goroutines; the sim path never contends
	resolved bool
	res      T
	done     chan struct{}
	pump     func() bool   // sim backends: advance virtual time one event
	fail     func(error) T // builds the result for cancellation paths
}

// The future types the Client API returns.
type (
	ReadFuture     = Future[ReadResult]
	WriteFuture    = Future[WriteResult]
	BatchGetFuture = Future[[]ReadResult]
	BatchPutFuture = Future[[]WriteResult]
)

func newFuture[T any](pump func() bool, fail func(error) T) *Future[T] {
	return &Future[T]{done: make(chan struct{}), pump: pump, fail: fail}
}

// resolve publishes the result; the first resolution wins.
func (f *Future[T]) resolve(v T) {
	f.mu.Lock() //repolint:allow simpure guards cross-goroutine resolution under the live engine
	defer f.mu.Unlock()
	if f.resolved {
		return
	}
	f.resolved = true
	f.res = v
	close(f.done)
}

// Ready reports whether Wait would return immediately.
func (f *Future[T]) Ready() bool {
	f.mu.Lock() //repolint:allow simpure guards cross-goroutine resolution under the live engine
	defer f.mu.Unlock()
	return f.resolved
}

// Wait blocks until the result is available or ctx is done; on
// cancellation it returns a result carrying ctx.Err() while the store
// finishes the operation in the background.
func (f *Future[T]) Wait(ctx context.Context) T {
	if f.pump != nil {
		// Simulated backend: single-threaded, so drive the engine here.
		for {
			f.mu.Lock() //repolint:allow simpure guards cross-goroutine resolution under the live engine
			resolved, res := f.resolved, f.res
			f.mu.Unlock() //repolint:allow simpure guards cross-goroutine resolution under the live engine
			if resolved {
				return res
			}
			if err := ctx.Err(); err != nil {
				return f.fail(err)
			}
			if !f.pump() {
				// The engine drained without resolving — impossible while
				// the store's client-side timeout timer is pending, so
				// this is purely a backstop.
				return f.fail(ErrTimeout)
			}
		}
	}
	select {
	case <-f.done:
		return f.res
	case <-ctx.Done():
		return f.fail(ctx.Err())
	}
}

// failedBatchReads builds per-item failure results for a whole batch.
func failedBatchReads(keys []string, err error) []ReadResult {
	out := make([]ReadResult, len(keys))
	for i, k := range keys {
		out[i] = ReadResult{Err: err, Key: k}
	}
	return out
}

func failedBatchWrites(ops []PutOp, err error) []WriteResult {
	out := make([]WriteResult, len(ops))
	for i, op := range ops {
		out[i] = WriteResult{Err: err, Key: op.Key}
	}
	return out
}
