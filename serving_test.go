package repro_test

import (
	"context"
	"net"
	"testing"

	"repro"
)

// reservePort grabs an ephemeral localhost port. The tiny window between
// closing the probe listener and the mesh binding it is acceptable in
// tests.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestServingMeshTwoProcesses runs a 3-node cluster split across two
// serving engines meshed over localhost TCP — the multi-process
// deployment in miniature. Writes coordinated on one side must be
// readable on the other at QUORUM: the write quorum's remote ack and the
// read quorum's remote fetch both cross the mesh.
func TestServingMeshTwoProcesses(t *testing.T) {
	topo := repro.SingleDC(3)
	cfg := repro.ServingDefaults(topo)
	addrA, addrB := reservePort(t), reservePort(t)

	type result struct {
		d   *repro.Live
		err error
	}
	// Side A serves node 0. Its constructor blocks dialing side B, so it
	// runs on its own goroutine while B constructs here.
	aCh := make(chan result, 1)
	go func() {
		d, err := repro.NewServing(topo, cfg, repro.ServeConfig{
			Local:      []repro.NodeID{0},
			MeshListen: addrA,
			Peers:      map[repro.NodeID]string{1: addrB, 2: addrB},
		})
		aCh <- result{d, err}
	}()
	db, err := repro.NewServing(topo, cfg, repro.ServeConfig{
		Local:      []repro.NodeID{1, 2},
		MeshListen: addrB,
		Peers:      map[repro.NodeID]string{0: addrA},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Engine.Close() })
	ra := <-aCh
	if ra.err != nil {
		t.Fatal(ra.err)
	}
	da := ra.d
	t.Cleanup(func() { da.Engine.Close() })

	ctx := context.Background()
	ca := da.StaticClient(repro.Quorum, repro.Quorum)
	cb := db.StaticClient(repro.Quorum, repro.Quorum)

	// Write through A (coordinator node 0 needs a remote ack), read
	// through B (coordinator 1 or 2 may need node 0's copy).
	if r := ca.Put(ctx, "mesh-key", []byte("v1")); r.Err != nil {
		t.Fatalf("Put via A: %v", r.Err)
	}
	if r := cb.Get(ctx, "mesh-key"); r.Err != nil || string(r.Value) != "v1" {
		t.Fatalf("Get via B: %+v", r)
	}
	// Overwrite through B, read back through A.
	if r := cb.Put(ctx, "mesh-key", []byte("v2")); r.Err != nil {
		t.Fatalf("Put via B: %v", r.Err)
	}
	if r := ca.Get(ctx, "mesh-key"); r.Err != nil || string(r.Value) != "v2" {
		t.Fatalf("Get via A: %+v", r)
	}

	// Batches cross the mesh too.
	puts := []repro.PutOp{
		{Key: "mk1", Value: []byte("b1")},
		{Key: "mk2", Value: []byte("b2")},
		{Key: "mk3", Value: []byte("b3")},
	}
	for i, r := range ca.BatchPut(ctx, puts) {
		if r.Err != nil {
			t.Fatalf("BatchPut op %d: %v", i, r.Err)
		}
	}
	got := cb.BatchGet(ctx, []string{"mk1", "mk2", "mk3"})
	for i, want := range []string{"b1", "b2", "b3"} {
		if got[i].Err != nil || string(got[i].Value) != want {
			t.Fatalf("BatchGet %d: %+v, want %q", i, got[i], want)
		}
	}

	// Deletes propagate as tombstones.
	if r := cb.Delete(ctx, "mesh-key"); r.Err != nil {
		t.Fatalf("Delete via B: %v", r.Err)
	}
	if r := ca.Get(ctx, "mesh-key"); r.Err != nil || r.Exists {
		t.Fatalf("Get after delete via A: %+v", r)
	}
}

// TestServingSingleProcess pins the degenerate deployment: no mesh, all
// nodes local, operations complete synchronously on the direct run
// queue.
func TestServingSingleProcess(t *testing.T) {
	topo := repro.SingleDC(3)
	d, err := repro.NewServing(topo, repro.ServingDefaults(topo), repro.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Engine.Close() })
	cli := d.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()
	if r := cli.Put(ctx, "k", []byte("v")); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := cli.Get(ctx, "k"); r.Err != nil || string(r.Value) != "v" {
		t.Fatalf("Get: %+v", r)
	}
}

// TestServingRejectsGossipMesh pins the documented limitation: gossip
// membership dissemination is in-process only for now.
func TestServingRejectsGossipMesh(t *testing.T) {
	topo := repro.SingleDC(3)
	cfg := repro.ServingDefaults(topo)
	cfg.Gossip = true
	_, err := repro.NewServing(topo, cfg, repro.ServeConfig{
		Local:      []repro.NodeID{0},
		MeshListen: "127.0.0.1:0",
		Peers:      map[repro.NodeID]string{1: "127.0.0.1:1"},
	})
	if err == nil {
		t.Fatal("gossip + mesh accepted; want an error")
	}
}
