package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
)

// driveScript runs a fixed operation script through any Client and
// returns a result transcript: the unified API must make the simulated
// and live backends indistinguishable to the caller.
func driveScript(t *testing.T, cli repro.Client) []string {
	t.Helper()
	ctx := context.Background()
	var log []string
	record := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }

	for i := 0; i < 8; i++ {
		w := cli.Put(ctx, fmt.Sprintf("user%02d", i), []byte(fmt.Sprintf("profile-%d", i)))
		record("put user%02d err=%v", i, w.Err)
	}
	ops := make([]repro.PutOp, 6)
	for i := range ops {
		ops[i] = repro.PutOp{Key: fmt.Sprintf("item%02d", i), Value: []byte(fmt.Sprintf("sku-%d", i))}
	}
	for i, w := range cli.BatchPut(ctx, ops) {
		record("batchput item%02d err=%v", i, w.Err)
	}
	for i := 0; i < 8; i++ {
		r := cli.Get(ctx, fmt.Sprintf("user%02d", i))
		record("get user%02d val=%q exists=%v stale=%v err=%v", i, r.Value, r.Exists, r.Stale, r.Err)
	}
	keys := []string{"item00", "item01", "item02", "item03", "item04", "item05", "ghost"}
	for _, r := range cli.BatchGet(ctx, keys) {
		record("batchget %s val=%q exists=%v stale=%v err=%v", r.Key, r.Value, r.Exists, r.Stale, r.Err)
	}
	cli.Delete(ctx, "user03")
	for i, w := range cli.BatchPut(ctx, []repro.PutOp{{Key: "item01", Delete: true}, {Key: "item06", Value: []byte("sku-6")}}) {
		record("mixed %d err=%v", i, w.Err)
	}
	for _, k := range []string{"user03", "item01", "item06"} {
		r := cli.Get(ctx, k)
		record("reget %s val=%q exists=%v stale=%v err=%v", k, r.Value, r.Exists, r.Stale, r.Err)
	}
	return log
}

// TestSimLiveParity drives the identical script through both backends
// on the same topology, seed and levels. At QUORUM/QUORUM (R+W > RF)
// every read is fresh, so the transcripts — values, existence, oracle
// staleness verdicts, errors — must agree exactly, and both oracles
// must account a zero stale rate.
func TestSimLiveParity(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 77

	sim := repro.NewSim(topo, cfg)
	simLog := driveScript(t, sim.StaticClient(repro.Quorum, repro.Quorum))

	lv := repro.NewLive(topo, cfg, 0.05) // latency-scaled 20× faster
	defer lv.Close()
	liveLog := driveScript(t, lv.StaticClient(repro.Quorum, repro.Quorum))

	if len(simLog) != len(liveLog) {
		t.Fatalf("transcript lengths differ: sim %d vs live %d", len(simLog), len(liveLog))
	}
	for i := range simLog {
		if simLog[i] != liveLog[i] {
			t.Errorf("transcript %d differs:\n  sim:  %s\n  live: %s", i, simLog[i], liveLog[i])
		}
	}
	if sr := sim.StaleRate(); sr != 0 {
		t.Errorf("sim oracle stale rate = %f, want 0 at quorum", sr)
	}
	if sr := lv.StaleRate(); sr != 0 {
		t.Errorf("live oracle stale rate = %f, want 0 at quorum", sr)
	}
}

// TestSimLiveWorkloadParity runs the same workload definition through
// both backends' unified clients and checks the stale-rate accounting
// agrees: the metrics' stale/fresh tallies must cover every successful
// read, and at QUORUM both backends must serve only fresh reads.
func TestSimLiveWorkloadParity(t *testing.T) {
	topo := repro.SingleDC(4)
	cfg := repro.Defaults(topo)
	cfg.Seed = 78
	w := repro.HeavyReadUpdate(200)
	opts := repro.RunOptions{Ops: 1500, Threads: 8, BatchSize: 4}

	check := func(name string, m *repro.Metrics) {
		t.Helper()
		if m.Ops != opts.Ops {
			t.Errorf("%s: ops = %d, want %d", name, m.Ops, opts.Ops)
		}
		successful := m.StaleReads + m.FreshReads
		failed := m.Timeouts + m.Unavailable
		if successful+failed != m.Reads {
			t.Errorf("%s: stale accounting gap: %d stale+fresh, %d failed, %d reads",
				name, successful, failed, m.Reads)
		}
		if m.StaleReads != 0 {
			t.Errorf("%s: %d stale reads at quorum", name, m.StaleReads)
		}
	}

	sim := repro.NewSim(topo, cfg)
	sm, err := sim.StaticClient(repro.Quorum, repro.Quorum).Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	check("sim", sm)

	lv := repro.NewLive(topo, cfg, 0.02)
	defer lv.Close()
	lm, err := lv.StaticClient(repro.Quorum, repro.Quorum).Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	check("live", lm)
}
