package repro_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro"
)

// determinismHash pins the full transcript of the scenario below, as
// produced by the seed implementation of the discrete-event core. The
// fast-path overhaul (indexed event heap, pooled delivery, message
// pooling) must preserve bit-for-bit determinism: the same seed must keep
// producing this exact transcript. If a deliberate semantic change
// invalidates the hash, regenerate it with
//
//	REPRO_PRINT_TRANSCRIPT=1 go test -run TestDeterminismTranscript -v
//
// and update the constant with an explanation in the commit message.
const determinismHash = "bc0df52f3d0db485e52d95bae68b90dc07d25bdbb8c49608c0e36004e03d91ed"

// determinismScenario drives a mixed workload that crosses every hot
// path: single reads/writes/deletes at levels ONE and QUORUM, multi-key
// batches, a node failure and recovery mid-run (hints, timeouts), and
// anti-entropy rounds with load shedding armed. It returns the op-by-op
// transcript plus the closing accounting lines.
func determinismScenario(seed uint64) []string {
	topo := repro.SingleDC(5)
	cfg := repro.Defaults(topo)
	cfg.Seed = seed
	cfg.AntiEntropyInterval = 150 * time.Millisecond
	cfg.AntiEntropySample = 16
	cfg.HintReplayInterval = 200 * time.Millisecond
	cfg.MutationShed = 250 * time.Millisecond
	cfg.DetectionDelay = 50 * time.Millisecond

	s := repro.NewSim(topo, cfg)
	one := s.StaticClient(repro.One, repro.One)
	quorum := s.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()

	var log []string
	record := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }
	key := func(i int) string { return fmt.Sprintf("det%04d", i) }

	s.Preload(48, func(i uint64) string { return key(int(i)) }, []byte("seed-value"))

	recordRead := func(tag string, r repro.ReadResult) {
		record("%s get %s val=%q exists=%v stale=%v err=%v lat=%v ver=%v",
			tag, r.Key, r.Value, r.Exists, r.Stale, r.Err, r.Latency, r.Version)
	}
	recordWrite := func(tag string, w repro.WriteResult) {
		record("%s put %s err=%v lat=%v acked=%d ver=%v", tag, w.Key, w.Err, w.Latency, w.Acked, w.Version)
	}

	for round := 0; round < 6; round++ {
		cli, tag := one, "one"
		if round%2 == 1 {
			cli, tag = quorum, "quorum"
		}
		for i := 0; i < 8; i++ {
			k := key((round*7 + i*3) % 48)
			recordWrite(tag, cli.Put(ctx, k, []byte(fmt.Sprintf("r%d-i%d", round, i))))
			recordRead(tag, cli.Get(ctx, key((round*5+i)%48)))
		}
		ops := make([]repro.PutOp, 5)
		for i := range ops {
			ops[i] = repro.PutOp{Key: key((round*11 + i) % 48), Value: []byte(fmt.Sprintf("b%d-%d", round, i))}
		}
		ops[4].Delete = true
		for i, w := range cli.BatchPut(ctx, ops) {
			record("%s batchput %d %s err=%v acked=%d", tag, i, w.Key, w.Err, w.Acked)
		}
		keys := make([]string, 6)
		for i := range keys {
			keys[i] = key((round*13 + i) % 48)
		}
		for _, r := range cli.BatchGet(ctx, keys) {
			record("%s batchget %s val=%q exists=%v stale=%v err=%v", tag, r.Key, r.Value, r.Exists, r.Stale, r.Err)
		}

		switch round {
		case 1:
			s.Cluster.Fail(2) // transport drops its traffic at once
		case 3:
			s.Cluster.Recover(2)
		case 4:
			recordWrite("del", quorum.Delete(ctx, key(3)))
		}
		// Let timers, anti-entropy, hint replay and the failure detector
		// make progress between rounds.
		s.Run(300 * time.Millisecond)
	}
	// Drain to full quiescence so late acks, repairs and AE rounds are in
	// the accounting; timers (AE/hint ticks reschedule forever) are cut by
	// a horizon instead of Run-to-empty.
	s.Run(5 * time.Second)

	u := s.Cluster.Usage()
	m := s.Transport.Meter()
	record("stale-rate %.9f", s.StaleRate())
	record("usage busy=%v repReads=%d repWrites=%d coordOps=%d repairs=%d hintsReplayed=%d hintsDropped=%d ae=%d dropped=%d stored=%d",
		u.BusyTime, u.ReplicaReads, u.ReplicaWrites, u.CoordOps, u.ReadRepairs,
		u.HintsReplayed, u.HintsDropped, u.AERounds, u.DroppedMuts, u.StoredBytes)
	record("meter msgs=%v bytes=%v dropped=%d", m.Messages, m.Bytes, m.Dropped)
	record("engine events=%d now=%v", s.Engine.Events(), s.Now())
	return log
}

// hashTranscript hashes the pinned portion of the transcript: every
// op-by-op result plus the stale-rate, usage and meter accounting. The
// "engine ..." line is excluded — fired-event counts may legitimately
// shrink when the optimization reclaims canceled timers instead of firing
// them as no-ops — but it still participates in the same-seed double-run
// comparison.
func hashTranscript(lines []string) string {
	h := sha256.New()
	for _, l := range lines {
		if strings.HasPrefix(l, "engine ") {
			continue
		}
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestDeterminismTranscript asserts the simulator is a pure function of
// the seed across the fast-path refactor: two in-process runs must agree
// line for line, and the transcript must match the hash captured on the
// pre-optimization implementation.
func TestDeterminismTranscript(t *testing.T) {
	first := determinismScenario(42)
	second := determinismScenario(42)
	if len(first) != len(second) {
		t.Fatalf("same-seed runs differ in length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same-seed runs diverge at line %d:\n  a: %s\n  b: %s", i, first[i], second[i])
		}
	}
	got := hashTranscript(first)
	if os.Getenv("REPRO_PRINT_TRANSCRIPT") != "" {
		for _, l := range first {
			t.Log(l)
		}
		t.Logf("transcript hash: %s", got)
	}
	if got != determinismHash {
		t.Errorf("transcript hash = %s, want %s (the optimization changed observable behaviour; "+
			"rerun with REPRO_PRINT_TRANSCRIPT=1 to diff transcripts)", got, determinismHash)
	}
}

// crashDeterminismHashMem pins the transcript of the crash/restart
// scenario below on the default MemEngine, captured on the tree that
// introduced Cluster.Crash/Restart (PR 3). Same regeneration protocol as
// determinismHash, with -run TestDeterminismCrashRestart.
const crashDeterminismHashMem = "cf7ce4b70038e29e11fe96398e68aaa7c2c1eea2885e2fc28b67e2baa8c818aa"

// crashDeterminismHashLSM pins the same scenario on the LSM engine
// (WAL replay + run reload on restart are part of the transcript).
const crashDeterminismHashLSM = "ccb322473dba01fb73c56853c4d2d75cf6bce17eed3caa2a40e6641cae851eb4"

// crashDeterminismScenario is determinismScenario's sibling for the
// crash/restart path: a replica crashes mid-run (losing volatile state),
// writes keep flowing (hinted for it), it restarts (the LSM engine
// replays its WAL) and catches up through hint replay and anti-entropy.
// The transcript logs every op plus the recovery stats and the closing
// accounting.
func crashDeterminismScenario(seed uint64, lsm bool) []string {
	topo := repro.SingleDC(5)
	cfg := repro.Defaults(topo)
	cfg.Seed = seed
	cfg.AntiEntropyInterval = 150 * time.Millisecond
	cfg.AntiEntropySample = 16
	cfg.HintReplayInterval = 200 * time.Millisecond
	cfg.DetectionDelay = 50 * time.Millisecond
	if lsm {
		cfg.Engine = repro.EngineLSM
		cfg.FlushLimit = 768   // force runs and compactions at toy scale
		cfg.MaxRuns = 2        // compact aggressively
		cfg.WALSyncBytes = 320 // crashes lose a real tail
	}

	s := repro.NewSim(topo, cfg)
	cli := s.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()

	var log []string
	record := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }
	key := func(i int) string { return fmt.Sprintf("crash%04d", i) }

	s.Preload(32, func(i uint64) string { return key(int(i)) }, []byte("seed-value"))

	const victim = repro.NodeID(1)
	for round := 0; round < 6; round++ {
		for i := 0; i < 10; i++ {
			k := key((round*9 + i*5) % 32)
			w := cli.Put(ctx, k, []byte(fmt.Sprintf("r%d-i%d", round, i)))
			record("put %s err=%v acked=%d ver=%v", w.Key, w.Err, w.Acked, w.Version)
			r := cli.Get(ctx, key((round*3+i)%32))
			record("get %s val=%q exists=%v stale=%v err=%v ver=%v", r.Key, r.Value, r.Exists, r.Stale, r.Err, r.Version)
		}
		switch round {
		case 1:
			s.Cluster.Crash(victim)
			record("crash node=%d", victim)
		case 3:
			rs := s.Cluster.Restart(victim)
			record("restart node=%d runs=%d runEntries=%d walRecords=%d torn=%v keys=%d",
				victim, rs.RunsLoaded, rs.RunEntries, rs.WALRecords, rs.TornTail, rs.Keys)
		}
		s.Run(300 * time.Millisecond)
	}
	s.Run(5 * time.Second)

	u := s.Cluster.Usage()
	record("stale-rate %.9f", s.StaleRate())
	record("usage busy=%v repReads=%d repWrites=%d coordOps=%d repairs=%d hintsReplayed=%d ae=%d stored=%d",
		u.BusyTime, u.ReplicaReads, u.ReplicaWrites, u.CoordOps, u.ReadRepairs,
		u.HintsReplayed, u.AERounds, u.StoredBytes)
	record("durability crashes=%d replays=%d walBytes=%d walSyncs=%d lost=%d compactions=%d",
		u.Crashes, u.WALReplays, u.WALBytes, u.WALSyncs, u.LostWALRecords, u.Compactions)
	return log
}

// TestDeterminismCrashRestart asserts the crash/restart path is a pure
// function of the seed on BOTH engines: two in-process runs must agree
// line for line, and the transcripts must match the hashes pinned when
// Crash/Restart was introduced.
func TestDeterminismCrashRestart(t *testing.T) {
	for _, tc := range []struct {
		name string
		lsm  bool
		want string
	}{
		{"mem", false, crashDeterminismHashMem},
		{"lsm", true, crashDeterminismHashLSM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := crashDeterminismScenario(42, tc.lsm)
			second := crashDeterminismScenario(42, tc.lsm)
			if len(first) != len(second) {
				t.Fatalf("same-seed runs differ in length: %d vs %d", len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("same-seed runs diverge at line %d:\n  a: %s\n  b: %s", i, first[i], second[i])
				}
			}
			got := hashTranscript(first)
			if os.Getenv("REPRO_PRINT_TRANSCRIPT") != "" {
				for _, l := range first {
					t.Log(l)
				}
				t.Logf("transcript hash: %s", got)
			}
			if got != tc.want {
				t.Errorf("transcript hash = %s, want %s (rerun with REPRO_PRINT_TRANSCRIPT=1 to diff)", got, tc.want)
			}
		})
	}
}

// membershipDeterminismHashMem pins the transcript of the elastic
// membership scenario below on the default MemEngine, captured on the
// tree that introduced Join/Decommission (PR 4). Same regeneration
// protocol as determinismHash, with -run TestDeterminismMembership.
const membershipDeterminismHashMem = "11b96301c186139d25242d53490c566a64e6122d5c17cbd02c44077c598f759e"

// membershipDeterminismHashLSM pins the same scenario on the LSM engine
// (snapshot streaming walks sealed runs there).
const membershipDeterminismHashLSM = "6aefdb042e0e9825c553e0890b2136193207b37311542a6f503e0cee7a1b370f"

// membershipDeterminismScenario exercises the elastic-membership paths
// end to end: a node joins via snapshot streaming and warms up, a
// replica crashes and restarts through the warming state, and a founding
// member decommissions by streaming its ownership out — all under
// Quorum traffic with anti-entropy, hint replay and the failure detector
// armed. Keys vary their prefix so the small key set still spreads over
// the ring. The transcript logs every op, every membership transition
// and the closing accounting.
func membershipDeterminismScenario(seed uint64, lsm bool) []string {
	topo := repro.SingleDC(6)
	cfg := repro.Defaults(topo)
	cfg.Seed = seed
	cfg.InitialMembers = []repro.NodeID{0, 1, 2, 3}
	cfg.WarmupDuration = 400 * time.Millisecond
	cfg.StreamChunkBytes = 512 // several chunks per stream at toy scale
	cfg.AntiEntropyInterval = 150 * time.Millisecond
	cfg.AntiEntropySample = 16
	cfg.HintReplayInterval = 200 * time.Millisecond
	cfg.DetectionDelay = 50 * time.Millisecond
	if lsm {
		cfg.Engine = repro.EngineLSM
		cfg.FlushLimit = 768
		cfg.MaxRuns = 2
		cfg.WALSyncBytes = 320
	}

	s := repro.NewSim(topo, cfg)
	cli := s.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()

	var log []string
	record := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }
	key := func(i int) string { return fmt.Sprintf("%03d-elastic", i) }

	s.Preload(40, func(i uint64) string { return key(int(i)) }, []byte("seed-value"))

	states := func() string {
		var b strings.Builder
		for id := repro.NodeID(0); int(id) < topo.N(); id++ {
			fmt.Fprintf(&b, "%d=%v ", id, s.State(id))
		}
		return strings.TrimSpace(b.String())
	}
	for round := 0; round < 8; round++ {
		for i := 0; i < 8; i++ {
			k := key((round*9 + i*5) % 40)
			w := cli.Put(ctx, k, []byte(fmt.Sprintf("r%d-i%d", round, i)))
			record("put %s err=%v acked=%d ver=%v", w.Key, w.Err, w.Acked, w.Version)
			r := cli.Get(ctx, key((round*3+i)%40))
			record("get %s val=%q exists=%v stale=%v err=%v ver=%v", r.Key, r.Value, r.Exists, r.Stale, r.Err, r.Version)
		}
		switch round {
		case 1:
			s.Join(4)
			record("join node=4")
		case 3:
			s.Cluster.Crash(1)
			record("crash node=1")
		case 4:
			rs := s.Cluster.Restart(1)
			record("restart node=1 runs=%d walRecords=%d torn=%v keys=%d",
				rs.RunsLoaded, rs.WALRecords, rs.TornTail, rs.Keys)
		case 5:
			s.Decommission(0)
			record("decommission node=0")
		}
		s.Run(300 * time.Millisecond)
		record("round %d members=%v states: %s", round, s.Members(), states())
	}
	s.Run(5 * time.Second)

	u := s.Cluster.Usage()
	record("stale-rate %.9f", s.StaleRate())
	record("usage busy=%v repReads=%d repWrites=%d coordOps=%d repairs=%d hintsReplayed=%d hintsDropped=%d ae=%d stored=%d",
		u.BusyTime, u.ReplicaReads, u.ReplicaWrites, u.CoordOps, u.ReadRepairs,
		u.HintsReplayed, u.HintsDropped, u.AERounds, u.StoredBytes)
	record("membership joins=%d decommissions=%d chunks=%d cellsOut=%d bytesOut=%d cellsIn=%d",
		u.Joins, u.Decommissions, u.StreamChunks, u.StreamedCells, u.StreamedBytes, u.StreamInCells)
	record("durability crashes=%d replays=%d lost=%d", u.Crashes, u.WALReplays, u.LostWALRecords)
	return log
}

// TestDeterminismMembership asserts the elastic-membership paths are a
// pure function of the seed on BOTH engines, pinned by hash like the
// crash/restart scenario.
func TestDeterminismMembership(t *testing.T) {
	for _, tc := range []struct {
		name string
		lsm  bool
		want string
	}{
		{"mem", false, membershipDeterminismHashMem},
		{"lsm", true, membershipDeterminismHashLSM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := membershipDeterminismScenario(42, tc.lsm)
			second := membershipDeterminismScenario(42, tc.lsm)
			if len(first) != len(second) {
				t.Fatalf("same-seed runs differ in length: %d vs %d", len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("same-seed runs diverge at line %d:\n  a: %s\n  b: %s", i, first[i], second[i])
				}
			}
			got := hashTranscript(first)
			if os.Getenv("REPRO_PRINT_TRANSCRIPT") != "" {
				for _, l := range first {
					t.Log(l)
				}
				t.Logf("transcript hash: %s", got)
			}
			if got != tc.want {
				t.Errorf("transcript hash = %s, want %s (rerun with REPRO_PRINT_TRANSCRIPT=1 to diff)", got, tc.want)
			}
		})
	}
}

// gossipDeterminismHashMem pins the transcript of the gossip-membership
// scenario below on the default MemEngine, captured on the tree that
// introduced SWIM dissemination (PR 7). Same regeneration protocol as
// determinismHash, with -run TestDeterminismGossip.
const gossipDeterminismHashMem = "b8504218bc75c298db0955fb8cd03a8532d052dd27a2580e561ddfee07f23465"

// gossipDeterminismHashLSM pins the same scenario on the LSM engine.
const gossipDeterminismHashLSM = "e5e7ba7cd91eb1310934fffe53f6413e9b07f81e65a0107b9df751e40eaa636b"

// gossipDeterminismScenario exercises the SWIM membership paths end to
// end: a node joins and the ring event spreads view-by-view (stale
// coordinators recover through the notOwner fallback), a member fails
// and every peer's local detector suspects it and ages the suspicion
// into a death verdict, the member recovers and the ping/ack refutation
// handshake resurrects it, and a founding member decommissions with the
// Left rumor spreading the same way — all under Quorum traffic with
// anti-entropy, hint replay and the per-node probe timers armed. The
// transcript logs every op, the per-round view agreement and the gossip
// accounting.
func gossipDeterminismScenario(seed uint64, lsm bool) []string {
	topo := repro.SingleDC(6)
	cfg := repro.Defaults(topo)
	cfg.Seed = seed
	cfg.InitialMembers = []repro.NodeID{0, 1, 2, 3}
	cfg.WarmupDuration = 400 * time.Millisecond
	cfg.StreamChunkBytes = 512
	cfg.AntiEntropyInterval = 150 * time.Millisecond
	cfg.AntiEntropySample = 16
	cfg.HintReplayInterval = 200 * time.Millisecond
	cfg.DetectionDelay = 50 * time.Millisecond
	cfg.Gossip = true
	cfg.GossipInterval = 100 * time.Millisecond // converge within a round at toy scale
	if lsm {
		cfg.Engine = repro.EngineLSM
		cfg.FlushLimit = 768
		cfg.MaxRuns = 2
		cfg.WALSyncBytes = 320
	}

	s := repro.NewSim(topo, cfg)
	cli := s.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()

	var log []string
	record := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }
	key := func(i int) string { return fmt.Sprintf("%03d-gossip", i) }

	s.Preload(40, func(i uint64) string { return key(int(i)) }, []byte("seed-value"))

	for round := 0; round < 8; round++ {
		for i := 0; i < 8; i++ {
			k := key((round*9 + i*5) % 40)
			w := cli.Put(ctx, k, []byte(fmt.Sprintf("r%d-i%d", round, i)))
			record("put %s err=%v acked=%d ver=%v", w.Key, w.Err, w.Acked, w.Version)
			r := cli.Get(ctx, key((round*3+i)%40))
			record("get %s val=%q exists=%v stale=%v err=%v ver=%v", r.Key, r.Value, r.Exists, r.Stale, r.Err, r.Version)
		}
		switch round {
		case 1:
			s.Join(4)
			record("join node=4")
		case 2:
			s.Cluster.Crash(2) // gossip state survives, probe timers re-arm at restart
			record("crash node=2")
		case 3:
			s.Cluster.Fail(1)
			record("fail node=1")
		case 4:
			rs := s.Cluster.Restart(2)
			record("restart node=2 runs=%d walRecords=%d torn=%v keys=%d",
				rs.RunsLoaded, rs.WALRecords, rs.TornTail, rs.Keys)
		case 5:
			s.Cluster.Recover(1)
			record("recover node=1")
		case 6:
			s.Decommission(0)
			record("decommission node=0")
		}
		s.Run(300 * time.Millisecond)
		record("round %d members=%v agreement=%.3f converged=%v",
			round, s.Members(), s.ViewAgreement(), s.MembershipConverged())
	}
	s.Run(5 * time.Second)

	u := s.Cluster.Usage()
	record("stale-rate %.9f", s.StaleRate())
	record("usage busy=%v repReads=%d repWrites=%d coordOps=%d repairs=%d hintsReplayed=%d ae=%d stored=%d",
		u.BusyTime, u.ReplicaReads, u.ReplicaWrites, u.CoordOps, u.ReadRepairs,
		u.HintsReplayed, u.AERounds, u.StoredBytes)
	record("gossip rounds=%d suspicions=%d dead=%d events=%d refusals=%d wrongOwnerRetries=%d warmViolations=%d",
		u.GossipRounds, u.GossipSuspicions, u.GossipDeadDeclared, u.GossipEvents,
		u.NotOwnerReplies, u.WrongOwnerRetries, u.WarmViolations)
	record("membership joins=%d decommissions=%d agreement=%.3f", u.Joins, u.Decommissions, s.ViewAgreement())
	return log
}

// TestDeterminismGossip asserts the SWIM membership paths are a pure
// function of the seed on BOTH engines, pinned by hash like the other
// scenarios.
func TestDeterminismGossip(t *testing.T) {
	for _, tc := range []struct {
		name string
		lsm  bool
		want string
	}{
		{"mem", false, gossipDeterminismHashMem},
		{"lsm", true, gossipDeterminismHashLSM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := gossipDeterminismScenario(42, tc.lsm)
			second := gossipDeterminismScenario(42, tc.lsm)
			if len(first) != len(second) {
				t.Fatalf("same-seed runs differ in length: %d vs %d", len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("same-seed runs diverge at line %d:\n  a: %s\n  b: %s", i, first[i], second[i])
				}
			}
			got := hashTranscript(first)
			if os.Getenv("REPRO_PRINT_TRANSCRIPT") != "" {
				for _, l := range first {
					t.Log(l)
				}
				t.Logf("transcript hash: %s", got)
			}
			if got != tc.want {
				t.Errorf("transcript hash = %s, want %s (rerun with REPRO_PRINT_TRANSCRIPT=1 to diff)", got, tc.want)
			}
		})
	}
}

// hotCacheDeterminismHashMem pins the transcript of the hot-key cache
// scenario below on the default MemEngine, captured on the tree that
// introduced the freshness-bounded coordinator read cache (PR 8). Same
// regeneration protocol as determinismHash, with -run
// TestDeterminismHotCache.
const hotCacheDeterminismHashMem = "c266558e5c195793f530b731ad892a45b9181b0f20e9905449e46ad3939ae80a"

// hotCacheDeterminismHashLSM pins the same scenario on the LSM engine.
const hotCacheDeterminismHashLSM = "c1beb9edce5e063cd1baae06c7b04477cd1eb50d925a0b8f27992344fabf7423"

// hotCacheDeterminismScenario exercises the hot-key cache paths end to
// end: skewed ONE reads hammer a four-key head until the tracker
// promotes it and the cache starts answering in the coordinator,
// interleaved writes invalidate entries and re-tighten the per-key
// freshness bounds, a membership flip (join mid-run, decommission late)
// drops every node's cache at the placement flip, and a failure plus
// recovery exercises the crash-path drop — all with anti-entropy, hint
// replay and the failure detector armed. The transcript logs every op
// with its cached flag, the per-round hot set, and the closing cache
// accounting.
func hotCacheDeterminismScenario(seed uint64, lsm bool) []string {
	topo := repro.SingleDC(6)
	cfg := repro.Defaults(topo)
	cfg.Seed = seed
	cfg.InitialMembers = []repro.NodeID{0, 1, 2, 3}
	cfg.WarmupDuration = 400 * time.Millisecond
	cfg.StreamChunkBytes = 512
	cfg.AntiEntropyInterval = 150 * time.Millisecond
	cfg.AntiEntropySample = 16
	cfg.HintReplayInterval = 200 * time.Millisecond
	cfg.DetectionDelay = 50 * time.Millisecond
	cfg.HotCache = true
	cfg.HotSetSize = 4
	cfg.HotSetEvalOps = 32 // promote within a round at toy scale
	cfg.HotPromoteShare = 0.05
	if lsm {
		cfg.Engine = repro.EngineLSM
		cfg.FlushLimit = 768
		cfg.MaxRuns = 2
		cfg.WALSyncBytes = 320
	}

	s := repro.NewSim(topo, cfg)
	one := s.StaticClient(repro.One, repro.One)
	quorum := s.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()

	var log []string
	record := func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) }
	key := func(i int) string { return fmt.Sprintf("%03d-hot", i) }

	s.Preload(40, func(i uint64) string { return key(int(i)) }, []byte("seed-value"))

	for round := 0; round < 8; round++ {
		for i := 0; i < 12; i++ {
			// Three reads in four land on the four-key head; ONE reads
			// are cacheable, the interleaved QUORUM read must bypass.
			// The head shifts by four keys halfway through the run so
			// demotion hysteresis swaps the tracked set.
			k := key(i%4 + 4*(round/4))
			if i%4 == 3 {
				k = key((round*7 + i) % 40)
			}
			cli, tag := one, "one"
			if i%6 == 5 {
				cli, tag = quorum, "quorum"
			}
			r := cli.Get(ctx, k)
			record("%s get %s val=%q exists=%v stale=%v cached=%v err=%v ver=%v",
				tag, r.Key, r.Value, r.Exists, r.Stale, r.Cached, r.Err, r.Version)
			if i%3 == 0 {
				wk := key((round + i) % 5) // overlaps the head: invalidations
				w := one.Put(ctx, wk, []byte(fmt.Sprintf("r%d-i%d", round, i)))
				record("put %s err=%v acked=%d ver=%v", w.Key, w.Err, w.Acked, w.Version)
			}
		}
		switch round {
		case 2:
			s.Join(4)
			record("join node=4")
		case 4:
			s.Cluster.Crash(1) // volatile state — including the cache — is lost
			record("crash node=1")
		case 5:
			rs := s.Cluster.Restart(1)
			record("restart node=1 runs=%d walRecords=%d torn=%v keys=%d",
				rs.RunsLoaded, rs.WALRecords, rs.TornTail, rs.Keys)
		case 6:
			s.Decommission(0)
			record("decommission node=0")
		}
		s.Run(300 * time.Millisecond)
		record("round %d members=%v hot=%v", round, s.Members(), s.HotKeys())
	}
	s.Run(5 * time.Second)

	u := s.Cluster.Usage()
	record("stale-rate %.9f", s.StaleRate())
	record("usage busy=%v repReads=%d repWrites=%d coordOps=%d repairs=%d hintsReplayed=%d ae=%d stored=%d",
		u.BusyTime, u.ReplicaReads, u.ReplicaWrites, u.CoordOps, u.ReadRepairs,
		u.HintsReplayed, u.AERounds, u.StoredBytes)
	record("durability crashes=%d replays=%d lost=%d", u.Crashes, u.WALReplays, u.LostWALRecords)
	record("cache hits=%d misses=%d fills=%d invalidations=%d expired=%d ringEvicted=%d staleServed=%d",
		u.CacheHits, u.CacheMisses, u.CacheFills, u.CacheInvalidations,
		u.CacheExpired, u.CacheRingEvicted, u.CacheStaleServed)
	record("hotset promotions=%d demotions=%d now=%d", u.HotPromotions, u.HotDemotions, u.HotKeysNow)
	return log
}

// TestDeterminismHotCache asserts the hot-key cache paths are a pure
// function of the seed on BOTH engines, pinned by hash like the other
// scenarios — and that the cache actually engaged (the hash would
// otherwise pin a vacuous scenario).
func TestDeterminismHotCache(t *testing.T) {
	for _, tc := range []struct {
		name string
		lsm  bool
		want string
	}{
		{"mem", false, hotCacheDeterminismHashMem},
		{"lsm", true, hotCacheDeterminismHashLSM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := hotCacheDeterminismScenario(42, tc.lsm)
			second := hotCacheDeterminismScenario(42, tc.lsm)
			if len(first) != len(second) {
				t.Fatalf("same-seed runs differ in length: %d vs %d", len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("same-seed runs diverge at line %d:\n  a: %s\n  b: %s", i, first[i], second[i])
				}
			}
			var engaged bool
			for _, l := range first {
				if strings.HasPrefix(l, "cache hits=") && !strings.HasPrefix(l, "cache hits=0 ") {
					engaged = true
				}
			}
			if !engaged {
				t.Error("scenario produced no cache hits; the pinned transcript is vacuous")
			}
			got := hashTranscript(first)
			if os.Getenv("REPRO_PRINT_TRANSCRIPT") != "" {
				for _, l := range first {
					t.Log(l)
				}
				t.Logf("transcript hash: %s", got)
			}
			if got != tc.want {
				t.Errorf("transcript hash = %s, want %s (rerun with REPRO_PRINT_TRANSCRIPT=1 to diff)", got, tc.want)
			}
		})
	}
}

// TestDeterminismAcrossSeeds sanity-checks that the transcript actually
// depends on the seed (the hash is not vacuous).
func TestDeterminismAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if hashTranscript(determinismScenario(42)) == hashTranscript(determinismScenario(43)) {
		t.Fatal("different seeds produced identical transcripts")
	}
}
