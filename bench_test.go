// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV) plus the extension and ablation studies DESIGN.md
// indexes. Each benchmark runs the corresponding experiment at a reduced
// scale (same topologies, mixes and client pressure; fewer operations)
// and reports the headline quantities as benchmark metrics. Run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured numbers. The cmd/ tools
// run the same experiments at arbitrary scales with full tables.
package repro_test

import (
	"os"
	"testing"

	"repro"
	"repro/internal/experiments"
)

// benchScale trades fidelity for bench runtime; platform minimums keep
// the closed loop meaningful (see Platform.Scaled). The PR-2 fast-path
// overhaul made the event core ~3× faster, which paid for raising the
// experiment benches from 0.004 toward paper fidelity.
const benchScale = 0.01

// perfScale is the fixed scale of the perf-tracking benchmark
// (BenchmarkExpAHarmony and cmd/benchreport): it stays at the original
// 0.004 so wall-clock numbers remain comparable across PRs even when
// benchScale moves.
const perfScale = 0.004

// verbose mirrors -v: render the full experiment tables to stderr.
func render(b *testing.B, t *experiments.Table) {
	b.Helper()
	if testing.Verbose() {
		t.Render(os.Stderr)
	}
}

// BenchmarkExpAHarmony times one end-to-end Harmony run (the unit of
// work every experiment table repeats): wall-clock per run is the
// simulator-throughput headline the performance work tracks, with the
// virtual-ops-per-wall-second rate reported alongside.
func BenchmarkExpAHarmony(b *testing.B) {
	p := experiments.G5KHarmony().Scaled(perfScale)
	var ops uint64
	for i := 0; i < b.N; i++ {
		res := experiments.Run(experiments.RunSpec{
			Platform: p,
			Tuner:    repro.NewHarmonyTuner(0.20, p.RF),
			Seed:     uint64(i + 1),
		})
		ops += res.Metrics.Ops
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(ops)/secs, "vops/s")
	}
}

// BenchmarkFig1ModelValidation regenerates the Figure-1 model check:
// predicted vs measured stale-read rate on a controlled single-key
// workload. Reported metric: mean absolute prediction error.
func BenchmarkFig1ModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, table := experiments.RunFig1Validation(uint64(i + 1))
		render(b, table)
		var absErr float64
		for _, r := range rows {
			d := r.Predicted - r.Measured
			if d < 0 {
				d = -d
			}
			absErr += d
		}
		b.ReportMetric(absErr/float64(len(rows)), "meanAbsErr")
	}
}

// benchExpA shares the §IV-A comparison between the two platforms.
func benchExpA(b *testing.B, p experiments.Platform, tolerances []float64) {
	for i := 0; i < b.N; i++ {
		rows, table := experiments.RunExpA(p.Scaled(benchScale), tolerances, uint64(i+1))
		render(b, table)
		eventual, strong, harmony := rows[0], rows[1], rows[2]
		b.ReportMetric(harmony.Throughput/strong.Throughput, "thrVsStrong")
		if eventual.StaleRate > 0 {
			b.ReportMetric(1-harmony.StaleRate/eventual.StaleRate, "staleCutVsEventual")
		}
		b.ReportMetric(100*harmony.StaleRate, "harmonyStale%")
	}
}

// BenchmarkExpA_Grid5000 regenerates §IV-A on the 84-node Grid'5000
// preset (paper: stale −~80% vs eventual, throughput up to +45% vs
// strong).
func BenchmarkExpA_Grid5000(b *testing.B) {
	benchExpA(b, experiments.G5KHarmony(), []float64{0.20, 0.40})
}

// BenchmarkExpA_EC2 regenerates §IV-A on the 20-VM EC2 preset.
func BenchmarkExpA_EC2(b *testing.B) {
	benchExpA(b, experiments.EC2Harmony(), []float64{0.40, 0.60})
}

// BenchmarkExpB_CostPerLevel regenerates the §IV-B cost-vs-level table
// (paper: ONE cuts the bill up to 48% vs ALL; QUORUM 13%; 21% fresh reads
// at ONE).
func BenchmarkExpB_CostPerLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, table := experiments.RunExpB1(experiments.EC2Cost().Scaled(benchScale), uint64(i+1))
		render(b, table)
		one, quorum := rows[0], rows[len(rows)/2]
		b.ReportMetric(100*(1-one.RelToAll), "oneCut%VsAll")
		b.ReportMetric(100*(1-quorum.RelToAll), "quorumCut%VsAll")
		b.ReportMetric(100*(1-one.StaleRate), "oneFresh%")
	}
}

// BenchmarkExpB_EfficiencyMetric regenerates the §IV-B efficiency samples
// (paper: most-efficient levels keep staleness under 20%).
func BenchmarkExpB_EfficiencyMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples, table := experiments.RunExpB2Metric(experiments.EC2Cost().Scaled(benchScale), uint64(i+1))
		render(b, table)
		worst := 0.0
		for _, s := range samples {
			if s.Best && s.StaleRate > worst {
				worst = s.StaleRate
			}
		}
		b.ReportMetric(100*worst, "worstEfficientStale%")
	}
}

// BenchmarkExpC_Bismar regenerates the §IV-B Bismar comparison (paper:
// −31% cost vs static QUORUM at 3.5% stale reads).
func BenchmarkExpC_Bismar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, table := experiments.RunExpC(experiments.G5KCost(), benchScale, uint64(i+1))
		render(b, table)
		for _, r := range rows {
			if r.Approach == "bismar" {
				b.ReportMetric(100*(1-r.RelToQuorum), "costCut%VsQuorum")
				b.ReportMetric(100*r.StaleRate, "bismarStale%")
			}
		}
	}
}

// BenchmarkExt_PowerPerLevel regenerates the §V power study.
func BenchmarkExt_PowerPerLevel(b *testing.B) {
	p := experiments.EC2Harmony()
	p.Threads = 64
	for i := 0; i < b.N; i++ {
		table := experiments.RunExtPower(p.Scaled(benchScale), uint64(i+1))
		render(b, table)
	}
}

// BenchmarkExt_Provisioning regenerates the §V provisioning study.
func BenchmarkExt_Provisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table := experiments.RunExtProvisioning(uint64(i + 1))
		render(b, table)
	}
}

// BenchmarkExt_FreshnessDeadlines regenerates the §V bounded-staleness
// study.
func BenchmarkExt_FreshnessDeadlines(b *testing.B) {
	p := experiments.EC2Harmony()
	p.Threads = 64
	for i := 0; i < b.N; i++ {
		table := experiments.RunExtFreshness(p.Scaled(benchScale), uint64(i+1))
		render(b, table)
	}
}

// BenchmarkAblationDigestReads measures the traffic cut of digest reads.
func BenchmarkAblationDigestReads(b *testing.B) {
	p := experiments.EC2Cost()
	p.Threads = 64
	for i := 0; i < b.N; i++ {
		results, table := experiments.RunAblationDigestReads(p.Scaled(benchScale), uint64(i+1))
		render(b, table)
		withBytes := float64(results[0].Traffic.TotalBytes()) / float64(results[0].Metrics.Ops)
		without := float64(results[1].Traffic.TotalBytes()) / float64(results[1].Metrics.Ops)
		if without > 0 {
			b.ReportMetric(withBytes/without, "bytesRatioDigest")
		}
	}
}

// BenchmarkAblationReadRepair measures read repair's staleness effect.
func BenchmarkAblationReadRepair(b *testing.B) {
	p := experiments.EC2Harmony()
	p.Threads = 64
	for i := 0; i < b.N; i++ {
		table := experiments.RunAblationReadRepair(p.Scaled(benchScale), uint64(i+1))
		render(b, table)
	}
}

// BenchmarkAblationMonitorWindow sweeps the monitoring window.
func BenchmarkAblationMonitorWindow(b *testing.B) {
	p := experiments.G5KHarmony()
	for i := 0; i < b.N; i++ {
		table := experiments.RunAblationMonitorWindow(p.Scaled(benchScale), uint64(i+1))
		render(b, table)
	}
}

// BenchmarkAblationBillingGranularity contrasts hourly and per-second
// instance billing on the Exp-B1 usages.
func BenchmarkAblationBillingGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.RunExpB1(experiments.EC2Cost().Scaled(benchScale), uint64(i+1))
		table := experiments.RunAblationBillingGranularity(rows)
		render(b, table)
	}
}

// BenchmarkAblationPerKeyRates compares the aggregate estimator with the
// per-key refinement.
func BenchmarkAblationPerKeyRates(b *testing.B) {
	p := experiments.G5KHarmony()
	for i := 0; i < b.N; i++ {
		results, table := experiments.RunAblationPerKeyRates(p.Scaled(benchScale), 0.20, uint64(i+1))
		render(b, table)
		b.ReportMetric(results[0].AvgReadK, "aggAvgK")
		b.ReportMetric(results[1].AvgReadK, "perKeyAvgK")
	}
}

// BenchmarkAblationTargetPolicy compares snitch-like closest reads with
// uniform random replica choice.
func BenchmarkAblationTargetPolicy(b *testing.B) {
	p := experiments.G5KHarmony()
	for i := 0; i < b.N; i++ {
		table := experiments.RunAblationTargetPolicy(p.Scaled(benchScale), uint64(i+1))
		render(b, table)
	}
}
