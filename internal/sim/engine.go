// Package sim implements the deterministic discrete-event engine that
// drives all simulated experiments. Virtual time is a time.Duration since
// the start of the simulation; events scheduled at equal times fire in
// scheduling order, so a run is a pure function of the seed and the
// initial event set.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/stats"
)

// event is a scheduled callback.
type event struct {
	at       time.Duration
	seq      uint64 // tie-breaker: FIFO among equal times
	fn       func()
	index    int // heap index, -1 once popped
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be stopped before it
// fires.
type Timer struct{ ev *event }

// Stop cancels the timer; it reports whether the callback had not yet run
// (and now never will).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index == -1 {
		return false
	}
	t.ev.canceled = true
	return true
}

// Engine is a discrete-event scheduler. It is not safe for concurrent use;
// all interaction happens from event callbacks or from the goroutine
// calling Run.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	rng     *stats.Source
	stopped bool
	fired   uint64
}

// New returns an engine whose randomness derives entirely from seed.
func New(seed uint64) *Engine {
	return &Engine{rng: stats.NewSource(seed)}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// RNG returns the engine's root random source; components should derive
// their own sub-streams from it.
func (e *Engine) RNG() *stats.Source { return e.rng }

// Events reports how many events have fired so far.
func (e *Engine) Events() uint64 { return e.fired }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay of virtual time and returns a stoppable
// handle. A negative delay panics: the past is immutable in a
// discrete-event world.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: scheduling %v in the past", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t.
func (e *Engine) ScheduleAt(t time.Duration, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// Step fires the next event; it reports false when the queue is empty or
// the engine is stopped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ t, then advances the clock to t.
// Events scheduled for later remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// Stop halts the engine; Run and RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
