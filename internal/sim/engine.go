// Package sim implements the deterministic discrete-event engine that
// drives all simulated experiments. Virtual time is a time.Duration since
// the start of the simulation; events scheduled at equal times fire in
// scheduling order, so a run is a pure function of the seed and the
// initial event set.
//
// The scheduler is built for throughput: callbacks live in a value-typed
// slab recycled through a free list, ordered by an index-based 4-ary heap
// whose entries carry their own (time, seq) keys, so the steady-state
// Schedule/fire cycle performs zero heap allocations and comparisons
// never touch the slab. Timer handles stay valid across slot reuse via
// generation counters.
package sim

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// event is a callback slot in the engine's slab. Exactly one of fn or cb
// is set: fn is the general closure form, cb+arg the allocation-free form
// used by pooled delivery paths (netsim).
type event struct {
	fn       func()
	cb       func(uint32)
	arg      uint32
	gen      uint32 // bumped on slot release; stale Timers see a mismatch
	nextFree int32
	pos      int32 // index of this slot's entry in the heap while queued
}

// heapEntry is one queued event: the ordering key lives here so heap
// comparisons stay within the (compact, cache-resident) heap array.
type heapEntry struct {
	at   time.Duration
	seq  uint64 // tie-breaker: FIFO among equal times
	slot int32
}

func (a heapEntry) before(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

const noIndex = int32(-1)

// Timer is a handle to a scheduled event that can be stopped before it
// fires. The zero Timer is inert.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Stop cancels the timer; it reports whether the callback had not yet run
// (and now never will). The event is removed from the heap immediately:
// a canceled guard timer far in the virtual future must not deepen the
// heap every hot-path operation pays to push and pop.
func (t Timer) Stop() bool {
	e := t.eng
	if e == nil {
		return false
	}
	ev := &e.events[t.slot]
	if ev.gen != t.gen {
		return false
	}
	e.removeAt(ev.pos)
	e.release(t.slot)
	return true
}

// Engine is a discrete-event scheduler. It is not safe for concurrent use;
// all interaction happens from event callbacks or from the goroutine
// calling Run.
type Engine struct {
	now      time.Duration
	events   []event     // slab; heap entries index into it
	heap     []heapEntry // 4-ary min-heap ordered by (at, seq)
	freeHead int32
	seq      uint64
	rng      *stats.Source
	stopped  bool
	fired    uint64
}

// New returns an engine whose randomness derives entirely from seed.
func New(seed uint64) *Engine {
	return &Engine{rng: stats.NewSource(seed), freeHead: noIndex}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// RNG returns the engine's root random source; components should derive
// their own sub-streams from it.
func (e *Engine) RNG() *stats.Source { return e.rng }

// Events reports how many events have fired so far.
func (e *Engine) Events() uint64 { return e.fired }

// Pending reports how many events are queued (stopped timers are
// removed eagerly, so every pending event will fire).
func (e *Engine) Pending() int { return len(e.heap) }

// alloc takes a slot from the free list (or grows the slab) and queues it
// at time t with the next sequence number.
func (e *Engine) alloc(t time.Duration) int32 {
	var slot int32
	if e.freeHead != noIndex {
		slot = e.freeHead
		e.freeHead = e.events[slot].nextFree
	} else {
		e.events = append(e.events, event{})
		slot = int32(len(e.events) - 1)
	}
	e.push(heapEntry{at: t, seq: e.seq, slot: slot})
	e.seq++
	return slot
}

// release returns a popped slot to the free list and invalidates
// outstanding Timer handles to it.
func (e *Engine) release(slot int32) {
	ev := &e.events[slot]
	ev.fn = nil
	ev.cb = nil
	ev.gen++
	ev.nextFree = e.freeHead
	e.freeHead = slot
}

// push inserts an entry into the 4-ary heap.
func (e *Engine) push(en heapEntry) {
	e.heap = append(e.heap, en)
	e.siftUp(int32(len(e.heap)-1), en)
}

// pop removes and returns the minimum entry; the heap must be non-empty.
func (e *Engine) pop() heapEntry {
	h := e.heap
	top := h[0]
	last := h[len(h)-1]
	e.heap = h[:len(h)-1]
	if len(e.heap) > 0 {
		e.siftDown(0, last)
	}
	return top
}

// removeAt deletes the entry at heap index i (an O(log n) unqueue used
// by Timer.Stop), preserving the order of everything else.
func (e *Engine) removeAt(i int32) {
	h := e.heap
	n := int32(len(h) - 1)
	last := h[n]
	e.heap = h[:n]
	if i == n {
		return
	}
	// The displaced last entry may belong above or below slot i.
	if i > 0 && last.before(e.heap[(i-1)>>2]) {
		e.siftUp(i, last)
	} else {
		e.siftDown(i, last)
	}
}

// siftUp places en at index i or above, keeping slot positions current.
func (e *Engine) siftUp(i int32, en heapEntry) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) >> 2
		if !en.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		e.events[h[i].slot].pos = i
		i = parent
	}
	h[i] = en
	e.events[en.slot].pos = i
}

// siftDown places en at index i or below, keeping slot positions current.
func (e *Engine) siftDown(i int32, en heapEntry) {
	h := e.heap
	n := int32(len(h))
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h[c].before(h[best]) {
				best = c
			}
		}
		if !h[best].before(en) {
			break
		}
		h[i] = h[best]
		e.events[h[i].slot].pos = i
		i = best
	}
	h[i] = en
	e.events[en.slot].pos = i
}

// Schedule runs fn after delay of virtual time and returns a stoppable
// handle. A negative delay panics: the past is immutable in a
// discrete-event world.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: scheduling %v in the past", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t.
func (e *Engine) ScheduleAt(t time.Duration, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	slot := e.alloc(t)
	e.events[slot].fn = fn
	return Timer{eng: e, slot: slot, gen: e.events[slot].gen}
}

// ScheduleCall runs cb(arg) after delay of virtual time. It is the
// allocation-free variant of Schedule for hot paths that dispatch through
// a pre-bound callback and a slab index instead of a fresh closure
// (netsim's pooled message delivery).
func (e *Engine) ScheduleCall(delay time.Duration, cb func(uint32), arg uint32) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: scheduling %v in the past", delay))
	}
	slot := e.alloc(e.now + delay)
	ev := &e.events[slot]
	ev.cb = cb
	ev.arg = arg
	return Timer{eng: e, slot: slot, gen: ev.gen}
}

// Step fires the next event; it reports false when the queue is empty or
// the engine is stopped.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 || e.stopped {
		return false
	}
	en := e.pop()
	ev := &e.events[en.slot]
	e.now = en.at
	e.fired++
	fn, cb, arg := ev.fn, ev.cb, ev.arg
	e.release(en.slot)
	if cb != nil {
		cb(arg)
	} else {
		fn()
	}
	return true
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ t, then advances the clock to t.
// Events scheduled for later remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.heap) > 0 && !e.stopped && e.heap[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// Stop halts the engine; Run and RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
