package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineSchedule measures the steady-state Schedule/Step cycle:
// one event scheduled and fired per iteration over a standing queue of
// 1024 pending events, the depth a loaded simulation actually runs at.
// The fast path must not allocate per event.
func BenchmarkEngineSchedule(b *testing.B) {
	e := New(1)
	fn := func() {}
	// Standing backlog far in the future so every iteration exercises a
	// realistic heap depth.
	for i := 0; i < 1024; i++ {
		e.Schedule(time.Hour+time.Duration(i)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleStop measures the Schedule+Stop cycle (timer
// churn: armed and canceled before firing, the request-timeout pattern).
func BenchmarkEngineScheduleStop(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.Schedule(time.Microsecond, fn)
		t.Stop()
		e.Step()
	}
}
