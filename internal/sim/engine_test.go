package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events out of order: %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var times []time.Duration
	e.Schedule(time.Millisecond, func() {
		times = append(times, e.Now())
		e.Schedule(time.Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[1] != 2*time.Millisecond {
		t.Errorf("nested schedule failed: %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.Schedule(-time.Second, func() {})
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop must report true")
	}
	if tm.Stop() {
		t.Error("second Stop must report false")
	}
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if e.Events() != 0 {
		t.Errorf("canceled event counted as fired: %d", e.Events())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.Schedule(time.Millisecond, func() {})
	e.Run()
	if tm.Stop() {
		t.Error("Stop after firing must report false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := New(1)
	ran := false
	e.Schedule(5*time.Second, func() { ran = true })
	e.RunUntil(2 * time.Second)
	if ran {
		t.Error("future event fired early")
	}
	if e.Now() != 2*time.Second {
		t.Errorf("clock = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.RunFor(3 * time.Second)
	if !ran {
		t.Error("event within horizon did not fire")
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("events after Stop: %d", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() false after Stop")
	}
}

func TestTimerStopAfterSlotReuse(t *testing.T) {
	e := New(1)
	fired := 0
	t1 := e.Schedule(time.Millisecond, func() { fired++ })
	e.Run()
	// The slot of t1 is free now; the next event reuses it.
	t2 := e.Schedule(time.Millisecond, func() { fired++ })
	if t1.Stop() {
		t.Error("stale Timer stopped a reused slot")
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (stale Stop must not cancel the new event)", fired)
	}
	if t2.Stop() {
		t.Error("Stop after firing reported true")
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Error("zero Timer Stop reported true")
	}
}

func TestScheduleCall(t *testing.T) {
	e := New(1)
	var got []uint32
	cb := func(arg uint32) { got = append(got, arg) }
	e.ScheduleCall(2*time.Millisecond, cb, 7)
	e.ScheduleCall(time.Millisecond, cb, 3)
	tm := e.ScheduleCall(3*time.Millisecond, cb, 9)
	if !tm.Stop() {
		t.Error("ScheduleCall timer did not stop")
	}
	e.Run()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("ScheduleCall order/args wrong: %v", got)
	}
	if e.Now() != 2*time.Millisecond {
		t.Errorf("clock = %v", e.Now())
	}
}

// TestHeapStress drives random interleaved schedule/cancel churn and
// checks events fire in exact (time, seq) order.
func TestHeapStress(t *testing.T) {
	e := New(7)
	rng := e.RNG().Stream("stress")
	type rec struct {
		at  time.Duration
		seq int
	}
	var fired []rec
	seq := 0
	var timers []Timer
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.IntN(10000)) * time.Microsecond
		s := seq
		seq++
		at := e.Now() + d
		timers = append(timers, e.Schedule(d, func() { fired = append(fired, rec{at, s}) }))
		if rng.IntN(4) == 0 && len(timers) > 0 {
			timers[rng.IntN(len(timers))].Stop()
		}
		if rng.IntN(8) == 0 {
			e.Step()
		}
	}
	e.Run()
	for i := 1; i < len(fired); i++ {
		if fired[i].at < fired[i-1].at {
			t.Fatalf("out of order at %d: %v after %v", i, fired[i].at, fired[i-1].at)
		}
		if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
			t.Fatalf("tie not FIFO at %d", i)
		}
	}
}

func TestDeterministicEventCount(t *testing.T) {
	run := func() (uint64, time.Duration) {
		e := New(99)
		rng := e.RNG().Stream("test")
		var rec func()
		n := 0
		rec = func() {
			n++
			if n < 1000 {
				e.Schedule(time.Duration(rng.IntN(1000))*time.Microsecond, rec)
			}
		}
		e.Schedule(0, rec)
		e.Run()
		return e.Events(), e.Now()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}
