package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events out of order: %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var times []time.Duration
	e.Schedule(time.Millisecond, func() {
		times = append(times, e.Now())
		e.Schedule(time.Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[1] != 2*time.Millisecond {
		t.Errorf("nested schedule failed: %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.Schedule(-time.Second, func() {})
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop must report true")
	}
	if tm.Stop() {
		t.Error("second Stop must report false")
	}
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if e.Events() != 0 {
		t.Errorf("canceled event counted as fired: %d", e.Events())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.Schedule(time.Millisecond, func() {})
	e.Run()
	if tm.Stop() {
		t.Error("Stop after firing must report false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := New(1)
	ran := false
	e.Schedule(5*time.Second, func() { ran = true })
	e.RunUntil(2 * time.Second)
	if ran {
		t.Error("future event fired early")
	}
	if e.Now() != 2*time.Second {
		t.Errorf("clock = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.RunFor(3 * time.Second)
	if !ran {
		t.Error("event within horizon did not fire")
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("events after Stop: %d", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() false after Stop")
	}
}

func TestDeterministicEventCount(t *testing.T) {
	run := func() (uint64, time.Duration) {
		e := New(99)
		rng := e.RNG().Stream("test")
		var rec func()
		n := 0
		rec = func() {
			n++
			if n < 1000 {
				e.Schedule(time.Duration(rng.IntN(1000))*time.Microsecond, rec)
			}
		}
		e.Schedule(0, rec)
		e.Run()
		return e.Events(), e.Now()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}
