// Package harmony implements the paper's primary contribution (§III-A):
// the probabilistic stale-read estimator built on Figure 1's model, and
// the Harmony tuner that keeps the estimated stale-read rate under the
// application-tolerated threshold α while involving as few replicas as
// possible.
package harmony

import (
	"math"
	"time"

	"repro/internal/monitor"
)

// StaleProb estimates the probability that a read at level readK returns
// stale data, under Figure 1's model:
//
//   - Writes to the key arrive as a Poisson process with rate lambda.
//   - A write becomes client-visible once writeK replicas acknowledged;
//     ackDelays[i] is the measured delay until the (i+1)-th replica holds
//     it (sorted non-decreasing, length rf).
//   - A read is stale when it starts inside a propagation window — after
//     the write is visible but before all replicas hold it — and all
//     readK replicas it contacts (chosen uniformly) miss the fresh copy.
//
// P(read in window) = 1 − exp(−lambda·W) with W the window length
// (PASTA); inside the window at uniform offset u, j(u) replicas are
// fresh, and the miss probability is C(rf−j, readK)/C(rf, readK).
// Integrating over the window's rank segments gives the estimate.
// Ack delays overstate apply delays: an acknowledgement travels back to
// the coordinator over the same link the mutation went out on, so for
// symmetric links the replica actually held the data halfway through the
// measured extra delay. StaleProb corrects for this by halving each
// rank's delay beyond the first acknowledgement before integrating.
func StaleProb(rf, readK, writeK int, ackDelays []time.Duration, lambda float64) float64 {
	if rf <= 0 || len(ackDelays) < rf || lambda <= 0 {
		return 0
	}
	readK = clamp(readK, 1, rf)
	writeK = clamp(writeK, 1, rf)
	if readK == rf {
		return 0 // reads touch every replica: one of them is fresh
	}
	// Symmetric-link correction: apply_j ≈ d_1 + (d_j − d_1)/2.
	applied := make([]time.Duration, rf)
	applied[0] = ackDelays[0]
	for j := 1; j < rf; j++ {
		applied[j] = ackDelays[0] + (ackDelays[j]-ackDelays[0])/2
	}
	ackDelays = applied

	base := ackDelays[writeK-1]
	window := ackDelays[rf-1] - base
	if window <= 0 {
		return 0
	}
	pWindow := 1 - math.Exp(-lambda*window.Seconds())

	// Expected miss probability across the window: segment j covers
	// offsets where exactly j replicas are fresh (j = writeK..rf−1).
	var miss float64
	prev := base
	for j := writeK; j < rf; j++ {
		segEnd := ackDelays[j]
		seg := segEnd - prev
		prev = segEnd
		if seg <= 0 {
			continue
		}
		frac := float64(seg) / float64(window)
		miss += frac * hyperMiss(rf, j, readK)
	}
	return pWindow * miss
}

// hyperMiss is C(rf−fresh, k) / C(rf, k): the probability that k
// uniformly chosen replicas all miss the fresh copies.
func hyperMiss(rf, fresh, k int) float64 {
	stale := rf - fresh
	if k > stale {
		return 0
	}
	// Product form avoids large factorials: Π_{i=0..k-1} (stale−i)/(rf−i).
	p := 1.0
	for i := 0; i < k; i++ {
		p *= float64(stale-i) / float64(rf-i)
	}
	return p
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Estimator predicts system-wide stale-read rates from monitor snapshots.
type Estimator struct {
	// RF is the replication factor.
	RF int
	// WriteK is how many replicas the write level blocks for.
	WriteK int
	// PerKey enables the per-key refinement: instead of feeding the
	// global write rate into the model (the conservative aggregate mode
	// of the original Harmony), the estimate is averaged over the
	// monitored per-key profile — reads of rarely-written keys stop
	// inheriting the hot keys' staleness.
	PerKey bool
}

// StaleRate estimates the fraction of stale reads at read level readK
// under the access profile of snap.
func (e Estimator) StaleRate(readK int, snap monitor.Snapshot) float64 {
	if !e.PerKey {
		return StaleProb(e.RF, readK, e.WriteK, snap.RankDelays, snap.WriteRate)
	}
	var p float64
	for _, k := range snap.TopKeys {
		if k.ReadShare <= 0 {
			continue
		}
		p += k.ReadShare * StaleProb(e.RF, readK, e.WriteK, snap.RankDelays, k.WriteRate)
	}
	if snap.TailReadShr > 0 && snap.TailKeys > 0 {
		perKeyRate := snap.TailWriteRte / snap.TailKeys
		p += snap.TailReadShr * StaleProb(e.RF, readK, e.WriteK, snap.RankDelays, perKeyRate)
	}
	return p
}
