package harmony

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/monitor"
)

// Tuner is Harmony's adaptive consistency module: each control period it
// estimates the stale-read rate for every candidate read level and picks
// the smallest number of involved replicas whose estimate stays within
// the application-tolerated rate Alpha. Writes stay at the configured
// write level (ONE by default — the eventual-consistency side the paper
// tunes reads against).
type Tuner struct {
	// Alpha is the application-tolerated stale read rate, in [0, 1].
	Alpha float64
	// Estimator performs the probabilistic stale-rate computation.
	Estimator Estimator
	// WriteLevel is applied to all writes.
	WriteLevel kv.Level
}

// New returns a Harmony tuner for replication factor rf with tolerated
// stale rate alpha, writing at level ONE and using the aggregate
// estimator, as in the paper.
func New(alpha float64, rf int) *Tuner {
	return &Tuner{
		Alpha:      alpha,
		Estimator:  Estimator{RF: rf, WriteK: 1},
		WriteLevel: kv.One,
	}
}

// PerKey switches the tuner to the per-key refined estimator and returns
// it (builder style).
func (t *Tuner) PerKey() *Tuner {
	t.Estimator.PerKey = true
	return t
}

// Name implements core.Tuner.
func (t *Tuner) Name() string {
	mode := "aggregate"
	if t.Estimator.PerKey {
		mode = "per-key"
	}
	return fmt.Sprintf("harmony(α=%.0f%%,%s)", t.Alpha*100, mode)
}

// Decide implements core.Tuner: the smallest k with estimated stale rate
// ≤ Alpha wins; level ONE is the fast path the paper favours whenever the
// application tolerates it.
func (t *Tuner) Decide(snap monitor.Snapshot) core.Decision {
	rf := t.Estimator.RF
	chosen := rf
	est := 0.0
	for k := 1; k <= rf; k++ {
		p := t.Estimator.StaleRate(k, snap)
		if p <= t.Alpha {
			chosen, est = k, p
			break
		}
	}
	return core.Decision{
		ReadLevel:          kv.Count(chosen),
		WriteLevel:         t.WriteLevel,
		EstimatedStaleRate: est,
		Reason: fmt.Sprintf("P_stale(%d)=%.3f ≤ α=%.3f (λw=%.1f/s, Tp=%v)",
			chosen, est, t.Alpha, snap.WriteRate, snap.PropagationTime()),
	}
}

var _ core.Tuner = (*Tuner)(nil)
