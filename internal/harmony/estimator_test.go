package harmony

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/monitor"
)

func delays(ms ...int) []time.Duration {
	out := make([]time.Duration, len(ms))
	for i, m := range ms {
		out[i] = time.Duration(m) * time.Millisecond
	}
	return out
}

func TestStaleProbBoundaries(t *testing.T) {
	d := delays(1, 5, 20)
	if got := StaleProb(3, 3, 1, d, 100); got != 0 {
		t.Errorf("k=RF must be 0, got %f", got)
	}
	if got := StaleProb(3, 1, 1, d, 0); got != 0 {
		t.Errorf("zero write rate must be 0, got %f", got)
	}
	if got := StaleProb(0, 1, 1, nil, 100); got != 0 {
		t.Errorf("degenerate rf must be 0, got %f", got)
	}
	if got := StaleProb(3, 1, 3, d, 100); got != 0 {
		t.Errorf("writeK=RF leaves no window, got %f", got)
	}
	// Equal delays mean no window.
	if got := StaleProb(3, 1, 1, delays(5, 5, 5), 100); got != 0 {
		t.Errorf("zero-width window must be 0, got %f", got)
	}
}

func TestStaleProbInRangeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(seed uint64, rfRaw, kRaw, wRaw uint8, lambda float64) bool {
		rf := int(rfRaw%7) + 1
		k := int(kRaw%uint8(rf)) + 1
		w := int(wRaw%uint8(rf)) + 1
		if lambda < 0 {
			lambda = -lambda
		}
		rng := rand.New(rand.NewPCG(seed, 1))
		d := make([]time.Duration, rf)
		cur := time.Duration(0)
		for i := range d {
			cur += time.Duration(rng.IntN(10)) * time.Millisecond
			d[i] = cur
		}
		p := StaleProb(rf, k, w, d, lambda)
		return p >= 0 && p <= 1
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestStaleProbMonotoneInK: involving more replicas can only lower the
// stale probability.
func TestStaleProbMonotoneInK(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(seed uint64, rfRaw uint8, lambda float64) bool {
		rf := int(rfRaw%6) + 2
		if lambda < 0 {
			lambda = -lambda
		}
		lambda = 1 + lambda/1e300
		rng := rand.New(rand.NewPCG(seed, 2))
		d := make([]time.Duration, rf)
		cur := time.Duration(rng.IntN(5)+1) * time.Millisecond
		for i := range d {
			d[i] = cur
			cur += time.Duration(rng.IntN(20)) * time.Millisecond
		}
		prev := 2.0
		for k := 1; k <= rf; k++ {
			p := StaleProb(rf, k, 1, d, lambda)
			if p > prev+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestStaleProbIncreasingInLambdaAndWindow(t *testing.T) {
	d := delays(1, 5, 30)
	p10 := StaleProb(3, 1, 1, d, 10)
	p100 := StaleProb(3, 1, 1, d, 100)
	if p100 <= p10 {
		t.Errorf("more writes must mean more staleness: %f vs %f", p10, p100)
	}
	wider := delays(1, 5, 300)
	pWide := StaleProb(3, 1, 1, wider, 10)
	if pWide <= p10 {
		t.Errorf("longer propagation must mean more staleness: %f vs %f", p10, pWide)
	}
}

func TestStaleProbHigherWriteLevelShrinksWindow(t *testing.T) {
	d := delays(1, 10, 40)
	w1 := StaleProb(3, 1, 1, d, 50)
	w2 := StaleProb(3, 1, 2, d, 50)
	if w2 >= w1 {
		t.Errorf("writeK=2 must shrink the window: %f vs %f", w2, w1)
	}
}

func TestHyperMiss(t *testing.T) {
	cases := []struct {
		rf, fresh, k int
		want         float64
	}{
		{3, 1, 1, 2.0 / 3},
		{3, 2, 1, 1.0 / 3},
		{3, 1, 2, 1.0 / 3},
		{3, 2, 2, 0},
		{5, 1, 2, 6.0 / 10},
	}
	for _, c := range cases {
		got := hyperMiss(c.rf, c.fresh, c.k)
		if diff := got - c.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("hyperMiss(%d,%d,%d) = %f, want %f", c.rf, c.fresh, c.k, got, c.want)
		}
	}
}

func snapshotWith(delaysV []time.Duration, writeRate float64, top []monitor.KeyRate,
	tailKeys, tailShare, tailRate float64) monitor.Snapshot {
	return monitor.Snapshot{
		RankDelays:   delaysV,
		WriteRate:    writeRate,
		ReadRate:     writeRate,
		TopKeys:      top,
		TailKeys:     tailKeys,
		TailReadShr:  tailShare,
		TailWriteRte: tailRate,
	}
}

func TestPerKeyEstimatorLessConservative(t *testing.T) {
	d := delays(1, 10, 40)
	// 1000 writes/s total, spread evenly over 1000 keys; reads spread too.
	snap := snapshotWith(d, 1000,
		[]monitor.KeyRate{{Key: "a", ReadShare: 0.01, WriteRate: 10}},
		999, 0.99, 990)
	agg := Estimator{RF: 3, WriteK: 1}
	ref := Estimator{RF: 3, WriteK: 1, PerKey: true}
	pAgg := agg.StaleRate(1, snap)
	pRef := ref.StaleRate(1, snap)
	if pRef >= pAgg {
		t.Errorf("per-key estimate %f should undercut aggregate %f for spread keys", pRef, pAgg)
	}
}

func TestTunerPicksMinimalLevel(t *testing.T) {
	d := delays(1, 10, 40)
	// Heavy writes: k=1 unacceptable for small alpha.
	snap := snapshotWith(d, 500, nil, 1, 1, 500)
	tight := New(0.01, 3)
	loose := New(0.99, 3)
	dt := tight.Decide(snap)
	dl := loose.Decide(snap)
	if dl.ReadLevel.Replicas(3) != 1 {
		t.Errorf("loose tolerance should pick ONE, got %v", dl.ReadLevel)
	}
	if dt.ReadLevel.Replicas(3) <= dl.ReadLevel.Replicas(3) {
		t.Errorf("tight tolerance should pick a higher level: %v vs %v", dt.ReadLevel, dl.ReadLevel)
	}
	if dt.EstimatedStaleRate > 0.01 {
		t.Errorf("decision exceeds tolerance: %f", dt.EstimatedStaleRate)
	}
}

func TestTunerQuiescentPicksOne(t *testing.T) {
	tuner := New(0.05, 3)
	d := tuner.Decide(monitor.Snapshot{RankDelays: delays(0, 0, 0)})
	if d.ReadLevel.Replicas(3) != 1 {
		t.Errorf("quiescent system should pick ONE, got %v", d.ReadLevel)
	}
	if tuner.Name() == "" || tuner.PerKey().Name() == "" {
		t.Error("names empty")
	}
}
