package harmony_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// runAdaptive drives a YCSB workload through a controller-managed session
// and returns the metrics and the controller.
func runAdaptive(t *testing.T, tuner core.Tuner, ops uint64) (*ycsb.Metrics, *core.Controller) {
	t.Helper()
	topo := netsim.G5KTwoSites(12)
	cfg := kv.DefaultConfig()
	cfg.RF = 3
	cfg.Seed = 7
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)

	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	ctl := core.NewController(mon, tuner, tr, 500*time.Millisecond)

	w := ycsb.HeavyReadUpdate(2000)
	r, err := ycsb.NewRunner(ctl.Session(cl), w, tr, cfg.Seed)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	r.OpCount = ops
	r.Threads = 48
	r.WarmupOps = ops / 10
	cl.Preload(w.RecordCount, r.Keys, r.Value())
	ctl.Start()
	r.Start()
	for !r.Finished() && eng.Step() {
	}
	if !r.Finished() {
		t.Fatal("workload stalled")
	}
	return r.Metrics(), ctl
}

func TestHarmonyKeepsStaleRateUnderAlpha(t *testing.T) {
	const alpha = 0.05
	m, ctl := runAdaptive(t, harmony.New(alpha, 3), 30000)
	t.Logf("harmony: %s", m.String())
	t.Logf("level changes: %d over %d decisions", ctl.LevelChanges(), len(ctl.Journal()))
	if got := m.StaleRate(); got > alpha*1.5 {
		t.Errorf("stale rate %.3f exceeds tolerated %.3f (with 50%% margin)", got, alpha)
	}
	if len(ctl.Journal()) < 10 {
		t.Errorf("controller barely ran: %d decisions", len(ctl.Journal()))
	}
}

func TestHarmonyBeatsStaticBaselines(t *testing.T) {
	const alpha = 0.10
	hm, _ := runAdaptive(t, harmony.New(alpha, 3), 30000)
	ev, _ := runAdaptive(t, core.StaticTuner{Read: kv.One, Write: kv.One}, 30000)
	st, _ := runAdaptive(t, core.StaticTuner{Read: kv.All, Write: kv.One}, 30000)
	t.Logf("harmony : %s", hm.String())
	t.Logf("eventual: %s", ev.String())
	t.Logf("strong  : %s", st.String())

	if hm.StaleRate() >= ev.StaleRate() {
		t.Errorf("harmony stale %.3f should be below eventual %.3f", hm.StaleRate(), ev.StaleRate())
	}
	if hm.Throughput() <= st.Throughput() {
		t.Errorf("harmony throughput %.0f should beat strong %.0f", hm.Throughput(), st.Throughput())
	}
	if st.StaleReads != 0 {
		t.Errorf("strong baseline must read fresh, saw %d stale", st.StaleReads)
	}
}
