package harmony

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/monitor"
)

// HotTuner is the per-hot-key refinement of the Harmony tuner: besides
// the global per-key-estimator decision (which governs the long tail),
// each control period it walks the cluster's current hot set and pins
// the smallest read level that holds the per-key estimated stale rate
// under α, given that key's own observed write rate. A rarely-written
// hot read key gets ONE (and with Config.HotCache becomes cacheable); a
// write-hammered head key is pushed to a higher level than the tail
// needs — the two ends of the Zipf distribution stop sharing one knob.
type HotTuner struct {
	*Tuner
	Cluster *kv.Cluster
}

// NewHot returns a Harmony tuner with the per-key estimator that also
// tunes the cluster's hot set individually each control period.
func NewHot(alpha float64, cluster *kv.Cluster) *HotTuner {
	return &HotTuner{
		Tuner:   New(alpha, cluster.RF()).PerKey(),
		Cluster: cluster,
	}
}

// Name implements core.Tuner.
func (t *HotTuner) Name() string {
	return fmt.Sprintf("harmony-hot(α=%.0f%%)", t.Alpha*100)
}

// Decide implements core.Tuner: the embedded tuner's decision stands
// for the tail, then every hot key is tuned against its own write rate.
// The hot set is walked in the cluster's sorted order and the per-key λ
// comes from the deterministic hot tracker, so the pinned levels are a
// pure function of the traffic.
func (t *HotTuner) Decide(snap monitor.Snapshot) core.Decision {
	d := t.Tuner.Decide(snap)
	rf := t.Estimator.RF
	writeK := t.Estimator.WriteK
	for _, key := range t.Cluster.HotKeys() {
		lambda, ok := t.Cluster.HotKeyRate(key)
		if !ok {
			continue
		}
		chosen := rf
		for k := 1; k <= rf; k++ {
			if StaleProb(rf, k, writeK, snap.RankDelays, lambda) <= t.Alpha {
				chosen = k
				break
			}
		}
		t.Cluster.SetHotKeyLevel(key, kv.Count(chosen))
	}
	return d
}

var _ core.Tuner = (*HotTuner)(nil)
