package behavior

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
)

// PolicyKind enumerates the consistency policies a state can be mapped to
// (§III-C: "policies include geographical policies, Harmony, and static
// eventual and strong policies").
type PolicyKind int

// The policy kinds.
const (
	// PolicyEventual pins level ONE: fastest, weakest.
	PolicyEventual PolicyKind = iota
	// PolicyStrong pins QUORUM reads and writes: every read sees every
	// acknowledged write.
	PolicyStrong
	// PolicyHarmony runs the Harmony tuner with the policy's Alpha.
	PolicyHarmony
	// PolicyGeo pins LOCAL_QUORUM: quorum in the coordinator's
	// datacenter — the geographical policy for geo-concentrated access.
	PolicyGeo
)

// Policy is a state's consistency prescription.
type Policy struct {
	Kind  PolicyKind
	Alpha float64 // tolerated stale rate for PolicyHarmony
}

// String names the policy.
func (p Policy) String() string {
	switch p.Kind {
	case PolicyEventual:
		return "eventual(ONE)"
	case PolicyStrong:
		return "strong(QUORUM)"
	case PolicyHarmony:
		return fmt.Sprintf("harmony(α=%.0f%%)", p.Alpha*100)
	case PolicyGeo:
		return "geo(LOCAL_QUORUM)"
	}
	return fmt.Sprintf("Policy(%d)", int(p.Kind))
}

// Tuner instantiates the policy as a core.Tuner for a store with
// replication factor rf.
func (p Policy) Tuner(rf int) core.Tuner {
	switch p.Kind {
	case PolicyStrong:
		return core.StaticTuner{Read: kv.Quorum, Write: kv.Quorum}
	case PolicyHarmony:
		return harmony.New(p.Alpha, rf)
	case PolicyGeo:
		return core.StaticTuner{Read: kv.LocalQuorum, Write: kv.LocalQuorum}
	default:
		return core.StaticTuner{Read: kv.One, Write: kv.One}
	}
}

// Rule maps matching states to a policy; the first matching rule wins.
// Administrators prepend custom rules to the generic set.
type Rule struct {
	Name    string
	Applies func(f Features) bool
	Policy  Policy
}

// GenericRules is the paper's "set of generic predefined rules": states
// with negligible writes relax to eventual; write-heavy states whose
// reads chase their writes require strong consistency; everything else
// gets Harmony with a tolerance scaled to how often reads follow writes.
func GenericRules() []Rule {
	return []Rule{
		{
			Name:    "read-only",
			Applies: func(f Features) bool { return f.WriteRate < 0.5 || f.ReadRatio > 0.99 },
			Policy:  Policy{Kind: PolicyEventual},
		},
		{
			Name: "write-heavy-read-your-writes",
			Applies: func(f Features) bool {
				return f.ReadAfterWrite > 0.25 && f.ReadRatio < 0.8
			},
			Policy: Policy{Kind: PolicyStrong},
		},
		{
			Name:    "raw-sensitive",
			Applies: func(f Features) bool { return f.ReadAfterWrite > 0.05 },
			Policy:  Policy{Kind: PolicyHarmony, Alpha: 0.05},
		},
		{
			Name:    "default-adaptive",
			Applies: func(Features) bool { return true },
			Policy:  Policy{Kind: PolicyHarmony, Alpha: 0.20},
		},
	}
}

// policyFor applies the rules in order.
func policyFor(f Features, rules []Rule) (Policy, string) {
	for _, r := range rules {
		if r.Applies(f) {
			return r.Policy, r.Name
		}
	}
	return Policy{Kind: PolicyHarmony, Alpha: 0.20}, "fallback"
}

// stateTuner adapts a state's policy into the controller framework with a
// recognizable name.
type stateTuner struct {
	inner core.Tuner
	label string
}

func (s stateTuner) Name() string { return s.label }
func (s stateTuner) Decide(snap monitor.Snapshot) core.Decision {
	d := s.inner.Decide(snap)
	d.Reason = s.label + ": " + d.Reason
	return d
}
