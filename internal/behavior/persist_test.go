package behavior

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceRoundtrip(t *testing.T) {
	orig := syntheticTrace()
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(orig.Ops) {
		t.Fatalf("ops %d vs %d", len(back.Ops), len(orig.Ops))
	}
	for i := range orig.Ops {
		if back.Ops[i] != orig.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, back.Ops[i], orig.Ops[i])
		}
	}
}

func TestModelRoundtripClassifiesIdentically(t *testing.T) {
	tl := BuildTimeline(syntheticTrace(), time.Second)
	m, err := BuildModel(tl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.PeriodLen != m.PeriodLen || len(back.States) != len(m.States) {
		t.Fatalf("shape differs: %v/%d vs %v/%d",
			back.PeriodLen, len(back.States), m.PeriodLen, len(m.States))
	}
	// Every timeline period must classify to the same state id.
	for i, p := range tl.Periods {
		if m.Classify(p.Features).ID != back.Classify(p.Features).ID {
			t.Fatalf("period %d classifies differently after roundtrip", i)
		}
	}
	for i := range m.States {
		if back.States[i].Policy != m.States[i].Policy {
			t.Errorf("state %d policy differs: %v vs %v",
				i, back.States[i].Policy, m.States[i].Policy)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestReadModelRejectsInconsistent(t *testing.T) {
	if _, err := ReadModel(strings.NewReader(`{"centroids":[[1,2]],"states":[]}`)); err == nil {
		t.Error("inconsistent model accepted")
	}
	if _, err := ReadModel(strings.NewReader("{")); err == nil {
		t.Error("truncated model accepted")
	}
}
