package behavior

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/stats"
)

// State is one discovered application state with its associated policy.
type State struct {
	ID       int
	Name     string
	Centroid Features
	Policy   Policy
	RuleName string
	Periods  int // timeline periods assigned to this state
}

// Model is the fitted behaviour model: the clustering plus the
// state→policy association, ready for runtime classification.
type Model struct {
	PeriodLen  time.Duration
	Norm       Normalizer
	KM         *KMeans
	States     []State
	Silhouette float64
	Assign     []int // per-timeline-period state ids
}

// Options tunes the modeling process.
type Options struct {
	KMin, KMax  int
	CustomRules []Rule // take precedence over the generic rules
	Seed        uint64
}

// DefaultOptions explores 2..6 states.
func DefaultOptions() Options { return Options{KMin: 2, KMax: 6, Seed: 1} }

// BuildModel runs the offline modeling process of §III-C: normalize the
// timeline's feature vectors, cluster them with k selected by silhouette
// score, and associate each state with a policy via the rules engine.
func BuildModel(tl Timeline, opts Options) (*Model, error) {
	if len(tl.Periods) < 2 {
		return nil, fmt.Errorf("behavior: timeline too short (%d periods)", len(tl.Periods))
	}
	if opts.KMax <= 0 {
		opts.KMax = 6
	}
	if opts.KMin < 2 {
		opts.KMin = 2
	}
	points := make([][]float64, len(tl.Periods))
	raw := make([][]float64, len(tl.Periods))
	for i, p := range tl.Periods {
		raw[i] = p.Features.Vector()
	}
	norm := FitNormalizer(raw)
	for i := range raw {
		points[i] = norm.Apply(raw[i])
	}

	src := stats.NewSource(opts.Seed).Stream("behavior.kmeans")
	km, assign, score := SelectK(points, opts.KMin, opts.KMax, src)

	rules := append(append([]Rule(nil), opts.CustomRules...), GenericRules()...)
	m := &Model{PeriodLen: tl.PeriodLen, Norm: norm, KM: km, Silhouette: score, Assign: assign}
	counts := make([]int, km.K)
	for _, a := range assign {
		counts[a]++
	}
	for i, c := range km.Centroids {
		f := featuresFromVector(norm.Restore(c))
		pol, rule := policyFor(f, rules)
		m.States = append(m.States, State{
			ID:       i,
			Name:     describeState(f),
			Centroid: f,
			Policy:   pol,
			RuleName: rule,
			Periods:  counts[i],
		})
	}
	return m, nil
}

// describeState produces a readable label from the centroid.
func describeState(f Features) string {
	var parts []string
	switch {
	case f.ReadRatio > 0.95:
		parts = append(parts, "read-only")
	case f.ReadRatio > 0.8:
		parts = append(parts, "read-mostly")
	case f.ReadRatio < 0.6:
		parts = append(parts, "update-heavy")
	default:
		parts = append(parts, "mixed")
	}
	if f.ReadAfterWrite > 0.15 {
		parts = append(parts, "raw-sensitive")
	}
	if f.KeySkew > 0.5 {
		parts = append(parts, "hot-keyed")
	}
	return strings.Join(parts, "/")
}

// Classify returns the state nearest to the features.
func (m *Model) Classify(f Features) *State {
	idx := m.KM.Assign(m.Norm.Apply(f.Vector()))
	return &m.States[idx]
}

// Describe renders the model for reports.
func (m *Model) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "behaviour model: %d states (silhouette %.3f, period %v)\n",
		len(m.States), m.Silhouette, m.PeriodLen)
	for _, s := range m.States {
		fmt.Fprintf(&b, "  state %d %-28s %4d periods  policy=%-18s rule=%s\n      centroid: %s\n",
			s.ID, s.Name, s.Periods, s.Policy.String(), s.RuleName, s.Centroid.String())
	}
	return b.String()
}
