package behavior

import (
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/storage"
)

// buildTwoStateModel fits a model with a read-only state and a
// write-heavy state.
func buildTwoStateModel(t *testing.T) *Model {
	t.Helper()
	tl := BuildTimeline(syntheticTrace(), time.Second)
	m, err := BuildModel(tl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRuntimeClassifierSwitchesStates(t *testing.T) {
	m := buildTwoStateModel(t)
	rc := NewRuntimeClassifier(m, 3)
	start := rc.Current().ID

	// Feed a write-heavy, read-after-write period through the hooks.
	h := rc.Hooks()
	at := time.Duration(0)
	for i := 0; i < 400; i++ {
		key := "hot"
		if i%2 == 0 {
			h.WriteStarted(at, key, version(i), 3)
		} else {
			h.ReadStarted(at, key)
		}
		at += 2 * time.Millisecond
	}
	// First Decide initializes the period; a Decide after the period end
	// classifies it.
	rc.Decide(monitor.Snapshot{Now: 0})
	d := rc.Decide(monitor.Snapshot{Now: m.PeriodLen + time.Millisecond})
	writeState := rc.Current()
	if writeState.Centroid.ReadRatio > 0.7 {
		t.Fatalf("classifier did not move to the write-heavy state: %+v", writeState.Centroid)
	}
	if writeState.Policy.Kind != PolicyStrong {
		t.Errorf("write state policy = %v", writeState.Policy)
	}
	if d.ReadLevel.Replicas(3) < 2 {
		t.Errorf("strong policy decided level %v", d.ReadLevel)
	}

	// Now a read-only period: classifier must move back.
	for i := 0; i < 300; i++ {
		h.ReadStarted(m.PeriodLen+time.Duration(i)*3*time.Millisecond, keyN(i%100))
	}
	d = rc.Decide(monitor.Snapshot{Now: 2*m.PeriodLen + 2*time.Millisecond})
	readState := rc.Current()
	if readState.Centroid.ReadRatio < 0.9 {
		t.Fatalf("classifier did not return to read state: %+v", readState.Centroid)
	}
	if d.ReadLevel.Replicas(3) != 1 {
		t.Errorf("eventual policy decided level %v", d.ReadLevel)
	}
	if len(rc.Transitions()) < 1 {
		t.Error("no transitions recorded")
	}
	_ = start
}

func TestRuntimeClassifierIgnoresIdlePeriods(t *testing.T) {
	m := buildTwoStateModel(t)
	rc := NewRuntimeClassifier(m, 3)
	before := rc.Current().ID
	// Two empty periods elapse: classification must not flap on noise.
	rc.Decide(monitor.Snapshot{Now: 0})
	rc.Decide(monitor.Snapshot{Now: 3 * m.PeriodLen})
	if rc.Current().ID != before {
		t.Error("idle periods changed the state")
	}
	if len(rc.Transitions()) != 0 {
		t.Error("idle transition recorded")
	}
}

func TestRuntimeClassifierName(t *testing.T) {
	m := buildTwoStateModel(t)
	rc := NewRuntimeClassifier(m, 3)
	if rc.Name() != "behavior-classifier" {
		t.Errorf("name = %s", rc.Name())
	}
}

func keyN(i int) string { return "k" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }

func version(i int) (v storage.Version) { v.Seq = uint64(i + 1); return }
