package behavior

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/storage"
)

// Transition records a runtime state change.
type Transition struct {
	At   time.Duration
	From int
	To   int
}

// RuntimeClassifier is the paper's runtime component: it watches the live
// access stream, computes the same per-period features as the offline
// pipeline, classifies the application's current state against the model,
// and delegates consistency decisions to the state's policy. It
// implements core.Tuner, so it plugs into the standard controller.
type RuntimeClassifier struct {
	Model *Model

	rf        int
	fz        *Featurizer
	periodEnd time.Duration
	started   bool

	current     *State
	tuners      map[int]core.Tuner
	transitions []Transition

	// MinOpsPerPeriod guards classification against nearly-idle periods
	// whose features are noise.
	MinOpsPerPeriod uint64
}

// NewRuntimeClassifier returns a classifier for a store with replication
// factor rf. The initial state is the model's most frequent one.
func NewRuntimeClassifier(m *Model, rf int) *RuntimeClassifier {
	rc := &RuntimeClassifier{
		Model:           m,
		rf:              rf,
		fz:              NewFeaturizer(0),
		tuners:          make(map[int]core.Tuner),
		MinOpsPerPeriod: 50,
	}
	best := 0
	for i, s := range m.States {
		if s.Periods > m.States[best].Periods {
			best = i
		}
	}
	rc.current = &m.States[best]
	return rc
}

// Hooks returns the instrumentation hooks feeding the online featurizer.
func (rc *RuntimeClassifier) Hooks() *kv.Hooks {
	return &kv.Hooks{
		ReadStarted: func(now time.Duration, key string) {
			rc.fz.Observe(Op{At: now, Kind: OpRead, Key: key})
		},
		WriteStarted: func(now time.Duration, key string, _ storage.Version, _ int) {
			rc.fz.Observe(Op{At: now, Kind: OpWrite, Key: key})
		},
	}
}

// Current reports the active state.
func (rc *RuntimeClassifier) Current() *State { return rc.current }

// Transitions reports the state-change history.
func (rc *RuntimeClassifier) Transitions() []Transition { return rc.transitions }

// Name implements core.Tuner.
func (rc *RuntimeClassifier) Name() string { return "behavior-classifier" }

// Decide implements core.Tuner: close out elapsed periods, re-classify,
// and delegate to the active state's policy tuner.
func (rc *RuntimeClassifier) Decide(snap monitor.Snapshot) core.Decision {
	now := snap.Now
	if !rc.started {
		rc.started = true
		rc.fz.Reset(now)
		rc.periodEnd = now + rc.Model.PeriodLen
	}
	for now >= rc.periodEnd {
		if rc.fz.Ops() >= rc.MinOpsPerPeriod {
			f := rc.fz.Finish(rc.periodEnd)
			next := rc.Model.Classify(f)
			if next.ID != rc.current.ID {
				rc.transitions = append(rc.transitions, Transition{At: now, From: rc.current.ID, To: next.ID})
				rc.current = next
			}
		}
		rc.fz.Reset(rc.periodEnd)
		rc.periodEnd += rc.Model.PeriodLen
	}

	t, ok := rc.tuners[rc.current.ID]
	if !ok {
		t = rc.current.Policy.Tuner(rc.rf)
		rc.tuners[rc.current.ID] = t
	}
	d := t.Decide(snap)
	d.Reason = fmt.Sprintf("state %d (%s) → %s; %s", rc.current.ID, rc.current.Name,
		rc.current.Policy.String(), d.Reason)
	return d
}

var _ core.Tuner = (*RuntimeClassifier)(nil)
