package behavior

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

// syntheticTrace builds a trace with two clearly distinct phases:
// read-only over many keys, then update-heavy over few keys with
// read-after-write behaviour.
func syntheticTrace() Trace {
	var tr Trace
	at := time.Duration(0)
	// Phase 1: 10 periods of pure reads, 200 ops/s.
	for p := 0; p < 10; p++ {
		for i := 0; i < 200; i++ {
			tr.Ops = append(tr.Ops, Op{At: at, Kind: OpRead, Key: fmt.Sprintf("k%d", i%100)})
			at += 5 * time.Millisecond
		}
	}
	// Phase 2: 10 periods of write-heavy traffic on 5 hot keys, with
	// reads chasing writes.
	for p := 0; p < 10; p++ {
		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("hot%d", i%5)
			kind := OpWrite
			if i%2 == 1 {
				kind = OpRead
			}
			tr.Ops = append(tr.Ops, Op{At: at, Kind: kind, Key: key})
			at += 2500 * time.Microsecond
		}
	}
	return tr
}

func TestFeaturizerCounts(t *testing.T) {
	fz := NewFeaturizer(0)
	fz.Observe(Op{At: 0, Kind: OpWrite, Key: "a"})
	fz.Observe(Op{At: 100 * time.Millisecond, Kind: OpRead, Key: "a"})  // RAW hit
	fz.Observe(Op{At: 200 * time.Millisecond, Kind: OpRead, Key: "b"})  // no write before
	fz.Observe(Op{At: 1900 * time.Millisecond, Kind: OpRead, Key: "a"}) // outside RAW window
	f := fz.Finish(2 * time.Second)
	if f.OpRate != 2 {
		t.Errorf("op rate = %f", f.OpRate)
	}
	if f.ReadRatio != 0.75 {
		t.Errorf("read ratio = %f", f.ReadRatio)
	}
	if f.WriteRate != 0.5 {
		t.Errorf("write rate = %f", f.WriteRate)
	}
	if math.Abs(f.ReadAfterWrite-1.0/3) > 1e-9 {
		t.Errorf("RAW = %f, want 1/3", f.ReadAfterWrite)
	}
	if f.WorkingSet != 1 { // 2 distinct keys / 2 s
		t.Errorf("working set = %f", f.WorkingSet)
	}
}

func TestFeaturizerResetKeepsRecentWrites(t *testing.T) {
	fz := NewFeaturizer(0)
	fz.Observe(Op{At: 900 * time.Millisecond, Kind: OpWrite, Key: "a"})
	fz.Reset(time.Second)
	fz.Observe(Op{At: 1100 * time.Millisecond, Kind: OpRead, Key: "a"})
	f := fz.Finish(2 * time.Second)
	if f.ReadAfterWrite != 1 {
		t.Errorf("RAW across period boundary lost: %f", f.ReadAfterWrite)
	}
}

func TestBuildTimeline(t *testing.T) {
	tr := syntheticTrace()
	tl := BuildTimeline(tr, time.Second)
	if len(tl.Periods) < 15 {
		t.Fatalf("periods = %d", len(tl.Periods))
	}
	first, last := tl.Periods[0].Features, tl.Periods[len(tl.Periods)-1].Features
	if first.ReadRatio < 0.99 {
		t.Errorf("first phase should be read-only: %f", first.ReadRatio)
	}
	if last.ReadRatio > 0.6 {
		t.Errorf("last phase should be write-heavy: %f", last.ReadRatio)
	}
	if last.ReadAfterWrite < 0.5 {
		t.Errorf("last phase should chase writes: %f", last.ReadAfterWrite)
	}
	if BuildTimeline(Trace{}, time.Second).Periods != nil {
		t.Error("empty trace produced periods")
	}
}

func TestNormalizerRoundtripProperty(t *testing.T) {
	points := [][]float64{{1, 100, 3}, {2, 120, 9}, {5, 90, 1}, {9, 130, 4}}
	n := FitNormalizer(points)
	if err := quick.Check(func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) ||
			math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		v := []float64{a, b, c}
		back := n.Restore(n.Apply(v))
		for i := range v {
			scale := math.Max(1, math.Abs(v[i]))
			if math.Abs(back[i]-v[i])/scale > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKMeansRecoversSeparableClusters(t *testing.T) {
	src := stats.NewSource(5)
	var points [][]float64
	var truth []int
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 5}}
	for i := 0; i < 300; i++ {
		c := i % 3
		points = append(points, []float64{
			centers[c][0] + src.NormFloat64()*0.5,
			centers[c][1] + src.NormFloat64()*0.5,
		})
		truth = append(truth, c)
	}
	km, assign := Cluster(points, 3, src, 100)
	if km.K != 3 {
		t.Fatalf("k = %d", km.K)
	}
	// Cluster labels are arbitrary; check assignment purity instead.
	purity := clusterPurity(assign, truth, 3)
	if purity < 0.98 {
		t.Errorf("purity = %f", purity)
	}
	// All points assigned to their nearest centroid.
	for i, p := range points {
		if km.Assign(p) != assign[i] {
			t.Fatal("assignment is not nearest-centroid")
		}
	}
}

func clusterPurity(assign, truth []int, k int) float64 {
	votes := make(map[[2]int]int)
	for i := range assign {
		votes[[2]int{assign[i], truth[i]}]++
	}
	correct := 0
	for c := 0; c < k; c++ {
		best := 0
		for tc := 0; tc < k; tc++ {
			if v := votes[[2]int{c, tc}]; v > best {
				best = v
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

func TestSelectKFindsTwoPhases(t *testing.T) {
	tl := BuildTimeline(syntheticTrace(), time.Second)
	var points [][]float64
	for _, p := range tl.Periods {
		points = append(points, p.Features.Vector())
	}
	norm := FitNormalizer(points)
	for i := range points {
		points[i] = norm.Apply(points[i])
	}
	km, _, score := SelectK(points, 2, 6, stats.NewSource(1))
	if km.K != 2 {
		t.Errorf("SelectK chose %d states for a 2-phase trace (silhouette %.3f)", km.K, score)
	}
	if score < 0.5 {
		t.Errorf("silhouette %.3f too low for separable phases", score)
	}
}

func TestGenericRulesMapping(t *testing.T) {
	cases := []struct {
		f    Features
		want PolicyKind
	}{
		{Features{ReadRatio: 1.0, WriteRate: 0}, PolicyEventual},
		{Features{ReadRatio: 0.5, WriteRate: 100, ReadAfterWrite: 0.5}, PolicyStrong},
		{Features{ReadRatio: 0.9, WriteRate: 50, ReadAfterWrite: 0.10}, PolicyHarmony},
		{Features{ReadRatio: 0.9, WriteRate: 50, ReadAfterWrite: 0.01}, PolicyHarmony},
	}
	for i, c := range cases {
		pol, rule := policyFor(c.f, GenericRules())
		if pol.Kind != c.want {
			t.Errorf("case %d: policy %v (rule %s), want kind %v", i, pol, rule, c.want)
		}
	}
}

func TestCustomRulesTakePrecedence(t *testing.T) {
	custom := []Rule{{
		Name:    "always-geo",
		Applies: func(Features) bool { return true },
		Policy:  Policy{Kind: PolicyGeo},
	}}
	rules := append(custom, GenericRules()...)
	pol, rule := policyFor(Features{ReadRatio: 1}, rules)
	if pol.Kind != PolicyGeo || rule != "always-geo" {
		t.Errorf("custom rule ignored: %v via %s", pol, rule)
	}
}

func TestBuildModelEndToEnd(t *testing.T) {
	tl := BuildTimeline(syntheticTrace(), time.Second)
	m, err := BuildModel(tl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.States) != 2 {
		t.Fatalf("states = %d", len(m.States))
	}
	// The write-heavy RAW state must get a stronger policy than the
	// read-only state.
	var readState, writeState *State
	for i := range m.States {
		if m.States[i].Centroid.ReadRatio > 0.9 {
			readState = &m.States[i]
		} else {
			writeState = &m.States[i]
		}
	}
	if readState == nil || writeState == nil {
		t.Fatalf("states not separated: %+v", m.States)
	}
	if readState.Policy.Kind != PolicyEventual {
		t.Errorf("read-only state policy = %v", readState.Policy)
	}
	if writeState.Policy.Kind != PolicyStrong {
		t.Errorf("write-heavy RAW state policy = %v", writeState.Policy)
	}
	// Classification of each phase's centroid-like features.
	if got := m.Classify(readState.Centroid); got.ID != readState.ID {
		t.Error("classify returned wrong state for read centroid")
	}
	if m.Describe() == "" {
		t.Error("empty description")
	}
}

func TestBuildModelRejectsTinyTimeline(t *testing.T) {
	if _, err := BuildModel(Timeline{}, DefaultOptions()); err == nil {
		t.Error("empty timeline accepted")
	}
}

func TestCollectorLimit(t *testing.T) {
	c := NewCollector(2)
	h := c.Hooks()
	h.ReadStarted(0, "a")
	h.ReadStarted(1, "b")
	h.ReadStarted(2, "c")
	if len(c.Trace().Ops) != 2 {
		t.Errorf("limit not enforced: %d", len(c.Trace().Ops))
	}
}
