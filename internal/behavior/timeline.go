package behavior

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// FeatureDim is the dimensionality of the feature vectors.
const FeatureDim = 6

// Features summarize one period of application behaviour — the
// "predefined metrics collected per time period" of §III-C.
type Features struct {
	// OpRate is operations per second.
	OpRate float64
	// ReadRatio is the read fraction of operations.
	ReadRatio float64
	// WriteRate is writes per second.
	WriteRate float64
	// ReadAfterWrite is the fraction of reads landing within one second
	// of a write to the same key — a proxy for how exposed the
	// application is to replication lag.
	ReadAfterWrite float64
	// KeySkew is the share of accesses going to the 16 hottest keys.
	KeySkew float64
	// WorkingSet is the number of distinct keys touched per second.
	WorkingSet float64
}

// Vector flattens the features for clustering.
func (f Features) Vector() []float64 {
	return []float64{f.OpRate, f.ReadRatio, f.WriteRate, f.ReadAfterWrite, f.KeySkew, f.WorkingSet}
}

// featuresFromVector restores Features from a (denormalized) vector.
func featuresFromVector(v []float64) Features {
	return Features{
		OpRate: v[0], ReadRatio: v[1], WriteRate: v[2],
		ReadAfterWrite: v[3], KeySkew: v[4], WorkingSet: v[5],
	}
}

// String renders the features compactly.
func (f Features) String() string {
	return fmt.Sprintf("rate=%.0f/s read=%.0f%% writes=%.0f/s raw=%.0f%% skew=%.0f%% wset=%.0f/s",
		f.OpRate, 100*f.ReadRatio, f.WriteRate, 100*f.ReadAfterWrite, 100*f.KeySkew, f.WorkingSet)
}

// Period is one timeline segment.
type Period struct {
	Start    time.Duration
	Features Features
}

// Timeline is the application's behaviour over time, the input of the
// modeling process.
type Timeline struct {
	PeriodLen time.Duration
	Periods   []Period
}

// rawWindow is the read-after-write proximity used by the
// ReadAfterWrite feature.
const rawWindow = time.Second

// Featurizer accumulates one period's feature inputs; it is shared by the
// offline timeline builder and the online classifier.
type Featurizer struct {
	start     time.Duration
	ops       uint64
	reads     uint64
	writes    uint64
	rawReads  uint64
	hot       *stats.HeavyHitters
	distinct  map[string]struct{}
	lastWrite map[string]time.Duration
}

// NewFeaturizer returns an empty featurizer starting at start.
func NewFeaturizer(start time.Duration) *Featurizer {
	return &Featurizer{
		start:     start,
		hot:       stats.NewHeavyHitters(64),
		distinct:  make(map[string]struct{}),
		lastWrite: make(map[string]time.Duration),
	}
}

// Observe feeds one operation.
func (f *Featurizer) Observe(op Op) {
	f.ops++
	f.hot.Observe(op.Key)
	f.distinct[op.Key] = struct{}{}
	switch op.Kind {
	case OpRead:
		f.reads++
		if w, ok := f.lastWrite[op.Key]; ok && op.At-w <= rawWindow {
			f.rawReads++
		}
	case OpWrite:
		f.writes++
		f.lastWrite[op.Key] = op.At
	}
}

// Ops reports the number of operations observed.
func (f *Featurizer) Ops() uint64 { return f.ops }

// Finish produces the period's features given its end time.
func (f *Featurizer) Finish(end time.Duration) Features {
	secs := (end - f.start).Seconds()
	if secs <= 0 {
		secs = 1
	}
	out := Features{
		OpRate:     float64(f.ops) / secs,
		WriteRate:  float64(f.writes) / secs,
		WorkingSet: float64(len(f.distinct)) / secs,
	}
	if f.ops > 0 {
		out.ReadRatio = float64(f.reads) / float64(f.ops)
	}
	if f.reads > 0 {
		out.ReadAfterWrite = float64(f.rawReads) / float64(f.reads)
	}
	if f.ops > 0 {
		var hotCount uint64
		for _, kc := range f.hot.Top(16) {
			hotCount += kc.Count
		}
		out.KeySkew = float64(hotCount) / float64(f.ops)
	}
	return out
}

// Reset clears the featurizer for the next period, keeping recent write
// times so read-after-write detection works across period boundaries.
func (f *Featurizer) Reset(start time.Duration) {
	f.start = start
	f.ops, f.reads, f.writes, f.rawReads = 0, 0, 0, 0
	f.hot.Reset()
	f.distinct = make(map[string]struct{})
	for k, w := range f.lastWrite {
		if start-w > rawWindow {
			delete(f.lastWrite, k)
		}
	}
}

// BuildTimeline cuts a trace into fixed periods and extracts features,
// the first step of the offline modeling process.
func BuildTimeline(trace Trace, periodLen time.Duration) Timeline {
	tl := Timeline{PeriodLen: periodLen}
	if len(trace.Ops) == 0 || periodLen <= 0 {
		return tl
	}
	start := trace.Ops[0].At
	cur := start - start%periodLen
	fz := NewFeaturizer(cur)
	flush := func(end time.Duration) {
		if fz.Ops() > 0 {
			tl.Periods = append(tl.Periods, Period{Start: cur, Features: fz.Finish(end)})
		}
	}
	for _, op := range trace.Ops {
		for op.At >= cur+periodLen {
			flush(cur + periodLen)
			cur += periodLen
			fz.Reset(cur)
		}
		fz.Observe(op)
	}
	flush(cur + periodLen)
	return tl
}
