package behavior

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Persistence for the offline workflow: traces are collected on one day
// and modeled later, and fitted models ship to the runtime classifier —
// both cross process boundaries in practice, so both serialize to JSON.

// jsonOp is the wire form of one trace operation.
type jsonOp struct {
	AtMicros int64  `json:"t"`
	Kind     int    `json:"k"`
	Key      string `json:"key"`
}

// WriteTo streams the trace as JSON.
func (t Trace) WriteTo(w io.Writer) (int64, error) {
	ops := make([]jsonOp, len(t.Ops))
	for i, op := range t.Ops {
		ops[i] = jsonOp{AtMicros: int64(op.At / time.Microsecond), Kind: int(op.Kind), Key: op.Key}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(ops); err != nil {
		return 0, fmt.Errorf("behavior: encoding trace: %w", err)
	}
	return 0, nil
}

// ReadTrace parses a trace written by WriteTo.
func ReadTrace(r io.Reader) (Trace, error) {
	var ops []jsonOp
	if err := json.NewDecoder(r).Decode(&ops); err != nil {
		return Trace{}, fmt.Errorf("behavior: decoding trace: %w", err)
	}
	t := Trace{Ops: make([]Op, len(ops))}
	for i, op := range ops {
		t.Ops[i] = Op{
			At:   time.Duration(op.AtMicros) * time.Microsecond,
			Kind: OpKind(op.Kind),
			Key:  op.Key,
		}
	}
	return t, nil
}

// jsonModel is the wire form of a fitted model. Policies and centroids
// serialize fully; rules do not (they are code), so a loaded model keeps
// the policies that were assigned at fit time.
type jsonModel struct {
	PeriodMicros int64       `json:"period_us"`
	NormMean     []float64   `json:"norm_mean"`
	NormStd      []float64   `json:"norm_std"`
	Centroids    [][]float64 `json:"centroids"`
	Silhouette   float64     `json:"silhouette"`
	States       []jsonState `json:"states"`
}

type jsonState struct {
	Name     string  `json:"name"`
	Policy   int     `json:"policy"`
	Alpha    float64 `json:"alpha"`
	RuleName string  `json:"rule"`
	Periods  int     `json:"periods"`
}

// WriteTo serializes the fitted model as JSON.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	jm := jsonModel{
		PeriodMicros: int64(m.PeriodLen / time.Microsecond),
		NormMean:     m.Norm.Mean,
		NormStd:      m.Norm.Std,
		Centroids:    m.KM.Centroids,
		Silhouette:   m.Silhouette,
	}
	for _, s := range m.States {
		jm.States = append(jm.States, jsonState{
			Name: s.Name, Policy: int(s.Policy.Kind), Alpha: s.Policy.Alpha,
			RuleName: s.RuleName, Periods: s.Periods,
		})
	}
	if err := json.NewEncoder(w).Encode(jm); err != nil {
		return 0, fmt.Errorf("behavior: encoding model: %w", err)
	}
	return 0, nil
}

// ReadModel parses a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	var jm jsonModel
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, fmt.Errorf("behavior: decoding model: %w", err)
	}
	if len(jm.Centroids) == 0 || len(jm.Centroids) != len(jm.States) {
		return nil, fmt.Errorf("behavior: model has %d centroids for %d states",
			len(jm.Centroids), len(jm.States))
	}
	m := &Model{
		PeriodLen:  time.Duration(jm.PeriodMicros) * time.Microsecond,
		Norm:       Normalizer{Mean: jm.NormMean, Std: jm.NormStd},
		KM:         &KMeans{K: len(jm.Centroids), Centroids: jm.Centroids},
		Silhouette: jm.Silhouette,
	}
	for i, js := range jm.States {
		m.States = append(m.States, State{
			ID:       i,
			Name:     js.Name,
			Centroid: featuresFromVector(m.Norm.Restore(jm.Centroids[i])),
			Policy:   Policy{Kind: PolicyKind(js.Policy), Alpha: js.Alpha},
			RuleName: js.RuleName,
			Periods:  js.Periods,
		})
	}
	return m, nil
}
