// Package behavior implements the paper's third contribution (§III-C):
// customized consistency by application behavior modeling. An offline
// pipeline cuts an application's access trace into periods, extracts
// per-period features, clusters them with k-means into application
// states, and associates each state with a consistency policy through a
// rules engine (generic rules plus administrator-supplied custom rules).
// At runtime a nearest-centroid classifier identifies the current state
// from the live metric stream and switches the session to the state's
// policy.
package behavior

import (
	"time"

	"repro/internal/kv"
	"repro/internal/storage"
)

// OpKind distinguishes trace operations.
type OpKind int

// Trace operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// Op is one access-trace record.
type Op struct {
	At   time.Duration
	Kind OpKind
	Key  string
}

// Trace is an application access log ordered by time.
type Trace struct {
	Ops []Op
}

// Duration reports the trace's time span.
func (t Trace) Duration() time.Duration {
	if len(t.Ops) == 0 {
		return 0
	}
	return t.Ops[len(t.Ops)-1].At - t.Ops[0].At
}

// Collector records an access trace from live store traffic; register its
// Hooks on the cluster. Collection is what the paper calls gathering
// "application data access past traces".
type Collector struct {
	trace Trace
	limit int
}

// NewCollector returns a collector keeping at most limit operations
// (0 = unbounded).
func NewCollector(limit int) *Collector {
	return &Collector{limit: limit}
}

// Hooks returns the instrumentation hooks to register.
func (c *Collector) Hooks() *kv.Hooks {
	return &kv.Hooks{
		ReadStarted: func(now time.Duration, key string) {
			c.add(Op{At: now, Kind: OpRead, Key: key})
		},
		WriteStarted: func(now time.Duration, key string, _ storage.Version, _ int) {
			c.add(Op{At: now, Kind: OpWrite, Key: key})
		},
	}
}

func (c *Collector) add(op Op) {
	if c.limit > 0 && len(c.trace.Ops) >= c.limit {
		return
	}
	c.trace.Ops = append(c.trace.Ops, op)
}

// Trace returns the recorded trace.
func (c *Collector) Trace() Trace { return c.trace }
