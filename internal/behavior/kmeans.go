package behavior

import (
	"math"

	"repro/internal/stats"
)

// Normalizer z-scores feature columns so clustering distances are not
// dominated by large-magnitude features (op rates vs ratios). It is kept
// in the model so runtime features are projected identically.
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// FitNormalizer learns column statistics from points.
func FitNormalizer(points [][]float64) Normalizer {
	if len(points) == 0 {
		return Normalizer{}
	}
	dim := len(points[0])
	n := Normalizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, p := range points {
		for j, v := range p {
			n.Mean[j] += v
		}
	}
	for j := range n.Mean {
		n.Mean[j] /= float64(len(points))
	}
	for _, p := range points {
		for j, v := range p {
			d := v - n.Mean[j]
			n.Std[j] += d * d
		}
	}
	for j := range n.Std {
		n.Std[j] = math.Sqrt(n.Std[j] / float64(len(points)))
		if n.Std[j] < 1e-12 {
			n.Std[j] = 1
		}
	}
	return n
}

// Apply projects a vector into normalized space.
func (n Normalizer) Apply(v []float64) []float64 {
	if len(n.Mean) == 0 {
		return append([]float64(nil), v...)
	}
	out := make([]float64, len(v))
	for j, x := range v {
		out[j] = (x - n.Mean[j]) / n.Std[j]
	}
	return out
}

// Restore maps a normalized vector back to feature space.
func (n Normalizer) Restore(v []float64) []float64 {
	if len(n.Mean) == 0 {
		return append([]float64(nil), v...)
	}
	out := make([]float64, len(v))
	for j, x := range v {
		out[j] = x*n.Std[j] + n.Mean[j]
	}
	return out
}

// KMeans is a fitted k-means clustering.
type KMeans struct {
	K         int
	Centroids [][]float64
	Inertia   float64 // sum of squared distances to assigned centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Assign returns the nearest centroid index for v.
func (km *KMeans) Assign(v []float64) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range km.Centroids {
		if d := sqDist(v, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Cluster runs k-means++ initialization followed by Lloyd iterations.
// points must be non-empty and of equal dimension.
func Cluster(points [][]float64, k int, src *stats.Source, maxIters int) (*KMeans, []int) {
	if k <= 0 {
		k = 1
	}
	if k > len(points) {
		k = len(points)
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	km := &KMeans{K: k}

	// k-means++ seeding: first centroid uniform, then proportional to
	// squared distance from the nearest chosen centroid.
	first := points[src.IntN(len(points))]
	km.Centroids = append(km.Centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(km.Centroids) < k {
		var total float64
		for i, p := range points {
			d2[i] = math.Inf(1)
			for _, c := range km.Centroids {
				if d := sqDist(p, c); d < d2[i] {
					d2[i] = d
				}
			}
			total += d2[i]
		}
		if total <= 0 {
			// All remaining points coincide with a centroid.
			km.Centroids = append(km.Centroids, append([]float64(nil), points[src.IntN(len(points))]...))
			continue
		}
		target := src.Float64() * total
		var cum float64
		chosen := len(points) - 1
		for i, d := range d2 {
			cum += d
			if cum >= target {
				chosen = i
				break
			}
		}
		km.Centroids = append(km.Centroids, append([]float64(nil), points[chosen]...))
	}

	assign := make([]int, len(points))
	dim := len(points[0])
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range points {
			a := km.Assign(p)
			if a != assign[i] {
				assign[i] = a
				changed = true
			}
		}
		sums := make([][]float64, km.K)
		counts := make([]int, km.K)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, p := range points {
			a := assign[i]
			counts[a]++
			for j, v := range p {
				sums[a][j] += v
			}
		}
		for i := range km.Centroids {
			if counts[i] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for pi, p := range points {
					if d := sqDist(p, km.Centroids[assign[pi]]); d > farD {
						far, farD = pi, d
					}
				}
				copy(km.Centroids[i], points[far])
				changed = true
				continue
			}
			for j := range km.Centroids[i] {
				km.Centroids[i][j] = sums[i][j] / float64(counts[i])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	km.Inertia = 0
	for i, p := range points {
		km.Inertia += sqDist(p, km.Centroids[assign[i]])
	}
	return km, assign
}

// Silhouette computes the mean silhouette coefficient of an assignment —
// the model-selection criterion for choosing k.
func Silhouette(points [][]float64, assign []int, k int) float64 {
	if k < 2 || len(points) < 2 {
		return 0
	}
	var total float64
	var counted int
	for i, p := range points {
		var intra, intraN float64
		interMean := make([]float64, k)
		interN := make([]float64, k)
		for j, q := range points {
			if i == j {
				continue
			}
			d := math.Sqrt(sqDist(p, q))
			if assign[j] == assign[i] {
				intra += d
				intraN++
			} else {
				interMean[assign[j]] += d
				interN[assign[j]]++
			}
		}
		if intraN == 0 {
			// Singleton cluster: the conventional silhouette value is 0,
			// which penalizes clusterings that shave off lone points.
			counted++
			continue
		}
		a := intra / intraN
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == assign[i] || interN[c] == 0 {
				continue
			}
			if m := interMean[c] / interN[c]; m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// SelectK clusters for every k in [kMin, kMax] and returns the clustering
// with the best silhouette score.
func SelectK(points [][]float64, kMin, kMax int, src *stats.Source) (*KMeans, []int, float64) {
	if kMin < 2 {
		kMin = 2
	}
	if kMax > len(points) {
		kMax = len(points)
	}
	var bestKM *KMeans
	var bestAssign []int
	bestScore := math.Inf(-1)
	for k := kMin; k <= kMax; k++ {
		km, assign := Cluster(points, k, src.StreamN("kmeans", k), 100)
		score := Silhouette(points, assign, k)
		// Strict improvement required: ties go to the simpler model.
		if score > bestScore+1e-9 {
			bestKM, bestAssign, bestScore = km, assign, score
		}
	}
	if bestKM == nil {
		bestKM, bestAssign = Cluster(points, 1, src, 10)
		bestScore = 0
	}
	return bestKM, bestAssign, bestScore
}
