package stats

import (
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	root := NewSource(7)
	s1 := root.Stream("alpha")
	s2 := root.Stream("beta")
	s1again := NewSource(7).Stream("alpha")

	if s1.Uint64() != s1again.Uint64() {
		t.Error("same (seed, name) stream not reproducible")
	}
	if s1.Seed() == s2.Seed() {
		t.Error("different stream names produced the same derived seed")
	}
}

func TestStreamNDistinct(t *testing.T) {
	root := NewSource(9)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		s := root.StreamN("node", i)
		if seen[s.Seed()] {
			t.Fatalf("StreamN collision at index %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestStreamDoesNotPerturbParent(t *testing.T) {
	a := NewSource(11)
	b := NewSource(11)
	_ = a.Stream("whatever") // deriving a stream must not consume parent draws
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Stream() perturbed the parent source")
		}
	}
}

func TestSplitmix64Bijective(t *testing.T) {
	// splitmix64 must not collapse nearby inputs.
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		v := splitmix64(i)
		if seen[v] {
			t.Fatalf("collision at input %d", i)
		}
		seen[v] = true
	}
}

func TestFNVHash64Deterministic(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		return FNVHash64(v) == FNVHash64(v)
	}, nil); err != nil {
		t.Error(err)
	}
	if FNVHash64(1) == FNVHash64(2) {
		t.Error("trivial collision")
	}
}
