package stats

import (
	"hash/fnv"
	"math"
	"time"
)

// IntGenerator produces non-negative integers drawn from some distribution
// over [0, n); it is the contract used for key selection in workloads.
type IntGenerator interface {
	// Next draws the next value using src.
	Next(src *Source) uint64
}

// Uniform draws uniformly from [0, N).
type Uniform struct{ N uint64 }

// Next implements IntGenerator.
func (u Uniform) Next(src *Source) uint64 { return src.Uint64N(u.N) }

// ZipfTheta is the skew constant YCSB uses for its zipfian workloads.
const ZipfTheta = 0.99

// Zipfian draws from a zipfian distribution over [0, items) using the
// rejection-free method of Gray et al. ("Quickly generating
// billion-record synthetic databases", SIGMOD'94), the same algorithm as
// YCSB's ZipfianGenerator. Item 0 is the most popular.
type Zipfian struct {
	items      uint64
	theta      float64
	alpha      float64
	zetan      float64
	eta        float64
	zeta2theta float64
}

// NewZipfian returns a zipfian generator over [0, items) with skew theta
// (YCSB default 0.99). It panics if items is zero.
func NewZipfian(items uint64, theta float64) *Zipfian {
	if items == 0 {
		panic("stats: zipfian over zero items")
	}
	z := &Zipfian{items: items, theta: theta}
	z.zetan = zeta(items, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

// Items reports the size of the domain.
func (z *Zipfian) Items() uint64 { return z.items }

// Next implements IntGenerator.
func (z *Zipfian) Next(src *Source) uint64 {
	u := src.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

func zeta(n uint64, theta float64) float64 {
	// Direct summation; domains used in workloads are at most a few
	// million items and the constant is computed once per generator.
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// ScrambledZipfian spreads zipfian popularity over the whole key space by
// hashing the zipfian rank, exactly as YCSB's ScrambledZipfianGenerator.
// Popular items are scattered rather than clustered at low ids.
type ScrambledZipfian struct {
	z     *Zipfian
	items uint64
}

// NewScrambledZipfian returns a scrambled zipfian generator over [0, items).
func NewScrambledZipfian(items uint64, theta float64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(items, theta), items: items}
}

// Next implements IntGenerator.
func (s *ScrambledZipfian) Next(src *Source) uint64 {
	return FNVHash64(s.z.Next(src)) % s.items
}

// Latest favours recently inserted items: rank 0 is the newest item. The
// caller advances the horizon as inserts happen (YCSB's "latest"
// distribution for workload D).
type Latest struct {
	z       *Zipfian
	horizon uint64
}

// NewLatest returns a latest-skewed generator whose initial horizon is
// items (the current number of inserted records).
func NewLatest(items uint64, theta float64) *Latest {
	return &Latest{z: NewZipfian(items, theta), horizon: items}
}

// Advance tells the generator that n more records exist.
func (l *Latest) Advance(n uint64) { l.horizon += n }

// Next implements IntGenerator.
func (l *Latest) Next(src *Source) uint64 {
	r := l.z.Next(src)
	if r >= l.horizon {
		r = l.horizon - 1
	}
	return l.horizon - 1 - r
}

// FNVHash64 is the 64-bit FNV-1a hash of v's eight little-endian bytes; it
// is the permutation YCSB uses to scramble zipfian ranks.
func FNVHash64(v uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// Exponential draws an exponentially distributed duration with the given
// mean; it is the inter-arrival law of a Poisson process.
func Exponential(src *Source, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(src.ExpFloat64() * float64(mean))
}

// LogNormal models a latency distribution with the given median and sigma
// (shape). WAN RTTs are well described by lognormal tails.
type LogNormal struct {
	Mu    float64 // log of the median
	Sigma float64
}

// NewLogNormal returns a lognormal law with the given median and shape.
func NewLogNormal(median time.Duration, sigma float64) LogNormal {
	return LogNormal{Mu: math.Log(float64(median)), Sigma: sigma}
}

// Sample draws one duration.
func (l LogNormal) Sample(src *Source) time.Duration {
	return time.Duration(math.Exp(l.Mu + l.Sigma*src.NormFloat64()))
}

// Mean reports the analytic mean of the law.
func (l LogNormal) Mean() time.Duration {
	return time.Duration(math.Exp(l.Mu + l.Sigma*l.Sigma/2))
}
