package stats

import "time"

// RateEstimator measures an event arrival rate (events per second) over a
// sliding window of fixed length, using slotted counts. All times are the
// caller's clock — virtual time under simulation, wall time live — so the
// estimator itself is clock-agnostic. The zero value is not usable; use
// NewRateEstimator.
type RateEstimator struct {
	slot   time.Duration
	slots  []float64
	head   int           // index of the slot containing `cursor`
	cursor time.Duration // start time of the head slot
	primed bool
}

// NewRateEstimator returns an estimator with the given window split into
// nslots slots. Longer windows smooth more; shorter windows adapt faster.
func NewRateEstimator(window time.Duration, nslots int) *RateEstimator {
	if nslots <= 0 || window <= 0 {
		panic("stats: rate estimator needs a positive window and slot count")
	}
	return &RateEstimator{
		slot:  window / time.Duration(nslots),
		slots: make([]float64, nslots),
	}
}

// advance rotates the slot ring so that now falls inside the head slot.
func (r *RateEstimator) advance(now time.Duration) {
	if !r.primed {
		r.cursor = now - now%r.slot
		r.primed = true
		return
	}
	for now >= r.cursor+r.slot {
		r.head = (r.head + 1) % len(r.slots)
		r.slots[r.head] = 0
		r.cursor += r.slot
		// Cap the catch-up work when the estimator was idle for many
		// windows: everything is zero after a full rotation anyway.
		if now-r.cursor > r.slot*time.Duration(len(r.slots)+1) {
			r.cursor = now - now%r.slot
			for i := range r.slots {
				r.slots[i] = 0
			}
		}
	}
}

// Add records n events at time now.
func (r *RateEstimator) Add(now time.Duration, n float64) {
	r.advance(now)
	r.slots[r.head] += n
}

// Rate reports events per second over the window ending at now.
func (r *RateEstimator) Rate(now time.Duration) float64 {
	r.advance(now)
	var sum float64
	for _, c := range r.slots {
		sum += c
	}
	window := r.slot * time.Duration(len(r.slots))
	return sum / window.Seconds()
}

// Count reports the raw number of events currently inside the window.
func (r *RateEstimator) Count(now time.Duration) float64 {
	r.advance(now)
	var sum float64
	for _, c := range r.slots {
		sum += c
	}
	return sum
}

// Window reports the configured window length.
func (r *RateEstimator) Window() time.Duration {
	return r.slot * time.Duration(len(r.slots))
}

// EWMA is an exponentially weighted moving average. The zero value is an
// empty average; the first observation initializes it.
type EWMA struct {
	Alpha float64 // weight of a new observation, in (0, 1]
	value float64
	set   bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	if !e.set {
		e.value, e.set = x, true
		return
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.2
	}
	e.value = a*x + (1-a)*e.value
}

// Value reports the current average (zero before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Set reports whether any observation has been folded in.
func (e *EWMA) Set() bool { return e.set }

// Welford tracks mean and variance online (Welford's algorithm). The zero
// value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe folds x into the statistics.
func (w *Welford) Observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean reports the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}
