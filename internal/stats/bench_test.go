package stats

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(i%5000) * time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1_000_000, ZipfTheta)
	src := NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next(src)
	}
}

func BenchmarkScrambledZipfianNext(b *testing.B) {
	z := NewScrambledZipfian(1_000_000, ZipfTheta)
	src := NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next(src)
	}
}

func BenchmarkRateEstimatorAdd(b *testing.B) {
	r := NewRateEstimator(10*time.Second, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(time.Duration(i)*time.Microsecond, 1)
	}
}

func BenchmarkHeavyHittersObserve(b *testing.B) {
	h := NewHeavyHitters(128)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(keys[i%len(keys)])
	}
}
