package stats

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero-value histogram not empty")
	}
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != 20*time.Millisecond {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Max() < 30*time.Millisecond || h.Max() > 31*time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	if h.Min() > 10*time.Millisecond {
		t.Errorf("min = %v", h.Min())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Millisecond)
	if h.Max() != 0 || h.Count() != 1 {
		t.Error("negative durations must clamp to zero")
	}
}

// TestHistogramQuantileAccuracy checks the documented relative error
// bound (one sub-bucket, i.e. ~3%) against exact quantiles.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var h Histogram
	var exact []float64
	for i := 0; i < 50000; i++ {
		v := time.Duration(rng.ExpFloat64() * float64(20*time.Millisecond))
		h.Record(v)
		exact = append(exact, float64(v))
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := exact[int(q*float64(len(exact)))]
		got := float64(h.Quantile(q))
		if got > want {
			t.Errorf("q%.2f overestimates: got %v want ≤ %v", q, got, want)
		}
		if got < want*0.93 {
			t.Errorf("q%.2f too low: got %.0f want %.0f", q, got, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Errorf("merged count %d", a.Count())
	}
	if a.Max() < b.Max() {
		t.Error("merge lost max")
	}
	if a.Min() > 2*time.Millisecond {
		t.Errorf("merge lost min: %v", a.Min())
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != 200 {
		t.Error("merging empty changed count")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(vals []int64) bool {
		var h Histogram
		for _, v := range vals {
			h.Record(time.Duration(v % int64(time.Hour)))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestHistogramIndexRoundtripProperty(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		if v < 0 {
			v = -v
		}
		i := histIndex(v)
		lo := histLow(i)
		// The bucket's lower bound must not exceed the value, and the
		// next bucket's must.
		return lo <= v && (i+1 >= len(Histogram{}.counts) || histLow(i+1) > v)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("reset did not clear histogram")
	}
}
