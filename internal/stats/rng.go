// Package stats provides the numerical substrate shared by the simulator,
// the workload generator and the adaptive tuners: deterministic splittable
// random sources, the YCSB key-popularity distributions, latency histograms
// and windowed rate estimators.
//
// Everything in this package is driven by explicit clocks and explicit
// random sources so that simulations are bit-reproducible: no calls to
// time.Now and no global rand state.
package stats

import (
	"hash/fnv"
	"math/rand/v2"
)

// Source is a deterministic random source that can be split into
// independent named sub-streams. Splitting lets every simulated component
// (each node, each client, the network) own its own stream so that adding
// a consumer does not perturb the draws seen by the others.
type Source struct {
	*rand.Rand
	seed uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed uint64) *Source {
	return &Source{
		Rand: rand.New(rand.NewPCG(seed, splitmix64(seed))),
		seed: seed,
	}
}

// Stream derives an independent sub-source identified by name. The same
// (seed, name) pair always yields the same stream.
func (s *Source) Stream(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	child := splitmix64(s.seed ^ h.Sum64())
	return NewSource(child)
}

// StreamN derives an independent sub-source identified by name and an
// index, for per-instance streams such as "node" 0..N-1.
func (s *Source) StreamN(name string, n int) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	child := splitmix64(s.seed ^ h.Sum64() ^ splitmix64(uint64(n)+0x9e3779b97f4a7c15))
	return NewSource(child)
}

// Seed reports the seed this source was rooted at.
func (s *Source) Seed() uint64 { return s.seed }

// splitmix64 is the finalizer of the SplitMix64 generator; it is used to
// decorrelate derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
