package stats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// histSubBits fixes the sub-bucket resolution of Histogram: each
// power-of-two octave is split into 2^histSubBits linear sub-buckets,
// giving a worst-case relative quantization error of 2^-histSubBits.
const histSubBits = 5

// Histogram records durations in logarithmic buckets with linear
// sub-buckets (the HdrHistogram layout) so that quantiles over many
// decades of latency stay within ~3% relative error while the footprint
// stays a few kilobytes. The zero value is ready to use.
type Histogram struct {
	counts [64 << histSubBits]uint64
	total  uint64
	sum    int64
	max    int64
	min    int64
}

func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 1<<histSubBits {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - histSubBits
	sub := u >> uint(exp) // in [1<<histSubBits, 2<<histSubBits)
	return int(uint64(exp+1)<<histSubBits + (sub - 1<<histSubBits))
}

// histLow returns the lowest value mapping to bucket i, saturating at
// MaxInt64 for the top octave.
func histLow(i int) int64 {
	if i < 1<<histSubBits {
		return int64(i)
	}
	exp := i>>histSubBits - 1
	sub := uint64(i&(1<<histSubBits-1)) + 1<<histSubBits
	v := sub << uint(exp)
	if exp >= 64-histSubBits-1 && v>>uint(exp) != sub || v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if h.total == 1 || v < h.min {
		h.min = v
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the arithmetic mean of the recorded values.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Max reports the largest recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Min reports the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Quantile reports an estimate of the q-quantile (q in [0,1]) of the
// recorded values; the estimate is the lower bound of the bucket holding
// the quantile, so it never exceeds the true value by more than one
// sub-bucket width.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			return time.Duration(histLow(i))
		}
	}
	return time.Duration(h.max)
}

// Merge adds all observations of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset forgets all observations.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarises the histogram for reports.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}
