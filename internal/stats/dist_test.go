package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestUniformRange(t *testing.T) {
	src := NewSource(1)
	u := Uniform{N: 10}
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := u.Next(src)
		if v >= 10 {
			t.Fatalf("uniform out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("uniform bucket %d wildly off: %d/10000", i, c)
		}
	}
}

func TestZipfianRangeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(items uint64, seed uint64) bool {
		n := items%10000 + 1
		z := NewZipfian(n, ZipfTheta)
		src := NewSource(seed)
		for i := 0; i < 50; i++ {
			if z.Next(src) >= n {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(1000, 0.99)
	src := NewSource(3)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next(src)]++
	}
	// Rank 0 must dominate and ranks must be roughly ordered.
	if counts[0] < counts[1] || counts[1] < counts[5] {
		t.Errorf("zipfian ranks not ordered: c0=%d c1=%d c5=%d", counts[0], counts[1], counts[5])
	}
	p0 := float64(counts[0]) / draws
	// For theta .99 over 1000 items, p0 ≈ 1/zeta ≈ 0.13.
	if p0 < 0.08 || p0 > 0.20 {
		t.Errorf("hot-item probability %f outside expected band", p0)
	}
}

func TestZipfianZeroItemsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero items")
		}
	}()
	NewZipfian(0, 0.99)
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	s := NewScrambledZipfian(10000, 0.99)
	src := NewSource(5)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		v := s.Next(src)
		if v >= 10000 {
			t.Fatalf("scrambled zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest item should not be item 0 systematically (hashing
	// spreads ranks), and skew must persist.
	hot, hotCount := uint64(0), 0
	for k, c := range counts {
		if c > hotCount {
			hot, hotCount = k, c
		}
	}
	if hotCount < 5000 {
		t.Errorf("scrambling destroyed skew: hottest has %d/100000", hotCount)
	}
	_ = hot
}

func TestLatestFavorsRecent(t *testing.T) {
	l := NewLatest(1000, 0.99)
	src := NewSource(7)
	var recent int
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := l.Next(src)
		if v >= 1000 {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= 990 {
			recent++
		}
	}
	if float64(recent)/draws < 0.2 {
		t.Errorf("latest distribution not favoring recent items: %d/%d in top 1%%", recent, draws)
	}
	l.Advance(100)
	for i := 0; i < 1000; i++ {
		if v := l.Next(src); v >= 1100 {
			t.Fatalf("latest ignored advanced horizon: %d", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	src := NewSource(11)
	var sum time.Duration
	const n = 100000
	for i := 0; i < n; i++ {
		sum += Exponential(src, 10*time.Millisecond)
	}
	mean := sum / n
	if mean < 9*time.Millisecond || mean > 11*time.Millisecond {
		t.Errorf("exponential mean %v far from 10ms", mean)
	}
	if Exponential(src, 0) != 0 {
		t.Error("zero mean must yield zero")
	}
}

func TestLogNormalMedianAndMean(t *testing.T) {
	l := NewLogNormal(10*time.Millisecond, 0.5)
	src := NewSource(13)
	var samples []time.Duration
	var sum float64
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		s := l.Sample(src)
		if s < 10*time.Millisecond {
			below++
		}
		sum += float64(s)
		samples = append(samples, s)
	}
	if math.Abs(float64(below)/n-0.5) > 0.02 {
		t.Errorf("median off: %f below the configured median", float64(below)/n)
	}
	empMean := time.Duration(sum / n)
	anaMean := l.Mean()
	ratio := float64(empMean) / float64(anaMean)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("empirical mean %v vs analytic %v", empMean, anaMean)
	}
	_ = samples
}
