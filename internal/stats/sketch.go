package stats

import (
	"hash/fnv"
	"math"
	"math/bits"
	"sort"
)

// HeavyHitters is the space-saving algorithm of Metwally et al.: it tracks
// the approximately most frequent keys of a stream in bounded space. The
// monitor uses it to learn which keys absorb most writes and reads, the
// input of the per-key stale-rate refinement.
type HeavyHitters struct {
	capacity int
	entries  map[string]*hhEntry
	total    uint64
	seq      uint64
}

type hhEntry struct {
	count uint64
	err   uint64 // overestimation bound
	seq   uint64 // insertion order, deterministic eviction tie-break
}

// NewHeavyHitters returns a sketch tracking up to capacity keys.
func NewHeavyHitters(capacity int) *HeavyHitters {
	if capacity <= 0 {
		capacity = 64
	}
	return &HeavyHitters{
		capacity: capacity,
		entries:  make(map[string]*hhEntry, capacity),
	}
}

// Observe feeds one occurrence of key.
func (h *HeavyHitters) Observe(key string) {
	h.total++
	if e, ok := h.entries[key]; ok {
		e.count++
		return
	}
	h.seq++
	if len(h.entries) < h.capacity {
		h.entries[key] = &hhEntry{count: 1, seq: h.seq}
		return
	}
	// Evict the minimum-count key (oldest wins ties, which keeps the
	// scan free of string comparisons and the result deterministic);
	// the newcomer inherits its count as the standard space-saving
	// overestimation.
	var minKey string
	minCount, minSeq := uint64(math.MaxUint64), uint64(math.MaxUint64)
	for k, e := range h.entries {
		if e.count < minCount || (e.count == minCount && e.seq < minSeq) {
			minKey, minCount, minSeq = k, e.count, e.seq
		}
	}
	delete(h.entries, minKey)
	h.entries[key] = &hhEntry{count: minCount + 1, err: minCount, seq: h.seq}
}

// Total reports the stream length observed.
func (h *HeavyHitters) Total() uint64 { return h.total }

// KeyCount is one ranked entry of the sketch.
type KeyCount struct {
	Key   string
	Count uint64 // upper-bound estimate of occurrences
	Err   uint64 // maximum overestimation
}

// Top returns up to n entries by descending count (ties broken by key for
// determinism).
func (h *HeavyHitters) Top(n int) []KeyCount {
	out := make([]KeyCount, 0, len(h.entries))
	for k, e := range h.entries {
		out = append(out, KeyCount{Key: k, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Reset clears the sketch.
func (h *HeavyHitters) Reset() {
	h.entries = make(map[string]*hhEntry, h.capacity)
	h.total = 0
}

// DistinctCounter estimates the number of distinct keys in a stream with
// linear counting over a fixed bitmap: distinct ≈ -m·ln(V) where V is the
// fraction of zero bits. A 64 Ki-bit map stays within a few percent up to
// roughly 100k distinct keys and degrades gracefully beyond.
type DistinctCounter struct {
	bits []uint64
	m    uint64
}

// NewDistinctCounter returns a counter with 2^logBits bits (logBits ≤ 24).
func NewDistinctCounter(logBits int) *DistinctCounter {
	if logBits <= 0 || logBits > 24 {
		logBits = 16
	}
	m := uint64(1) << logBits
	return &DistinctCounter{bits: make([]uint64, m/64), m: m}
}

// Observe feeds one key occurrence.
func (d *DistinctCounter) Observe(key string) {
	h := fnv.New64a()
	h.Write([]byte(key))
	b := h.Sum64() & (d.m - 1)
	d.bits[b/64] |= 1 << (b % 64)
}

// Estimate reports the approximate number of distinct keys observed.
func (d *DistinctCounter) Estimate() float64 {
	var ones uint64
	for _, w := range d.bits {
		ones += uint64(bits.OnesCount64(w))
	}
	zero := d.m - ones
	if zero == 0 {
		return float64(d.m) * math.Log(float64(d.m)) // saturated
	}
	return -float64(d.m) * math.Log(float64(zero)/float64(d.m))
}

// Reset clears the counter.
func (d *DistinctCounter) Reset() {
	for i := range d.bits {
		d.bits[i] = 0
	}
}
