package stats

import (
	"math"
	"math/bits"
	"sort"
)

// HeavyHitters is the space-saving algorithm of Metwally et al.: it tracks
// the approximately most frequent keys of a stream in bounded space. The
// monitor uses it to learn which keys absorb most writes and reads, the
// input of the per-key stale-rate refinement.
//
// Entries live in a dense slice with a map index over it: the hit path is
// one map lookup and an increment, and the eviction path is a linear scan
// of the (cache-resident, pointer-light) slice rather than a map
// iteration — on skewed workloads the miss path runs once per unseen key
// and dominated monitor overhead when it walked the map.
type HeavyHitters struct {
	capacity int
	idx      map[string]int32
	entries  []hhEntry
	total    uint64
	seq      uint64
}

type hhEntry struct {
	key   string
	count uint64
	err   uint64 // overestimation bound
	seq   uint64 // insertion order, deterministic eviction tie-break
}

// NewHeavyHitters returns a sketch tracking up to capacity keys.
func NewHeavyHitters(capacity int) *HeavyHitters {
	if capacity <= 0 {
		capacity = 64
	}
	return &HeavyHitters{
		capacity: capacity,
		idx:      make(map[string]int32, capacity),
		entries:  make([]hhEntry, 0, capacity),
	}
}

// Observe feeds one occurrence of key.
func (h *HeavyHitters) Observe(key string) {
	h.total++
	if i, ok := h.idx[key]; ok {
		h.entries[i].count++
		return
	}
	h.seq++
	if len(h.entries) < h.capacity {
		h.idx[key] = int32(len(h.entries))
		h.entries = append(h.entries, hhEntry{key: key, count: 1, seq: h.seq})
		return
	}
	// Evict the minimum-count key (oldest wins ties, which keeps the
	// scan free of string comparisons and the result deterministic);
	// the newcomer inherits its count as the standard space-saving
	// overestimation.
	min := 0
	for i := 1; i < len(h.entries); i++ {
		e, m := &h.entries[i], &h.entries[min]
		if e.count < m.count || (e.count == m.count && e.seq < m.seq) {
			min = i
		}
	}
	old := &h.entries[min]
	delete(h.idx, old.key)
	minCount := old.count
	*old = hhEntry{key: key, count: minCount + 1, err: minCount, seq: h.seq}
	h.idx[key] = int32(min)
}

// Total reports the stream length observed.
func (h *HeavyHitters) Total() uint64 { return h.total }

// KeyCount is one ranked entry of the sketch.
type KeyCount struct {
	Key   string
	Count uint64 // upper-bound estimate of occurrences
	Err   uint64 // maximum overestimation
}

// Top returns up to n entries by descending count (ties broken by key for
// determinism).
func (h *HeavyHitters) Top(n int) []KeyCount {
	out := make([]KeyCount, 0, len(h.entries))
	for _, e := range h.entries {
		out = append(out, KeyCount{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Reset clears the sketch.
func (h *HeavyHitters) Reset() {
	clear(h.idx)
	h.entries = h.entries[:0]
	h.total = 0
}

// DistinctCounter estimates the number of distinct keys in a stream with
// linear counting over a fixed bitmap: distinct ≈ -m·ln(V) where V is the
// fraction of zero bits. A 64 Ki-bit map stays within a few percent up to
// roughly 100k distinct keys and degrades gracefully beyond.
type DistinctCounter struct {
	bits []uint64
	m    uint64
}

// NewDistinctCounter returns a counter with 2^logBits bits (logBits ≤ 24).
func NewDistinctCounter(logBits int) *DistinctCounter {
	if logBits <= 0 || logBits > 24 {
		logBits = 16
	}
	m := uint64(1) << logBits
	return &DistinctCounter{bits: make([]uint64, m/64), m: m}
}

// Observe feeds one key occurrence. The FNV-1a hash is computed inline:
// this runs on every monitored operation and must not allocate.
func (d *DistinctCounter) Observe(key string) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	b := h & (d.m - 1)
	d.bits[b/64] |= 1 << (b % 64)
}

// Estimate reports the approximate number of distinct keys observed.
func (d *DistinctCounter) Estimate() float64 {
	var ones uint64
	for _, w := range d.bits {
		ones += uint64(bits.OnesCount64(w))
	}
	zero := d.m - ones
	if zero == 0 {
		return float64(d.m) * math.Log(float64(d.m)) // saturated
	}
	return -float64(d.m) * math.Log(float64(zero)/float64(d.m))
}

// Reset clears the counter.
func (d *DistinctCounter) Reset() {
	for i := range d.bits {
		d.bits[i] = 0
	}
}
