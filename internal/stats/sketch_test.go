package stats

import (
	"fmt"
	"math"
	"testing"
)

func TestHeavyHittersExactWhenSmall(t *testing.T) {
	h := NewHeavyHitters(16)
	for i := 0; i < 10; i++ {
		h.Observe("a")
	}
	for i := 0; i < 5; i++ {
		h.Observe("b")
	}
	h.Observe("c")
	top := h.Top(2)
	if top[0].Key != "a" || top[0].Count != 10 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Key != "b" || top[1].Count != 5 {
		t.Errorf("top[1] = %+v", top[1])
	}
	if h.Total() != 16 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHeavyHittersFindsHotKeysUnderEviction(t *testing.T) {
	h := NewHeavyHitters(8)
	src := NewSource(1)
	z := NewZipfian(1000, 0.99)
	truth := make(map[string]int)
	for i := 0; i < 50000; i++ {
		k := fmt.Sprintf("k%d", z.Next(src))
		truth[k]++
		h.Observe(k)
	}
	// The true hottest key must be tracked and ranked first.
	hot, hotCount := "", 0
	for k, c := range truth {
		if c > hotCount {
			hot, hotCount = k, c
		}
	}
	top := h.Top(1)
	if top[0].Key != hot {
		t.Errorf("hottest key %s not found, got %s", hot, top[0].Key)
	}
	// Space-saving overestimates: estimate ≥ true count, bounded by err.
	if top[0].Count < uint64(hotCount) {
		t.Errorf("count underestimated: %d < %d", top[0].Count, hotCount)
	}
	if top[0].Count-top[0].Err > uint64(hotCount) {
		t.Errorf("count minus error bound exceeds truth: %d−%d > %d",
			top[0].Count, top[0].Err, hotCount)
	}
}

func TestHeavyHittersDeterministicTop(t *testing.T) {
	build := func() []KeyCount {
		h := NewHeavyHitters(4)
		for _, k := range []string{"x", "y", "z", "w", "v", "x", "y"} {
			h.Observe(k)
		}
		return h.Top(0)
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic top: %v vs %v", a, b)
		}
	}
}

func TestHeavyHittersReset(t *testing.T) {
	h := NewHeavyHitters(4)
	h.Observe("a")
	h.Reset()
	if h.Total() != 0 || len(h.Top(0)) != 0 {
		t.Error("reset did not clear sketch")
	}
}

func TestDistinctCounterAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 20000} {
		d := NewDistinctCounter(16)
		for i := 0; i < n; i++ {
			d.Observe(fmt.Sprintf("key-%d", i))
			d.Observe(fmt.Sprintf("key-%d", i)) // duplicates must not count
		}
		est := d.Estimate()
		if math.Abs(est-float64(n))/float64(n) > 0.1 {
			t.Errorf("n=%d estimate %.0f off by more than 10%%", n, est)
		}
	}
}

func TestDistinctCounterReset(t *testing.T) {
	d := NewDistinctCounter(12)
	d.Observe("a")
	d.Reset()
	if d.Estimate() != 0 {
		t.Error("reset did not clear counter")
	}
}
