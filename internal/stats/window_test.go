package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

func TestRateEstimatorSteadyRate(t *testing.T) {
	r := NewRateEstimator(10*time.Second, 20)
	// 100 events/s for 10 s.
	for i := 0; i < 1000; i++ {
		r.Add(time.Duration(i)*10*time.Millisecond, 1)
	}
	got := r.Rate(10 * time.Second)
	if math.Abs(got-100) > 5 {
		t.Errorf("rate = %.1f, want ≈100", got)
	}
}

func TestRateEstimatorWindowExpiry(t *testing.T) {
	r := NewRateEstimator(time.Second, 10)
	r.Add(0, 100)
	if got := r.Rate(100 * time.Millisecond); got < 50 {
		t.Errorf("fresh events not counted: %.1f", got)
	}
	// After two windows of silence, the rate must be zero.
	if got := r.Rate(3 * time.Second); got != 0 {
		t.Errorf("stale events still counted: %.1f", got)
	}
}

func TestRateEstimatorLongIdleGap(t *testing.T) {
	r := NewRateEstimator(time.Second, 10)
	r.Add(0, 10)
	r.Add(time.Hour, 10) // catch-up path must not loop for an hour of slots
	got := r.Rate(time.Hour)
	if got < 5 || got > 15 {
		t.Errorf("rate after long gap = %.1f, want ≈10", got)
	}
}

func TestRateEstimatorCount(t *testing.T) {
	r := NewRateEstimator(time.Second, 4)
	r.Add(0, 3)
	r.Add(100*time.Millisecond, 2)
	if got := r.Count(200 * time.Millisecond); got != 5 {
		t.Errorf("count = %.0f, want 5", got)
	}
}

func TestRateEstimatorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRateEstimator(0, 0)
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Set() {
		t.Error("unset EWMA claims set")
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Errorf("first observation must initialize: %f", e.Value())
	}
	for i := 0; i < 50; i++ {
		e.Observe(10)
	}
	if math.Abs(e.Value()-10) > 0.01 {
		t.Errorf("EWMA did not converge: %f", e.Value())
	}
}

func TestEWMABadAlphaFallsBack(t *testing.T) {
	e := NewEWMA(0) // invalid; Observe must still smooth
	e.Observe(100)
	e.Observe(0)
	if e.Value() >= 100 || e.Value() <= 0 {
		t.Errorf("fallback alpha not applied: %f", e.Value())
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var w Welford
	var xs []float64
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()*3 + 7
		xs = append(xs, x)
		w.Observe(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var varSum float64
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	variance := varSum / float64(len(xs))

	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean %f vs %f", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-6 {
		t.Errorf("variance %f vs %f", w.Variance(), variance)
	}
	if w.N() != 10000 {
		t.Errorf("n = %d", w.N())
	}
}
