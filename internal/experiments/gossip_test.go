package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/netsim"
)

// gossipTestPlatform is a 5→6 single-site deployment at test scale: six
// topology nodes, five founding members, one spare to join mid-run.
func gossipTestPlatform() Platform {
	p := Platform{
		Name:    "g5k-gossip-test",
		Build:   func() *netsim.Topology { return netsim.G5KTwoSites(6) },
		Nodes:   6,
		RF:      3,
		Threads: 48,
		Records: 2_000,
		Ops:     12_000,

		ValueBytes: 256,
	}
	g5kProfile(&p)
	return p
}

func TestGossipStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunGossip(gossipTestPlatform(), 1)
	tbl := res.Table
	if len(tbl.Rows) != 2*6 {
		t.Fatalf("rows = %d, want 2 variants × 6 phases", len(tbl.Rows))
	}
	byName := map[string]gossipOutcome{}
	for _, out := range res.Outcomes {
		byName[out.Variant.Name] = out
		if len(out.Phases) != 6 {
			t.Fatalf("%s: phases = %d", out.Variant.Name, len(out.Phases))
		}
		for _, ph := range out.Phases {
			if ph.Ops == 0 {
				t.Errorf("%s/%s ran no ops", out.Variant.Name, ph.Name)
			}
		}
		// Every variant ends at six members with the churn healed.
		if last := out.Phases[len(out.Phases)-1]; last.Members != 6 {
			t.Errorf("%s: settled members = %d, want 6", out.Variant.Name, last.Members)
		}
		if out.Converge < 0 {
			t.Errorf("%s: views never converged after the join", out.Variant.Name)
		}
		// Both variants hold the Harmony staleness target over the run.
		if out.WholeRunStale > 0.10 {
			t.Errorf("%s: whole-run stale %.3f breaches α=10%%", out.Variant.Name, out.WholeRunStale)
		}
		// Stale coordinators must never have read an un-warmed replica
		// while enough converged alternatives existed.
		if out.Usage.WarmViolations != 0 {
			t.Errorf("%s: %d warm-routing violations", out.Variant.Name, out.Usage.WarmViolations)
		}
	}

	// The gossip variant must actually exercise the machinery: probe
	// rounds, disseminated ring events, and a suspicion storm that ages
	// into death verdicts when the storm node fails.
	g := byName["gossip"]
	if g.Usage.GossipRounds == 0 || g.Usage.GossipEvents == 0 {
		t.Errorf("gossip variant ran no dissemination: %+v", g.Usage)
	}
	if g.Usage.GossipSuspicions == 0 || g.Usage.GossipDeadDeclared == 0 {
		t.Errorf("failure storm raised no suspicions/verdicts: suspicions=%d dead=%d",
			g.Usage.GossipSuspicions, g.Usage.GossipDeadDeclared)
	}
	// The atomic baseline has none of it.
	a := byName["atomic"]
	if a.Usage.GossipRounds != 0 || a.Usage.NotOwnerReplies != 0 || a.Usage.WrongOwnerRetries != 0 {
		t.Errorf("atomic variant leaked gossip activity: %+v", a.Usage)
	}
	tbl.Render(os.Stderr)
}

// TestGossipStudyDeterministic: the whole study — both variants, all
// phases, every meter — renders byte-identically across runs with the
// same seed.
func TestGossipStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func() string {
		var sb strings.Builder
		RunGossip(gossipTestPlatform(), 7).Table.Render(&sb)
		return sb.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("gossip study not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
