package experiments

import (
	"strings"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/netsim"
)

// autoscaleTestPlatform is an 8-node ceiling with a 4-node floor at
// test scale; the phased thread fractions swing the offered load
// between "fits the floor" and "needs the ceiling".
func autoscaleTestPlatform() Platform {
	p := Platform{
		Name:       "g5k-autoscale-test",
		Build:      func() *netsim.Topology { return netsim.G5KTwoSites(8) },
		Nodes:      8,
		RF:         3,
		Threads:    112,
		Records:    2_000,
		Ops:        16_000,
		ValueBytes: 256,
	}
	g5kProfile(&p)
	return p
}

func TestAutoscaleStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunAutoscale(autoscaleTestPlatform(), 1)
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	byName := map[string]AutoscaleOutcome{}
	for _, out := range res.Outcomes {
		byName[out.Variant] = out
		if len(out.Phases) != 4 {
			t.Fatalf("%s: %d phases, want 4", out.Variant, len(out.Phases))
		}
	}
	if len(res.Table.Rows) != 3*4 {
		t.Fatalf("rows = %d, want 3 variants × 4 phases", len(res.Table.Rows))
	}
	min, peak, auto := byName["static-min"], byName["static-peak"], byName["autoscale"]

	// Static deployments must not change membership.
	if min.Joins+min.Decommissions+peak.Joins+peak.Decommissions != 0 {
		t.Fatalf("static variants changed membership: min %d/%d peak %d/%d",
			min.Joins, min.Decommissions, peak.Joins, peak.Decommissions)
	}
	// The controller must have both grown the cluster for the peak and
	// shrunk it again when the load receded.
	if auto.Joins == 0 {
		t.Error("autoscale never scaled up")
	}
	if auto.Decommissions == 0 {
		t.Error("autoscale never scaled down")
	}
	peakMembers := 0
	for _, ph := range auto.Phases {
		if ph.Members > peakMembers {
			peakMembers = ph.Members
		}
	}
	if peakMembers <= 4 {
		t.Errorf("autoscale peak membership = %d, never left the floor", peakMembers)
	}

	// The pinned headline relations (deterministic seed):
	// 1. the autoscaled run bills less than static-peak — elasticity
	//    converts idle capacity into money;
	if a, p := auto.TotalBill.Total(), peak.TotalBill.Total(); a >= p {
		t.Errorf("autoscale bill $%.4f ≥ static-peak $%.4f", a, p)
	}
	// 2. while keeping the stale rate within the study's constraint
	//    (α=10%, the same bound Harmony and the provisioning
	//    constraints enforce).
	if auto.StaleRate > autoscaleAlpha {
		t.Errorf("autoscale stale rate %.4f above the α=%.2f constraint", auto.StaleRate, autoscaleAlpha)
	}
	// 3. and cheaper-than-peak must not come from undershooting work:
	//    every variant ran the same phase operation counts.
	for i := range auto.Phases {
		if auto.Phases[i].Ops != peak.Phases[i].Ops {
			t.Errorf("phase %d ops differ: autoscale %d vs static-peak %d",
				i, auto.Phases[i].Ops, peak.Phases[i].Ops)
		}
	}

	// Node-time sanity: autoscale spent less node-time than static-peak
	// and at least the floor's worth.
	nodeSeconds := func(o AutoscaleOutcome) (s float64) {
		for _, ph := range o.Phases {
			s += ph.NodeSeconds
		}
		return s
	}
	if a, p := nodeSeconds(auto), nodeSeconds(peak); a >= p {
		t.Errorf("autoscale node·s %.1f ≥ static-peak %.1f", a, p)
	}
}

// TestAutoscaleDeterministic pins the controller end to end: the same
// seed must reproduce the identical decision log.
func TestAutoscaleDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := autoscaleTestPlatform()
	format := func(ds []autoscale.Decision) []string {
		var lines []string
		for _, d := range ds {
			lines = append(lines, d.String())
		}
		return lines
	}
	a := format(runAutoscaleVariant(p, autoscaleVariant{Name: "autoscale", Size: 4, Auto: true}, 1).Decisions)
	b := format(runAutoscaleVariant(p, autoscaleVariant{Name: "autoscale", Size: 4, Auto: true}, 1).Decisions)
	if len(a) == 0 {
		t.Fatal("no decisions logged")
	}
	if len(a) != len(b) {
		t.Fatalf("decision logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision logs diverge at %d:\n  a: %s\n  b: %s", i, a[i], b[i])
		}
	}
}

func TestAutoscaleRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b strings.Builder
	RunAutoscale(autoscaleTestPlatform(), 7).Table.Render(&b)
	s := b.String()
	for _, want := range []string{"static-min", "static-peak", "autoscale", "peak/update-heavy", "total bill"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}
