package experiments

import (
	"os"
	"testing"
)

// Test scales keep the suite fast while preserving topology and pressure.
const testScale = 0.008

func TestExpA_Grid5000Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	p := G5KHarmony().Scaled(testScale)
	rows, table := RunExpA(p, []float64{0.20, 0.40}, 3)
	if testing.Verbose() {
		table.Render(os.Stderr)
	}
	assertExpAShape(t, rows)
}

func TestExpA_EC2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	p := EC2Harmony().Scaled(testScale)
	rows, table := RunExpA(p, []float64{0.40, 0.60}, 3)
	if testing.Verbose() {
		table.Render(os.Stderr)
	}
	assertExpAShape(t, rows)
}

// assertExpAShape checks the orderings the paper reports: Harmony cuts
// staleness massively versus eventual while beating strong throughput,
// and strong reads are never stale.
func assertExpAShape(t *testing.T, rows []ExpARow) {
	t.Helper()
	eventual, strong := rows[0], rows[1]
	if eventual.Throughput <= strong.Throughput {
		t.Errorf("eventual throughput %.0f should exceed strong %.0f",
			eventual.Throughput, strong.Throughput)
	}
	if strong.StaleRate != 0 {
		t.Errorf("strong (read ALL) must be fresh, got %.3f", strong.StaleRate)
	}
	for _, h := range rows[2:] {
		if h.StaleRate >= eventual.StaleRate {
			t.Errorf("%s: stale %.3f not below eventual %.3f", h.Approach, h.StaleRate, eventual.StaleRate)
		}
		if h.Throughput <= strong.Throughput {
			t.Errorf("%s: throughput %.0f not above strong %.0f", h.Approach, h.Throughput, strong.Throughput)
		}
		if h.AvgReadK <= 1.0-1e-9 || h.AvgReadK > 3.0 {
			t.Errorf("%s: avg read level %.2f outside [1, RF]", h.Approach, h.AvgReadK)
		}
	}
}

func TestExpB1CostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	p := EC2Cost().Scaled(testScale)
	rows, table := RunExpB1(p, 3)
	if testing.Verbose() {
		table.Render(os.Stderr)
	}
	if len(rows) != p.RF {
		t.Fatalf("want %d levels, got %d", p.RF, len(rows))
	}
	// Total cost must not decrease with stronger levels; staleness must
	// not increase.
	for i := 1; i < len(rows); i++ {
		if rows[i].Bill.Total() < rows[i-1].Bill.Total()*0.98 {
			t.Errorf("cost not monotone: %v $%.3f < %v $%.3f",
				rows[i].Level, rows[i].Bill.Total(), rows[i-1].Level, rows[i-1].Bill.Total())
		}
		if rows[i].StaleRate > rows[i-1].StaleRate+0.02 {
			t.Errorf("staleness not decreasing: %v %.3f > %v %.3f",
				rows[i].Level, rows[i].StaleRate, rows[i-1].Level, rows[i-1].StaleRate)
		}
	}
	one := rows[0]
	if one.RelToAll > 0.75 {
		t.Errorf("ONE should cut cost substantially vs ALL, got rel %.2f", one.RelToAll)
	}
	if one.StaleRate < 0.05 {
		t.Errorf("ONE at RF5 under heavy updates should be substantially stale, got %.3f", one.StaleRate)
	}
	quorum := rows[p.RF/2]
	if quorum.StaleRate != 0 {
		t.Errorf("QUORUM must read fresh, got %.3f", quorum.StaleRate)
	}
	if quorum.RelToAll >= 1.0 {
		t.Errorf("QUORUM should be cheaper than ALL, rel %.2f", quorum.RelToAll)
	}
}

func TestExpB2MetricShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	p := EC2Cost().Scaled(testScale)
	samples, table := RunExpB2Metric(p, 3)
	if testing.Verbose() {
		table.Render(os.Stderr)
	}
	for _, s := range samples {
		if s.Best && s.StaleRate > 0.25 {
			t.Errorf("most-efficient level %s (%s) has stale rate %.3f > 25%%",
				s.Level, s.Pattern, s.StaleRate)
		}
	}
}

func TestExpCBismarShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	p := G5KCost().Scaled(testScale)
	rows, table := RunExpC(p, testScale, 3)
	if testing.Verbose() {
		table.Render(os.Stderr)
	}
	var bismarRow, quorumRow, oneRow *ExpCRow
	for i := range rows {
		switch rows[i].Approach {
		case "bismar":
			bismarRow = &rows[i]
		case "static QUORUM":
			quorumRow = &rows[i]
		case "static ONE":
			oneRow = &rows[i]
		}
	}
	if bismarRow == nil || quorumRow == nil || oneRow == nil {
		t.Fatal("missing approaches in results")
	}
	if bismarRow.CostPerMops >= quorumRow.CostPerMops {
		t.Errorf("bismar $%.4f/Mops should undercut static QUORUM $%.4f/Mops",
			bismarRow.CostPerMops, quorumRow.CostPerMops)
	}
	if bismarRow.StaleRate > 0.15 {
		t.Errorf("bismar stale rate %.3f too high (paper: 3.5%%)", bismarRow.StaleRate)
	}
	if oneRow.CostPerMops >= quorumRow.CostPerMops {
		t.Errorf("static ONE should be the cheapest static level")
	}
	if oneRow.StaleRate <= bismarRow.StaleRate {
		t.Errorf("static ONE should be staler than bismar")
	}
}
