package experiments

import (
	"fmt"
	"time"

	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig1Row compares the Figure-1 stale-read model against ground truth for
// one (write rate, read level) point.
type Fig1Row struct {
	WriteRate float64
	ReadK     int
	Predicted float64
	Measured  float64
	Reads     uint64
}

// RunFig1Validation validates Harmony's probabilistic estimator against
// the oracle on a controlled single-key workload: Poisson writes at a
// fixed rate against one key, Poisson reads at every level, on a two-site
// cluster. Prediction uses only monitor-visible signals (ack-delay ranks
// and rates); measurement uses the staleness oracle.
func RunFig1Validation(seed uint64) ([]Fig1Row, *Table) {
	const (
		rf       = 5
		readRate = 200.0
		duration = 40 * time.Second
	)
	type point struct {
		writeRate float64
		k         int
	}
	var points []point
	for _, writeRate := range []float64{2, 10, 50} {
		for k := 1; k <= rf; k++ {
			points = append(points, point{writeRate, k})
		}
	}
	rows := parallelMap(points, func(pt point) Fig1Row {
		return runFig1Point(seed, rf, pt.writeRate, readRate, pt.k, duration)
	})

	t := NewTable("Fig. 1 model validation: predicted vs measured stale-read rate (single key, two sites, RF 5)",
		"write rate (1/s)", "read level k", "predicted stale", "measured stale", "reads")
	for _, r := range rows {
		t.Add(fmt.Sprintf("%.0f", r.WriteRate), r.ReadK, pct(r.Predicted), pct(r.Measured), r.Reads)
	}
	t.Note("prediction uses coordinator-visible ack delays only; measurement is the oracle's ground truth")
	return rows, t
}

func runFig1Point(seed uint64, rf int, writeRate, readRate float64, readK int, duration time.Duration) Fig1Row {
	eng := sim.New(seed)
	topo := netsim.G5KTwoSites(10)
	cfg := kv.DefaultConfig()
	cfg.RF = rf
	cfg.Seed = seed
	cfg.ReadRepair = false // keep propagation purely asynchronous for the model check
	cfg.GlobalRepairChance = 0
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(rf, tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())

	const key = "fig1-key"
	cl.Preload(1, func(uint64) string { return key }, make([]byte, 256))

	var staleReads, totalReads uint64
	value := make([]byte, 256)
	rng := stats.NewSource(seed).Stream("fig1")

	var scheduleWrite, scheduleRead func()
	scheduleWrite = func() {
		gap := stats.Exponential(rng, time.Duration(float64(time.Second)/writeRate))
		eng.Schedule(gap, func() {
			if eng.Now() < duration {
				cl.Write(key, value, kv.One, func(kv.WriteResult) {})
				scheduleWrite()
			}
		})
	}
	scheduleRead = func() {
		gap := stats.Exponential(rng, time.Duration(float64(time.Second)/readRate))
		eng.Schedule(gap, func() {
			if eng.Now() < duration {
				cl.Read(key, kv.Count(readK), func(res kv.ReadResult) {
					if res.Err == nil {
						totalReads++
						if res.Stale {
							staleReads++
						}
					}
				})
				scheduleRead()
			}
		})
	}
	scheduleWrite()
	scheduleRead()
	eng.RunUntil(duration + 5*time.Second)

	snap := mon.Snapshot()
	predicted := harmony.StaleProb(rf, readK, 1, snap.RankDelays, writeRate)
	measured := 0.0
	if totalReads > 0 {
		measured = float64(staleReads) / float64(totalReads)
	}
	return Fig1Row{
		WriteRate: writeRate,
		ReadK:     readK,
		Predicted: predicted,
		Measured:  measured,
		Reads:     totalReads,
	}
}
