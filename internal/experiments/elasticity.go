package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// The elasticity study (PR 4): what scaling the cluster M → M+2 → M+1
// under YCSB load costs in staleness, convergence and money, and how
// much the two elastic-membership mechanisms buy:
//
//   - snapshot streaming (Join ships a joiner the ranges it will own
//     before the placement flips) versus the hints+AE-only ablation
//     (the joiner enters empty and converges through anti-entropy);
//   - warming-aware read routing (a converging node is excluded from
//     read quorums) versus counting it fully live at once.
//
// Four variants — {stream, ae-only} × {warm, cold} — run in parallel
// over six phases:
//
//	steady      — baseline at M members
//	join-1      — node M joins mid-phase
//	join-2      — node M+1 joins mid-phase
//	scaled      — steady at M+2 members
//	scale-down  — node M+1 decommissions mid-phase
//	settled     — steady at M+1 members
//
// Per phase the study reports throughput, oracle stale-read rate,
// Harmony's time-weighted read level and the phase bill (node-hours +
// storage + billed traffic); per join it reports the convergence time
// (Join call until the joiner holds ≥99% of the keys it owns).
type elasticityVariant struct {
	Name   string
	Stream bool
	Warm   bool
}

// elasticityPhase is one phase's measurement.
type elasticityPhase struct {
	Name       string
	Members    int
	Ops        uint64
	Throughput float64
	StaleRate  float64
	Failed     uint64
	AvgReadK   float64
	Bill       cost.Bill
}

// elasticityOutcome is one variant's full measurement.
type elasticityOutcome struct {
	Variant     elasticityVariant
	Phases      []elasticityPhase
	Convergence []time.Duration // per join, in issue order
	Usage       kv.Usage
}

// ElasticityResult carries the study's outcomes plus the rendered table.
type ElasticityResult struct {
	Outcomes []elasticityOutcome
	Table    *Table
}

// RunElasticity runs the study on platform p (its topology must hold two
// spare nodes: the cluster starts with p.Nodes-2 members) for all four
// variants, fanned out over the parallel driver.
func RunElasticity(p Platform, seed uint64) *ElasticityResult {
	variants := []elasticityVariant{
		{Name: "stream+warm", Stream: true, Warm: true},
		{Name: "stream+cold", Stream: true, Warm: false},
		{Name: "ae-only+warm", Stream: false, Warm: true},
		{Name: "ae-only+cold", Stream: false, Warm: false},
	}
	outcomes := parallelMap(variants, func(v elasticityVariant) elasticityOutcome {
		return runElasticityVariant(p, v, seed)
	})

	t := NewTable("Elasticity (PR 4): scaling "+fmt.Sprintf("%d→%d→%d", p.Nodes-2, p.Nodes, p.Nodes-1)+
		" under load — snapshot streaming and warming-aware routing vs the hints+AE ablation — "+p.Name,
		"variant", "phase", "members", "ops", "throughput(op/s)", "stale", "avg read k", "bill")
	for _, out := range outcomes {
		for _, ph := range out.Phases {
			t.Add(out.Variant.Name, ph.Name, fmt.Sprintf("%d", ph.Members),
				fmt.Sprintf("%d", ph.Ops), fmt.Sprintf("%.0f", ph.Throughput),
				pct(ph.StaleRate), fmt.Sprintf("%.2f", ph.AvgReadK),
				fmt.Sprintf("$%.4f", ph.Bill.Total()))
		}
		u := out.Usage
		t.Note("%s: joins converged in %v; streamed %d cells / %d KiB in %d chunks; %d hints replayed, %d AE rounds",
			out.Variant.Name, out.Convergence, u.StreamedCells, u.StreamedBytes>>10,
			u.StreamChunks, u.HintsReplayed, u.AERounds)
	}
	t.Note("convergence = Join call until the joiner holds ≥99%% of its owned keys; " +
		"ae-only joiners enter empty and owe everything to anti-entropy")
	return &ElasticityResult{Outcomes: outcomes, Table: t}
}

// runElasticityVariant drives the six phases over one cluster and one
// Harmony controller (α=10%).
func runElasticityVariant(p Platform, v elasticityVariant, seed uint64) elasticityOutcome {
	if seed == 0 {
		seed = 1
	}
	if p.Nodes < 5 {
		panic("experiments: elasticity needs ≥5 topology nodes (two spares)")
	}
	members := p.Nodes - 2
	joinerA := netsim.NodeID(members)
	joinerB := netsim.NodeID(members + 1)

	cfg := p.Config(seed)
	initial := make([]netsim.NodeID, members)
	for i := range initial {
		initial[i] = netsim.NodeID(i)
	}
	cfg.InitialMembers = initial
	cfg.DisableJoinStream = !v.Stream
	if v.Warm {
		cfg.WarmupDuration = 2 * time.Second
	}
	// Repair machinery fast enough that the ae-only ablation converges
	// within the run (and the streaming variant's gap writes heal).
	cfg.AntiEntropyInterval = 500 * time.Millisecond
	cfg.AntiEntropySample = 1024
	cfg.HintReplayInterval = 250 * time.Millisecond
	cfg.DetectionDelay = 500 * time.Millisecond

	eng := sim.New(seed)
	topo := p.Build()
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	ctl := core.NewController(mon, harmony.New(0.10, cl.RF()), tr, 100*time.Millisecond)

	w := ycsb.HeavyReadUpdate(p.Records)
	w.ValueSize = p.ValueBytes
	loader, err := ycsb.NewRunner(kv.StaticSession{Cluster: cl, ReadLevel: kv.One, WriteLevel: kv.One}, w, tr, seed)
	if err != nil {
		panic(err)
	}
	cl.Preload(w.RecordCount, loader.Keys, loader.Value())
	ctl.Start()

	// Convergence probes: a scheduled self-rechecking timer per join, so
	// coverage is sampled inside the event loop while the workload runs.
	out := elasticityOutcome{Variant: v}
	convergedAt := make(map[netsim.NodeID]time.Duration)
	watchJoin := func(id netsim.NodeID) {
		joinAt := tr.Now()
		var check func()
		check = func() {
			if st := cl.State(id); st == kv.StateLeaving || st == kv.StateDecommissioned {
				// Removed before converging (possible for the second
				// joiner in the ae-only variants): report non-convergence
				// instead of probing a node that left the ring.
				convergedAt[id] = -1
				return
			}
			if !cl.IsMember(id) { // placement not flipped yet
				tr.Schedule(50*time.Millisecond, check)
				return
			}
			owned, present := 0, 0
			for i := uint64(0); i < w.RecordCount; i++ {
				k := loader.Keys(i)
				for _, r := range cl.Strategy().Replicas(k) {
					if r == id {
						owned++
						if _, ok := cl.Node(id).Engine().Peek(k); ok {
							present++
						}
						break
					}
				}
			}
			if owned == 0 || float64(present) >= 0.99*float64(owned) {
				convergedAt[id] = tr.Now() - joinAt
				return
			}
			tr.Schedule(50*time.Millisecond, check)
		}
		tr.Schedule(50*time.Millisecond, check)
	}

	phaseOps := p.Ops / 6
	if phaseOps == 0 {
		phaseOps = 1000
	}
	lastStale, lastFresh, lastFailed := cl.Oracle().Counts()
	var lastDC, lastRegion uint64
	pricing := Pricing().Smooth()

	runPhase := func(name string, i int, during func()) {
		r, err := ycsb.NewRunner(ctl.Session(cl), w, tr, seed+uint64(i+1)*1000)
		if err != nil {
			panic(err)
		}
		r.OpCount = phaseOps
		r.Threads = p.Threads
		start := eng.Now()
		r.Start()
		if during != nil {
			during() // membership change lands while the phase's load runs
		}
		for !r.Finished() && eng.Step() {
		}
		if !r.Finished() {
			panic(fmt.Sprintf("experiments: elasticity phase %q stalled", name))
		}
		end := eng.Now()
		stale, fresh, failed := cl.Oracle().Counts()
		judged := (stale - lastStale) + (fresh - lastFresh)
		m := tr.Meter()
		dc, region := m.BilledBytes()
		ph := elasticityPhase{
			Name:     name,
			Members:  len(cl.Members()),
			Ops:      r.Metrics().Ops,
			Failed:   failed - lastFailed,
			AvgReadK: avgReadKWindow(ctl.Journal(), start, end, cl.RF()),
			Bill: pricing.BillFor(cost.Usage{
				Nodes:            len(cl.Members()),
				Duration:         end - start,
				StoredBytes:      float64(cl.Usage().StoredBytes),
				InterDCBytes:     float64(dc - lastDC),
				InterRegionBytes: float64(region - lastRegion),
			}),
		}
		if d := end - start; d > 0 {
			ph.Throughput = float64(ph.Ops) / d.Seconds()
		}
		if judged > 0 {
			ph.StaleRate = float64(stale-lastStale) / float64(judged)
		}
		lastStale, lastFresh, lastFailed = stale, fresh, failed
		lastDC, lastRegion = dc, region
		out.Phases = append(out.Phases, ph)
	}

	runPhase("steady", 0, nil)
	runPhase("join-1", 1, func() { cl.Join(joinerA); watchJoin(joinerA) })
	eng.RunFor(3 * time.Second) // let the first change settle before the next
	runPhase("join-2", 2, func() { cl.Join(joinerB); watchJoin(joinerB) })
	eng.RunFor(3 * time.Second)
	runPhase("scaled", 3, nil)
	// Decommission requires a settled (plainly live) node; on platforms
	// with long streaming or warmup joinerB may still be converging.
	for i := 0; i < 120 && cl.State(joinerB) != kv.StateLive; i++ {
		eng.RunFor(500 * time.Millisecond)
	}
	runPhase("scale-down", 4, func() { cl.Decommission(joinerB) })
	eng.RunFor(3 * time.Second)
	runPhase("settled", 5, nil)
	// Drain until both probes resolved (the ae-only joiners may still be
	// converging through anti-entropy after the workload finished).
	for i := 0; i < 120 && len(convergedAt) < 2; i++ {
		eng.RunFor(500 * time.Millisecond)
	}

	ctl.Stop()
	for _, id := range []netsim.NodeID{joinerA, joinerB} {
		d, ok := convergedAt[id]
		if !ok {
			d = -1 // never converged inside the run
		}
		out.Convergence = append(out.Convergence, d)
	}
	out.Usage = cl.Usage()
	return out
}
