package experiments

import (
	"time"

	"repro/internal/cost"
	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// Platform bundles a paper evaluation platform: topology, node
// performance profile, client pressure and workload sizing. Scale factors
// shrink operation and record counts so benches finish quickly while the
// topology, mixes and pressure stay paper-shaped; cmd tools run scale 1.
type Platform struct {
	Name  string
	Build func() *netsim.Topology

	Nodes       int
	RF          int
	PerDC       map[string]int
	Threads     int
	Records     uint64
	Ops         uint64
	ValueBytes  int
	DatasetGB   float64 // paper-scale logical dataset, for billing
	CrossDCFrac float64

	ReadService   netsim.Law
	WriteService  netsim.Law
	CoordOverhead netsim.Law
	Concurrency   int
}

// Config assembles the store configuration of the platform.
func (p Platform) Config(seed uint64) kv.Config {
	cfg := kv.DefaultConfig()
	cfg.RF = p.RF
	cfg.PerDC = p.PerDC
	cfg.ReadService = p.ReadService
	cfg.WriteService = p.WriteService
	cfg.CoordOverhead = p.CoordOverhead
	cfg.Concurrency = p.Concurrency
	cfg.Seed = seed
	return cfg
}

// Scaled returns a copy with operation and record counts multiplied by
// scale (topology and pressure untouched).
func (p Platform) Scaled(scale float64) Platform {
	if scale <= 0 || scale >= 1 {
		return p
	}
	q := p
	q.Ops = uint64(float64(p.Ops) * scale)
	q.Records = uint64(float64(p.Records) * scale)
	// Keep enough operations per client thread that the closed loop and
	// the control loop both run long enough to be meaningful.
	if minOps := uint64(p.Threads) * 60; q.Ops < minOps {
		q.Ops = minOps
	}
	if q.Ops < 2000 {
		q.Ops = 2000
	}
	if q.Records < 500 {
		q.Records = 500
	}
	return q
}

// EC2 node profile: 2013-era virtualized m1.large-class machines — two
// work slots, EBS-backed storage, heavy-tailed service times from
// multi-tenant jitter. Client pressure keeps these nodes near saturation,
// which is what made propagation slow (and staleness high) in the paper's
// EC2 runs despite the small inter-AZ latency.
func ec2Profile(p *Platform) {
	p.ReadService = stats.NewLogNormal(8*time.Millisecond, 0.9)
	p.WriteService = stats.NewLogNormal(6*time.Millisecond, 0.9)
	p.CoordOverhead = stats.NewLogNormal(300*time.Microsecond, 0.4)
	p.Concurrency = 2
}

// Grid'5000 node profile: 2013-era bare-metal nodes — eight work slots,
// spinning disks behind a page cache, thin-tailed service times.
func g5kProfile(p *Platform) {
	p.ReadService = stats.NewLogNormal(5*time.Millisecond, 0.5)
	p.WriteService = stats.NewLogNormal(4*time.Millisecond, 0.6)
	p.CoordOverhead = stats.NewLogNormal(150*time.Microsecond, 0.3)
	p.Concurrency = 8
}

// EC2Harmony is §IV-A's EC2 deployment: Cassandra on 20 VMs across two
// availability zones, 23.85 GB dataset, 5 million operations of the heavy
// read-update workload.
func EC2Harmony() Platform {
	p := Platform{
		Name:        "ec2-20vm",
		Build:       func() *netsim.Topology { return netsim.EC2TwoAZ(20) },
		Nodes:       20,
		RF:          3,
		Threads:     220,
		Records:     5_000_000,
		Ops:         5_000_000,
		ValueBytes:  1024,
		DatasetGB:   23.85,
		CrossDCFrac: 0.5,
	}
	ec2Profile(&p)
	return p
}

// G5KHarmony is §IV-A's Grid'5000 deployment: 84 nodes over two clusters,
// 14.3 GB dataset, 3 million operations.
func G5KHarmony() Platform {
	p := Platform{
		Name:        "g5k-84node",
		Build:       func() *netsim.Topology { return netsim.G5KTwoSites(84) },
		Nodes:       84,
		RF:          3,
		Threads:     1600,
		Records:     3_000_000,
		Ops:         3_000_000,
		ValueBytes:  1024,
		DatasetGB:   14.3,
		CrossDCFrac: 0.5,
	}
	g5kProfile(&p)
	return p
}

// EC2Cost is §IV-B's EC2 deployment: 18 VMs over two availability zones
// of us-east-1, replication factor 5, 23.84 GB, 10 million operations.
func EC2Cost() Platform {
	p := Platform{
		Name:        "ec2-18vm-rf5",
		Build:       func() *netsim.Topology { return netsim.EC2TwoAZ(18) },
		Nodes:       18,
		RF:          5,
		Threads:     200,
		Records:     5_000_000,
		Ops:         10_000_000,
		ValueBytes:  1024,
		DatasetGB:   23.84,
		CrossDCFrac: 0.5,
	}
	ec2Profile(&p)
	return p
}

// G5KCost is §IV-B's Grid'5000 deployment: 50 nodes over two sites (east
// and south of France), replication factor 5, 10 million operations.
func G5KCost() Platform {
	p := Platform{
		Name:        "g5k-50node-rf5",
		Build:       func() *netsim.Topology { return netsim.G5KTwoSites(50) },
		Nodes:       50,
		RF:          5,
		Threads:     1000,
		Records:     5_000_000,
		Ops:         10_000_000,
		ValueBytes:  1024,
		DatasetGB:   23.84,
		CrossDCFrac: 0.5,
	}
	g5kProfile(&p)
	return p
}

// Pricing returns the catalog experiments bill against.
func Pricing() cost.Pricing { return cost.EC2East2013() }
