package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// RunSpec describes one experimental run: a platform, a tuner (static or
// adaptive) and a workload.
type RunSpec struct {
	Platform Platform
	Tuner    core.Tuner
	Workload ycsb.Workload // zero value: heavy read-update over Platform.Records
	Seed     uint64
	Interval time.Duration // control period; 0 → 250 ms
	WarmupPc float64       // fraction of ops treated as warmup; 0 → 0.1
	Mutate   func(*kv.Config)
	// MonitorOpts overrides the monitor configuration (ablations).
	MonitorOpts *monitor.Options
	// Wrap, when set, wraps the session the workload drives (freshness
	// enforcement and similar middleware layers).
	Wrap func(sess kv.Session, cl *kv.Cluster, clock ycsb.Clock) kv.Session
}

// RunResult carries everything the experiment tables need.
type RunResult struct {
	Spec         RunSpec
	Metrics      *ycsb.Metrics
	Journal      []core.JournalEntry
	LevelChanges int
	AvgReadK     float64
	Usage        kv.Usage
	Traffic      netsim.TrafficMeter
	Cluster      *kv.Cluster
	Monitor      *monitor.Monitor
	Events       uint64 // discrete events fired by the engine over the run
}

// Run executes the spec in virtual time to completion.
func Run(spec RunSpec) RunResult {
	p := spec.Platform
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	w := spec.Workload
	if w.RecordCount == 0 {
		w = ycsb.HeavyReadUpdate(p.Records)
		w.ValueSize = p.ValueBytes
	}
	cfg := p.Config(spec.Seed)
	if spec.Mutate != nil {
		spec.Mutate(&cfg)
	}
	eng := sim.New(spec.Seed)
	topo := p.Build()
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)

	mopts := monitor.DefaultOptions()
	if spec.MonitorOpts != nil {
		mopts = *spec.MonitorOpts
	}
	mon := monitor.New(cl.RF(), tr, mopts)
	cl.AddHooks(mon.Hooks())
	interval := spec.Interval
	if interval <= 0 {
		// Re-evaluate often relative to run length so scaled-down runs
		// still exercise the control loop many times.
		interval = 250 * time.Millisecond
	}
	ctl := core.NewController(mon, spec.Tuner, tr, interval)

	sess := ctl.Session(cl)
	if spec.Wrap != nil {
		sess = spec.Wrap(sess, cl, tr)
	}
	runner, err := ycsb.NewRunner(sess, w, tr, spec.Seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	runner.OpCount = p.Ops
	runner.Threads = p.Threads
	warm := spec.WarmupPc
	if warm <= 0 {
		warm = 0.1
	}
	runner.WarmupOps = uint64(float64(p.Ops) * warm)

	cl.Preload(w.RecordCount, runner.Keys, runner.Value())
	ctl.Start()
	runner.Start()
	for !runner.Finished() && eng.Step() {
	}
	if !runner.Finished() {
		panic("experiments: workload stalled before completion")
	}
	ctl.Stop()

	res := RunResult{
		Spec:         spec,
		Metrics:      runner.Metrics(),
		Journal:      ctl.Journal(),
		LevelChanges: ctl.LevelChanges(),
		Usage:        cl.Usage(),
		Traffic:      tr.Meter(),
		Cluster:      cl,
		Monitor:      mon,
		Events:       eng.Events(),
	}
	res.AvgReadK = avgReadK(res.Journal, runner.Metrics().End, cl.RF())
	return res
}

// avgReadK time-weights the read level held across the run.
func avgReadK(journal []core.JournalEntry, end time.Duration, rf int) float64 {
	if len(journal) == 0 {
		return 0
	}
	var weighted, total float64
	for i, e := range journal {
		until := end
		if i+1 < len(journal) {
			until = journal[i+1].At
		}
		if until <= e.At {
			continue
		}
		span := (until - e.At).Seconds()
		weighted += span * float64(e.Decision.ReadLevel.Replicas(rf))
		total += span
	}
	if total == 0 {
		return float64(journal[len(journal)-1].Decision.ReadLevel.Replicas(rf))
	}
	return weighted / total
}

// BillAtPaperScale extrapolates a measured run to the paper's operation
// count: the workload's duration at the measured throughput, the metered
// billed traffic scaled per-op, and the paper's dataset (replicated)
// prorated over that duration.
func BillAtPaperScale(p Platform, pricing cost.Pricing, res RunResult, paperOps uint64) (cost.Bill, cost.Usage) {
	thr := res.Metrics.Throughput()
	if thr <= 0 {
		return cost.Bill{}, cost.Usage{}
	}
	duration := time.Duration(float64(paperOps) / thr * float64(time.Second))
	perOpDC := float64(res.Traffic.Bytes[netsim.InterDC]) / float64(res.Metrics.Ops)
	perOpRegion := float64(res.Traffic.Bytes[netsim.InterRegion]) / float64(res.Metrics.Ops)
	u := cost.Usage{
		Nodes:            p.Nodes,
		Duration:         duration,
		StoredBytes:      p.DatasetGB * cost.GB * float64(p.RF),
		InterDCBytes:     perOpDC * float64(paperOps),
		InterRegionBytes: perOpRegion * float64(paperOps),
	}
	return pricing.BillFor(u), u
}
