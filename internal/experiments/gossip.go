package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// The gossip study (PR 7): what decentralized, eventually-consistent
// membership costs against the atomic-placement baseline when the ring
// is under stress. Two variants — gossip dissemination on and off —
// run the same six phases over identical workloads:
//
//	steady   — baseline at M members
//	join     — node M joins mid-phase; under gossip the new ring is
//	           only eventually visible, so stale coordinators hit
//	           displaced replicas and recover through the notOwner
//	           fallback (the stale-ring phase)
//	storm    — a member fails mid-phase: every peer's local detector
//	           probes it, suspects it, and ages the suspicion into a
//	           death verdict (the suspicion storm)
//	heal     — the failed member recovers; the ping/ack refutation
//	           handshake resurrects it in every view
//	flap     — another member fails and recovers inside the phase,
//	           exercising suspicion/refutation under churn
//	settle   — steady state after the churn
//
// Per phase the study reports throughput, the oracle stale-read rate,
// Harmony's time-weighted read level, and the gossip meter deltas
// (suspicions raised, wrong-owner retries, notOwner refusals); per run
// it reports the view-convergence time after the join (Join call until
// every reachable view has applied the full ring-event log). Harmony
// holds the paper's α=10% staleness target throughout, so the headline
// check is that eventual membership stays under the same α the atomic
// baseline honors.
type gossipVariant struct {
	Name   string
	Gossip bool
}

// gossipPhase is one phase's measurement.
type gossipPhase struct {
	Name       string
	Members    int
	Ops        uint64
	Throughput float64
	StaleRate  float64
	Failed     uint64
	AvgReadK   float64
	// Gossip meter deltas over the phase.
	Suspicions      uint64
	WrongOwner      uint64
	NotOwnerReplies uint64
}

// gossipOutcome is one variant's full measurement.
type gossipOutcome struct {
	Variant gossipVariant
	Phases  []gossipPhase
	// Converge is the time from the Join call until ViewAgreement
	// returned to 1 (0 for the atomic variant; -1 if it never did).
	Converge time.Duration
	// WholeRunStale is the oracle stale rate over all judged reads.
	WholeRunStale float64
	Usage         kv.Usage
}

// GossipResult carries the study's outcomes plus the rendered table.
type GossipResult struct {
	Outcomes []gossipOutcome
	Table    *Table
}

// RunGossip runs the study on platform p (its topology must hold one
// spare: the cluster starts with p.Nodes-1 members) for both variants,
// fanned out over the parallel driver.
func RunGossip(p Platform, seed uint64) *GossipResult {
	variants := []gossipVariant{
		{Name: "gossip", Gossip: true},
		{Name: "atomic", Gossip: false},
	}
	outcomes := parallelMap(variants, func(v gossipVariant) gossipOutcome {
		return runGossipVariant(p, v, seed)
	})

	t := NewTable("Gossip membership (PR 7): SWIM dissemination vs atomic placement under join, "+
		"failure storm, refutation and flap — "+p.Name,
		"variant", "phase", "members", "ops", "throughput(op/s)", "stale", "avg read k",
		"suspicions", "wrong-owner retries", "refusals")
	for _, out := range outcomes {
		for _, ph := range out.Phases {
			t.Add(out.Variant.Name, ph.Name, fmt.Sprintf("%d", ph.Members),
				fmt.Sprintf("%d", ph.Ops), fmt.Sprintf("%.0f", ph.Throughput),
				pct(ph.StaleRate), fmt.Sprintf("%.2f", ph.AvgReadK),
				fmt.Sprintf("%d", ph.Suspicions), fmt.Sprintf("%d", ph.WrongOwner),
				fmt.Sprintf("%d", ph.NotOwnerReplies))
		}
		u := out.Usage
		t.Note("%s: views converged %v after the join; whole-run stale %s; "+
			"%d gossip rounds, %d ring events applied, %d suspicions, %d dead verdicts, %d warm violations",
			out.Variant.Name, out.Converge, pct(out.WholeRunStale),
			u.GossipRounds, u.GossipEvents, u.GossipSuspicions, u.GossipDeadDeclared, u.WarmViolations)
	}
	t.Note("convergence = Join call until every reachable view applied the full ring-event log; " +
		"wrong-owner retries = coordinator re-plans after a notOwner refusal taught it the events it was missing")
	return &GossipResult{Outcomes: outcomes, Table: t}
}

// runGossipVariant drives the six phases over one cluster and one
// Harmony controller (α=10%).
func runGossipVariant(p Platform, v gossipVariant, seed uint64) gossipOutcome {
	if seed == 0 {
		seed = 1
	}
	if p.Nodes < 5 {
		panic("experiments: gossip needs ≥5 topology nodes (one spare)")
	}
	members := p.Nodes - 1
	joiner := netsim.NodeID(members)
	stormNode := netsim.NodeID(1)
	flapNode := netsim.NodeID(2)

	cfg := p.Config(seed)
	initial := make([]netsim.NodeID, members)
	for i := range initial {
		initial[i] = netsim.NodeID(i)
	}
	cfg.InitialMembers = initial
	cfg.Gossip = v.Gossip
	cfg.WarmupDuration = time.Second
	cfg.AntiEntropyInterval = 500 * time.Millisecond
	cfg.AntiEntropySample = 1024
	cfg.HintReplayInterval = 250 * time.Millisecond
	cfg.DetectionDelay = 500 * time.Millisecond

	eng := sim.New(seed)
	topo := p.Build()
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	ctl := core.NewController(mon, harmony.New(0.10, cl.RF()), tr, 100*time.Millisecond)

	w := ycsb.HeavyReadUpdate(p.Records)
	w.ValueSize = p.ValueBytes
	loader, err := ycsb.NewRunner(kv.StaticSession{Cluster: cl, ReadLevel: kv.One, WriteLevel: kv.One}, w, tr, seed)
	if err != nil {
		panic(err)
	}
	cl.Preload(w.RecordCount, loader.Keys, loader.Value())
	ctl.Start()

	out := gossipOutcome{Variant: v, Converge: -1}
	// Convergence probe: once the join's placement flip lands, poll the
	// view-agreement signal inside the event loop until it returns to 1.
	watchJoin := func() {
		joinAt := tr.Now()
		var check func()
		check = func() {
			if !cl.IsMember(joiner) {
				tr.Schedule(25*time.Millisecond, check)
				return
			}
			if cl.ViewAgreement() >= 1 {
				out.Converge = tr.Now() - joinAt
				return
			}
			tr.Schedule(25*time.Millisecond, check)
		}
		tr.Schedule(25*time.Millisecond, check)
	}

	phaseOps := p.Ops / 6
	if phaseOps == 0 {
		phaseOps = 1000
	}
	lastStale, lastFresh, lastFailed := cl.Oracle().Counts()
	lastUsage := cl.Usage()

	runPhase := func(name string, i int, during func()) {
		r, err := ycsb.NewRunner(ctl.Session(cl), w, tr, seed+uint64(i+1)*1000)
		if err != nil {
			panic(err)
		}
		r.OpCount = phaseOps
		r.Threads = p.Threads
		start := eng.Now()
		r.Start()
		if during != nil {
			during() // the membership/liveness event lands under load
		}
		for !r.Finished() && eng.Step() {
		}
		if !r.Finished() {
			panic(fmt.Sprintf("experiments: gossip phase %q stalled", name))
		}
		end := eng.Now()
		stale, fresh, failed := cl.Oracle().Counts()
		judged := (stale - lastStale) + (fresh - lastFresh)
		u := cl.Usage()
		ph := gossipPhase{
			Name:            name,
			Members:         len(cl.Members()),
			Ops:             r.Metrics().Ops,
			Failed:          failed - lastFailed,
			AvgReadK:        avgReadKWindow(ctl.Journal(), start, end, cl.RF()),
			Suspicions:      u.GossipSuspicions - lastUsage.GossipSuspicions,
			WrongOwner:      u.WrongOwnerRetries - lastUsage.WrongOwnerRetries,
			NotOwnerReplies: u.NotOwnerReplies - lastUsage.NotOwnerReplies,
		}
		if d := end - start; d > 0 {
			ph.Throughput = float64(ph.Ops) / d.Seconds()
		}
		if judged > 0 {
			ph.StaleRate = float64(stale-lastStale) / float64(judged)
		}
		lastStale, lastFresh, lastFailed = stale, fresh, failed
		lastUsage = u
		out.Phases = append(out.Phases, ph)
	}

	runPhase("steady", 0, nil)
	runPhase("join", 1, func() { cl.Join(joiner); watchJoin() })
	eng.RunFor(3 * time.Second) // streaming + warmup + view convergence
	runPhase("storm", 2, func() { cl.Fail(stormNode) })
	eng.RunFor(2 * time.Second) // suspicions age into death verdicts
	runPhase("heal", 3, func() { cl.Recover(stormNode) })
	eng.RunFor(2 * time.Second) // refutation resurrects the node
	runPhase("flap", 4, func() {
		cl.Fail(flapNode)
		tr.Schedule(750*time.Millisecond, func() { cl.Recover(flapNode) })
	})
	eng.RunFor(2 * time.Second)
	runPhase("settle", 5, nil)
	// Drain: convergence probe, hint replay, refutations.
	for i := 0; i < 40 && (out.Converge < 0 || cl.ViewAgreement() < 1); i++ {
		eng.RunFor(250 * time.Millisecond)
	}

	ctl.Stop()
	stale, fresh, _ := cl.Oracle().Counts()
	if judged := stale + fresh; judged > 0 {
		out.WholeRunStale = float64(stale) / float64(judged)
	}
	out.Usage = cl.Usage()
	return out
}
