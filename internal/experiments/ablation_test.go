package experiments

import (
	"os"
	"testing"

	"repro/internal/netsim"
)

// Ablation smoke tests run at a small scale and assert the orderings the
// ablation tables are meant to show.

func TestAblationDigestReadsCutsTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	p := EC2Cost()
	p.Threads = 64
	results, table := RunAblationDigestReads(p.Scaled(0.004), 5)
	if testing.Verbose() {
		table.Render(os.Stderr)
	}
	with := results[0].Traffic.Bytes[netsim.InterDC] + results[0].Traffic.Bytes[netsim.IntraDC]
	without := results[1].Traffic.Bytes[netsim.InterDC] + results[1].Traffic.Bytes[netsim.IntraDC]
	if float64(with) > float64(without)*0.8 {
		t.Errorf("digest reads should cut replica traffic substantially: %d vs %d bytes", with, without)
	}
}

func TestAblationPerKeyHoldsLowerLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	p := G5KHarmony()
	results, table := RunAblationPerKeyRates(p.Scaled(0.004), 0.20, 5)
	if testing.Verbose() {
		table.Render(os.Stderr)
	}
	agg, per := results[0], results[1]
	if per.AvgReadK > agg.AvgReadK+0.01 {
		t.Errorf("per-key estimator should not hold higher levels: %.2f vs %.2f",
			per.AvgReadK, agg.AvgReadK)
	}
	if per.Metrics.StaleRate() > 0.20*1.5 {
		t.Errorf("per-key estimator exceeded tolerance: %.3f", per.Metrics.StaleRate())
	}
}

func TestExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	p := EC2Harmony()
	p.Threads = 48
	sp := p.Scaled(0.002)
	if table := RunExtPower(sp, 5); len(table.Rows) != 9 {
		t.Errorf("power table rows = %d, want 9", len(table.Rows))
	}
	if table := RunExtProvisioning(5); len(table.Rows) == 0 {
		t.Error("provisioning table empty")
	}
	if table := RunExtFreshness(sp, 5); len(table.Rows) != 3 {
		t.Errorf("freshness table rows = %d, want 3", len(table.Rows))
	}
}
