// Package experiments reproduces every result of the paper's evaluation
// (§IV): the Harmony performance/staleness comparison on the EC2 and
// Grid'5000 platforms (Exp A), the consistency-vs-monetary-cost study and
// the Bismar evaluation (Exp B), the Figure-1 model validation, and the
// ablations DESIGN.md calls out. Each experiment builds its platform
// preset, drives the scaled workload in virtual time and prints the same
// rows the paper reports.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table accumulates rows and renders them aligned; every experiment
// reports through it so cmd tools and benches print identically.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	sep := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// pct formats a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
