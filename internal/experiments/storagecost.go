package experiments

import (
	"fmt"
	"time"

	"repro/internal/bismar"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/provision"
	"repro/internal/storage"
)

// The storage-cost study (PR 10): what pricing durability I/O does to
// the consistency tuner and to engine provisioning. Three legs:
//
//  1. Measure — run the workload once per engine and derive the per-op
//     WAL, fsync and compaction rates from the metered kv.Usage
//     (bismar.IOPerOp). The memory engine's rates are zero by
//     construction; the LSM pays real durability traffic.
//  2. Tune — price every consistency level under the base catalog and
//     under the same catalog with storage-I/O prices switched on
//     (cost.Pricing.WithStorageIO). With prices off the two engines
//     cost exactly the same per million operations; with prices on the
//     LSM's flat per-op adder compresses the levels' relative cost
//     spread, so cheap-but-stale levels lose efficiency ground.
//  3. Provision — ask provision.OptimizeEngines which engine is cheaper
//     to deploy for a sustained load. Free durability favors the LSM
//     (the memory engine budgets one extra node for crash loss); priced
//     durability reverses the ranking.
//
// Everything below the measurement leg is closed-form model arithmetic,
// so a double run is bit-identical — the determinism pin the tests hold.

// StorageCostEngine is one engine's measured rates and model outcomes.
type StorageCostEngine struct {
	Engine storage.Kind
	Ops    uint64

	// Measured per-operation I/O rates (cluster-wide counters / ops).
	WALBytesPerOp       float64
	FsyncsPerOp         float64
	CompactedBytesPerOp float64

	// CostPM of the strongest level (ALL) under each catalog — the
	// normalization anchor the tuner divides by.
	BaseCostPM float64
	IOCostPM   float64

	// Efficiency-argmax read level under each catalog.
	BaseBestK int
	IOBestK   int
}

// StorageCostResult is the full study outcome.
type StorageCostResult struct {
	Engines []StorageCostEngine // mem first, lsm second

	// Engine provisioning under free vs priced durability I/O.
	BaseChoice provision.EngineChoice
	IOChoice   provision.EngineChoice
	BaseAll    []provision.EngineChoice
	IOAll      []provision.EngineChoice
}

// storageCostConstraints is the provisioning question the study asks:
// sustain 250 ops/s at RF 5 reading and writing at ONE, surviving three
// node failures — sized so the durability floor (RF+failures) binds and
// the memory engine's crash budget costs exactly one extra instance.
func storageCostConstraints() (provision.Workload, provision.Constraints) {
	w := provision.Workload{
		OpsPerSecond: 250,
		ReadFraction: 0.5,
		WriteRate:    0.5,
		BaseLatency:  2 * time.Millisecond,
	}
	c := provision.Constraints{
		RF: 5, ReadLevel: 1, WriteLevel: 1,
		MaxStaleRate:  1, // staleness is the tuner's concern, not the sizer's
		FailureBudget: 3,
	}
	return w, c
}

// RunStorageCost runs the study on platform p at the given workload
// scale and renders the comparison table.
func RunStorageCost(p Platform, scale float64, seed uint64) (*StorageCostResult, *Table) {
	if seed == 0 {
		seed = 1
	}
	sp := p.Scaled(scale)

	// Leg 1: measure per-op I/O rates per engine under a static-QUORUM
	// run (the tuner would move the level mid-run and blur the rates).
	kinds := []storage.Kind{storage.Mem, storage.LSM}
	runs := parallelMap(kinds, func(kind storage.Kind) RunResult {
		return Run(RunSpec{
			Platform: sp,
			Tuner:    core.StaticTuner{Read: kv.Quorum, Write: kv.Quorum},
			Seed:     seed,
			Mutate: func(cfg *kv.Config) {
				cfg.Engine = kind
				// Sized as in the recovery study so the LSM seals runs,
				// fsyncs in groups and compacts at experiment scale.
				cfg.FlushLimit = 64 << 10
				cfg.WALSyncBytes = 4 << 10
			},
		})
	})

	res := &StorageCostResult{}
	basePricing := Pricing()
	ioPricing := basePricing.WithStorageIO()

	// Leg 2: price every level per engine under both catalogs.
	for i, kind := range kinds {
		r := runs[i]
		e := StorageCostEngine{Engine: kind, Ops: r.Metrics.Ops}
		e.WALBytesPerOp, e.FsyncsPerOp, e.CompactedBytesPerOp = bismar.IOPerOp(r.Usage, r.Metrics.Ops)

		dep := DeploymentFor(p)
		dep.WALBytesPerOp = e.WALBytesPerOp
		dep.FsyncsPerOp = e.FsyncsPerOp
		dep.CompactedBytesPerOp = e.CompactedBytesPerOp
		snap := r.Monitor.Snapshot()

		dep.Pricing = basePricing
		e.BaseCostPM, e.BaseBestK = evalBest(dep, snap)
		dep.Pricing = ioPricing
		e.IOCostPM, e.IOBestK = evalBest(dep, snap)
		res.Engines = append(res.Engines, e)
	}

	// Leg 3: engine provisioning under both catalogs, with the LSM's
	// measured rates as its profile.
	lsm := res.Engines[1]
	profiles := []provision.EngineProfile{
		provision.MemProfile(),
		provision.LSMProfile(lsm.WALBytesPerOp, lsm.FsyncsPerOp, lsm.CompactedBytesPerOp),
	}
	w, c := storageCostConstraints()
	res.BaseChoice, res.BaseAll = provision.OptimizeEngines(provision.DefaultCatalog(), profiles, w, c, 0, basePricing)
	res.IOChoice, res.IOAll = provision.OptimizeEngines(provision.DefaultCatalog(), profiles, w, c, 0, ioPricing)

	return res, storageCostTable(p, res)
}

// evalBest prices every level under the deployment and returns the ALL
// cost per million ops with the efficiency-argmax read level.
func evalBest(dep bismar.Deployment, snap monitor.Snapshot) (costAllPM float64, bestK int) {
	evals := bismar.New(dep).Evaluate(snap)
	best := evals[len(evals)-1]
	for _, e := range evals {
		if e.Efficiency > best.Efficiency {
			best = e
		}
	}
	return evals[len(evals)-1].CostPM, best.K
}

func storageCostTable(p Platform, res *StorageCostResult) *Table {
	t := NewTable("Storage cost (PR 10): pricing durability I/O — tuner and provisioning — "+p.Name,
		"engine", "wal B/op", "fsync/op", "compact B/op", "$/Mops ALL (base)", "$/Mops ALL (+io)", "best k (base)", "best k (+io)")
	for _, e := range res.Engines {
		t.Add(e.Engine.String(),
			fmt.Sprintf("%.0f", e.WALBytesPerOp),
			fmt.Sprintf("%.3f", e.FsyncsPerOp),
			fmt.Sprintf("%.0f", e.CompactedBytesPerOp),
			fmt.Sprintf("%.4f", e.BaseCostPM),
			fmt.Sprintf("%.4f", e.IOCostPM),
			fmt.Sprintf("%d", e.BaseBestK),
			fmt.Sprintf("%d", e.IOBestK))
	}
	t.Note("free durability: engines price identically per Mops; +io makes the lsm's bill strictly higher")
	t.Note("provisioning (base): %s", res.BaseChoice)
	t.Note("provisioning (+io):  %s", res.IOChoice)
	if res.BaseChoice.Profile.Name != res.IOChoice.Profile.Name {
		t.Note("pricing durability I/O reverses the engine choice: %s -> %s",
			res.BaseChoice.Profile.Name, res.IOChoice.Profile.Name)
	}
	return t
}
