package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
)

// TestParallelMatchesSequential pins the parallel driver's contract: the
// fan-out must produce row-identical results to a sequential loop (each
// run is a pure function of its spec), in spec order.
func TestParallelMatchesSequential(t *testing.T) {
	t.Setenv("REPRO_WORKERS", "4") // force real fan-out even on one core
	p := G5KHarmony().Scaled(0.0005)
	specs := make([]RunSpec, 0, 4)
	for _, lvl := range []kv.Level{kv.One, kv.Quorum, kv.All, kv.Two} {
		specs = append(specs, RunSpec{
			Platform: p,
			Tuner:    core.StaticTuner{Read: lvl, Write: kv.One},
			Seed:     7,
		})
	}

	par := RunAll(specs)
	seq := make([]RunResult, len(specs))
	for i := range specs {
		seq[i] = Run(specs[i])
	}

	for i := range specs {
		pm, sm := par[i].Metrics, seq[i].Metrics
		if pm.Ops != sm.Ops || pm.StaleReads != sm.StaleReads || pm.FreshReads != sm.FreshReads ||
			pm.Timeouts != sm.Timeouts || pm.End != sm.End {
			t.Errorf("spec %d: parallel %+v != sequential %+v", i, pm, sm)
		}
		if par[i].Traffic != seq[i].Traffic {
			t.Errorf("spec %d: traffic meters differ: %+v vs %+v", i, par[i].Traffic, seq[i].Traffic)
		}
		if par[i].Usage != seq[i].Usage {
			t.Errorf("spec %d: usage differs: %+v vs %+v", i, par[i].Usage, seq[i].Usage)
		}
	}
}

// TestParallelMapOrderAndPanic pins result ordering and panic
// propagation.
func TestParallelMapOrderAndPanic(t *testing.T) {
	t.Setenv("REPRO_WORKERS", "4")
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out := parallelMap(in, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("worker panic was not propagated")
		}
	}()
	parallelMap(in, func(x int) int {
		if x == 42 {
			panic("boom")
		}
		return x
	})
}
