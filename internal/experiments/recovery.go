package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/ycsb"
)

// The crash–recovery study (PR 3): what a replica crash does to the
// stale-read rate and to Harmony's chosen read level, and how the
// storage engine changes the picture. The MemEngine node restarts empty
// and owes its whole state to hinted handoff and anti-entropy; the LSM
// node replays its durable WAL prefix first and only owes the un-fsynced
// tail plus the outage window — so its post-restart staleness exposure
// window is much narrower. Phases:
//
//	steady     — baseline under the adaptive tuner
//	outage     — one replica crashed; its writes are hinted
//	catch-up   — the replica restarted (WAL replayed) and converges
//	converged  — after hint replay and anti-entropy settled
type recoveryPhase struct {
	Name       string
	Ops        uint64
	Throughput float64
	StaleRate  float64
	Failed     uint64
	AvgReadK   float64
}

// recoveryOutcome is one engine variant's full measurement.
type recoveryOutcome struct {
	Engine  storage.Kind
	Phases  []recoveryPhase
	Recover storage.RecoverStats
	Usage   kv.Usage
}

// RunRecovery runs the study on platform p for both engines (fanned out
// over the parallel driver) and renders the comparison table.
func RunRecovery(p Platform, seed uint64) *Table {
	variants := []storage.Kind{storage.Mem, storage.LSM}
	outcomes := parallelMap(variants, func(kind storage.Kind) recoveryOutcome {
		return runRecoveryVariant(p, kind, seed)
	})

	t := NewTable("Crash–recovery (PR 3): staleness and Harmony's read level across a replica crash — "+p.Name,
		"engine", "phase", "ops", "throughput(op/s)", "stale", "failed", "avg read k")
	for _, out := range outcomes {
		for _, ph := range out.Phases {
			t.Add(out.Engine.String(), ph.Name, fmt.Sprintf("%d", ph.Ops),
				fmt.Sprintf("%.0f", ph.Throughput), pct(ph.StaleRate),
				fmt.Sprintf("%d", ph.Failed), fmt.Sprintf("%.2f", ph.AvgReadK))
		}
		rs := out.Recover
		t.Note("%s: restart recovered %d run entries + %d WAL records (torn=%v, %d keys); lost %d un-fsynced records; %d hints replayed, %d compactions",
			out.Engine, rs.RunEntries, rs.WALRecords, rs.TornTail, rs.Keys,
			out.Usage.LostWALRecords, out.Usage.HintsReplayed, out.Usage.Compactions)
	}
	t.Note("mem restarts empty and owes its whole state to hints + anti-entropy; lsm replays its WAL first")
	return t
}

// runRecoveryVariant drives the four phases over one cluster and one
// Harmony controller (α=10%), crashing and restarting the first replica
// of the workload's first key between phases.
func runRecoveryVariant(p Platform, kind storage.Kind, seed uint64) recoveryOutcome {
	if seed == 0 {
		seed = 1
	}
	cfg := p.Config(seed)
	cfg.Engine = kind
	// Sized so the LSM engine seals runs and pays real WAL-tail loss at
	// experiment scale, and so the repair machinery runs fast enough for
	// the catch-up phase to be visible.
	cfg.FlushLimit = 64 << 10
	cfg.WALSyncBytes = 4 << 10
	cfg.AntiEntropyInterval = 500 * time.Millisecond
	cfg.AntiEntropySample = 512
	cfg.HintReplayInterval = 250 * time.Millisecond
	cfg.DetectionDelay = 500 * time.Millisecond

	eng := sim.New(seed)
	topo := p.Build()
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	ctl := core.NewController(mon, harmony.New(0.10, cl.RF()), tr, 100*time.Millisecond)

	w := ycsb.HeavyReadUpdate(p.Records)
	w.ValueSize = p.ValueBytes
	loader, err := ycsb.NewRunner(kv.StaticSession{Cluster: cl, ReadLevel: kv.One, WriteLevel: kv.One}, w, tr, seed)
	if err != nil {
		panic(err)
	}
	cl.Preload(w.RecordCount, loader.Keys, loader.Value())
	ctl.Start()

	victim := cl.Strategy().Replicas(loader.Keys(0))[0]
	phaseOps := p.Ops / 4
	if phaseOps == 0 {
		phaseOps = 1000
	}

	out := recoveryOutcome{Engine: kind}
	lastStale, lastFresh, lastFailed := cl.Oracle().Counts()

	runPhase := func(name string, i int) {
		r, err := ycsb.NewRunner(ctl.Session(cl), w, tr, seed+uint64(i+1)*1000)
		if err != nil {
			panic(err)
		}
		r.OpCount = phaseOps
		r.Threads = p.Threads
		start := eng.Now()
		r.Start()
		for !r.Finished() && eng.Step() {
		}
		if !r.Finished() {
			panic(fmt.Sprintf("experiments: recovery phase %q stalled", name))
		}
		end := eng.Now()
		stale, fresh, failed := cl.Oracle().Counts()
		judged := (stale - lastStale) + (fresh - lastFresh)
		ph := recoveryPhase{
			Name:     name,
			Ops:      r.Metrics().Ops,
			Failed:   failed - lastFailed,
			AvgReadK: avgReadKWindow(ctl.Journal(), start, end, cl.RF()),
		}
		if d := end - start; d > 0 {
			ph.Throughput = float64(ph.Ops) / d.Seconds()
		}
		if judged > 0 {
			ph.StaleRate = float64(stale-lastStale) / float64(judged)
		}
		lastStale, lastFresh, lastFailed = stale, fresh, failed
		out.Phases = append(out.Phases, ph)
	}

	runPhase("steady", 0)
	cl.Crash(victim)
	eng.RunFor(2 * cfg.DetectionDelay) // detector converges; hints arm
	runPhase("outage", 1)
	out.Recover = cl.Restart(victim)
	runPhase("catch-up", 2)
	eng.RunFor(5 * time.Second) // hint replay + anti-entropy settle
	runPhase("converged", 3)

	ctl.Stop()
	out.Usage = cl.Usage()
	return out
}

// avgReadKWindow time-weights the read level held across [start, end):
// the decision in force at start counts from start, and each journal
// entry counts until the next entry or the window's end.
func avgReadKWindow(journal []core.JournalEntry, start, end time.Duration, rf int) float64 {
	if end <= start {
		return 0
	}
	var weighted, total float64
	for i, e := range journal {
		from := e.At
		if from < start {
			from = start
		}
		until := end
		if i+1 < len(journal) && journal[i+1].At < end {
			until = journal[i+1].At
		}
		if until <= from {
			continue
		}
		span := (until - from).Seconds()
		weighted += span * float64(e.Decision.ReadLevel.Replicas(rf))
		total += span
	}
	if total == 0 {
		if len(journal) == 0 {
			return 0
		}
		return float64(journal[len(journal)-1].Decision.ReadLevel.Replicas(rf))
	}
	return weighted / total
}
