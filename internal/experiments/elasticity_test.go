package experiments

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

// elasticityTestPlatform is a 3→5→4 deployment at test scale: the
// topology holds five nodes, three of them founding members.
func elasticityTestPlatform() Platform {
	p := Platform{
		Name:    "g5k-elasticity-test",
		Build:   func() *netsim.Topology { return netsim.G5KTwoSites(5) },
		Nodes:   5,
		RF:      3,
		Threads: 48,
		Records: 2_000,
		Ops:     12_000,

		ValueBytes: 256,
	}
	g5kProfile(&p)
	return p
}

func TestElasticityStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunElasticity(elasticityTestPlatform(), 1)
	tbl := res.Table
	if len(tbl.Rows) != 4*6 {
		t.Fatalf("rows = %d, want 4 variants × 6 phases", len(tbl.Rows))
	}
	byName := map[string]elasticityOutcome{}
	for _, out := range res.Outcomes {
		byName[out.Variant.Name] = out
		// Every variant ends settled at members+1 = 4.
		last := out.Phases[len(out.Phases)-1]
		if last.Members != 4 {
			t.Errorf("%s: settled members = %d, want 4", out.Variant.Name, last.Members)
		}
		if out.Usage.Joins != 2 || out.Usage.Decommissions != 1 {
			t.Errorf("%s: joins=%d decommissions=%d", out.Variant.Name, out.Usage.Joins, out.Usage.Decommissions)
		}
		for i, d := range out.Convergence {
			if d < 0 {
				t.Errorf("%s: join %d never converged", out.Variant.Name, i)
			}
		}
	}
	for _, name := range []string{"stream+warm", "stream+cold"} {
		if byName[name].Usage.StreamedCells == 0 {
			t.Errorf("%s streamed nothing", name)
		}
	}
	// The ablation still streams the decommission handoff (only Join
	// streaming is ablated), so it must move strictly fewer cells.
	for _, name := range []string{"ae-only+warm", "ae-only+cold"} {
		if got, full := byName[name].Usage.StreamedCells, byName["stream+warm"].Usage.StreamedCells; got >= full {
			t.Errorf("%s streamed %d cells, full variant %d — the ablation must move less", name, got, full)
		}
	}

	// The headline claims, pinned on the deterministic seed:
	// 1. snapshot streaming converges joins measurably faster than the
	//    hints+AE-only ablation;
	stream, ae := byName["stream+warm"], byName["ae-only+warm"]
	for i := range stream.Convergence {
		if ae.Convergence[i] >= 0 && stream.Convergence[i]*2 > ae.Convergence[i] {
			t.Errorf("join %d: streaming converged in %v, ablation %v — want streaming ≥2× faster",
				i, stream.Convergence[i], ae.Convergence[i])
		}
	}
	// 2. warming-aware routing lowers the stale-read rate across the
	//    join phases where the joiner is still empty (the ablation, where
	//    routing is the only protection).
	joinStale := func(out elasticityOutcome) float64 {
		return out.Phases[1].StaleRate + out.Phases[2].StaleRate
	}
	if warm, cold := joinStale(byName["ae-only+warm"]), joinStale(byName["ae-only+cold"]); warm >= cold {
		t.Errorf("join-phase stale rate: warm %.4f vs cold %.4f — warming must lower it", warm, cold)
	}
}

func TestElasticityRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b strings.Builder
	RunElasticity(elasticityTestPlatform(), 7).Table.Render(&b)
	if !strings.Contains(b.String(), "stream+warm") || !strings.Contains(b.String(), "scale-down") {
		t.Fatalf("render missing expected cells:\n%s", b.String())
	}
}
