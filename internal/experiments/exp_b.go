package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/kv"
)

// ExpB1Row is one consistency level's measured cost decomposition
// (§IV-B, "consistency impact on monetary cost").
type ExpB1Row struct {
	K          int
	Level      kv.Level
	Throughput float64
	StaleRate  float64
	Bill       cost.Bill
	Usage      cost.Usage
	RelToAll   float64
}

// symmetricLevels enumerates the canonical levels ONE..ALL for rf.
func symmetricLevels(rf int) []kv.Level {
	levels := make([]kv.Level, 0, rf)
	for k := 1; k <= rf; k++ {
		switch {
		case k == 1:
			levels = append(levels, kv.One)
		case k == rf:
			levels = append(levels, kv.All)
		case k == rf/2+1:
			levels = append(levels, kv.Quorum)
		default:
			levels = append(levels, kv.Count(k))
		}
	}
	return levels
}

// RunExpB1 reproduces the per-level cost study: the heavy read-update
// workload at every symmetric consistency level, billed at the paper's
// operation count with the 2013 us-east-1 catalog (per-second instance
// billing so level differences are not quantized away; the hourly-rounding
// view is the billing-granularity ablation).
func RunExpB1(p Platform, seed uint64) ([]ExpB1Row, *Table) {
	pricing := Pricing().PerSecond()
	levels := symmetricLevels(p.RF)
	specs := make([]RunSpec, len(levels))
	for i, lvl := range levels {
		specs[i] = RunSpec{
			Platform: p,
			Tuner:    core.StaticTuner{Read: lvl, Write: lvl},
			Seed:     seed,
		}
	}
	rows := make([]ExpB1Row, 0, len(levels))
	for i, res := range RunAll(specs) {
		bill, usage := BillAtPaperScale(p, pricing, res, p.Ops)
		rows = append(rows, ExpB1Row{
			K: i + 1, Level: levels[i],
			Throughput: res.Metrics.Throughput(),
			StaleRate:  res.Metrics.StaleRate(),
			Bill:       bill,
			Usage:      usage,
		})
	}
	all := rows[len(rows)-1].Bill.Total()
	for i := range rows {
		if all > 0 {
			rows[i].RelToAll = rows[i].Bill.Total() / all
		}
	}

	t := NewTable(
		fmt.Sprintf("Exp B1 (§IV-B): consistency impact on monetary cost — %s, %d ops at paper scale",
			p.Name, p.Ops),
		"level", "throughput(op/s)", "fresh reads", "stale reads", "duration",
		"$ instances", "$ storage", "$ network", "$ total", "vs ALL")
	for _, r := range rows {
		t.Add(r.Level.String(), fmt.Sprintf("%.0f", r.Throughput),
			pct(1-r.StaleRate), pct(r.StaleRate),
			r.Usage.Duration.Round(time.Second),
			fmt.Sprintf("%.3f", r.Bill.Instances),
			fmt.Sprintf("%.3f", r.Bill.Storage),
			fmt.Sprintf("%.3f", r.Bill.Network),
			fmt.Sprintf("%.3f", r.Bill.Total()),
			pct(r.RelToAll))
	}
	one, quorum := rows[0], rows[p.RF/2]
	t.Note("ONE reduces total cost by %s vs ALL (paper: down to 48%%); fresh reads at ONE: %s (paper: 21%%)",
		pct(1-one.RelToAll), pct(1-one.StaleRate))
	t.Note("QUORUM reduces cost by %s vs ALL (paper: 13%%) and reads %s fresh",
		pct(1-quorum.RelToAll), pct(1-quorum.StaleRate))
	return rows, t
}
