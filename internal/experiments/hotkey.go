package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ycsb"
)

// The hot-key study (PR 8): what the hot-set tracker and the
// freshness-bounded coordinator read cache buy under Zipfian traffic,
// and what per-key consistency adds on top. Three variants run the same
// three phases over identical workloads:
//
//	no-cache   — Harmony per-key tuner, Config.HotCache off: every read
//	             pays the full replica round-trip (the PR 7 baseline)
//	cache      — Config.HotCache on: single-ack reads of tracked hot
//	             keys answer from the coordinator cache when the entry
//	             is younger than its freshness bound
//	cache+hot  — cache plus the hot-key-aware Harmony tuner, which pins
//	             each hot key to its own smallest safe read level
//
// The phases stress the cache's correctness machinery in turn:
//
//	steady — Zipf(0.99) read-heavy mix; the tracker promotes the head
//	         keys and the cache warms up
//	shift  — the key space rotates to a fresh prefix mid-run: the old
//	         hot set's read share collapses, demotion hysteresis swaps
//	         the tracked set, and the cache re-warms on the new head
//	burst  — a write burst hammers the head key: its per-key write rate
//	         λ jumps, the freshness bound −ln(1−α)/λ collapses, and the
//	         cache must stop serving the key before staleness breaches α
//
// Per phase the study reports throughput, read p99, the oracle stale
// rate, and the cache meter deltas; the headline checks are that cache
// hits cut messages per operation while the windowed observed stale
// rate stays under the same α=10% the no-cache baseline honors.
type hotKeyVariant struct {
	Name     string
	Cache    bool
	PerLevel bool // hot-key-aware tuner pinning per-key read levels
}

// hotKeyPhase is one phase's measurement.
type hotKeyPhase struct {
	Name       string
	Ops        uint64
	Throughput float64
	ReadP99    time.Duration
	ReadMean   time.Duration
	StaleRate  float64
	// Per-operation network cost over the phase.
	MsgsPerOp  float64
	BytesPerOp float64
	// Cache meter deltas over the phase.
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Expired     uint64
	StaleServed uint64
	HotKeys     int
}

// hotKeyOutcome is one variant's full measurement.
type hotKeyOutcome struct {
	Variant hotKeyVariant
	Phases  []hotKeyPhase
	// WholeRunStale is the oracle stale rate over all judged reads.
	WholeRunStale float64
	Usage         kv.Usage
}

// HotKeyResult carries the study's outcomes plus the rendered table.
type HotKeyResult struct {
	Outcomes []hotKeyOutcome
	Table    *Table
}

// hotKeyAlpha is the staleness target every variant must hold — the
// same α the cache's freshness bound is derived from.
const hotKeyAlpha = 0.10

// RunHotKey runs the study on platform p for all three variants, fanned
// out over the parallel driver.
func RunHotKey(p Platform, seed uint64) *HotKeyResult {
	variants := []hotKeyVariant{
		{Name: "no-cache", Cache: false},
		{Name: "cache", Cache: true},
		{Name: "cache+hot", Cache: true, PerLevel: true},
	}
	outcomes := parallelMap(variants, func(v hotKeyVariant) hotKeyOutcome {
		return runHotKeyVariant(p, v, seed)
	})

	t := NewTable("Hot-key cache (PR 8): freshness-bounded coordinator reads and per-key "+
		"consistency under Zipfian traffic — "+p.Name,
		"variant", "phase", "ops", "throughput(op/s)", "read p99", "stale", "msgs/op",
		"hits", "misses", "expired", "stale-served", "hot keys")
	for _, out := range outcomes {
		for _, ph := range out.Phases {
			t.Add(out.Variant.Name, ph.Name, fmt.Sprintf("%d", ph.Ops),
				fmt.Sprintf("%.0f", ph.Throughput), fmt.Sprintf("%v", ph.ReadP99),
				pct(ph.StaleRate), fmt.Sprintf("%.1f", ph.MsgsPerOp),
				fmt.Sprintf("%d", ph.Hits), fmt.Sprintf("%d", ph.Misses),
				fmt.Sprintf("%d", ph.Expired), fmt.Sprintf("%d", ph.StaleServed),
				fmt.Sprintf("%d", ph.HotKeys))
		}
		u := out.Usage
		t.Note("%s: whole-run stale %s; %d hits / %d misses / %d fills, "+
			"%d invalidations, %d expired, %d ring-evicted, %d stale served; "+
			"%d promotions, %d demotions",
			out.Variant.Name, pct(out.WholeRunStale),
			u.CacheHits, u.CacheMisses, u.CacheFills, u.CacheInvalidations,
			u.CacheExpired, u.CacheRingEvicted, u.CacheStaleServed,
			u.HotPromotions, u.HotDemotions)
	}
	t.Note("a hit answers in the coordinator with zero replica messages; the freshness bound " +
		"−ln(1−α)/λ keeps the expected stale rate of hits under the same α=10%% Harmony tunes for")
	return &HotKeyResult{Outcomes: outcomes, Table: t}
}

// runHotKeyVariant drives the three phases over one cluster and one
// controller (α=10%).
func runHotKeyVariant(p Platform, v hotKeyVariant, seed uint64) hotKeyOutcome {
	if seed == 0 {
		seed = 1
	}
	cfg := p.Config(seed)
	cfg.HotCache = v.Cache

	eng := sim.New(seed)
	topo := p.Build()
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	var tuner core.Tuner = harmony.New(hotKeyAlpha, cl.RF()).PerKey()
	if v.PerLevel {
		tuner = harmony.NewHot(hotKeyAlpha, cl)
	}
	ctl := core.NewController(mon, tuner, tr, 100*time.Millisecond)

	// Steady/burst keyspace plus the shifted one the middle phase rotates
	// to; both are preloaded so phase runners never insert.
	w := ycsb.Mix(p.Records, 0.95, ycsb.DistZipfian, 0.99)
	w.ValueSize = p.ValueBytes
	shifted := w
	shifted.KeyPrefix = "shift"
	loader, err := ycsb.NewRunner(kv.StaticSession{Cluster: cl, ReadLevel: kv.One, WriteLevel: kv.One}, w, tr, seed)
	if err != nil {
		panic(err)
	}
	cl.Preload(w.RecordCount, loader.Keys, loader.Value())
	shiftLoader, err := ycsb.NewRunner(kv.StaticSession{Cluster: cl, ReadLevel: kv.One, WriteLevel: kv.One}, shifted, tr, seed)
	if err != nil {
		panic(err)
	}
	cl.Preload(shifted.RecordCount, shiftLoader.Keys, shiftLoader.Value())
	ctl.Start()

	// The burst target: the scrambled zipfian's rank-0 record — the most
	// popular key of the steady keyspace, independent of the seed.
	headKey := loader.Keys(stats.FNVHash64(0) % w.RecordCount)

	out := hotKeyOutcome{Variant: v}
	phaseOps := p.Ops / 3
	if phaseOps == 0 {
		phaseOps = 1000
	}
	lastStale, lastFresh, _ := cl.Oracle().Counts()
	lastUsage := cl.Usage()
	lastMeter := tr.Meter()

	runPhase := func(name string, pw ycsb.Workload, i int, during func()) {
		r, err := ycsb.NewRunner(ctl.Session(cl), pw, tr, seed+uint64(i+1)*1000)
		if err != nil {
			panic(err)
		}
		r.OpCount = phaseOps
		r.Threads = p.Threads
		start := eng.Now()
		r.Start()
		if during != nil {
			during() // the stress event lands under load
		}
		for !r.Finished() && eng.Step() {
		}
		if !r.Finished() {
			panic(fmt.Sprintf("experiments: hot-key phase %q stalled", name))
		}
		end := eng.Now()
		m := r.Metrics()
		stale, fresh, _ := cl.Oracle().Counts()
		judged := (stale - lastStale) + (fresh - lastFresh)
		u := cl.Usage()
		meter := tr.Meter()
		delta := meter.Sub(lastMeter)
		var msgs uint64
		for _, n := range delta.Messages {
			msgs += n
		}
		ph := hotKeyPhase{
			Name:        name,
			Ops:         m.Ops,
			ReadP99:     m.ReadLat.Quantile(0.99),
			ReadMean:    m.ReadLat.Mean(),
			Hits:        u.CacheHits - lastUsage.CacheHits,
			Misses:      u.CacheMisses - lastUsage.CacheMisses,
			Fills:       u.CacheFills - lastUsage.CacheFills,
			Expired:     u.CacheExpired - lastUsage.CacheExpired,
			StaleServed: u.CacheStaleServed - lastUsage.CacheStaleServed,
			HotKeys:     u.HotKeysNow,
		}
		if d := end - start; d > 0 {
			ph.Throughput = float64(ph.Ops) / d.Seconds()
		}
		if judged > 0 {
			ph.StaleRate = float64(stale-lastStale) / float64(judged)
		}
		if ph.Ops > 0 {
			ph.MsgsPerOp = float64(msgs) / float64(ph.Ops)
			ph.BytesPerOp = float64(delta.TotalBytes()) / float64(ph.Ops)
		}
		lastStale, lastFresh = stale, fresh
		lastUsage = u
		lastMeter = meter
		out.Phases = append(out.Phases, ph)
	}

	runPhase("steady", w, 0, nil)
	runPhase("shift", shifted, 1, nil)
	// Let demotion hysteresis and the controller settle on the shifted
	// hot set before the burst returns to the original keyspace.
	eng.RunFor(time.Second)
	runPhase("burst", w, 2, func() {
		// 400 writes to the head key, 2 ms apart: λ jumps to ~500/s and
		// the freshness bound collapses under the read inter-arrival gap.
		var fire func(left int)
		fire = func(left int) {
			if left == 0 {
				return
			}
			cl.Write(headKey, loader.Value(), kv.One, func(kv.WriteResult) {})
			tr.Schedule(2*time.Millisecond, func() { fire(left - 1) })
		}
		fire(400)
	})
	eng.RunFor(2 * time.Second) // drain read repair and hint replay

	ctl.Stop()
	stale, fresh, _ := cl.Oracle().Counts()
	if judged := stale + fresh; judged > 0 {
		out.WholeRunStale = float64(stale) / float64(judged)
	}
	out.Usage = cl.Usage()
	return out
}
