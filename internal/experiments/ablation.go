package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/ycsb"
)

// Ablations for the design choices DESIGN.md calls out. Each returns a
// rendered table; benches assert their orderings.

// RunAblationDigestReads compares QUORUM reads with and without digest
// reads: digests trade a little latency risk (mismatch refetches) for a
// large cut in replica-to-coordinator bytes. A read-mostly mix is used so
// the read path dominates the traffic being compared.
func RunAblationDigestReads(p Platform, seed uint64) ([2]RunResult, *Table) {
	w := ycsb.Mix(p.Records, 0.95, ycsb.DistZipfian, 0.99)
	w.ValueSize = p.ValueBytes
	specs := make([]RunSpec, 2)
	for i, digest := range []bool{true, false} {
		d := digest
		specs[i] = RunSpec{
			Platform: p,
			Tuner:    core.StaticTuner{Read: kv.Quorum, Write: kv.One},
			Workload: w,
			Seed:     seed,
			Mutate:   func(c *kv.Config) { c.DigestReads = d },
		}
	}
	var results [2]RunResult
	copy(results[:], RunAll(specs))
	t := NewTable("Ablation: digest reads (QUORUM reads, "+p.Name+")",
		"digest reads", "throughput(op/s)", "bytes/op (billed)", "read mean")
	for i, digest := range []bool{true, false} {
		r := results[i]
		perOp := float64(r.Traffic.Bytes[netsim.InterDC]+r.Traffic.Bytes[netsim.InterRegion]) /
			float64(r.Metrics.Ops)
		t.Add(fmt.Sprint(digest), fmt.Sprintf("%.0f", r.Metrics.Throughput()),
			fmt.Sprintf("%.0f", perOp), r.Metrics.ReadLat.Mean().Round(10*time.Microsecond))
	}
	return results, t
}

// RunAblationReadRepair measures how much read repair and the global
// repair chance curb staleness at level ONE.
func RunAblationReadRepair(p Platform, seed uint64) *Table {
	type variant struct {
		name   string
		repair bool
		global float64
	}
	variants := []variant{
		{"off", false, 0},
		{"contacted-only", true, 0},
		{"contacted+10% global", true, 0.1},
		{"contacted+50% global", true, 0.5},
	}
	specs := make([]RunSpec, len(variants))
	for i, v := range variants {
		v := v
		specs[i] = RunSpec{
			Platform: p,
			Tuner:    core.StaticTuner{Read: kv.One, Write: kv.One},
			Seed:     seed,
			Mutate: func(c *kv.Config) {
				c.ReadRepair = v.repair
				c.GlobalRepairChance = v.global
			},
		}
	}
	t := NewTable("Ablation: read repair (level ONE, "+p.Name+")",
		"read repair", "stale reads", "repair writes", "throughput(op/s)")
	for i, res := range RunAll(specs) {
		t.Add(variants[i].name, pct(res.Metrics.StaleRate()), res.Usage.ReadRepairs,
			fmt.Sprintf("%.0f", res.Metrics.Throughput()))
	}
	return t
}

// RunAblationMonitorWindow sweeps the monitor's rate-estimation window:
// short windows adapt faster but flap levels; long windows lag behind
// workload shifts.
func RunAblationMonitorWindow(p Platform, seed uint64) *Table {
	windows := []time.Duration{2 * time.Second, 10 * time.Second, 30 * time.Second}
	specs := make([]RunSpec, len(windows))
	for i, window := range windows {
		opts := monitor.DefaultOptions()
		opts.Window = window
		specs[i] = RunSpec{
			Platform:    p,
			Tuner:       harmony.New(0.20, p.RF),
			Seed:        seed,
			MonitorOpts: &opts,
		}
	}
	t := NewTable("Ablation: monitor window (harmony α=20%, "+p.Name+")",
		"window", "level changes", "avg read k", "stale reads", "throughput(op/s)")
	for i, res := range RunAll(specs) {
		t.Add(windows[i], res.LevelChanges, fmt.Sprintf("%.2f", res.AvgReadK),
			pct(res.Metrics.StaleRate()), fmt.Sprintf("%.0f", res.Metrics.Throughput()))
	}
	return t
}

// RunAblationBillingGranularity contrasts 2013 whole-hour instance
// billing with per-second billing on the per-level bills of Exp B1.
func RunAblationBillingGranularity(rows []ExpB1Row) *Table {
	hourly := Pricing()
	t := NewTable("Ablation: instance billing granularity (Exp B1 usages)",
		"level", "duration", "$ hourly-rounded", "$ per-second", "hourly/per-second")
	for _, r := range rows {
		hb := hourly.BillFor(r.Usage)
		ratio := 0.0
		if r.Bill.Total() > 0 {
			ratio = hb.Total() / r.Bill.Total()
		}
		t.Add(r.Level.String(), r.Usage.Duration.Round(time.Second),
			fmt.Sprintf("%.3f", hb.Total()), fmt.Sprintf("%.3f", r.Bill.Total()),
			fmt.Sprintf("%.2f", ratio))
	}
	t.Note("hour rounding inflates short runs' bills and quantizes level differences; Bismar decides on smooth costs")
	return t
}

// RunAblationPerKeyRates compares Harmony's aggregate estimator (the
// paper's) against the per-key refinement: the refinement holds lower
// levels for the same tolerance because reads of cold keys stop
// inheriting hot-key staleness.
func RunAblationPerKeyRates(p Platform, alpha float64, seed uint64) ([2]RunResult, *Table) {
	tuners := []core.Tuner{
		harmony.New(alpha, p.RF),
		harmony.New(alpha, p.RF).PerKey(),
	}
	specs := make([]RunSpec, len(tuners))
	for i, tn := range tuners {
		specs[i] = RunSpec{Platform: p, Tuner: tn, Seed: seed}
	}
	var results [2]RunResult
	copy(results[:], RunAll(specs))
	t := NewTable(fmt.Sprintf("Ablation: aggregate vs per-key estimation (harmony α=%.0f%%, %s)", alpha*100, p.Name),
		"estimator", "avg read k", "stale reads", "throughput(op/s)", "level changes")
	for i, name := range []string{"aggregate (paper)", "per-key (refined)"} {
		r := results[i]
		t.Add(name, fmt.Sprintf("%.2f", r.AvgReadK), pct(r.Metrics.StaleRate()),
			fmt.Sprintf("%.0f", r.Metrics.Throughput()), r.LevelChanges)
	}
	return results, t
}

// RunAblationTargetPolicy compares snitch-like closest-replica reads with
// uniform random replica choice.
func RunAblationTargetPolicy(p Platform, seed uint64) *Table {
	policies := []kv.TargetPolicy{kv.TargetClosest, kv.TargetRandom}
	specs := make([]RunSpec, len(policies))
	for i, pol := range policies {
		pol := pol
		specs[i] = RunSpec{
			Platform: p,
			Tuner:    core.StaticTuner{Read: kv.One, Write: kv.One},
			Seed:     seed,
			Mutate:   func(c *kv.Config) { c.ReadTargets = pol },
		}
	}
	t := NewTable("Ablation: read target policy (level ONE, "+p.Name+")",
		"targets", "read mean", "throughput(op/s)", "stale reads")
	for i, res := range RunAll(specs) {
		name := "closest (snitch)"
		if policies[i] == kv.TargetRandom {
			name = "uniform random"
		}
		t.Add(name, res.Metrics.ReadLat.Mean().Round(10*time.Microsecond),
			fmt.Sprintf("%.0f", res.Metrics.Throughput()), pct(res.Metrics.StaleRate()))
	}
	return t
}
