package experiments

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// The parallel experiment driver. Every experiment table is a set of
// fully independent simulation runs (each builds its own engine, cluster,
// monitor and RNG streams from its spec), so the runs fan out across a
// worker pool while the rows merge back in input order — the output is
// byte-identical to the sequential loop, the wall-clock is divided by the
// core count. Individual simulations stay single-threaded; determinism is
// per-run by construction.

// Workers reports the worker-pool width used for fan-out: GOMAXPROCS by
// default, REPRO_WORKERS when set (tests force >1 on single-core boxes),
// or 1 when REPRO_SEQUENTIAL is set (debugging, deterministic profiles).
func Workers() int {
	if os.Getenv("REPRO_SEQUENTIAL") != "" {
		return 1
	}
	if s := os.Getenv("REPRO_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// parallelMap runs f over items on the worker pool and returns results in
// input order. A panic in any worker (e.g. a stalled workload) is
// re-raised in the caller once the pool has drained.
func parallelMap[T, R any](items []T, f func(T) R) []R {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results
	}
	workers := Workers()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			results[i] = f(items[i])
		}
		return results
	}
	var (
		next      atomic.Int64   //repolint:allow simpure fan-out driver: runs are independent, rows merge in spec order
		panicOnce sync.Once      //repolint:allow simpure fan-out driver: first panic wins, re-raised after drain
		wg        sync.WaitGroup //repolint:allow simpure fan-out driver: joins the worker pool before results are read
		panicked  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1) //repolint:allow simpure fan-out driver: each worker owns disjoint result slots
		go func() {
			defer wg.Done() //repolint:allow simpure fan-out driver: pool join point
			for {
				i := int(next.Add(1)) - 1 //repolint:allow simpure fan-out driver: work-stealing index, not sim state
				if i >= len(items) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r }) //repolint:allow simpure fan-out driver: first panic wins
						}
					}()
					results[i] = f(items[i])
				}()
			}
		}()
	}
	wg.Wait() //repolint:allow simpure fan-out driver: barrier before deterministic merge
	if panicked != nil {
		panic(panicked)
	}
	return results
}

// RunAll executes independent experiment specs across the worker pool and
// returns their results in spec order.
func RunAll(specs []RunSpec) []RunResult {
	return parallelMap(specs, Run)
}
