package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/storage"
)

// recoveryTestPlatform is a small G5K-profile deployment: big enough for
// crashes, hints and WAL replay to matter, small enough for the suite.
func recoveryTestPlatform() Platform {
	p := Platform{
		Name:    "g5k-recovery-test",
		Build:   func() *netsim.Topology { return netsim.G5KTwoSites(12) },
		Nodes:   12,
		RF:      3,
		Threads: 64,
		Records: 2_000,
		Ops:     12_000,

		ValueBytes: 256,
	}
	g5kProfile(&p)
	return p
}

func TestRecoveryStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := RunRecovery(recoveryTestPlatform(), 1)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 2 engines × 4 phases", len(tbl.Rows))
	}
	phases := []string{"steady", "outage", "catch-up", "converged"}
	for i, row := range tbl.Rows {
		wantEngine := "mem"
		if i >= 4 {
			wantEngine = "lsm"
		}
		if row[0] != wantEngine || row[1] != phases[i%4] {
			t.Fatalf("row %d = %v, want engine %s phase %s", i, row, wantEngine, phases[i%4])
		}
	}
	tbl.Render(os.Stderr)
}

// TestRecoveryVariantMeasuresRecovery pins the mechanism: the LSM
// variant must actually recover durable state at restart, the mem
// variant must not, and both must converge back to serving.
func TestRecoveryVariantMeasuresRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := recoveryTestPlatform()

	mem := runRecoveryVariant(p, storage.Mem, 1)
	if mem.Recover.WALRecords != 0 || mem.Recover.RunEntries != 0 || mem.Recover.Keys != 0 {
		t.Fatalf("mem engine recovered state from nowhere: %+v", mem.Recover)
	}
	if mem.Usage.Crashes != 1 || mem.Usage.WALReplays != 1 {
		t.Fatalf("mem usage: %+v", mem.Usage)
	}

	lsm := runRecoveryVariant(p, storage.LSM, 1)
	if lsm.Recover.Keys == 0 {
		t.Fatalf("lsm engine recovered nothing: %+v", lsm.Recover)
	}
	if lsm.Usage.WALBytes == 0 || lsm.Usage.WALSyncs == 0 {
		t.Fatalf("lsm WAL never exercised: %+v", lsm.Usage)
	}
	for _, out := range []recoveryOutcome{mem, lsm} {
		if len(out.Phases) != 4 {
			t.Fatalf("%v phases = %d", out.Engine, len(out.Phases))
		}
		for _, ph := range out.Phases {
			if ph.Ops == 0 {
				t.Fatalf("%v phase %s ran no ops", out.Engine, ph.Name)
			}
			if ph.StaleRate < 0 || ph.StaleRate > 1 {
				t.Fatalf("%v phase %s stale rate %f", out.Engine, ph.Name, ph.StaleRate)
			}
		}
	}
}

// TestRecoveryStudyDeterministic: the rendered table is a pure function
// of the seed, whatever the worker-pool width.
func TestRecoveryStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func() string {
		var b strings.Builder
		RunRecovery(recoveryTestPlatform(), 7).Render(&b)
		return b.String()
	}
	if render() != render() {
		t.Fatal("recovery study not deterministic across runs")
	}
}
