package experiments

import (
	"strings"
	"testing"
)

func TestRunStorageCost(t *testing.T) {
	res, table := RunStorageCost(EC2Cost(), 0.002, 7)
	if len(res.Engines) != 2 {
		t.Fatalf("engines = %d, want 2", len(res.Engines))
	}
	mem, lsm := res.Engines[0], res.Engines[1]

	// The memory engine pays no durability I/O; the LSM pays all three.
	if mem.WALBytesPerOp != 0 || mem.FsyncsPerOp != 0 || mem.CompactedBytesPerOp != 0 {
		t.Errorf("mem measured I/O rates: %+v", mem)
	}
	if lsm.WALBytesPerOp <= 0 || lsm.FsyncsPerOp <= 0 {
		t.Errorf("lsm measured no durability I/O: %+v", lsm)
	}

	// Free durability: both engines price identically per million ops.
	if mem.BaseCostPM != lsm.BaseCostPM {
		t.Errorf("base $/Mops differ: mem %f, lsm %f", mem.BaseCostPM, lsm.BaseCostPM)
	}
	// Priced durability: the memory engine is strictly cheaper, and the
	// zero-rate engine's bill does not move at all.
	if mem.IOCostPM != mem.BaseCostPM {
		t.Errorf("mem bill moved under +io: %f -> %f", mem.BaseCostPM, mem.IOCostPM)
	}
	if lsm.IOCostPM <= mem.IOCostPM {
		t.Errorf("lsm $/Mops %f not above mem %f under +io", lsm.IOCostPM, mem.IOCostPM)
	}

	// Provisioning: free durability favors the LSM (fewer nodes);
	// pricing it reverses the choice to the memory engine.
	if res.BaseChoice.Profile.Name != "lsm" {
		t.Errorf("base provisioning chose %s, want lsm", res.BaseChoice.Profile.Name)
	}
	if res.IOChoice.Profile.Name != "mem" {
		t.Errorf("+io provisioning chose %s, want mem", res.IOChoice.Profile.Name)
	}

	out := renderString(table)
	for _, want := range []string{"mem", "lsm", "reverses the engine choice"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunStorageCostDeterministic(t *testing.T) {
	_, a := RunStorageCost(EC2Cost(), 0.002, 7)
	_, b := RunStorageCost(EC2Cost(), 0.002, 7)
	if renderString(a) != renderString(b) {
		t.Errorf("storage-cost study not deterministic:\n%s\n---\n%s", renderString(a), renderString(b))
	}
}

func renderString(t *Table) string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
