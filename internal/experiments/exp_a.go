package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harmony"
	"repro/internal/kv"
)

// ExpARow is one approach's outcome in the Harmony performance/staleness
// comparison (§IV-A).
type ExpARow struct {
	Approach     string
	Throughput   float64
	StaleRate    float64
	ReadMean     time.Duration
	ReadP95      time.Duration
	WriteMean    time.Duration
	AvgReadK     float64
	LevelChanges int
}

// RunExpA reproduces §IV-A on the given platform: static eventual (ONE)
// and strong (read ALL) baselines against Harmony at each tolerated stale
// rate. Writes run at level ONE throughout, the configuration Harmony
// tunes reads against.
func RunExpA(p Platform, tolerances []float64, seed uint64) ([]ExpARow, *Table) {
	specs := []struct {
		name  string
		tuner core.Tuner
	}{
		{"eventual (ONE)", core.StaticTuner{Read: kv.One, Write: kv.One}},
		{"strong (ALL)", core.StaticTuner{Read: kv.All, Write: kv.One}},
	}
	for _, a := range tolerances {
		specs = append(specs, struct {
			name  string
			tuner core.Tuner
		}{fmt.Sprintf("harmony α=%.0f%%", a*100), harmony.New(a, p.RF)})
	}

	runSpecs := make([]RunSpec, len(specs))
	for i, s := range specs {
		runSpecs[i] = RunSpec{Platform: p, Tuner: s.tuner, Seed: seed}
	}
	rows := make([]ExpARow, 0, len(specs))
	for i, res := range RunAll(runSpecs) {
		m := res.Metrics
		rows = append(rows, ExpARow{
			Approach:     specs[i].name,
			Throughput:   m.Throughput(),
			StaleRate:    m.StaleRate(),
			ReadMean:     m.ReadLat.Mean(),
			ReadP95:      m.ReadLat.Quantile(0.95),
			WriteMean:    m.WriteLat.Mean(),
			AvgReadK:     res.AvgReadK,
			LevelChanges: res.LevelChanges,
		})
	}

	t := NewTable(
		fmt.Sprintf("Exp A (§IV-A): Harmony vs static consistency — %s, %d ops, %d threads",
			p.Name, p.Ops, p.Threads),
		"approach", "throughput(op/s)", "stale reads", "read mean", "read p95", "write mean", "avg read k", "level changes")
	for _, r := range rows {
		t.Add(r.Approach, fmt.Sprintf("%.0f", r.Throughput), pct(r.StaleRate),
			r.ReadMean.Round(10*time.Microsecond), r.ReadP95.Round(10*time.Microsecond),
			r.WriteMean.Round(10*time.Microsecond), fmt.Sprintf("%.2f", r.AvgReadK), r.LevelChanges)
	}

	ev, st := rows[0], rows[1]
	for _, r := range rows[2:] {
		staleCut := 0.0
		if ev.StaleRate > 0 {
			staleCut = 1 - r.StaleRate/ev.StaleRate
		}
		thrGain := r.Throughput/st.Throughput - 1
		t.Note("%s: stale reads %+.1f%% vs eventual; throughput %+.0f%% vs strong (paper: −~80%%, up to +45%%)",
			r.Approach, -100*staleCut, 100*thrGain)
	}
	return rows, t
}
