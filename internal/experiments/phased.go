package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// Phase is one segment of a phased workload (access pattern changes over
// the application's day — the dynamicity adaptive tuners exist for).
type Phase struct {
	Name     string
	Workload ycsb.Workload
	Ops      uint64
}

// PhaseOutcome is the per-phase measurement.
type PhaseOutcome struct {
	Name    string
	Metrics *ycsb.Metrics
}

// PhasedResult aggregates a multi-phase run.
type PhasedResult struct {
	Phases       []PhaseOutcome
	TotalOps     uint64
	Elapsed      time.Duration
	StaleReads   uint64
	FreshReads   uint64
	Traffic      netsim.TrafficMeter
	Journal      []core.JournalEntry
	LevelChanges int
	AvgReadK     float64
}

// Throughput reports aggregate operations per second.
func (r PhasedResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalOps) / r.Elapsed.Seconds()
}

// StaleRate reports the aggregate stale fraction.
func (r PhasedResult) StaleRate() float64 {
	t := r.StaleReads + r.FreshReads
	if t == 0 {
		return 0
	}
	return float64(r.StaleReads) / float64(t)
}

// CostPerMillionOps bills the run's actual resource usage (per-second
// instance billing) and normalizes per million operations.
func (r PhasedResult) CostPerMillionOps(p Platform, pricing cost.Pricing) float64 {
	u := cost.Usage{
		Nodes:            p.Nodes,
		Duration:         r.Elapsed,
		StoredBytes:      p.DatasetGB * cost.GB * float64(p.RF),
		InterDCBytes:     float64(r.Traffic.Bytes[netsim.InterDC]),
		InterRegionBytes: float64(r.Traffic.Bytes[netsim.InterRegion]),
	}
	return cost.PerMillionOps(pricing.Smooth().BillFor(u), r.TotalOps)
}

// RunPhased drives the phases sequentially over one cluster and one
// controller, so adaptive tuners carry their state across pattern
// changes.
func RunPhased(p Platform, tuner core.Tuner, phases []Phase, seed uint64) PhasedResult {
	if seed == 0 {
		seed = 1
	}
	cfg := p.Config(seed)
	eng := sim.New(seed)
	topo := p.Build()
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	ctl := core.NewController(mon, tuner, tr, 250*time.Millisecond)

	// Preload once with the largest record space used by any phase.
	var maxRecords uint64
	for _, ph := range phases {
		if ph.Workload.RecordCount > maxRecords {
			maxRecords = ph.Workload.RecordCount
		}
	}
	loader, err := ycsb.NewRunner(kv.StaticSession{Cluster: cl, ReadLevel: kv.One, WriteLevel: kv.One},
		ycsb.HeavyReadUpdate(maxRecords), tr, seed)
	if err != nil {
		panic(err)
	}
	cl.Preload(maxRecords, loader.Keys, loader.Value())
	ctl.Start()

	out := PhasedResult{}
	meterStart := tr.Meter()
	for i, ph := range phases {
		w := ph.Workload
		w.ValueSize = p.ValueBytes
		r, err := ycsb.NewRunner(ctl.Session(cl), w, tr, seed+uint64(i)*1000)
		if err != nil {
			panic(err)
		}
		r.OpCount = ph.Ops
		r.Threads = p.Threads
		r.Start()
		for !r.Finished() && eng.Step() {
		}
		if !r.Finished() {
			panic(fmt.Sprintf("experiments: phase %q stalled", ph.Name))
		}
		m := r.Metrics()
		out.Phases = append(out.Phases, PhaseOutcome{Name: ph.Name, Metrics: m})
		out.TotalOps += m.Ops
		out.Elapsed += m.Elapsed()
		out.StaleReads += m.StaleReads
		out.FreshReads += m.FreshReads
	}
	ctl.Stop()
	final := tr.Meter()
	out.Traffic = final.Sub(meterStart)
	out.Journal = ctl.Journal()
	out.LevelChanges = ctl.LevelChanges()
	out.AvgReadK = avgReadK(out.Journal, eng.Now(), cl.RF())
	return out
}
