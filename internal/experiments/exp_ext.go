package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/freshness"
	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/power"
	"repro/internal/provision"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ycsb"
)

// Extension experiments for the paper's §V future-work directions.

// scaledLaw slows a latency law by a constant factor (CPU frequency
// scaling applied to service times).
type scaledLaw struct {
	inner  netsim.Law
	factor float64
}

func (l scaledLaw) Sample(src *stats.Source) time.Duration {
	return time.Duration(float64(l.inner.Sample(src)) * l.factor)
}

func (l scaledLaw) Mean() time.Duration {
	return time.Duration(float64(l.inner.Mean()) * l.factor)
}

// RunExtPower reproduces the Ext-1 series: energy per consistency level
// under each CPU governor. Governors slow service times by their
// frequency ratio and change the power curve; energy integrates the
// measured per-node utilization.
func RunExtPower(p Platform, seed uint64) *Table {
	model := power.DefaultModel()
	type cell struct {
		lvl kv.Level
		g   power.Governor
	}
	var cells []cell
	specs := []RunSpec{}
	for _, lvl := range []kv.Level{kv.One, kv.Quorum, kv.All} {
		for _, g := range []power.Governor{power.Performance, power.OnDemand, power.Powersave} {
			slow := model.ServiceSlowdown(g, 0.5)
			cells = append(cells, cell{lvl, g})
			specs = append(specs, RunSpec{
				Platform: p,
				Tuner:    core.StaticTuner{Read: lvl, Write: lvl},
				Seed:     seed,
				Mutate: func(c *kv.Config) {
					c.ReadService = scaledLaw{c.ReadService, slow}
					c.WriteService = scaledLaw{c.WriteService, slow}
				},
			})
		}
	}
	t := NewTable("Ext-1 (§V): power consumption per consistency level — "+p.Name,
		"level", "governor", "throughput(op/s)", "avg util", "avg W/node", "total J", "J/op")
	for i, res := range RunAll(specs) {
		lvl, g := cells[i].lvl, cells[i].g
		elapsed := res.Metrics.Elapsed()
		var usages []power.NodeUsage
		var utilSum float64
		for _, id := range res.Cluster.Topology().Nodes() {
			u := res.Cluster.Node(id).Utilization(elapsed)
			utilSum += u
			usages = append(usages, power.NodeUsage{Utilization: u, Elapsed: elapsed})
		}
		rep := power.ClusterEnergy(model, g, usages, res.Metrics.Ops)
		t.Add(lvl.String(), g.String(), fmt.Sprintf("%.0f", res.Metrics.Throughput()),
			pct(utilSum/float64(len(usages))), fmt.Sprintf("%.1f", rep.AvgWatts),
			fmt.Sprintf("%.0f", rep.Joules), fmt.Sprintf("%.3f", rep.JoulesPer))
	}
	t.Note("stronger levels keep nodes busy longer per operation: more joules per op at equal workload")
	return t
}

// RunExtProvisioning reproduces the Ext-2 series: the optimizer's
// cheapest plan per constraint set, validated by simulating the chosen
// deployment and comparing predicted against measured throughput and
// staleness.
func RunExtProvisioning(seed uint64) *Table {
	catalog := provision.DefaultCatalog()
	w := provision.Workload{
		OpsPerSecond: 3000,
		ReadFraction: 0.8,
		WriteRate:    20,
		BaseLatency:  1500 * time.Microsecond,
	}
	t := NewTable("Ext-2 (§V): provisioning under constraints (predicted vs simulated)",
		"constraints", "plan", "pred thr", "sim thr", "pred stale", "sim stale")
	for _, c := range []provision.Constraints{
		{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 0.25, MinThroughput: 3000},
		{RF: 3, ReadLevel: 2, WriteLevel: 2, MaxStaleRate: 0.02, MinThroughput: 3000, FailureBudget: 1},
	} {
		best, _ := provision.Optimize(catalog, w, c, 100)
		if !best.Feasible {
			t.Add(constraintLabel(c), "infeasible", "-", "-", "-", "-")
			continue
		}
		thr, stale := simulatePlan(best, w, c, seed)
		t.Add(constraintLabel(c), fmt.Sprintf("%d×%s", best.Nodes, best.Type.Name),
			fmt.Sprintf("%.0f", best.PredThroughput), fmt.Sprintf("%.0f", thr),
			pct(best.PredStaleRate), pct(stale))
	}
	return t
}

func constraintLabel(c provision.Constraints) string {
	return fmt.Sprintf("RF%d R%d/W%d stale≤%.0f%% thr≥%.0f fail≤%d",
		c.RF, c.ReadLevel, c.WriteLevel, 100*c.MaxStaleRate, c.MinThroughput, c.FailureBudget)
}

// simulatePlan builds the planned deployment and offers the workload at
// its target rate (open loop), measuring what the plan actually delivers.
func simulatePlan(plan provision.Plan, w provision.Workload, c provision.Constraints, seed uint64) (thr, stale float64) {
	p := Platform{
		Name:  "plan",
		Build: func() *netsim.Topology { return netsim.EC2TwoAZ(plan.Nodes) },
		Nodes: plan.Nodes, RF: c.RF,
		Threads: 64,
		Records: 20000, Ops: uint64(w.OpsPerSecond * 20), ValueBytes: 1024,
		DatasetGB: 1, CrossDCFrac: 0.5,
		ReadService:   stats.NewLogNormal(plan.Type.ReadServiceMean, 0.6),
		WriteService:  stats.NewLogNormal(plan.Type.WriteServiceMean, 0.6),
		CoordOverhead: stats.NewLogNormal(200*time.Microsecond, 0.3),
		Concurrency:   plan.Type.Concurrency,
	}
	cfg := p.Config(seed)
	eng := sim.New(seed)
	topo := p.Build()
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	sess := kv.StaticSession{Cluster: cl,
		ReadLevel: kv.Count(c.ReadLevel), WriteLevel: kv.Count(c.WriteLevel)}
	wl := ycsb.Mix(p.Records, w.ReadFraction, ycsb.DistZipfian, 0.99)
	r, err := ycsb.NewRunner(sess, wl, tr, seed)
	if err != nil {
		panic(err)
	}
	r.OpCount = p.Ops
	r.OpenLoopRate = w.OpsPerSecond
	cl.Preload(wl.RecordCount, r.Keys, r.Value())
	r.Start()
	for !r.Finished() && eng.Step() {
	}
	m := r.Metrics()
	return m.Throughput(), m.StaleRate()
}

// RunExtFreshness reproduces the Ext-3 series: deadline compliance and
// enforcement overhead per guarantee tier, with writes at ONE.
func RunExtFreshness(p Platform, seed uint64) *Table {
	t := NewTable("Ext-3 (§V): freshness deadline guarantees — "+p.Name,
		"guarantee", "compliance (no audit)", "compliance (enforced)", "audits", "lagging found", "throughput(op/s)")

	guarantees := []freshness.Guarantee{freshness.Gold, freshness.Silver, freshness.Bronze}
	// Two runs per guarantee — bare baseline and enforced — fanned out as
	// one flat batch; enforcers land in a per-spec slot.
	enforcers := make([]*freshness.Enforcer, len(guarantees))
	specs := make([]RunSpec, 0, 2*len(guarantees))
	for i, g := range guarantees {
		i, g := i, g
		specs = append(specs, RunSpec{
			Platform: p,
			Tuner:    core.StaticTuner{Read: kv.One, Write: kv.One},
			Seed:     seed,
		})
		specs = append(specs, RunSpec{
			Platform: p,
			Tuner:    core.StaticTuner{Read: kv.One, Write: kv.One},
			Seed:     seed,
			Wrap: func(sess kv.Session, cl *kv.Cluster, clock ycsb.Clock) kv.Session {
				enf := freshness.NewEnforcer(sess, cl, clock.(freshness.Clock), g)
				enforcers[i] = enf
				return enf
			},
		})
	}
	results := RunAll(specs)
	for i, g := range guarantees {
		base, res := results[2*i], results[2*i+1]
		baseCompliance := freshness.Compliance(base.Cluster.Oracle(), g)
		compliance := freshness.Compliance(res.Cluster.Oracle(), g)
		_, audits, lagging := enforcers[i].Stats()
		t.Add(g.String(), pct(baseCompliance), pct(compliance), audits, lagging,
			fmt.Sprintf("%.0f", res.Metrics.Throughput()))
	}
	t.Note("audit reads repair laggard replicas before the deadline; compliance is the oracle-measured fraction of writes fully propagated in time")
	return t
}
