package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/netsim"
)

// hotKeyTestPlatform is a six-node single-RF3 deployment at test scale,
// saturated enough that replica load shows up in read latency.
func hotKeyTestPlatform() Platform {
	p := Platform{
		Name:    "g5k-hotkey-test",
		Build:   func() *netsim.Topology { return netsim.G5KTwoSites(6) },
		Nodes:   6,
		RF:      3,
		Threads: 96,
		Records: 2_000,
		Ops:     15_000,

		ValueBytes: 256,
	}
	g5kProfile(&p)
	return p
}

func TestHotKeyStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunHotKey(hotKeyTestPlatform(), 1)
	if len(res.Table.Rows) != 3*3 {
		t.Fatalf("rows = %d, want 3 variants × 3 phases", len(res.Table.Rows))
	}
	byName := map[string]hotKeyOutcome{}
	for _, out := range res.Outcomes {
		byName[out.Variant.Name] = out
		if len(out.Phases) != 3 {
			t.Fatalf("%s: phases = %d", out.Variant.Name, len(out.Phases))
		}
		for _, ph := range out.Phases {
			if ph.Ops == 0 {
				t.Errorf("%s/%s ran no ops", out.Variant.Name, ph.Name)
			}
			// The headline guarantee: every phase — steady, hot-set
			// shift, write burst on the head key — holds the same α the
			// no-cache baseline tunes for.
			if ph.StaleRate > hotKeyAlpha {
				t.Errorf("%s/%s: stale %.3f breaches α=%.0f%%",
					out.Variant.Name, ph.Name, ph.StaleRate, 100*hotKeyAlpha)
			}
		}
		if out.WholeRunStale > hotKeyAlpha {
			t.Errorf("%s: whole-run stale %.3f breaches α", out.Variant.Name, out.WholeRunStale)
		}
	}

	base, cached, hot := byName["no-cache"], byName["cache"], byName["cache+hot"]

	// The baseline must not touch any cache machinery.
	if base.Usage.CacheHits != 0 || base.Usage.CacheFills != 0 || base.Usage.HotPromotions != 0 {
		t.Errorf("no-cache variant leaked cache activity: %+v", base.Usage)
	}
	// The cache variants must exercise it: promotions, fills, hits, and
	// write-invalidations under the 5% update mix.
	for _, out := range []hotKeyOutcome{cached, hot} {
		u := out.Usage
		if u.HotPromotions == 0 || u.CacheFills == 0 || u.CacheHits == 0 {
			t.Errorf("%s: cache never engaged: promotions=%d fills=%d hits=%d",
				out.Variant.Name, u.HotPromotions, u.CacheFills, u.CacheHits)
		}
		if u.CacheInvalidations == 0 {
			t.Errorf("%s: writes never invalidated cache entries", out.Variant.Name)
		}
		// The shift phase must churn the hot set.
		if u.HotDemotions == 0 {
			t.Errorf("%s: hot-set shift demoted nothing", out.Variant.Name)
		}
		// The write burst must collapse the head key's freshness bound
		// hard enough that entries expire instead of being served.
		if u.CacheExpired == 0 {
			t.Errorf("%s: burst expired no cache entries", out.Variant.Name)
		}
	}
	// Cache hits send no replica messages, so the plain cache variant's
	// steady phase must be cheaper per operation than the baseline, and
	// its read tail must improve with the shed replica load.
	if cached.Phases[0].MsgsPerOp >= base.Phases[0].MsgsPerOp {
		t.Errorf("cache: steady msgs/op %.2f not below no-cache %.2f",
			cached.Phases[0].MsgsPerOp, base.Phases[0].MsgsPerOp)
	}
	if cached.Phases[0].ReadP99 >= base.Phases[0].ReadP99 {
		t.Errorf("cache: steady read p99 %v not below no-cache %v",
			cached.Phases[0].ReadP99, base.Phases[0].ReadP99)
	}
	// Per-key levels spend latency on write-hot keys to buy consistency:
	// the hot variant must serve fewer oracle-stale reads than the plain
	// cache over the whole run.
	if hot.WholeRunStale >= cached.WholeRunStale {
		t.Errorf("cache+hot: whole-run stale %.3f not below plain cache %.3f",
			hot.WholeRunStale, cached.WholeRunStale)
	}
	res.Table.Render(os.Stderr)
}

// TestHotKeyStudyDeterministic: the whole study — all variants, phases
// and meters — renders byte-identically across runs with the same seed.
func TestHotKeyStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func() string {
		var sb strings.Builder
		RunHotKey(hotKeyTestPlatform(), 7).Table.Render(&sb)
		return sb.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("hot-key study not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
