package experiments

import (
	"fmt"
	"time"

	"repro/internal/bismar"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/ycsb"
)

// DeploymentFor derives Bismar's operator-known deployment constants from
// a platform preset.
func DeploymentFor(p Platform) bismar.Deployment {
	topo := p.Build()
	var rtt time.Duration
	if topo.N() > 0 {
		rtt = 2 * topo.MeanLatency(netsim.ClientID, 0)
	}
	return bismar.Deployment{
		Nodes:            p.Nodes,
		RF:               p.RF,
		Threads:          p.Threads,
		Concurrency:      p.Concurrency,
		ReadServiceMean:  p.ReadService.Mean(),
		WriteServiceMean: p.WriteService.Mean(),
		CoordMean:        p.CoordOverhead.Mean(),
		ClientRTT:        rtt,
		ValueBytes:       p.ValueBytes,
		DatasetBytes:     p.DatasetGB * (1 << 30),
		CrossDCFraction:  p.CrossDCFrac,
		Pricing:          Pricing(),
	}
}

// BismarPhases is the paper-shaped dynamic workload: the access pattern
// shifts between read-mostly, mixed and update-heavy segments, so the
// cost-optimal level changes over time.
func BismarPhases(p Platform, scale float64) []Phase {
	per := uint64(float64(p.Ops) * scale / 4)
	// Each phase must run long enough for the closed loop and control
	// loop to settle (see Platform.Scaled).
	if minPer := uint64(p.Threads) * 50; per < minPer {
		per = minPer
	}
	if per < 1000 {
		per = 1000
	}
	rec := p.Records
	if scale < 1 {
		rec = uint64(float64(rec) * scale)
		if rec < 500 {
			rec = 500
		}
	}
	return []Phase{
		{Name: "quiet/read-mostly", Workload: ycsb.Mix(rec, 0.95, ycsb.DistZipfian, 0.90), Ops: per},
		{Name: "busy/mixed", Workload: ycsb.Mix(rec, 0.75, ycsb.DistZipfian, 0.99), Ops: per},
		{Name: "peak/update-heavy", Workload: ycsb.Mix(rec, 0.50, ycsb.DistZipfian, 0.99), Ops: per},
		{Name: "evening/read-mostly", Workload: ycsb.Mix(rec, 0.90, ycsb.DistZipfian, 0.90), Ops: per},
	}
}

// ExpCRow is one approach's outcome in the Bismar evaluation.
type ExpCRow struct {
	Approach    string
	Throughput  float64
	StaleRate   float64
	CostPerMops float64
	RelToQuorum float64
	AvgReadK    float64
}

// RunExpC reproduces §IV-B's Bismar evaluation: the adaptive
// cost-efficiency tuner against every static level over a phased
// workload; the paper's anchors are the static QUORUM (one of the most
// efficient static choices) and static ONE (cheapest but very stale).
func RunExpC(p Platform, scale float64, seed uint64) ([]ExpCRow, *Table) {
	pricing := Pricing()
	phases := BismarPhases(p, scale)

	type approach struct {
		name  string
		tuner core.Tuner
	}
	approaches := []approach{}
	for i, lvl := range symmetricLevels(p.RF) {
		approaches = append(approaches, approach{
			name:  fmt.Sprintf("static %v", lvl),
			tuner: core.StaticTuner{Read: lvl, Write: lvl},
		})
		_ = i
	}
	approaches = append(approaches, approach{"bismar", bismar.New(DeploymentFor(p))})

	phased := parallelMap(approaches, func(a approach) PhasedResult {
		return RunPhased(p, a.tuner, phases, seed)
	})
	rows := make([]ExpCRow, 0, len(approaches))
	for i, res := range phased {
		rows = append(rows, ExpCRow{
			Approach:    approaches[i].name,
			Throughput:  res.Throughput(),
			StaleRate:   res.StaleRate(),
			CostPerMops: res.CostPerMillionOps(p, pricing),
			AvgReadK:    res.AvgReadK,
		})
	}
	var quorumCost float64
	for i := range rows {
		if rows[i].Approach == "static QUORUM" {
			quorumCost = rows[i].CostPerMops
		}
	}
	for i := range rows {
		if quorumCost > 0 {
			rows[i].RelToQuorum = rows[i].CostPerMops / quorumCost
		}
	}

	t := NewTable(
		fmt.Sprintf("Exp B2 (§IV-B): Bismar vs static levels — %s, phased workload", p.Name),
		"approach", "throughput(op/s)", "stale reads", "$/M ops", "vs QUORUM", "avg read k")
	for _, r := range rows {
		t.Add(r.Approach, fmt.Sprintf("%.0f", r.Throughput), pct(r.StaleRate),
			fmt.Sprintf("%.4f", r.CostPerMops), pct(r.RelToQuorum), fmt.Sprintf("%.2f", r.AvgReadK))
	}
	b := rows[len(rows)-1]
	one := rows[0]
	t.Note("bismar: %s of static QUORUM's cost at %s stale reads (paper: −31%% cost, 3.5%% stale)",
		pct(b.RelToQuorum), pct(b.StaleRate))
	t.Note("static ONE costs %s of QUORUM but tolerates %s stale reads (paper: up to 61%%)",
		pct(one.RelToQuorum), pct(one.StaleRate))
	return rows, t
}
