package experiments

import (
	"math"
	"os"
	"testing"
)

func TestFig1ModelValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment; skipped with -short")
	}
	rows, table := RunFig1Validation(11)
	if testing.Verbose() {
		table.Render(os.Stderr)
	}
	// The model must track ground truth: same ordering in k, rough
	// agreement in magnitude.
	for _, r := range rows {
		if r.ReadK == 5 && (r.Predicted != 0 || r.Measured > 0.01) {
			t.Errorf("k=RF must be fresh: predicted %.3f measured %.3f", r.Predicted, r.Measured)
		}
		if diff := math.Abs(r.Predicted - r.Measured); diff > 0.15 {
			t.Errorf("λw=%.0f k=%d: predicted %.3f vs measured %.3f (|Δ|=%.3f > 0.15)",
				r.WriteRate, r.ReadK, r.Predicted, r.Measured, diff)
		}
	}
	// Monotonicity: measured and predicted stale rates decrease in k for
	// each write rate.
	byRate := map[float64][]Fig1Row{}
	for _, r := range rows {
		byRate[r.WriteRate] = append(byRate[r.WriteRate], r)
	}
	for rate, rs := range byRate {
		for i := 1; i < len(rs); i++ {
			if rs[i].Predicted > rs[i-1].Predicted+1e-9 {
				t.Errorf("λw=%.0f: predicted stale not monotone at k=%d", rate, rs[i].ReadK)
			}
		}
	}
}
