package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/provision"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// The autoscale study (PR 5): does closing the cost loop — the
// provisioning optimizer *enacting* Join/Decommission instead of only
// recommending sizes — actually save money without blowing the
// staleness budget? Three deployments run the phased Bismar workload
// (BismarPhases: quiet → busy → peak → evening, with the offered load
// varying per phase) under a Harmony controller (α=10%):
//
//	static-min   — fixed at the floor RF+FailureBudget: cheapest
//	               possible, saturates at peak;
//	static-peak  — fixed at the size the peak needs: never saturates,
//	               pays for idle capacity all day;
//	autoscale    — starts at the floor; the internal/autoscale
//	               controller samples the monitor, runs
//	               provision.Optimize and enacts the recommendation
//	               one membership change at a time.
//
// Per phase the study reports member count, throughput, oracle
// stale-read rate, Harmony's time-weighted read level, node-seconds and
// the phase bill; per variant it reports the total bill under
// granularity-aware instance billing plus the controller's decision
// log. The pinned headline: the autoscaled run bills less than
// static-peak while keeping its stale rate within the constraint.

// autoscaleAlpha is the Harmony stale tolerance and the provisioning
// staleness constraint of the study.
const autoscaleAlpha = 0.10

// autoscaleVariant describes one deployment.
type autoscaleVariant struct {
	Name string
	Size int // initial member count
	Auto bool
}

// AutoscalePhase is one phase's measurement.
type AutoscalePhase struct {
	Name        string
	Members     int // at phase end
	Ops         uint64
	Throughput  float64
	StaleRate   float64
	AvgReadK    float64
	NodeSeconds float64
	Bill        cost.Bill // exact node-time integral + storage + billed traffic
	Changes     int       // membership changes enacted during the phase
}

// AutoscaleOutcome is one variant's full measurement.
type AutoscaleOutcome struct {
	Variant       string
	Phases        []AutoscalePhase
	Decisions     []autoscale.Decision // empty for the static variants
	TotalBill     cost.Bill            // instances billed in whole granularity units per lease
	StaleRate     float64              // aggregate oracle stale fraction
	Joins         uint64
	Decommissions uint64
	Usage         kv.Usage
}

// AutoscaleResult carries the study's outcomes plus the rendered table.
type AutoscaleResult struct {
	Outcomes []AutoscaleOutcome
	Table    *Table
}

// autoscaleThreadFrac scales the platform's client pressure per Bismar
// phase: the offered load — not just the mix — varies over the
// application's day, which is what makes elasticity worth money.
var autoscaleThreadFrac = []float64{0.15, 0.5, 1.0, 0.18}

// RunAutoscale runs the study on platform p: the topology is the
// scale-up ceiling, RF+1 the floor. The three variants fan out over the
// parallel driver.
func RunAutoscale(p Platform, seed uint64) *AutoscaleResult {
	floor := p.RF + 1 // FailureBudget 1 throughout the study
	variants := []autoscaleVariant{
		{Name: "static-min", Size: floor},
		{Name: "static-peak", Size: p.Nodes},
		{Name: "autoscale", Size: floor, Auto: true},
	}
	outcomes := parallelMap(variants, func(v autoscaleVariant) AutoscaleOutcome {
		return runAutoscaleVariant(p, v, seed)
	})

	t := NewTable(fmt.Sprintf("Autoscale (PR 5): closing the cost loop — {static-%d, static-%d, autoscale %d..%d} "+
		"across the phased Bismar workload — %s", floor, p.Nodes, floor, p.Nodes, p.Name),
		"variant", "phase", "members", "ops", "throughput(op/s)", "stale", "avg read k", "node·s", "bill")
	for _, out := range outcomes {
		for _, ph := range out.Phases {
			t.Add(out.Variant, ph.Name, fmt.Sprintf("%d", ph.Members),
				fmt.Sprintf("%d", ph.Ops), fmt.Sprintf("%.0f", ph.Throughput),
				pct(ph.StaleRate), fmt.Sprintf("%.2f", ph.AvgReadK),
				fmt.Sprintf("%.1f", ph.NodeSeconds), fmt.Sprintf("$%.4f", ph.Bill.Total()))
		}
		t.Note("%s: total bill %s (granularity-aware instance billing), stale %s, %d joins / %d decommissions",
			out.Variant, out.TotalBill, pct(out.StaleRate), out.Joins, out.Decommissions)
	}
	if auto := outcomes[2]; len(auto.Decisions) > 0 {
		enacted := 0
		for _, d := range auto.Decisions {
			if d.Action.Enacted() {
				enacted++
				t.Note("decision @%v: %s node %d (members %d → target %d)",
					d.At.Round(time.Millisecond), d.Action, d.Node, d.Members, d.Target)
			}
		}
		t.Note("autoscale controller: %d control periods, %d enacted; stale constraint α=%s",
			len(auto.Decisions), enacted, pct(autoscaleAlpha))
	}
	return &AutoscaleResult{Outcomes: outcomes, Table: t}
}

// autoscalePhaseRaw is the in-run measurement of one phase, billed
// after the decision log is complete.
type autoscalePhaseRaw struct {
	name       string
	start, end time.Duration
	ops        uint64
	stale      float64
	readK      float64
	members    int
	dcBytes    uint64
	regBytes   uint64
}

// runAutoscaleVariant drives the four phases over one cluster, one
// Harmony controller and (for the autoscale variant) one autoscale
// controller.
func runAutoscaleVariant(p Platform, v autoscaleVariant, seed uint64) AutoscaleOutcome {
	if seed == 0 {
		seed = 1
	}
	cfg := p.Config(seed)
	initial := make([]netsim.NodeID, v.Size)
	for i := range initial {
		initial[i] = netsim.NodeID(i)
	}
	cfg.InitialMembers = initial
	cfg.WarmupDuration = 300 * time.Millisecond
	cfg.AntiEntropyInterval = 500 * time.Millisecond
	cfg.AntiEntropySample = 1024
	cfg.HintReplayInterval = 250 * time.Millisecond
	cfg.DetectionDelay = 500 * time.Millisecond

	eng := sim.New(seed)
	topo := p.Build()
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	// Short monitoring window so the controller sees phase shifts at
	// test scale.
	mon := monitor.New(cl.RF(), tr, monitor.Options{
		Window: time.Second, Slots: 10, RankAlpha: 0.2, TopKeys: 64, LatencyWindowOps: 50_000,
	})
	cl.AddHooks(mon.Hooks())
	ctl := core.NewController(mon, harmony.New(autoscaleAlpha, cl.RF()), tr, 100*time.Millisecond)

	granular := Pricing()
	granular.BillingGranularity = time.Second // billed units at simulation scale

	var asc *autoscale.Controller
	if v.Auto {
		asc = autoscale.New(cl, mon, tr, autoscale.Config{
			NodeType: provision.NodeType{
				Name:             "sim-node",
				HourlyCost:       granular.InstanceHour,
				Concurrency:      p.Concurrency,
				ReadServiceMean:  p.ReadService.Mean(),
				WriteServiceMean: p.WriteService.Mean(),
			},
			Constraints: provision.Constraints{
				RF: p.RF, ReadLevel: 2, WriteLevel: 1,
				MaxStaleRate: autoscaleAlpha, FailureBudget: 1,
			},
			Pricing:     granular,
			Candidates:  topo.Nodes(),
			Interval:    150 * time.Millisecond,
			Cooldown:    900 * time.Millisecond,
			UpStreak:    2,
			DownStreak:  4,
			Headroom:    0.15,
			MaxNodes:    p.Nodes,
			BaseLatency: topo.MeanLatency(0, netsim.NodeID(topo.N()-1)),
		})
	}

	phases := BismarPhases(p, 1)
	var maxRecords uint64
	for _, ph := range phases {
		if ph.Workload.RecordCount > maxRecords {
			maxRecords = ph.Workload.RecordCount
		}
	}
	loader, err := ycsb.NewRunner(kv.StaticSession{Cluster: cl, ReadLevel: kv.One, WriteLevel: kv.One},
		ycsb.HeavyReadUpdate(maxRecords), tr, seed)
	if err != nil {
		panic(err)
	}
	cl.Preload(maxRecords, loader.Keys, loader.Value())
	ctl.Start()
	if asc != nil {
		asc.Start()
	}

	out := AutoscaleOutcome{Variant: v.Name}
	lastStale, lastFresh, _ := cl.Oracle().Counts()
	var lastDC, lastRegion uint64
	var raws []autoscalePhaseRaw

	for i, ph := range phases {
		w := ph.Workload
		w.ValueSize = p.ValueBytes
		threads := int(float64(p.Threads) * autoscaleThreadFrac[i%len(autoscaleThreadFrac)])
		if threads < 8 {
			threads = 8
		}
		r, err := ycsb.NewRunner(ctl.Session(cl), w, tr, seed+uint64(i+1)*1000)
		if err != nil {
			panic(err)
		}
		r.OpCount = ph.Ops
		r.Threads = threads
		start := eng.Now()
		r.Start()
		for !r.Finished() && eng.Step() {
		}
		if !r.Finished() {
			panic(fmt.Sprintf("experiments: autoscale phase %q stalled", ph.Name))
		}
		end := eng.Now()
		stale, fresh, failed := cl.Oracle().Counts()
		judged := (stale - lastStale) + (fresh - lastFresh)
		m := tr.Meter()
		dc, region := m.BilledBytes()
		raw := autoscalePhaseRaw{
			name:     ph.Name,
			start:    start,
			end:      end,
			ops:      r.Metrics().Ops,
			readK:    avgReadKWindow(ctl.Journal(), start, end, cl.RF()),
			members:  len(cl.Members()),
			dcBytes:  dc - lastDC,
			regBytes: region - lastRegion,
		}
		if judged > 0 {
			raw.stale = float64(stale-lastStale) / float64(judged)
		}
		lastStale, lastFresh = stale, fresh
		lastDC, lastRegion = dc, region
		_ = failed
		raws = append(raws, raw)
	}
	// Drain in-flight repair and membership work, then stop the loops.
	eng.RunFor(2 * time.Second)
	ctl.Stop()
	if asc != nil {
		asc.Stop()
		out.Decisions = asc.Log()
	}
	endTime := eng.Now()

	// Node-time accounting: initial members lease from time zero; every
	// enacted decision opens or closes a lease at its timestamp.
	tl := newNodeTimeline(initial, out.Decisions, endTime)
	smooth := Pricing().Smooth()
	for _, raw := range raws {
		ns := tl.nodeSeconds(raw.start, raw.end)
		ph := AutoscalePhase{
			Name:        raw.name,
			Members:     raw.members,
			Ops:         raw.ops,
			StaleRate:   raw.stale,
			AvgReadK:    raw.readK,
			NodeSeconds: ns,
			Changes:     tl.changesIn(raw.start, raw.end),
		}
		if d := raw.end - raw.start; d > 0 {
			ph.Throughput = float64(raw.ops) / d.Seconds()
		}
		// Instance cost over the exact node-time integral, plus storage
		// and the phase's billed traffic.
		ph.Bill = smooth.BillFor(cost.Usage{
			Nodes:            1,
			Duration:         time.Duration(ns * float64(time.Second)),
			StoredBytes:      float64(cl.Usage().StoredBytes),
			InterDCBytes:     float64(raw.dcBytes),
			InterRegionBytes: float64(raw.regBytes),
		})
		// BillFor prorates storage by the usage duration; re-prorate to
		// the phase duration instead of the node-time integral.
		ph.Bill.Storage = (float64(cl.Usage().StoredBytes) / cost.GB) * smooth.StorageGBMonth *
			((raw.end - raw.start).Hours() / cost.HoursPerMonth)
		out.Phases = append(out.Phases, ph)
	}

	// Total bill: every lease billed in whole granularity units — the
	// 2013-cloud convention the controller's boundary-aware scale-down
	// respects.
	finalMeter := tr.Meter()
	totalDC, totalRegion := finalMeter.BilledBytes()
	out.TotalBill = cost.Bill{
		Instances: tl.granularInstanceCost(granular),
		Storage: (float64(cl.Usage().StoredBytes) / cost.GB) * granular.StorageGBMonth *
			(endTime.Hours() / cost.HoursPerMonth),
		Network: (float64(totalDC)/cost.GB)*granular.InterDCPerGB +
			(float64(totalRegion)/cost.GB)*granular.InterRegionPerGB,
	}
	stale, fresh, _ := cl.Oracle().Counts()
	if judged := stale + fresh; judged > 0 {
		out.StaleRate = float64(stale) / float64(judged)
	}
	u := cl.Usage()
	out.Joins, out.Decommissions = u.Joins, u.Decommissions
	out.Usage = u
	return out
}

// nodeTimeline tracks cluster size over time as a step function plus
// the per-node leases, both derived from the initial member set and the
// enacted autoscale decisions.
type nodeTimeline struct {
	times  []time.Duration
	counts []int
	leases [][2]time.Duration // [from, to)
}

func newNodeTimeline(initial []netsim.NodeID, decisions []autoscale.Decision, end time.Duration) *nodeTimeline {
	tl := &nodeTimeline{times: []time.Duration{0}, counts: []int{len(initial)}}
	open := make(map[netsim.NodeID]time.Duration, len(initial))
	for _, id := range initial {
		open[id] = 0
	}
	cur := len(initial)
	for _, d := range decisions {
		switch d.Action {
		case autoscale.ActionJoin:
			cur++
			open[d.Node] = d.At
		case autoscale.ActionDecommission:
			cur--
			tl.leases = append(tl.leases, [2]time.Duration{open[d.Node], d.At})
			delete(open, d.Node)
		default:
			continue
		}
		tl.times = append(tl.times, d.At)
		tl.counts = append(tl.counts, cur)
	}
	for _, from := range open {
		tl.leases = append(tl.leases, [2]time.Duration{from, end})
	}
	return tl
}

// nodeSeconds integrates cluster size over [start, end).
func (tl *nodeTimeline) nodeSeconds(start, end time.Duration) float64 {
	var total float64
	for i := range tl.times {
		segStart := tl.times[i]
		segEnd := end
		if i+1 < len(tl.times) {
			segEnd = tl.times[i+1]
		}
		if segStart < start {
			segStart = start
		}
		if segEnd > end {
			segEnd = end
		}
		if segEnd > segStart {
			total += float64(tl.counts[i]) * (segEnd - segStart).Seconds()
		}
	}
	return total
}

// changesIn counts membership changes inside [start, end).
func (tl *nodeTimeline) changesIn(start, end time.Duration) int {
	n := 0
	for _, at := range tl.times[1:] {
		if at >= start && at < end {
			n++
		}
	}
	return n
}

// granularInstanceCost bills every lease in whole BillingGranularity
// units, the per-node equivalent of cost.Pricing.BillFor.
func (tl *nodeTimeline) granularInstanceCost(p cost.Pricing) float64 {
	g := p.BillingGranularity
	if g <= 0 {
		g = time.Hour
	}
	var total float64
	for _, l := range tl.leases {
		dur := l[1] - l[0]
		if dur <= 0 {
			continue
		}
		units := math.Ceil(float64(dur) / float64(g))
		total += units * p.InstanceHour * (float64(g) / float64(time.Hour))
	}
	return total
}
