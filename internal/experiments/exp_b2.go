package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ycsb"
)

// ExpB2Sample is one (access pattern, level) measurement of the
// consistency-cost efficiency metric.
type ExpB2Sample struct {
	Pattern    string
	Level      string
	StaleRate  float64
	CostPM     float64
	NormCost   float64
	Efficiency float64
	Best       bool
}

// RunExpB2Metric reproduces the metric-validation samples of §IV-B: the
// same workload run with different access patterns and every consistency
// level, each sample scored with eff = fresh / (cost/cost_ALL) from
// measured staleness and measured cost. The paper's finding: the most
// efficient levels are those whose staleness stays below ~20%.
func RunExpB2Metric(p Platform, seed uint64) ([]ExpB2Sample, *Table) {
	pricing := Pricing().PerSecond()
	patterns := []struct {
		name string
		w    ycsb.Workload
	}{
		{"read-mostly r=0.95 θ=0.90", ycsb.Mix(p.Records, 0.95, ycsb.DistZipfian, 0.90)},
		{"mixed r=0.75 θ=0.99", ycsb.Mix(p.Records, 0.75, ycsb.DistZipfian, 0.99)},
		{"update-heavy r=0.50 θ=0.99", ycsb.Mix(p.Records, 0.50, ycsb.DistZipfian, 0.99)},
	}

	levels := symmetricLevels(p.RF)
	// The (pattern × level) grid is one flat fan-out for the parallel
	// driver; rows are regrouped per pattern below.
	specs := make([]RunSpec, 0, len(patterns)*len(levels))
	for _, pat := range patterns {
		w := pat.w
		w.ValueSize = p.ValueBytes
		for _, lvl := range levels {
			specs = append(specs, RunSpec{
				Platform: p,
				Tuner:    core.StaticTuner{Read: lvl, Write: lvl},
				Workload: w,
				Seed:     seed,
			})
		}
	}
	grid := RunAll(specs)

	var samples []ExpB2Sample
	t := NewTable(
		fmt.Sprintf("Exp B2 (§IV-B): consistency-cost efficiency samples — %s", p.Name),
		"access pattern", "level", "stale reads", "$/M ops", "norm cost", "efficiency", "")
	for pi, pat := range patterns {
		row := make([]ExpB2Sample, 0, len(levels))
		for li, lvl := range levels {
			res := grid[pi*len(levels)+li]
			bill, _ := BillAtPaperScale(p, pricing, res, p.Ops)
			row = append(row, ExpB2Sample{
				Pattern:   pat.name,
				Level:     lvl.String(),
				StaleRate: res.Metrics.StaleRate(),
				CostPM:    bill.Total() / float64(p.Ops) * 1e6,
			})
		}
		all := row[len(row)-1].CostPM
		bestIdx, bestEff := 0, -1.0
		for i := range row {
			if all > 0 {
				row[i].NormCost = row[i].CostPM / all
			}
			if row[i].NormCost > 0 {
				row[i].Efficiency = (1 - row[i].StaleRate) / row[i].NormCost
			}
			if row[i].Efficiency > bestEff {
				bestIdx, bestEff = i, row[i].Efficiency
			}
		}
		row[bestIdx].Best = true
		for _, s := range row {
			mark := ""
			if s.Best {
				mark = "← most efficient"
			}
			t.Add(s.Pattern, s.Level, pct(s.StaleRate), fmt.Sprintf("%.4f", s.CostPM),
				fmt.Sprintf("%.3f", s.NormCost), fmt.Sprintf("%.3f", s.Efficiency), mark)
		}
		samples = append(samples, row...)
	}

	worstBestStale := 0.0
	for _, s := range samples {
		if s.Best && s.StaleRate > worstBestStale {
			worstBestStale = s.StaleRate
		}
	}
	t.Note("highest staleness among most-efficient levels: %s (paper: efficient levels stay below 20%%)",
		pct(worstBestStale))
	return samples, t
}
