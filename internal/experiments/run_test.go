package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/ycsb"
)

func TestAvgReadKTimeWeighting(t *testing.T) {
	journal := []core.JournalEntry{
		{At: 0, Decision: core.Decision{ReadLevel: kv.One}},
		{At: time.Second, Decision: core.Decision{ReadLevel: kv.Quorum}}, // k=2 at RF 3
	}
	// 1 s at k=1, 3 s at k=2 → (1·1 + 3·2)/4 = 1.75.
	got := avgReadK(journal, 4*time.Second, 3)
	if math.Abs(got-1.75) > 1e-9 {
		t.Errorf("avg read k = %f, want 1.75", got)
	}
	if avgReadK(nil, time.Second, 3) != 0 {
		t.Error("empty journal must yield 0")
	}
	// Journal entry after the end: falls back to the last decision.
	late := []core.JournalEntry{{At: 10 * time.Second, Decision: core.Decision{ReadLevel: kv.All}}}
	if got := avgReadK(late, time.Second, 3); got != 3 {
		t.Errorf("late journal avg = %f", got)
	}
}

func TestBillAtPaperScaleExtrapolation(t *testing.T) {
	p := EC2Cost()
	var traffic netsim.TrafficMeter
	traffic.Count(netsim.InterDC, 1000)
	res := RunResult{
		Metrics: &ycsb.Metrics{Ops: 100, End: time.Second},
		Traffic: traffic,
	}
	res.Metrics.Start = 0
	// 100 ops/s measured; paper ops 1000 → 10 s duration, 10 kB billed.
	bill, usage := BillAtPaperScale(p, Pricing().PerSecond(), res, 1000)
	if usage.Duration != 10*time.Second {
		t.Errorf("duration = %v", usage.Duration)
	}
	if math.Abs(usage.InterDCBytes-10000) > 1e-6 {
		t.Errorf("interDC bytes = %f", usage.InterDCBytes)
	}
	if usage.StoredBytes != p.DatasetGB*(1<<30)*float64(p.RF) {
		t.Errorf("stored bytes = %f", usage.StoredBytes)
	}
	if bill.Total() <= 0 {
		t.Error("zero bill")
	}
}

func TestScaledKeepsFloors(t *testing.T) {
	p := G5KHarmony()
	s := p.Scaled(1e-9)
	if s.Ops < uint64(p.Threads)*60 {
		t.Errorf("ops floor not applied: %d", s.Ops)
	}
	if s.Records < 500 {
		t.Errorf("records floor not applied: %d", s.Records)
	}
	if unchanged := p.Scaled(1); unchanged.Ops != p.Ops {
		t.Error("scale 1 must be identity")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Add("x", 1.5)
	tb.Note("note %d", 7)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "a", "x", "1.50", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestSymmetricLevelNames(t *testing.T) {
	levels := symmetricLevels(5)
	if len(levels) != 5 {
		t.Fatalf("levels = %d", len(levels))
	}
	if levels[0].String() != "ONE" || levels[2].String() != "QUORUM" || levels[4].String() != "ALL" {
		t.Errorf("levels = %v", levels)
	}
}

func TestPlatformConfigsBuild(t *testing.T) {
	for _, p := range []Platform{EC2Harmony(), G5KHarmony(), EC2Cost(), G5KCost()} {
		topo := p.Build()
		if topo.N() != p.Nodes {
			t.Errorf("%s: topo %d nodes, preset says %d", p.Name, topo.N(), p.Nodes)
		}
		cfg := p.Config(1)
		if cfg.RF != p.RF || cfg.Concurrency != p.Concurrency {
			t.Errorf("%s: config not derived from platform", p.Name)
		}
	}
}
