package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	buf := BeginFrame(nil, 7)
	buf = append(buf, "hello frame"...)
	buf = EndFrame(buf, 0)

	kind, body, n, err := ReadFrame(buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if kind != 7 {
		t.Fatalf("kind = %d, want 7", kind)
	}
	if string(body) != "hello frame" {
		t.Fatalf("body = %q", body)
	}
	if n != len(buf) {
		t.Fatalf("n = %d, want %d", n, len(buf))
	}
}

func TestFrameIncomplete(t *testing.T) {
	buf := BeginFrame(nil, 3)
	buf = append(buf, "payload"...)
	buf = EndFrame(buf, 0)
	for cut := 0; cut < len(buf); cut++ {
		kind, body, n, err := ReadFrame(buf[:cut])
		if err != nil || n != 0 || kind != 0 || body != nil {
			t.Fatalf("cut %d: got kind=%d n=%d err=%v, want incomplete", cut, kind, n, err)
		}
	}
}

func TestFrameCorrupt(t *testing.T) {
	buf := BeginFrame(nil, 3)
	buf = append(buf, "payload"...)
	buf = EndFrame(buf, 0)

	flipped := append([]byte(nil), buf...)
	flipped[6] ^= 0x40 // body byte
	if _, _, _, err := ReadFrame(flipped); err != ErrFrameCorrupt {
		t.Fatalf("body corruption: err = %v, want ErrFrameCorrupt", err)
	}

	badVer := append([]byte(nil), buf...)
	badVer[4] = FrameVersion + 1
	sum := crc32.ChecksumIEEE(badVer[4 : len(badVer)-4])
	binary.BigEndian.PutUint32(badVer[len(badVer)-4:], sum)
	if _, _, _, err := ReadFrame(badVer); err != ErrFrameVersion {
		t.Fatalf("bad version: err = %v, want ErrFrameVersion", err)
	}
}

func TestFrameMultiple(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		start := len(buf)
		buf = BeginFrame(buf, byte(i+1))
		buf = append(buf, byte('a'+i))
		buf = EndFrame(buf, start)
	}
	off := 0
	for i := 0; i < 3; i++ {
		kind, body, n, err := ReadFrame(buf[off:])
		if err != nil || n == 0 {
			t.Fatalf("frame %d: n=%d err=%v", i, n, err)
		}
		if kind != byte(i+1) || len(body) != 1 || body[0] != byte('a'+i) {
			t.Fatalf("frame %d: kind=%d body=%q", i, kind, body)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d", off, len(buf))
	}
}

func TestVarintRoundTrip(t *testing.T) {
	uvals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, 1<<64 - 1}
	for _, v := range uvals {
		buf := AppendUvarint(nil, v)
		got, n := Uvarint(buf)
		if n != len(buf) || got != v {
			t.Fatalf("uvarint %d: got %d n=%d", v, got, n)
		}
	}
	ivals := []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63}
	for _, v := range ivals {
		buf := AppendVarint(nil, v)
		got, n := Varint(buf)
		if n != len(buf) || got != v {
			t.Fatalf("varint %d: got %d n=%d", v, got, n)
		}
	}
}

func TestUvarintOverlong(t *testing.T) {
	buf := bytes.Repeat([]byte{0x80}, 11)
	if _, n := Uvarint(buf); n > 0 {
		t.Fatalf("overlong uvarint accepted, n=%d", n)
	}
	if _, n := Uvarint([]byte{0x80}); n != 0 {
		t.Fatalf("truncated uvarint: n=%d, want 0", n)
	}
}

func TestBytesAndBool(t *testing.T) {
	buf := AppendBytes(nil, []byte("abc"))
	buf = AppendString(buf, "defg")
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)

	b, n := Bytes(buf)
	if string(b) != "abc" || n == 0 {
		t.Fatalf("Bytes = %q, n=%d", b, n)
	}
	buf = buf[n:]
	b, n = Bytes(buf)
	if string(b) != "defg" {
		t.Fatalf("Bytes = %q", b)
	}
	buf = buf[n:]
	v, n := Bool(buf)
	if !v || n != 1 {
		t.Fatalf("Bool = %v n=%d", v, n)
	}
	v, n = Bool(buf[1:])
	if v || n != 1 {
		t.Fatalf("Bool = %v n=%d", v, n)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	body := bytes.Repeat([]byte("x"), 64)
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf = BeginFrame(buf, 1)
		buf = append(buf, body...)
		buf = EndFrame(buf, 0)
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	buf := BeginFrame(nil, 1)
	buf = append(buf, bytes.Repeat([]byte("x"), 64)...)
	buf = EndFrame(buf, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ReadFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}
