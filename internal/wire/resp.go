package wire

import (
	"errors"
	"io"
	"strconv"
)

// RESP2 protocol reader and writer — the serving layer's client-facing
// codec. The reader parses pipelined command arrays (and inline
// commands) out of a reused internal buffer, returning argument views
// that stay valid until the next ReadCommand call; the writer appends
// replies into a reused buffer and flushes once per pipeline batch. On
// the steady state neither side allocates.

// ErrRESPProtocol reports malformed RESP input on a connection.
var ErrRESPProtocol = errors.New("wire: RESP protocol error")

// maxRESPBulk bounds a single bulk string (64 MiB): anything larger is
// treated as a protocol error rather than a buffer-growth request.
const maxRESPBulk = 64 << 20

// respBufSize is the initial buffer size of readers and writers.
const respBufSize = 4 << 10

// RESPReader decodes RESP2 commands from a stream.
type RESPReader struct {
	r     io.Reader
	buf   []byte
	start int // first unconsumed byte
	end   int // end of valid data
	args  [][]byte
}

// NewRESPReader returns a reader over r.
func NewRESPReader(r io.Reader) *RESPReader {
	return &RESPReader{r: r, buf: make([]byte, respBufSize)}
}

// Buffered reports the bytes already read but not yet consumed — after
// a ReadCommand, a nonzero count means more pipelined input is pending,
// so a server can keep dispatching before it flushes replies.
func (r *RESPReader) Buffered() int { return r.end - r.start }

// ReadCommand returns the next command's arguments. The returned views
// point into the reader's internal buffer and are valid only until the
// next ReadCommand call; callers retaining an argument must copy it.
func (r *RESPReader) ReadCommand() ([][]byte, error) {
	for {
		args, n, err := r.parse()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			r.start += n
			if len(args) == 0 {
				continue // empty inline line or zero-length array: skip
			}
			return args, nil
		}
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
}

// TryReadCommand decodes the next command only when it is already
// fully buffered, never blocking on the underlying reader: ok reports
// whether a command was returned. Servers use it to keep dispatching a
// pipeline's worth of commands before flushing replies, without
// stalling on a trailing partial command.
func (r *RESPReader) TryReadCommand() (args [][]byte, ok bool, err error) {
	for {
		args, n, err := r.parse()
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		r.start += n
		if len(args) == 0 {
			continue
		}
		return args, true, nil
	}
}

// parse attempts to decode one command from the buffered window,
// returning the bytes it spans (0 when the window holds only a prefix).
func (r *RESPReader) parse() ([][]byte, int, error) {
	data := r.buf[r.start:r.end]
	if len(data) == 0 {
		return nil, 0, nil
	}
	r.args = r.args[:0]
	if data[0] != '*' {
		return r.parseInline(data)
	}
	count, i, err := parseRESPLine(data, 1)
	if err != nil || i == 0 {
		return nil, 0, err
	}
	if count < 0 || count > 1<<20 {
		return nil, 0, ErrRESPProtocol
	}
	for k := int64(0); k < count; k++ {
		if i >= len(data) {
			return nil, 0, nil
		}
		if data[i] != '$' {
			return nil, 0, ErrRESPProtocol
		}
		l, j, err := parseRESPLine(data, i+1)
		if err != nil || j == 0 {
			return nil, 0, err
		}
		if l < 0 || l > maxRESPBulk {
			return nil, 0, ErrRESPProtocol
		}
		if len(data)-j < int(l)+2 {
			return nil, 0, nil
		}
		if data[j+int(l)] != '\r' || data[j+int(l)+1] != '\n' {
			return nil, 0, ErrRESPProtocol
		}
		r.args = append(r.args, data[j:j+int(l)])
		i = j + int(l) + 2
	}
	return r.args, i, nil
}

// parseInline decodes a space-separated inline command line (the
// hand-telnet form redis-cli falls back to).
func (r *RESPReader) parseInline(data []byte) ([][]byte, int, error) {
	lineEnd := -1
	for i := 0; i+1 < len(data); i++ {
		if data[i] == '\r' && data[i+1] == '\n' {
			lineEnd = i
			break
		}
	}
	if lineEnd < 0 {
		if len(data) > respBufSize*4 {
			return nil, 0, ErrRESPProtocol
		}
		return nil, 0, nil
	}
	line := data[:lineEnd]
	for i := 0; i < len(line); {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			r.args = append(r.args, line[start:i])
		}
	}
	// A bare CRLF is consumed without producing a command.
	return r.args, lineEnd + 2, nil
}

// parseRESPLine parses the decimal integer at data[i:] terminated by
// CRLF, returning the value and the index just past the terminator
// (0 when the line is incomplete).
func parseRESPLine(data []byte, i int) (int64, int, error) {
	neg := false
	if i < len(data) && data[i] == '-' {
		neg = true
		i++
	}
	var v int64
	digits := 0
	for ; i < len(data); i++ {
		c := data[i]
		if c == '\r' {
			if i+1 >= len(data) {
				return 0, 0, nil
			}
			if data[i+1] != '\n' || digits == 0 {
				return 0, 0, ErrRESPProtocol
			}
			if neg {
				v = -v
			}
			return v, i + 2, nil
		}
		if c < '0' || c > '9' || digits > 18 {
			return 0, 0, ErrRESPProtocol
		}
		v = v*10 + int64(c-'0')
		digits++
	}
	return 0, 0, nil
}

// fill reads more input, compacting or growing the buffer as needed.
func (r *RESPReader) fill() error {
	if r.end == len(r.buf) {
		if r.start > 0 {
			copy(r.buf, r.buf[r.start:r.end])
			r.end -= r.start
			r.start = 0
		} else {
			grown := make([]byte, len(r.buf)*2)
			copy(grown, r.buf[:r.end])
			r.buf = grown
		}
	}
	n, err := r.r.Read(r.buf[r.end:])
	r.end += n
	if n == 0 && err != nil {
		return err
	}
	return nil
}

// RESPWriter encodes RESP2 replies into a reused buffer; Flush writes
// the whole batch in one syscall.
type RESPWriter struct {
	w   io.Writer
	buf []byte
}

// NewRESPWriter returns a writer over w.
func NewRESPWriter(w io.Writer) *RESPWriter {
	return &RESPWriter{w: w, buf: make([]byte, 0, respBufSize)}
}

// Buffered reports the bytes appended since the last Flush.
func (w *RESPWriter) Buffered() int { return len(w.buf) }

// SimpleString appends +s.
func (w *RESPWriter) SimpleString(s string) {
	w.buf = append(w.buf, '+')
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, '\r', '\n')
}

// Error appends -msg.
func (w *RESPWriter) Error(msg string) {
	w.buf = append(w.buf, '-')
	w.buf = append(w.buf, msg...)
	w.buf = append(w.buf, '\r', '\n')
}

// Int appends :n.
func (w *RESPWriter) Int(n int64) {
	w.buf = append(w.buf, ':')
	w.buf = strconv.AppendInt(w.buf, n, 10)
	w.buf = append(w.buf, '\r', '\n')
}

// Bulk appends v as a bulk string.
func (w *RESPWriter) Bulk(v []byte) {
	w.buf = append(w.buf, '$')
	w.buf = strconv.AppendInt(w.buf, int64(len(v)), 10)
	w.buf = append(w.buf, '\r', '\n')
	w.buf = append(w.buf, v...)
	w.buf = append(w.buf, '\r', '\n')
}

// BulkString appends s as a bulk string.
func (w *RESPWriter) BulkString(s string) {
	w.buf = append(w.buf, '$')
	w.buf = strconv.AppendInt(w.buf, int64(len(s)), 10)
	w.buf = append(w.buf, '\r', '\n')
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, '\r', '\n')
}

// Null appends the RESP2 null bulk ($-1).
func (w *RESPWriter) Null() {
	w.buf = append(w.buf, '$', '-', '1', '\r', '\n')
}

// Array appends an array header for n elements.
func (w *RESPWriter) Array(n int) {
	w.buf = append(w.buf, '*')
	w.buf = strconv.AppendInt(w.buf, int64(n), 10)
	w.buf = append(w.buf, '\r', '\n')
}

// Flush writes the buffered replies and resets the buffer.
func (w *RESPWriter) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}
