// Package wire is the serving layer's binary codec: compact varint
// primitives, a versioned length-prefixed frame format for the kv
// message set (the same length + type + payload + CRC32 framing the
// storage WAL uses, so a torn or corrupt peer stream is detected exactly
// like a torn log), and a RESP2 protocol reader/writer for the
// Redis-compatible front end. Everything is allocation-conscious:
// encoders append into caller-owned buffers, decoders return views into
// the input, and the RESP reader/writer reuse their internal buffers
// across commands so the steady-state encode/decode path allocates
// nothing.
package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// FrameVersion is the peer-protocol version stamped into every frame; a
// decoder refuses frames from a different protocol generation instead of
// misparsing them.
const FrameVersion = 1

const (
	frameLenBytes = 4 // big-endian length of everything after it
	frameHdrBytes = 2 // version byte + kind byte
	frameCRCBytes = 4 // CRC32 (IEEE) over version + kind + body
)

// FrameOverhead is the fixed per-frame framing cost in bytes.
const FrameOverhead = frameLenBytes + frameHdrBytes + frameCRCBytes

// Frame decode errors.
var (
	// ErrFrameCorrupt reports a checksum mismatch or impossible length.
	ErrFrameCorrupt = errors.New("wire: corrupt frame")
	// ErrFrameVersion reports a frame from an unknown protocol version.
	ErrFrameVersion = errors.New("wire: unsupported frame version")
)

// BeginFrame appends a frame header for kind to buf and returns the
// extended slice. The caller appends the body and closes the frame with
// EndFrame, passing the length buf had before BeginFrame:
//
//	start := len(buf)
//	buf = wire.BeginFrame(buf, kind)
//	buf = append(buf, body...)
//	buf = wire.EndFrame(buf, start)
func BeginFrame(buf []byte, kind byte) []byte {
	return append(buf, 0, 0, 0, 0, FrameVersion, kind)
}

// EndFrame patches the length of the frame opened at start and appends
// its CRC, returning the completed slice.
func EndFrame(buf []byte, start int) []byte {
	crc := crc32.ChecksumIEEE(buf[start+frameLenBytes:])
	buf = binary.BigEndian.AppendUint32(buf, crc)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-frameLenBytes))
	return buf
}

// ReadFrame parses one frame at the head of data. It returns the frame
// kind, a view of its body (valid only while data is) and the total
// bytes consumed. An incomplete frame returns n == 0 with a nil error —
// the caller reads more input and retries; a checksum or version
// mismatch returns an error.
func ReadFrame(data []byte) (kind byte, body []byte, n int, err error) {
	if len(data) < frameLenBytes {
		return 0, nil, 0, nil
	}
	length := int(binary.BigEndian.Uint32(data))
	if length < frameHdrBytes+frameCRCBytes {
		return 0, nil, 0, ErrFrameCorrupt
	}
	total := frameLenBytes + length
	if len(data) < total {
		return 0, nil, 0, nil
	}
	crcOff := total - frameCRCBytes
	sum := crc32.ChecksumIEEE(data[frameLenBytes:crcOff])
	if sum != binary.BigEndian.Uint32(data[crcOff:]) {
		return 0, nil, 0, ErrFrameCorrupt
	}
	if data[frameLenBytes] != FrameVersion {
		return 0, nil, 0, ErrFrameVersion
	}
	kind = data[frameLenBytes+1]
	body = data[frameLenBytes+frameHdrBytes : crcOff]
	return kind, body, total, nil
}

// Varint primitives. Append* extend a caller-owned buffer; the read
// forms return the decoded value and bytes consumed (n == 0 on a
// truncated or overlong input).

// AppendUvarint appends x in LEB128 form.
func AppendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

// Uvarint decodes a LEB128 value from the head of data.
func Uvarint(data []byte) (x uint64, n int) {
	var shift uint
	for i, b := range data {
		if i == binary.MaxVarintLen64 {
			return 0, 0
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, 0
			}
			return x | uint64(b)<<shift, i + 1
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// AppendVarint appends x zigzag-encoded.
func AppendVarint(buf []byte, x int64) []byte {
	return AppendUvarint(buf, uint64(x)<<1^uint64(x>>63))
}

// Varint decodes a zigzag-encoded value from the head of data.
func Varint(data []byte) (x int64, n int) {
	u, n := Uvarint(data)
	return int64(u>>1) ^ -int64(u&1), n
}

// AppendBytes appends v length-prefixed.
func AppendBytes(buf, v []byte) []byte {
	buf = AppendUvarint(buf, uint64(len(v)))
	return append(buf, v...)
}

// AppendString appends s length-prefixed.
func AppendString(buf []byte, s string) []byte {
	buf = AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Bytes decodes a length-prefixed byte field, returning a view into
// data (the caller copies if it retains the value past the buffer).
func Bytes(data []byte) (v []byte, n int) {
	l, n := Uvarint(data)
	if n == 0 || uint64(len(data)-n) < l {
		return nil, 0
	}
	return data[n : n+int(l)], n + int(l)
}

// AppendBool appends b as one byte.
func AppendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// Bool decodes a one-byte bool.
func Bool(data []byte) (b bool, n int) {
	if len(data) == 0 {
		return false, 0
	}
	return data[0] != 0, 1
}
