package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// chunkReader returns its data in fixed-size chunks, exercising the
// reader's partial-command handling.
type chunkReader struct {
	data  []byte
	off   int
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.off >= len(c.data) {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data)-c.off {
		n = len(c.data) - c.off
	}
	copy(p, c.data[c.off:c.off+n])
	c.off += n
	return n, nil
}

func cmdsEqual(t *testing.T, got [][]byte, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d args, want %d (%q vs %q)", len(got), len(want), got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("arg %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRESPReadCommand(t *testing.T) {
	input := "*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"
	for chunk := 1; chunk <= len(input); chunk += 7 {
		r := NewRESPReader(&chunkReader{data: []byte(input), chunk: chunk})
		args, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		cmdsEqual(t, args, []string{"SET", "foo", "bar"})
		args, err = r.ReadCommand()
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		cmdsEqual(t, args, []string{"GET", "foo"})
		if _, err := r.ReadCommand(); err != io.EOF {
			t.Fatalf("chunk %d: err = %v, want EOF", chunk, err)
		}
	}
}

func TestRESPInlineCommand(t *testing.T) {
	r := NewRESPReader(strings.NewReader("PING\r\n  GET   key1 \r\n\r\nQUIT\r\n"))
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	cmdsEqual(t, args, []string{"PING"})
	args, err = r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	cmdsEqual(t, args, []string{"GET", "key1"})
	// The bare CRLF is skipped.
	args, err = r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	cmdsEqual(t, args, []string{"QUIT"})
}

func TestRESPTryReadCommand(t *testing.T) {
	full := "*1\r\n$4\r\nPING\r\n"
	r := NewRESPReader(strings.NewReader(full + "*1\r\n$4\r\nPI"))
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	cmdsEqual(t, args, []string{"PING"})
	// The second command is only partially buffered: TryReadCommand must
	// decline rather than block.
	args, ok, err := r.TryReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("TryReadCommand returned %q for a partial command", args)
	}
}

func TestRESPProtocolErrors(t *testing.T) {
	bad := []string{
		"*2\r\n$3\r\nGET\r\n:5\r\n", // non-bulk element
		"*1\r\n$-4\r\nPING\r\n",     // negative bulk length
		"*-1\r\n",                   // negative array
		"*1\r\n$4\r\nPINGxx",        // missing CRLF after bulk
	}
	for _, in := range bad {
		r := NewRESPReader(strings.NewReader(in))
		if _, err := r.ReadCommand(); err != ErrRESPProtocol {
			t.Fatalf("%q: err = %v, want ErrRESPProtocol", in, err)
		}
	}
}

func TestRESPLargeBulk(t *testing.T) {
	payload := bytes.Repeat([]byte("v"), 100<<10) // 100 KiB, forces buffer growth
	var in bytes.Buffer
	in.WriteString("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n")
	in.WriteString("$102400\r\n")
	in.Write(payload)
	in.WriteString("\r\n")
	r := NewRESPReader(&in)
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || !bytes.Equal(args[2], payload) {
		t.Fatalf("large bulk mangled: %d args, len %d", len(args), len(args[2]))
	}
}

func TestRESPWriter(t *testing.T) {
	var out bytes.Buffer
	w := NewRESPWriter(&out)
	w.SimpleString("OK")
	w.Error("ERR nope")
	w.Int(-42)
	w.Bulk([]byte("val"))
	w.Null()
	w.Array(2)
	w.BulkString("a")
	w.BulkString("b")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR nope\r\n:-42\r\n$3\r\nval\r\n$-1\r\n*2\r\n$1\r\na\r\n$1\r\nb\r\n"
	if out.String() != want {
		t.Fatalf("wrote %q, want %q", out.String(), want)
	}
	if w.Buffered() != 0 {
		t.Fatalf("Buffered = %d after Flush", w.Buffered())
	}
}

// loopReader replays one encoded command forever.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

func BenchmarkRESPDecode(b *testing.B) {
	cmd := []byte("*3\r\n$3\r\nSET\r\n$8\r\nkey:1234\r\n$64\r\n" + strings.Repeat("x", 64) + "\r\n")
	r := NewRESPReader(&loopReader{data: cmd})
	b.ReportAllocs()
	b.SetBytes(int64(len(cmd)))
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadCommand(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRESPEncode(b *testing.B) {
	value := bytes.Repeat([]byte("x"), 64)
	w := NewRESPWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.SimpleString("OK")
		w.Bulk(value)
		w.Int(1)
		if i%64 == 63 {
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestRESPDecodeAllocFree(t *testing.T) {
	cmd := []byte("*3\r\n$3\r\nSET\r\n$8\r\nkey:1234\r\n$64\r\n" + strings.Repeat("x", 64) + "\r\n")
	r := NewRESPReader(&loopReader{data: cmd})
	// Warm up buffer growth and args capacity.
	for i := 0; i < 100; i++ {
		if _, err := r.ReadCommand(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := r.ReadCommand(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadCommand allocates %.1f per op, want 0", allocs)
	}
}

func TestRESPEncodeAllocFree(t *testing.T) {
	value := bytes.Repeat([]byte("x"), 64)
	w := NewRESPWriter(io.Discard)
	allocs := testing.AllocsPerRun(1000, func() {
		w.SimpleString("OK")
		w.Bulk(value)
		w.Int(1)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("reply encoding allocates %.1f per op, want 0", allocs)
	}
}
