package server

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package if any test leaks goroutines: every server
// Close must join its accept and connection loops, and every deployment
// Close must quiesce its engine.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
