// Package server is the Redis-compatible TCP front end of a serving
// deployment: a per-connection event loop that parses pipelined RESP2
// commands, maps them onto the store's unified client machinery
// (sessions under the engine lock, exactly as the in-process Client
// drives them), and writes a pipeline's worth of replies in one flush.
// GET/SET/DEL/MGET/MSET/EXISTS cover the data path; LEVEL exposes
// per-connection consistency control and per-operation level/staleness
// introspection; INFO reports cluster membership, adaptive levels and
// usage meters. redis-cli and redis-benchmark speak to it natively.
package server

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/wire"
)

// maxBatch bounds the commands dispatched per pipeline batch.
const maxBatch = 1024

// Server serves RESP2 connections over one serving deployment.
type Server struct {
	deploy *repro.Live
	sess   repro.Session
	ctl    *repro.Controller // optional: adaptive level introspection
	defR   repro.Level       // reported levels when no controller is set
	defW   repro.Level

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// New returns a server issuing operations through sess on deploy. The
// static levels are what LEVEL/INFO report when no controller is
// attached (SetController for adaptive sessions).
func New(deploy *repro.Live, sess repro.Session, read, write repro.Level) *Server {
	return &Server{
		deploy: deploy,
		sess:   sess,
		defR:   read,
		defW:   write,
		conns:  make(map[net.Conn]struct{}),
	}
}

// SetController attaches the controller re-tuning sess, so LEVEL and
// INFO report the adaptive decision instead of the static levels.
func (s *Server) SetController(ctl *repro.Controller) { s.ctl = ctl }

// Listen binds addr and starts accepting connections.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr reports the bound listen address (tests bind port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes every connection and joins all
// connection goroutines. The deployment itself is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	c := &conn{srv: s}
	r := wire.NewRESPReader(nc)
	w := wire.NewRESPWriter(nc)
	for {
		args, err := r.ReadCommand()
		if err != nil {
			return // client gone or protocol violation
		}
		c.ops = c.ops[:0]
		c.addOp(args)
		// Keep consuming while fully-buffered pipelined commands remain,
		// so the whole burst is dispatched before a single flush.
		for len(c.ops) < maxBatch {
			args, ok, err := r.TryReadCommand()
			if err != nil {
				return
			}
			if !ok {
				break
			}
			c.addOp(args)
		}
		c.execute()
		c.reply(w)
		if err := w.Flush(); err != nil || c.quit {
			return
		}
	}
}

// opKind tags one parsed command with how it executes and replies.
type opKind uint8

const (
	opGet opKind = iota
	opSet
	opDel
	opMGet
	opMSet
	opExists
	opInfo
	opLevelReport // LEVEL / LEVEL GET: current effective levels
	opLevelLast   // LEVEL LAST: last read's level/staleness on this conn
	opSimple      // immediate +msg
	opArray0      // immediate *0
	opError       // immediate -msg
	opQuit
)

// op is one parsed command with its captured arguments and, after
// execute, its results. The slice of ops is reused across batches.
type op struct {
	kind opKind
	key  string
	val  []byte
	keys []string
	puts []repro.PutOp
	msg  string

	// Level override captured at parse time (LEVEL SET is positional:
	// it applies to the commands after it, pipelined or not).
	lvlR, lvlW repro.Level
	useLvl     bool

	rr  repro.ReadResult
	wr  repro.WriteResult
	rrs []repro.ReadResult
	wrs []repro.WriteResult
}

// conn is the per-connection state.
type conn struct {
	srv  *Server
	ops  []op
	quit bool

	// Per-connection consistency override (LEVEL SET / LEVEL RESET).
	ovr        bool
	ovrR, ovrW repro.Level

	// Last single-key read completed on this connection, in command
	// order (LEVEL LAST reads it).
	lastRead repro.ReadResult
	haveLast bool
}

// push appends a parsed op, stamping the current level override.
func (c *conn) push(o op) *op {
	o.useLvl, o.lvlR, o.lvlW = c.ovr, c.ovrR, c.ovrW
	c.ops = append(c.ops, o)
	return &c.ops[len(c.ops)-1]
}

// addOp parses one command's arguments (views into the reader buffer —
// anything retained is copied here).
func (c *conn) addOp(args [][]byte) {
	if len(args) == 0 {
		return
	}
	name := args[0]
	switch {
	case ciEqual(name, "GET"):
		if len(args) != 2 {
			c.pushArity("get")
			return
		}
		c.push(op{kind: opGet, key: string(args[1])})
	case ciEqual(name, "SET"):
		if len(args) != 3 {
			c.pushArity("set")
			return
		}
		c.push(op{kind: opSet, key: string(args[1]), val: append([]byte(nil), args[2]...)})
	case ciEqual(name, "DEL"):
		if len(args) < 2 {
			c.pushArity("del")
			return
		}
		c.push(op{kind: opDel, puts: delOps(args[1:])})
	case ciEqual(name, "MGET"):
		if len(args) < 2 {
			c.pushArity("mget")
			return
		}
		c.push(op{kind: opMGet, keys: copyKeys(args[1:])})
	case ciEqual(name, "MSET"):
		if len(args) < 3 || len(args)%2 == 0 {
			c.pushArity("mset")
			return
		}
		puts := make([]repro.PutOp, 0, (len(args)-1)/2)
		for i := 1; i < len(args); i += 2 {
			puts = append(puts, repro.PutOp{Key: string(args[i]), Value: append([]byte(nil), args[i+1]...)})
		}
		c.push(op{kind: opMSet, puts: puts})
	case ciEqual(name, "EXISTS"):
		if len(args) < 2 {
			c.pushArity("exists")
			return
		}
		c.push(op{kind: opExists, keys: copyKeys(args[1:])})
	case ciEqual(name, "LEVEL"):
		c.addLevelOp(args)
	case ciEqual(name, "INFO"):
		c.push(op{kind: opInfo})
	case ciEqual(name, "PING"):
		if len(args) == 2 {
			c.push(op{kind: opSimple, msg: string(args[1])})
			return
		}
		c.push(op{kind: opSimple, msg: "PONG"})
	case ciEqual(name, "ECHO"):
		if len(args) != 2 {
			c.pushArity("echo")
			return
		}
		c.push(op{kind: opGet, rr: repro.ReadResult{Exists: true, Value: append([]byte(nil), args[1]...)}, key: ""})
	case ciEqual(name, "QUIT"):
		c.push(op{kind: opQuit})
	case ciEqual(name, "SELECT"), ciEqual(name, "CLIENT"):
		c.push(op{kind: opSimple, msg: "OK"})
	case ciEqual(name, "COMMAND"):
		c.push(op{kind: opArray0})
	case ciEqual(name, "CONFIG"):
		if len(args) >= 2 && ciEqual(args[1], "SET") {
			c.push(op{kind: opSimple, msg: "OK"})
			return
		}
		c.push(op{kind: opArray0})
	default:
		c.push(op{kind: opError, msg: fmt.Sprintf("ERR unknown command '%s'", string(name))})
	}
}

// addLevelOp parses the LEVEL command extension:
//
//	LEVEL [GET]              -> *2 [read, write] effective levels
//	LEVEL SET <read> <write> -> pin this connection's levels
//	LEVEL RESET              -> back to the (adaptive) session levels
//	LEVEL LAST               -> *3 [level, stale, cached] of the last GET
func (c *conn) addLevelOp(args [][]byte) {
	switch {
	case len(args) == 1 || (len(args) == 2 && ciEqual(args[1], "GET")):
		c.push(op{kind: opLevelReport})
	case len(args) == 4 && ciEqual(args[1], "SET"):
		r, err := repro.ParseLevel(string(args[2]))
		if err != nil {
			c.push(op{kind: opError, msg: "ERR " + err.Error()})
			return
		}
		w, err := repro.ParseLevel(string(args[3]))
		if err != nil {
			c.push(op{kind: opError, msg: "ERR " + err.Error()})
			return
		}
		c.ovr, c.ovrR, c.ovrW = true, r, w
		c.push(op{kind: opSimple, msg: "OK"})
	case len(args) == 2 && ciEqual(args[1], "RESET"):
		c.ovr = false
		c.push(op{kind: opSimple, msg: "OK"})
	case len(args) == 2 && ciEqual(args[1], "LAST"):
		c.push(op{kind: opLevelLast})
	default:
		c.pushArity("level")
	}
}

func (c *conn) pushArity(cmd string) {
	c.push(op{kind: opError, msg: "ERR wrong number of arguments for '" + cmd + "' command"})
}

// execute dispatches the batch's store operations in one engine-lock
// acquisition and waits for the last completion. In a single-process
// deployment every operation completes synchronously inside Do (the
// run queue drains before the lock is released); with remote replicas
// the completions arrive from peer frames and the guard timers bound
// the wait.
func (c *conn) execute() {
	pending := int32(0)
	for i := range c.ops {
		switch c.ops[i].kind {
		case opGet:
			if c.ops[i].key != "" {
				pending++
			}
		case opSet, opDel, opMGet, opMSet, opExists:
			pending++
		}
	}
	needEngine := pending > 0
	if !needEngine {
		for i := range c.ops {
			if k := c.ops[i].kind; k == opInfo || k == opLevelReport {
				needEngine = true
				break
			}
		}
	}
	if !needEngine {
		return
	}
	remaining := pending
	var done chan struct{}
	if pending > 0 {
		done = make(chan struct{})
	}
	dec := func() {
		if atomic.AddInt32(&remaining, -1) == 0 {
			close(done)
		}
	}
	cl := c.srv.deploy.Cluster
	c.srv.deploy.Engine.Do(func() {
		for i := range c.ops {
			o := &c.ops[i]
			switch o.kind {
			case opGet:
				if o.key == "" {
					continue // ECHO rides the opGet reply path, pre-resolved
				}
				cb := func(r repro.ReadResult) { o.rr = r; dec() }
				if o.useLvl {
					cl.Read(o.key, o.lvlR, cb)
				} else {
					c.srv.sess.Read(o.key, cb)
				}
			case opSet:
				cb := func(r repro.WriteResult) { o.wr = r; dec() }
				if o.useLvl {
					cl.Write(o.key, o.val, o.lvlW, cb)
				} else {
					c.srv.sess.Write(o.key, o.val, cb)
				}
			case opDel, opMSet:
				cb := func(rs []repro.WriteResult) { o.wrs = rs; dec() }
				if o.useLvl {
					cl.WriteBatch(o.puts, o.lvlW, cb)
				} else {
					c.srv.sess.BatchWrite(o.puts, cb)
				}
			case opMGet, opExists:
				cb := func(rs []repro.ReadResult) { o.rrs = rs; dec() }
				if o.useLvl {
					cl.ReadBatch(o.keys, o.lvlR, cb)
				} else {
					c.srv.sess.BatchRead(o.keys, cb)
				}
			case opInfo:
				o.val = c.srv.renderInfo(o.val[:0])
			case opLevelReport:
				r, w := c.effectiveLevels()
				o.key, o.msg = r.String(), w.String()
			}
		}
	})
	if pending > 0 {
		<-done
	}
}

// effectiveLevels reports the levels the next session-level operation
// would use: the connection override, else the controller's current
// decision, else the server's static levels. Runs under the engine
// lock.
func (c *conn) effectiveLevels() (repro.Level, repro.Level) {
	if c.ovr {
		return c.ovrR, c.ovrW
	}
	if ctl := c.srv.ctl; ctl != nil {
		d := ctl.Current()
		return d.ReadLevel, d.WriteLevel
	}
	return c.srv.defR, c.srv.defW
}

// reply renders the batch's replies in command order.
func (c *conn) reply(w *wire.RESPWriter) {
	for i := range c.ops {
		o := &c.ops[i]
		switch o.kind {
		case opGet:
			if o.key != "" {
				c.lastRead, c.haveLast = o.rr, true
			}
			switch {
			case o.rr.Err != nil:
				w.Error(respError(o.rr.Err))
			case !o.rr.Exists:
				w.Null()
			default:
				w.Bulk(o.rr.Value)
			}
		case opSet:
			if o.wr.Err != nil {
				w.Error(respError(o.wr.Err))
			} else {
				w.SimpleString("OK")
			}
		case opDel, opMSet:
			acked, err := tallyWrites(o.wrs)
			switch {
			case err != nil && acked == 0:
				w.Error(respError(err))
			case o.kind == opDel:
				w.Int(acked)
			default:
				w.SimpleString("OK")
			}
		case opMGet:
			w.Array(len(o.rrs))
			for _, r := range o.rrs {
				if r.Err != nil || !r.Exists {
					w.Null()
				} else {
					w.Bulk(r.Value)
				}
			}
		case opExists:
			n := int64(0)
			for _, r := range o.rrs {
				if r.Err == nil && r.Exists {
					n++
				}
			}
			w.Int(n)
		case opInfo:
			w.Bulk(o.val)
		case opLevelReport:
			w.Array(2)
			w.BulkString(o.key)
			w.BulkString(o.msg)
		case opLevelLast:
			if !c.haveLast {
				w.Null()
				continue
			}
			w.Array(3)
			w.BulkString(c.lastRead.Level.String())
			w.Int(boolInt(c.lastRead.Stale))
			w.Int(boolInt(c.lastRead.Cached))
		case opSimple:
			w.SimpleString(o.msg)
		case opArray0:
			w.Array(0)
		case opError:
			w.Error(o.msg)
		case opQuit:
			w.SimpleString("OK")
			c.quit = true
		}
	}
}

// renderInfo builds the INFO payload under the engine lock.
func (s *Server) renderInfo(buf []byte) []byte {
	cl := s.deploy.Cluster
	u := cl.Usage()
	buf = append(buf, "# Cluster\r\n"...)
	buf = append(buf, "members:"...)
	for i, id := range cl.Members() {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(id), 10)
	}
	buf = append(buf, "\r\nrf:"...)
	buf = strconv.AppendInt(buf, int64(cl.RF()), 10)
	buf = append(buf, "\r\n\r\n# Levels\r\n"...)
	if s.ctl != nil {
		d := s.ctl.Current()
		buf = append(buf, "adaptive:1\r\nread_level:"...)
		buf = append(buf, d.ReadLevel.String()...)
		buf = append(buf, "\r\nwrite_level:"...)
		buf = append(buf, d.WriteLevel.String()...)
		buf = append(buf, "\r\nreason:"...)
		buf = append(buf, d.Reason...)
	} else {
		buf = append(buf, "adaptive:0\r\nread_level:"...)
		buf = append(buf, s.defR.String()...)
		buf = append(buf, "\r\nwrite_level:"...)
		buf = append(buf, s.defW.String()...)
	}
	buf = append(buf, "\r\nstale_rate:"...)
	buf = strconv.AppendFloat(buf, cl.Oracle().StaleRate(), 'f', 4, 64)
	buf = append(buf, "\r\n\r\n# Usage\r\n"...)
	buf = appendMeter(buf, "coord_ops", u.CoordOps)
	buf = appendMeter(buf, "replica_reads", u.ReplicaReads)
	buf = appendMeter(buf, "replica_writes", u.ReplicaWrites)
	buf = appendMeter(buf, "read_repairs", u.ReadRepairs)
	buf = appendMeter(buf, "cache_hits", u.CacheHits)
	buf = appendMeter(buf, "cache_misses", u.CacheMisses)
	buf = append(buf, "stored_bytes:"...)
	buf = strconv.AppendInt(buf, u.StoredBytes, 10)
	buf = append(buf, "\r\n"...)
	if hot := cl.HotKeys(); len(hot) > 0 {
		buf = append(buf, "hot_keys:"...)
		for i, k := range hot {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, k...)
		}
		buf = append(buf, "\r\n"...)
	}
	return buf
}

func appendMeter(buf []byte, name string, v uint64) []byte {
	buf = append(buf, name...)
	buf = append(buf, ':')
	buf = strconv.AppendUint(buf, v, 10)
	return append(buf, '\r', '\n')
}

// respError renders a store error as a RESP error message.
func respError(err error) string { return "ERR " + err.Error() }

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func tallyWrites(rs []repro.WriteResult) (int64, error) {
	var acked int64
	var firstErr error
	for _, r := range rs {
		if r.Err == nil {
			acked++
		} else if firstErr == nil {
			firstErr = r.Err
		}
	}
	return acked, firstErr
}

func delOps(keys [][]byte) []repro.PutOp {
	ops := make([]repro.PutOp, 0, len(keys))
	for _, k := range keys {
		ops = append(ops, repro.PutOp{Key: string(k), Delete: true})
	}
	return ops
}

func copyKeys(args [][]byte) []string {
	keys := make([]string, 0, len(args))
	for _, a := range args {
		keys = append(keys, string(a))
	}
	return keys
}

// ciEqual reports ASCII case-insensitive equality of b against the
// upper-case reference s, without allocating.
func ciEqual(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}
