package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/wire"
)

// respConn is a minimal test-side RESP2 client over one connection.
type respConn struct {
	t *testing.T
	c net.Conn
	w *wire.RESPWriter
	r *bufio.Reader
}

func dialServer(t *testing.T, addr string) *respConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &respConn{t: t, c: c, w: wire.NewRESPWriter(c), r: bufio.NewReader(c)}
}

func (rc *respConn) send(args ...string) {
	rc.t.Helper()
	rc.w.Array(len(args))
	for _, a := range args {
		rc.w.BulkString(a)
	}
	if err := rc.w.Flush(); err != nil {
		rc.t.Fatal(err)
	}
}

// reply reads one reply rendered as a flat string: simple strings and
// bulks verbatim, ":"+n for integers, "(nil)" for nulls, "-"+msg for
// errors, arrays as comma-joined elements in brackets.
func (rc *respConn) reply() string {
	rc.t.Helper()
	s, err := readTestReply(rc.r)
	if err != nil {
		rc.t.Fatal(err)
	}
	return s
}

func readTestReply(r *bufio.Reader) (string, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return "", err
	}
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSuffix(line, "\r\n")
	switch typ {
	case '+':
		return line, nil
	case '-':
		return "-" + line, nil
	case ':':
		return ":" + line, nil
	case '$':
		n, _ := strconv.Atoi(line)
		if n < 0 {
			return "(nil)", nil
		}
		buf := make([]byte, n+2)
		for got := 0; got < len(buf); {
			m, err := r.Read(buf[got:])
			if err != nil {
				return "", err
			}
			got += m
		}
		return string(buf[:n]), nil
	case '*':
		n, _ := strconv.Atoi(line)
		if n < 0 {
			return "(nil)", nil
		}
		parts := make([]string, n)
		for i := range parts {
			p, err := readTestReply(r)
			if err != nil {
				return "", err
			}
			parts[i] = p
		}
		return "[" + strings.Join(parts, ",") + "]", nil
	}
	return "", fmt.Errorf("bad reply type %q", typ)
}

// newTestServer builds a single-process serving deployment with a RESP
// front end on an ephemeral port.
func newTestServer(t *testing.T) (*repro.Live, *Server) {
	t.Helper()
	topo := repro.SingleDC(3)
	cfg := repro.ServingDefaults(topo)
	deploy, err := repro.NewServing(topo, cfg, repro.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { deploy.Engine.Close() })
	srv := New(deploy, deploy.StaticSession(repro.Quorum, repro.Quorum), repro.Quorum, repro.Quorum)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return deploy, srv
}

// TestClientRESPParity drives the same operation script through the
// in-process Client API and through the RESP front end (on identical
// twin deployments) and requires identical values, existence flags and
// error surfaces from both paths.
func TestClientRESPParity(t *testing.T) {
	mkDeploy := func() *repro.Live {
		topo := repro.SingleDC(3)
		d, err := repro.NewServing(topo, repro.ServingDefaults(topo), repro.ServeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Engine.Close() })
		return d
	}

	// Path A: unified Client API, in process.
	da := mkDeploy()
	cli := da.StaticClient(repro.Quorum, repro.Quorum)
	ctx := context.Background()

	// Path B: loopback RESP through the server.
	db := mkDeploy()
	srv := New(db, db.StaticSession(repro.Quorum, repro.Quorum), repro.Quorum, repro.Quorum)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	rc := dialServer(t, srv.Addr())

	type step struct {
		resp     []string // RESP command
		wantResp string   // expected RESP rendering
		client   func() string
	}
	renderRead := func(r repro.ReadResult) string {
		switch {
		case r.Err != nil:
			return "-ERR " + r.Err.Error()
		case !r.Exists:
			return "(nil)"
		default:
			return string(r.Value)
		}
	}
	renderWrite := func(r repro.WriteResult) string {
		if r.Err != nil {
			return "-ERR " + r.Err.Error()
		}
		return "OK"
	}
	steps := []step{
		{[]string{"GET", "missing"}, "(nil)", func() string { return renderRead(cli.Get(ctx, "missing")) }},
		{[]string{"SET", "k1", "v1"}, "OK", func() string { return renderWrite(cli.Put(ctx, "k1", []byte("v1"))) }},
		{[]string{"GET", "k1"}, "v1", func() string { return renderRead(cli.Get(ctx, "k1")) }},
		{[]string{"SET", "k1", "v2"}, "OK", func() string { return renderWrite(cli.Put(ctx, "k1", []byte("v2"))) }},
		{[]string{"GET", "k1"}, "v2", func() string { return renderRead(cli.Get(ctx, "k1")) }},
		{[]string{"MGET", "k1", "nope"}, "[v2,(nil)]", func() string {
			rs := cli.BatchGet(ctx, []string{"k1", "nope"})
			parts := make([]string, len(rs))
			for i, r := range rs {
				parts[i] = renderRead(r)
			}
			return "[" + strings.Join(parts, ",") + "]"
		}},
		{[]string{"DEL", "k1"}, ":1", func() string {
			r := cli.Delete(ctx, "k1")
			if r.Err != nil {
				return "-ERR " + r.Err.Error()
			}
			return ":1"
		}},
		{[]string{"GET", "k1"}, "(nil)", func() string { return renderRead(cli.Get(ctx, "k1")) }},
	}
	for i, s := range steps {
		rc.send(s.resp...)
		viaRESP := rc.reply()
		viaClient := s.client()
		if viaRESP != s.wantResp {
			t.Fatalf("step %d %v: RESP path returned %q, want %q", i, s.resp, viaRESP, s.wantResp)
		}
		if viaClient != s.wantResp {
			t.Fatalf("step %d %v: Client path returned %q, want %q", i, s.resp, viaClient, s.wantResp)
		}
	}

	// Both deployments served the same traffic: usage must agree too.
	var ua, ub uint64
	da.Engine.Do(func() { ua = da.Cluster.Usage().CoordOps })
	db.Engine.Do(func() { ub = db.Cluster.Usage().CoordOps })
	if ua != ub {
		t.Fatalf("coordinated ops diverged: client path %d, RESP path %d", ua, ub)
	}
}

func TestPipelinedBatch(t *testing.T) {
	_, srv := newTestServer(t)
	rc := dialServer(t, srv.Addr())

	// Write a whole pipeline in one flush, then read every reply.
	n := 50
	for i := 0; i < n; i++ {
		rc.w.Array(3)
		rc.w.BulkString("SET")
		rc.w.BulkString("pk" + strconv.Itoa(i))
		rc.w.BulkString("pv" + strconv.Itoa(i))
	}
	for i := 0; i < n; i++ {
		rc.w.Array(2)
		rc.w.BulkString("GET")
		rc.w.BulkString("pk" + strconv.Itoa(i))
	}
	if err := rc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := rc.reply(); got != "OK" {
			t.Fatalf("SET %d: %q", i, got)
		}
	}
	for i := 0; i < n; i++ {
		if got, want := rc.reply(), "pv"+strconv.Itoa(i); got != want {
			t.Fatalf("GET %d: %q, want %q", i, got, want)
		}
	}
}

func TestCommandSurface(t *testing.T) {
	_, srv := newTestServer(t)
	rc := dialServer(t, srv.Addr())

	cases := []struct {
		cmd  []string
		want string
	}{
		{[]string{"PING"}, "PONG"},
		{[]string{"PING", "hello"}, "hello"},
		{[]string{"ECHO", "echoed"}, "echoed"},
		{[]string{"MSET", "a", "1", "b", "2"}, "OK"},
		{[]string{"MGET", "a", "b"}, "[1,2]"},
		{[]string{"EXISTS", "a", "b", "nope"}, ":2"},
		{[]string{"DEL", "a", "b"}, ":2"},
		{[]string{"EXISTS", "a"}, ":0"},
		{[]string{"MSET", "a", "1", "b"}, "-ERR wrong number of arguments for 'mset' command"},
		{[]string{"GET"}, "-ERR wrong number of arguments for 'get' command"},
		{[]string{"NOSUCH", "x"}, "-ERR unknown command 'NOSUCH'"},
		{[]string{"COMMAND"}, "[]"},
		{[]string{"SELECT", "0"}, "OK"},
		{[]string{"CONFIG", "GET", "save"}, "[]"},
	}
	for _, tc := range cases {
		rc.send(tc.cmd...)
		if got := rc.reply(); got != tc.want {
			t.Fatalf("%v: got %q, want %q", tc.cmd, got, tc.want)
		}
	}
}

func TestLevelExtension(t *testing.T) {
	_, srv := newTestServer(t)
	rc := dialServer(t, srv.Addr())

	rc.send("LEVEL")
	if got := rc.reply(); got != "[QUORUM,QUORUM]" {
		t.Fatalf("LEVEL: %q", got)
	}
	rc.send("LEVEL", "SET", "ONE", "ALL")
	if got := rc.reply(); got != "OK" {
		t.Fatalf("LEVEL SET: %q", got)
	}
	rc.send("LEVEL")
	if got := rc.reply(); got != "[ONE,ALL]" {
		t.Fatalf("LEVEL after SET: %q", got)
	}
	// Ops now run at the override; LEVEL LAST reports the read's level.
	rc.send("SET", "lk", "lv")
	if got := rc.reply(); got != "OK" {
		t.Fatalf("SET: %q", got)
	}
	rc.send("GET", "lk")
	if got := rc.reply(); got != "lv" {
		t.Fatalf("GET: %q", got)
	}
	rc.send("LEVEL", "LAST")
	if got := rc.reply(); got != "[ONE,:0,:0]" {
		t.Fatalf("LEVEL LAST: %q", got)
	}
	rc.send("LEVEL", "RESET")
	if got := rc.reply(); got != "OK" {
		t.Fatalf("LEVEL RESET: %q", got)
	}
	rc.send("LEVEL")
	if got := rc.reply(); got != "[QUORUM,QUORUM]" {
		t.Fatalf("LEVEL after RESET: %q", got)
	}
	rc.send("LEVEL", "SET", "BOGUS", "ONE")
	if got := rc.reply(); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("LEVEL SET bogus: %q", got)
	}

	// The override is per connection: a second connection still sees the
	// defaults.
	rc2 := dialServer(t, srv.Addr())
	rc.send("LEVEL", "SET", "ONE", "ONE")
	rc.reply()
	rc2.send("LEVEL")
	if got := rc2.reply(); got != "[QUORUM,QUORUM]" {
		t.Fatalf("second connection LEVEL: %q", got)
	}
}

func TestInfo(t *testing.T) {
	_, srv := newTestServer(t)
	rc := dialServer(t, srv.Addr())
	rc.send("SET", "ik", "iv")
	rc.reply()
	rc.send("INFO")
	info := rc.reply()
	for _, want := range []string{"members:0,1,2", "rf:3", "read_level:QUORUM", "coord_ops:"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
}

func TestQuitAndClose(t *testing.T) {
	_, srv := newTestServer(t)
	rc := dialServer(t, srv.Addr())
	rc.send("QUIT")
	if got := rc.reply(); got != "OK" {
		t.Fatalf("QUIT: %q", got)
	}
	if _, err := rc.r.ReadByte(); err == nil {
		t.Fatal("connection still open after QUIT")
	}
	// Close with another connection open: must not hang or leak (the
	// TestMain leak check covers the goroutines).
	rc2 := dialServer(t, srv.Addr())
	rc2.send("SET", "x", "y")
	if got := rc2.reply(); got != "OK" {
		t.Fatalf("SET: %q", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInlineCommands(t *testing.T) {
	_, srv := newTestServer(t)
	rc := dialServer(t, srv.Addr())
	// The telnet form: plain text lines.
	if _, err := rc.c.Write([]byte("SET ink inv\r\nGET ink\r\n")); err != nil {
		t.Fatal(err)
	}
	if got := rc.reply(); got != "OK" {
		t.Fatalf("inline SET: %q", got)
	}
	if got := rc.reply(); got != "inv" {
		t.Fatalf("inline GET: %q", got)
	}
}
