package netsim

import (
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Handler receives messages addressed to a node. Handlers run one at a
// time per transport (the simulation is single-threaded), so node state
// needs no locking.
type Handler func(from NodeID, payload any)

// Transport delivers messages between topology nodes over the
// discrete-event engine, sampling per-class latency laws, applying
// partitions, loss and node failures, and metering traffic for the cost
// model.
type Transport struct {
	eng      *sim.Engine
	topo     *Topology
	rng      *stats.Source
	handlers map[NodeID]Handler
	meter    TrafficMeter

	// Bandwidth in bytes/second per class; zero means unlimited. The
	// transfer time size/bandwidth is added to the sampled latency.
	Bandwidth [4]float64

	lossProb  float64
	down      map[NodeID]bool
	partition map[[2]NodeID]bool
}

// NewTransport wires a transport for topo over eng.
func NewTransport(eng *sim.Engine, topo *Topology) *Transport {
	return &Transport{
		eng:       eng,
		topo:      topo,
		rng:       eng.RNG().Stream("netsim.transport"),
		handlers:  make(map[NodeID]Handler),
		down:      make(map[NodeID]bool),
		partition: make(map[[2]NodeID]bool),
	}
}

// Register installs the message handler for a node (or for ClientID).
func (t *Transport) Register(id NodeID, h Handler) { t.handlers[id] = h }

// Topology returns the topology the transport runs over.
func (t *Transport) Topology() *Topology { return t.topo }

// Meter returns a snapshot of the traffic meter.
func (t *Transport) Meter() TrafficMeter { return t.meter.Snapshot() }

// SetLossProbability makes every non-loopback message independently drop
// with probability p.
func (t *Transport) SetLossProbability(p float64) { t.lossProb = p }

// Fail marks a node down: messages to and from it are dropped until
// Recover. The node's local timers keep firing (its clock is alive, its
// network is not), which models a network-isolated rather than crashed
// machine; crashed machines are modeled at the store layer.
func (t *Transport) Fail(id NodeID) { t.down[id] = true }

// Recover clears the failure of id.
func (t *Transport) Recover(id NodeID) { delete(t.down, id) }

// Down reports whether id is marked failed.
func (t *Transport) Down(id NodeID) bool { return t.down[id] }

// Partition blocks traffic between every pair in a × b (both ways).
func (t *Transport) Partition(a, b []NodeID) {
	for _, x := range a {
		for _, y := range b {
			t.partition[[2]NodeID{x, y}] = true
			t.partition[[2]NodeID{y, x}] = true
		}
	}
}

// Heal removes all partitions.
func (t *Transport) Heal() { t.partition = make(map[[2]NodeID]bool) }

// Send delivers payload from → to after a sampled network delay. size is
// the wire size in bytes, used for metering and serialization delay.
// Messages to unregistered or failed endpoints are counted as dropped.
func (t *Transport) Send(from, to NodeID, payload any, size int) {
	class := t.topo.Class(from, to)
	t.meter.Count(class, size)
	if t.down[from] || t.down[to] || t.partition[[2]NodeID{from, to}] {
		t.meter.Dropped++
		return
	}
	if class != Loopback && t.lossProb > 0 && t.rng.Float64() < t.lossProb {
		t.meter.Dropped++
		return
	}
	delay := t.topo.Latency.Law(class).Sample(t.rng)
	if bw := t.Bandwidth[class]; bw > 0 && size > 0 {
		delay += time.Duration(float64(size) / bw * float64(time.Second))
	}
	t.eng.Schedule(delay, func() {
		// Re-check failure at delivery: a node that died mid-flight
		// does not receive the message.
		if t.down[to] {
			t.meter.Dropped++
			return
		}
		if h, ok := t.handlers[to]; ok {
			h(from, payload)
		} else {
			t.meter.Dropped++
		}
	})
}

// SendLocal schedules a self-message on node id after delay, bypassing
// the network (no metering, no loss). It is the timer primitive node
// logic uses; cancellation is expressed by the receiver ignoring stale
// generations.
func (t *Transport) SendLocal(id NodeID, payload any, delay time.Duration) {
	t.eng.Schedule(delay, func() {
		if h, ok := t.handlers[id]; ok {
			h(id, payload)
		}
	})
}

// Now reports the engine's virtual time.
func (t *Transport) Now() time.Duration { return t.eng.Now() }

// Schedule runs fn after d of virtual time; it lets store-level
// components (failure detector updates, experiment phases) defer work
// without owning the engine.
func (t *Transport) Schedule(d time.Duration, fn func()) { t.eng.Schedule(d, fn) }
