package netsim

import (
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Handler receives messages addressed to a node. Handlers run one at a
// time per transport (the simulation is single-threaded), so node state
// needs no locking.
type Handler func(from NodeID, payload any)

// delivery is one in-flight message parked in the transport's slab
// between Send and its scheduled arrival. Slots are recycled through a
// free list so the steady-state send→deliver cycle allocates nothing.
type delivery struct {
	from, to NodeID
	payload  any
	local    bool // self-message: skip the down re-check at arrival
	nextFree int32
}

const noSlot = int32(-1)

// Transport delivers messages between topology nodes over the
// discrete-event engine, sampling per-class latency laws, applying
// partitions, loss and node failures, and metering traffic for the cost
// model. Handler and failure lookups are dense slices indexed by
// NodeID+1 (ClientID is -1), and the partition/loss checks short-circuit
// when nothing is configured.
type Transport struct {
	eng   *sim.Engine
	topo  *Topology
	rng   *stats.Source
	meter TrafficMeter

	handlers []Handler // indexed by NodeID+1
	down     []bool    // indexed by NodeID+1
	downN    int       // number of nodes marked down

	// Bandwidth in bytes/second per class; zero means unlimited. The
	// transfer time size/bandwidth is added to the sampled latency.
	Bandwidth [4]float64

	lossProb  float64
	partition map[[2]NodeID]bool

	slab      []delivery
	freeHead  int32
	deliverCb func(uint32) // pre-bound e.deliver, allocated once
}

// NewTransport wires a transport for topo over eng.
func NewTransport(eng *sim.Engine, topo *Topology) *Transport {
	t := &Transport{
		eng:      eng,
		topo:     topo,
		rng:      eng.RNG().Stream("netsim.transport"),
		handlers: make([]Handler, topo.N()+1),
		down:     make([]bool, topo.N()+1),
		freeHead: noSlot,
	}
	t.deliverCb = t.deliver
	return t
}

// slot maps a NodeID (ClientID = -1 included) onto its dense index.
func slot(id NodeID) int { return int(id) + 1 }

// Register installs the message handler for a node (or for ClientID).
func (t *Transport) Register(id NodeID, h Handler) {
	for int(id)+1 >= len(t.handlers) {
		t.handlers = append(t.handlers, nil)
		t.down = append(t.down, false)
	}
	t.handlers[slot(id)] = h
}

// Topology returns the topology the transport runs over.
func (t *Transport) Topology() *Topology { return t.topo }

// Meter returns a snapshot of the traffic meter.
func (t *Transport) Meter() TrafficMeter { return t.meter.Snapshot() }

// SetLossProbability makes every non-loopback message independently drop
// with probability p.
func (t *Transport) SetLossProbability(p float64) { t.lossProb = p }

// Fail marks a node down: messages to and from it are dropped until
// Recover. The node's local timers keep firing (its clock is alive, its
// network is not), which models a network-isolated rather than crashed
// machine; crashed machines are modeled at the store layer.
func (t *Transport) Fail(id NodeID) {
	if !t.down[slot(id)] {
		t.down[slot(id)] = true
		t.downN++
	}
}

// Recover clears the failure of id.
func (t *Transport) Recover(id NodeID) {
	if t.down[slot(id)] {
		t.down[slot(id)] = false
		t.downN--
	}
}

// Down reports whether id is marked failed.
func (t *Transport) Down(id NodeID) bool { return t.down[slot(id)] }

// Partition blocks traffic between every pair in a × b (both ways).
func (t *Transport) Partition(a, b []NodeID) {
	if t.partition == nil {
		t.partition = make(map[[2]NodeID]bool)
	}
	for _, x := range a {
		for _, y := range b {
			t.partition[[2]NodeID{x, y}] = true
			t.partition[[2]NodeID{y, x}] = true
		}
	}
}

// Heal removes all partitions.
func (t *Transport) Heal() { t.partition = nil }

// park places one in-flight message into the slab and returns its slot.
func (t *Transport) park(from, to NodeID, payload any, local bool) uint32 {
	var s int32
	if t.freeHead != noSlot {
		s = t.freeHead
		t.freeHead = t.slab[s].nextFree
	} else {
		t.slab = append(t.slab, delivery{})
		s = int32(len(t.slab) - 1)
	}
	d := &t.slab[s]
	d.from, d.to, d.payload, d.local = from, to, payload, local
	return uint32(s)
}

// deliver hands a parked message to its destination handler; it is the
// engine callback of every scheduled delivery.
func (t *Transport) deliver(s uint32) {
	d := &t.slab[s]
	from, to, payload, local := d.from, d.to, d.payload, d.local
	d.payload = nil
	d.nextFree = t.freeHead
	t.freeHead = int32(s)

	if !local && t.downN > 0 && t.down[slot(to)] {
		// Re-check failure at delivery: a node that died mid-flight does
		// not receive the message.
		t.meter.Dropped++
		return
	}
	if h := t.handlers[slot(to)]; h != nil {
		h(from, payload)
	} else if !local {
		t.meter.Dropped++
	}
}

// Send delivers payload from → to after a sampled network delay. size is
// the wire size in bytes, used for metering and serialization delay.
// Messages to unregistered or failed endpoints are counted as dropped.
func (t *Transport) Send(from, to NodeID, payload any, size int) {
	class := t.topo.Class(from, to)
	t.meter.Count(class, size)
	if t.downN > 0 && (t.down[slot(from)] || t.down[slot(to)]) {
		t.meter.Dropped++
		return
	}
	if len(t.partition) > 0 && t.partition[[2]NodeID{from, to}] {
		t.meter.Dropped++
		return
	}
	if class != Loopback && t.lossProb > 0 && t.rng.Float64() < t.lossProb {
		t.meter.Dropped++
		return
	}
	delay := t.topo.Latency.Law(class).Sample(t.rng)
	if bw := t.Bandwidth[class]; bw > 0 && size > 0 {
		delay += time.Duration(float64(size) / bw * float64(time.Second))
	}
	t.eng.ScheduleCall(delay, t.deliverCb, t.park(from, to, payload, false))
}

// SendLocal schedules a self-message on node id after delay, bypassing
// the network (no metering, no loss). It is the timer primitive node
// logic uses; cancellation is expressed by the receiver ignoring stale
// generations.
func (t *Transport) SendLocal(id NodeID, payload any, delay time.Duration) {
	t.eng.ScheduleCall(delay, t.deliverCb, t.park(id, id, payload, true))
}

// Now reports the engine's virtual time.
func (t *Transport) Now() time.Duration { return t.eng.Now() }

// Schedule runs fn after d of virtual time; it lets store-level
// components (failure detector updates, experiment phases) defer work
// without owning the engine.
func (t *Transport) Schedule(d time.Duration, fn func()) { t.eng.Schedule(d, fn) }

// ScheduleStop schedules fn after d and returns a stop function that
// cancels it. Guard timers that almost always get canceled (client-side
// operation timeouts) use it so the event queue is not dominated by dead
// timers waiting to fire as no-ops.
func (t *Transport) ScheduleStop(d time.Duration, fn func()) func() {
	tm := t.eng.Schedule(d, fn)
	return func() { tm.Stop() }
}

// ScheduleStopCall is the allocation-free form of ScheduleStop: it arms
// a pre-bound callback with a slab argument and hands back the engine's
// value-typed timer instead of wrapping the cancel in a closure. The
// client hot path (kv.Cluster) arms one guard per operation through it.
func (t *Transport) ScheduleStopCall(d time.Duration, cb func(uint32), arg uint32) sim.Timer {
	return t.eng.ScheduleCall(d, cb, arg)
}
