package netsim

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkTransportSend measures the full send→deliver cycle between two
// registered nodes with no partitions, loss or failures configured — the
// hot path every simulated message takes. The payload is preallocated so
// the number reported is the transport's own overhead; it must not
// allocate per message.
func BenchmarkTransportSend(b *testing.B) {
	eng := sim.New(1)
	topo := SingleDC(8)
	tr := NewTransport(eng, topo)
	sink := func(from NodeID, payload any) {}
	for _, id := range topo.Nodes() {
		tr.Register(id, sink)
	}
	payload := &struct{ a, b uint64 }{1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(0, 1, payload, 128)
		eng.Step()
	}
}

// BenchmarkTransportSendLocal measures the self-message (timer) path.
func BenchmarkTransportSendLocal(b *testing.B) {
	eng := sim.New(1)
	topo := SingleDC(4)
	tr := NewTransport(eng, topo)
	sink := func(from NodeID, payload any) {}
	for _, id := range topo.Nodes() {
		tr.Register(id, sink)
	}
	payload := &struct{ x uint64 }{7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SendLocal(2, payload, 1)
		eng.Step()
	}
}
