package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func twoDCTopo() *Topology {
	t := NewTopology()
	t.AddDC("dc1", "r1", 2)
	t.AddDC("dc2", "r1", 2)
	t.AddDC("dc3", "r2", 2)
	return t
}

func TestLinkClassification(t *testing.T) {
	topo := twoDCTopo()
	cases := []struct {
		from, to NodeID
		want     LinkClass
	}{
		{0, 0, Loopback},
		{0, 1, IntraDC},
		{0, 2, InterDC},
		{0, 4, InterRegion},
		{ClientID, 3, IntraDC},
		{3, ClientID, IntraDC},
	}
	for _, c := range cases {
		if got := topo.Class(c.from, c.to); got != c.want {
			t.Errorf("Class(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestTopologyAccessors(t *testing.T) {
	topo := twoDCTopo()
	if topo.N() != 6 {
		t.Errorf("N = %d", topo.N())
	}
	if got := len(topo.NodesInDC("dc2")); got != 2 {
		t.Errorf("dc2 nodes = %d", got)
	}
	if topo.DCOf(0) != "dc1" || topo.DCOf(ClientID) != "" {
		t.Error("DCOf wrong")
	}
	if len(topo.DCs()) != 3 {
		t.Errorf("DCs = %v", topo.DCs())
	}
	if topo.Node(5).Region != "r2" {
		t.Error("node region wrong")
	}
}

func TestMeanLatencyOrdering(t *testing.T) {
	topo := twoDCTopo()
	intra := topo.MeanLatency(0, 1)
	inter := topo.MeanLatency(0, 2)
	wan := topo.MeanLatency(0, 4)
	if !(intra < inter && inter < wan) {
		t.Errorf("latency ordering broken: %v %v %v", intra, inter, wan)
	}
}

func TestTransportDelivery(t *testing.T) {
	eng := sim.New(1)
	topo := twoDCTopo()
	tr := NewTransport(eng, topo)
	var gotFrom NodeID
	var gotPayload any
	var at time.Duration
	tr.Register(1, func(from NodeID, payload any) {
		gotFrom, gotPayload, at = from, payload, eng.Now()
	})
	tr.Send(0, 1, "hi", 100)
	eng.Run()
	if gotFrom != 0 || gotPayload != "hi" {
		t.Fatalf("delivery wrong: from=%v payload=%v", gotFrom, gotPayload)
	}
	if at <= 0 {
		t.Error("delivery had no latency")
	}
	m := tr.Meter()
	if m.Messages[IntraDC] != 1 || m.Bytes[IntraDC] != 100 {
		t.Errorf("meter = %+v", m)
	}
}

func TestTransportDropsToDownNode(t *testing.T) {
	eng := sim.New(1)
	tr := NewTransport(eng, twoDCTopo())
	delivered := false
	tr.Register(1, func(NodeID, any) { delivered = true })
	tr.Fail(1)
	tr.Send(0, 1, "x", 10)
	eng.Run()
	if delivered {
		t.Error("message delivered to failed node")
	}
	if tr.Meter().Dropped != 1 {
		t.Errorf("dropped = %d", tr.Meter().Dropped)
	}
	tr.Recover(1)
	tr.Send(0, 1, "y", 10)
	eng.Run()
	if !delivered {
		t.Error("message not delivered after recovery")
	}
}

func TestTransportFailsMidFlight(t *testing.T) {
	eng := sim.New(1)
	tr := NewTransport(eng, twoDCTopo())
	delivered := false
	tr.Register(4, func(NodeID, any) { delivered = true })
	tr.Send(0, 4, "x", 10) // inter-region: tens of ms in flight
	eng.Schedule(time.Millisecond, func() { tr.Fail(4) })
	eng.Run()
	if delivered {
		t.Error("node that died mid-flight still received the message")
	}
}

func TestTransportPartitionAndHeal(t *testing.T) {
	eng := sim.New(1)
	tr := NewTransport(eng, twoDCTopo())
	count := 0
	tr.Register(2, func(NodeID, any) { count++ })
	tr.Partition([]NodeID{0, 1}, []NodeID{2, 3})
	tr.Send(0, 2, "x", 10)
	eng.Run()
	if count != 0 {
		t.Error("partitioned message delivered")
	}
	tr.Heal()
	tr.Send(0, 2, "y", 10)
	eng.Run()
	if count != 1 {
		t.Error("message not delivered after heal")
	}
}

func TestTransportLoss(t *testing.T) {
	eng := sim.New(1)
	tr := NewTransport(eng, twoDCTopo())
	got := 0
	tr.Register(1, func(NodeID, any) { got++ })
	tr.SetLossProbability(0.5)
	for i := 0; i < 1000; i++ {
		tr.Send(0, 1, i, 10)
	}
	eng.Run()
	if got < 350 || got > 650 {
		t.Errorf("loss rate off: delivered %d/1000 at p=0.5", got)
	}
}

func TestSendLocalBypassesNetwork(t *testing.T) {
	eng := sim.New(1)
	tr := NewTransport(eng, twoDCTopo())
	fired := time.Duration(-1)
	tr.Register(0, func(from NodeID, payload any) {
		if from != 0 {
			t.Errorf("self-message from %v", from)
		}
		fired = eng.Now()
	})
	tr.Fail(0) // even a failed node's local timers run
	tr.SendLocal(0, "tick", 7*time.Millisecond)
	eng.Run()
	if fired != 7*time.Millisecond {
		t.Errorf("timer at %v, want 7ms", fired)
	}
	m := tr.Meter()
	if m.TotalBytes() != 0 {
		t.Error("SendLocal metered as traffic")
	}
}

func TestBandwidthAddsSerializationDelay(t *testing.T) {
	eng := sim.New(1)
	topo := twoDCTopo()
	topo.Latency.IntraDC = Constant(time.Millisecond)
	tr := NewTransport(eng, topo)
	tr.Bandwidth[IntraDC] = 1 << 20 // 1 MiB/s
	var at time.Duration
	tr.Register(1, func(NodeID, any) { at = eng.Now() })
	tr.Send(0, 1, "big", 1<<20)
	eng.Run()
	want := time.Millisecond + time.Second
	if at < want-time.Millisecond || at > want+time.Millisecond {
		t.Errorf("delivery at %v, want ≈%v", at, want)
	}
}

func TestMeterSub(t *testing.T) {
	var a, b TrafficMeter
	a.Count(IntraDC, 100)
	a.Count(InterDC, 50)
	b = a.Snapshot()
	a.Count(InterDC, 25)
	d := a.Sub(b)
	if d.Bytes[InterDC] != 25 || d.Bytes[IntraDC] != 0 {
		t.Errorf("sub = %+v", d)
	}
	dc, region := a.BilledBytes()
	if dc != 75 || region != 0 {
		t.Errorf("billed = %d,%d", dc, region)
	}
}

func TestPresetsShape(t *testing.T) {
	ec2 := EC2TwoAZ(18)
	if ec2.N() != 18 || len(ec2.DCs()) != 2 {
		t.Errorf("EC2 preset: %d nodes, %d DCs", ec2.N(), len(ec2.DCs()))
	}
	g5k := G5KTwoSites(84)
	if g5k.N() != 84 || len(g5k.DCs()) != 2 {
		t.Errorf("G5K preset: %d nodes, %d DCs", g5k.N(), len(g5k.DCs()))
	}
	// G5K inter-site latency must dominate EC2 inter-AZ latency.
	if g5k.MeanLatency(0, NodeID(g5k.N()-1)) <= ec2.MeanLatency(0, NodeID(ec2.N()-1)) {
		t.Error("G5K inter-site should exceed EC2 inter-AZ latency")
	}
	geo := GeoRegions(3, "us", "eu")
	if geo.N() != 6 || geo.Class(0, 3) != InterRegion {
		t.Error("geo preset wrong")
	}
	single := SingleDC(4)
	if single.Class(0, 3) != IntraDC {
		t.Error("single-DC preset wrong")
	}
}

func TestLinkClassString(t *testing.T) {
	if Loopback.String() != "loopback" || InterRegion.String() != "inter-region" {
		t.Error("LinkClass names wrong")
	}
}
