package netsim

// TrafficMeter accumulates message and byte counts per link class; the
// cost model prices InterDC and InterRegion bytes. The zero value is
// ready to use.
type TrafficMeter struct {
	Messages [4]uint64 // indexed by LinkClass
	Bytes    [4]uint64
	Dropped  uint64
}

// Count records one message of size bytes on a link of class c.
func (m *TrafficMeter) Count(c LinkClass, size int) {
	m.Messages[c]++
	m.Bytes[c] += uint64(size)
}

// TotalBytes reports bytes carried across all classes.
func (m *TrafficMeter) TotalBytes() uint64 {
	var sum uint64
	for _, b := range m.Bytes {
		sum += b
	}
	return sum
}

// BilledBytes reports the bytes that cloud providers charge for:
// inter-DC (inter-AZ) and inter-region traffic.
func (m *TrafficMeter) BilledBytes() (interDC, interRegion uint64) {
	return m.Bytes[InterDC], m.Bytes[InterRegion]
}

// Reset zeroes the meter.
func (m *TrafficMeter) Reset() { *m = TrafficMeter{} }

// Snapshot returns a copy of the meter.
func (m *TrafficMeter) Snapshot() TrafficMeter { return *m }

// Sub returns the difference m − earlier, for per-interval accounting.
func (m *TrafficMeter) Sub(earlier TrafficMeter) TrafficMeter {
	var d TrafficMeter
	for i := range m.Messages {
		d.Messages[i] = m.Messages[i] - earlier.Messages[i]
		d.Bytes[i] = m.Bytes[i] - earlier.Bytes[i]
	}
	d.Dropped = m.Dropped - earlier.Dropped
	return d
}
