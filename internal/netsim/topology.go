// Package netsim models the cluster substrate the replicated store runs
// on: nodes grouped into datacenters and regions, link latency laws per
// link class, a message transport with partitions, loss and failures, and
// a traffic meter that feeds the cost model.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// NodeID identifies a node within a topology; ids are dense from 0.
type NodeID int

// ClientID is the pseudo-node id used as the source of client traffic
// entering the cluster from outside.
const ClientID NodeID = -1

// NodeInfo describes one machine.
type NodeInfo struct {
	ID     NodeID
	Name   string
	DC     string // datacenter / availability zone
	Region string // geographic region or site group
}

// LinkClass classifies a (from, to) pair by locality; latency and price
// depend on the class.
type LinkClass int

// Link classes from most to least local.
const (
	Loopback    LinkClass = iota // same node
	IntraDC                      // same datacenter
	InterDC                      // different DC, same region (inter-AZ)
	InterRegion                  // different region (WAN)
)

// String returns the class name.
func (c LinkClass) String() string {
	switch c {
	case Loopback:
		return "loopback"
	case IntraDC:
		return "intra-dc"
	case InterDC:
		return "inter-dc"
	case InterRegion:
		return "inter-region"
	}
	return fmt.Sprintf("LinkClass(%d)", int(c))
}

// Law is a sampleable latency distribution.
type Law interface {
	Sample(src *stats.Source) time.Duration
	Mean() time.Duration
}

// Constant is a degenerate Law that always returns the same duration.
type Constant time.Duration

// Sample implements Law.
func (c Constant) Sample(*stats.Source) time.Duration { return time.Duration(c) }

// Mean implements Law.
func (c Constant) Mean() time.Duration { return time.Duration(c) }

// LatencyModel gives one latency law per link class.
type LatencyModel struct {
	Loopback    Law
	IntraDC     Law
	InterDC     Law
	InterRegion Law
}

// Law returns the law for a class.
func (m LatencyModel) Law(c LinkClass) Law {
	switch c {
	case Loopback:
		return m.Loopback
	case IntraDC:
		return m.IntraDC
	case InterDC:
		return m.InterDC
	default:
		return m.InterRegion
	}
}

// DefaultLatencies is a cloud-flavoured model: sub-millisecond LAN,
// single-digit-millisecond inter-AZ, tens-of-milliseconds WAN, with
// lognormal tails.
func DefaultLatencies() LatencyModel {
	return LatencyModel{
		Loopback:    Constant(50 * time.Microsecond),
		IntraDC:     stats.NewLogNormal(500*time.Microsecond, 0.30),
		InterDC:     stats.NewLogNormal(2*time.Millisecond, 0.35),
		InterRegion: stats.NewLogNormal(40*time.Millisecond, 0.25),
	}
}

// Topology is a static description of the cluster machines and the
// latency model between them.
type Topology struct {
	nodes   []NodeInfo
	byDC    map[string][]NodeID
	dcOrder []string // DC names in first-seen order
	Latency LatencyModel
}

// NewTopology returns an empty topology with the default latency model.
func NewTopology() *Topology {
	return &Topology{
		byDC:    make(map[string][]NodeID),
		Latency: DefaultLatencies(),
	}
}

// AddNode appends a node in the given datacenter and region and returns
// its id.
func (t *Topology) AddNode(name, dc, region string) NodeID {
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, NodeInfo{ID: id, Name: name, DC: dc, Region: region})
	if _, seen := t.byDC[dc]; !seen {
		t.dcOrder = append(t.dcOrder, dc)
	}
	t.byDC[dc] = append(t.byDC[dc], id)
	return id
}

// AddDC adds n nodes named prefix-0..n-1 in one datacenter.
func (t *Topology) AddDC(dc, region string, n int) []NodeID {
	ids := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, t.AddNode(fmt.Sprintf("%s-%d", dc, i), dc, region))
	}
	return ids
}

// N reports the number of nodes.
func (t *Topology) N() int { return len(t.nodes) }

// Node returns the description of id.
func (t *Topology) Node(id NodeID) NodeInfo { return t.nodes[id] }

// Nodes returns all node ids in id order.
func (t *Topology) Nodes() []NodeID {
	ids := make([]NodeID, len(t.nodes))
	for i := range t.nodes {
		ids[i] = NodeID(i)
	}
	return ids
}

// DCs returns the datacenter names in first-seen order. (This used to
// iterate a region-keyed map, so the order was deterministic only for
// single-region topologies; repolint's determinism analyzer caught it.)
func (t *Topology) DCs() []string {
	out := make([]string, len(t.dcOrder))
	copy(out, t.dcOrder)
	return out
}

// NodesInDC returns the ids in a datacenter.
func (t *Topology) NodesInDC(dc string) []NodeID { return t.byDC[dc] }

// DCOf returns the datacenter of a node; clients live outside any DC.
func (t *Topology) DCOf(id NodeID) string {
	if id == ClientID {
		return ""
	}
	return t.nodes[id].DC
}

// Class classifies the link between two endpoints. Client traffic is
// classified relative to the destination's locality as IntraDC: the
// paper's clients (YCSB machines) ran inside the platform next to the
// storage nodes.
func (t *Topology) Class(from, to NodeID) LinkClass {
	if from == to {
		return Loopback
	}
	if from == ClientID || to == ClientID {
		return IntraDC
	}
	a, b := t.nodes[from], t.nodes[to]
	switch {
	case a.DC == b.DC:
		return IntraDC
	case a.Region == b.Region:
		return InterDC
	default:
		return InterRegion
	}
}

// MeanLatency reports the mean one-way latency between two endpoints
// under the topology's model; tuners may use it as prior knowledge of the
// deployment, exactly as an operator would configure static distances.
func (t *Topology) MeanLatency(from, to NodeID) time.Duration {
	return t.Latency.Law(t.Class(from, to)).Mean()
}
