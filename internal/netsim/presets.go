package netsim

import (
	"time"

	"repro/internal/stats"
)

// Topology presets mirroring the paper's two evaluation platforms.
//
// The latency laws encode the platforms' characters rather than exact 2013
// measurements: EC2 is a virtualized public cloud — moderate inter-AZ
// medians but heavy lognormal tails from multi-tenant jitter — while
// Grid'5000 is bare-metal with thin-tailed LAN inside a site and a
// wide-area link between sites (the paper used clusters in the east and
// the south of France).

// EC2TwoAZ builds n VMs split across two availability zones of one region
// (us-east-1a / us-east-1b), the layout of the paper's EC2 deployments
// (20 VMs for Harmony, 18 VMs for the cost study).
func EC2TwoAZ(n int) *Topology {
	t := NewTopology()
	t.Latency = LatencyModel{
		Loopback:    Constant(50 * time.Microsecond),
		IntraDC:     stats.NewLogNormal(600*time.Microsecond, 0.60),
		InterDC:     stats.NewLogNormal(1500*time.Microsecond, 0.70),
		InterRegion: stats.NewLogNormal(80*time.Millisecond, 0.40),
	}
	half := n / 2
	t.AddDC("us-east-1a", "us-east-1", half)
	t.AddDC("us-east-1b", "us-east-1", n-half)
	return t
}

// G5KTwoSites builds n bare-metal nodes split across two Grid'5000 sites
// linked by the French national research network (~10 ms one way), the
// layout of the paper's 50-node cost experiments and, with two clusters
// acting as sites, of the 84-node Harmony experiments.
func G5KTwoSites(n int) *Topology {
	t := NewTopology()
	t.Latency = LatencyModel{
		Loopback:    Constant(30 * time.Microsecond),
		IntraDC:     stats.NewLogNormal(250*time.Microsecond, 0.25),
		InterDC:     stats.NewLogNormal(10*time.Millisecond, 0.20),
		InterRegion: stats.NewLogNormal(90*time.Millisecond, 0.25),
	}
	half := n / 2
	t.AddDC("rennes", "france", half)
	t.AddDC("sophia", "france", n-half)
	return t
}

// SingleDC builds n nodes in one datacenter; useful for unit tests and
// LAN-only scenarios.
func SingleDC(n int) *Topology {
	t := NewTopology()
	t.AddDC("dc1", "local", n)
	return t
}

// GeoRegions builds one datacenter of nPer nodes in each named region,
// for geo-replication scenarios beyond the paper's two-site setups.
func GeoRegions(nPer int, regions ...string) *Topology {
	t := NewTopology()
	for _, r := range regions {
		t.AddDC(r+"-a", r, nPer)
	}
	return t
}
