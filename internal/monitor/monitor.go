// Package monitor implements Harmony's monitoring module (paper §III-A):
// it observes the storage system's data-access stream — read and write
// arrival rates, per-replica propagation delays learned from write
// acknowledgements, and the key-popularity profile — and periodically
// produces the Snapshot the adaptive consistency modules consume.
//
// The monitor sees only client-observable signals (request streams and
// coordinator-side acknowledgement timings); the consistency tuners
// never consume the staleness oracle's ground truth. The one exception
// is Snapshot.ObservedStaleRate, which counts the per-result staleness
// verdicts as a stand-in for the client-side staleness probes a real
// deployment would run — it feeds the autoscale controller's constraint
// check, not the tuners' estimators.
package monitor

import (
	"time"

	"repro/internal/kv"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Clock supplies the current time; both engines provide it.
type Clock interface {
	Now() time.Duration
}

// Options tunes the monitor.
type Options struct {
	// Window is the sliding window for rate estimation.
	Window time.Duration
	// Slots subdivides the window.
	Slots int
	// RankAlpha is the EWMA weight of new propagation-delay samples.
	RankAlpha float64
	// TopKeys bounds the heavy-hitter sketches.
	TopKeys int
	// LatencyWindowOps bounds how many recent latency samples feed the
	// histograms before they rotate (two generations are kept).
	LatencyWindowOps uint64
}

// DefaultOptions returns the values used in the experiments: a 10-second
// window, 20 slots, EWMA α 0.2, 128 tracked keys.
func DefaultOptions() Options {
	return Options{
		Window:           10 * time.Second,
		Slots:            20,
		RankAlpha:        0.2,
		TopKeys:          128,
		LatencyWindowOps: 50_000,
	}
}

// Monitor collects access metrics. It is not safe for concurrent use; the
// engine serializes callbacks (event loop in simulation, actor lock
// live).
type Monitor struct {
	clock Clock
	opts  Options
	rf    int

	readRate  *stats.RateEstimator
	writeRate *stats.RateEstimator

	// Windowed staleness feedback: completed reads and how many of them
	// returned a stale value (the verdict rides on completed results as
	// measurement infrastructure; a real deployment would wire
	// client-side staleness probes into the same counters).
	doneReads  *stats.RateEstimator
	staleReads *stats.RateEstimator
	// cacheHits tracks reads served from the coordinators' hot-key
	// cache: load the replicas never saw. The autoscaler subtracts it
	// from the read rate to provision for the effective load.
	cacheHits *stats.RateEstimator

	rankEWMA []stats.EWMA // ack delay until the i-th replica, i=1..RF

	readLat  stats.Histogram
	writeLat stats.Histogram

	writeKeys *stats.HeavyHitters
	readKeys  *stats.HeavyHitters
	distinct  *stats.DistinctCounter

	reads, writes   uint64
	staleObservable uint64 // reads the client itself could tell were failed
}

// New returns a monitor for a store with replication factor rf.
func New(rf int, clock Clock, opts Options) *Monitor {
	if opts.Window <= 0 {
		opts = DefaultOptions()
	}
	m := &Monitor{
		clock:      clock,
		opts:       opts,
		rf:         rf,
		readRate:   stats.NewRateEstimator(opts.Window, opts.Slots),
		writeRate:  stats.NewRateEstimator(opts.Window, opts.Slots),
		doneReads:  stats.NewRateEstimator(opts.Window, opts.Slots),
		staleReads: stats.NewRateEstimator(opts.Window, opts.Slots),
		cacheHits:  stats.NewRateEstimator(opts.Window, opts.Slots),
		rankEWMA:   make([]stats.EWMA, rf),
		writeKeys:  stats.NewHeavyHitters(opts.TopKeys),
		readKeys:   stats.NewHeavyHitters(opts.TopKeys),
		distinct:   stats.NewDistinctCounter(16),
	}
	for i := range m.rankEWMA {
		m.rankEWMA[i].Alpha = opts.RankAlpha
	}
	return m
}

// Hooks returns the instrumentation hooks to register on the cluster.
func (m *Monitor) Hooks() *kv.Hooks {
	return &kv.Hooks{
		ReadStarted: func(now time.Duration, key string) {
			m.reads++
			m.readRate.Add(now, 1)
			m.readKeys.Observe(key)
			m.distinct.Observe(key)
		},
		ReadCompleted: func(now time.Duration, res kv.ReadResult) {
			if res.Err == nil {
				m.readLat.Record(res.Latency)
				m.doneReads.Add(now, 1)
				if res.Stale {
					m.staleReads.Add(now, 1)
				}
				if res.Cached {
					m.cacheHits.Add(now, 1)
				}
			}
		},
		WriteStarted: func(now time.Duration, key string, _ storage.Version, _ int) {
			m.writes++
			m.writeRate.Add(now, 1)
			m.writeKeys.Observe(key)
			m.distinct.Observe(key)
		},
		WriteAck: func(_ time.Duration, _ string, rank int, delay time.Duration) {
			if rank >= 1 && rank <= len(m.rankEWMA) {
				m.rankEWMA[rank-1].Observe(float64(delay))
			}
		},
		WriteCompleted: func(_ time.Duration, res kv.WriteResult) {
			if res.Err == nil {
				m.writeLat.Record(res.Latency)
			}
		},
	}
}

// KeyRate describes one heavy key in the access profile.
type KeyRate struct {
	Key       string
	ReadShare float64 // fraction of reads hitting the key
	WriteRate float64 // writes per second to the key
}

// Snapshot is the monitor's periodic output: everything the tuners need.
type Snapshot struct {
	Now time.Duration

	ReadRate  float64 // reads per second over the window
	WriteRate float64 // writes per second over the window

	// RankDelays[i] estimates how long after a write's acceptance the
	// (i+1)-th replica acknowledged it; RankDelays[rf-1] is the total
	// propagation time T_p of Figure 1.
	RankDelays []time.Duration

	ReadLatencyMean  time.Duration
	ReadLatencyP95   time.Duration
	WriteLatencyMean time.Duration

	// ObservedStaleRate is the fraction of reads completed inside the
	// window that returned a stale value — the measured feedback signal
	// the autoscale controller checks provisioning constraints against
	// (tuners keep using the model-based estimators).
	ObservedStaleRate float64

	// CacheHitShare is the fraction of reads completed inside the window
	// that were served from the coordinators' hot-key cache (zero
	// without kv.Config.HotCache). Those reads never reached a replica,
	// so the autoscaler provisions for ReadRate·(1−CacheHitShare).
	CacheHitShare float64

	// Access profile for the per-key refinement.
	TopKeys      []KeyRate
	TailKeys     float64 // estimated distinct keys outside TopKeys
	TailReadShr  float64 // read probability mass outside TopKeys
	TailWriteRte float64 // aggregate write rate outside TopKeys

	Reads, Writes uint64
}

// PropagationTime reports T_p: the estimated delay until the last replica
// holds a write.
func (s Snapshot) PropagationTime() time.Duration {
	if len(s.RankDelays) == 0 {
		return 0
	}
	return s.RankDelays[len(s.RankDelays)-1]
}

// Snapshot assembles the current estimates.
func (m *Monitor) Snapshot() Snapshot {
	now := m.clock.Now()
	s := Snapshot{
		Now:              now,
		ReadRate:         m.readRate.Rate(now),
		WriteRate:        m.writeRate.Rate(now),
		RankDelays:       make([]time.Duration, m.rf),
		ReadLatencyMean:  m.readLat.Mean(),
		ReadLatencyP95:   m.readLat.Quantile(0.95),
		WriteLatencyMean: m.writeLat.Mean(),
		Reads:            m.reads,
		Writes:           m.writes,
	}
	if done := m.doneReads.Rate(now); done > 0 {
		s.ObservedStaleRate = m.staleReads.Rate(now) / done
		s.CacheHitShare = m.cacheHits.Rate(now) / done
	}
	// Enforce monotone non-decreasing rank delays: EWMAs of different
	// ranks can momentarily cross right after startup.
	prev := time.Duration(0)
	for i := range m.rankEWMA {
		d := time.Duration(m.rankEWMA[i].Value())
		if d < prev {
			d = prev
		}
		s.RankDelays[i] = d
		prev = d
	}
	s.TopKeys, s.TailKeys, s.TailReadShr, s.TailWriteRte = m.profile()
	return s
}

// profile merges the read and write sketches into the per-key access
// profile: for every tracked write-heavy key we estimate its write rate
// and the probability a read targets it; everything else is folded into a
// uniform tail.
func (m *Monitor) profile() (top []KeyRate, tailKeys, tailReadShare, tailWriteRate float64) {
	now := m.clock.Now()
	writeTotal := m.writeKeys.Total()
	readTotal := m.readKeys.Total()
	globalWriteRate := m.writeRate.Rate(now)

	// Space-saving overestimates tracked keys by up to their error
	// bound; using the guaranteed count (count − error) keeps the top
	// shares honest and leaves the uncertain mass in the tail.
	readShare := make(map[string]float64)
	if readTotal > 0 {
		for _, kc := range m.readKeys.Top(0) {
			readShare[kc.Key] = float64(kc.Count-kc.Err) / float64(readTotal)
		}
	}

	var topWriteShare, topReadShare float64
	if writeTotal > 0 {
		for _, kc := range m.writeKeys.Top(0) {
			share := float64(kc.Count-kc.Err) / float64(writeTotal)
			top = append(top, KeyRate{
				Key:       kc.Key,
				ReadShare: readShare[kc.Key],
				WriteRate: share * globalWriteRate,
			})
			topWriteShare += share
			topReadShare += readShare[kc.Key]
		}
	}
	tailReadShare = max(0, 1-topReadShare)
	tailWriteRate = max(0, 1-topWriteShare) * globalWriteRate
	tailKeys = max(1, m.distinct.Estimate()-float64(len(top)))
	return top, tailKeys, tailReadShare, tailWriteRate
}

// Reset clears rate windows and sketches (kept propagation EWMAs: they
// track slowly-varying infrastructure properties).
func (m *Monitor) Reset() {
	m.writeKeys.Reset()
	m.readKeys.Reset()
	m.distinct.Reset()
	m.readLat.Reset()
	m.writeLat.Reset()
}
