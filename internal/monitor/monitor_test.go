package monitor

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/storage"
)

type testClock struct{ now time.Duration }

func (c *testClock) Now() time.Duration { return c.now }

func TestRatesMeasured(t *testing.T) {
	clock := &testClock{}
	m := New(3, clock, DefaultOptions())
	h := m.Hooks()
	// 200 reads/s and 100 writes/s for 10 s.
	for i := 0; i < 2000; i++ {
		clock.now = time.Duration(i) * 5 * time.Millisecond
		h.ReadStarted(clock.now, "k")
		if i%2 == 0 {
			h.WriteStarted(clock.now, "k", storage.Version{Seq: uint64(i)}, 3)
		}
	}
	snap := m.Snapshot()
	if math.Abs(snap.ReadRate-200) > 20 {
		t.Errorf("read rate %.1f, want ≈200", snap.ReadRate)
	}
	if math.Abs(snap.WriteRate-100) > 10 {
		t.Errorf("write rate %.1f, want ≈100", snap.WriteRate)
	}
	if snap.Reads != 2000 || snap.Writes != 1000 {
		t.Errorf("totals %d/%d", snap.Reads, snap.Writes)
	}
}

func TestRankDelaysMonotone(t *testing.T) {
	clock := &testClock{}
	m := New(3, clock, DefaultOptions())
	h := m.Hooks()
	// Feed acks out of rank order with crossing delays; the snapshot
	// must still be monotone.
	for i := 0; i < 100; i++ {
		h.WriteAck(0, "k", 1, 2*time.Millisecond)
		h.WriteAck(0, "k", 2, time.Millisecond) // crossing
		h.WriteAck(0, "k", 3, 10*time.Millisecond)
	}
	snap := m.Snapshot()
	if len(snap.RankDelays) != 3 {
		t.Fatalf("rank delays: %v", snap.RankDelays)
	}
	for i := 1; i < 3; i++ {
		if snap.RankDelays[i] < snap.RankDelays[i-1] {
			t.Errorf("rank delays not monotone: %v", snap.RankDelays)
		}
	}
	if snap.PropagationTime() != snap.RankDelays[2] {
		t.Error("PropagationTime is not the last rank")
	}
}

func TestLatencyHistogramsFed(t *testing.T) {
	clock := &testClock{}
	m := New(3, clock, DefaultOptions())
	h := m.Hooks()
	for i := 0; i < 100; i++ {
		h.ReadCompleted(0, kv.ReadResult{Latency: 4 * time.Millisecond})
		h.WriteCompleted(0, kv.WriteResult{Latency: 2 * time.Millisecond})
	}
	// Errors must not pollute latency stats.
	h.ReadCompleted(0, kv.ReadResult{Err: kv.ErrTimeout, Latency: time.Hour})
	snap := m.Snapshot()
	if snap.ReadLatencyMean > 5*time.Millisecond {
		t.Errorf("read latency polluted: %v", snap.ReadLatencyMean)
	}
	if snap.WriteLatencyMean > 3*time.Millisecond || snap.WriteLatencyMean == 0 {
		t.Errorf("write latency: %v", snap.WriteLatencyMean)
	}
}

func TestProfileSharesAndTail(t *testing.T) {
	clock := &testClock{}
	opts := DefaultOptions()
	opts.TopKeys = 4
	m := New(3, clock, opts)
	h := m.Hooks()
	// One hot key gets half the traffic; 50 cold keys share the rest.
	for i := 0; i < 2000; i++ {
		clock.now = time.Duration(i) * time.Millisecond
		var key string
		if i%2 == 0 {
			key = "hot"
		} else {
			key = fmt.Sprintf("cold-%d", i%50)
		}
		h.ReadStarted(clock.now, key)
		h.WriteStarted(clock.now, key, storage.Version{Seq: uint64(i)}, 3)
	}
	snap := m.Snapshot()
	if len(snap.TopKeys) == 0 {
		t.Fatal("no top keys")
	}
	if snap.TopKeys[0].Key != "hot" {
		t.Errorf("hottest key = %s", snap.TopKeys[0].Key)
	}
	if snap.TopKeys[0].ReadShare < 0.4 || snap.TopKeys[0].ReadShare > 0.6 {
		t.Errorf("hot read share %.2f", snap.TopKeys[0].ReadShare)
	}
	if snap.TopKeys[0].WriteRate <= 0 {
		t.Error("hot write rate missing")
	}
	if snap.TailKeys < 20 {
		t.Errorf("tail keys %.0f, want ≈47", snap.TailKeys)
	}
	if snap.TailReadShr < 0.2 || snap.TailReadShr > 0.6 {
		t.Errorf("tail read share %.2f", snap.TailReadShr)
	}
}

func TestResetClearsSketches(t *testing.T) {
	clock := &testClock{}
	m := New(3, clock, DefaultOptions())
	h := m.Hooks()
	h.ReadStarted(0, "a")
	h.WriteAck(0, "a", 1, time.Millisecond)
	m.Reset()
	snap := m.Snapshot()
	if len(snap.TopKeys) != 0 && snap.TopKeys[0].ReadShare > 0 {
		t.Error("reset did not clear read sketch")
	}
	// Propagation EWMAs survive reset by design.
	if snap.RankDelays[0] == 0 {
		t.Error("reset cleared propagation estimates (should persist)")
	}
}

func TestBadOptionsFallBack(t *testing.T) {
	clock := &testClock{}
	m := New(3, clock, Options{}) // zero window must fall back to defaults
	if m.opts.Window != DefaultOptions().Window {
		t.Error("defaults not applied")
	}
}

func TestObservedStaleRate(t *testing.T) {
	clock := &testClock{}
	m := New(3, clock, DefaultOptions())
	h := m.Hooks()
	// 1000 completed reads over the window, every fourth one stale.
	for i := 0; i < 1000; i++ {
		clock.now = time.Duration(i) * 5 * time.Millisecond
		h.ReadCompleted(clock.now, kv.ReadResult{Stale: i%4 == 0, Latency: time.Millisecond})
	}
	snap := m.Snapshot()
	if math.Abs(snap.ObservedStaleRate-0.25) > 0.02 {
		t.Errorf("observed stale rate %.3f, want ≈0.25", snap.ObservedStaleRate)
	}
	// Errored reads must not count toward the verdict base.
	for i := 0; i < 100; i++ {
		h.ReadCompleted(clock.now, kv.ReadResult{Err: kv.ErrTimeout, Stale: true})
	}
	if got := m.Snapshot().ObservedStaleRate; math.Abs(got-0.25) > 0.02 {
		t.Errorf("errored reads moved the stale rate to %.3f", got)
	}
	// The signal decays with the window: quiescence drains it.
	clock.now += 2 * DefaultOptions().Window
	if got := m.Snapshot().ObservedStaleRate; got != 0 {
		t.Errorf("stale rate %.3f after the window rolled off, want 0", got)
	}
}
