// Package power implements the paper's first future-work direction (§V):
// the power-consumption behaviour of consistency levels. It models node
// power as an affine function of utilization scaled by the CPU frequency
// governor, integrates energy over a run from the cluster's metered busy
// time, and reports per-level energy and energy-per-operation — the
// series of the Ext-1 bench.
package power

import (
	"fmt"
	"time"
)

// Governor is a CPU frequency policy.
type Governor int

// The governors the study sweeps.
const (
	// Performance pins the maximum frequency.
	Performance Governor = iota
	// Powersave pins the minimum frequency.
	Powersave
	// OnDemand scales frequency with utilization.
	OnDemand
)

// String names the governor.
func (g Governor) String() string {
	switch g {
	case Performance:
		return "performance"
	case Powersave:
		return "powersave"
	case OnDemand:
		return "ondemand"
	}
	return fmt.Sprintf("Governor(%d)", int(g))
}

// Model is a node power model: P(u, f) = Idle·(0.6 + 0.4·f) +
// (Peak−Idle)·u·f³, the standard affine-idle/cubic-dynamic approximation.
// Frequencies are expressed as fractions of nominal.
type Model struct {
	IdleWatts float64
	PeakWatts float64
	FMin      float64 // minimum frequency fraction (powersave)
}

// DefaultModel resembles a 2013 dual-socket server: 95 W idle, 210 W
// peak, minimum frequency at 55% of nominal.
func DefaultModel() Model {
	return Model{IdleWatts: 95, PeakWatts: 210, FMin: 0.55}
}

// Frequency reports the frequency fraction the governor runs at for a
// given utilization.
func (m Model) Frequency(g Governor, util float64) float64 {
	switch g {
	case Powersave:
		return m.FMin
	case OnDemand:
		f := m.FMin + (1-m.FMin)*clamp01(util/0.7) // ramp to full by 70% load
		return f
	default:
		return 1.0
	}
}

// ServiceSlowdown reports how much slower service times run at the
// governor's frequency (inverse of frequency for CPU-bound work).
func (m Model) ServiceSlowdown(g Governor, util float64) float64 {
	return 1 / m.Frequency(g, util)
}

// Watts reports instantaneous power at utilization util under governor g.
func (m Model) Watts(g Governor, util float64) float64 {
	f := m.Frequency(g, util)
	util = clamp01(util)
	return m.IdleWatts*(0.6+0.4*f) + (m.PeakWatts-m.IdleWatts)*util*f*f*f
}

// Energy integrates power over elapsed at a constant utilization and
// reports joules.
func (m Model) Energy(g Governor, util float64, elapsed time.Duration) float64 {
	return m.Watts(g, util) * elapsed.Seconds()
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// NodeUsage is one node's measured activity over a run.
type NodeUsage struct {
	Utilization float64
	Elapsed     time.Duration
}

// Report aggregates a cluster's energy for one run.
type Report struct {
	Governor  Governor
	Nodes     int
	Elapsed   time.Duration
	Joules    float64
	AvgWatts  float64
	JoulesPer float64 // joules per operation
}

// ClusterEnergy sums node energies and normalizes per operation.
func ClusterEnergy(m Model, g Governor, nodes []NodeUsage, ops uint64) Report {
	var joules float64
	var elapsed time.Duration
	for _, n := range nodes {
		joules += m.Energy(g, n.Utilization, n.Elapsed)
		if n.Elapsed > elapsed {
			elapsed = n.Elapsed
		}
	}
	r := Report{Governor: g, Nodes: len(nodes), Elapsed: elapsed, Joules: joules}
	if elapsed > 0 && len(nodes) > 0 {
		r.AvgWatts = joules / elapsed.Seconds() / float64(len(nodes))
	}
	if ops > 0 {
		r.JoulesPer = joules / float64(ops)
	}
	return r
}
