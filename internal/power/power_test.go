package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWattsMonotoneInUtilization(t *testing.T) {
	m := DefaultModel()
	for _, g := range []Governor{Performance, OnDemand, Powersave} {
		prev := -1.0
		for u := 0.0; u <= 1.0; u += 0.05 {
			w := m.Watts(g, u)
			if w < prev {
				t.Errorf("%v: watts not monotone at util %.2f", g, u)
			}
			prev = w
		}
	}
}

func TestGovernorPowerOrdering(t *testing.T) {
	m := DefaultModel()
	// At equal utilization, powersave draws the least, performance the
	// most.
	for _, u := range []float64{0.2, 0.5, 0.9} {
		ps := m.Watts(Powersave, u)
		od := m.Watts(OnDemand, u)
		pf := m.Watts(Performance, u)
		if !(ps <= od && od <= pf) {
			t.Errorf("util %.1f: power ordering broken: %f %f %f", u, ps, od, pf)
		}
	}
}

func TestFrequencyBounds(t *testing.T) {
	m := DefaultModel()
	if err := quick.Check(func(u float64) bool {
		u = math.Abs(u)
		for _, g := range []Governor{Performance, OnDemand, Powersave} {
			f := m.Frequency(g, u)
			if f < m.FMin-1e-9 || f > 1+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if m.Frequency(Performance, 0.5) != 1 {
		t.Error("performance must pin max frequency")
	}
	if m.Frequency(Powersave, 0.9) != m.FMin {
		t.Error("powersave must pin min frequency")
	}
}

func TestServiceSlowdownInverse(t *testing.T) {
	m := DefaultModel()
	if m.ServiceSlowdown(Performance, 0.5) != 1 {
		t.Error("no slowdown at full frequency")
	}
	if s := m.ServiceSlowdown(Powersave, 0.5); math.Abs(s-1/m.FMin) > 1e-9 {
		t.Errorf("powersave slowdown = %f", s)
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := DefaultModel()
	j := m.Energy(Performance, 0, time.Hour)
	wantIdle := m.IdleWatts * 3600
	if math.Abs(j-wantIdle) > 1 {
		t.Errorf("idle hour = %f J, want %f", j, wantIdle)
	}
	jFull := m.Energy(Performance, 1, time.Hour)
	if math.Abs(jFull-m.PeakWatts*3600) > 1 {
		t.Errorf("full hour = %f J", jFull)
	}
}

func TestClusterEnergyAggregation(t *testing.T) {
	m := DefaultModel()
	nodes := []NodeUsage{
		{Utilization: 0.5, Elapsed: time.Hour},
		{Utilization: 0.5, Elapsed: time.Hour},
	}
	rep := ClusterEnergy(m, Performance, nodes, 1_000_000)
	if rep.Nodes != 2 || rep.Elapsed != time.Hour {
		t.Errorf("report meta: %+v", rep)
	}
	perNode := m.Energy(Performance, 0.5, time.Hour)
	if math.Abs(rep.Joules-2*perNode) > 1 {
		t.Errorf("joules = %f", rep.Joules)
	}
	if math.Abs(rep.AvgWatts-perNode/3600) > 0.5 {
		t.Errorf("avg watts = %f", rep.AvgWatts)
	}
	if math.Abs(rep.JoulesPer-rep.Joules/1e6) > 1e-9 {
		t.Errorf("J/op = %f", rep.JoulesPer)
	}
}

func TestGovernorString(t *testing.T) {
	if Performance.String() != "performance" || Powersave.String() != "powersave" ||
		OnDemand.String() != "ondemand" {
		t.Error("governor names")
	}
}
