package gossip

import (
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/stats"
)

func newTestView(self netsim.NodeID) *View {
	return NewView(self, []netsim.NodeID{0, 1, 2, 3}, 3, 0)
}

// TestMergePrecedence pins the SWIM precedence table: which rumor
// overrides which resident claim, incarnation by incarnation.
func TestMergePrecedence(t *testing.T) {
	cases := []struct {
		name   string
		seed   []Update // applied first to set the resident claim
		rumor  Update
		accept bool
		want   Status
	}{
		{"suspect overrides alive at same inc",
			nil, Update{Node: 1, Status: Suspect, Incarnation: 0}, true, Suspect},
		{"suspect rejected below current inc",
			[]Update{{Node: 1, Status: Alive, Incarnation: 2}},
			Update{Node: 1, Status: Suspect, Incarnation: 1}, false, Alive},
		{"suspect does not override suspect at same inc",
			[]Update{{Node: 1, Status: Suspect, Incarnation: 0}},
			Update{Node: 1, Status: Suspect, Incarnation: 0}, false, Suspect},
		{"alive refutes suspect with higher inc",
			[]Update{{Node: 1, Status: Suspect, Incarnation: 0}},
			Update{Node: 1, Status: Alive, Incarnation: 1}, true, Alive},
		{"alive does not refute suspect at same inc",
			[]Update{{Node: 1, Status: Suspect, Incarnation: 1}},
			Update{Node: 1, Status: Alive, Incarnation: 1}, false, Suspect},
		{"dead overrides suspect at same inc",
			[]Update{{Node: 1, Status: Suspect, Incarnation: 0}},
			Update{Node: 1, Status: Dead, Incarnation: 0}, true, Dead},
		{"dead overrides alive at same inc",
			nil, Update{Node: 1, Status: Dead, Incarnation: 0}, true, Dead},
		{"suspect does not override dead",
			[]Update{{Node: 1, Status: Dead, Incarnation: 0}},
			Update{Node: 1, Status: Suspect, Incarnation: 5}, false, Dead},
		{"alive resurrects dead with higher inc",
			[]Update{{Node: 1, Status: Dead, Incarnation: 0}},
			Update{Node: 1, Status: Alive, Incarnation: 1}, true, Alive},
		{"alive does not resurrect dead at same inc",
			[]Update{{Node: 1, Status: Dead, Incarnation: 1}},
			Update{Node: 1, Status: Alive, Incarnation: 1}, false, Dead},
		{"left is terminal against alive",
			[]Update{{Node: 1, Status: Left, Incarnation: 0}},
			Update{Node: 1, Status: Alive, Incarnation: 99}, false, Left},
		{"left is terminal against dead",
			[]Update{{Node: 1, Status: Left, Incarnation: 0}},
			Update{Node: 1, Status: Dead, Incarnation: 99}, false, Left},
		{"left overrides anything",
			[]Update{{Node: 1, Status: Suspect, Incarnation: 4}},
			Update{Node: 1, Status: Left, Incarnation: 0}, true, Left},
	}
	for _, tc := range cases {
		v := newTestView(0)
		for _, s := range tc.seed {
			v.Apply(s)
		}
		if got := v.Apply(tc.rumor); got != tc.accept {
			t.Errorf("%s: Apply = %v, want %v", tc.name, got, tc.accept)
		}
		if got := v.StatusOf(1); got != tc.want {
			t.Errorf("%s: status = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSelfRefutation: a rumor declaring the view's own node suspect or
// dead bumps the incarnation past the claim and re-announces alive.
func TestSelfRefutation(t *testing.T) {
	v := newTestView(2)
	if !v.Apply(Update{Node: 2, Status: Suspect, Incarnation: 0}) {
		t.Fatal("self-suspicion rumor should trigger a refutation")
	}
	if v.StatusOf(2) != Alive || v.Incarnation(2) != 1 {
		t.Fatalf("after refutation: status=%v inc=%d, want alive/1", v.StatusOf(2), v.Incarnation(2))
	}
	// The refutation must ride outgoing messages with a full budget.
	ups := v.Updates(8)
	found := false
	for _, u := range ups {
		if u.Node == 2 && u.Status == Alive && u.Incarnation == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("refutation not queued for dissemination: %v", ups)
	}
	// A dead rumor at the already-refuted incarnation refutes again.
	if !v.Apply(Update{Node: 2, Status: Dead, Incarnation: 1}) {
		t.Fatal("self-death rumor at current inc should re-refute")
	}
	if v.Incarnation(2) != 2 || v.StatusOf(2) != Alive {
		t.Fatalf("second refutation: status=%v inc=%d", v.StatusOf(2), v.Incarnation(2))
	}
	// A stale rumor below the current incarnation is ignored.
	if v.Apply(Update{Node: 2, Status: Suspect, Incarnation: 0}) {
		t.Fatal("stale self-suspicion must not refute again")
	}
}

// TestSuspectConfirmRefute drives the suspicion state machine through
// both outcomes: timeout-confirmed death and in-time refutation.
func TestSuspectConfirmRefute(t *testing.T) {
	v := newTestView(0)
	u, ok := v.Suspect(1)
	if !ok || u.Status != Suspect || u.Incarnation != 0 {
		t.Fatalf("Suspect(1) = %v, %v", u, ok)
	}
	if _, ok := v.Suspect(1); ok {
		t.Fatal("re-suspecting a suspect must be moot")
	}
	// Refutation lands before the timeout: confirmation must not fire.
	v.Apply(Update{Node: 1, Status: Alive, Incarnation: 1})
	if _, ok := v.Confirm(1, 0); ok {
		t.Fatal("Confirm after refutation must be moot")
	}
	// Second round: no refutation, the confirm declares death.
	v2 := newTestView(0)
	u2, _ := v2.Suspect(3)
	d, ok := v2.Confirm(3, u2.Incarnation)
	if !ok || d.Status != Dead {
		t.Fatalf("Confirm(3) = %v, %v", d, ok)
	}
	if v2.StatusOf(3) != Dead {
		t.Fatalf("status = %v, want dead", v2.StatusOf(3))
	}
}

// TestPiggybackBudget: each rumor rides at most budget messages, in
// deterministic (budget desc, id asc) order.
func TestPiggybackBudget(t *testing.T) {
	v := NewView(0, []netsim.NodeID{0, 1, 2, 3}, 2, 0)
	v.Apply(Update{Node: 1, Status: Suspect, Incarnation: 0})
	v.Apply(Update{Node: 2, Status: Suspect, Incarnation: 0})
	first := v.Updates(10)
	if len(first) != 2 || first[0].Node != 1 || first[1].Node != 2 {
		t.Fatalf("first drain = %v", first)
	}
	second := v.Updates(10)
	if len(second) != 2 {
		t.Fatalf("second drain = %v", second)
	}
	if got := v.Updates(10); len(got) != 0 {
		t.Fatalf("budget 2 exhausted, but drained %v", got)
	}
	// max truncates, and the survivor keeps its remaining budget.
	v.Apply(Update{Node: 1, Status: Dead, Incarnation: 0})
	v.Apply(Update{Node: 2, Status: Dead, Incarnation: 0})
	if got := v.Updates(1); len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("truncated drain = %v", got)
	}
	// Node 2 still has full budget (2), node 1 has 1 left: 2 sorts first.
	if got := v.Updates(2); len(got) != 2 || got[0].Node != 2 || got[1].Node != 1 {
		t.Fatalf("budget-ordered drain = %v", got)
	}
}

// TestRingEvents: events apply only in dense order; joins (re-)admit,
// leaves are terminal, and RingSeq tracks the applied prefix.
func TestRingEvents(t *testing.T) {
	v := NewView(0, []netsim.NodeID{0, 1, 2}, 3, 0)
	if v.ApplyRingEvent(RingEvent{Seq: 2, Join: true, Node: 5}) {
		t.Fatal("gap event must be rejected")
	}
	if !v.ApplyRingEvent(RingEvent{Seq: 1, Join: true, Node: 5}) {
		t.Fatal("next event must apply")
	}
	if v.RingSeq() != 1 || v.StatusOf(5) != Alive {
		t.Fatalf("seq=%d status=%v", v.RingSeq(), v.StatusOf(5))
	}
	if v.ApplyRingEvent(RingEvent{Seq: 1, Join: true, Node: 5}) {
		t.Fatal("replayed event must be rejected")
	}
	if !v.ApplyRingEvent(RingEvent{Seq: 2, Join: false, Node: 1}) {
		t.Fatal("leave event must apply")
	}
	if v.StatusOf(1) != Left {
		t.Fatalf("status = %v, want left", v.StatusOf(1))
	}
	// A rejoin after a leave re-admits the node fresh.
	if !v.ApplyRingEvent(RingEvent{Seq: 3, Join: true, Node: 1}) {
		t.Fatal("rejoin event must apply")
	}
	if v.StatusOf(1) != Alive || v.Incarnation(1) != 0 {
		t.Fatalf("rejoined: status=%v inc=%d", v.StatusOf(1), v.Incarnation(1))
	}
	want := []netsim.NodeID{0, 1, 2, 5}
	if got := v.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
}

// TestNextPeerDeterministic: the same seed yields the same probe order,
// every probeable member appears exactly once per cycle, and dead/left
// members are skipped.
func TestNextPeerDeterministic(t *testing.T) {
	probeOrder := func(seed uint64) []netsim.NodeID {
		v := NewView(0, []netsim.NodeID{0, 1, 2, 3, 4, 5}, 3, 0)
		rng := stats.NewSource(seed).Stream("probe")
		var order []netsim.NodeID
		for i := 0; i < 5; i++ {
			order = append(order, v.NextPeer(rng))
		}
		return order
	}
	a, b := probeOrder(7), probeOrder(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	seen := make(map[netsim.NodeID]bool)
	for _, p := range a {
		if p == 0 {
			t.Fatal("view probed itself")
		}
		if seen[p] {
			t.Fatalf("peer %d probed twice in one cycle: %v", p, a)
		}
		seen[p] = true
	}

	// Nobody alive or suspect: the dead-member fallback fires (the
	// last-ditch rejoin probe), and only all-Left yields -1.
	v := NewView(0, []netsim.NodeID{0, 1, 2}, 3, 0)
	rng := stats.NewSource(1).Stream("probe")
	v.Apply(Update{Node: 1, Status: Dead, Incarnation: 0})
	v.Apply(Update{Node: 2, Status: Left, Incarnation: 0})
	if p := v.NextPeer(rng); p != 1 {
		t.Fatalf("dead fallback should probe node 1, got %d", p)
	}
	v.Apply(Update{Node: 1, Status: Left, Incarnation: 0})
	if p := v.NextPeer(rng); p != -1 {
		t.Fatalf("all left: nobody probeable, got %d", p)
	}
}

// TestApplyUnknownNodeDropped: rumors about nodes outside the ring
// prefix are dropped, not buffered.
func TestApplyUnknownNodeDropped(t *testing.T) {
	v := newTestView(0)
	if v.Apply(Update{Node: 9, Status: Suspect, Incarnation: 0}) {
		t.Fatal("rumor about an unknown node must be dropped")
	}
	if v.StatusOf(9) != Left {
		t.Fatalf("unknown node status = %v, want left", v.StatusOf(9))
	}
}
