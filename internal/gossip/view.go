package gossip

import (
	"sort"

	"repro/internal/netsim"
)

// entry is one member's record in a view: the claimed status, the
// incarnation backing the claim, and how many more messages the rumor
// rides on (the piggyback budget).
type entry struct {
	status Status
	inc    uint64
	budget int
}

// View is one node's membership view: liveness entries for every member
// of its ring prefix, plus the probe rotation and the pending-rumor
// queue. Views are pure state machines — the embedding layer supplies
// timing, transport and randomness.
type View struct {
	self    netsim.NodeID
	entries map[netsim.NodeID]*entry
	ringSeq uint64
	budget  int

	// Probe rotation: a shuffled cycle over probeable members, rebuilt
	// when exhausted (SWIM's round-robin randomized probe order, which
	// bounds first-detection time to one cycle).
	cycle    []netsim.NodeID
	cycleIdx int
}

// shuffler is the randomness a view needs (stats.Source satisfies it);
// accepting the interface keeps the package clock- and RNG-agnostic.
type shuffler interface {
	Shuffle(n int, swap func(i, j int))
}

// NewView builds a view for self over the given founding members, all
// alive at incarnation 0, with ring knowledge anchored at ringSeq.
// budget is the per-rumor transmission budget (how many messages each
// new rumor piggybacks on before it stops spreading).
func NewView(self netsim.NodeID, members []netsim.NodeID, budget int, ringSeq uint64) *View {
	if budget <= 0 {
		budget = 3
	}
	v := &View{
		self:    self,
		entries: make(map[netsim.NodeID]*entry, len(members)),
		ringSeq: ringSeq,
		budget:  budget,
	}
	for _, m := range members {
		v.entries[m] = &entry{status: Alive}
	}
	if v.entries[self] == nil {
		v.entries[self] = &entry{status: Alive}
	}
	return v
}

// Self reports the view's owner.
func (v *View) Self() netsim.NodeID { return v.self }

// RingSeq reports the ring-event prefix this view has applied.
func (v *View) RingSeq() uint64 { return v.ringSeq }

// StatusOf reports the view's claim about id. Unknown nodes (their join
// event has not reached this view) report Left: the view cannot route
// to them and must not probe them.
func (v *View) StatusOf(id netsim.NodeID) Status {
	if e := v.entries[id]; e != nil {
		return e.status
	}
	return Left
}

// Incarnation reports the incarnation backing the view's claim about id.
func (v *View) Incarnation(id netsim.NodeID) uint64 {
	if e := v.entries[id]; e != nil {
		return e.inc
	}
	return 0
}

// Members returns the view's current ring members (everything not Left)
// in ascending id order.
func (v *View) Members() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(v.entries))
	for id, e := range v.entries {
		if e.status != Left {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AliveCount reports how many members the view believes alive.
func (v *View) AliveCount() int {
	n := 0
	for _, e := range v.entries {
		if e.status == Alive {
			n++
		}
	}
	return n
}

// Apply merges one rumor into the view by SWIM precedence and reports
// whether it changed the view's claim (a changed claim re-arms the
// rumor's piggyback budget so the news keeps spreading). Rumors about
// unknown nodes are dropped — their join ring event has not arrived
// yet; the budget-bounded retransmission of the rumor elsewhere covers
// redelivery once it does.
//
// A rumor declaring the view's own node suspect or dead is refuted
// instead of applied: the node bumps its incarnation past the claim and
// re-announces itself alive with a full budget.
func (v *View) Apply(u Update) bool {
	e := v.entries[u.Node]
	if e == nil {
		return false
	}
	if u.Node == v.self {
		if u.Status != Alive && u.Status != Left && u.Incarnation >= e.inc {
			e.inc = u.Incarnation + 1
			e.status = Alive
			e.budget = v.budget
			return true
		}
		return false
	}
	accept := false
	switch u.Status {
	case Left:
		accept = e.status != Left
	case Alive:
		// A strictly newer incarnation overrides anything but Left —
		// including Dead (the node itself came back and refuted).
		accept = e.status != Left && u.Incarnation > e.inc
	case Suspect:
		accept = (e.status == Alive && u.Incarnation >= e.inc) ||
			(e.status == Suspect && u.Incarnation > e.inc)
	case Dead:
		accept = ((e.status == Alive || e.status == Suspect) && u.Incarnation >= e.inc) ||
			(e.status == Dead && u.Incarnation > e.inc)
	}
	if !accept {
		return false
	}
	e.status = u.Status
	e.inc = u.Incarnation
	e.budget = v.budget
	return true
}

// Suspect records a local failure-detector verdict: a probe of id went
// unanswered. It returns the rumor to disseminate; ok is false when the
// claim is moot (id unknown, already suspect/dead/left, or self).
func (v *View) Suspect(id netsim.NodeID) (Update, bool) {
	e := v.entries[id]
	if e == nil || id == v.self || e.status != Alive {
		return Update{}, false
	}
	e.status = Suspect
	e.budget = v.budget
	return Update{Node: id, Status: Suspect, Incarnation: e.inc}, true
}

// Confirm declares id dead after its suspicion timeout expired, but
// only when the view still holds the exact suspicion that armed the
// timer (same incarnation, still suspect) — a refutation in between
// cancels the confirmation. It returns the rumor to disseminate.
func (v *View) Confirm(id netsim.NodeID, inc uint64) (Update, bool) {
	e := v.entries[id]
	if e == nil || e.status != Suspect || e.inc != inc {
		return Update{}, false
	}
	e.status = Dead
	e.budget = v.budget
	return Update{Node: id, Status: Dead, Incarnation: e.inc}, true
}

// ApplyRingEvent advances the view's ring prefix by exactly one event;
// out-of-order events (a gap, or an already-applied prefix) are
// rejected and the caller retries once the missing suffix arrives. A
// join (re-)admits the node alive at incarnation 0; a leave marks it
// Left terminally.
func (v *View) ApplyRingEvent(ev RingEvent) bool {
	if ev.Seq != v.ringSeq+1 {
		return false
	}
	v.ringSeq = ev.Seq
	if ev.Join {
		v.entries[ev.Node] = &entry{status: Alive}
	} else if e := v.entries[ev.Node]; e != nil {
		e.status = Left
		e.budget = 0
	} else {
		v.entries[ev.Node] = &entry{status: Left}
	}
	return true
}

// Updates drains up to max pending rumors for piggybacking on an
// outgoing message, freshest first (highest remaining budget, ties by
// ascending node id — a total order, so dissemination is
// deterministic). Each returned rumor's budget is decremented; a rumor
// stops riding once its budget is spent.
func (v *View) Updates(max int) []Update {
	if max <= 0 {
		return nil
	}
	ids := make([]netsim.NodeID, 0, len(v.entries))
	for id, e := range v.entries {
		if e.budget > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		bi, bj := v.entries[ids[i]].budget, v.entries[ids[j]].budget
		if bi != bj {
			return bi > bj
		}
		return ids[i] < ids[j]
	})
	if len(ids) > max {
		ids = ids[:max]
	}
	out := make([]Update, len(ids))
	for i, id := range ids {
		e := v.entries[id]
		e.budget--
		out[i] = Update{Node: id, Status: e.status, Incarnation: e.inc}
	}
	return out
}

// NextPeer picks the next probe target: round-robin over a shuffled
// cycle of probeable members (alive or suspect, never self), rebuilt
// when exhausted. When NOTHING is alive or suspect — the view sat on
// the wrong side of a partition long enough to declare everyone dead —
// it falls back to cycling over Dead members: the last-ditch rejoin
// probe. Without it two sides that declared each other dead would never
// exchange another message and the refutation handshake could never
// run. It returns -1 only when every other member has Left. The caller
// supplies the randomness (a blessed stats.Source stream), so peer
// selection is deterministic per node.
func (v *View) NextPeer(rng shuffler) netsim.NodeID {
	for tries := 0; tries < 2; tries++ {
		for v.cycleIdx < len(v.cycle) {
			p := v.cycle[v.cycleIdx]
			v.cycleIdx++
			// Members can die or leave mid-cycle; skip them.
			if e := v.entries[p]; e != nil && (e.status == Alive || e.status == Suspect) {
				return p
			}
		}
		v.rebuildCycle(rng, false)
		if len(v.cycle) == 0 {
			break
		}
	}
	// Nobody alive or suspect: probe the dead, in case they aren't.
	v.rebuildCycle(rng, true)
	if len(v.cycle) == 0 {
		return -1
	}
	p := v.cycle[v.cycleIdx]
	v.cycleIdx++
	return p
}

// rebuildCycle refills the probe rotation from alive+suspect members,
// or from dead ones when deadFallback is set.
func (v *View) rebuildCycle(rng shuffler, deadFallback bool) {
	v.cycle = v.cycle[:0]
	for id, e := range v.entries {
		if id == v.self {
			continue
		}
		probeable := e.status == Alive || e.status == Suspect
		if deadFallback {
			probeable = e.status == Dead
		}
		if probeable {
			v.cycle = append(v.cycle, id)
		}
	}
	sort.Slice(v.cycle, func(i, j int) bool { return v.cycle[i] < v.cycle[j] })
	rng.Shuffle(len(v.cycle), func(i, j int) {
		v.cycle[i], v.cycle[j] = v.cycle[j], v.cycle[i]
	})
	v.cycleIdx = 0
}
