// Package gossip implements SWIM-style membership dissemination for the
// deterministic simulator: per-node membership views, incarnation
// numbers, alive/suspect/dead/left states with refutation, and bounded
// piggyback dissemination.
//
// The package is a pure state-machine library — it owns no clock, no
// transport and no placement. The embedding layer (internal/kv) drives
// it from the discrete-event scheduler: it decides when to probe, whom
// to ping, when a suspicion times out, and what a message carries. That
// split keeps the SWIM logic unit-testable in isolation and keeps the
// simulator's determinism contract (blessed RNG from internal/stats,
// no wall clock) trivially auditable.
//
// Two kinds of state flow between views:
//
//   - Status rumors (Update): liveness claims ordered by incarnation
//     number. A suspected node refutes by re-announcing itself alive at
//     a higher incarnation; precedence follows SWIM (suspect overrides
//     alive at the same incarnation, dead overrides both, a higher
//     incarnation overrides anything but Left, and Left is terminal).
//     Each view re-transmits a rumor a bounded number of times
//     (the piggyback budget), giving the classic O(log n) spread.
//
//   - Ring events (RingEvent): the append-only log of membership flips
//     (joins and decommissions). Every view's ring knowledge is a
//     contiguous prefix of that log, identified by its sequence number
//     alone, so views compare freshness with a single integer and
//     bridge gaps by shipping the missing suffix.
package gossip

import (
	"fmt"

	"repro/internal/netsim"
)

// Status is a view's liveness claim about one member.
type Status uint8

// Member statuses, in SWIM precedence order.
const (
	// Alive: the member is believed healthy.
	Alive Status = iota
	// Suspect: a probe went unanswered; the member has until the
	// suspicion timeout to refute before being declared dead.
	Suspect
	// Dead: the suspicion timeout expired unrefuted. A higher
	// incarnation alive claim (the node itself recovering) resurrects.
	Dead
	// Left: the member decommissioned voluntarily. Terminal — no rumor
	// overrides it; only a fresh join ring event re-admits the node.
	Left
)

// String names the status for logs and transcripts.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Left:
		return "left"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Update is one liveness rumor: a claim that Node has Status at
// Incarnation. Updates piggyback on protocol messages and merge into
// receiving views by SWIM precedence (View.Apply).
type Update struct {
	Node        netsim.NodeID
	Status      Status
	Incarnation uint64
}

// RingEvent is one entry of the append-only membership-flip log: ring
// event Seq made Node join (Join true) or leave the placement ring.
// Seq is 1-based and dense; a view holding prefix [1..k] has ring
// sequence k.
type RingEvent struct {
	Seq  uint64
	Join bool
	Node netsim.NodeID
}
