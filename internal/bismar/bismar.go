// Package bismar implements the paper's cost-efficient consistency tuner
// (§III-B): a model of the per-level monetary cost of running the
// workload (VM instances + storage + network, the bill decomposition of
// internal/cost), the consistency-cost efficiency metric
//
//	eff(ℓ) = (1 − P_stale(ℓ)) / (Cost(ℓ)/Cost(ALL))
//
// (fresh reads bought per normalized dollar), and a tuner that selects
// the level with the highest efficiency each control period.
package bismar

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/harmony"
	"repro/internal/kv"
	"repro/internal/monitor"
)

// Deployment captures the operator-known constants of the storage
// deployment that the cost model needs. Everything here is static
// configuration a middleware would be given (or read from the cluster
// config), not runtime measurement.
type Deployment struct {
	Nodes       int
	RF          int
	Threads     int // closed-loop client threads driving the store
	Concurrency int // work slots per node

	ReadServiceMean  time.Duration
	WriteServiceMean time.Duration
	CoordMean        time.Duration
	ClientRTT        time.Duration // client↔coordinator round trip

	ValueBytes      int
	DatasetBytes    float64 // logical dataset size (before replication)
	CrossDCFraction float64 // fraction of inter-node hops crossing DCs

	// Per-operation storage-I/O rates of the deployed engine, measured
	// (IOPerOp) or profiled. Zero for a memory engine — and costless
	// under catalogs that do not price I/O, so the pre-existing model is
	// unchanged until both the rates and the prices are nonzero.
	WALBytesPerOp       float64
	FsyncsPerOp         float64
	CompactedBytesPerOp float64

	Pricing cost.Pricing
}

// IOPerOp derives the per-operation storage-I/O rates from a measured
// usage record, the bridge from kv's metered durability counters to the
// model's deployment constants.
func IOPerOp(u kv.Usage, ops uint64) (walBytes, fsyncs, compactedBytes float64) {
	if ops == 0 {
		return 0, 0, 0
	}
	n := float64(ops)
	return float64(u.WALBytes) / n, float64(u.WALSyncs) / n, float64(u.CompactedBytes) / n
}

const (
	msgOverhead = 64
	digestBytes = 80
)

// Model prices one consistency level under a deployment and a monitoring
// snapshot.
type Model struct {
	Deploy Deployment
}

// Throughput predicts the sustained operations per second at symmetric
// level k: the closed-loop limit (threads / mean op latency) capped by
// the cluster's service capacity, which shrinks as reads fan out to more
// replicas.
func (m Model) Throughput(k int, snap monitor.Snapshot) float64 {
	d := m.Deploy
	r := readFraction(snap)
	lat := snap.RankDelays
	kth := func(i int) time.Duration {
		if len(lat) == 0 {
			return time.Millisecond
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	lRead := d.ClientRTT + d.CoordMean + kth(k-1)
	lWrite := d.ClientRTT + d.CoordMean + kth(k-1)
	meanLat := r*lRead.Seconds() + (1-r)*lWrite.Seconds()
	if meanLat <= 0 {
		meanLat = 1e-4
	}
	closed := float64(d.Threads) / meanLat

	workRead := float64(k)*d.ReadServiceMean.Seconds() + d.CoordMean.Seconds()
	workWrite := float64(d.RF)*d.WriteServiceMean.Seconds() + d.CoordMean.Seconds()
	work := r*workRead + (1-r)*workWrite
	capacity := float64(d.Nodes*d.Concurrency) / work

	return min(closed, capacity)
}

// NetworkBytesPerOp predicts the billed inter-DC bytes of one operation
// at symmetric level k.
func (m Model) NetworkBytesPerOp(k int, snap monitor.Snapshot) float64 {
	d := m.Deploy
	r := readFraction(snap)
	// Read: one data round trip plus k−1 digest round trips.
	readBytes := float64(2*msgOverhead+len1(d.ValueBytes)) +
		float64(k-1)*float64(msgOverhead+digestBytes)
	// Write: the mutation travels to every replica regardless of level.
	writeBytes := float64(d.RF) * float64(2*msgOverhead+len1(d.ValueBytes))
	return d.CrossDCFraction * (r*readBytes + (1-r)*writeBytes)
}

func len1(v int) int {
	if v <= 0 {
		return 1024
	}
	return v
}

// CostPerMillionOps predicts the dollars per million operations at
// symmetric level k: instance-hours for the time the million operations
// take, prorated replicated storage, and billed network traffic.
func (m Model) CostPerMillionOps(k int, snap monitor.Snapshot) float64 {
	d := m.Deploy
	thr := m.Throughput(k, snap)
	if thr <= 0 {
		return 0
	}
	duration := time.Duration(1e6 / thr * float64(time.Second))
	u := cost.Usage{
		Nodes:        d.Nodes,
		Duration:     duration,
		StoredBytes:  d.DatasetBytes * float64(d.RF),
		InterDCBytes: m.NetworkBytesPerOp(k, snap) * 1e6,
		// Durability I/O scales with operations, not with the level: a
		// flat adder per million ops that compresses the levels' relative
		// cost spread once priced (cheap-but-stale levels lose ground).
		WALBytes:       d.WALBytesPerOp * 1e6,
		Fsyncs:         d.FsyncsPerOp * 1e6,
		CompactedBytes: d.CompactedBytesPerOp * 1e6,
	}
	// The tuner compares levels with smooth (per-second) billing; the
	// coarse hourly rounding is applied to real bills, not to marginal
	// decisions (see the billing-granularity ablation).
	return m.Deploy.Pricing.PerSecond().BillFor(u).Total()
}

func readFraction(snap monitor.Snapshot) float64 {
	t := snap.ReadRate + snap.WriteRate
	if t <= 0 {
		return 0.5
	}
	return snap.ReadRate / t
}

// LevelEval is the per-level outcome of one Bismar evaluation.
type LevelEval struct {
	K          int
	Level      kv.Level
	Fresh      float64 // 1 − estimated stale rate
	CostPM     float64 // $ per million ops
	NormCost   float64 // CostPM / CostPM(ALL)
	Efficiency float64 // Fresh / NormCost
}

// Tuner is the Bismar adaptive tuner: argmax-efficiency level selection.
type Tuner struct {
	Deploy Deployment
	// MaxStale optionally caps the estimated stale rate of eligible
	// levels (1 disables the cap; the metric alone already avoids very
	// stale levels).
	MaxStale float64
	// PerKeyEstimator selects the refined stale estimator.
	PerKeyEstimator bool

	model Model
}

// New returns a Bismar tuner over a deployment.
func New(dep Deployment) *Tuner {
	return &Tuner{Deploy: dep, MaxStale: 1, model: Model{Deploy: dep}}
}

// Name implements core.Tuner.
func (t *Tuner) Name() string { return "bismar" }

// Evaluate scores every symmetric level under the snapshot; exported for
// the efficiency-metric experiment (Exp B2).
func (t *Tuner) Evaluate(snap monitor.Snapshot) []LevelEval {
	rf := t.Deploy.RF
	evals := make([]LevelEval, 0, rf)
	costAll := t.model.CostPerMillionOps(rf, snap)
	for k := 1; k <= rf; k++ {
		est := harmony.Estimator{RF: rf, WriteK: k, PerKey: t.PerKeyEstimator}
		stale := est.StaleRate(k, snap)
		cpm := t.model.CostPerMillionOps(k, snap)
		norm := 1.0
		if costAll > 0 {
			norm = cpm / costAll
		}
		e := LevelEval{
			K:        k,
			Level:    levelFor(k, rf),
			Fresh:    1 - stale,
			CostPM:   cpm,
			NormCost: norm,
		}
		if norm > 0 {
			e.Efficiency = e.Fresh / norm
		}
		evals = append(evals, e)
	}
	return evals
}

// Decide implements core.Tuner: the highest-efficiency level within the
// staleness cap wins, applied symmetrically to reads and writes (the
// configuration the paper's cost study sweeps).
func (t *Tuner) Decide(snap monitor.Snapshot) core.Decision {
	evals := t.Evaluate(snap)
	best := evals[len(evals)-1] // ALL is always admissible
	for _, e := range evals {
		if 1-e.Fresh > t.MaxStale {
			continue
		}
		if e.Efficiency > best.Efficiency {
			best = e
		}
	}
	return core.Decision{
		ReadLevel:          best.Level,
		WriteLevel:         best.Level,
		EstimatedStaleRate: 1 - best.Fresh,
		Efficiency:         best.Efficiency,
		Reason: fmt.Sprintf("eff(%v)=%.2f (fresh=%.3f, $%.4f/Mops)",
			best.Level, best.Efficiency, best.Fresh, best.CostPM),
	}
}

// levelFor names the canonical Cassandra level for k of rf when one
// exists, so journals and reports read like the paper.
func levelFor(k, rf int) kv.Level {
	switch {
	case k == 1:
		return kv.One
	case k == rf:
		return kv.All
	case k == rf/2+1:
		return kv.Quorum
	case k == 2:
		return kv.Two
	case k == 3:
		return kv.Three
	default:
		return kv.Count(k)
	}
}

var _ core.Tuner = (*Tuner)(nil)
