package bismar

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/monitor"
)

func testDeployment() Deployment {
	return Deployment{
		Nodes: 18, RF: 5, Threads: 200, Concurrency: 2,
		ReadServiceMean:  8 * time.Millisecond,
		WriteServiceMean: 6 * time.Millisecond,
		CoordMean:        300 * time.Microsecond,
		ClientRTT:        time.Millisecond,
		ValueBytes:       1024,
		DatasetBytes:     24 << 30,
		CrossDCFraction:  0.5,
		Pricing:          cost.EC2East2013(),
	}
}

func snap(writeRate float64, delaysMs ...int) monitor.Snapshot {
	d := make([]time.Duration, len(delaysMs))
	for i, ms := range delaysMs {
		d[i] = time.Duration(ms) * time.Millisecond
	}
	return monitor.Snapshot{
		ReadRate:     writeRate, // 50/50 mix
		WriteRate:    writeRate,
		RankDelays:   d,
		TailKeys:     1,
		TailReadShr:  1,
		TailWriteRte: writeRate,
	}
}

func TestThroughputDecreasesWithLevel(t *testing.T) {
	m := Model{Deploy: testDeployment()}
	s := snap(500, 1, 3, 8, 20, 60)
	prev := 0.0
	for k := 1; k <= 5; k++ {
		thr := m.Throughput(k, s)
		if thr <= 0 {
			t.Fatalf("k=%d: throughput %f", k, thr)
		}
		if k > 1 && thr > prev+1e-9 {
			t.Errorf("throughput increased with level: k=%d %f > %f", k, thr, prev)
		}
		prev = thr
	}
}

func TestCostIncreasesWithLevel(t *testing.T) {
	m := Model{Deploy: testDeployment()}
	s := snap(500, 1, 3, 8, 20, 60)
	prev := 0.0
	for k := 1; k <= 5; k++ {
		c := m.CostPerMillionOps(k, s)
		if c <= 0 {
			t.Fatalf("k=%d: cost %f", k, c)
		}
		if k > 1 && c < prev-1e-9 {
			t.Errorf("cost decreased with level: k=%d %f < %f", k, c, prev)
		}
		prev = c
	}
}

func TestNetworkBytesGrowWithLevel(t *testing.T) {
	m := Model{Deploy: testDeployment()}
	s := snap(500, 1, 3, 8, 20, 60)
	if m.NetworkBytesPerOp(5, s) <= m.NetworkBytesPerOp(1, s) {
		t.Error("digest traffic must grow with read level")
	}
}

func TestEvaluateNormalizesAgainstAll(t *testing.T) {
	tn := New(testDeployment())
	evals := tn.Evaluate(snap(500, 1, 3, 8, 20, 60))
	if len(evals) != 5 {
		t.Fatalf("evals = %d", len(evals))
	}
	last := evals[len(evals)-1]
	if last.NormCost < 0.999 || last.NormCost > 1.001 {
		t.Errorf("ALL norm cost = %f, want 1", last.NormCost)
	}
	if last.Fresh < 0.999 {
		t.Errorf("ALL must be fresh: %f", last.Fresh)
	}
	for _, e := range evals {
		if e.Efficiency < 0 {
			t.Errorf("negative efficiency: %+v", e)
		}
	}
}

func TestDecidePrefersOneWhenQuiet(t *testing.T) {
	tn := New(testDeployment())
	d := tn.Decide(snap(0.1, 1, 2, 3, 4, 5)) // negligible writes: ONE is fresh and cheap
	if d.ReadLevel.Replicas(5) != 1 {
		t.Errorf("quiet workload should pick ONE, got %v", d.ReadLevel)
	}
	if d.Efficiency <= 0 {
		t.Error("efficiency not reported")
	}
}

func TestDecideAvoidsVeryStaleOneUnderPressure(t *testing.T) {
	tn := New(testDeployment())
	// Per-key write pressure high and propagation slow: ONE is mostly
	// stale, so its efficiency collapses below stronger levels.
	s := snap(2000, 1, 150, 300, 450, 600)
	d := tn.Decide(s)
	if d.ReadLevel.Replicas(5) == 1 {
		t.Errorf("heavily stale ONE chosen: est stale %.3f", d.EstimatedStaleRate)
	}
}

func TestMaxStaleCapFiltersLevels(t *testing.T) {
	tn := New(testDeployment())
	tn.MaxStale = 0.001
	s := snap(2000, 1, 150, 300, 450, 600)
	d := tn.Decide(s)
	if d.EstimatedStaleRate > 0.001 {
		t.Errorf("cap violated: %f", d.EstimatedStaleRate)
	}
}

func TestLevelForNames(t *testing.T) {
	if levelFor(1, 5).String() != "ONE" || levelFor(3, 5).String() != "QUORUM" ||
		levelFor(5, 5).String() != "ALL" || levelFor(4, 5).String() != "K(4)" ||
		levelFor(2, 5).String() != "TWO" {
		t.Error("level naming wrong")
	}
	if New(testDeployment()).Name() != "bismar" {
		t.Error("tuner name")
	}
}
