package bismar

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/kv"
	"repro/internal/monitor"
)

func testDeployment() Deployment {
	return Deployment{
		Nodes: 18, RF: 5, Threads: 200, Concurrency: 2,
		ReadServiceMean:  8 * time.Millisecond,
		WriteServiceMean: 6 * time.Millisecond,
		CoordMean:        300 * time.Microsecond,
		ClientRTT:        time.Millisecond,
		ValueBytes:       1024,
		DatasetBytes:     24 << 30,
		CrossDCFraction:  0.5,
		Pricing:          cost.EC2East2013(),
	}
}

func snap(writeRate float64, delaysMs ...int) monitor.Snapshot {
	d := make([]time.Duration, len(delaysMs))
	for i, ms := range delaysMs {
		d[i] = time.Duration(ms) * time.Millisecond
	}
	return monitor.Snapshot{
		ReadRate:     writeRate, // 50/50 mix
		WriteRate:    writeRate,
		RankDelays:   d,
		TailKeys:     1,
		TailReadShr:  1,
		TailWriteRte: writeRate,
	}
}

func TestThroughputDecreasesWithLevel(t *testing.T) {
	m := Model{Deploy: testDeployment()}
	s := snap(500, 1, 3, 8, 20, 60)
	prev := 0.0
	for k := 1; k <= 5; k++ {
		thr := m.Throughput(k, s)
		if thr <= 0 {
			t.Fatalf("k=%d: throughput %f", k, thr)
		}
		if k > 1 && thr > prev+1e-9 {
			t.Errorf("throughput increased with level: k=%d %f > %f", k, thr, prev)
		}
		prev = thr
	}
}

func TestCostIncreasesWithLevel(t *testing.T) {
	m := Model{Deploy: testDeployment()}
	s := snap(500, 1, 3, 8, 20, 60)
	prev := 0.0
	for k := 1; k <= 5; k++ {
		c := m.CostPerMillionOps(k, s)
		if c <= 0 {
			t.Fatalf("k=%d: cost %f", k, c)
		}
		if k > 1 && c < prev-1e-9 {
			t.Errorf("cost decreased with level: k=%d %f < %f", k, c, prev)
		}
		prev = c
	}
}

func TestNetworkBytesGrowWithLevel(t *testing.T) {
	m := Model{Deploy: testDeployment()}
	s := snap(500, 1, 3, 8, 20, 60)
	if m.NetworkBytesPerOp(5, s) <= m.NetworkBytesPerOp(1, s) {
		t.Error("digest traffic must grow with read level")
	}
}

func TestEvaluateNormalizesAgainstAll(t *testing.T) {
	tn := New(testDeployment())
	evals := tn.Evaluate(snap(500, 1, 3, 8, 20, 60))
	if len(evals) != 5 {
		t.Fatalf("evals = %d", len(evals))
	}
	last := evals[len(evals)-1]
	if last.NormCost < 0.999 || last.NormCost > 1.001 {
		t.Errorf("ALL norm cost = %f, want 1", last.NormCost)
	}
	if last.Fresh < 0.999 {
		t.Errorf("ALL must be fresh: %f", last.Fresh)
	}
	for _, e := range evals {
		if e.Efficiency < 0 {
			t.Errorf("negative efficiency: %+v", e)
		}
	}
}

func TestDecidePrefersOneWhenQuiet(t *testing.T) {
	tn := New(testDeployment())
	d := tn.Decide(snap(0.1, 1, 2, 3, 4, 5)) // negligible writes: ONE is fresh and cheap
	if d.ReadLevel.Replicas(5) != 1 {
		t.Errorf("quiet workload should pick ONE, got %v", d.ReadLevel)
	}
	if d.Efficiency <= 0 {
		t.Error("efficiency not reported")
	}
}

func TestDecideAvoidsVeryStaleOneUnderPressure(t *testing.T) {
	tn := New(testDeployment())
	// Per-key write pressure high and propagation slow: ONE is mostly
	// stale, so its efficiency collapses below stronger levels.
	s := snap(2000, 1, 150, 300, 450, 600)
	d := tn.Decide(s)
	if d.ReadLevel.Replicas(5) == 1 {
		t.Errorf("heavily stale ONE chosen: est stale %.3f", d.EstimatedStaleRate)
	}
}

func TestMaxStaleCapFiltersLevels(t *testing.T) {
	tn := New(testDeployment())
	tn.MaxStale = 0.001
	s := snap(2000, 1, 150, 300, 450, 600)
	d := tn.Decide(s)
	if d.EstimatedStaleRate > 0.001 {
		t.Errorf("cap violated: %f", d.EstimatedStaleRate)
	}
}

func TestLevelForNames(t *testing.T) {
	if levelFor(1, 5).String() != "ONE" || levelFor(3, 5).String() != "QUORUM" ||
		levelFor(5, 5).String() != "ALL" || levelFor(4, 5).String() != "K(4)" ||
		levelFor(2, 5).String() != "TWO" {
		t.Error("level naming wrong")
	}
	if New(testDeployment()).Name() != "bismar" {
		t.Error("tuner name")
	}
}

func TestZeroIORatesLeaveCostModelUnchanged(t *testing.T) {
	// An I/O-pricing catalog over a memory engine (zero per-op rates)
	// prices every level exactly as the base catalog does: the refactor
	// is invisible until both rates and prices are nonzero.
	s := snap(500, 1, 3, 8, 20, 60)
	base := Model{Deploy: testDeployment()}
	priced := Model{Deploy: testDeployment()}
	priced.Deploy.Pricing = priced.Deploy.Pricing.WithStorageIO()
	for k := 1; k <= 5; k++ {
		a, b := base.CostPerMillionOps(k, s), priced.CostPerMillionOps(k, s)
		if a != b {
			t.Errorf("k=%d: zero-rate deployment priced %f under +io, %f under base", k, b, a)
		}
	}
}

func TestIORatesAddLevelIndependentCost(t *testing.T) {
	s := snap(500, 1, 3, 8, 20, 60)
	dep := testDeployment()
	dep.Pricing = dep.Pricing.WithStorageIO()
	dry := Model{Deploy: dep}
	wet := Model{Deploy: dep}
	wet.Deploy.WALBytesPerOp = 1100 // ~1 KB value + framing per write
	wet.Deploy.FsyncsPerOp = 0.02   // group commit
	wet.Deploy.CompactedBytesPerOp = 800

	// Durability I/O scales with ops, not with the level: the adder per
	// million ops is the same constant at every k.
	u := cost.Usage{
		WALBytes:       wet.Deploy.WALBytesPerOp * 1e6,
		Fsyncs:         wet.Deploy.FsyncsPerOp * 1e6,
		CompactedBytes: wet.Deploy.CompactedBytesPerOp * 1e6,
	}
	adder := dep.Pricing.BillFor(u).IO
	if adder <= 0 {
		t.Fatalf("expected positive I/O adder, got %f", adder)
	}
	for k := 1; k <= 5; k++ {
		gap := wet.CostPerMillionOps(k, s) - dry.CostPerMillionOps(k, s)
		if diff := gap - adder; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("k=%d: I/O raised cost by %f, want flat adder %f", k, gap, adder)
		}
	}
}

func TestIOAdderCompressesEfficiencySpread(t *testing.T) {
	// A flat per-op adder narrows the relative (normalized) cost gap
	// between ONE and ALL, so cheap-but-stale levels lose efficiency
	// ground once durability is priced.
	s := snap(500, 1, 3, 8, 20, 60)
	dep := testDeployment()
	dep.Pricing = dep.Pricing.WithStorageIO()
	dry := New(dep)
	depIO := dep
	depIO.WALBytesPerOp = 1100
	depIO.FsyncsPerOp = 0.02
	depIO.CompactedBytesPerOp = 800
	wet := New(depIO)

	a, b := dry.Evaluate(s), wet.Evaluate(s)
	if b[0].NormCost <= a[0].NormCost {
		t.Errorf("ONE norm cost %f under I/O, want > %f (spread compressed)", b[0].NormCost, a[0].NormCost)
	}
	if b[0].Efficiency >= a[0].Efficiency {
		t.Errorf("ONE efficiency %f under I/O, want < %f", b[0].Efficiency, a[0].Efficiency)
	}
}

func TestIOPerOpDerivation(t *testing.T) {
	u := kv.Usage{WALBytes: 5000, WALSyncs: 50, CompactedBytes: 2000}
	w, f, c := IOPerOp(u, 1000)
	if w != 5 || f != 0.05 || c != 2 {
		t.Errorf("IOPerOp = %f, %f, %f", w, f, c)
	}
	if w, f, c := IOPerOp(u, 0); w != 0 || f != 0 || c != 0 {
		t.Error("zero ops must derive zero rates")
	}
}
