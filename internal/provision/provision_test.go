package provision

import (
	"strings"
	"testing"
	"time"
)

func testWorkload() Workload {
	return Workload{
		OpsPerSecond: 3000,
		ReadFraction: 0.8,
		WriteRate:    20,
		BaseLatency:  2 * time.Millisecond,
	}
}

func TestEvaluateRejectsTooFewNodes(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, FailureBudget: 2}
	p := Evaluate(DefaultCatalog()[1], 4, testWorkload(), c)
	if p.Feasible {
		t.Error("4 nodes cannot host RF3 with 2 tolerated failures")
	}
	if !strings.Contains(p.Reason, "RF+failures") {
		t.Errorf("reason: %s", p.Reason)
	}
}

func TestEvaluateRejectsUnreachableLevel(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 3, WriteLevel: 1, MaxStaleRate: 1, FailureBudget: 1}
	p := Evaluate(DefaultCatalog()[1], 10, testWorkload(), c)
	if p.Feasible {
		t.Error("read ALL cannot survive a failure at RF3")
	}
}

func TestEvaluateCapacityConstraint(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 50000}
	p := Evaluate(DefaultCatalog()[0], 4, testWorkload(), c)
	if p.Feasible {
		t.Error("4 m1.medium cannot serve 50k ops/s")
	}
	if !strings.Contains(p.Reason, "capacity") {
		t.Errorf("reason: %s", p.Reason)
	}
}

func TestEvaluateStalenessConstraint(t *testing.T) {
	w := testWorkload()
	w.WriteRate = 500 // very hot key
	loose := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 3000}
	tight := loose
	tight.MaxStaleRate = 0.0001
	nodeType := DefaultCatalog()[2]
	pl := Evaluate(nodeType, 20, w, loose)
	pt := Evaluate(nodeType, 20, w, tight)
	if !pl.Feasible {
		t.Fatalf("loose constraint infeasible: %s", pl.Reason)
	}
	if pt.Feasible {
		t.Error("0.01% staleness should be infeasible at read ONE under hot writes")
	}
	if pl.PredStaleRate <= 0 {
		t.Error("no staleness predicted under hot writes")
	}
}

func TestOptimizePicksCheapestFeasible(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 0.5, MinThroughput: 2000}
	best, considered := Optimize(DefaultCatalog(), testWorkload(), c, 100)
	if !best.Feasible {
		t.Fatal("no feasible plan found")
	}
	if len(considered) == 0 {
		t.Fatal("no candidates considered")
	}
	for _, p := range considered {
		if p.Feasible && p.HourlyCost < best.HourlyCost-1e-9 {
			t.Errorf("cheaper feasible plan missed: %s vs best %s", p.String(), best.String())
		}
	}
}

func TestOptimizeMonotoneInConstraints(t *testing.T) {
	loose := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 0.5, MinThroughput: 2000}
	tight := loose
	tight.MinThroughput = 12000
	bl, _ := Optimize(DefaultCatalog(), testWorkload(), loose, 200)
	bt, _ := Optimize(DefaultCatalog(), testWorkload(), tight, 200)
	if !bl.Feasible || !bt.Feasible {
		t.Fatalf("plans infeasible: %v %v", bl.Feasible, bt.Feasible)
	}
	if bt.HourlyCost < bl.HourlyCost {
		t.Errorf("tighter constraints got cheaper: $%.2f < $%.2f", bt.HourlyCost, bl.HourlyCost)
	}
}

func TestMoreNodesLowerStaleness(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 3000}
	w := testWorkload()
	small := Evaluate(DefaultCatalog()[1], 8, w, c)
	big := Evaluate(DefaultCatalog()[1], 40, w, c)
	if big.PredStaleRate > small.PredStaleRate+1e-9 {
		t.Errorf("more nodes increased predicted staleness: %f vs %f",
			big.PredStaleRate, small.PredStaleRate)
	}
	if big.PredUtilization >= small.PredUtilization {
		t.Error("more nodes must lower utilization")
	}
}

func TestPlanString(t *testing.T) {
	p := Evaluate(DefaultCatalog()[1], 10, testWorkload(),
		Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 100})
	if !strings.Contains(p.String(), "m1.large") {
		t.Errorf("plan string: %s", p.String())
	}
}
