package provision

import (
	"math"
	"strings"
	"testing"
	"time"
)

func testWorkload() Workload {
	return Workload{
		OpsPerSecond: 3000,
		ReadFraction: 0.8,
		WriteRate:    20,
		BaseLatency:  2 * time.Millisecond,
	}
}

func TestEvaluateRejectsTooFewNodes(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, FailureBudget: 2}
	p := Evaluate(DefaultCatalog()[1], 4, testWorkload(), c)
	if p.Feasible {
		t.Error("4 nodes cannot host RF3 with 2 tolerated failures")
	}
	if !strings.Contains(p.Reason, "RF+failures") {
		t.Errorf("reason: %s", p.Reason)
	}
}

func TestEvaluateRejectsUnreachableLevel(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 3, WriteLevel: 1, MaxStaleRate: 1, FailureBudget: 1}
	p := Evaluate(DefaultCatalog()[1], 10, testWorkload(), c)
	if p.Feasible {
		t.Error("read ALL cannot survive a failure at RF3")
	}
}

func TestEvaluateCapacityConstraint(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 50000}
	p := Evaluate(DefaultCatalog()[0], 4, testWorkload(), c)
	if p.Feasible {
		t.Error("4 m1.medium cannot serve 50k ops/s")
	}
	if !strings.Contains(p.Reason, "capacity") {
		t.Errorf("reason: %s", p.Reason)
	}
}

func TestEvaluateStalenessConstraint(t *testing.T) {
	w := testWorkload()
	w.WriteRate = 500 // very hot key
	loose := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 3000}
	tight := loose
	tight.MaxStaleRate = 0.0001
	nodeType := DefaultCatalog()[2]
	pl := Evaluate(nodeType, 20, w, loose)
	pt := Evaluate(nodeType, 20, w, tight)
	if !pl.Feasible {
		t.Fatalf("loose constraint infeasible: %s", pl.Reason)
	}
	if pt.Feasible {
		t.Error("0.01% staleness should be infeasible at read ONE under hot writes")
	}
	if pl.PredStaleRate <= 0 {
		t.Error("no staleness predicted under hot writes")
	}
}

func TestOptimizePicksCheapestFeasible(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 0.5, MinThroughput: 2000}
	best, considered := Optimize(DefaultCatalog(), testWorkload(), c, 100)
	if !best.Feasible {
		t.Fatal("no feasible plan found")
	}
	if len(considered) == 0 {
		t.Fatal("no candidates considered")
	}
	for _, p := range considered {
		if p.Feasible && p.HourlyCost < best.HourlyCost-1e-9 {
			t.Errorf("cheaper feasible plan missed: %s vs best %s", p.String(), best.String())
		}
	}
}

func TestOptimizeMonotoneInConstraints(t *testing.T) {
	loose := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 0.5, MinThroughput: 2000}
	tight := loose
	tight.MinThroughput = 12000
	bl, _ := Optimize(DefaultCatalog(), testWorkload(), loose, 200)
	bt, _ := Optimize(DefaultCatalog(), testWorkload(), tight, 200)
	if !bl.Feasible || !bt.Feasible {
		t.Fatalf("plans infeasible: %v %v", bl.Feasible, bt.Feasible)
	}
	if bt.HourlyCost < bl.HourlyCost {
		t.Errorf("tighter constraints got cheaper: $%.2f < $%.2f", bt.HourlyCost, bl.HourlyCost)
	}
}

func TestMoreNodesLowerStaleness(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 3000}
	w := testWorkload()
	small := Evaluate(DefaultCatalog()[1], 8, w, c)
	big := Evaluate(DefaultCatalog()[1], 40, w, c)
	if big.PredStaleRate > small.PredStaleRate+1e-9 {
		t.Errorf("more nodes increased predicted staleness: %f vs %f",
			big.PredStaleRate, small.PredStaleRate)
	}
	if big.PredUtilization >= small.PredUtilization {
		t.Error("more nodes must lower utilization")
	}
}

func TestEvaluateDegenerateInputs(t *testing.T) {
	okC := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 100}
	okT := DefaultCatalog()[1]
	okW := testWorkload()
	cases := []struct {
		name string
		t    NodeType
		w    Workload
		c    Constraints
	}{
		{"zero RF", okT, okW, Constraints{RF: 0, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1}},
		{"negative RF", okT, okW, Constraints{RF: -2, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1}},
		{"zero read level", okT, okW, Constraints{RF: 3, ReadLevel: 0, WriteLevel: 1, MaxStaleRate: 1}},
		{"negative failure budget", okT, okW, Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, FailureBudget: -1}},
		{"zero service means", NodeType{Name: "broken", HourlyCost: 0.1, Concurrency: 1}, okW, okC},
		{"zero concurrency", NodeType{Name: "broken", HourlyCost: 0.1,
			ReadServiceMean: time.Millisecond, WriteServiceMean: time.Millisecond}, okW, okC},
		{"no offered load", okT, Workload{}, Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1}},
		{"read fraction above one", okT, Workload{OpsPerSecond: 100, ReadFraction: 1.5}, okC},
		{"negative write rate", okT, Workload{OpsPerSecond: 100, ReadFraction: 0.5, WriteRate: -1}, okC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Evaluate(tc.t, 10, tc.w, tc.c)
			if p.Feasible {
				t.Fatalf("degenerate input evaluated feasible: %+v", p)
			}
			if p.Verdict != VerdictInvalidInput {
				t.Errorf("verdict = %v, want VerdictInvalidInput", p.Verdict)
			}
			if p.Reason == "" {
				t.Error("infeasible plan carries no reason")
			}
			if math.IsNaN(p.PredStaleRate) || math.IsNaN(p.PredUtilization) || math.IsNaN(p.PredThroughput) {
				t.Errorf("degenerate input leaked NaN predictions: %+v", p)
			}
		})
	}
}

func TestEvaluateVerdicts(t *testing.T) {
	okT := DefaultCatalog()[1]
	w := testWorkload()
	caseC := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 50000}
	if p := Evaluate(okT, 4, w, caseC); p.Verdict != VerdictCapacity || p.Verdict.ScalingHelps() != true {
		t.Errorf("capacity verdict: %v", p.Verdict)
	}
	lvl := Constraints{RF: 3, ReadLevel: 3, WriteLevel: 1, MaxStaleRate: 1, FailureBudget: 1}
	if p := Evaluate(okT, 10, w, lvl); p.Verdict != VerdictLevelUnreachable || p.Verdict.ScalingHelps() {
		t.Errorf("level verdict: %v", p.Verdict)
	}
	okC := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 100}
	if p := Evaluate(okT, 40, w, okC); p.Verdict != VerdictOK || !p.Feasible {
		t.Errorf("ok verdict: %v feasible=%v", p.Verdict, p.Feasible)
	}
}

func TestOptimizeNoFeasiblePlan(t *testing.T) {
	// 50k ops/s cannot fit within 4 nodes of any catalog type.
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 50000}
	best, considered := Optimize(DefaultCatalog(), testWorkload(), c, 4)
	if best.Feasible {
		t.Fatalf("plan should be infeasible: %+v", best)
	}
	if best.Verdict != VerdictNoPlan {
		t.Errorf("verdict = %v, want VerdictNoPlan", best.Verdict)
	}
	if !strings.Contains(best.Reason, "no feasible plan within 4 nodes") {
		t.Errorf("reason = %q", best.Reason)
	}
	if s := best.String(); !strings.Contains(s, "no feasible plan") || strings.Contains(s, "$0.00/h") {
		t.Errorf("infeasible plan renders as a deployment: %q", s)
	}
	if len(considered) == 0 {
		t.Error("no candidates considered")
	}
}

func TestInfeasiblePlanString(t *testing.T) {
	c := Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 50000}
	p := Evaluate(DefaultCatalog()[0], 4, testWorkload(), c)
	if p.Feasible {
		t.Fatal("expected infeasible")
	}
	s := p.String()
	if !strings.Contains(s, "infeasible") || !strings.Contains(s, p.Reason) {
		t.Errorf("infeasible evaluation renders without its reason: %q", s)
	}
}

func TestPlanString(t *testing.T) {
	p := Evaluate(DefaultCatalog()[1], 10, testWorkload(),
		Constraints{RF: 3, ReadLevel: 1, WriteLevel: 1, MaxStaleRate: 1, MinThroughput: 100})
	if !strings.Contains(p.String(), "m1.large") {
		t.Errorf("plan string: %s", p.String())
	}
}
