// Package provision implements the paper's second future-work direction
// (§V): cost-efficient storage provisioning under consistency,
// performance and failure constraints. Given a workload profile, a
// consistency requirement and a node-failure budget, it searches instance
// types and cluster sizes for the cheapest deployment whose predicted
// throughput, staleness and availability meet the constraints. The
// predictions reuse the Bismar capacity model and the Harmony stale-read
// estimator over an M/M/c-flavoured queueing approximation of
// propagation delays.
package provision

import (
	"fmt"
	"math"
	"time"

	"repro/internal/harmony"
)

// NodeType is a leasable instance profile.
type NodeType struct {
	Name             string
	HourlyCost       float64
	Concurrency      int
	ReadServiceMean  time.Duration
	WriteServiceMean time.Duration
}

// DefaultCatalog is a 2013-flavoured EC2 menu.
func DefaultCatalog() []NodeType {
	return []NodeType{
		{Name: "m1.medium", HourlyCost: 0.12, Concurrency: 1,
			ReadServiceMean: 10 * time.Millisecond, WriteServiceMean: 7 * time.Millisecond},
		{Name: "m1.large", HourlyCost: 0.24, Concurrency: 2,
			ReadServiceMean: 8 * time.Millisecond, WriteServiceMean: 6 * time.Millisecond},
		{Name: "m1.xlarge", HourlyCost: 0.48, Concurrency: 4,
			ReadServiceMean: 7 * time.Millisecond, WriteServiceMean: 5 * time.Millisecond},
	}
}

// Workload is the offered load the deployment must sustain.
type Workload struct {
	OpsPerSecond float64
	ReadFraction float64
	WriteRate    float64 // writes/s relevant to a read's key (stale model input)
	BaseLatency  time.Duration
}

// Constraints bound acceptable deployments.
type Constraints struct {
	RF             int
	ReadLevel      int // replicas a read involves
	WriteLevel     int
	MaxStaleRate   float64
	MinThroughput  float64 // ops/s the cluster must sustain
	FailureBudget  int     // node failures to survive while meeting the level
	MaxUtilization float64 // headroom cap, default 0.85
}

// Verdict classifies a plan evaluation: which constraint (if any)
// rejected the candidate. Callers that react to infeasibility — the
// autoscale controller deciding whether adding nodes would even help —
// branch on it instead of parsing Reason strings.
type Verdict int

// Evaluation verdicts.
const (
	// VerdictOK: the candidate meets every constraint.
	VerdictOK Verdict = iota
	// VerdictInvalidInput: degenerate workload or constraints (RF ≤ 0,
	// zero service means, no offered load) — no size fixes this.
	VerdictInvalidInput
	// VerdictTooFewNodes: below the RF+FailureBudget floor.
	VerdictTooFewNodes
	// VerdictLevelUnreachable: the consistency level cannot survive the
	// failure budget at this RF — no size fixes this.
	VerdictLevelUnreachable
	// VerdictCapacity: predicted throughput below the requirement.
	VerdictCapacity
	// VerdictUtilization: above the utilization headroom cap.
	VerdictUtilization
	// VerdictStaleness: predicted stale rate above the tolerance.
	VerdictStaleness
	// VerdictNoPlan: an Optimize search found no feasible size.
	VerdictNoPlan
)

// ScalingHelps reports whether adding nodes can address the verdict:
// capacity, utilization and staleness all improve with cluster size,
// while invalid inputs and unreachable levels do not. A VerdictNoPlan
// search result does not say by itself — re-Evaluate at the search
// bound and ask its verdict.
func (v Verdict) ScalingHelps() bool {
	switch v {
	case VerdictTooFewNodes, VerdictCapacity, VerdictUtilization, VerdictStaleness:
		return true
	}
	return false
}

// Plan is one candidate deployment with its predictions.
type Plan struct {
	Type            NodeType
	Nodes           int
	HourlyCost      float64
	PredThroughput  float64
	PredStaleRate   float64
	PredUtilization float64
	Feasible        bool
	Verdict         Verdict
	Reason          string
}

// String renders the plan; infeasible plans say so instead of showing a
// bogus zero-node deployment.
func (p Plan) String() string {
	if !p.Feasible {
		reason := p.Reason
		if reason == "" {
			reason = "infeasible"
		}
		if p.Nodes <= 0 {
			return fmt.Sprintf("no feasible plan (%s)", reason)
		}
		return fmt.Sprintf("%d × %s ($%.2f/h): infeasible — %s",
			p.Nodes, p.Type.Name, p.HourlyCost, reason)
	}
	return fmt.Sprintf("%d × %s ($%.2f/h): thr=%.0f/s stale=%.1f%% util=%.0f%%",
		p.Nodes, p.Type.Name, p.HourlyCost, p.PredThroughput, 100*p.PredStaleRate, 100*p.PredUtilization)
}

// Evaluate predicts one candidate's behaviour against the constraints.
// Degenerate inputs — non-positive RF or levels, zero service means, no
// offered load — return an infeasible plan with VerdictInvalidInput
// instead of reaching the capacity and staleness models with NaN-prone
// values.
func Evaluate(t NodeType, nodes int, w Workload, c Constraints) Plan {
	p := Plan{Type: t, Nodes: nodes, HourlyCost: float64(nodes) * t.HourlyCost}
	if reason := degenerate(t, w, c); reason != "" {
		p.Verdict = VerdictInvalidInput
		p.Reason = reason
		return p
	}
	if nodes < c.RF+c.FailureBudget {
		p.Verdict = VerdictTooFewNodes
		p.Reason = fmt.Sprintf("needs ≥ RF+failures = %d nodes", c.RF+c.FailureBudget)
		return p
	}
	if c.RF-c.FailureBudget < c.ReadLevel || c.RF-c.FailureBudget < c.WriteLevel {
		p.Verdict = VerdictLevelUnreachable
		p.Reason = "level unreachable after tolerated failures"
		return p
	}
	maxUtil := c.MaxUtilization
	if maxUtil <= 0 {
		maxUtil = 0.85
	}

	// Capacity model: read and mutation stages, as in the store.
	slots := float64(nodes * t.Concurrency)
	readWork := w.ReadFraction * float64(c.ReadLevel) * t.ReadServiceMean.Seconds()
	writeWork := (1 - w.ReadFraction) * float64(c.RF) * t.WriteServiceMean.Seconds()
	capOps := math.Inf(1)
	if readWork > 0 {
		capOps = math.Min(capOps, slots*maxUtil/readWork)
	}
	if writeWork > 0 {
		capOps = math.Min(capOps, slots*maxUtil/writeWork)
	}
	p.PredThroughput = math.Min(capOps, math.Max(w.OpsPerSecond, c.MinThroughput))
	offered := math.Max(w.OpsPerSecond, c.MinThroughput)
	util := offered * (readWork + writeWork) / slots
	p.PredUtilization = util

	// Propagation model: base network delay inflated by M/M/1-style
	// queueing at the mutation stage.
	rho := math.Min(util, 0.98)
	queueFactor := 1 / (1 - rho)
	delays := make([]time.Duration, c.RF)
	for i := range delays {
		frac := float64(i) / float64(max(1, c.RF-1))
		net := time.Duration(float64(w.BaseLatency) * (0.2 + 0.8*frac))
		delays[i] = time.Duration(float64(net+t.WriteServiceMean) * queueFactor)
		if i > 0 && delays[i] < delays[i-1] {
			delays[i] = delays[i-1]
		}
	}
	p.PredStaleRate = harmony.StaleProb(c.RF, c.ReadLevel, c.WriteLevel, delays, w.WriteRate)

	switch {
	case capOps < c.MinThroughput:
		p.Verdict = VerdictCapacity
		p.Reason = fmt.Sprintf("capacity %.0f/s below required %.0f/s", capOps, c.MinThroughput)
	case util > maxUtil:
		p.Verdict = VerdictUtilization
		p.Reason = fmt.Sprintf("utilization %.0f%% above cap %.0f%%", 100*util, 100*maxUtil)
	case p.PredStaleRate > c.MaxStaleRate:
		p.Verdict = VerdictStaleness
		p.Reason = fmt.Sprintf("predicted stale %.1f%% above tolerated %.1f%%",
			100*p.PredStaleRate, 100*c.MaxStaleRate)
	default:
		p.Feasible = true
		p.Verdict = VerdictOK
		p.Reason = "ok"
	}
	return p
}

// UnconstrainedSize reports the smallest node count whose utilization
// fits the offered load under the headroom cap, ignoring the
// RF+FailureBudget floor and the staleness model (capacity is the only
// constraint that scales purely with node count) — how small the
// deployment *could* be if durability did not hold it up. Zero for
// degenerate inputs.
func UnconstrainedSize(t NodeType, w Workload, c Constraints) int {
	if degenerate(t, w, c) != "" {
		return 0
	}
	maxUtil := c.MaxUtilization
	if maxUtil <= 0 {
		maxUtil = 0.85
	}
	offered := math.Max(w.OpsPerSecond, c.MinThroughput)
	readWork := w.ReadFraction * float64(c.ReadLevel) * t.ReadServiceMean.Seconds()
	writeWork := (1 - w.ReadFraction) * float64(c.RF) * t.WriteServiceMean.Seconds()
	perNode := float64(t.Concurrency) * maxUtil
	n := int(math.Ceil(offered * (readWork + writeWork) / perNode))
	if n < 1 {
		n = 1
	}
	return n
}

// degenerate reports why the inputs cannot be evaluated, or "" when they
// can.
func degenerate(t NodeType, w Workload, c Constraints) string {
	switch {
	case c.RF <= 0:
		return fmt.Sprintf("invalid constraints: RF %d must be positive", c.RF)
	case c.ReadLevel <= 0 || c.WriteLevel <= 0:
		return fmt.Sprintf("invalid constraints: levels R%d/W%d must be positive", c.ReadLevel, c.WriteLevel)
	case c.FailureBudget < 0:
		return fmt.Sprintf("invalid constraints: failure budget %d is negative", c.FailureBudget)
	case t.Concurrency <= 0 || t.ReadServiceMean <= 0 || t.WriteServiceMean <= 0:
		return fmt.Sprintf("invalid node type %q: concurrency and service means must be positive", t.Name)
	case w.OpsPerSecond <= 0 && c.MinThroughput <= 0:
		return "no offered load: OpsPerSecond and MinThroughput are both zero"
	case w.ReadFraction < 0 || w.ReadFraction > 1:
		return fmt.Sprintf("invalid workload: read fraction %.2f outside [0, 1]", w.ReadFraction)
	case w.WriteRate < 0:
		return fmt.Sprintf("invalid workload: negative per-key write rate %.2f", w.WriteRate)
	}
	return ""
}

// Optimize searches the catalog for the cheapest feasible plan; maxNodes
// bounds the search (default 200). When no candidate satisfies the
// constraints the returned plan is explicitly infeasible (VerdictNoPlan,
// Reason set) rather than a zero value, so callers never render a bogus
// "0 × ($0.00/h)" deployment.
func Optimize(catalog []NodeType, w Workload, c Constraints, maxNodes int) (Plan, []Plan) {
	if maxNodes <= 0 {
		maxNodes = 200
	}
	var best Plan
	var considered []Plan
	bestSet := false
	for _, t := range catalog {
		for n := max(1, c.RF+c.FailureBudget); n <= maxNodes; n++ {
			p := Evaluate(t, n, w, c)
			considered = append(considered, p)
			if !p.Feasible {
				continue
			}
			if !bestSet || p.HourlyCost < best.HourlyCost {
				best = p
				bestSet = true
			}
			break // larger n of the same type only costs more
		}
	}
	if !bestSet {
		best = Plan{
			Verdict: VerdictNoPlan,
			Reason:  fmt.Sprintf("no feasible plan within %d nodes over %d instance types", maxNodes, len(catalog)),
		}
	}
	return best, considered
}
