package provision

// Engine-aware provisioning: the same catalog search as Optimize, run
// once per storage engine, with each engine's durability I/O priced into
// the hourly bill. Under catalogs that do not price I/O the comparison
// degenerates to instance cost alone — where a memory engine's larger
// failure budget (a crashed node loses everything it held) makes it the
// expensive option. Switching the I/O prices on can reverse that
// ranking: the LSM's WAL, fsync and compaction traffic now costs real
// dollars every hour, while the memory engine's extra node is a flat
// rent.

import (
	"fmt"

	"repro/internal/cost"
)

// EngineProfile describes one storage engine's durability behaviour for
// provisioning: its per-operation I/O rates (measure with bismar.IOPerOp
// or profile offline) and the extra node failures the deployment must
// tolerate because of how the engine loses data.
type EngineProfile struct {
	Name string

	// Per-operation storage-I/O rates; zero for a memory engine.
	WALBytesPerOp       float64
	FsyncsPerOp         float64
	CompactedBytesPerOp float64

	// ExtraFailureBudget widens Constraints.FailureBudget for this
	// engine. A memory engine sets 1: a crash is a total data loss on
	// that node, so surviving the nominal budget needs one more replica
	// standing than a durable engine does.
	ExtraFailureBudget int
}

// MemProfile is the in-memory engine: no durability I/O, one extra
// failure to budget for.
func MemProfile() EngineProfile {
	return EngineProfile{Name: "mem", ExtraFailureBudget: 1}
}

// LSMProfile is the log-structured engine with measured (or assumed)
// per-op I/O rates.
func LSMProfile(walBytes, fsyncs, compactedBytes float64) EngineProfile {
	return EngineProfile{
		Name:                "lsm",
		WALBytesPerOp:       walBytes,
		FsyncsPerOp:         fsyncs,
		CompactedBytesPerOp: compactedBytes,
	}
}

// EngineChoice is one engine's best plan with its priced bill.
type EngineChoice struct {
	Profile     EngineProfile
	Plan        Plan
	IOHourly    float64 // dollars/hour of durability I/O at the offered load
	TotalHourly float64 // Plan.HourlyCost + IOHourly
}

// String renders the choice for reports.
func (e EngineChoice) String() string {
	if !e.Plan.Feasible {
		return fmt.Sprintf("%s: %s", e.Profile.Name, e.Plan)
	}
	return fmt.Sprintf("%s: %s + io $%.4f/h = $%.4f/h",
		e.Profile.Name, e.Plan, e.IOHourly, e.TotalHourly)
}

// ioHourly prices one hour of the profile's durability traffic at the
// offered load under the catalog.
func ioHourly(p EngineProfile, w Workload, c Constraints, pricing cost.Pricing) float64 {
	offered := w.OpsPerSecond
	if offered < c.MinThroughput {
		offered = c.MinThroughput
	}
	opsPerHour := offered * 3600
	u := cost.Usage{
		WALBytes:       p.WALBytesPerOp * opsPerHour,
		Fsyncs:         p.FsyncsPerOp * opsPerHour,
		CompactedBytes: p.CompactedBytesPerOp * opsPerHour,
	}
	return pricing.BillFor(u).IO
}

// OptimizeEngines runs the Optimize search once per engine profile and
// ranks the feasible results by total hourly cost (instances + priced
// durability I/O). Ties keep the earlier profile, so callers control
// the preference order and the result is deterministic. The returned
// slice holds every engine's choice in profile order; the best choice
// is infeasible (VerdictNoPlan) only when no engine has a feasible plan.
func OptimizeEngines(catalog []NodeType, profiles []EngineProfile, w Workload, c Constraints, maxNodes int, pricing cost.Pricing) (EngineChoice, []EngineChoice) {
	var best EngineChoice
	bestSet := false
	choices := make([]EngineChoice, 0, len(profiles))
	for _, prof := range profiles {
		ec := c
		ec.FailureBudget += prof.ExtraFailureBudget
		plan, _ := Optimize(catalog, w, ec, maxNodes)
		choice := EngineChoice{Profile: prof, Plan: plan}
		if plan.Feasible {
			choice.IOHourly = ioHourly(prof, w, c, pricing)
			choice.TotalHourly = plan.HourlyCost + choice.IOHourly
		}
		choices = append(choices, choice)
		if plan.Feasible && (!bestSet || choice.TotalHourly < best.TotalHourly) {
			best = choice
			bestSet = true
		}
	}
	if !bestSet {
		best = EngineChoice{Plan: Plan{
			Verdict: VerdictNoPlan,
			Reason:  fmt.Sprintf("no engine has a feasible plan over %d profiles", len(profiles)),
		}}
	}
	return best, choices
}
