package provision

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
)

// engineWorkload is sized so capacity fits inside the LSM's durability
// floor (RF+FailureBudget = 4 m1.mediums) while the memory engine's
// wider budget forces a fifth node — the base-pricing gap the I/O
// prices must overcome.
func engineWorkload() (Workload, Constraints) {
	w := Workload{
		OpsPerSecond: 300,
		ReadFraction: 0.9,
		WriteRate:    0.5,
		BaseLatency:  2 * time.Millisecond,
	}
	c := Constraints{
		RF: 3, ReadLevel: 1, WriteLevel: 1,
		MaxStaleRate:  1, // staleness out of scope here
		FailureBudget: 1,
	}
	return w, c
}

func engineProfiles() []EngineProfile {
	return []EngineProfile{
		MemProfile(),
		LSMProfile(4096, 0.05, 8192),
	}
}

func TestOptimizeEnginesBaseFavorsDurable(t *testing.T) {
	w, c := engineWorkload()
	best, choices := OptimizeEngines(DefaultCatalog(), engineProfiles(), w, c, 0, cost.EC2East2013())
	if len(choices) != 2 {
		t.Fatalf("choices = %d, want 2", len(choices))
	}
	for _, ch := range choices {
		if !ch.Plan.Feasible {
			t.Fatalf("%s infeasible: %s", ch.Profile.Name, ch.Plan)
		}
		// Base catalog: durability traffic is free for both engines.
		if ch.IOHourly != 0 {
			t.Errorf("%s billed $%.4f/h of I/O under a catalog without I/O prices", ch.Profile.Name, ch.IOHourly)
		}
	}
	mem, lsm := choices[0], choices[1]
	if mem.Plan.Nodes != lsm.Plan.Nodes+1 {
		t.Errorf("mem needs %d nodes, lsm %d; want exactly one extra for the crash budget",
			mem.Plan.Nodes, lsm.Plan.Nodes)
	}
	if best.Profile.Name != "lsm" {
		t.Errorf("base pricing chose %s, want lsm (fewer nodes, free I/O)", best.Profile.Name)
	}
	if best.TotalHourly != best.Plan.HourlyCost {
		t.Errorf("total $%.4f != instance $%.4f with I/O free", best.TotalHourly, best.Plan.HourlyCost)
	}
}

func TestOptimizeEnginesIOPricingReversesRanking(t *testing.T) {
	w, c := engineWorkload()
	pricing := cost.EC2East2013().WithStorageIO()
	best, choices := OptimizeEngines(DefaultCatalog(), engineProfiles(), w, c, 0, pricing)
	mem, lsm := choices[0], choices[1]
	if mem.IOHourly != 0 {
		t.Errorf("memory engine billed $%.4f/h of I/O", mem.IOHourly)
	}
	if lsm.IOHourly <= 0 {
		t.Fatalf("lsm I/O hourly = %f, want positive", lsm.IOHourly)
	}
	// The same plans as under base pricing — only the bill moved.
	if mem.Plan.Nodes != lsm.Plan.Nodes+1 {
		t.Errorf("plans changed under I/O pricing: mem %d nodes, lsm %d", mem.Plan.Nodes, lsm.Plan.Nodes)
	}
	if lsm.TotalHourly <= mem.TotalHourly {
		t.Errorf("lsm $%.4f/h not above mem $%.4f/h; I/O prices did not bite", lsm.TotalHourly, mem.TotalHourly)
	}
	if best.Profile.Name != "mem" {
		t.Errorf("I/O pricing chose %s, want mem (reversal)", best.Profile.Name)
	}
	if got := best.String(); !strings.Contains(got, "mem:") || !strings.Contains(got, "io $") {
		t.Errorf("choice renders %q", got)
	}
}

func TestOptimizeEnginesDeterministic(t *testing.T) {
	w, c := engineWorkload()
	pricing := cost.EC2East2013().WithStorageIO()
	bestA, chA := OptimizeEngines(DefaultCatalog(), engineProfiles(), w, c, 0, pricing)
	bestB, chB := OptimizeEngines(DefaultCatalog(), engineProfiles(), w, c, 0, pricing)
	if !reflect.DeepEqual(bestA, bestB) || !reflect.DeepEqual(chA, chB) {
		t.Error("engine optimization is not deterministic across runs")
	}
}

func TestOptimizeEnginesTieKeepsOrder(t *testing.T) {
	// Two identical zero-I/O profiles: same plan, same bill — the earlier
	// profile must win so callers' preference order decides ties.
	w, c := engineWorkload()
	profiles := []EngineProfile{{Name: "first"}, {Name: "second"}}
	best, _ := OptimizeEngines(DefaultCatalog(), profiles, w, c, 0, cost.EC2East2013())
	if best.Profile.Name != "first" {
		t.Errorf("tie broken to %s, want first", best.Profile.Name)
	}
}

func TestOptimizeEnginesNoPlan(t *testing.T) {
	w, c := engineWorkload()
	c.RF = 0 // degenerate for every engine
	best, choices := OptimizeEngines(DefaultCatalog(), engineProfiles(), w, c, 0, cost.EC2East2013())
	if best.Plan.Feasible || best.Plan.Verdict != VerdictNoPlan {
		t.Errorf("degenerate constraints produced %+v", best.Plan)
	}
	for _, ch := range choices {
		if ch.Plan.Feasible {
			t.Errorf("%s feasible under RF 0", ch.Profile.Name)
		}
		if ch.TotalHourly != 0 || ch.IOHourly != 0 {
			t.Errorf("%s billed an infeasible plan", ch.Profile.Name)
		}
	}
	if got := best.String(); !strings.Contains(got, "no feasible plan") {
		t.Errorf("no-plan choice renders %q", got)
	}
}
