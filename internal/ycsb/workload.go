// Package ycsb reimplements the core of the Yahoo! Cloud Serving
// Benchmark used throughout the paper's evaluation: the standard workload
// mixes (A–D, F, plus the paper's heavy read-update workload), YCSB's key
// popularity distributions, and closed- and open-loop client drivers with
// latency/throughput/staleness accounting.
package ycsb

import (
	"fmt"
	"strconv"

	"repro/internal/stats"
)

// OpKind enumerates the operation types of the core workloads.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpReadModifyWrite
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpReadModifyWrite:
		return "rmw"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Distribution selects the key-popularity law.
type Distribution int

// Key distributions, as in YCSB's requestdistribution property.
const (
	DistZipfian Distribution = iota // scrambled zipfian over the record space
	DistUniform
	DistLatest // skewed toward recently inserted records
)

// Workload is a YCSB workload definition.
type Workload struct {
	Name        string
	RecordCount uint64 // records loaded before the run
	ValueSize   int    // bytes per value

	// Operation mix; proportions must sum to ≤ 1, the remainder being
	// reads.
	ReadProportion   float64
	UpdateProportion float64
	InsertProportion float64
	RMWProportion    float64

	Dist      Distribution
	ZipfTheta float64

	KeyPrefix string
}

// Validate checks the mix sums and fills defaults.
func (w *Workload) Validate() error {
	if w.RecordCount == 0 {
		return fmt.Errorf("ycsb: workload %q has no records", w.Name)
	}
	sum := w.ReadProportion + w.UpdateProportion + w.InsertProportion + w.RMWProportion
	if sum > 1.0001 {
		return fmt.Errorf("ycsb: workload %q proportions sum to %.3f > 1", w.Name, sum)
	}
	if w.ValueSize <= 0 {
		w.ValueSize = 1024
	}
	if w.ZipfTheta == 0 {
		w.ZipfTheta = stats.ZipfTheta
	}
	if w.KeyPrefix == "" {
		w.KeyPrefix = "user"
	}
	return nil
}

// Standard workloads. Value size defaults to 1 KB (YCSB uses 10 fields of
// 100 bytes).

// WorkloadA is the update-heavy mix: 50% reads, 50% updates, zipfian.
// It is the paper's "heavy read-update workload".
func WorkloadA(records uint64) Workload {
	return Workload{Name: "A", RecordCount: records,
		ReadProportion: 0.5, UpdateProportion: 0.5, Dist: DistZipfian}
}

// WorkloadB is the read-mostly mix: 95% reads, 5% updates, zipfian.
func WorkloadB(records uint64) Workload {
	return Workload{Name: "B", RecordCount: records,
		ReadProportion: 0.95, UpdateProportion: 0.05, Dist: DistZipfian}
}

// WorkloadC is read-only, zipfian.
func WorkloadC(records uint64) Workload {
	return Workload{Name: "C", RecordCount: records,
		ReadProportion: 1.0, Dist: DistZipfian}
}

// WorkloadD is read-latest: 95% reads, 5% inserts, latest distribution.
func WorkloadD(records uint64) Workload {
	return Workload{Name: "D", RecordCount: records,
		ReadProportion: 0.95, InsertProportion: 0.05, Dist: DistLatest}
}

// WorkloadF is read-modify-write: 50% reads, 50% RMW, zipfian.
func WorkloadF(records uint64) Workload {
	return Workload{Name: "F", RecordCount: records,
		ReadProportion: 0.5, RMWProportion: 0.5, Dist: DistZipfian}
}

// HeavyReadUpdate is the paper's evaluation workload: an update-heavy
// read/update mix over a zipfian-popular record space (YCSB workload A).
func HeavyReadUpdate(records uint64) Workload {
	w := WorkloadA(records)
	w.Name = "heavy-read-update"
	return w
}

// Mix returns a copy of w with a custom read/update split (used by the
// Bismar access-pattern sweeps).
func Mix(records uint64, readProp float64, dist Distribution, theta float64) Workload {
	return Workload{
		Name:           fmt.Sprintf("mix-r%.2f", readProp),
		RecordCount:    records,
		ReadProportion: readProp, UpdateProportion: 1 - readProp,
		Dist: dist, ZipfTheta: theta,
	}
}

// keyspace produces key names and popularity draws for a workload.
type keyspace struct {
	w       Workload
	zipf    *stats.ScrambledZipfian
	latest  *stats.Latest
	inserts uint64 // records inserted beyond RecordCount
	cache   []string
}

const keyCacheLimit = 1 << 22

func newKeyspace(w Workload) *keyspace {
	ks := &keyspace{w: w}
	switch w.Dist {
	case DistZipfian:
		ks.zipf = stats.NewScrambledZipfian(w.RecordCount, w.ZipfTheta)
	case DistLatest:
		ks.latest = stats.NewLatest(w.RecordCount, w.ZipfTheta)
	}
	if w.RecordCount <= keyCacheLimit {
		ks.cache = make([]string, w.RecordCount)
	}
	return ks
}

// Key formats record id i as a YCSB-style key.
func (ks *keyspace) Key(i uint64) string {
	if ks.cache != nil && i < uint64(len(ks.cache)) {
		if k := ks.cache[i]; k != "" {
			return k
		}
	}
	b := make([]byte, 0, len(ks.w.KeyPrefix)+12)
	b = append(b, ks.w.KeyPrefix...)
	s := strconv.FormatUint(i, 10)
	for pad := 12 - len(s); pad > 0; pad-- {
		b = append(b, '0')
	}
	b = append(b, s...)
	k := string(b)
	if ks.cache != nil && i < uint64(len(ks.cache)) {
		ks.cache[i] = k
	}
	return k
}

// NextKey draws a key according to the workload distribution.
func (ks *keyspace) NextKey(src *stats.Source) string {
	total := ks.w.RecordCount + ks.inserts
	switch ks.w.Dist {
	case DistUniform:
		return ks.Key(src.Uint64N(total))
	case DistLatest:
		return ks.Key(ks.latest.Next(src))
	default:
		// The scrambled zipfian domain is the initially loaded records;
		// later inserts join the uniform tail implicitly.
		return ks.Key(ks.zipf.Next(src))
	}
}

// InsertKey allocates the next inserted record's key.
func (ks *keyspace) InsertKey() string {
	id := ks.w.RecordCount + ks.inserts
	ks.inserts++
	if ks.latest != nil {
		ks.latest.Advance(1)
	}
	return ks.Key(id)
}

// NextOp draws the next operation kind from the mix.
func (w Workload) NextOp(src *stats.Source) OpKind {
	u := src.Float64()
	switch {
	case u < w.UpdateProportion:
		return OpUpdate
	case u < w.UpdateProportion+w.InsertProportion:
		return OpInsert
	case u < w.UpdateProportion+w.InsertProportion+w.RMWProportion:
		return OpReadModifyWrite
	default:
		return OpRead
	}
}
