package ycsb

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/stats"
)

func TestWorkloadValidate(t *testing.T) {
	w := WorkloadA(100)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.ValueSize != 1024 || w.ZipfTheta != stats.ZipfTheta || w.KeyPrefix != "user" {
		t.Errorf("defaults not filled: %+v", w)
	}
	bad := Workload{Name: "bad", RecordCount: 10, ReadProportion: 0.9, UpdateProportion: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("over-1 mix accepted")
	}
	empty := Workload{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("zero records accepted")
	}
}

func TestWorkloadMixProportions(t *testing.T) {
	w := WorkloadB(1000) // 95% reads, 5% updates
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	src := stats.NewSource(1)
	counts := map[OpKind]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[w.NextOp(src)]++
	}
	readFrac := float64(counts[OpRead]) / draws
	if readFrac < 0.94 || readFrac > 0.96 {
		t.Errorf("read fraction %f, want ≈0.95", readFrac)
	}
	if counts[OpInsert] != 0 || counts[OpReadModifyWrite] != 0 {
		t.Error("workload B drew inserts or RMWs")
	}
}

func TestStandardWorkloadShapes(t *testing.T) {
	cases := []struct {
		w    Workload
		kind OpKind
	}{
		{WorkloadD(100), OpInsert},
		{WorkloadF(100), OpReadModifyWrite},
	}
	for _, c := range cases {
		if err := c.w.Validate(); err != nil {
			t.Fatal(err)
		}
		src := stats.NewSource(2)
		found := false
		for i := 0; i < 1000; i++ {
			if c.w.NextOp(src) == c.kind {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("workload %s never drew %v", c.w.Name, c.kind)
		}
	}
	if HeavyReadUpdate(10).UpdateProportion != 0.5 {
		t.Error("heavy read-update is not 50/50")
	}
	m := Mix(10, 0.7, DistUniform, 0.9)
	if m.ReadProportion != 0.7 || m.UpdateProportion < 0.299 || m.UpdateProportion > 0.301 {
		t.Errorf("mix wrong: %+v", m)
	}
}

func TestKeyspaceFormatting(t *testing.T) {
	w := WorkloadC(100)
	w.Validate()
	ks := newKeyspace(w)
	k := ks.Key(7)
	if k != "user000000000007" {
		t.Errorf("key = %q", k)
	}
	if ks.Key(7) != k {
		t.Error("cache returned different key")
	}
	if !strings.HasPrefix(ks.Key(99), "user") {
		t.Error("prefix lost")
	}
}

func TestKeyspaceInsertAdvancesDomain(t *testing.T) {
	w := WorkloadD(100)
	w.Validate()
	ks := newKeyspace(w)
	k := ks.InsertKey()
	if k != ks.Key(100) {
		t.Errorf("first insert key = %q", k)
	}
	k2 := ks.InsertKey()
	if k2 != ks.Key(101) {
		t.Errorf("second insert key = %q", k2)
	}
	// Latest distribution must now be able to draw the inserted keys.
	src := stats.NewSource(3)
	sawNew := false
	for i := 0; i < 10000; i++ {
		if ks.NextKey(src) >= ks.Key(100) {
			sawNew = true
			break
		}
	}
	if !sawNew {
		t.Error("latest distribution never drew inserted keys")
	}
}

// fakeStore is an instant in-process Session for driver tests: every
// operation completes synchronously after advancing the fake clock.
type fakeStore struct {
	clock  *fakeClock
	reads  int
	writes int
	stale  bool
	err    error
	lat    time.Duration
}

type fakeClock struct {
	now   time.Duration
	queue []fakeEvent
}

type fakeEvent struct {
	at time.Duration
	fn func()
}

func (c *fakeClock) Now() time.Duration { return c.now }
func (c *fakeClock) Schedule(d time.Duration, fn func()) {
	c.queue = append(c.queue, fakeEvent{at: c.now + d, fn: fn})
}

// run processes queued events in arrival order.
func (c *fakeClock) run() {
	for len(c.queue) > 0 {
		e := c.queue[0]
		c.queue = c.queue[1:]
		if e.at > c.now {
			c.now = e.at
		}
		e.fn()
	}
}

func (s *fakeStore) Read(key string, cb func(res kv.ReadResult)) {
	s.reads++
	s.clock.now += s.lat
	cb(kv.ReadResult{Key: key, Latency: s.lat, Stale: s.stale, Exists: true, Err: s.err})
}

func (s *fakeStore) Write(key string, value []byte, cb func(res kv.WriteResult)) {
	s.writes++
	s.clock.now += s.lat
	cb(kv.WriteResult{Key: key, Latency: s.lat, Err: s.err})
}

func (s *fakeStore) Delete(key string, cb func(res kv.WriteResult)) {
	s.Write(key, nil, cb)
}

func (s *fakeStore) BatchRead(keys []string, cb func([]kv.ReadResult)) {
	out := make([]kv.ReadResult, len(keys))
	s.clock.now += s.lat // one round trip for the whole batch
	for i, k := range keys {
		s.reads++
		out[i] = kv.ReadResult{Key: k, Latency: s.lat, Stale: s.stale, Exists: true, Err: s.err}
	}
	cb(out)
}

func (s *fakeStore) BatchWrite(ops []kv.BatchOp, cb func([]kv.WriteResult)) {
	out := make([]kv.WriteResult, len(ops))
	s.clock.now += s.lat
	for i, op := range ops {
		s.writes++
		out[i] = kv.WriteResult{Key: op.Key, Latency: s.lat, Err: s.err}
	}
	cb(out)
}

func TestRunnerClosedLoopCompletesExactly(t *testing.T) {
	clock := &fakeClock{}
	store := &fakeStore{clock: clock, lat: time.Millisecond}
	r, err := NewRunner(store, WorkloadA(100), clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.OpCount = 1000
	r.Threads = 8
	r.Start()
	clock.run()
	if !r.Finished() {
		t.Fatal("runner did not finish")
	}
	m := r.Metrics()
	if m.Ops != 1000 {
		t.Errorf("measured ops = %d", m.Ops)
	}
	if store.reads+store.writes != 1000 {
		t.Errorf("store saw %d ops", store.reads+store.writes)
	}
	if m.Throughput() <= 0 {
		t.Error("no throughput computed")
	}
}

func TestRunnerWarmupExcluded(t *testing.T) {
	clock := &fakeClock{}
	store := &fakeStore{clock: clock, lat: time.Millisecond}
	r, _ := NewRunner(store, WorkloadC(100), clock, 1)
	r.OpCount = 500
	r.Threads = 4
	r.WarmupOps = 100
	r.Start()
	clock.run()
	if m := r.Metrics(); m.Ops != 400 {
		t.Errorf("measured ops = %d, want 400 after warmup", m.Ops)
	}
}

func TestRunnerCountsStaleAndErrors(t *testing.T) {
	clock := &fakeClock{}
	store := &fakeStore{clock: clock, lat: time.Millisecond, stale: true}
	r, _ := NewRunner(store, WorkloadC(100), clock, 1)
	r.OpCount = 100
	r.Threads = 2
	r.Start()
	clock.run()
	m := r.Metrics()
	if m.StaleReads != 100 || m.StaleRate() != 1 {
		t.Errorf("stale accounting: %d (%f)", m.StaleReads, m.StaleRate())
	}

	clock2 := &fakeClock{}
	store2 := &fakeStore{clock: clock2, lat: time.Millisecond, err: kv.ErrTimeout}
	r2, _ := NewRunner(store2, WorkloadA(100), clock2, 1)
	r2.OpCount = 100
	r2.Threads = 2
	r2.Start()
	clock2.run()
	if got := r2.Metrics().Timeouts; got != 100 {
		t.Errorf("timeouts = %d", got)
	}
}

func TestRunnerRMWIssuesReadAndWrite(t *testing.T) {
	clock := &fakeClock{}
	store := &fakeStore{clock: clock, lat: time.Millisecond}
	w := Workload{Name: "rmw", RecordCount: 50, RMWProportion: 1.0}
	r, _ := NewRunner(store, w, clock, 1)
	r.OpCount = 100
	r.Threads = 2
	r.Start()
	clock.run()
	if store.reads != 100 || store.writes != 100 {
		t.Errorf("RMW issued %d reads, %d writes; want 100/100", store.reads, store.writes)
	}
	if m := r.Metrics(); m.RMWs != 100 {
		t.Errorf("RMW count = %d", m.RMWs)
	}
}

func TestRunnerOpenLoopRate(t *testing.T) {
	clock := &fakeClock{}
	store := &fakeStore{clock: clock, lat: 0}
	r, _ := NewRunner(store, WorkloadC(1000), clock, 1)
	r.OpCount = 2000
	r.OpenLoopRate = 1000 // ops/s
	r.Start()
	clock.run()
	if !r.Finished() {
		t.Fatal("open loop did not finish")
	}
	m := r.Metrics()
	elapsed := m.Elapsed().Seconds()
	if elapsed < 1.5 || elapsed > 2.6 {
		t.Errorf("2000 ops at 1000/s took %.2fs, want ≈2s", elapsed)
	}
}

func TestRunnerRejectsBadWorkload(t *testing.T) {
	clock := &fakeClock{}
	if _, err := NewRunner(&fakeStore{clock: clock}, Workload{Name: "x"}, clock, 1); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestMetricsString(t *testing.T) {
	var m Metrics
	if !strings.Contains(m.String(), "ops=0") {
		t.Errorf("metrics string: %s", m.String())
	}
}

func TestRunnerBatchedModeCompletesExactly(t *testing.T) {
	clock := &fakeClock{}
	store := &fakeStore{clock: clock, lat: time.Millisecond}
	r, err := NewRunner(store, WorkloadA(100), clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.OpCount = 1000
	r.Threads = 8
	r.BatchSize = 16 // does not divide 1000: the tail batch must shrink
	r.Start()
	clock.run()
	if !r.Finished() {
		t.Fatal("batched runner did not finish")
	}
	m := r.Metrics()
	if m.Ops != 1000 {
		t.Errorf("measured ops = %d", m.Ops)
	}
	if store.reads+store.writes != 1000 {
		t.Errorf("store saw %d item ops", store.reads+store.writes)
	}
}

func TestRunnerBatchedRMWAndInserts(t *testing.T) {
	clock := &fakeClock{}
	store := &fakeStore{clock: clock, lat: time.Millisecond}
	r, _ := NewRunner(store, WorkloadF(100), clock, 1) // 50% RMW
	r.OpCount = 400
	r.Threads = 4
	r.BatchSize = 8
	r.Start()
	clock.run()
	if !r.Finished() {
		t.Fatal("runner did not finish")
	}
	m := r.Metrics()
	if m.Ops != 400 {
		t.Errorf("ops = %d", m.Ops)
	}
	if m.RMWs == 0 {
		t.Error("no RMWs recorded in batched mode")
	}
	d, _ := NewRunner(store, WorkloadD(100), clock, 1) // 5% inserts
	d.OpCount = 400
	d.Threads = 4
	d.BatchSize = 8
	d.Start()
	clock.run()
	if !d.Finished() || d.Metrics().Inserts == 0 {
		t.Errorf("batched inserts: finished=%v inserts=%d", d.Finished(), d.Metrics().Inserts)
	}
}
