package ycsb

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/kv"
	"repro/internal/stats"
)

// Clock is the scheduling surface the runner needs; netsim.Transport and
// the live engine both provide it.
type Clock interface {
	Now() time.Duration
	Schedule(d time.Duration, fn func())
}

// Metrics aggregates a run's client-side measurements. Staleness tallies
// come from the oracle verdicts carried in read results.
type Metrics struct {
	ReadLat  stats.Histogram
	WriteLat stats.Histogram

	Ops     uint64
	Reads   uint64
	Writes  uint64
	Inserts uint64
	RMWs    uint64

	StaleReads  uint64
	FreshReads  uint64
	Timeouts    uint64
	Unavailable uint64

	Start time.Duration
	End   time.Duration
}

// Elapsed reports the measured interval.
func (m *Metrics) Elapsed() time.Duration { return m.End - m.Start }

// Throughput reports measured operations per second.
func (m *Metrics) Throughput() float64 {
	e := m.Elapsed()
	if e <= 0 {
		return 0
	}
	return float64(m.Ops) / e.Seconds()
}

// StaleRate reports the fraction of successful reads that returned stale
// data.
func (m *Metrics) StaleRate() float64 {
	t := m.StaleReads + m.FreshReads
	if t == 0 {
		return 0
	}
	return float64(m.StaleReads) / float64(t)
}

// String renders a one-line summary.
func (m *Metrics) String() string {
	return fmt.Sprintf("ops=%d thr=%.0f/s stale=%.2f%% readLat{%v} writeLat{%v} to=%d unav=%d",
		m.Ops, m.Throughput(), 100*m.StaleRate(), m.ReadLat.String(), m.WriteLat.String(),
		m.Timeouts, m.Unavailable)
}

// Runner drives a workload against a session. Closed-loop mode models
// YCSB's client threads (each thread issues its next operation when the
// previous one completes); open-loop mode models a fixed arrival rate.
type Runner struct {
	Session  kv.Session
	Workload Workload
	Clock    Clock

	Threads      int
	OpCount      uint64
	WarmupOps    uint64  // completions ignored before measurement starts
	OpenLoopRate float64 // ops/s; 0 selects closed-loop mode
	BatchSize    int     // >1 dispatches multi-key batches instead of single ops
	OnDone       func()  // optional completion callback

	ks        *keyspace
	value     []byte
	rngs      []*stats.Source
	arriveRNG *stats.Source

	issued    uint64
	completed uint64
	measuring bool
	finished  bool
	m         Metrics
}

// NewRunner validates the workload and prepares a runner.
func NewRunner(sess kv.Session, w Workload, clock Clock, seed uint64) (*Runner, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		Session:  sess,
		Workload: w,
		Clock:    clock,
		Threads:  16,
		OpCount:  10_000,
		ks:       newKeyspace(w),
	}
	root := stats.NewSource(seed).Stream("ycsb")
	r.arriveRNG = root.Stream("arrivals")
	r.value = make([]byte, w.ValueSize)
	vr := root.Stream("values")
	for i := range r.value {
		r.value[i] = byte(vr.UintN(256))
	}
	return r, nil
}

// Keys returns the key generator (preloading and tests).
func (r *Runner) Keys(i uint64) string { return r.ks.Key(i) }

// Value returns the constant value payload used for writes.
func (r *Runner) Value() []byte { return r.value }

// Metrics returns the measured aggregates; valid once Finished.
func (r *Runner) Metrics() *Metrics { return &r.m }

// Finished reports whether every operation has completed.
func (r *Runner) Finished() bool { return r.finished }

// Start begins issuing operations.
func (r *Runner) Start() {
	if r.Threads <= 0 {
		r.Threads = 1
	}
	r.rngs = make([]*stats.Source, r.Threads)
	for i := range r.rngs {
		r.rngs[i] = r.arriveRNG.StreamN("thread", i)
	}
	if r.WarmupOps == 0 {
		r.beginMeasurement()
	}
	if r.OpenLoopRate > 0 {
		r.scheduleArrival()
		return
	}
	for t := 0; t < r.Threads; t++ {
		r.issueNext(t)
	}
}

func (r *Runner) beginMeasurement() {
	r.measuring = true
	r.m.Start = r.Clock.Now()
}

// scheduleArrival drives open-loop Poisson arrivals. In batched mode
// each arrival dispatches a whole batch, so the inter-arrival gap
// stretches by the batch size to keep OpenLoopRate in items per second.
func (r *Runner) scheduleArrival() {
	if r.issued >= r.OpCount {
		return
	}
	mean := float64(time.Second) / r.OpenLoopRate
	if r.BatchSize > 1 {
		mean *= float64(r.BatchSize)
	}
	gap := stats.Exponential(r.arriveRNG, time.Duration(mean))
	r.Clock.Schedule(gap, func() {
		if r.issued < r.OpCount {
			r.issueOp(r.rngs[int(r.issued)%r.Threads], -1)
			r.scheduleArrival()
		}
	})
}

// issueNext continues a closed-loop thread.
func (r *Runner) issueNext(thread int) {
	if r.issued >= r.OpCount {
		return
	}
	r.issueOp(r.rngs[thread], thread)
}

// issueOp draws and dispatches one operation (or one multi-key batch in
// batched mode); thread ≥ 0 re-issues on completion (closed loop).
func (r *Runner) issueOp(rng *stats.Source, thread int) {
	if r.BatchSize > 1 {
		r.issueBatch(rng, thread)
		return
	}
	r.issued++
	kind := r.Workload.NextOp(rng)
	switch kind {
	case OpRead:
		key := r.ks.NextKey(rng)
		r.Session.Read(key, func(res kv.ReadResult) {
			r.onRead(res)
			r.opDone(thread)
		})
	case OpUpdate:
		key := r.ks.NextKey(rng)
		r.Session.Write(key, r.value, func(res kv.WriteResult) {
			r.onWrite(res)
			r.opDone(thread)
		})
	case OpInsert:
		key := r.ks.InsertKey()
		r.Session.Write(key, r.value, func(res kv.WriteResult) {
			r.onWrite(res)
			if r.measuring {
				r.m.Inserts++
			}
			r.opDone(thread)
		})
	case OpReadModifyWrite:
		key := r.ks.NextKey(rng)
		r.Session.Read(key, func(res kv.ReadResult) {
			r.onRead(res)
			r.Session.Write(key, r.value, func(wres kv.WriteResult) {
				r.onWrite(wres)
				if r.measuring {
					r.m.RMWs++
				}
				r.opDone(thread)
			})
		})
	}
}

// issueBatch dispatches one multi-key batch of BatchSize operations of
// a single drawn kind — the batched workload mode. Every item counts as
// one operation in the metrics; the whole batch is one store round trip.
func (r *Runner) issueBatch(rng *stats.Source, thread int) {
	k := r.BatchSize
	if rem := r.OpCount - r.issued; uint64(k) > rem {
		k = int(rem)
	}
	r.issued += uint64(k)
	kind := r.Workload.NextOp(rng)
	switch kind {
	case OpRead:
		r.Session.BatchRead(r.drawKeys(rng, k), func(res []kv.ReadResult) {
			for _, rr := range res {
				r.onRead(rr)
			}
			r.batchDone(k, thread)
		})
	case OpUpdate, OpInsert:
		ops := make([]kv.BatchOp, k)
		for i := range ops {
			var key string
			if kind == OpInsert {
				key = r.ks.InsertKey()
			} else {
				key = r.ks.NextKey(rng)
			}
			ops[i] = kv.BatchOp{Key: key, Value: r.value}
		}
		r.Session.BatchWrite(ops, func(res []kv.WriteResult) {
			for _, wr := range res {
				r.onWrite(wr)
			}
			if kind == OpInsert && r.measuring {
				r.m.Inserts += uint64(k)
			}
			r.batchDone(k, thread)
		})
	case OpReadModifyWrite:
		keys := r.drawKeys(rng, k)
		r.Session.BatchRead(keys, func(res []kv.ReadResult) {
			for _, rr := range res {
				r.onRead(rr)
			}
			ops := make([]kv.BatchOp, len(keys))
			for i, key := range keys {
				ops[i] = kv.BatchOp{Key: key, Value: r.value}
			}
			r.Session.BatchWrite(ops, func(wres []kv.WriteResult) {
				for _, wr := range wres {
					r.onWrite(wr)
				}
				if r.measuring {
					r.m.RMWs += uint64(k)
				}
				r.batchDone(k, thread)
			})
		})
	}
}

func (r *Runner) drawKeys(rng *stats.Source, k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = r.ks.NextKey(rng)
	}
	return keys
}

// batchDone closes out a whole batch's operations through the single-op
// accounting, reissuing the thread only once (on the last item).
func (r *Runner) batchDone(k, thread int) {
	for i := 0; i < k-1; i++ {
		r.opDone(-1)
	}
	r.opDone(thread)
}

func (r *Runner) onRead(res kv.ReadResult) {
	if !r.measuring {
		return
	}
	r.m.Reads++
	if res.Err != nil {
		r.countError(res.Err)
		return
	}
	r.m.ReadLat.Record(res.Latency)
	if res.Stale {
		r.m.StaleReads++
	} else {
		r.m.FreshReads++
	}
}

func (r *Runner) onWrite(res kv.WriteResult) {
	if !r.measuring {
		return
	}
	r.m.Writes++
	if res.Err != nil {
		r.countError(res.Err)
		return
	}
	r.m.WriteLat.Record(res.Latency)
}

func (r *Runner) countError(err error) {
	switch {
	case errors.Is(err, kv.ErrTimeout):
		r.m.Timeouts++
	case errors.Is(err, kv.ErrUnavailable):
		r.m.Unavailable++
	}
}

// opDone closes out one operation and keeps the loop going.
func (r *Runner) opDone(thread int) {
	r.completed++
	if r.measuring {
		r.m.Ops++
		r.m.End = r.Clock.Now()
	} else if r.completed >= r.WarmupOps {
		r.beginMeasurement()
	}
	if r.completed >= r.OpCount {
		if !r.finished {
			r.finished = true
			if r.OnDone != nil {
				r.OnDone()
			}
		}
		return
	}
	if thread >= 0 {
		r.issueNext(thread)
	}
}
