package kv

import "sync"

// Message pools for the high-volume per-replica fan-out types. Every
// Network.Send boxes its payload into an interface; for the messages that
// travel once per replica per operation (reads, writes, their acks) and
// the per-work-unit self-messages, that boxing dominated simulator
// allocations. Senders take a box from the pool, receivers copy the value
// out in Handle and return the box before dispatching — so the box never
// outlives one delivery and the steady-state message path allocates
// nothing. sync.Pool keeps this safe for the live engine too, where
// handlers run on timer goroutines.
var (
	clientReadPool      = sync.Pool{New: func() any { return new(clientRead) }}
	clientWritePool     = sync.Pool{New: func() any { return new(clientWrite) }}
	clientReadReplyPool = sync.Pool{New: func() any { return new(clientReadReply) }}
	clientWriteRplPool  = sync.Pool{New: func() any { return new(clientWriteReply) }}
	replicaReadPool     = sync.Pool{New: func() any { return new(replicaRead) }}
	replicaReadRespPool = sync.Pool{New: func() any { return new(replicaReadResp) }}
	replicaWritePool    = sync.Pool{New: func() any { return new(replicaWrite) }}
	replicaWriteAckPool = sync.Pool{New: func() any { return new(replicaWriteAck) }}
	workDonePool        = sync.Pool{New: func() any { return new(workDone) }}
	coordExecPool       = sync.Pool{New: func() any { return new(coordExec) }}
	coordTimeoutPool    = sync.Pool{New: func() any { return new(coordTimeout) }}
	streamRequestPool   = sync.Pool{New: func() any { return new(streamRequest) }}
	streamChunkPool     = sync.Pool{New: func() any { return new(streamChunk) }}
	streamDonePool      = sync.Pool{New: func() any { return new(streamDone) }}
	streamAckPool       = sync.Pool{New: func() any { return new(streamAck) }}
)

func newClientRead(m clientRead) *clientRead {
	p := clientReadPool.Get().(*clientRead)
	*p = m
	return p
}

func newClientWrite(m clientWrite) *clientWrite {
	p := clientWritePool.Get().(*clientWrite)
	*p = m
	return p
}

func newClientReadReply(m clientReadReply) *clientReadReply {
	p := clientReadReplyPool.Get().(*clientReadReply)
	*p = m
	return p
}

func newClientWriteReply(m clientWriteReply) *clientWriteReply {
	p := clientWriteRplPool.Get().(*clientWriteReply)
	*p = m
	return p
}

func newReplicaRead(m replicaRead) *replicaRead {
	p := replicaReadPool.Get().(*replicaRead)
	*p = m
	return p
}

func newReplicaReadResp(m replicaReadResp) *replicaReadResp {
	p := replicaReadRespPool.Get().(*replicaReadResp)
	*p = m
	return p
}

func newReplicaWrite(m replicaWrite) *replicaWrite {
	p := replicaWritePool.Get().(*replicaWrite)
	*p = m
	return p
}

func newReplicaWriteAck(m replicaWriteAck) *replicaWriteAck {
	p := replicaWriteAckPool.Get().(*replicaWriteAck)
	*p = m
	return p
}

func newWorkDone(st *stage, w work, epoch uint32) *workDone {
	p := workDonePool.Get().(*workDone)
	p.st, p.w, p.epoch = st, w, epoch
	return p
}

func newCoordExec(fn func(), epoch uint32) *coordExec {
	p := coordExecPool.Get().(*coordExec)
	p.fn, p.epoch = fn, epoch
	return p
}

func newCoordTimeout(id reqID, write bool) *coordTimeout {
	p := coordTimeoutPool.Get().(*coordTimeout)
	p.ID, p.Write = id, write
	return p
}

func newStreamRequest(m streamRequest) *streamRequest {
	p := streamRequestPool.Get().(*streamRequest)
	*p = m
	return p
}

func newStreamChunk(m streamChunk) *streamChunk {
	p := streamChunkPool.Get().(*streamChunk)
	*p = m
	return p
}

func newStreamDone(m streamDone) *streamDone {
	p := streamDonePool.Get().(*streamDone)
	*p = m
	return p
}

func newStreamAck(m streamAck) *streamAck {
	p := streamAckPool.Get().(*streamAck)
	*p = m
	return p
}
