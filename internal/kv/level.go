// Package kv implements the replicated quorum key-value store the
// adaptive consistency middleware operates on. It reproduces Cassandra's
// consistency machinery: per-operation tunable consistency levels,
// coordinators that block for the required replica acknowledgements while
// the remaining replicas are updated asynchronously, read repair, hinted
// handoff and anti-entropy. Staleness ground truth is provided by an
// oracle that ledgers every write.
//
// Node logic is a message-driven state machine, so the same nodes run
// under the deterministic discrete-event engine (package sim/netsim) and
// under the real-time goroutine engine (package live).
package kv

import (
	"fmt"

	"repro/internal/netsim"
)

// LevelKind enumerates the consistency levels of the store.
type LevelKind int

// The supported kinds. KindCount is the generalized "k replicas" level
// the Harmony tuner emits.
const (
	KindOne LevelKind = iota
	KindTwo
	KindThree
	KindQuorum
	KindAll
	KindLocalQuorum
	KindEachQuorum
	KindCount
)

// Level is a per-operation consistency level.
type Level struct {
	Kind LevelKind
	K    int // replica count for KindCount
}

// The fixed levels.
var (
	One         = Level{Kind: KindOne}
	Two         = Level{Kind: KindTwo}
	Three       = Level{Kind: KindThree}
	Quorum      = Level{Kind: KindQuorum}
	All         = Level{Kind: KindAll}
	LocalQuorum = Level{Kind: KindLocalQuorum}
	EachQuorum  = Level{Kind: KindEachQuorum}
)

// Count returns the generalized level that blocks for k replicas; k is
// clamped to at least 1.
func Count(k int) Level {
	if k <= 1 {
		return One
	}
	return Level{Kind: KindCount, K: k}
}

// String names the level as Cassandra does.
func (l Level) String() string {
	switch l.Kind {
	case KindOne:
		return "ONE"
	case KindTwo:
		return "TWO"
	case KindThree:
		return "THREE"
	case KindQuorum:
		return "QUORUM"
	case KindAll:
		return "ALL"
	case KindLocalQuorum:
		return "LOCAL_QUORUM"
	case KindEachQuorum:
		return "EACH_QUORUM"
	case KindCount:
		return fmt.Sprintf("K(%d)", l.K)
	}
	return fmt.Sprintf("Level(%d)", int(l.Kind))
}

// requirement is the acknowledgement condition a coordinator blocks for.
// When perDC is nil the condition is "total acks ≥ total"; otherwise every
// datacenter must reach its own count.
type requirement struct {
	total int
	perDC map[string]int
}

func quorumOf(n int) int { return n/2 + 1 }

// resolve computes the requirement of level l for a key replicated on
// replicas, with localDC the coordinator's datacenter.
func (l Level) resolve(replicas []netsim.NodeID, topo *netsim.Topology, localDC string) requirement {
	rf := len(replicas)
	switch l.Kind {
	case KindOne:
		return requirement{total: 1}
	case KindTwo:
		return requirement{total: min(2, rf)}
	case KindThree:
		return requirement{total: min(3, rf)}
	case KindQuorum:
		return requirement{total: quorumOf(rf)}
	case KindAll:
		return requirement{total: rf}
	case KindCount:
		return requirement{total: min(max(l.K, 1), rf)}
	case KindLocalQuorum:
		local := 0
		for _, r := range replicas {
			if topo.DCOf(r) == localDC {
				local++
			}
		}
		if local == 0 {
			// No replica in the coordinator's DC: degrade to plain
			// quorum, which is what a misconfigured Cassandra client
			// effectively experiences.
			return requirement{total: quorumOf(rf)}
		}
		return requirement{perDC: map[string]int{localDC: quorumOf(local)}}
	case KindEachQuorum:
		per := make(map[string]int)
		for _, r := range replicas {
			per[topo.DCOf(r)]++
		}
		for dc, n := range per {
			per[dc] = quorumOf(n)
		}
		return requirement{perDC: per}
	}
	return requirement{total: 1}
}

// needed reports the total number of replica responses the requirement
// blocks for (an upper bound used to size read fan-out).
func (r requirement) needed() int {
	if r.perDC == nil {
		return r.total
	}
	sum := 0
	for _, n := range r.perDC {
		sum += n
	}
	return sum
}

// satisfiedCounts reports whether the collected acknowledgements meet the
// requirement: total is the overall ack count, perDC the per-datacenter
// tallies (nil unless the requirement is per-DC; contexts only maintain
// the map when needed).
func (r requirement) satisfiedCounts(total int, perDC map[string]int) bool {
	if r.perDC == nil {
		return total >= r.total
	}
	for dc, need := range r.perDC {
		if perDC[dc] < need {
			return false
		}
	}
	return true
}

// Replicas reports how many replica responses level l blocks for with
// replication factor rf in a single-DC interpretation; tuners use it to
// reason about levels numerically (LOCAL_QUORUM and EACH_QUORUM are
// approximated by their single-DC quorum count).
func (l Level) Replicas(rf int) int {
	switch l.Kind {
	case KindOne:
		return 1
	case KindTwo:
		return min(2, rf)
	case KindThree:
		return min(3, rf)
	case KindQuorum, KindLocalQuorum, KindEachQuorum:
		return quorumOf(rf)
	case KindAll:
		return rf
	case KindCount:
		return min(max(l.K, 1), rf)
	}
	return 1
}
