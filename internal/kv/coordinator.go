package kv

import (
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/storage"
)

// readCtx tracks one coordinated read until every contacted replica
// responded (or the timeout fired), so that read repair can compare all
// versions even after the client reply went out. Contexts are pooled and
// keep their slice capacity across lives; ack tallies are a plain counter
// with a per-DC map only for multi-DC requirements.
type readCtx struct {
	id             reqID
	key            string
	level          Level
	req            requirement
	start          time.Duration
	reply          func(ReadResult) // routes the result to the client (or batch collector)
	visibleAtStart storage.Version
	issuedAtStart  storage.Version

	targets   []netsim.NodeID
	responses []replicaReadResp // one per distinct responder, arrival order
	ackTotal  int
	ackDC     map[string]int // per-DC tallies; nil unless req.perDC is set

	best      replicaReadResp // freshest version seen (data or digest)
	bestData  replicaReadResp // freshest response carrying the value
	haveBest  bool
	haveData  bool
	completed bool // the consistency level was satisfied
	delivered bool // the client received a reply
	awaitData bool
	retries   int // wrong-owner re-plans consumed (gossip mode)
}

// findResp returns the index of from's response, or -1.
func (ctx *readCtx) findResp(from netsim.NodeID) int {
	for i := range ctx.responses {
		if ctx.responses[i].From == from {
			return i
		}
	}
	return -1
}

// dropResp removes from's response (the digest-refetch path re-admits the
// replica's second answer).
func (ctx *readCtx) dropResp(from netsim.NodeID) {
	if i := ctx.findResp(from); i >= 0 {
		last := len(ctx.responses) - 1
		ctx.responses[i] = ctx.responses[last]
		ctx.responses[last] = replicaReadResp{}
		ctx.responses = ctx.responses[:last]
	}
}

// dropTarget removes a target that will never respond — it refused the
// request as notOwner — so the all-responses finalization still fires.
func (ctx *readCtx) dropTarget(from netsim.NodeID) {
	for i, t := range ctx.targets {
		if t == from {
			ctx.targets = append(ctx.targets[:i], ctx.targets[i+1:]...)
			return
		}
	}
}

// writeCtx tracks one coordinated write; it lives until the timeout event
// fires so that post-completion replica acks are still observed (they are
// the monitor's propagation-time signal).
type writeCtx struct {
	id        reqID
	key       string
	level     Level
	req       requirement
	start     time.Duration
	reply     func(WriteResult) // routes the result to the client (or batch collector)
	version   storage.Version
	replicas  int
	ackCount  int
	ackDC     map[string]int // per-DC tallies; nil unless req.perDC is set
	completed bool

	// Gossip-mode retry state: the cell being written, the replicas (or
	// hint targets) already shipped to, and the re-plans consumed.
	cell    storage.Cell
	sent    []netsim.NodeID
	retries int
}

// Context pools: one read and one write context per operation was the
// largest remaining steady-state allocation of the coordinator path.
// Contexts are returned once they can no longer be referenced — when they
// leave the coordinator's tracking maps after finalization or timeout.
var (
	readCtxPool  = sync.Pool{New: func() any { return new(readCtx) }}
	writeCtxPool = sync.Pool{New: func() any { return new(writeCtx) }}
)

func getReadCtx() *readCtx { return readCtxPool.Get().(*readCtx) }

func putReadCtx(ctx *readCtx) {
	for i := range ctx.responses {
		ctx.responses[i] = replicaReadResp{}
	}
	*ctx = readCtx{targets: ctx.targets[:0], responses: ctx.responses[:0]}
	readCtxPool.Put(ctx)
}

func getWriteCtx() *writeCtx { return writeCtxPool.Get().(*writeCtx) }

func putWriteCtx(ctx *writeCtx) {
	*ctx = writeCtx{sent: ctx.sent[:0]}
	writeCtxPool.Put(ctx)
}

// batchReadCtx tracks one coordinated multi-key read: per-item readCtx
// sub-contexts sharing a single admission, request fan-out and timeout.
type batchReadCtx struct {
	id        reqID
	cb        func([]ReadResult)
	items     []*readCtx // nil for items that failed at admission
	results   []ReadResult
	pending   int // items whose client-visible result is still outstanding
	delivered bool
}

// batchWriteCtx is the write counterpart of batchReadCtx. Like writeCtx
// it lives until the timeout event so late replica acks still feed the
// monitor's propagation signal.
type batchWriteCtx struct {
	id        reqID
	cb        func([]WriteResult)
	items     []*writeCtx
	results   []WriteResult
	pending   int
	delivered bool
}

// coordRead admits a client read on this coordinator. A cache hit
// (hotcache.go) completes here without the admission draw or any
// replica messages — the hot-key fast path.
func (n *Node) coordRead(m clientRead) {
	if n.cacheServe(m) {
		return
	}
	n.coordWork(func() {
		now := n.cluster.net.Now()
		n.coordOps++
		n.cluster.hooks.readStarted(now, m.Key)
		if t := n.cluster.hot; t != nil {
			t.observeRead(m.Key, now)
		}

		replicas := n.routeReplicas(m.Key)
		req := m.Level.resolve(replicas, n.cluster.topo, n.cluster.topo.DCOf(n.id))
		ctx := getReadCtx()
		targets, ok := n.pickTargets(replicas, req, ctx.targets)
		ctx.targets = targets
		if !ok {
			putReadCtx(ctx)
			n.replyRead(m.rt, ReadResult{
				Err: ErrUnavailable, Key: m.Key, Level: m.Level,
				Latency: 0,
			})
			n.cluster.oracle.ReadFailed()
			return
		}

		ctx.id, ctx.key, ctx.level, ctx.req = m.ID, m.Key, m.Level, req
		ctx.start = now
		ctx.reply = func(res ReadResult) { n.replyRead(m.rt, res) }
		ctx.visibleAtStart, ctx.issuedAtStart = n.cluster.oracle.Latest(m.Key)
		if req.perDC != nil {
			ctx.ackDC = make(map[string]int, len(req.perDC))
		}
		n.reads[m.ID] = ctx

		for i, t := range targets {
			digest := n.cluster.cfg.DigestReads && i > 0
			rr := newReplicaRead(replicaRead{ID: m.ID, Key: m.Key, Digest: digest, Coord: n.id, RingSeq: n.ringSeq()})
			n.cluster.net.Send(n.id, t, rr, msgOverhead+len(m.Key))
		}
		n.cluster.net.SendLocal(n.id, newCoordTimeout(m.ID, false), n.cluster.cfg.Timeout)
	})
}

// onReadResp folds one replica response into the read context.
func (n *Node) onReadResp(m replicaReadResp) {
	ctx, ok := n.reads[m.ID]
	if !ok {
		return
	}
	if ctx.findResp(m.From) >= 0 {
		return
	}
	ctx.responses = append(ctx.responses, m)
	ctx.ackTotal++
	if ctx.ackDC != nil {
		ctx.ackDC[n.cluster.topo.DCOf(m.From)]++
	}

	if m.Exists {
		if !ctx.haveBest || m.Cell.Version.After(ctx.best.Cell.Version) {
			ctx.best = m
			ctx.haveBest = true
		}
		if !m.Digest && (!ctx.haveData || m.Cell.Version.After(ctx.bestData.Cell.Version)) {
			ctx.bestData = m
			ctx.haveData = true
		}
	}

	if !ctx.completed && ctx.req.satisfiedCounts(ctx.ackTotal, ctx.ackDC) {
		n.tryCompleteRead(ctx)
	} else if ctx.completed && ctx.awaitData && ctx.haveData &&
		!ctx.best.Cell.Version.After(ctx.bestData.Cell.Version) {
		// The data fetch for a newer digest arrived.
		ctx.awaitData = false
		n.deliverRead(ctx)
	}

	if len(ctx.responses) >= len(ctx.targets) && !ctx.awaitData && ctx.delivered {
		delete(n.reads, ctx.id)
		n.finalizeRead(ctx)
		putReadCtx(ctx)
	}
}

// tryCompleteRead completes the client-visible read once the level is
// satisfied, fetching full data when only a digest of the freshest
// version is at hand (the digest-mismatch path).
func (n *Node) tryCompleteRead(ctx *readCtx) {
	ctx.completed = true
	if ctx.haveBest && (!ctx.haveData || ctx.best.Cell.Version.After(ctx.bestData.Cell.Version)) {
		if ctx.best.Digest {
			// Freshest version known only by digest: fetch its data.
			ctx.awaitData = true
			rr := newReplicaRead(replicaRead{ID: ctx.id, Key: ctx.key, Digest: false, Coord: n.id, RingSeq: n.ringSeq()})
			ctx.dropResp(ctx.best.From) // allow the refetch response in
			ctx.ackTotal--
			if ctx.ackDC != nil {
				ctx.ackDC[n.cluster.topo.DCOf(ctx.best.From)]--
			}
			n.cluster.net.Send(n.id, ctx.best.From, rr, msgOverhead+len(ctx.key))
			return
		}
		ctx.bestData = ctx.best
		ctx.haveData = true
	}
	n.deliverRead(ctx)
}

// deliverRead sends the final result to the client.
func (n *Node) deliverRead(ctx *readCtx) {
	if ctx.delivered {
		return
	}
	ctx.delivered = true
	now := n.cluster.net.Now()
	res := ReadResult{
		Key:      ctx.key,
		Level:    ctx.level,
		Latency:  now - ctx.start,
		Replicas: len(ctx.targets),
	}
	if ctx.haveData && !ctx.bestData.Cell.Tombstone {
		res.Exists = true
		res.Value = ctx.bestData.Cell.Value
		res.Version = ctx.bestData.Cell.Version
	}
	// Judge staleness by the freshest version observed, tombstones
	// included: a read that sees the latest deletion is fresh even
	// though it reports no value.
	judged := res.Version
	if ctx.haveData {
		judged = ctx.bestData.Cell.Version
	}
	res.Stale = n.cluster.oracle.Judge(ctx.visibleAtStart, ctx.issuedAtStart, judged)
	if ctx.haveData {
		n.cacheFill(ctx.key, ctx.bestData.Cell)
	}
	n.cluster.hooks.readCompleted(now, res)
	ctx.reply(res)
}

// finalizeRead performs read repair; callers discard the context.
func (n *Node) finalizeRead(ctx *readCtx) {
	if !n.cluster.cfg.ReadRepair || !ctx.haveData {
		return
	}
	best := ctx.bestData.Cell
	// Repair contacted replicas that answered with an older version, in
	// node order (insertion sort in place; the context is being retired).
	rs := ctx.responses
	for i := 1; i < len(rs); i++ {
		r := rs[i]
		j := i - 1
		for j >= 0 && rs[j].From > r.From {
			rs[j+1] = rs[j]
			j--
		}
		rs[j+1] = r
	}
	for i := range rs {
		r := &rs[i]
		if r.From == ctx.bestData.From {
			continue
		}
		if !r.Exists || best.Version.After(r.Cell.Version) {
			n.sendRepair(r.From, ctx.key, best)
		}
	}
	// With the configured probability, extend repair to the replicas
	// that were not contacted (Cassandra's global read_repair_chance).
	if p := n.cluster.cfg.GlobalRepairChance; p > 0 && n.rng.Float64() < p {
		for _, rep := range n.routeReplicas(ctx.key) {
			contacted := false
			for _, t := range ctx.targets {
				if t == rep {
					contacted = true
					break
				}
			}
			if !contacted && !n.routeDown(rep) {
				n.sendRepair(rep, ctx.key, best)
			}
		}
	}
}

func (n *Node) sendRepair(to netsim.NodeID, key string, cell storage.Cell) {
	msg := newReplicaWrite(replicaWrite{Key: key, Cell: cell, Coord: n.id, Repair: true})
	n.cluster.net.Send(n.id, to, msg, msgOverhead+len(key)+len(cell.Value))
}

// coordWrite admits a client write on this coordinator.
func (n *Node) coordWrite(m clientWrite) {
	n.coordWork(func() {
		now := n.cluster.net.Now()
		n.coordOps++

		replicas := n.routeReplicas(m.Key)
		req := m.Level.resolve(replicas, n.cluster.topo, n.cluster.topo.DCOf(n.id))
		if !n.routeReachable(replicas, req) {
			n.replyWrite(m.rt, WriteResult{Err: ErrUnavailable, Key: m.Key, Level: m.Level})
			return
		}

		version := storage.Version{Timestamp: now, Seq: n.cluster.nextSeq()}
		cell := storage.Cell{Version: version, Value: m.Value, Tombstone: m.tombstone}
		n.cluster.oracle.WriteStarted(m.Key, version, len(replicas), now)
		n.cluster.hooks.writeStarted(now, m.Key, version, len(replicas))
		if t := n.cluster.hot; t != nil {
			t.observeWrite(m.Key, now)
		}
		n.cacheInvalidate(m.Key)

		ctx := getWriteCtx()
		ctx.id, ctx.key, ctx.level, ctx.req = m.ID, m.Key, m.Level, req
		ctx.start = now
		ctx.reply = func(res WriteResult) { n.replyWrite(m.rt, res) }
		ctx.version = version
		ctx.replicas = len(replicas)
		if req.perDC != nil {
			ctx.ackDC = make(map[string]int, len(req.perDC))
		}
		n.writes[m.ID] = ctx

		// The coordinator always sends the mutation to every replica;
		// the level only controls how many acknowledgements it blocks
		// for. Down replicas get a hint instead.
		if n.gs != nil {
			// Retry state for wrong-owner re-plans: the cell to re-ship
			// and the replicas already handled (sent or hinted).
			ctx.cell = cell
			ctx.sent = append(ctx.sent[:0], replicas...)
		}
		for _, r := range replicas {
			if n.routeDown(r) {
				n.storeHint(r, m.Key, cell)
				continue
			}
			w := newReplicaWrite(replicaWrite{ID: m.ID, Key: m.Key, Cell: cell, Coord: n.id, RingSeq: n.ringSeq()})
			n.cluster.net.Send(n.id, r, w, msgOverhead+len(m.Key)+len(m.Value))
		}
		n.cluster.net.SendLocal(n.id, newCoordTimeout(m.ID, true), n.cluster.cfg.Timeout)
	})
}

// onWriteAck folds one replica acknowledgement into the write context.
func (n *Node) onWriteAck(m replicaWriteAck) {
	ctx, ok := n.writes[m.ID]
	if !ok {
		return
	}
	n.foldWriteAck(ctx, m.From)
}

// foldWriteAck counts one replica acknowledgement toward ctx and
// completes the client-visible write once the level is satisfied.
func (n *Node) foldWriteAck(ctx *writeCtx, from netsim.NodeID) {
	now := n.cluster.net.Now()
	ctx.ackCount++
	if ctx.ackDC != nil {
		ctx.ackDC[n.cluster.topo.DCOf(from)]++
	}
	n.cluster.hooks.writeAck(now, ctx.key, ctx.ackCount, now-ctx.start)

	if !ctx.completed && ctx.req.satisfiedCounts(ctx.ackCount, ctx.ackDC) {
		ctx.completed = true
		n.cluster.oracle.WriteVisible(ctx.key, ctx.version)
		res := WriteResult{
			Key: ctx.key, Version: ctx.version, Level: ctx.level,
			Latency: now - ctx.start, Acked: ctx.ackCount,
		}
		n.cluster.hooks.writeCompleted(now, res)
		ctx.reply(res)
	}
}

// onTimeout fires for both reads and writes, single and batched;
// contexts still incomplete fail with ErrTimeout, completed ones are
// finalized. The timeout is the last reference to a context, so it also
// returns contexts to their pools.
func (n *Node) onTimeout(m coordTimeout) {
	if m.Write {
		if bctx, ok := n.batchWrites[m.ID]; ok {
			delete(n.batchWrites, m.ID)
			for _, ctx := range bctx.items {
				if ctx != nil {
					n.expireWrite(ctx)
					putWriteCtx(ctx)
				}
			}
			return
		}
		ctx, ok := n.writes[m.ID]
		if !ok {
			return
		}
		delete(n.writes, m.ID)
		n.expireWrite(ctx)
		putWriteCtx(ctx)
		return
	}
	if bctx, ok := n.batchReads[m.ID]; ok {
		delete(n.batchReads, m.ID)
		for _, ctx := range bctx.items {
			if ctx != nil {
				n.expireRead(ctx)
				putReadCtx(ctx)
			}
		}
		return
	}
	ctx, ok := n.reads[m.ID]
	if !ok {
		return
	}
	delete(n.reads, m.ID)
	n.expireRead(ctx)
	putReadCtx(ctx)
}

// expireWrite fails a still-incomplete write context with ErrTimeout.
func (n *Node) expireWrite(ctx *writeCtx) {
	if ctx.completed {
		return
	}
	ctx.completed = true
	res := WriteResult{
		Err: ErrTimeout, Key: ctx.key, Level: ctx.level,
		Latency: n.cluster.cfg.Timeout, Acked: ctx.ackCount,
	}
	n.cluster.hooks.writeCompleted(n.cluster.net.Now(), res)
	ctx.reply(res)
}

// expireRead fails a still-undelivered read context with ErrTimeout and
// runs read repair on whatever responses did arrive.
func (n *Node) expireRead(ctx *readCtx) {
	if !ctx.delivered {
		ctx.completed = true
		ctx.delivered = true
		res := ReadResult{
			Err: ErrTimeout, Key: ctx.key, Level: ctx.level,
			Latency: n.cluster.cfg.Timeout, Replicas: len(ctx.targets),
		}
		n.cluster.oracle.ReadFailed()
		n.cluster.hooks.readCompleted(n.cluster.net.Now(), res)
		ctx.reply(res)
	}
	ctx.awaitData = false
	n.finalizeRead(ctx)
}

// replyRead ships the result back to the client endpoint over the
// network, so client-visible latency includes the return hop.
func (n *Node) replyRead(rt readRoute, res ReadResult) {
	n.cluster.net.Send(n.id, netsim.ClientID, newClientReadReply(clientReadReply{rt: rt, res: res}),
		msgOverhead+len(res.Value))
}

func (n *Node) replyWrite(rt writeRoute, res WriteResult) {
	n.cluster.net.Send(n.id, netsim.ClientID, newClientWriteReply(clientWriteReply{rt: rt, res: res}), msgOverhead)
}

// pickTargets selects which replicas a read contacts: enough to satisfy
// req, chosen among live replicas by the configured target policy, with
// warming replicas (freshly joined or restarted, still converging)
// deprioritized — they are only contacted when the level cannot be
// satisfied from converged replicas alone. The live set is built in buf
// (the context's recycled targets array); it reports ok=false when the
// level is unreachable.
func (n *Node) pickTargets(replicas []netsim.NodeID, req requirement, buf []netsim.NodeID) ([]netsim.NodeID, bool) {
	alive := buf[:0]
	for _, r := range replicas {
		if !n.routeDown(r) {
			alive = append(alive, r)
		}
	}
	n.orderByPolicy(alive)
	if warming := n.cluster.warming; len(warming) > 0 {
		// Stable-partition converged replicas ahead of warming ones,
		// preserving the policy order inside each group: the prefix
		// truncation below then excludes warming replicas from the read
		// quorum whenever enough converged replicas are live.
		k := 0
		for i := 0; i < len(alive); i++ {
			if !warming[alive[i]] {
				x := alive[i]
				copy(alive[k+1:i+1], alive[k:i])
				alive[k] = x
				k++
			}
		}
	}

	if req.perDC == nil {
		if len(alive) < req.total {
			return alive, false
		}
		if gs := n.gs; gs != nil && len(n.cluster.warming) > 0 {
			// Invariant meter: the stable partition above must keep
			// warming replicas out of the quorum whenever enough
			// converged ones are live. A violation here means a stale
			// coordinator read from an un-warmed replica it had a
			// converged alternative for.
			warming := n.cluster.warming
			converged := 0
			for _, r := range alive {
				if !warming[r] {
					converged++
				}
			}
			if converged >= req.total {
				for _, r := range alive[:req.total] {
					if warming[r] {
						gs.warmViolations++
					}
				}
			}
		}
		return alive[:req.total], true
	}

	byDC := make(map[string][]netsim.NodeID)
	for _, r := range alive {
		dc := n.cluster.topo.DCOf(r)
		byDC[dc] = append(byDC[dc], r)
	}
	dcs := make([]string, 0, len(req.perDC))
	for dc := range req.perDC {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	targets := make([]netsim.NodeID, 0, req.needed())
	for _, dc := range dcs {
		need := req.perDC[dc]
		if len(byDC[dc]) < need {
			return alive, false
		}
		targets = append(targets, byDC[dc][:need]...)
	}
	return targets, true
}

// orderByPolicy orders candidate replicas either by proximity to this
// coordinator (deterministic) or uniformly at random (spreads read load,
// and matches the uniform-choice assumption of the Harmony estimator).
// The candidate sets are replica-sized, so insertion sorts beat the
// allocation and indirection of sort.Slice.
func (n *Node) orderByPolicy(nodes []netsim.NodeID) {
	switch n.cluster.cfg.ReadTargets {
	case TargetClosest:
		topo := n.cluster.topo
		for i := 1; i < len(nodes); i++ {
			x := nodes[i]
			cx := topo.Class(n.id, x)
			j := i - 1
			for j >= 0 {
				cj := topo.Class(n.id, nodes[j])
				if cj < cx || (cj == cx && nodes[j] < x) {
					break
				}
				nodes[j+1] = nodes[j]
				j--
			}
			nodes[j+1] = x
		}
	default: // TargetRandom
		for i := 1; i < len(nodes); i++ {
			x := nodes[i]
			j := i - 1
			for j >= 0 && nodes[j] > x {
				nodes[j+1] = nodes[j]
				j--
			}
			nodes[j+1] = x
		}
		n.rng.Shuffle(len(nodes), func(i, j int) {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		})
	}
}
