package kv

import (
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/storage"
)

// readCtx tracks one coordinated read until every contacted replica
// responded (or the timeout fired), so that read repair can compare all
// versions even after the client reply went out.
type readCtx struct {
	id             reqID
	key            string
	level          Level
	req            requirement
	start          time.Duration
	reply          func(ReadResult) // routes the result to the client (or batch collector)
	visibleAtStart storage.Version
	issuedAtStart  storage.Version

	targets   []netsim.NodeID
	acks      map[string]int
	responses map[netsim.NodeID]replicaReadResp

	best      replicaReadResp // freshest version seen (data or digest)
	bestData  replicaReadResp // freshest response carrying the value
	haveBest  bool
	haveData  bool
	completed bool // the consistency level was satisfied
	delivered bool // the client received a reply
	awaitData bool
}

// writeCtx tracks one coordinated write; it lives until the timeout event
// fires so that post-completion replica acks are still observed (they are
// the monitor's propagation-time signal).
type writeCtx struct {
	id        reqID
	key       string
	level     Level
	req       requirement
	start     time.Duration
	reply     func(WriteResult) // routes the result to the client (or batch collector)
	version   storage.Version
	replicas  int
	acks      map[string]int
	ackCount  int
	completed bool
}

// batchReadCtx tracks one coordinated multi-key read: per-item readCtx
// sub-contexts sharing a single admission, request fan-out and timeout.
type batchReadCtx struct {
	id        reqID
	cb        func([]ReadResult)
	items     []*readCtx // nil for items that failed at admission
	results   []ReadResult
	pending   int // items whose client-visible result is still outstanding
	delivered bool
}

// batchWriteCtx is the write counterpart of batchReadCtx. Like writeCtx
// it lives until the timeout event so late replica acks still feed the
// monitor's propagation signal.
type batchWriteCtx struct {
	id        reqID
	cb        func([]WriteResult)
	items     []*writeCtx
	results   []WriteResult
	pending   int
	delivered bool
}

// coordRead admits a client read on this coordinator.
func (n *Node) coordRead(m clientRead) {
	n.coordWork(func() {
		now := n.cluster.net.Now()
		n.coordOps++
		n.cluster.hooks.readStarted(now, m.Key)

		replicas := n.cluster.strategy.Replicas(m.Key)
		req := m.Level.resolve(replicas, n.cluster.topo, n.cluster.topo.DCOf(n.id))
		targets, ok := n.pickTargets(replicas, req)
		if !ok {
			n.replyRead(m.cb, ReadResult{
				Err: ErrUnavailable, Key: m.Key, Level: m.Level,
				Latency: 0,
			})
			n.cluster.oracle.ReadFailed()
			return
		}

		ctx := &readCtx{
			id: m.ID, key: m.Key, level: m.Level, req: req,
			start: now, reply: func(res ReadResult) { n.replyRead(m.cb, res) },
			visibleAtStart: n.cluster.oracle.LatestVisible(m.Key),
			issuedAtStart:  n.cluster.oracle.LatestIssued(m.Key),
			targets:        targets,
			acks:           make(map[string]int),
			responses:      make(map[netsim.NodeID]replicaReadResp, len(targets)),
		}
		n.reads[m.ID] = ctx

		for i, t := range targets {
			digest := n.cluster.cfg.DigestReads && i > 0
			rr := replicaRead{ID: m.ID, Key: m.Key, Digest: digest, Coord: n.id}
			n.cluster.net.Send(n.id, t, rr, msgOverhead+len(m.Key))
		}
		n.cluster.net.SendLocal(n.id, coordTimeout{ID: m.ID}, n.cluster.cfg.Timeout)
	})
}

// onReadResp folds one replica response into the read context.
func (n *Node) onReadResp(m replicaReadResp) {
	ctx, ok := n.reads[m.ID]
	if !ok {
		return
	}
	if _, dup := ctx.responses[m.From]; dup {
		return
	}
	ctx.responses[m.From] = m
	ctx.acks[n.cluster.topo.DCOf(m.From)]++

	if m.Exists {
		if !ctx.haveBest || m.Cell.Version.After(ctx.best.Cell.Version) {
			ctx.best = m
			ctx.haveBest = true
		}
		if !m.Digest && (!ctx.haveData || m.Cell.Version.After(ctx.bestData.Cell.Version)) {
			ctx.bestData = m
			ctx.haveData = true
		}
	}

	if !ctx.completed && ctx.req.satisfied(ctx.acks) {
		n.tryCompleteRead(ctx)
	} else if ctx.completed && ctx.awaitData && ctx.haveData &&
		!ctx.best.Cell.Version.After(ctx.bestData.Cell.Version) {
		// The data fetch for a newer digest arrived.
		ctx.awaitData = false
		n.deliverRead(ctx)
	}

	if len(ctx.responses) >= len(ctx.targets) && !ctx.awaitData && ctx.delivered {
		delete(n.reads, ctx.id)
		n.finalizeRead(ctx)
	}
}

// tryCompleteRead completes the client-visible read once the level is
// satisfied, fetching full data when only a digest of the freshest
// version is at hand (the digest-mismatch path).
func (n *Node) tryCompleteRead(ctx *readCtx) {
	ctx.completed = true
	if ctx.haveBest && (!ctx.haveData || ctx.best.Cell.Version.After(ctx.bestData.Cell.Version)) {
		if ctx.best.Digest {
			// Freshest version known only by digest: fetch its data.
			ctx.awaitData = true
			rr := replicaRead{ID: ctx.id, Key: ctx.key, Digest: false, Coord: n.id}
			delete(ctx.responses, ctx.best.From) // allow the refetch response in
			ctx.acks[n.cluster.topo.DCOf(ctx.best.From)]--
			n.cluster.net.Send(n.id, ctx.best.From, rr, msgOverhead+len(ctx.key))
			return
		}
		ctx.bestData = ctx.best
		ctx.haveData = true
	}
	n.deliverRead(ctx)
}

// deliverRead sends the final result to the client.
func (n *Node) deliverRead(ctx *readCtx) {
	if ctx.delivered {
		return
	}
	ctx.delivered = true
	now := n.cluster.net.Now()
	res := ReadResult{
		Key:      ctx.key,
		Level:    ctx.level,
		Latency:  now - ctx.start,
		Replicas: len(ctx.targets),
	}
	if ctx.haveData && !ctx.bestData.Cell.Tombstone {
		res.Exists = true
		res.Value = ctx.bestData.Cell.Value
		res.Version = ctx.bestData.Cell.Version
	}
	// Judge staleness by the freshest version observed, tombstones
	// included: a read that sees the latest deletion is fresh even
	// though it reports no value.
	judged := res.Version
	if ctx.haveData {
		judged = ctx.bestData.Cell.Version
	}
	res.Stale = n.cluster.oracle.Judge(ctx.visibleAtStart, ctx.issuedAtStart, judged)
	n.cluster.hooks.readCompleted(now, res)
	ctx.reply(res)
}

// finalizeRead performs read repair; callers discard the context.
func (n *Node) finalizeRead(ctx *readCtx) {
	if !n.cluster.cfg.ReadRepair || !ctx.haveData {
		return
	}
	best := ctx.bestData.Cell
	// Repair contacted replicas that answered with an older version.
	froms := make([]netsim.NodeID, 0, len(ctx.responses))
	for from := range ctx.responses {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, from := range froms {
		r := ctx.responses[from]
		if r.From == ctx.bestData.From {
			continue
		}
		if !r.Exists || best.Version.After(r.Cell.Version) {
			n.sendRepair(r.From, ctx.key, best)
		}
	}
	// With the configured probability, extend repair to the replicas
	// that were not contacted (Cassandra's global read_repair_chance).
	if p := n.cluster.cfg.GlobalRepairChance; p > 0 && n.rng.Float64() < p {
		contacted := make(map[netsim.NodeID]bool, len(ctx.targets))
		for _, t := range ctx.targets {
			contacted[t] = true
		}
		for _, rep := range n.cluster.strategy.Replicas(ctx.key) {
			if !contacted[rep] && !n.cluster.isDown(rep) {
				n.sendRepair(rep, ctx.key, best)
			}
		}
	}
}

func (n *Node) sendRepair(to netsim.NodeID, key string, cell storage.Cell) {
	msg := replicaWrite{Key: key, Cell: cell, Coord: n.id, Repair: true}
	n.cluster.net.Send(n.id, to, msg, msgOverhead+len(key)+len(cell.Value))
}

// coordWrite admits a client write on this coordinator.
func (n *Node) coordWrite(m clientWrite) {
	n.coordWork(func() {
		now := n.cluster.net.Now()
		n.coordOps++

		replicas := n.cluster.strategy.Replicas(m.Key)
		req := m.Level.resolve(replicas, n.cluster.topo, n.cluster.topo.DCOf(n.id))
		if !n.cluster.levelReachable(replicas, req) {
			n.replyWrite(m.cb, WriteResult{Err: ErrUnavailable, Key: m.Key, Level: m.Level})
			return
		}

		version := storage.Version{Timestamp: now, Seq: n.cluster.nextSeq()}
		cell := storage.Cell{Version: version, Value: m.Value, Tombstone: m.tombstone}
		n.cluster.oracle.WriteStarted(m.Key, version, len(replicas), now)
		n.cluster.hooks.writeStarted(now, m.Key, version, len(replicas))

		ctx := &writeCtx{
			id: m.ID, key: m.Key, level: m.Level, req: req,
			start: now, reply: func(res WriteResult) { n.replyWrite(m.cb, res) },
			version:  version,
			replicas: len(replicas),
			acks:     make(map[string]int),
		}
		n.writes[m.ID] = ctx

		// The coordinator always sends the mutation to every replica;
		// the level only controls how many acknowledgements it blocks
		// for. Down replicas get a hint instead.
		for _, r := range replicas {
			if n.cluster.isDown(r) {
				n.storeHint(r, m.Key, cell)
				continue
			}
			w := replicaWrite{ID: m.ID, Key: m.Key, Cell: cell, Coord: n.id}
			n.cluster.net.Send(n.id, r, w, msgOverhead+len(m.Key)+len(m.Value))
		}
		n.cluster.net.SendLocal(n.id, coordTimeout{ID: m.ID, Write: true}, n.cluster.cfg.Timeout)
	})
}

// onWriteAck folds one replica acknowledgement into the write context.
func (n *Node) onWriteAck(m replicaWriteAck) {
	ctx, ok := n.writes[m.ID]
	if !ok {
		return
	}
	n.foldWriteAck(ctx, m.From)
}

// foldWriteAck counts one replica acknowledgement toward ctx and
// completes the client-visible write once the level is satisfied.
func (n *Node) foldWriteAck(ctx *writeCtx, from netsim.NodeID) {
	now := n.cluster.net.Now()
	ctx.ackCount++
	ctx.acks[n.cluster.topo.DCOf(from)]++
	n.cluster.hooks.writeAck(now, ctx.key, ctx.ackCount, now-ctx.start)

	if !ctx.completed && ctx.req.satisfied(ctx.acks) {
		ctx.completed = true
		n.cluster.oracle.WriteVisible(ctx.key, ctx.version)
		res := WriteResult{
			Key: ctx.key, Version: ctx.version, Level: ctx.level,
			Latency: now - ctx.start, Acked: ctx.ackCount,
		}
		n.cluster.hooks.writeCompleted(now, res)
		ctx.reply(res)
	}
}

// onTimeout fires for both reads and writes, single and batched;
// contexts still incomplete fail with ErrTimeout, completed ones are
// finalized.
func (n *Node) onTimeout(m coordTimeout) {
	if m.Write {
		if bctx, ok := n.batchWrites[m.ID]; ok {
			delete(n.batchWrites, m.ID)
			for _, ctx := range bctx.items {
				if ctx != nil {
					n.expireWrite(ctx)
				}
			}
			return
		}
		ctx, ok := n.writes[m.ID]
		if !ok {
			return
		}
		delete(n.writes, m.ID)
		n.expireWrite(ctx)
		return
	}
	if bctx, ok := n.batchReads[m.ID]; ok {
		delete(n.batchReads, m.ID)
		for _, ctx := range bctx.items {
			if ctx != nil {
				n.expireRead(ctx)
			}
		}
		return
	}
	ctx, ok := n.reads[m.ID]
	if !ok {
		return
	}
	delete(n.reads, m.ID)
	n.expireRead(ctx)
}

// expireWrite fails a still-incomplete write context with ErrTimeout.
func (n *Node) expireWrite(ctx *writeCtx) {
	if ctx.completed {
		return
	}
	ctx.completed = true
	res := WriteResult{
		Err: ErrTimeout, Key: ctx.key, Level: ctx.level,
		Latency: n.cluster.cfg.Timeout, Acked: ctx.ackCount,
	}
	n.cluster.hooks.writeCompleted(n.cluster.net.Now(), res)
	ctx.reply(res)
}

// expireRead fails a still-undelivered read context with ErrTimeout and
// runs read repair on whatever responses did arrive.
func (n *Node) expireRead(ctx *readCtx) {
	if !ctx.delivered {
		ctx.completed = true
		ctx.delivered = true
		res := ReadResult{
			Err: ErrTimeout, Key: ctx.key, Level: ctx.level,
			Latency: n.cluster.cfg.Timeout, Replicas: len(ctx.targets),
		}
		n.cluster.oracle.ReadFailed()
		n.cluster.hooks.readCompleted(n.cluster.net.Now(), res)
		ctx.reply(res)
	}
	ctx.awaitData = false
	n.finalizeRead(ctx)
}

// replyRead ships the result back to the client endpoint over the
// network, so client-visible latency includes the return hop.
func (n *Node) replyRead(cb func(ReadResult), res ReadResult) {
	n.cluster.net.Send(n.id, netsim.ClientID, clientReadReply{cb: cb, res: res},
		msgOverhead+len(res.Value))
}

func (n *Node) replyWrite(cb func(WriteResult), res WriteResult) {
	n.cluster.net.Send(n.id, netsim.ClientID, clientWriteReply{cb: cb, res: res}, msgOverhead)
}

// pickTargets selects which replicas a read contacts: enough to satisfy
// req, chosen among live replicas by the configured target policy. It
// reports ok=false when the level is unreachable.
func (n *Node) pickTargets(replicas []netsim.NodeID, req requirement) ([]netsim.NodeID, bool) {
	alive := make([]netsim.NodeID, 0, len(replicas))
	for _, r := range replicas {
		if !n.cluster.isDown(r) {
			alive = append(alive, r)
		}
	}
	n.orderByPolicy(alive)

	if req.perDC == nil {
		if len(alive) < req.total {
			return nil, false
		}
		return alive[:req.total], true
	}

	byDC := make(map[string][]netsim.NodeID)
	for _, r := range alive {
		dc := n.cluster.topo.DCOf(r)
		byDC[dc] = append(byDC[dc], r)
	}
	dcs := make([]string, 0, len(req.perDC))
	for dc := range req.perDC {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	targets := make([]netsim.NodeID, 0, req.needed())
	for _, dc := range dcs {
		need := req.perDC[dc]
		if len(byDC[dc]) < need {
			return nil, false
		}
		targets = append(targets, byDC[dc][:need]...)
	}
	return targets, true
}

// orderByPolicy orders candidate replicas either by proximity to this
// coordinator (deterministic) or uniformly at random (spreads read load,
// and matches the uniform-choice assumption of the Harmony estimator).
func (n *Node) orderByPolicy(nodes []netsim.NodeID) {
	switch n.cluster.cfg.ReadTargets {
	case TargetClosest:
		sort.Slice(nodes, func(i, j int) bool {
			ci := n.cluster.topo.Class(n.id, nodes[i])
			cj := n.cluster.topo.Class(n.id, nodes[j])
			if ci != cj {
				return ci < cj
			}
			return nodes[i] < nodes[j]
		})
	default: // TargetRandom
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		n.rng.Shuffle(len(nodes), func(i, j int) {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		})
	}
}
