package kv_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/storage"
)

func key(i int) string { return fmt.Sprintf("crash%04d", i) }

// mustPanic asserts fn panics (the failure-injection contract checks).
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// lsmConfig is quietConfig on the LSM engine with settings small enough
// that runs, syncs and crash-lost tails actually happen in tests.
func lsmConfig(seed uint64) kv.Config {
	cfg := quietConfig(seed)
	cfg.Engine = storage.LSM
	cfg.FlushLimit = 4 << 10
	cfg.WALSyncBytes = 1 << 10
	return cfg
}

// TestFailPreservesStateCrashLosesIt pins the naming contract documented
// on Cluster.Fail/Crash: a network-level Fail cuts traffic but the node
// keeps every write it held; a Crash loses volatile state (everything,
// on the default MemEngine).
func TestFailPreservesStateCrashLosesIt(t *testing.T) {
	h := newHarness(netsim.SingleDC(5), quietConfig(11))
	w := h.write("k", []byte("v"), kv.All)
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	h.eng.Run()
	victim := h.cluster.Strategy().Replicas("k")[0]
	if cell, ok := h.cluster.Node(victim).Engine().Peek("k"); !ok || cell.Version != w.Version {
		t.Fatal("replica missing the write before failure injection")
	}

	// Network failure: state preserved throughout.
	h.cluster.Fail(victim)
	h.eng.RunFor(2 * time.Second)
	if cell, ok := h.cluster.Node(victim).Engine().Peek("k"); !ok || cell.Version != w.Version {
		t.Fatal("Fail must preserve node state")
	}
	h.cluster.Recover(victim)
	h.eng.RunFor(2 * time.Second)
	if cell, ok := h.cluster.Node(victim).Engine().Peek("k"); !ok || cell.Version != w.Version {
		t.Fatal("state lost across Fail/Recover")
	}

	// Restart pairs with Crash: a node that never crashed must not be
	// restartable.
	mustPanic(t, "Restart without Crash", func() { h.cluster.Restart(victim) })

	// Process crash: the MemEngine node comes back empty.
	h.cluster.Crash(victim)
	h.eng.RunFor(2 * time.Second)
	// Recover pairs with Fail, not Crash: the crashed node would stay
	// deaf while the detector marks it up.
	mustPanic(t, "Recover after Crash", func() { h.cluster.Recover(victim) })
	mustPanic(t, "double Crash", func() { h.cluster.Crash(victim) })
	rs := h.cluster.Restart(victim)
	if rs.Keys != 0 || rs.WALRecords != 0 {
		t.Fatalf("MemEngine recovered state from nowhere: %+v", rs)
	}
	if _, ok := h.cluster.Node(victim).Engine().Peek("k"); ok {
		t.Fatal("Crash must lose MemEngine state")
	}
	if h.cluster.Usage().Crashes != 1 {
		t.Fatalf("usage crashes = %d", h.cluster.Usage().Crashes)
	}
}

// TestCrashRestartLSMReplaysWAL: an LSM node recovers its durable prefix
// by itself, before any repair traffic reaches it.
func TestCrashRestartLSMReplaysWAL(t *testing.T) {
	h := newHarness(netsim.SingleDC(5), lsmConfig(12))
	var versions []storage.Version
	for i := 0; i < 40; i++ {
		w := h.write(key(i), []byte("payload-payload-payload"), kv.All)
		if w.Err != nil {
			t.Fatal(w.Err)
		}
		versions = append(versions, w.Version)
	}
	h.eng.Run()
	victim := h.cluster.Strategy().Replicas(key(0))[0]

	h.cluster.Crash(victim)
	h.eng.RunFor(2 * time.Second)
	rs := h.cluster.Restart(victim)
	if rs.WALRecords == 0 && rs.RunsLoaded == 0 {
		t.Fatalf("LSM restart recovered nothing: %+v", rs)
	}
	// Every ALL-level write synced before the crash must be back without
	// any network help (background tasks are disabled in quietConfig).
	eng := h.cluster.Node(victim).Engine()
	recovered := 0
	for i := range versions {
		if cell, ok := eng.Peek(key(i)); ok && cell.Version == versions[i] {
			recovered++
		}
	}
	if recovered < rs.Keys {
		t.Fatalf("recovered %d keys, engine reports %d", recovered, rs.Keys)
	}
	if recovered == 0 {
		t.Fatal("no writes survived the crash despite the WAL")
	}
}

// TestCrashRecoveryCatchUp: after restart, hinted handoff and
// anti-entropy converge the crashed replica back to the full write set —
// for both engines; the LSM node just starts from a much better prefix.
func TestCrashRecoveryCatchUp(t *testing.T) {
	for _, engine := range []storage.Kind{storage.Mem, storage.LSM} {
		t.Run(engine.String(), func(t *testing.T) {
			cfg := lsmConfig(13)
			cfg.Engine = engine
			cfg.HintReplayInterval = 100 * time.Millisecond
			cfg.AntiEntropyInterval = 150 * time.Millisecond
			cfg.AntiEntropySample = 256
			cfg.DetectionDelay = 50 * time.Millisecond
			h := newHarness(netsim.SingleDC(5), cfg)

			var latest []storage.Version
			for i := 0; i < 30; i++ {
				w := h.write(key(i), []byte("before-crash"), kv.Quorum)
				if w.Err != nil {
					t.Fatal(w.Err)
				}
				latest = append(latest, w.Version)
			}
			victim := h.cluster.Strategy().Replicas(key(0))[0]
			h.cluster.Crash(victim)
			h.eng.RunFor(1 * time.Second) // detector converges
			// Writes during the outage are hinted for the victim.
			for i := 0; i < 30; i++ {
				w := h.write(key(i), []byte("during-outage"), kv.Quorum)
				if w.Err != nil {
					t.Fatal(w.Err)
				}
				latest[i] = w.Version
			}
			h.cluster.Restart(victim)
			h.eng.RunFor(10 * time.Second) // hints + anti-entropy converge

			eng := h.cluster.Node(victim).Engine()
			for i := range latest {
				cell, ok := eng.Peek(key(i))
				if !ok || cell.Version != latest[i] {
					t.Fatalf("engine %v: key %s did not converge: ok=%v %+v want %v",
						engine, key(i), ok, cell.Version, latest[i])
				}
			}
			u := h.cluster.Usage()
			if u.Crashes != 1 || u.WALReplays != 1 {
				t.Fatalf("usage: crashes=%d replays=%d", u.Crashes, u.WALReplays)
			}
		})
	}
}

// TestCrashDropsInFlightCoordination: operations coordinated by the
// crashing node fail via the client guard instead of hanging, and a
// restarted node serves fresh traffic.
func TestCrashDropsInFlightCoordination(t *testing.T) {
	cfg := quietConfig(14)
	cfg.Coordinator = kv.CoordRoundRobin
	h := newHarness(netsim.SingleDC(3), cfg)
	if w := h.write("warm", []byte("v"), kv.All); w.Err != nil {
		t.Fatal(w.Err)
	}
	h.eng.Run()

	// Launch a write and crash its coordinator before completion: the
	// round-robin picker will choose node order[rr%n]; issue and
	// immediately crash every node once to cover whichever coordinates.
	done := 0
	var errs []error
	for i := 0; i < 3; i++ {
		h.cluster.Write("inflight", []byte("x"), kv.All, func(r kv.WriteResult) {
			done++
			if r.Err != nil {
				errs = append(errs, r.Err)
			}
		})
	}
	h.cluster.Crash(0)
	for done < 3 && h.eng.Step() {
	}
	if done != 3 {
		t.Fatalf("client callbacks fired %d/3 (operation hung after crash)", done)
	}
	h.cluster.Restart(0)
	h.eng.RunFor(2 * time.Second)
	if w := h.write("after", []byte("v2"), kv.Quorum); w.Err != nil {
		t.Fatalf("write after restart: %v", w.Err)
	}
}
