package kv_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// elasticConfig is quietConfig restricted to three founding members of a
// five-node topology, so nodes 3 and 4 can Join.
func elasticConfig(seed uint64) kv.Config {
	cfg := quietConfig(seed)
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2}
	cfg.WarmupDuration = 500 * time.Millisecond
	return cfg
}

// mkey varies the leading characters: KeyToken's FNV-1a spreads prefix
// differences across the whole ring but clusters trailing-digit ones, so
// prefix-varying keys exercise rebalancing with a small key count.
func mkey(i int) string { return fmt.Sprintf("%04d-member", i) }

// TestJoinStreamsDataAndFlipsPlacement pins the bootstrap path on both
// engines: a joining node receives exactly the ranges it will own via
// snapshot streaming, the placement flips only after streaming completes,
// and the node passes through warming into live. Background repair is
// disabled, so every cell on the joiner arrived through the stream.
func TestJoinStreamsDataAndFlipsPlacement(t *testing.T) {
	for _, engine := range []storage.Kind{storage.Mem, storage.LSM} {
		t.Run(engine.String(), func(t *testing.T) {
			cfg := elasticConfig(21)
			cfg.Engine = engine
			if engine == storage.LSM {
				cfg.FlushLimit = 2 << 10 // several runs, so the snapshot merges
				cfg.WALSyncBytes = 1 << 10
			}
			h := newHarness(netsim.SingleDC(5), cfg)

			versions := make(map[string]storage.Version)
			for i := 0; i < 80; i++ {
				w := h.write(mkey(i), []byte("pre-join-payload"), kv.All)
				if w.Err != nil {
					t.Fatal(w.Err)
				}
				versions[mkey(i)] = w.Version
			}
			h.eng.Run()

			if got := len(h.cluster.Members()); got != 3 {
				t.Fatalf("members = %d before join", got)
			}
			h.cluster.Join(3)
			if s := h.cluster.State(3); s != kv.StateBootstrapping {
				t.Fatalf("state during streaming = %v", s)
			}
			h.eng.RunFor(300 * time.Millisecond)
			if s := h.cluster.State(3); s != kv.StateWarming {
				t.Fatalf("state after streaming = %v, want warming", s)
			}
			h.eng.RunFor(time.Second)
			if s := h.cluster.State(3); s != kv.StateLive {
				t.Fatalf("state after warmup = %v, want live", s)
			}
			if got := len(h.cluster.Members()); got != 4 {
				t.Fatalf("members = %d after join", got)
			}

			// The joiner must hold the latest version of every key it now
			// owns — and nothing else reached it (no AE, no hints).
			eng := h.cluster.Node(3).Engine()
			owned := 0
			for i := 0; i < 80; i++ {
				k := mkey(i)
				replicas := h.cluster.Strategy().Replicas(k)
				isReplica := false
				for _, r := range replicas {
					if r == 3 {
						isReplica = true
					}
				}
				cell, ok := eng.Peek(k)
				if isReplica {
					owned++
					if !ok || cell.Version != versions[k] {
						t.Fatalf("joiner missing owned key %s (ok=%v ver=%v want %v)", k, ok, cell.Version, versions[k])
					}
				} else if ok {
					t.Fatalf("joiner holds un-owned key %s", k)
				}
			}
			if owned == 0 {
				t.Fatal("rebalance moved no ownership to the joiner")
			}
			u := h.cluster.Usage()
			if u.Joins != 1 || u.StreamedCells == 0 || u.StreamChunks == 0 || u.StreamInCells == 0 {
				t.Fatalf("stream accounting: %+v", u)
			}
			if u.StreamInCells != uint64(owned) {
				t.Fatalf("streamed-in cells %d != owned keys %d", u.StreamInCells, owned)
			}
		})
	}
}

// TestJoinAblationSkipsStreaming pins the hints+AE-only ablation: with
// DisableJoinStream the node flips in immediately and empty.
func TestJoinAblationSkipsStreaming(t *testing.T) {
	cfg := elasticConfig(22)
	cfg.DisableJoinStream = true
	h := newHarness(netsim.SingleDC(5), cfg)
	for i := 0; i < 40; i++ {
		if w := h.write(mkey(i), []byte("v"), kv.All); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	h.eng.Run()
	h.cluster.Join(3)
	if s := h.cluster.State(3); s != kv.StateWarming {
		t.Fatalf("ablation join should flip immediately into warming, got %v", s)
	}
	if n := h.cluster.Node(3).Engine().Len(); n != 0 {
		t.Fatalf("ablation joiner holds %d cells, want 0", n)
	}
	if u := h.cluster.Usage(); u.StreamedCells != 0 {
		t.Fatalf("ablation streamed %d cells", u.StreamedCells)
	}
}

// TestDecommissionHandsOffOwnership pins scale-down: the leaver streams
// each key it owns to the nodes that newly own it, then leaves the ring;
// quorum reads stay fresh with no repair machinery running.
func TestDecommissionHandsOffOwnership(t *testing.T) {
	cfg := quietConfig(23)
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2, 3}
	cfg.WarmupDuration = 200 * time.Millisecond
	h := newHarness(netsim.SingleDC(5), cfg)

	versions := make(map[string]storage.Version)
	for i := 0; i < 80; i++ {
		w := h.write(mkey(i), []byte("payload"), kv.All)
		if w.Err != nil {
			t.Fatal(w.Err)
		}
		versions[mkey(i)] = w.Version
	}
	h.eng.Run()

	h.cluster.Decommission(3)
	if s := h.cluster.State(3); s != kv.StateLeaving {
		t.Fatalf("state during handoff = %v", s)
	}
	h.eng.RunFor(2 * time.Second)
	if s := h.cluster.State(3); s != kv.StateDecommissioned {
		t.Fatalf("state after handoff = %v", s)
	}
	if got := len(h.cluster.Members()); got != 3 {
		t.Fatalf("members = %d after decommission", got)
	}

	// Every key's current replica set must hold the latest version — the
	// newly responsible nodes got theirs from the leaver's handoff stream.
	for i := 0; i < 80; i++ {
		k := mkey(i)
		for _, r := range h.cluster.Strategy().Replicas(k) {
			if r == 3 {
				t.Fatalf("key %s still places on the decommissioned node", k)
			}
			cell, ok := h.cluster.Node(r).Engine().Peek(k)
			if !ok || cell.Version != versions[k] {
				t.Fatalf("replica %d missing %s after handoff (ok=%v)", r, k, ok)
			}
		}
		if r := h.read(k, kv.Quorum); r.Err != nil || r.Stale || !r.Exists {
			t.Fatalf("quorum read after decommission: %+v", r)
		}
	}
	u := h.cluster.Usage()
	if u.Decommissions != 1 || u.StreamedCells == 0 {
		t.Fatalf("decommission accounting: %+v", u)
	}
}

// TestRejoinAfterDecommission pins the full cycle: a decommissioned node
// can Join again as a fresh machine and serve.
func TestRejoinAfterDecommission(t *testing.T) {
	cfg := quietConfig(24)
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2, 3}
	h := newHarness(netsim.SingleDC(5), cfg)
	for i := 0; i < 20; i++ {
		if w := h.write(mkey(i), []byte("v"), kv.Quorum); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	h.cluster.Decommission(3)
	h.eng.RunFor(2 * time.Second)
	h.cluster.Join(3)
	h.eng.RunFor(2 * time.Second)
	if s := h.cluster.State(3); s != kv.StateLive {
		t.Fatalf("rejoined state = %v", s)
	}
	if got := len(h.cluster.Members()); got != 4 {
		t.Fatalf("members = %d after rejoin", got)
	}
	if r := h.read(mkey(0), kv.All); r.Err != nil || !r.Exists {
		t.Fatalf("ALL read after rejoin: %+v", r)
	}
}

// TestWarmingExcludedFromReads pins recovery-aware read routing: a
// restarted (empty, still converging) replica is not counted into read
// quorums while warming, so ONE-level reads keep returning data; with
// warming disabled the same scenario serves misses from the empty
// replica. No repair machinery runs, so the replica stays empty.
func TestWarmingExcludedFromReads(t *testing.T) {
	run := func(warmup time.Duration) (misses int) {
		cfg := quietConfig(25)
		cfg.WarmupDuration = warmup
		h := newHarness(netsim.SingleDC(4), cfg)
		if w := h.write("hot", []byte("v"), kv.All); w.Err != nil {
			panic(w.Err)
		}
		h.eng.Run()
		victim := h.cluster.Strategy().Replicas("hot")[0]
		h.cluster.Crash(victim)
		h.eng.RunFor(2 * time.Second)
		h.cluster.Restart(victim) // MemEngine: comes back empty
		h.eng.RunFor(2 * time.Second)
		for i := 0; i < 12; i++ { // rotate coordinators past the victim
			if r := h.read("hot", kv.One); !r.Exists {
				misses++
			}
		}
		return misses
	}
	if m := run(0); m == 0 {
		t.Fatal("control: with warming disabled the empty replica should serve misses")
	}
	if m := run(time.Minute); m != 0 {
		t.Fatalf("warming replica served %d misses; it must be excluded from ONE-level reads", m)
	}
}

// TestWarmingStillServesQuorumWhenNeeded pins the availability
// fallback: when excluding warming replicas would make the level
// unreachable, they are contacted anyway.
func TestWarmingStillServesQuorumWhenNeeded(t *testing.T) {
	cfg := quietConfig(26)
	cfg.WarmupDuration = time.Minute
	h := newHarness(netsim.SingleDC(3), cfg) // RF 3 on 3 nodes
	if w := h.write("hot", []byte("v"), kv.All); w.Err != nil {
		t.Fatal(w.Err)
	}
	h.eng.Run()
	h.cluster.Crash(1)
	h.eng.RunFor(2 * time.Second)
	h.cluster.Restart(1)
	h.eng.RunFor(2 * time.Second)
	// ALL must still reach 3 replicas, warming included.
	if r := h.read("hot", kv.All); r.Err != nil {
		t.Fatalf("ALL read with a warming replica: %+v", r)
	}
}

// TestMembershipContract pins the panics: no concurrent changes, no
// joining members, no leaving below the replication factor, and no
// decommission of unsettled nodes.
func TestMembershipContract(t *testing.T) {
	cfg := elasticConfig(27)
	h := newHarness(netsim.SingleDC(5), cfg)
	h.eng.Run()

	mustPanic(t, "Join of a member", func() { h.cluster.Join(0) })
	mustPanic(t, "Join outside the topology", func() { h.cluster.Join(9) })
	mustPanic(t, "Decommission below RF", func() { h.cluster.Decommission(2) })
	mustPanic(t, "Fail of a non-member", func() { h.cluster.Fail(4) })

	h.cluster.Join(3)
	mustPanic(t, "concurrent Join", func() { h.cluster.Join(4) })
	mustPanic(t, "Decommission during Join", func() { h.cluster.Decommission(0) })
	h.eng.RunFor(200 * time.Millisecond) // streaming done; node is warming
	mustPanic(t, "Decommission of a warming node", func() { h.cluster.Decommission(3) })
	h.eng.RunFor(time.Second)
	if s := h.cluster.State(3); s != kv.StateLive {
		t.Fatalf("state = %v", s)
	}

	// Sequential changes are fine once the previous one settled.
	h.cluster.Join(4)
	h.eng.RunFor(2 * time.Second)
	if got := len(h.cluster.Members()); got != 5 {
		t.Fatalf("members = %d", got)
	}
	h.cluster.Decommission(4)
	h.eng.RunFor(2 * time.Second)
	if got := len(h.cluster.Members()); got != 4 {
		t.Fatalf("members = %d after decommission", got)
	}
}

// slowStreamConfig makes handoff streaming take real virtual time: one
// chunk per key, each paying a constant 50 ms of read-stage service.
func slowStreamConfig(seed uint64) kv.Config {
	cfg := elasticConfig(seed)
	cfg.Timeout = 200 * time.Millisecond // membership wedge guard at 1 s
	cfg.StreamChunkBytes = 8             // one cell per chunk
	cfg.ReadService = netsim.Constant(50 * time.Millisecond)
	cfg.Concurrency = 1 // chunks drain serially: ~30 keys ≈ 1.5 s of streaming
	return cfg
}

// TestStaleGuardDoesNotFlipNextChange pins the guard-generation fix:
// the wedge-guard timer armed for an earlier, completed Join must not
// force-flip a LATER Join of the same node mid-stream. (Cross-kind
// staleness is already rejected by finishJoin/finishDecommission's kind
// checks; same-kind same-id staleness — join, decommission, re-join
// inside one guard window — is what only the generation stamp catches.)
func TestStaleGuardDoesNotFlipNextChange(t *testing.T) {
	cfg := slowStreamConfig(31)
	cfg.Timeout = 100 * time.Millisecond // guards fire 0.5 s after arming
	cfg.WarmupDuration = 50 * time.Millisecond
	h := newHarness(netsim.SingleDC(5), cfg)
	runUntil := func(at time.Duration) {
		if d := at - h.tr.Now(); d > 0 {
			h.eng.RunFor(d)
		}
	}

	h.cluster.Join(3) // no data yet: completes instantly; its stale guard fires at t≈0.5s
	runUntil(200 * time.Millisecond)
	if s := h.cluster.State(3); s != kv.StateLive {
		t.Fatalf("first join did not settle: %v", s)
	}
	h.cluster.Decommission(3) // still no data: instant
	if s := h.cluster.State(3); s != kv.StateDecommissioned {
		t.Fatalf("empty decommission should be instant: %v", s)
	}
	versions := make(map[string]storage.Version)
	for i := 0; i < 40; i++ {
		w := h.write(mkey(i), []byte("v"), kv.All)
		if w.Err != nil {
			t.Fatal(w.Err)
		}
		versions[mkey(i)] = w.Version
	}
	runUntil(300 * time.Millisecond)
	// Re-join: now there is data to stream, one 50 ms chunk per key
	// through single read slots, so bootstrap streaming spans the first
	// join's stale guard at t≈0.5s.
	h.cluster.Join(3)
	runUntil(550 * time.Millisecond)
	if s := h.cluster.State(3); s != kv.StateBootstrapping {
		t.Fatalf("placement flipped prematurely (stale guard): state = %v", s)
	}
	h.eng.RunFor(5 * time.Second)
	if s := h.cluster.State(3); s != kv.StateLive {
		t.Fatalf("re-join never completed: %v", s)
	}
	eng := h.cluster.Node(3).Engine()
	for i := 0; i < 40; i++ {
		k := mkey(i)
		for _, r := range h.cluster.Strategy().Replicas(k) {
			if r != 3 {
				continue
			}
			if cell, ok := eng.Peek(k); !ok || cell.Version != versions[k] {
				t.Fatalf("joiner missing owned key %s after re-join", k)
			}
		}
	}
}

// TestRestartOfDecommissionedStaysDecommissioned pins that a node whose
// decommission completed while it was crashed does not resurrect into
// the member states through Restart's warming path.
func TestRestartOfDecommissionedStaysDecommissioned(t *testing.T) {
	h := newHarness(netsim.SingleDC(5), slowStreamConfig(32))
	h.eng.Run()
	for i := 0; i < 40; i++ {
		if w := h.write(mkey(i), []byte("v"), kv.Quorum); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	// InitialMembers is {0,1,2} plus RF 3, so grow to 4 first.
	h.cluster.Join(3)
	h.eng.RunFor(2 * time.Second)
	h.cluster.Decommission(3)
	h.cluster.Crash(3) // mid-handoff; the wedge guard completes the decommission
	h.eng.RunFor(3 * time.Second)
	if s := h.cluster.State(3); s != kv.StateCrashed {
		t.Fatalf("state = %v, want crashed", s)
	}
	h.cluster.Restart(3)
	h.eng.RunFor(2 * time.Second)
	if s := h.cluster.State(3); s != kv.StateDecommissioned {
		t.Fatalf("restart resurrected a decommissioned node: %v", s)
	}
	if h.cluster.IsMember(3) || len(h.cluster.Members()) != 3 {
		t.Fatalf("ghost member: members=%v", h.cluster.Members())
	}
}

// TestJoinSurvivesStreamSourceFailure pins the wedge guard: a peer that
// fails mid-stream cannot stall the join forever — the guard timer flips
// the placement and the joiner converges through the normal machinery.
func TestJoinSurvivesStreamSourceFailure(t *testing.T) {
	cfg := elasticConfig(28)
	h := newHarness(netsim.SingleDC(5), cfg)
	for i := 0; i < 40; i++ {
		if w := h.write(mkey(i), []byte("v"), kv.All); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	h.eng.Run()
	h.cluster.Join(3)
	h.cluster.Fail(0) // a stream source dies before its chunks leave
	h.eng.RunFor(15 * time.Second)
	if s := h.cluster.State(3); s != kv.StateLive {
		t.Fatalf("join wedged: state = %v", s)
	}
	if got := len(h.cluster.Members()); got != 4 {
		t.Fatalf("members = %d", got)
	}
}
