package kv

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// newDrainHarness builds a small elastic cluster for white-box
// queue-drain tests.
func newDrainHarness(t *testing.T, warmup time.Duration) (*sim.Engine, *Cluster) {
	t.Helper()
	topo := netsim.SingleDC(6)
	eng := sim.New(1)
	tr := netsim.NewTransport(eng, topo)
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2}
	cfg.WarmupDuration = warmup
	cfg.HintReplayInterval = 0
	cfg.AntiEntropyInterval = 0
	return eng, New(topo, tr, cfg)
}

// TestMembershipSettledDrainWindow pins the warm-expiry → drain-tick
// race: drainMembershipQueue schedules runQueuedChange at zero delay,
// and in the window before that event pops the queue an observer must
// not see MembershipSettled() == true — the drain may be about to start
// a change. The white-box probe manufactures the exact window: a drain
// event in flight with nothing else (no pending change, empty queue,
// no warming) left to report unsettled.
func TestMembershipSettledDrainWindow(t *testing.T) {
	eng, c := newDrainHarness(t, 0)

	if !c.MembershipSettled() {
		t.Fatal("fresh cluster must be settled")
	}
	c.membershipQueue = []queuedChange{{join: true, id: 3}}
	c.drainMembershipQueue() // draining = 1, event scheduled
	// Simulate the queue having been consumed by a same-instant path:
	// before the fix, settled was a pure function of pending/queue/warming
	// and this state read as quiescent with a drain still in flight.
	c.membershipQueue = nil
	if c.draining != 1 {
		t.Fatalf("draining = %d, want 1 while the drain event is in flight", c.draining)
	}
	if c.MembershipSettled() {
		t.Fatal("settled during the drain window — a controller could start a racing change")
	}
	eng.Step() // runQueuedChange: decrements the counter, finds nothing
	if c.draining != 0 {
		t.Fatalf("draining = %d after the drain ran, want 0", c.draining)
	}
	if !c.MembershipSettled() {
		t.Fatal("not settled after the drain event ran on an empty queue")
	}
}

// TestMembershipSettledNeverLiesDuringQueuedJoin sweeps the realistic
// path: while a queued TryJoin is anywhere between "queued" and "warm",
// MembershipSettled must never report true. The first true must
// coincide with the queued node being a full warm member.
func TestMembershipSettledNeverLiesDuringQueuedJoin(t *testing.T) {
	eng, c := newDrainHarness(t, 200*time.Millisecond)
	eng.RunFor(50 * time.Millisecond)

	c.Join(3) // in flight...
	if err := c.TryJoin(4); err != nil {
		t.Fatal(err)
	}
	if len(c.membershipQueue) != 1 {
		t.Fatalf("TryJoin during a change should queue, queue len = %d", len(c.membershipQueue))
	}

	settledAt := time.Duration(-1)
	for eng.Step() {
		if !c.MembershipSettled() {
			continue
		}
		if len(c.Members()) != 5 {
			t.Fatalf("settled at %v with %d members — the queued join was still pending",
				eng.Now(), len(c.Members()))
		}
		if len(c.warming) != 0 || c.draining != 0 {
			t.Fatalf("settled at %v with warming=%d draining=%d",
				eng.Now(), len(c.warming), c.draining)
		}
		if settledAt < 0 {
			settledAt = eng.Now()
		}
	}
	if settledAt < 0 {
		t.Fatal("cluster never settled")
	}
}
