package kv

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/wire"
)

// roundTrip marshals payload as a frame, reads it back and decodes it.
func roundTrip(t *testing.T, from, to netsim.NodeID, payload any) any {
	t.Helper()
	buf, ok := MarshalMessage(nil, from, to, payload)
	if !ok {
		t.Fatalf("MarshalMessage(%T): no wire form", payload)
	}
	kind, body, n, err := wire.ReadFrame(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("ReadFrame: n=%d err=%v", n, err)
	}
	gotFrom, gotTo, decoded, err := UnmarshalMessage(kind, body)
	if err != nil {
		t.Fatalf("UnmarshalMessage: %v", err)
	}
	if gotFrom != from || gotTo != to {
		t.Fatalf("addresses %d->%d, want %d->%d", gotFrom, gotTo, from, to)
	}
	return decoded
}

func testCell(ts int64, val string) storage.Cell {
	c := storage.Cell{Version: storage.Version{Timestamp: time.Duration(ts), Seq: 7}}
	if val == "" {
		c.Tombstone = true
	} else {
		c.Value = []byte(val)
	}
	return c
}

func TestWireMessageRoundTrips(t *testing.T) {
	cell := testCell(12345, "value-bytes")
	tomb := testCell(999, "")
	cases := []struct {
		name    string
		payload any
		want    any // value to compare against (marshal consumes pooled boxes)
	}{
		{"replicaRead", &replicaRead{ID: 42, Key: "k1", Digest: true, Coord: 3, RingSeq: 9},
			replicaRead{ID: 42, Key: "k1", Digest: true, Coord: 3, RingSeq: 9}},
		{"replicaReadResp", &replicaReadResp{ID: 42, Key: "k1", Cell: cell, Exists: true, Digest: false, From: 2},
			replicaReadResp{ID: 42, Key: "k1", Cell: cell, Exists: true, From: 2}},
		{"replicaWrite", &replicaWrite{ID: 7, Key: "k2", Cell: tomb, Coord: 1, Repair: true, Hint: true, RingSeq: 4},
			replicaWrite{ID: 7, Key: "k2", Cell: tomb, Coord: 1, Repair: true, Hint: true, RingSeq: 4}},
		{"replicaWriteAck", &replicaWriteAck{ID: 7, Key: "k2", Version: cell.Version, From: 5},
			replicaWriteAck{ID: 7, Key: "k2", Version: cell.Version, From: 5}},
		{"replicaBatchRead", &replicaBatchRead{ID: 8, Idxs: []int{0, 2}, Keys: []string{"a", "b"}, Coord: 0, RingSeq: 2},
			replicaBatchRead{ID: 8, Idxs: []int{0, 2}, Keys: []string{"a", "b"}, RingSeq: 2}},
		{"replicaBatchReadResp", &replicaBatchReadResp{ID: 8, Items: []batchReadItem{{Idx: 0, Cell: cell, Exists: true}, {Idx: 2}}, From: 1},
			replicaBatchReadResp{ID: 8, Items: []batchReadItem{{Idx: 0, Cell: cell, Exists: true}, {Idx: 2}}, From: 1}},
		{"replicaBatchWrite", &replicaBatchWrite{ID: 9, Idxs: []int{1}, Keys: []string{"c"}, Cells: []storage.Cell{cell}, Coord: 2, RingSeq: 3},
			replicaBatchWrite{ID: 9, Idxs: []int{1}, Keys: []string{"c"}, Cells: []storage.Cell{cell}, Coord: 2, RingSeq: 3}},
		{"replicaBatchWriteAck", &replicaBatchWriteAck{ID: 9, Idxs: []int{1, 5}, From: 4},
			replicaBatchWriteAck{ID: 9, Idxs: []int{1, 5}, From: 4}},
		{"aeOffer", aeOffer{Keys: []string{"x", "y"}, Versions: []storage.Version{cell.Version, tomb.Version}, From: 2},
			aeOffer{Keys: []string{"x", "y"}, Versions: []storage.Version{cell.Version, tomb.Version}, From: 2}},
		{"aeReply", aeReply{Updates: []aeCell{{Key: "x", Cell: cell}}, Want: []string{"y"}, From: 3},
			aeReply{Updates: []aeCell{{Key: "x", Cell: cell}}, Want: []string{"y"}, From: 3}},
		{"aePush", aePush{Updates: []aeCell{{Key: "z", Cell: tomb}}},
			aePush{Updates: []aeCell{{Key: "z", Cell: tomb}}}},
		{"streamRequest",
			&streamRequest{Joiner: 6, Ranges: []ring.Range{{Start: ^ring.Token(0) - 9, End: 40}, {Start: 40, End: 99}}},
			streamRequest{Joiner: 6, Ranges: []ring.Range{{Start: ^ring.Token(0) - 9, End: 40}, {Start: 40, End: 99}}}},
		{"streamChunk", &streamChunk{From: 1, Data: []byte{1, 2, 3}, Count: 3},
			streamChunk{From: 1, Data: []byte{1, 2, 3}, Count: 3}},
		{"streamDone", &streamDone{From: 1, Chunks: 2, Cells: 30, Bytes: 4096, NeedAck: true},
			streamDone{From: 1, Chunks: 2, Cells: 30, Bytes: 4096, NeedAck: true}},
		{"streamAck", &streamAck{From: 6}, streamAck{From: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			decoded := roundTrip(t, 3, 11, tc.payload)
			got := reflect.ValueOf(decoded)
			if got.Kind() == reflect.Pointer {
				got = got.Elem()
			}
			if !reflect.DeepEqual(got.Interface(), tc.want) {
				t.Fatalf("decoded %+v, want %+v", got.Interface(), tc.want)
			}
		})
	}
}

func TestWireMessageNoForm(t *testing.T) {
	// Client and gossip messages never cross processes: coordinator
	// selection is pinned to local nodes, and multi-process gossip is an
	// explicit follow-on. The codec must refuse them, not mis-frame them.
	for _, payload := range []any{
		&clientRead{}, &clientWrite{}, gossipTick{}, aeTick{}, hintTick{}, &workDone{},
	} {
		if _, ok := MarshalMessage(nil, 0, 1, payload); ok {
			t.Fatalf("MarshalMessage(%T) claimed a wire form", payload)
		}
	}
}

func TestWireMessageCorrupt(t *testing.T) {
	buf, ok := MarshalMessage(nil, 0, 1, &replicaRead{ID: 1, Key: "k", Coord: 2})
	if !ok {
		t.Fatal("no wire form")
	}
	kind, body, _, err := wire.ReadFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated bodies must decode to an error, never panic.
	for cut := 0; cut < len(body); cut++ {
		if _, _, _, err := UnmarshalMessage(kind, append([]byte(nil), body[:cut]...)); err == nil {
			t.Fatalf("truncated body (%d of %d bytes) decoded cleanly", cut, len(body))
		}
	}
	if _, _, _, err := UnmarshalMessage(200, body); err == nil {
		t.Fatal("unknown kind decoded cleanly")
	}
}

// BenchmarkWireRoundTripLoopback measures the full inter-process codec
// path: marshal a replica write into a frame, read the frame back and
// decode it — the per-message cost of the TCP mesh.
func BenchmarkWireRoundTripLoopback(b *testing.B) {
	value := make([]byte, 64)
	for i := range value {
		value[i] = 'x'
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := newReplicaWrite(replicaWrite{
			ID: reqID(i), Key: "key:12345678",
			Cell:  storage.Cell{Version: storage.Version{Timestamp: time.Duration(i), Seq: 1}, Value: value},
			Coord: 1, RingSeq: 3,
		})
		var ok bool
		buf, ok = MarshalMessage(buf[:0], 1, 2, w)
		if !ok {
			b.Fatal("no wire form")
		}
		kind, body, _, err := wire.ReadFrame(buf)
		if err != nil {
			b.Fatal(err)
		}
		_, _, payload, err := UnmarshalMessage(kind, body)
		if err != nil {
			b.Fatal(err)
		}
		rw := payload.(*replicaWrite)
		*rw = replicaWrite{}
		replicaWritePool.Put(rw)
	}
}
