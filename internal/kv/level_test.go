package kv

import (
	"testing"

	"repro/internal/netsim"
)

func levelTopo() (*netsim.Topology, []netsim.NodeID) {
	topo := netsim.NewTopology()
	topo.AddDC("dc1", "r", 3)
	topo.AddDC("dc2", "r", 3)
	// Replicas: 2 in dc1 (0,1), 1 in dc2 (3).
	return topo, []netsim.NodeID{0, 1, 3}
}

func TestLevelResolveTotals(t *testing.T) {
	topo, reps := levelTopo()
	cases := []struct {
		lvl  Level
		want int
	}{
		{One, 1}, {Two, 2}, {Three, 3}, {Quorum, 2}, {All, 3},
		{Count(2), 2}, {Count(99), 3}, {Count(0), 1},
	}
	for _, c := range cases {
		req := c.lvl.resolve(reps, topo, "dc1")
		if req.perDC != nil {
			t.Errorf("%v: unexpected per-DC requirement", c.lvl)
			continue
		}
		if req.total != c.want {
			t.Errorf("%v: total = %d, want %d", c.lvl, req.total, c.want)
		}
	}
}

func TestLevelResolveLocalQuorum(t *testing.T) {
	topo, reps := levelTopo()
	req := LocalQuorum.resolve(reps, topo, "dc1")
	if req.perDC == nil || req.perDC["dc1"] != 2 {
		t.Errorf("LOCAL_QUORUM in dc1 = %+v, want dc1:2", req.perDC)
	}
	// Coordinator in a DC without replicas degrades to plain quorum.
	topo2 := netsim.NewTopology()
	topo2.AddDC("dc1", "r", 3)
	topo2.AddDC("dc3", "r", 1)
	req2 := LocalQuorum.resolve([]netsim.NodeID{0, 1, 2}, topo2, "dc3")
	if req2.perDC != nil || req2.total != 2 {
		t.Errorf("degraded LOCAL_QUORUM = %+v", req2)
	}
}

func TestLevelResolveEachQuorum(t *testing.T) {
	topo, reps := levelTopo()
	req := EachQuorum.resolve(reps, topo, "dc1")
	if req.perDC["dc1"] != 2 || req.perDC["dc2"] != 1 {
		t.Errorf("EACH_QUORUM = %+v", req.perDC)
	}
	if req.needed() != 3 {
		t.Errorf("needed = %d", req.needed())
	}
}

func TestRequirementSatisfied(t *testing.T) {
	total := requirement{total: 2}
	if total.satisfiedCounts(1, nil) {
		t.Error("1 ack satisfied total 2")
	}
	if !total.satisfiedCounts(2, nil) {
		t.Error("2 acks did not satisfy total 2")
	}
	per := requirement{perDC: map[string]int{"a": 2, "b": 1}}
	if per.satisfiedCounts(2, map[string]int{"a": 2}) {
		t.Error("missing DC satisfied per-DC requirement")
	}
	if !per.satisfiedCounts(3, map[string]int{"a": 2, "b": 1}) {
		t.Error("complete per-DC acks not satisfied")
	}
}

func TestLevelReplicasNumeric(t *testing.T) {
	cases := []struct {
		lvl  Level
		rf   int
		want int
	}{
		{One, 5, 1}, {Two, 5, 2}, {Three, 5, 3},
		{Quorum, 5, 3}, {Quorum, 3, 2}, {All, 5, 5},
		{LocalQuorum, 5, 3}, {EachQuorum, 5, 3},
		{Count(4), 5, 4}, {Count(9), 5, 5},
		{Two, 1, 1},
	}
	for _, c := range cases {
		if got := c.lvl.Replicas(c.rf); got != c.want {
			t.Errorf("%v.Replicas(%d) = %d, want %d", c.lvl, c.rf, got, c.want)
		}
	}
}

func TestLevelString(t *testing.T) {
	names := map[string]Level{
		"ONE": One, "TWO": Two, "THREE": Three, "QUORUM": Quorum,
		"ALL": All, "LOCAL_QUORUM": LocalQuorum, "EACH_QUORUM": EachQuorum,
		"K(4)": Count(4),
	}
	for want, lvl := range names {
		if lvl.String() != want {
			t.Errorf("%v.String() = %s", lvl, lvl.String())
		}
	}
}
