package kv_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
)

// queueConfig is elasticConfig over a six-node topology with four
// founding members, so two spares can join.
func queueConfig(seed uint64) kv.Config {
	cfg := quietConfig(seed)
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2, 3}
	cfg.WarmupDuration = 500 * time.Millisecond
	return cfg
}

// queueScenario runs the overlapping-change scenario and returns the
// final member set plus the membership counters, for the determinism
// comparison below.
func queueScenario(t *testing.T, seed uint64) ([]netsim.NodeID, kv.Usage) {
	t.Helper()
	h := newHarness(netsim.SingleDC(6), queueConfig(seed))
	for i := 0; i < 30; i++ {
		if w := h.write(mkey(i), []byte("v"), kv.Quorum); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	h.eng.Run()

	// A join is in flight; overlapping requests must queue, not race.
	h.cluster.Join(4)
	if h.cluster.MembershipSettled() {
		t.Fatal("cluster reports settled with a join in flight")
	}
	if err := h.cluster.TryJoin(5); err != nil {
		t.Fatalf("TryJoin(5) during a change: %v", err)
	}
	if err := h.cluster.TryDecommission(0); err != nil {
		t.Fatalf("TryDecommission(0) during a change: %v", err)
	}
	// At most one queued change per node.
	if err := h.cluster.TryJoin(5); err == nil {
		t.Fatal("duplicate queued TryJoin(5) accepted")
	}
	if err := h.cluster.TryDecommission(5); err == nil {
		t.Fatal("queued TryDecommission(5) over a queued join accepted")
	}

	// Nothing may have flipped yet: the queued decommission must not
	// race the in-flight join's placement flip.
	if got := len(h.cluster.Members()); got != 4 {
		t.Fatalf("members = %d while the first join still streams", got)
	}
	if s := h.cluster.State(0); s != kv.StateLive {
		t.Fatalf("queued decommission already acted: State(0) = %v", s)
	}

	h.eng.RunFor(10 * time.Second)
	return h.cluster.Members(), h.cluster.Usage()
}

// TestQueuedMembershipChanges is the regression test for overlapping
// Join/Decommission: requests issued while another change is in flight
// are queued deterministically (FIFO, one per node) and enacted one at
// a time — never racing the placement flip — with panics reserved for
// the blocking Join/Decommission entry points.
func TestQueuedMembershipChanges(t *testing.T) {
	members, u := queueScenario(t, 33)
	want := []netsim.NodeID{1, 2, 3, 4, 5}
	if fmt.Sprint(members) != fmt.Sprint(want) {
		t.Fatalf("members = %v, want %v (join 4, join 5, decommission 0 in FIFO order)", members, want)
	}
	if u.Joins != 2 || u.Decommissions != 1 {
		t.Fatalf("joins=%d decommissions=%d", u.Joins, u.Decommissions)
	}

	// Same seed → same sequence: the queue is deterministic.
	members2, u2 := queueScenario(t, 33)
	if fmt.Sprint(members2) != fmt.Sprint(members) || u2.StreamedCells != u.StreamedCells {
		t.Fatalf("same-seed queue runs diverged: %v/%d vs %v/%d",
			members, u.StreamedCells, members2, u2.StreamedCells)
	}
}

// TestTryJoinValidation pins the non-panicking validation errors.
func TestTryJoinValidation(t *testing.T) {
	h := newHarness(netsim.SingleDC(6), queueConfig(34))
	h.eng.Run()
	if err := h.cluster.TryJoin(0); err == nil {
		t.Error("TryJoin of a member accepted")
	}
	if err := h.cluster.TryJoin(9); err == nil {
		t.Error("TryJoin outside the topology accepted")
	}
	if err := h.cluster.TryDecommission(5); err == nil {
		t.Error("TryDecommission of a non-member accepted")
	}
	// 4 members at RF 3: one decommission is legal, a second would
	// under-replicate and must be rejected up front.
	if err := h.cluster.TryDecommission(3); err != nil {
		t.Fatalf("TryDecommission(3): %v", err)
	}
	h.eng.RunFor(5 * time.Second)
	if err := h.cluster.TryDecommission(2); err == nil {
		t.Error("TryDecommission below RF accepted")
	}
	if !h.cluster.MembershipSettled() {
		t.Error("cluster not settled after the queue drained")
	}
}

// TestQueuedChangeDroppedWhenInvalidated pins drain-time re-validation:
// a queued decommission whose target crashes before the drain is
// dropped instead of acting on a crashed node.
func TestQueuedChangeDroppedWhenInvalidated(t *testing.T) {
	h := newHarness(netsim.SingleDC(6), queueConfig(35))
	for i := 0; i < 20; i++ {
		if w := h.write(mkey(i), []byte("v"), kv.Quorum); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	h.eng.Run()

	h.cluster.Join(4)
	if err := h.cluster.TryDecommission(3); err != nil {
		t.Fatalf("TryDecommission(3): %v", err)
	}
	h.cluster.Crash(3) // invalidates the queued request
	h.eng.RunFor(10 * time.Second)

	if s := h.cluster.State(3); s != kv.StateCrashed {
		t.Fatalf("State(3) = %v, want crashed (queued decommission must be dropped)", s)
	}
	if got := len(h.cluster.Members()); got != 5 {
		t.Fatalf("members = %d, want 5 (join landed, drop left membership alone)", got)
	}
	u := h.cluster.Usage()
	if u.Decommissions != 0 {
		t.Fatalf("decommissions = %d, want 0", u.Decommissions)
	}
}
