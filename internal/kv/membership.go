package kv

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/storage"
)

// Elastic membership. The cluster's node set is mutable: Join adds a
// topology node to the ring, Decommission removes one, and both move
// only the ~1/N of key ownership the consistent-hash rebalance shifts.
// Data follows ownership through snapshot streaming (storage.Snapshot +
// the framed cell codec), modeled on Cassandra's bootstrap and
// decommission streaming:
//
//	Join(id):  the joiner asks every live member for the ranges it will
//	           own under the post-join placement; each key streams from
//	           a single source (its first live current replica). Only
//	           when every stream completed does the placement flip —
//	           reads and writes keep using the old owners until then —
//	           and the node enters warming: it takes writes but read
//	           coordinators deprioritize it until WarmupDuration
//	           elapses, covering the writes that landed between the
//	           snapshot point and the flip (anti-entropy and read
//	           repair close that gap).
//
//	Decommission(id): the leaver streams each key it owns to the nodes
//	           that newly own it under the post-removal placement, the
//	           targets acknowledge, and only then does the placement
//	           flip and the node leave the ring. Its actor stays
//	           registered so in-flight operations drain cleanly.
//
// One membership change runs at a time; a second Join/Decommission
// before the first flipped panics. Failure of a stream peer mid-change
// cannot wedge the cluster: a guard timer forces the flip after
// 5×Timeout and the normal repair machinery converges the stragglers.

// nodePhase is the membership leg of the node state machine, orthogonal
// to the failed/crashed failure leg.
type nodePhase uint8

const (
	phaseLive nodePhase = iota
	// phaseBootstrapping: joining, receiving snapshot streams; not yet
	// in the placement, coordinates nothing.
	phaseBootstrapping
	// phaseWarming: in the placement and taking writes, but excluded
	// from read quorums whenever enough converged replicas are live.
	phaseWarming
	// phaseLeaving: decommission in progress, streaming ownership out;
	// still a full member until the flip.
	phaseLeaving
	// phaseDecommissioned: off the ring; the actor survives only to
	// drain in-flight messages and for accounting.
	phaseDecommissioned
)

// NodeState is the externally visible node status, combining the
// membership phase with the failure state machine.
type NodeState int

// Node states, from Cluster.State.
const (
	StateNotMember NodeState = iota
	StateLive
	StateFailed
	StateCrashed
	StateBootstrapping
	StateWarming
	StateLeaving
	StateDecommissioned
)

// String names the state for logs and tables.
func (s NodeState) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateFailed:
		return "failed"
	case StateCrashed:
		return "crashed"
	case StateBootstrapping:
		return "bootstrapping"
	case StateWarming:
		return "warming"
	case StateLeaving:
		return "leaving"
	case StateDecommissioned:
		return "decommissioned"
	}
	return "not-member"
}

// membershipChange tracks the single in-flight Join or Decommission.
// gen distinguishes successive changes involving the same node, so a
// stale guard timer from a completed change cannot force-flip the next
// one mid-stream.
type membershipChange struct {
	join bool
	id   netsim.NodeID
	gen  uint64
	next ring.Strategy // post-change placement preview (streams route by it)
}

// Members returns the current ring members in ascending id order.
func (c *Cluster) Members() []netsim.NodeID {
	return append([]netsim.NodeID(nil), c.order...)
}

// IsMember reports whether id is currently on the ring.
func (c *Cluster) IsMember(id netsim.NodeID) bool {
	n, ok := c.nodes[id]
	return ok && n.phase != phaseDecommissioned && n.phase != phaseBootstrapping
}

// State reports the node's combined membership/failure state.
func (c *Cluster) State(id netsim.NodeID) NodeState {
	n, ok := c.nodes[id]
	switch {
	case !ok:
		return StateNotMember
	case n.crashed:
		return StateCrashed
	case n.failed:
		return StateFailed
	case n.phase == phaseBootstrapping:
		return StateBootstrapping
	case n.phase == phaseWarming:
		return StateWarming
	case n.phase == phaseLeaving:
		return StateLeaving
	case n.phase == phaseDecommissioned:
		return StateDecommissioned
	}
	return StateLive
}

// Join adds topology node id to the cluster. The node starts
// bootstrapping: current owners stream it the ranges it will own under
// the post-join placement, and only when streaming completes does the
// placement flip and the node enter warming (see the package comment
// above). A node that was decommissioned earlier rejoins as a fresh
// empty machine. Joining a current member, a node outside the topology,
// or while another membership change is in flight panics; TryJoin is
// the non-panicking, queueing variant automation should drive.
func (c *Cluster) Join(id netsim.NodeID) {
	if err := c.validateJoin(id); err != nil {
		panic("kv: " + err.Error())
	}
	if c.pending != nil {
		panic(fmt.Sprintf("kv: Join(%d) while a membership change is in flight", id))
	}
	c.startJoin(id)
}

// validateJoin reports why a Join cannot be issued, or nil.
func (c *Cluster) validateJoin(id netsim.NodeID) error {
	if id < 0 || int(id) >= c.topo.N() {
		return fmt.Errorf("Join(%d) outside topology (N=%d)", id, c.topo.N())
	}
	if old, ok := c.nodes[id]; ok && old.phase != phaseDecommissioned {
		return fmt.Errorf("Join(%d): already a member (%v)", id, c.State(id))
	}
	return nil
}

// startJoin begins a validated join while no other change is in flight.
func (c *Cluster) startJoin(id netsim.NodeID) {
	if old, ok := c.nodes[id]; ok {
		// The rejoin replaces the actor: bank the retiring incarnation's
		// meters so Usage keeps billing the work it did, and release its
		// WAL file, if any.
		accumulateNodeUsage(&c.retired, old)
		if err := old.engine.Close(); err != nil && c.closeErr == nil {
			// A failed WAL close on the retiring incarnation must not
			// vanish: Cluster.Close surfaces the first one.
			c.closeErr = err
		}
	}
	n := newNode(id, c)
	n.phase = phaseBootstrapping
	c.nodes[id] = n
	if !containsNode(c.allNodes, id) {
		c.allNodes = append(c.allNodes, id)
	}
	c.net.Register(id, n.Handle)

	c.membershipGen++
	c.pending = &membershipChange{
		join: true,
		id:   id,
		gen:  c.membershipGen,
		next: c.buildStrategy(append(c.Members(), id)),
	}
	c.armMembershipGuard(c.pending)

	if c.cfg.DisableJoinStream {
		// Ablation: no snapshot streaming — flip at once and let hinted
		// handoff, read repair and anti-entropy converge the empty node.
		c.finishJoin(id)
		return
	}
	var peers []netsim.NodeID
	for _, p := range c.order {
		if pn := c.nodes[p]; !pn.failed && !pn.crashed {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		c.finishJoin(id)
		return
	}
	// The arcs the joiner will own under the post-join placement: the
	// movements the membership change implies, filtered to ranges the
	// joiner enters. Every peer receives the same list and serves the
	// subset it sources, so stream work is proportional to the moved
	// ~1/N fraction, not the store size.
	var owned []ring.Range
	for _, mv := range ring.Diff(c.strategy, c.pending.next) {
		if containsNode(mv.New, id) {
			owned = append(owned, mv.Range)
		}
	}
	n.joinPending = len(peers)
	n.streamsIn = make(map[netsim.NodeID]*streamIn, len(peers))
	for _, p := range peers {
		c.net.Send(id, p, newStreamRequest(streamRequest{Joiner: id, Ranges: owned}), msgOverhead)
	}
}

// Decommission removes member id from the cluster. The leaver first
// streams every key it owns to the nodes that newly own it under the
// post-removal placement; once the targets acknowledge, the placement
// flips and the node leaves the ring (its actor drains in-flight work
// but coordinates nothing new). Decommissioning below the replication
// factor, a non-live node, or during another membership change panics;
// TryDecommission is the non-panicking, queueing variant automation
// should drive.
func (c *Cluster) Decommission(id netsim.NodeID) {
	if c.pending != nil {
		panic(fmt.Sprintf("kv: Decommission(%d) while a membership change is in flight", id))
	}
	n := c.mustBeLive(id, "Decommission")
	if n.phase != phaseLive {
		panic(fmt.Sprintf("kv: Decommission(%d) on a %v node; wait for it to settle", id, c.State(id)))
	}
	c.startDecommission(id)
}

// validateDecommission reports why a Decommission cannot be issued, or
// nil. It mirrors Decommission's panic conditions plus the
// under-replication guard buildStrategy would otherwise panic on.
func (c *Cluster) validateDecommission(id netsim.NodeID) error {
	n, ok := c.nodes[id]
	switch {
	case !ok || n.phase == phaseDecommissioned || n.phase == phaseBootstrapping:
		return fmt.Errorf("Decommission(%d): not a member", id)
	case n.failed:
		return fmt.Errorf("Decommission(%d): node is failed; Recover it first", id)
	case n.crashed:
		return fmt.Errorf("Decommission(%d): node is crashed; Restart it first", id)
	case n.phase != phaseLive:
		return fmt.Errorf("Decommission(%d): node is %v; wait for it to settle", id, c.State(id))
	}
	if len(c.order)-1 < c.strategy.RF() {
		return fmt.Errorf("Decommission(%d): %d survivors cannot carry RF %d",
			id, len(c.order)-1, c.strategy.RF())
	}
	if len(c.cfg.PerDC) > 0 {
		dc := c.topo.DCOf(id)
		left := 0
		for _, m := range c.order {
			if m != id && c.topo.DCOf(m) == dc {
				left++
			}
		}
		if left < c.cfg.PerDC[dc] {
			return fmt.Errorf("Decommission(%d): DC %s would drop to %d members below its replication count %d",
				id, dc, left, c.cfg.PerDC[dc])
		}
	}
	return nil
}

// startDecommission begins a validated decommission while no other
// change is in flight.
func (c *Cluster) startDecommission(id netsim.NodeID) {
	n := c.nodes[id]
	rest := make([]netsim.NodeID, 0, len(c.order)-1)
	for _, m := range c.order {
		if m != id {
			rest = append(rest, m)
		}
	}
	// buildStrategy panics when the survivors cannot carry the
	// replication factor (total or per-DC) — the under-provisioning
	// guard for scale-down.
	c.membershipGen++
	c.pending = &membershipChange{join: false, id: id, gen: c.membershipGen, next: c.buildStrategy(rest)}
	n.phase = phaseLeaving
	c.armMembershipGuard(c.pending)
	n.startDecommissionStream()
}

// A membership change issued while another is still in flight must not
// race the placement flip. Join/Decommission keep the loud contract —
// they panic — while TryJoin/TryDecommission queue the request
// deterministically: FIFO, at most one queued change per node, drained
// one at a time once the cluster settles (previous change flipped and
// every warming window elapsed). Queued requests are re-validated at
// drain time; a request the intervening changes made invalid (its node
// crashed, left, or would under-replicate a DC) is dropped.

// queuedChange is one deferred TryJoin/TryDecommission request.
type queuedChange struct {
	join bool
	id   netsim.NodeID
}

// MembershipSettled reports whether the cluster is quiescent membership-
// wise: no Join/Decommission in flight, none queued, no node still
// inside its post-join/post-restart warming window, and no queue-drain
// event in flight. The last clause closes a race: between a warming
// window expiring and its zero-delay drain event popping the queue, a
// same-instant observer must not see "settled" — the drain may be about
// to start a change. Controllers pace one change at a time on this.
func (c *Cluster) MembershipSettled() bool {
	return c.pending == nil && len(c.membershipQueue) == 0 && len(c.warming) == 0 &&
		c.draining == 0
}

// membershipIdle is MembershipSettled without the queue: the drain may
// run exactly when it holds.
func (c *Cluster) membershipIdle() bool {
	return c.pending == nil && len(c.warming) == 0
}

// TryJoin is Join without panics: an invalid request returns an error,
// and a valid one arriving while the cluster is unsettled is queued
// (see queuedChange above). Returning nil means the join was started or
// deterministically queued.
func (c *Cluster) TryJoin(id netsim.NodeID) error {
	if err := c.validateJoin(id); err != nil {
		return err
	}
	if c.queuedChangeFor(id) {
		return fmt.Errorf("Join(%d): a change for the node is already queued", id)
	}
	if !c.MembershipSettled() {
		c.membershipQueue = append(c.membershipQueue, queuedChange{join: true, id: id})
		return nil
	}
	c.startJoin(id)
	return nil
}

// TryDecommission is Decommission without panics, queueing like TryJoin.
func (c *Cluster) TryDecommission(id netsim.NodeID) error {
	if err := c.validateDecommission(id); err != nil {
		return err
	}
	if c.queuedChangeFor(id) {
		return fmt.Errorf("Decommission(%d): a change for the node is already queued", id)
	}
	if !c.MembershipSettled() {
		c.membershipQueue = append(c.membershipQueue, queuedChange{join: false, id: id})
		return nil
	}
	c.startDecommission(id)
	return nil
}

func (c *Cluster) queuedChangeFor(id netsim.NodeID) bool {
	for _, q := range c.membershipQueue {
		if q.id == id {
			return true
		}
	}
	return false
}

// drainMembershipQueue schedules the next queued change once the
// cluster is idle. The zero-delay event (rather than a direct call)
// keeps the start out of the flip/warmup handlers that trigger it, so
// queued changes interleave with other same-time events exactly like
// fresh Join/Decommission calls would.
func (c *Cluster) drainMembershipQueue() {
	if len(c.membershipQueue) == 0 || !c.membershipIdle() || c.draining > 0 {
		return
	}
	// MembershipSettled reports false until the scheduled drain ran.
	c.draining++
	c.net.Schedule(0, c.runQueuedChange)
}

// runQueuedChange pops queued requests until one starts (dropping the
// ones the intervening changes invalidated) or the queue empties.
func (c *Cluster) runQueuedChange() {
	c.draining--
	if !c.membershipIdle() {
		return // a fresh change beat the drain event; its finish re-drains
	}
	for len(c.membershipQueue) > 0 {
		q := c.membershipQueue[0]
		c.membershipQueue = c.membershipQueue[1:]
		if q.join {
			if c.validateJoin(q.id) == nil {
				c.startJoin(q.id)
				return
			}
		} else if c.validateDecommission(q.id) == nil {
			c.startDecommission(q.id)
			return
		}
	}
}

// armMembershipGuard forces the flip if streaming wedges (a stream peer
// failed mid-change and its chunks died with it); the normal repair
// machinery then converges whatever the stream did not carry. The
// generation check pins the timer to exactly the change it was armed
// for: a later change involving the same node must not be force-flipped
// by a dead timer.
func (c *Cluster) armMembershipGuard(p *membershipChange) {
	c.net.Schedule(5*c.cfg.Timeout, func() {
		if c.pending == nil || c.pending.gen != p.gen {
			return
		}
		if p.join {
			c.finishJoin(p.id)
		} else {
			c.finishDecommission(p.id)
		}
	})
}

// finishJoin flips the placement: the live strategy incorporates the
// joiner incrementally (moving only the affected arc of the placement
// table), the node joins the coordinator rotation and its background
// chains start. With WarmupDuration set it warms first.
func (c *Cluster) finishJoin(id netsim.NodeID) {
	p := c.pending
	if p == nil || !p.join || p.id != id {
		return
	}
	c.pending = nil
	c.joins++
	c.strategy.AddNode(id)
	c.insertMember(id)
	n := c.nodes[id]
	n.streamsIn = nil
	n.joinPending = 0
	n.phase = phaseLive
	c.markWarming(id)
	n.scheduleAE()
	n.scheduleHintTick()
	if c.cfg.Gossip {
		// The flip becomes ring event len+1. Only the joiner (whose view
		// starts at the full prefix) and one live introducer learn it
		// here; everyone else hears it through gossip or a wrong-owner
		// refusal — joins become visible gradually.
		c.appendRingEvent(true, id)
		n.gs = newGossipState(n, c.Members(), uint64(len(c.ringEvents)))
		c.net.SendLocal(id, gossipTick{epoch: n.epoch}, c.cfg.GossipInterval)
		c.seedIntroducer(id)
	}
	// With warming enabled the window's expiry drains instead.
	c.drainMembershipQueue()
}

// finishDecommission flips the placement: the leaver's vnodes come off
// the ring (placement recomputed incrementally), it leaves the
// coordinator rotation, and its actor lingers only to drain.
func (c *Cluster) finishDecommission(id netsim.NodeID) {
	p := c.pending
	if p == nil || p.join || p.id != id {
		return
	}
	c.pending = nil
	c.decommissions++
	c.strategy.RemoveNode(id)
	c.removeMember(id)
	n := c.nodes[id]
	n.phase = phaseDecommissioned
	n.decomPending = 0
	delete(c.warming, id)
	if c.cfg.Gossip {
		c.appendRingEvent(false, id)
		// The leaver applies its own departure: while its actor drains,
		// its strictly newer ring refuses coordinated requests for the
		// ranges it handed off, teaching stale coordinators. A live
		// introducer starts the proactive spread (the leaver no longer
		// gossips).
		if n.gs != nil {
			n.applyRingEvents(c.eventsSince(n.gs.view.RingSeq()))
		}
		c.seedIntroducer(id)
	}
	c.drainMembershipQueue()
}

// seedIntroducer applies the ring-event log's fresh suffix to the first
// live member other than the node that just changed. Without gossip on
// at least one live view, a decommission's ring event could otherwise
// sit unknown until a refusal happens to surface it.
func (c *Cluster) seedIntroducer(changed netsim.NodeID) {
	for _, id := range c.order {
		if id == changed {
			continue
		}
		n := c.nodes[id]
		if n.gs == nil || n.failed || n.crashed {
			continue
		}
		n.applyRingEvents(c.eventsSince(n.gs.view.RingSeq()))
		return
	}
}

// markWarming puts id into the warming window: it serves writes but read
// coordinators deprioritize it until the window elapses. A no-op when
// WarmupDuration is 0 (warming disabled) or when the node is not plainly
// live — in particular, a node whose decommission completed while it was
// crashed must stay decommissioned through Restart, not resurrect into
// the member states.
func (c *Cluster) markWarming(id netsim.NodeID) {
	if c.cfg.WarmupDuration <= 0 {
		return
	}
	n := c.nodes[id]
	if n.phase != phaseLive {
		return
	}
	n.phase = phaseWarming
	c.warming[id] = true
	epoch := n.epoch
	c.net.Schedule(c.cfg.WarmupDuration, func() {
		// A crash (epoch bump) or decommission during the window
		// invalidates this timer; the next restart re-arms its own.
		if n.epoch == epoch && n.phase == phaseWarming {
			delete(c.warming, id)
			n.phase = phaseLive
			c.drainMembershipQueue()
		}
	})
}

func (c *Cluster) insertMember(id netsim.NodeID) {
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = id
	// A placement flip silently re-routes key ownership; cached entries
	// were filled under the old ring's invalidation contract.
	c.dropAllCaches()
}

func (c *Cluster) removeMember(id netsim.NodeID) {
	for i, m := range c.order {
		if m == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.dropAllCaches()
			return
		}
	}
}

func containsNode(list []netsim.NodeID, id netsim.NodeID) bool {
	for _, n := range list {
		if n == id {
			return true
		}
	}
	return false
}

// streamIn tracks one inbound snapshot stream (from one peer).
type streamIn struct {
	chunks int
	done   bool
	expect int           // chunk count announced by streamDone
	ackTo  netsim.NodeID // send streamAck here when complete; -1 for join streams
}

// complete reports whether every announced chunk has been applied.
func (s *streamIn) complete() bool { return s.done && s.chunks >= s.expect }

// rangeSourceFor deterministically picks the single member that streams
// arc r to a joiner: the first current replica of the arc that can
// serve. A key's replica set is a function of its arc alone, so this is
// the per-range form of the old per-key rule; every peer evaluates it
// at the same event and exactly one of them ships each range.
func (c *Cluster) rangeSourceFor(r ring.Range) netsim.NodeID {
	for _, rep := range c.strategy.ReplicasAt(r.End) {
		if n, ok := c.nodes[rep]; ok && !n.failed && !n.crashed && n.phase != phaseDecommissioned {
			return rep
		}
	}
	return -1
}

// onStreamRequest serves a joiner's range request: of the arcs the
// joiner will own, keep those this node sources (single-source rule
// above), walk a point-in-time snapshot of exactly those arcs, frame
// the cells into chunks, and ship each chunk through the read stage —
// streaming contends with foreground reads for service slots, exactly
// like Cassandra's bootstrap streaming competing for disk.
func (n *Node) onStreamRequest(m streamRequest) {
	c := n.cluster
	p := c.pending
	if p == nil || !p.join || p.id != m.Joiner {
		return // the join already flipped (guard timer) or was superseded
	}
	budget := c.cfg.streamChunkBudget()
	// Filtering preserves ring's sorted range order, so SnapshotRanges
	// yields the same sorted-key cell sequence the full walk produced.
	var mine []ring.Range
	for _, r := range m.Ranges {
		if c.rangeSourceFor(r) == n.id {
			mine = append(mine, r)
		}
	}
	var chunks [][]byte
	var counts []int
	var buf []byte
	count, cells := 0, 0
	it := n.engine.SnapshotRanges(mine)
	for {
		k, cell, ok := it.Next()
		if !ok {
			break
		}
		n.streamSnapshotCells++
		buf = storage.EncodeCell(buf, k, cell)
		count++
		cells++
		if len(buf) >= budget {
			chunks, counts = append(chunks, buf), append(counts, count)
			buf, count = nil, 0
		}
	}
	if count > 0 {
		chunks, counts = append(chunks, buf), append(counts, count)
	}
	n.sendStream(m.Joiner, chunks, counts, cells, false)
}

// startDecommissionStream streams every key the leaver owns to the nodes
// that newly own it under the pending placement: the ring.Diff
// movements the leaver exits name the arcs and their new owners, so the
// leaver snapshots only those arcs instead of walking its whole store.
func (n *Node) startDecommissionStream() {
	c := n.cluster
	p := c.pending
	budget := c.cfg.streamChunkBudget()
	type rangeTargets struct {
		r       ring.Range
		targets []netsim.NodeID
	}
	var plan []rangeTargets
	var owned []ring.Range
	for _, mv := range ring.Diff(c.strategy, p.next) {
		if !containsNode(mv.Old, n.id) {
			continue // an arc this node never owned; its owners hand it off
		}
		var ts []netsim.NodeID
		for _, t := range mv.New {
			if containsNode(mv.Old, t) || c.isDown(t) {
				continue // already holds the range, or unreachable (AE heals later)
			}
			ts = append(ts, t)
		}
		if len(ts) == 0 {
			continue
		}
		plan = append(plan, rangeTargets{r: mv.Range, targets: ts})
		owned = append(owned, mv.Range)
	}
	// plan follows ring's range order (ascending by End, wrapping arc
	// first), so a binary search on End finds a key's arc.
	targetsFor := func(tok ring.Token) []netsim.NodeID {
		i := sort.Search(len(plan), func(i int) bool { return plan[i].r.End >= tok })
		if i < len(plan) && plan[i].r.Contains(tok) {
			return plan[i].targets
		}
		if len(plan) > 0 && plan[0].r.Wraps() && plan[0].r.Contains(tok) {
			return plan[0].targets
		}
		return nil
	}
	type outStream struct {
		chunks [][]byte
		counts []int
		buf    []byte
		count  int
		cells  int
	}
	perTarget := make(map[netsim.NodeID]*outStream)
	var order []netsim.NodeID
	it := n.engine.SnapshotRanges(owned)
	for {
		k, cell, ok := it.Next()
		if !ok {
			break
		}
		n.streamSnapshotCells++
		for _, t := range targetsFor(ring.KeyToken(k)) {
			os := perTarget[t]
			if os == nil {
				os = &outStream{}
				perTarget[t] = os
				order = append(order, t)
			}
			os.buf = storage.EncodeCell(os.buf, k, cell)
			os.count++
			os.cells++
			if len(os.buf) >= budget {
				os.chunks, os.counts = append(os.chunks, os.buf), append(os.counts, os.count)
				os.buf, os.count = nil, 0
			}
		}
	}
	if len(order) == 0 {
		c.finishDecommission(n.id)
		return
	}
	n.decomPending = len(order)
	for _, t := range order {
		os := perTarget[t]
		if os.count > 0 {
			os.chunks, os.counts = append(os.chunks, os.buf), append(os.counts, os.count)
		}
		n.sendStream(t, os.chunks, os.counts, os.cells, true)
	}
}

// sendStream ships framed chunks plus the closing streamDone to one
// receiver, one read-stage work unit per chunk (paced by the node's
// service capacity). needAck marks decommission streams, whose receiver
// acknowledges completion back to the sender.
func (n *Node) sendStream(to netsim.NodeID, chunks [][]byte, counts []int, cells int, needAck bool) {
	c := n.cluster
	total := 0
	for i := range chunks {
		data, cnt := chunks[i], counts[i]
		total += len(data)
		n.submitRead(c.cfg.ReadService.Sample(n.rng), func() {
			n.streamChunksOut++
			n.streamedOutCells += uint64(cnt)
			n.streamedOutBytes += uint64(len(data))
			c.net.Send(n.id, to, newStreamChunk(streamChunk{From: n.id, Data: data, Count: cnt}),
				msgOverhead+len(data))
		})
	}
	nChunks := len(chunks)
	n.submitRead(c.cfg.CoordOverhead.Sample(n.rng), func() {
		c.net.Send(n.id, to, newStreamDone(streamDone{
			From: n.id, Chunks: nChunks, Cells: cells, Bytes: total, NeedAck: needAck,
		}), msgOverhead)
	})
}

// inStream returns (creating if needed) the tracking entry for an
// inbound stream from peer.
func (n *Node) inStream(peer netsim.NodeID) *streamIn {
	if n.streamsIn == nil {
		n.streamsIn = make(map[netsim.NodeID]*streamIn)
	}
	st := n.streamsIn[peer]
	if st == nil {
		st = &streamIn{expect: -1, ackTo: -1}
		n.streamsIn[peer] = st
	}
	return st
}

// onStreamChunk applies one chunk of an inbound snapshot stream through
// the write stage and the normal last-write-wins path — a streamed cell
// can never clobber a newer resident version, so streams overlap hints
// and anti-entropy safely.
func (n *Node) onStreamChunk(m streamChunk) {
	cost := n.cluster.cfg.WriteService.Sample(n.rng)
	n.submitWrite(cost, func() {
		n.streamChunksIn++
		off := 0
		for off < len(m.Data) {
			key, cell, size, err := storage.DecodeCell(m.Data, off)
			if err != nil {
				break // torn/corrupt tail: keep the consistent prefix, AE heals the rest
			}
			if n.engine.Apply(key, cell) {
				n.streamedInCells++
				n.cluster.oracle.Applied(n.id, cell.Version, n.cluster.net.Now())
			}
			n.cacheInvalidate(key)
			off += size
		}
		st := n.inStream(m.From)
		st.chunks++
		n.streamProgress(m.From, st)
	})
}

// onStreamDone records a stream's announced totals; completion may
// already hold (all chunks applied) or arrive with a later chunk.
func (n *Node) onStreamDone(m streamDone) {
	st := n.inStream(m.From)
	st.done = true
	st.expect = m.Chunks
	if m.NeedAck {
		st.ackTo = m.From
	}
	n.streamProgress(m.From, st)
}

// streamProgress advances the join/decommission handshake when the
// stream from peer has fully applied.
func (n *Node) streamProgress(peer netsim.NodeID, st *streamIn) {
	if !st.complete() {
		return
	}
	delete(n.streamsIn, peer)
	if st.ackTo >= 0 {
		// Decommission handoff: tell the leaver this range landed.
		n.cluster.net.Send(n.id, st.ackTo, newStreamAck(streamAck{From: n.id}), msgOverhead)
		return
	}
	// Join bootstrap: one source down, flip when the last completes.
	if n.phase == phaseBootstrapping && n.joinPending > 0 {
		n.joinPending--
		if n.joinPending == 0 {
			n.cluster.finishJoin(n.id)
		}
	}
}

// onStreamAck counts a decommission target's completion; the last ack
// flips the placement.
func (n *Node) onStreamAck(m streamAck) {
	if n.phase != phaseLeaving || n.decomPending == 0 {
		return
	}
	n.decomPending--
	if n.decomPending == 0 {
		n.cluster.finishDecommission(n.id)
	}
}
