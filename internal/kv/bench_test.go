package kv_test

import (
	"fmt"
	"testing"

	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/ycsb"
)

// BenchmarkSimulatedOps measures simulator throughput (virtual operations
// per wall second) for the full read/write path at level ONE.
func BenchmarkSimulatedOps(b *testing.B) {
	topo := netsim.G5KTwoSites(12)
	cfg := kv.DefaultConfig()
	cfg.Seed = 1
	h := newHarness(topo, cfg)
	w := ycsb.HeavyReadUpdate(1000)
	r, err := ycsb.NewRunner(kv.StaticSession{Cluster: h.cluster, ReadLevel: kv.One, WriteLevel: kv.One},
		w, h.tr, 1)
	if err != nil {
		b.Fatal(err)
	}
	r.OpCount = uint64(b.N)
	r.Threads = 64
	h.cluster.Preload(w.RecordCount, r.Keys, r.Value())
	b.ResetTimer()
	r.Start()
	for !r.Finished() && h.eng.Step() {
	}
	b.StopTimer()
	if !r.Finished() {
		b.Fatal("stalled")
	}
	b.ReportMetric(float64(h.eng.Events())/float64(b.N), "events/op")
}

// BenchmarkKVReadQuorum measures one QUORUM read through the full
// coordinator path (admission, replica fan-out, digest reads, ack
// folding, client reply) including the simulator events that carry it.
func BenchmarkKVReadQuorum(b *testing.B) {
	topo := netsim.SingleDC(6)
	cfg := kv.DefaultConfig()
	cfg.Seed = 1
	h := newHarness(topo, cfg)
	const records = 1024
	key := func(i uint64) string { return fmt.Sprintf("user%012d", i) }
	h.cluster.Preload(records, key, make([]byte, 128))
	keys := make([]string, records)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		h.cluster.Read(keys[i%records], kv.Quorum, func(kv.ReadResult) { done = true })
		for !done && h.eng.Step() {
		}
		if !done {
			b.Fatal("read stalled")
		}
	}
}

// BenchmarkReplicaPlacement measures ring lookups.
func BenchmarkReplicaPlacement(b *testing.B) {
	topo := netsim.G5KTwoSites(84)
	cfg := kv.DefaultConfig()
	h := newHarness(topo, cfg)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%012d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.cluster.Strategy().Replicas(keys[i%len(keys)])
	}
}
