package kv_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/kv"
	"repro/internal/netsim"
)

func (h *harness) batchRead(keys []string, lvl kv.Level) []kv.ReadResult {
	var out []kv.ReadResult
	done := false
	h.cluster.ReadBatch(keys, lvl, func(r []kv.ReadResult) { out = r; done = true })
	for !done && h.eng.Step() {
	}
	if !done {
		panic("batch read never completed")
	}
	return out
}

func (h *harness) batchWrite(ops []kv.BatchOp, lvl kv.Level) []kv.WriteResult {
	var out []kv.WriteResult
	done := false
	h.cluster.WriteBatch(ops, lvl, func(r []kv.WriteResult) { out = r; done = true })
	for !done && h.eng.Step() {
	}
	if !done {
		panic("batch write never completed")
	}
	return out
}

func batchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("bk%03d", i)
	}
	return keys
}

func TestBatchWriteThenBatchReadQuorum(t *testing.T) {
	h := newHarness(netsim.G5KTwoSites(6), quietConfig(31))
	keys := batchKeys(12)
	ops := make([]kv.BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = kv.BatchOp{Key: k, Value: []byte("v-" + k)}
	}
	ws := h.batchWrite(ops, kv.Quorum)
	if len(ws) != len(ops) {
		t.Fatalf("got %d write results for %d ops", len(ws), len(ops))
	}
	for i, w := range ws {
		if w.Err != nil || w.Key != keys[i] {
			t.Fatalf("batch write item %d: %+v", i, w)
		}
	}
	rs := h.batchRead(keys, kv.Quorum)
	if len(rs) != len(keys) {
		t.Fatalf("got %d read results for %d keys", len(rs), len(keys))
	}
	for i, r := range rs {
		if r.Err != nil || !r.Exists || string(r.Value) != "v-"+keys[i] || r.Stale {
			t.Fatalf("batch read item %d: %+v", i, r)
		}
	}
}

func TestBatchReadMatchesSingleReads(t *testing.T) {
	h := newHarness(netsim.SingleDC(5), quietConfig(32))
	keys := batchKeys(8)
	for i, k := range keys {
		h.write(k, []byte(fmt.Sprintf("val%d", i)), kv.All)
	}
	rs := h.batchRead(keys, kv.Quorum)
	for i, k := range keys {
		single := h.read(k, kv.Quorum)
		if string(rs[i].Value) != string(single.Value) || rs[i].Exists != single.Exists {
			t.Errorf("key %s: batch %q vs single %q", k, rs[i].Value, single.Value)
		}
	}
	// A key missing from the store must come back Exists=false in order.
	mixed := h.batchRead([]string{keys[0], "absent", keys[1]}, kv.One)
	if !mixed[0].Exists || mixed[1].Exists || !mixed[2].Exists {
		t.Errorf("mixed batch existence wrong: %+v", mixed)
	}
}

func TestBatchWriteMixedDeletes(t *testing.T) {
	h := newHarness(netsim.SingleDC(4), quietConfig(33))
	h.write("keep", []byte("old"), kv.Quorum)
	h.write("gone", []byte("old"), kv.Quorum)
	ws := h.batchWrite([]kv.BatchOp{
		{Key: "keep", Value: []byte("new")},
		{Key: "gone", Delete: true},
		{Key: "fresh", Value: []byte("born")},
	}, kv.Quorum)
	for i, w := range ws {
		if w.Err != nil {
			t.Fatalf("batch item %d: %v", i, w.Err)
		}
	}
	if r := h.read("keep", kv.Quorum); string(r.Value) != "new" {
		t.Errorf("keep = %+v", r)
	}
	if r := h.read("gone", kv.Quorum); r.Exists {
		t.Errorf("gone still exists: %+v", r)
	}
	if r := h.read("fresh", kv.Quorum); string(r.Value) != "born" {
		t.Errorf("fresh = %+v", r)
	}
}

func TestBatchReadReturnsFreshestVersion(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(34))
	h.write("k", []byte("v1"), kv.All)
	// A ONE write completes after a single ack; the ALL batch read races
	// its propagation and must still fold the freshest version.
	var w kv.WriteResult
	wdone := false
	h.cluster.Write("k", []byte("v2"), kv.One, func(r kv.WriteResult) { w = r; wdone = true })
	for !wdone && h.eng.Step() {
	}
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	rs := h.batchRead([]string{"k"}, kv.All)
	if string(rs[0].Value) != "v2" || rs[0].Version != w.Version {
		t.Errorf("ALL batch read missed freshest: %+v (want version %v)", rs[0], w.Version)
	}
}

// TestBatchOneAdmissionOneMessagePerReplica pins the acceptance
// property: a K-key batch costs one coordinator admission and at most
// one request message per replica — not K independent operations.
func TestBatchOneAdmissionOneMessagePerReplica(t *testing.T) {
	topo := netsim.SingleDC(5)
	h := newHarness(topo, quietConfig(35))
	keys := batchKeys(32)
	for _, k := range keys {
		h.write(k, []byte("v"), kv.All)
	}
	n := topo.N()

	coord0 := h.cluster.Usage().CoordOps
	msg0 := totalMessages(h)
	h.batchRead(keys, kv.Quorum)
	if d := h.cluster.Usage().CoordOps - coord0; d != 1 {
		t.Errorf("batch read admissions = %d, want 1", d)
	}
	// Client→coordinator, ≤1 request and ≤1 response per replica, one
	// reply to the client: everything else would mean per-key fan-out.
	if d := totalMessages(h) - msg0; d > uint64(2+2*n) {
		t.Errorf("batch read sent %d messages, want ≤ %d", d, 2+2*n)
	}

	ops := make([]kv.BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = kv.BatchOp{Key: k, Value: []byte("w")}
	}
	coord0 = h.cluster.Usage().CoordOps
	msg0 = totalMessages(h)
	h.batchWrite(ops, kv.Quorum)
	h.eng.Run() // drain late acks so the message count is stable
	if d := h.cluster.Usage().CoordOps - coord0; d != 1 {
		t.Errorf("batch write admissions = %d, want 1", d)
	}
	if d := totalMessages(h) - msg0; d > uint64(2+2*n) {
		t.Errorf("batch write sent %d messages, want ≤ %d", d, 2+2*n)
	}
}

func totalMessages(h *harness) uint64 {
	var sum uint64
	m := h.tr.Meter()
	for _, c := range m.Messages {
		sum += c
	}
	return sum
}

func TestBatchUnavailableWhenLevelUnreachable(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(36))
	keys := batchKeys(4)
	for _, k := range keys {
		h.write(k, []byte("v"), kv.All)
	}
	h.cluster.Fail(1)
	h.eng.RunFor(2 * h.cluster.Config().DetectionDelay)
	for i, r := range h.batchRead(keys, kv.All) {
		if !errors.Is(r.Err, kv.ErrUnavailable) {
			t.Errorf("read item %d: err = %v, want unavailable", i, r.Err)
		}
	}
	ops := []kv.BatchOp{{Key: keys[0], Value: []byte("x")}}
	for i, w := range h.batchWrite(ops, kv.All) {
		if !errors.Is(w.Err, kv.ErrUnavailable) {
			t.Errorf("write item %d: err = %v, want unavailable", i, w.Err)
		}
	}
}

func TestBatchEmptyAndSingleItem(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(37))
	called := false
	h.cluster.ReadBatch(nil, kv.One, func(r []kv.ReadResult) {
		called = true
		if len(r) != 0 {
			t.Errorf("empty batch returned %d results", len(r))
		}
	})
	if !called {
		t.Error("empty batch callback never ran")
	}
	h.write("k", []byte("v"), kv.Quorum)
	rs := h.batchRead([]string{"k"}, kv.Quorum)
	if len(rs) != 1 || string(rs[0].Value) != "v" {
		t.Errorf("one-item batch: %+v", rs)
	}
}

// benchGroup runs b.N groups of K reads (or writes), batched or as K
// sequential singles, and reports virtual-time throughput.
func benchGroup(b *testing.B, batched, writes bool) {
	const K = 16
	topo := netsim.G5KTwoSites(12)
	h := newHarness(topo, quietConfig(1))
	keys := batchKeys(256)
	for _, k := range keys {
		h.write(k, []byte("valuevaluevalue!"), kv.Quorum)
	}
	group := make([]string, K)
	ops := make([]kv.BatchOp, K)
	b.ResetTimer()
	start := h.eng.Now()
	for i := 0; i < b.N; i++ {
		for j := 0; j < K; j++ {
			group[j] = keys[(i*K+j)%len(keys)]
			ops[j] = kv.BatchOp{Key: group[j], Value: []byte("w")}
		}
		switch {
		case batched && writes:
			h.batchWrite(ops, kv.Quorum)
		case batched:
			h.batchRead(group, kv.Quorum)
		case writes:
			for j := 0; j < K; j++ {
				h.write(ops[j].Key, ops[j].Value, kv.Quorum)
			}
		default:
			for j := 0; j < K; j++ {
				h.read(group[j], kv.Quorum)
			}
		}
	}
	b.StopTimer()
	elapsed := h.eng.Now() - start
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*K)/elapsed.Seconds(), "vops/vsec")
	}
	b.ReportMetric(float64(h.eng.Events())/float64(b.N*K), "events/op")
}

// BenchmarkBatchGet vs BenchmarkSequentialGets (and the Put pair)
// demonstrate the acceptance property end to end: one admission and one
// round trip per batch beats K sequential singles on both virtual-time
// throughput and simulator events per operation.
func BenchmarkBatchGet(b *testing.B)       { benchGroup(b, true, false) }
func BenchmarkSequentialGets(b *testing.B) { benchGroup(b, false, false) }
func BenchmarkBatchPut(b *testing.B)       { benchGroup(b, true, true) }
func BenchmarkSequentialPuts(b *testing.B) { benchGroup(b, false, true) }
