package kv

import (
	"repro/internal/gossip"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/stats"
)

// Gossip membership (Config.Gossip). Each node runs a SWIM agent over
// the deterministic scheduler: a gossipTick every GossipInterval probes
// one peer (round-robin over a shuffled cycle) with piggybacked
// liveness rumors; an unanswered probe after half the interval raises a
// suspicion, and a suspicion that ages past GossipSuspicion unrefuted
// becomes a death verdict. Ring knowledge — the prefix of the global
// membership-flip log a node has applied — rides the same messages:
// pings and acks carry the sender's ring sequence, and whichever side
// is fresher ships the missing suffix.
//
// Routing consequences: coordinators plan reads and writes on their
// LOCAL ring (possibly stale), and a replica contacted for a range it
// no longer owns under its strictly NEWER ring refuses with notOwner,
// carrying the ring events the coordinator is missing. The coordinator
// merges them, re-plans against the advanced ring and retries after a
// doubling backoff, at most GossipRetryBudget times, all inside the
// operation's original timeout. Refusal requires the replica to be
// strictly ahead: equal prefixes are identical rings, so every refusal
// advances the coordinator's ring by at least one event — the retry
// loop terminates even without the budget.
//
// A replica BEHIND the coordinator serves anyway: writes apply
// correctly anywhere (last-write-wins), and a stale read target is
// exactly the quorum-overlap risk the staleness oracle measures.

// gossipUpdateSize approximates one piggybacked rumor or ring event on
// the wire in bytes.
const gossipUpdateSize = 16

// gossipState is a node's membership agent: its view, the placement
// strategy derived from its ring prefix, the probe bookkeeping and the
// dissemination meters.
type gossipState struct {
	view     *gossip.View
	strategy ring.Strategy
	rng      *stats.Source

	probeSeq    uint64
	awaitSeq    uint64 // outstanding probe; 0 = none
	awaitTarget netsim.NodeID

	rounds            uint64
	suspicions        uint64
	deadDeclared      uint64
	eventsApplied     uint64
	notOwnerReplies   uint64
	wrongOwnerRetries uint64
	warmViolations    uint64
}

// newGossipState builds a node's agent over the given ring member set,
// anchored at ring-event prefix seq.
func newGossipState(n *Node, members []netsim.NodeID, seq uint64) *gossipState {
	c := n.cluster
	return &gossipState{
		view:     gossip.NewView(n.id, members, c.cfg.GossipPiggyback, seq),
		strategy: c.buildStrategy(members),
		rng:      c.cfg.seedSource.StreamN("kv.gossip", int(n.id)),
	}
}

// rewind resets the agent's view and ring to prefix seq, keeping the
// meters (the ResetGossipView hook).
func (gs *gossipState) rewind(n *Node, members []netsim.NodeID, seq uint64) {
	c := n.cluster
	gs.view = gossip.NewView(n.id, members, c.cfg.GossipPiggyback, seq)
	gs.strategy = c.buildStrategy(members)
	gs.awaitSeq = 0
}

// gossipRetry is the epoch-stamped self-message that re-plans an
// operation after a wrong-owner refusal (the backoff timer).
type gossipRetry struct {
	ID    reqID
	Write bool
	Batch bool
	Idxs  []int // refused batch items to re-plan (Batch only)
	epoch uint32
}

// ringSeq reports this node's ring knowledge (0 without gossip: the
// atomic path has exactly one ring and nothing compares sequences).
func (n *Node) ringSeq() uint64 {
	if n.gs != nil {
		return n.gs.view.RingSeq()
	}
	return 0
}

// routeReplicas plans placement for key on this node's LOCAL ring
// under gossip, or on the cluster's atomic strategy without it.
func (n *Node) routeReplicas(key string) []netsim.NodeID {
	if n.gs != nil {
		return n.gs.strategy.Replicas(key)
	}
	return n.cluster.strategy.Replicas(key)
}

// routeDown reports whether this node would avoid sending a coordinated
// request to id: under gossip the node's own view decides (anything not
// Alive — suspects get hints, like Cassandra's per-node failure
// detector), otherwise the cluster-wide detector.
func (n *Node) routeDown(id netsim.NodeID) bool {
	if n.gs != nil {
		return n.gs.view.StatusOf(id) != gossip.Alive
	}
	return n.cluster.isDown(id)
}

// routeReachable is levelReachable against this node's local liveness
// view (the gossip-mode admission check).
func (n *Node) routeReachable(replicas []netsim.NodeID, req requirement) bool {
	if n.gs == nil {
		return n.cluster.levelReachable(replicas, req)
	}
	if req.perDC == nil {
		alive := 0
		for _, r := range replicas {
			if !n.routeDown(r) {
				alive++
			}
		}
		return alive >= req.total
	}
	alive := make(map[string]int, len(req.perDC))
	for _, r := range replicas {
		if !n.routeDown(r) {
			alive[n.cluster.topo.DCOf(r)]++
		}
	}
	return req.satisfiedCounts(0, alive)
}

// refusesKey implements the replica-side ownership check: refuse only
// when this replica's ring is STRICTLY newer than the coordinator's and
// the key is not ours under it. Repair and hint writes never hit this
// (they are convergence traffic, applied wherever they land).
func (n *Node) refusesKey(key string, coordSeq uint64) bool {
	gs := n.gs
	if gs == nil || gs.view.RingSeq() <= coordSeq {
		return false
	}
	return !containsNode(gs.strategy.Replicas(key), n.id)
}

// eventsForCoord returns the ring-event suffix a coordinator at prefix
// `from` is missing, bounded by what this replica itself has applied —
// a refusal never teaches more than the refuser knows.
func (n *Node) eventsForCoord(from uint64) []gossip.RingEvent {
	own := n.gs.view.RingSeq()
	if from >= own {
		return nil
	}
	return n.cluster.ringEvents[from:own]
}

// applyRingEvents merges a ring-event suffix into this node's view and
// placement. Events already applied (the sender's suffix started behind
// us) are skipped by the view's dense-sequence gate.
func (n *Node) applyRingEvents(events []gossip.RingEvent) {
	gs := n.gs
	for _, ev := range events {
		if !gs.view.ApplyRingEvent(ev) {
			continue
		}
		gs.eventsApplied++
		if ev.Join {
			gs.strategy.AddNode(ev.Node)
		} else {
			gs.strategy.RemoveNode(ev.Node)
		}
	}
}

// onGossipTick runs one probe round and re-arms the tick chain.
func (n *Node) onGossipTick() {
	gs := n.gs
	if gs == nil || n.phase == phaseDecommissioned || n.phase == phaseBootstrapping {
		return // chain ends; finishJoin/restart arm a fresh one
	}
	c := n.cluster
	gs.rounds++
	if peer := gs.view.NextPeer(gs.rng); peer >= 0 {
		gs.probeSeq++
		ping := gossipPing{
			From:         n.id,
			FromInc:      gs.view.Incarnation(n.id),
			Seq:          gs.probeSeq,
			RingSeq:      gs.view.RingSeq(),
			TargetStatus: gs.view.StatusOf(peer),
			TargetInc:    gs.view.Incarnation(peer),
			Updates:      gs.view.Updates(c.cfg.GossipPiggyback),
		}
		c.net.Send(n.id, peer, ping, msgOverhead+gossipUpdateSize*len(ping.Updates))
		gs.awaitSeq, gs.awaitTarget = gs.probeSeq, peer
		c.net.SendLocal(n.id, gossipProbeTimeout{Seq: gs.probeSeq, Target: peer, epoch: n.epoch},
			c.cfg.GossipInterval/2)
	}
	c.net.SendLocal(n.id, gossipTick{epoch: n.epoch}, c.cfg.GossipInterval)
}

// onGossipPing answers a probe: fold the prober's rumors in, refute a
// suspicion or death claim about ourselves, and ack with our own
// rumors plus the ring-event suffix the prober is missing.
func (n *Node) onGossipPing(m gossipPing) {
	gs := n.gs
	if gs == nil {
		return
	}
	c := n.cluster
	// The prober's claim about us: anything but alive triggers the SWIM
	// refutation (incarnation bump past the claim, full-budget rumor).
	if m.TargetStatus != gossip.Alive {
		gs.view.Apply(gossip.Update{Node: n.id, Status: m.TargetStatus, Incarnation: m.TargetInc})
	}
	// The ping itself is proof of the sender's life at its incarnation.
	gs.view.Apply(gossip.Update{Node: m.From, Status: gossip.Alive, Incarnation: m.FromInc})
	for _, u := range m.Updates {
		gs.view.Apply(u)
	}
	var events []gossip.RingEvent
	if m.RingSeq < gs.view.RingSeq() {
		events = n.eventsForCoord(m.RingSeq)
	}
	ack := gossipAck{
		From:         n.id,
		FromInc:      gs.view.Incarnation(n.id),
		Seq:          m.Seq,
		RingSeq:      gs.view.RingSeq(),
		TargetStatus: gs.view.StatusOf(m.From),
		TargetInc:    gs.view.Incarnation(m.From),
		Updates:      gs.view.Updates(c.cfg.GossipPiggyback),
		Events:       events,
	}
	c.net.Send(n.id, m.From, ack, msgOverhead+gossipUpdateSize*(len(ack.Updates)+len(ack.Events)))
}

// onGossipAck completes a probe round on the prober.
func (n *Node) onGossipAck(m gossipAck) {
	gs := n.gs
	if gs == nil {
		return
	}
	if m.Seq == gs.awaitSeq && m.From == gs.awaitTarget {
		gs.awaitSeq = 0 // answered in time; no suspicion
	}
	// Responder's claim about us (it may have held us dead): refute.
	if m.TargetStatus != gossip.Alive {
		gs.view.Apply(gossip.Update{Node: n.id, Status: m.TargetStatus, Incarnation: m.TargetInc})
	}
	// The ack is proof of the responder's life.
	gs.view.Apply(gossip.Update{Node: m.From, Status: gossip.Alive, Incarnation: m.FromInc})
	n.applyRingEvents(m.Events)
	for _, u := range m.Updates {
		gs.view.Apply(u)
	}
	// The responder is behind on ring events: bridge it forward.
	if m.RingSeq < gs.view.RingSeq() {
		ev := n.eventsForCoord(m.RingSeq)
		n.cluster.net.Send(n.id, m.From, gossipEvents{From: n.id, Events: ev},
			msgOverhead+gossipUpdateSize*len(ev))
	}
}

// onGossipEventsMsg folds a bridged ring-event suffix in.
func (n *Node) onGossipEventsMsg(m gossipEvents) {
	if n.gs == nil {
		return
	}
	n.applyRingEvents(m.Events)
}

// onGossipProbeTimeout raises a suspicion when the probe it guards is
// still unanswered, and arms the death timer for it.
func (n *Node) onGossipProbeTimeout(m gossipProbeTimeout) {
	gs := n.gs
	if gs == nil || gs.awaitSeq != m.Seq || gs.awaitTarget != m.Target {
		return // acked in time, or superseded
	}
	gs.awaitSeq = 0
	if upd, ok := gs.view.Suspect(m.Target); ok {
		gs.suspicions++
		n.cluster.net.SendLocal(n.id,
			gossipSuspicionTimeout{Target: m.Target, Inc: upd.Incarnation, epoch: n.epoch},
			n.cluster.cfg.GossipSuspicion)
	}
}

// onGossipSuspicionTimeout declares the target dead when the exact
// suspicion that armed it still stands (no refutation arrived).
func (n *Node) onGossipSuspicionTimeout(m gossipSuspicionTimeout) {
	gs := n.gs
	if gs == nil {
		return
	}
	if _, ok := gs.view.Confirm(m.Target, m.Inc); ok {
		gs.deadDeclared++
	}
}

// refuseRead answers a single-key read for a range we no longer own.
func (n *Node) refuseRead(m replicaRead) {
	gs := n.gs
	gs.notOwnerReplies++
	ev := n.eventsForCoord(m.RingSeq)
	n.cluster.net.Send(n.id, m.Coord, notOwner{
		ID: m.ID, From: n.id, Key: m.Key, Events: ev,
	}, msgOverhead+len(m.Key)+gossipUpdateSize*len(ev))
}

// refuseWrite is the write counterpart of refuseRead.
func (n *Node) refuseWrite(m replicaWrite) {
	gs := n.gs
	gs.notOwnerReplies++
	ev := n.eventsForCoord(m.RingSeq)
	n.cluster.net.Send(n.id, m.Coord, notOwner{
		ID: m.ID, From: n.id, Write: true, Key: m.Key, Events: ev,
	}, msgOverhead+len(m.Key)+gossipUpdateSize*len(ev))
}

// refuseBatch refuses the listed items of a batched request.
func (n *Node) refuseBatch(id reqID, coord netsim.NodeID, write bool, coordSeq uint64, idxs []int, keys []string) {
	gs := n.gs
	gs.notOwnerReplies++
	ev := n.eventsForCoord(coordSeq)
	size := msgOverhead + gossipUpdateSize*len(ev)
	for _, k := range keys {
		size += len(k)
	}
	n.cluster.net.Send(n.id, coord, notOwner{
		ID: id, From: n.id, Write: write, Batch: true, Idxs: idxs, Keys: keys, Events: ev,
	}, size)
}

// onNotOwner merges a refusal's ring events into the coordinator's view
// and schedules a re-plan after the doubling backoff, within each
// item's retry budget. Items over budget simply ride to the timeout —
// the loud-failure backstop.
func (n *Node) onNotOwner(m notOwner) {
	gs := n.gs
	if gs == nil {
		return
	}
	c := n.cluster
	n.applyRingEvents(m.Events)

	retry := gossipRetry{ID: m.ID, Write: m.Write, Batch: m.Batch, epoch: n.epoch}
	var minRetries int
	switch {
	case m.Batch && m.Write:
		bctx, ok := n.batchWrites[m.ID]
		if !ok {
			return
		}
		for _, i := range m.Idxs {
			ctx := bctx.items[i]
			if ctx == nil || ctx.retries >= c.cfg.GossipRetryBudget {
				continue
			}
			ctx.retries++
			if len(retry.Idxs) == 0 || ctx.retries < minRetries {
				minRetries = ctx.retries
			}
			retry.Idxs = append(retry.Idxs, i)
		}
		if len(retry.Idxs) == 0 {
			return
		}
	case m.Batch:
		bctx, ok := n.batchReads[m.ID]
		if !ok {
			return
		}
		for _, i := range m.Idxs {
			ctx := bctx.items[i]
			if ctx == nil || ctx.delivered || ctx.retries >= c.cfg.GossipRetryBudget {
				continue
			}
			ctx.retries++
			ctx.dropTarget(m.From) // the refuser will never respond
			if len(retry.Idxs) == 0 || ctx.retries < minRetries {
				minRetries = ctx.retries
			}
			retry.Idxs = append(retry.Idxs, i)
		}
		if len(retry.Idxs) == 0 {
			return
		}
	case m.Write:
		ctx, ok := n.writes[m.ID]
		if !ok || ctx.retries >= c.cfg.GossipRetryBudget {
			return
		}
		ctx.retries++
		minRetries = ctx.retries
	default:
		ctx, ok := n.reads[m.ID]
		if !ok || ctx.delivered || ctx.retries >= c.cfg.GossipRetryBudget {
			return
		}
		ctx.retries++
		ctx.dropTarget(m.From)
		minRetries = ctx.retries
	}
	gs.wrongOwnerRetries++
	backoff := c.cfg.GossipRetryBackoff << (minRetries - 1)
	c.net.SendLocal(n.id, retry, backoff)
}

// onGossipRetry re-plans an operation against the coordinator's
// advanced ring: reads contact the owners the original plan missed,
// writes ship the cell to replicas not yet sent to (or hint them).
func (n *Node) onGossipRetry(m gossipRetry) {
	switch {
	case m.Batch && m.Write:
		n.retryBatchWrite(m)
	case m.Batch:
		n.retryBatchRead(m)
	case m.Write:
		n.retryWrite(m)
	default:
		n.retryRead(m)
	}
}

func (n *Node) retryRead(m gossipRetry) {
	ctx, ok := n.reads[m.ID]
	if !ok || ctx.delivered {
		return
	}
	n.sendReadRetry(ctx)
}

// sendReadRetry re-picks read targets under the local ring and contacts
// the ones not already in the plan (full data reads — the retry path
// never digest-fetches).
func (n *Node) sendReadRetry(ctx *readCtx) {
	replicas := n.routeReplicas(ctx.key)
	desired, ok := n.pickTargets(replicas, ctx.req, nil)
	if !ok {
		return // still unreachable under the new ring; the timeout speaks
	}
	for _, t := range desired {
		if containsNode(ctx.targets, t) {
			continue
		}
		ctx.targets = append(ctx.targets, t)
		rr := newReplicaRead(replicaRead{
			ID: ctx.id, Key: ctx.key, Coord: n.id, RingSeq: n.ringSeq(),
		})
		n.cluster.net.Send(n.id, t, rr, msgOverhead+len(ctx.key))
	}
}

func (n *Node) retryWrite(m gossipRetry) {
	ctx, ok := n.writes[m.ID]
	if !ok {
		return
	}
	n.sendWriteRetry(ctx)
}

// sendWriteRetry ships the cell to the owners the advanced ring added;
// replicas already sent to (including the refuser) are skipped, down
// ones get a hint.
func (n *Node) sendWriteRetry(ctx *writeCtx) {
	for _, r := range n.routeReplicas(ctx.key) {
		if containsNode(ctx.sent, r) {
			continue
		}
		ctx.sent = append(ctx.sent, r)
		if n.routeDown(r) {
			n.storeHint(r, ctx.key, ctx.cell)
			continue
		}
		w := newReplicaWrite(replicaWrite{
			ID: ctx.id, Key: ctx.key, Cell: ctx.cell, Coord: n.id, RingSeq: n.ringSeq(),
		})
		n.cluster.net.Send(n.id, r, w, msgOverhead+len(ctx.key)+len(ctx.cell.Value))
	}
}

func (n *Node) retryBatchRead(m gossipRetry) {
	bctx, ok := n.batchReads[m.ID]
	if !ok {
		return
	}
	var order []netsim.NodeID
	perReplica := make(map[netsim.NodeID]*replicaBatchRead)
	for _, i := range m.Idxs {
		ctx := bctx.items[i]
		if ctx == nil || ctx.delivered {
			continue
		}
		desired, ok := n.pickTargets(n.routeReplicas(ctx.key), ctx.req, nil)
		if !ok {
			continue
		}
		for _, t := range desired {
			if containsNode(ctx.targets, t) {
				continue
			}
			ctx.targets = append(ctx.targets, t)
			rb := perReplica[t]
			if rb == nil {
				rb = &replicaBatchRead{ID: m.ID, Coord: n.id, RingSeq: n.ringSeq()}
				perReplica[t] = rb
				order = append(order, t)
			}
			rb.Idxs = append(rb.Idxs, i)
			rb.Keys = append(rb.Keys, ctx.key)
		}
	}
	for _, t := range order {
		rb := perReplica[t]
		size := msgOverhead
		for _, k := range rb.Keys {
			size += len(k)
		}
		n.cluster.net.Send(n.id, t, rb, size)
	}
}

func (n *Node) retryBatchWrite(m gossipRetry) {
	bctx, ok := n.batchWrites[m.ID]
	if !ok {
		return
	}
	var order []netsim.NodeID
	perReplica := make(map[netsim.NodeID]*replicaBatchWrite)
	for _, i := range m.Idxs {
		ctx := bctx.items[i]
		if ctx == nil {
			continue
		}
		for _, r := range n.routeReplicas(ctx.key) {
			if containsNode(ctx.sent, r) {
				continue
			}
			ctx.sent = append(ctx.sent, r)
			if n.routeDown(r) {
				n.storeHint(r, ctx.key, ctx.cell)
				continue
			}
			rb := perReplica[r]
			if rb == nil {
				rb = &replicaBatchWrite{ID: m.ID, Coord: n.id, RingSeq: n.ringSeq()}
				perReplica[r] = rb
				order = append(order, r)
			}
			rb.Idxs = append(rb.Idxs, i)
			rb.Keys = append(rb.Keys, ctx.key)
			rb.Cells = append(rb.Cells, ctx.cell)
		}
	}
	for _, r := range order {
		rb := perReplica[r]
		size := msgOverhead
		for j := range rb.Keys {
			size += len(rb.Keys[j]) + len(rb.Cells[j].Value)
		}
		n.cluster.net.Send(n.id, r, rb, size)
	}
}
