package kv

import (
	"math"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/storage"
)

// Hot-key fast path (Config.HotCache). Zipfian traffic concentrates
// reads and writes on a head set of keys; those keys dominate both the
// staleness risk and the per-operation cost of the quorum read path. The
// cluster therefore tracks its own windowed heavy-hitter profile and
// promotes the head keys into a hot set with two privileges:
//
//   - a per-key consistency level (SetHotKeyLevel), tuned by the per-key
//     Harmony path independently of the long tail, and
//   - a coordinator-side read cache: quorum reads fill per-node entries,
//     and a subsequent single-ack (ONE) read of a hot key is answered by
//     the coordinator alone — no replica messages, no admission draw —
//     as long as the entry is younger than its freshness bound.
//
// The freshness bound makes a cache hit a priced consistency decision
// instead of a correctness leak: with per-key writes Poisson at rate λ,
// an entry of age a is stale with probability 1−exp(−λa), so serving
// only entries younger than CacheBound(α, λ) = −ln(1−α)/λ keeps the
// expected stale rate of cache hits under α — the same α the Harmony
// tuner enforces on the quorum path. Entries are invalidated by every
// local write path (coordinated writes, replica applies, hints, repairs,
// anti-entropy, snapshot streams) and dropped wholesale on membership
// flips; under gossip each entry is additionally stamped with the ring
// sequence it was filled on and evicted when the node's ring moves.
//
// With HotCache unset nothing below runs: no tracker, no cache, no extra
// RNG draws — transcripts stay byte-identical with earlier trees.

// CacheBound is the maximum age at which a cached value of a key with
// Poisson write rate lambda (writes/sec) may be served while keeping the
// probability that a newer write exists — the expected stale rate of
// cache hits — at or under alpha. Derived from P(stale | age a) =
// 1−exp(−λa) ≤ α, i.e. a ≤ −ln(1−α)/λ. A non-positive alpha forbids
// serving from cache entirely; a non-positive lambda (no observed
// writes) or alpha ≥ 1 means any age is acceptable.
func CacheBound(alpha, lambda float64) time.Duration {
	if alpha <= 0 {
		return 0
	}
	if alpha >= 1 || lambda <= 0 {
		return math.MaxInt64
	}
	secs := -math.Log(1-alpha) / lambda
	if d := secs * float64(time.Second); d < float64(math.MaxInt64) {
		return time.Duration(d)
	}
	return math.MaxInt64
}

// hotKey is the tracker's per-key control state.
type hotKey struct {
	lambda   float64       // windowed write rate estimate, writes/sec
	bound    time.Duration // freshness bound: min(HotCacheMaxAge, CacheBound(α, λ))
	level    Level         // per-key read level override (SetHotKeyLevel)
	hasLevel bool
}

// hotTracker is the cluster-level hot-set controller: windowed
// heavy-hitter sketches over the coordinated read/write streams, with
// promotion/demotion hysteresis evaluated every evalOps operations. All
// mutation happens from coordinator events, which both engines
// serialize; iteration always walks the sorted keys slice or the
// sketches' deterministic Top order — never a map range — so the hot
// set evolves identically run to run.
type hotTracker struct {
	alpha        float64
	maxAge       time.Duration
	size         int
	evalOps      int
	promoteShare float64
	demoteShare  float64

	reads  *stats.HeavyHitters
	writes *stats.HeavyHitters
	ops    int
	epoch  time.Duration // start of the current sketch window

	hot  map[string]*hotKey
	keys []string // current hot set, sorted (deterministic iteration)

	promotions uint64
	demotions  uint64
}

func newHotTracker(cfg *Config, now time.Duration) *hotTracker {
	return &hotTracker{
		alpha:        cfg.HotCacheAlpha,
		maxAge:       cfg.HotCacheMaxAge,
		size:         cfg.HotSetSize,
		evalOps:      cfg.HotSetEvalOps,
		promoteShare: cfg.HotPromoteShare,
		demoteShare:  cfg.HotDemoteShare,
		reads:        stats.NewHeavyHitters(4 * cfg.HotSetSize),
		writes:       stats.NewHeavyHitters(4 * cfg.HotSetSize),
		epoch:        now,
		hot:          make(map[string]*hotKey),
	}
}

func (t *hotTracker) observeRead(key string, now time.Duration) {
	t.reads.Observe(key)
	t.tick(now)
}

func (t *hotTracker) observeWrite(key string, now time.Duration) {
	t.writes.Observe(key)
	t.tick(now)
}

func (t *hotTracker) tick(now time.Duration) {
	t.ops++
	if t.ops >= t.evalOps {
		t.evaluate(now)
	}
}

// evaluate re-derives the hot set from the window's sketches: existing
// hot keys whose windowed read share fell below demoteShare leave,
// then the window's top readers at or above promoteShare join until the
// set is full. The promote/demote gap is the hysteresis that keeps keys
// near the threshold from flapping. Every surviving key's write rate
// and freshness bound are refreshed from the window, and the sketches
// reset so the next window sees current traffic only (a shifted hot set
// demotes within one window instead of fading over the whole run).
func (t *hotTracker) evaluate(now time.Duration) {
	elapsed := now - t.epoch
	totalReads := t.reads.Total()
	if elapsed <= 0 || totalReads == 0 {
		t.resetWindow(now)
		return
	}

	topReads := t.reads.Top(0)
	readShare := make(map[string]float64, len(topReads))
	for _, kc := range topReads {
		readShare[kc.Key] = float64(kc.Count) / float64(totalReads)
	}

	next := make([]string, 0, t.size)
	for _, k := range t.keys { // sorted slice: deterministic demotion order
		if readShare[k] >= t.demoteShare {
			next = append(next, k)
			continue
		}
		delete(t.hot, k)
		t.demotions++
	}
	for _, kc := range topReads { // Top order: deterministic promotion order
		if len(next) >= t.size {
			break
		}
		share := float64(kc.Count) / float64(totalReads)
		if share < t.promoteShare {
			break // Top is sorted by descending count
		}
		if _, ok := t.hot[kc.Key]; ok {
			continue
		}
		t.hot[kc.Key] = &hotKey{}
		next = append(next, kc.Key)
		t.promotions++
	}
	sort.Strings(next)
	t.keys = next

	// Refresh per-key write rates and freshness bounds. The sketch count
	// is an upper bound on the key's writes, so λ errs high and the bound
	// errs short — conservative for staleness.
	secs := elapsed.Seconds()
	writeCount := make(map[string]uint64, t.size)
	for _, kc := range t.writes.Top(0) {
		writeCount[kc.Key] = kc.Count
	}
	for _, k := range t.keys {
		hk := t.hot[k]
		hk.lambda = float64(writeCount[k]) / secs
		hk.bound = CacheBound(t.alpha, hk.lambda)
		if hk.bound > t.maxAge {
			hk.bound = t.maxAge
		}
	}
	t.resetWindow(now)
}

func (t *hotTracker) resetWindow(now time.Duration) {
	t.reads.Reset()
	t.writes.Reset()
	t.ops = 0
	t.epoch = now
}

// HotKeys reports the current hot set in sorted order (a copy).
// Nil-safe: an empty slice without HotCache.
func (c *Cluster) HotKeys() []string {
	if c.hot == nil {
		return nil
	}
	return append([]string(nil), c.hot.keys...)
}

// HotKeyRate reports the tracker's windowed write-rate estimate for a
// hot key (writes/sec), with ok=false when the key is not hot.
func (c *Cluster) HotKeyRate(key string) (lambda float64, ok bool) {
	if c.hot == nil {
		return 0, false
	}
	hk, ok := c.hot.hot[key]
	if !ok {
		return 0, false
	}
	return hk.lambda, true
}

// SetHotKeyLevel pins a per-key read level for a hot key; it reports
// false (and pins nothing) when the key is not currently hot. The
// override is cleared automatically when the key is demoted.
func (c *Cluster) SetHotKeyLevel(key string, lvl Level) bool {
	if c.hot == nil {
		return false
	}
	hk, ok := c.hot.hot[key]
	if !ok {
		return false
	}
	hk.level, hk.hasLevel = lvl, true
	return true
}

// HotReadLevel reports the per-key read level override of key, with
// ok=false when the key is not hot or carries no override. Adaptive
// sessions consult it before falling back to the global tuned level.
func (c *Cluster) HotReadLevel(key string) (Level, bool) {
	if c.hot == nil {
		return Level{}, false
	}
	if hk, ok := c.hot.hot[key]; ok && hk.hasLevel {
		return hk.level, true
	}
	return Level{}, false
}

// singleAck reports whether the level blocks for exactly one replica —
// the only levels a cache hit may substitute for: a ONE read promises a
// single replica's view, which is precisely what a fresh-enough cached
// cell is. QUORUM and stronger levels promise overlap with write quorums
// and always go to the replicas.
func (l Level) singleAck() bool {
	return l.Kind == KindOne || (l.Kind == KindCount && l.K <= 1)
}

// cacheEntry is one cached cell on a coordinator. ringSeq stamps the
// coordinator's ring knowledge at fill time (gossip mode): the entry is
// evicted rather than served once the local ring has moved, since the
// fill-time invalidation contract (local writes for the key reach this
// node) only holds while placement is unchanged.
type cacheEntry struct {
	cell     storage.Cell
	filledAt time.Duration
	ringSeq  uint64
}

// readCache is a node's coordinator-side cache over hot keys. Entries
// are plain values in a map — never pooled and never shared: the cell's
// value bytes are the immutable buffers the replicas answered with.
type readCache struct {
	entries map[string]cacheEntry

	hits          uint64
	misses        uint64 // servable requests that found no usable entry
	fills         uint64
	invalidations uint64 // entries dropped by local write paths
	expired       uint64 // entries older than their freshness bound
	ringEvicted   uint64 // entries dropped by ring/membership movement
	staleServed   uint64 // hits the oracle judged stale (≤ α by design)
}

func newReadCache() *readCache {
	return &readCache{entries: make(map[string]cacheEntry)}
}

// dropAll evicts every entry, counting them as ring evictions (the
// callers are membership flips and crashes). Meters survive: they are
// experiment accounting, like every other node counter.
func (rc *readCache) dropAll() {
	rc.ringEvicted += uint64(len(rc.entries))
	clear(rc.entries)
}

// dropAllCaches evicts every node's cache entries — the atomic-mode
// membership hook: a placement flip silently re-routes key ownership,
// so fill-time invalidation contracts are void cluster-wide.
func (c *Cluster) dropAllCaches() {
	if !c.cfg.HotCache {
		return
	}
	for _, id := range c.order {
		if rc := c.nodes[id].cache; rc != nil {
			rc.dropAll()
		}
	}
}

// cacheServe answers a client read from this coordinator's cache when
// every condition holds: the node is plainly live (warming replicas are
// still converging), the level blocks for a single ack, the key is hot,
// and the entry was filled on the current ring and is younger than the
// key's freshness bound. A hit costs no replica messages and no
// admission draw — the read completes in the coordinator. The oracle
// still judges it: cache-served stale reads are counted exactly like
// replica-served ones.
func (n *Node) cacheServe(m clientRead) bool {
	rc := n.cache
	if rc == nil || n.phase != phaseLive || !m.Level.singleAck() {
		return false
	}
	t := n.cluster.hot
	if t == nil {
		return false
	}
	hk, hot := t.hot[m.Key]
	if !hot {
		return false
	}
	now := n.cluster.net.Now()
	e, ok := rc.entries[m.Key]
	if !ok {
		rc.misses++
		return false
	}
	if e.ringSeq != n.ringSeq() {
		delete(rc.entries, m.Key)
		rc.ringEvicted++
		rc.misses++
		return false
	}
	if now-e.filledAt > hk.bound {
		delete(rc.entries, m.Key)
		rc.expired++
		rc.misses++
		return false
	}

	n.coordOps++
	n.cluster.hooks.readStarted(now, m.Key)
	t.observeRead(m.Key, now)
	res := ReadResult{Key: m.Key, Level: m.Level, Cached: true}
	if !e.cell.Tombstone {
		res.Exists = true
		res.Value = e.cell.Value
		res.Version = e.cell.Version
	}
	visible, issued := n.cluster.oracle.Latest(m.Key)
	res.Stale = n.cluster.oracle.Judge(visible, issued, e.cell.Version)
	rc.hits++
	if res.Stale {
		rc.staleServed++
	}
	n.cluster.hooks.readCompleted(now, res)
	n.replyRead(m.rt, res)
	return true
}

// cacheFill stores a replica-served cell for a hot key. Ordinary quorum
// (and ONE) reads are the fill path — the cache never generates replica
// traffic of its own. Tombstones are not cached (a hit would have to
// re-prove the deletion anyway); an existing newer entry is kept.
func (n *Node) cacheFill(key string, cell storage.Cell) {
	rc := n.cache
	if rc == nil || n.phase != phaseLive || cell.Tombstone {
		return
	}
	t := n.cluster.hot
	if t == nil {
		return
	}
	if _, hot := t.hot[key]; !hot {
		return
	}
	if e, ok := rc.entries[key]; ok && !cell.Version.After(e.cell.Version) {
		return
	}
	rc.entries[key] = cacheEntry{cell: cell, filledAt: n.cluster.net.Now(), ringSeq: n.ringSeq()}
	rc.fills++
}

// cacheInvalidate drops the cached entry for key, if any. Every local
// write path calls it — coordinated writes, replica applies (including
// hints and repairs), anti-entropy applies, snapshot-stream applies —
// so a cached read after a local write never serves the old value.
func (n *Node) cacheInvalidate(key string) {
	rc := n.cache
	if rc == nil {
		return
	}
	if _, ok := rc.entries[key]; ok {
		delete(rc.entries, key)
		rc.invalidations++
	}
}
