package kv_test

import (
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// TestRangeStreamReadsMovedFractionOnly is the PR10 acceptance pin: at
// N=8 members, a join's stream senders read cells proportional to the
// moved ~1/(N+1) fraction of the keyspace, not the store size. The
// full-walk baseline (what the per-key filter path read) is the total
// resident cell count across the eight peers at join time; the
// range-addressed path must read at least 5× fewer.
func TestRangeStreamReadsMovedFractionOnly(t *testing.T) {
	for _, engine := range []storage.Kind{storage.Mem, storage.LSM} {
		t.Run(engine.String(), func(t *testing.T) {
			cfg := quietConfig(31)
			cfg.Engine = engine
			cfg.InitialMembers = []netsim.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
			cfg.WarmupDuration = 200 * time.Millisecond
			h := newHarness(netsim.SingleDC(9), cfg)

			const nKeys = 600
			for i := 0; i < nKeys; i++ {
				if w := h.write(mkey(i), []byte("range-stream-payload"), kv.All); w.Err != nil {
					t.Fatal(w.Err)
				}
			}
			h.eng.Run()

			fullWalk := 0
			for _, id := range h.cluster.Members() {
				fullWalk += h.cluster.Node(id).Engine().Len()
			}
			if fullWalk != nKeys*cfg.RF {
				t.Fatalf("baseline store holds %d cells, want %d (RF %d × %d keys)",
					fullWalk, nKeys*cfg.RF, cfg.RF, nKeys)
			}

			h.cluster.Join(8)
			h.eng.RunFor(2 * time.Second)
			if s := h.cluster.State(8); s != kv.StateLive {
				t.Fatalf("joiner state = %v, want live", s)
			}

			u := h.cluster.Usage()
			if u.StreamSnapshotCells == 0 {
				t.Fatal("no snapshot cells metered; range stream did not run")
			}
			// Senders read exactly what they streamed: the single-source
			// rule means each moved cell is read by one peer.
			if u.StreamSnapshotCells != u.StreamedCells {
				t.Fatalf("snapshot reads %d != streamed cells %d", u.StreamSnapshotCells, u.StreamedCells)
			}
			if ratio := float64(fullWalk) / float64(u.StreamSnapshotCells); ratio < 5 {
				t.Fatalf("range stream read %d of %d cells (%.1fx reduction), want >= 5x",
					u.StreamSnapshotCells, fullWalk, ratio)
			}

			// The joiner converged: it holds every key it now owns.
			eng := h.cluster.Node(8).Engine()
			owned := 0
			for i := 0; i < nKeys; i++ {
				k := mkey(i)
				isReplica := false
				for _, r := range h.cluster.Strategy().Replicas(k) {
					if r == 8 {
						isReplica = true
					}
				}
				if !isReplica {
					continue
				}
				owned++
				if _, ok := eng.Peek(k); !ok {
					t.Fatalf("joiner missing owned key %s", k)
				}
			}
			if owned == 0 {
				t.Fatal("joiner owns no keys; rebalance did not move anything")
			}
			if int(u.StreamSnapshotCells) < owned {
				t.Fatalf("stream read %d cells but joiner owns %d", u.StreamSnapshotCells, owned)
			}
		})
	}
}

// TestJoinEmptyStoreNoopStream pins the empty-diff edge of the
// range-addressed path: joining an empty cluster streams zero cells
// (every peer's range snapshot is empty), yet the join handshake still
// completes and the placement flips.
func TestJoinEmptyStoreNoopStream(t *testing.T) {
	cfg := elasticConfig(17)
	h := newHarness(netsim.SingleDC(5), cfg)
	h.eng.Run()

	h.cluster.Join(3)
	h.eng.RunFor(2 * time.Second)
	if s := h.cluster.State(3); s != kv.StateLive {
		t.Fatalf("joiner state = %v, want live", s)
	}
	u := h.cluster.Usage()
	if u.StreamSnapshotCells != 0 || u.StreamedCells != 0 || u.StreamChunks != 0 {
		t.Fatalf("empty join moved data: reads=%d cells=%d chunks=%d",
			u.StreamSnapshotCells, u.StreamedCells, u.StreamChunks)
	}
	if u.Joins != 1 {
		t.Fatalf("joins = %d, want 1", u.Joins)
	}
}
