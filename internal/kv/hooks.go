package kv

import (
	"time"

	"repro/internal/storage"
)

// Hooks receive instrumentation callbacks from the store. All fields are
// optional; nil fields are skipped. The Harmony monitoring module is a
// Hooks consumer — it sees exactly what a Cassandra-side agent could see
// (request streams and acknowledgement timings), never the oracle's
// ground truth.
type Hooks struct {
	// ReadStarted fires when a coordinator admits a read.
	ReadStarted func(now time.Duration, key string)
	// ReadCompleted fires when the client-visible read finishes.
	ReadCompleted func(now time.Duration, res ReadResult)
	// WriteStarted fires when a coordinator accepts a write.
	WriteStarted func(now time.Duration, key string, v storage.Version, replicas int)
	// WriteAck fires for every replica acknowledgement of a write,
	// including those arriving after the blocked-for level was
	// satisfied. rank is the 1-based arrival order and delay the time
	// since the write was accepted — the monitor's propagation signal.
	WriteAck func(now time.Duration, key string, rank int, delay time.Duration)
	// WriteCompleted fires when the client-visible write finishes.
	WriteCompleted func(now time.Duration, res WriteResult)
	// BatchStarted fires once per admitted multi-key batch with its item
	// counts; the per-item Read*/Write* hooks still fire for every item,
	// so rate-based consumers need no batch awareness.
	BatchStarted func(now time.Duration, reads, writes int)
}

// hookSet fans callbacks out to registered hooks.
type hookSet []*Hooks

func (hs hookSet) readStarted(now time.Duration, key string) {
	for _, h := range hs {
		if h.ReadStarted != nil {
			h.ReadStarted(now, key)
		}
	}
}

func (hs hookSet) readCompleted(now time.Duration, res ReadResult) {
	for _, h := range hs {
		if h.ReadCompleted != nil {
			h.ReadCompleted(now, res)
		}
	}
}

func (hs hookSet) writeStarted(now time.Duration, key string, v storage.Version, replicas int) {
	for _, h := range hs {
		if h.WriteStarted != nil {
			h.WriteStarted(now, key, v, replicas)
		}
	}
}

func (hs hookSet) writeAck(now time.Duration, key string, rank int, delay time.Duration) {
	for _, h := range hs {
		if h.WriteAck != nil {
			h.WriteAck(now, key, rank, delay)
		}
	}
}

func (hs hookSet) writeCompleted(now time.Duration, res WriteResult) {
	for _, h := range hs {
		if h.WriteCompleted != nil {
			h.WriteCompleted(now, res)
		}
	}
}

func (hs hookSet) batchStarted(now time.Duration, reads, writes int) {
	for _, h := range hs {
		if h.BatchStarted != nil {
			h.BatchStarted(now, reads, writes)
		}
	}
}
