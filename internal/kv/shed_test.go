package kv

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// newShedHarness builds a minimal cluster for white-box stage tests.
func newShedHarness(t *testing.T, conc int, shed time.Duration) (*sim.Engine, *Node) {
	t.Helper()
	topo := netsim.SingleDC(3)
	eng := sim.New(1)
	tr := netsim.NewTransport(eng, topo)
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.Concurrency = conc
	cfg.MutationShed = shed
	cfg.HintReplayInterval = 0 // no periodic self-messages: Run must drain
	cl := New(topo, tr, cfg)
	return eng, cl.Node(0)
}

// TestShedBurstFreesSlot pins the shed-loop accounting: when a slot frees
// and the queue's head is a burst of expired items, every expired item is
// dropped in that same event and the slot immediately picks up the first
// non-expired item — it must not sit idle until the next workDone.
func TestShedBurstFreesSlot(t *testing.T) {
	const shed = 10 * time.Millisecond
	eng, n := newShedHarness(t, 1, shed)

	var ran []string
	var ranAt []time.Duration
	exec := func(name string) func() {
		return func() {
			ran = append(ran, name)
			ranAt = append(ranAt, eng.Now())
		}
	}

	// Occupy the single slot for 50ms, then queue three items that will
	// all exceed the 10ms shed threshold by the time the slot frees, and
	// one late item that will still be fresh.
	n.submitWrite(50*time.Millisecond, exec("head"))
	n.submitWrite(5*time.Millisecond, exec("expired-a"))
	n.submitWrite(5*time.Millisecond, exec("expired-b"))
	n.submitWrite(5*time.Millisecond, exec("expired-c"))
	eng.Schedule(45*time.Millisecond, func() {
		n.submitWrite(5*time.Millisecond, exec("fresh"))
	})
	eng.Run()

	if got := n.DroppedMutations(); got != 3 {
		t.Errorf("dropped = %d, want 3 (the whole expired burst)", got)
	}
	if len(ran) != 2 || ran[0] != "head" || ran[1] != "fresh" {
		t.Fatalf("executed %v, want [head fresh]", ran)
	}
	// head completes at 50ms; fresh (queued at 45ms, 5ms old — under the
	// threshold) must start in the same event and finish at 55ms.
	if ranAt[1] != 55*time.Millisecond {
		t.Errorf("fresh ran at %v, want 55ms (slot must not idle after shedding)", ranAt[1])
	}
	if n.writeStage.busy != 0 || n.writeStage.qlen() != 0 {
		t.Errorf("stage not drained: busy=%d queued=%d", n.writeStage.busy, n.writeStage.qlen())
	}
}

// TestShedDisabledRunsEverything pins that with shedding off the whole
// backlog executes in FIFO order, one per freed slot.
func TestShedDisabledRunsEverything(t *testing.T) {
	eng, n := newShedHarness(t, 1, 0)
	done := 0
	for i := 0; i < 5; i++ {
		n.submitWrite(20*time.Millisecond, func() { done++ })
	}
	eng.Run()
	if done != 5 {
		t.Errorf("executed %d, want 5", done)
	}
	if n.DroppedMutations() != 0 {
		t.Errorf("dropped = %d, want 0", n.DroppedMutations())
	}
	if peak := n.writeStage.peak; peak != 4 {
		t.Errorf("peak queue = %d, want 4", peak)
	}
}

// TestStageQueueCompaction exercises the deque's head-reclaim paths under
// sustained churn so the consumed prefix cannot grow without bound.
func TestStageQueueCompaction(t *testing.T) {
	eng, n := newShedHarness(t, 1, 0)
	total := 0
	for i := 0; i < 500; i++ {
		n.submitWrite(time.Millisecond, func() { total++ })
	}
	eng.Run()
	if total != 500 {
		t.Fatalf("executed %d, want 500", total)
	}
	if n.writeStage.head != 0 || len(n.writeStage.queue) != 0 {
		t.Errorf("queue not reclaimed: head=%d len=%d", n.writeStage.head, len(n.writeStage.queue))
	}
}
