package kv

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// This file holds the pooled client-operation state. Issuing an
// operation used to allocate a handful of closures (the once-gate, the
// guard callback, the cancel wrapper); on a cache-served hot-key read
// that plumbing was a third of the total cost. Ops now live in a slab on
// the Cluster, message boxes carry a slab index + generation instead of
// a callback closure, and the guard timer is armed through the
// network's pre-bound-callback surface — so the steady-state client path
// allocates nothing beyond the pooled message boxes.

// callStopper is the optional zero-allocation guard surface of a
// Network: arm cb(arg) after d with a value-typed cancelable handle.
// netsim.Transport implements it over the sim engine; networks without
// it fall back to the closure-based client path.
type callStopper interface {
	ScheduleStopCall(d time.Duration, cb func(uint32), arg uint32) sim.Timer
}

// Op kinds for guard timeouts.
const (
	opKindRead uint8 = iota
	opKindWrite
)

const noOp = int32(-1)

// clientOp is one in-flight client operation: the result callback, the
// guard timer, and enough of the request to synthesize a timeout result.
// gen is bumped when the slot is recycled so a reply that lost the race
// against the guard is dropped instead of completing a stranger's op.
type clientOp struct {
	gen      uint32
	kind     uint8
	lvl      Level
	key      string
	rcb      func(ReadResult)
	wcb      func(WriteResult)
	guard    sim.Timer
	nextFree int32
}

// allocOp takes a slot from the free list or grows the slab.
func (c *Cluster) allocOp() uint32 {
	if c.opFree != noOp {
		idx := c.opFree
		c.opFree = c.ops[idx].nextFree
		return uint32(idx)
	}
	c.ops = append(c.ops, clientOp{})
	return uint32(len(c.ops) - 1)
}

// releaseOp recycles a slot; the generation bump invalidates any reply
// or guard reference still in flight.
func (c *Cluster) releaseOp(idx uint32) {
	op := &c.ops[idx]
	op.gen++
	op.key = ""
	op.rcb = nil
	op.wcb = nil
	op.guard = sim.Timer{}
	op.nextFree = c.opFree
	c.opFree = int32(idx)
}

// opCompleteRead finishes a slab-routed read: cancel the guard, recycle
// the slot, then run the callback (which may immediately issue a new op
// into the slot just freed — hence release-before-callback).
func (c *Cluster) opCompleteRead(idx, gen uint32, res ReadResult) {
	op := &c.ops[idx]
	if op.gen != gen {
		return // the guard already timed this op out and recycled the slot
	}
	op.guard.Stop()
	cb := op.rcb
	c.releaseOp(idx)
	cb(res)
}

// opCompleteWrite is the write counterpart of opCompleteRead.
func (c *Cluster) opCompleteWrite(idx, gen uint32, res WriteResult) {
	op := &c.ops[idx]
	if op.gen != gen {
		return
	}
	op.guard.Stop()
	cb := op.wcb
	c.releaseOp(idx)
	cb(res)
}

// guardFired is the pre-bound guard callback: completion always cancels
// the guard first, so firing means the op is still in flight — fail it
// with the client-side timeout.
func (c *Cluster) guardFired(idx uint32) {
	op := &c.ops[idx]
	key, lvl := op.key, op.lvl
	if op.kind == opKindRead {
		cb := op.rcb
		c.releaseOp(idx)
		cb(ReadResult{Err: ErrTimeout, Key: key, Level: lvl, Latency: 2 * c.cfg.Timeout})
		return
	}
	cb := op.wcb
	c.releaseOp(idx)
	cb(WriteResult{Err: ErrTimeout, Key: key, Level: lvl, Latency: 2 * c.cfg.Timeout})
}

// sendOpRead issues a slab-routed read to coord.
func (c *Cluster) sendOpRead(id reqID, coord netsim.NodeID, key string, lvl Level, cb func(ReadResult)) {
	idx := c.allocOp()
	op := &c.ops[idx]
	op.kind = opKindRead
	op.key = key
	op.lvl = lvl
	op.rcb = cb
	c.net.Send(netsim.ClientID, coord,
		newClientRead(clientRead{ID: id, Key: key, Level: lvl, rt: readRoute{op: idx, opGen: op.gen}}),
		msgOverhead+len(key))
	op.guard = c.callStop.ScheduleStopCall(2*c.cfg.Timeout, c.guardCb, idx)
}

// sendOpWrite issues a slab-routed write (or tombstone) to coord.
func (c *Cluster) sendOpWrite(id reqID, coord netsim.NodeID, key string, value []byte, lvl Level, tombstone bool, cb func(WriteResult)) {
	idx := c.allocOp()
	op := &c.ops[idx]
	op.kind = opKindWrite
	op.key = key
	op.lvl = lvl
	op.wcb = cb
	c.net.Send(netsim.ClientID, coord,
		newClientWrite(clientWrite{ID: id, Key: key, Value: value, Level: lvl, tombstone: tombstone,
			rt: writeRoute{op: idx, opGen: op.gen}}),
		msgOverhead+len(key)+len(value))
	op.guard = c.callStop.ScheduleStopCall(2*c.cfg.Timeout, c.guardCb, idx)
}
