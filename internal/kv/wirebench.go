package kv

import (
	"errors"
	"time"

	"repro/internal/storage"
	"repro/internal/wire"
)

// WireBenchRoundTrip drives one representative message through the full
// inter-process codec path — box a replica write, marshal it into a
// frame, read the frame back, decode into a pooled box, recycle — and
// returns the reusable buffer. The message set is unexported by design;
// this hook exists so cmd/benchreport can track the per-message cost of
// the TCP mesh alongside the other serving-layer numbers.
func WireBenchRoundTrip(buf []byte, seq uint64, value []byte) ([]byte, error) {
	w := newReplicaWrite(replicaWrite{
		ID:  reqID(seq),
		Key: "key:12345678",
		Cell: storage.Cell{
			Version: storage.Version{Timestamp: time.Duration(seq), Seq: seq},
			Value:   value,
		},
		Coord:   1,
		RingSeq: 3,
	})
	buf, ok := MarshalMessage(buf[:0], 1, 2, w)
	if !ok {
		return buf, errors.New("replica write has no wire form")
	}
	kind, body, _, err := wire.ReadFrame(buf)
	if err != nil {
		return buf, err
	}
	_, _, payload, err := UnmarshalMessage(kind, body)
	if err != nil {
		return buf, err
	}
	rw, ok := payload.(*replicaWrite)
	if !ok {
		return buf, errors.New("decoded payload is not a replica write")
	}
	*rw = replicaWrite{}
	replicaWritePool.Put(rw)
	return buf, nil
}
