package kv_test

import (
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// harness bundles the common simulation setup for store-level tests.
type harness struct {
	eng     *sim.Engine
	topo    *netsim.Topology
	tr      *netsim.Transport
	cluster *kv.Cluster
}

func newHarness(topo *netsim.Topology, cfg kv.Config) *harness {
	eng := sim.New(cfg.Seed)
	tr := netsim.NewTransport(eng, topo)
	cl := kv.New(topo, tr, cfg)
	return &harness{eng: eng, topo: topo, tr: tr, cluster: cl}
}

// runYCSB loads records and drives a workload to completion, returning
// the metrics.
func (h *harness) runYCSB(t testing.TB, w ycsb.Workload, sess kv.Session, ops uint64, threads int) *ycsb.Metrics {
	t.Helper()
	r, err := ycsb.NewRunner(sess, w, h.tr, h.cluster.Config().Seed)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	r.OpCount = ops
	r.Threads = threads
	h.cluster.Preload(w.RecordCount, r.Keys, r.Value())
	r.Start()
	deadline := h.eng.Now() + 30*time.Minute
	for !r.Finished() && h.eng.Now() < deadline {
		if !h.eng.Step() {
			break
		}
	}
	if !r.Finished() {
		t.Fatalf("workload did not finish: issued ops stalled at %v (pending events %d)", h.eng.Now(), h.eng.Pending())
	}
	return r.Metrics()
}

func TestSmokeStaticLevels(t *testing.T) {
	type result struct {
		level kv.Level
		m     *ycsb.Metrics
	}
	var results []result
	for _, lvl := range []kv.Level{kv.One, kv.Quorum, kv.All} {
		topo := netsim.G5KTwoSites(12)
		cfg := kv.DefaultConfig()
		cfg.RF = 3
		cfg.Seed = 42
		h := newHarness(topo, cfg)
		sess := kv.StaticSession{Cluster: h.cluster, ReadLevel: lvl, WriteLevel: lvl}
		m := h.runYCSB(t, ycsb.HeavyReadUpdate(2000), sess, 20000, 32)
		results = append(results, result{lvl, m})
		t.Logf("%-8v %s", lvl, m.String())
	}

	one, quorum, all := results[0].m, results[1].m, results[2].m
	if one.Throughput() <= all.Throughput() {
		t.Errorf("expected ONE throughput > ALL: %.0f vs %.0f", one.Throughput(), all.Throughput())
	}
	if one.StaleRate() <= quorum.StaleRate() {
		t.Errorf("expected ONE staler than QUORUM: %.3f vs %.3f", one.StaleRate(), quorum.StaleRate())
	}
	if all.StaleReads != 0 {
		t.Errorf("ALL must never read stale, got %d stale reads", all.StaleReads)
	}
	if quorum.StaleReads != 0 {
		t.Errorf("QUORUM (R+W>N) must never read stale, got %d stale reads", quorum.StaleReads)
	}
	if one.Ops != 20000 {
		t.Errorf("expected 20000 measured ops, got %d", one.Ops)
	}
}
