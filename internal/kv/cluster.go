package kv

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/gossip"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Transport is what the store needs from its runtime: a clock, message
// delivery between nodes, timer self-messages and deferred function
// scheduling. It is the store's only seam to the outside world, and it
// has three implementations: netsim.Transport delivers in-process over
// the discrete-event engine (the zero-cost default every simulation
// uses), the live engine delivers in-process over goroutines and wall
// time, and the live mesh engine additionally carries messages between
// OS processes over TCP using the MarshalMessage/UnmarshalMessage wire
// hooks (wiremsg.go). Cluster code cannot tell them apart.
type Transport interface {
	Now() time.Duration
	Send(from, to netsim.NodeID, payload any, size int)
	SendLocal(id netsim.NodeID, payload any, delay time.Duration)
	Register(id netsim.NodeID, h netsim.Handler)
	Schedule(d time.Duration, fn func())
}

// Network is the historical name of the Transport seam.
type Network = Transport

// failer is the optional failure-injection surface of a Network.
type failer interface {
	Fail(id netsim.NodeID)
	Recover(id netsim.NodeID)
}

// stopper is the optional cancelable-timer surface of a Network. Client
// guard timers almost always outlive their operation; engines that
// support cancellation reclaim them on completion instead of carrying
// them to expiry as no-ops.
type stopper interface {
	ScheduleStop(d time.Duration, fn func()) func()
}

// CoordPolicy selects how clients pick coordinators.
type CoordPolicy int

// Coordinator policies.
const (
	// CoordRoundRobin rotates through live nodes (YCSB's default
	// client behaviour with a node list).
	CoordRoundRobin CoordPolicy = iota
	// CoordRandom picks a uniformly random live node per operation.
	CoordRandom
	// CoordLocalDC rotates through live nodes of Config.CoordDC only.
	CoordLocalDC
)

// TargetPolicy selects which replicas serve a read.
type TargetPolicy int

// Read target policies.
const (
	// TargetClosest prefers the replicas nearest the coordinator —
	// Cassandra's snitch behaviour and the default. Because write
	// coordinators are themselves spread over the cluster, the replicas
	// a read contacts remain approximately uniform with respect to a
	// write's propagation order, which is what the Harmony estimator
	// assumes.
	TargetClosest TargetPolicy = iota
	// TargetRandom contacts a uniform random subset of live replicas
	// (load-spreading ablation).
	TargetRandom
)

// Config parameterizes a Cluster. DefaultConfig supplies working values
// for every knob.
type Config struct {
	// Placement.
	RF     int            // replication factor for SimpleStrategy
	PerDC  map[string]int // when set, NetworkTopologyStrategy with these per-DC counts
	VNodes int            // virtual nodes per node on the ring

	// Node performance profile (homogeneous cluster, as in the paper).
	ReadService   netsim.Law // replica-side service time of one read
	WriteService  netsim.Law // replica-side service time of one write
	CoordOverhead netsim.Law // coordinator admission work per operation
	Concurrency   int        // parallel work slots per node (thread pool)
	FlushLimit    int64      // memtable flush threshold in bytes

	// Storage backend. Engine selects the per-node engine:
	// storage.Mem (default) keeps the volatile map; storage.LSM runs the
	// durable WAL + LSM-lite engine, making Crash/Restart meaningful.
	Engine storage.Kind
	// WALSyncBytes is the LSM WAL fsync cadence: the log syncs once the
	// un-fsynced tail reaches this many bytes (a crash loses at most
	// that tail). 0 syncs every record.
	WALSyncBytes int64
	// MaxRuns triggers LSM size-tiered compaction; 0 defaults to 4.
	MaxRuns int
	// WALDir, when set, backs each node's WAL with a real file
	// (wal-<node>.log) so the live engine pays real I/O for appends and
	// fsyncs; empty keeps WALs as deterministic in-memory logs.
	WALDir string

	// Read path.
	DigestReads        bool
	ReadRepair         bool
	GlobalRepairChance float64
	ReadTargets        TargetPolicy

	// Client routing.
	Coordinator CoordPolicy
	CoordDC     string // for CoordLocalDC
	// Coordinators, when set, restricts coordinator selection to these
	// nodes. A multi-process deployment needs it: client messages carry
	// callbacks, so every operation must be coordinated by a node living
	// in the issuing process — each serving process pins Coordinators to
	// its local node set. nil keeps the policy over all ring members.
	Coordinators []netsim.NodeID

	// Elastic membership.
	// InitialMembers, when set, starts the cluster with only these
	// topology nodes on the ring; the rest can Join later. nil means
	// every topology node is a founding member (the classic static
	// cluster).
	InitialMembers []netsim.NodeID
	// WarmupDuration is the warming window after a Join flip or a
	// Restart: the node serves writes but read coordinators deprioritize
	// it (it is excluded from read quorums whenever enough converged
	// replicas are live) until the window elapses. 0 disables warming —
	// the node counts as fully live at once, the pre-elasticity
	// behaviour.
	WarmupDuration time.Duration
	// StreamChunkBytes is the snapshot-stream chunk budget for Join and
	// Decommission range transfers; 0 defaults to 16 KiB.
	StreamChunkBytes int
	// DisableJoinStream makes Join skip snapshot streaming entirely: the
	// joiner enters the ring empty and converges through hinted handoff
	// and anti-entropy alone (the rejoin-ablation the elasticity
	// experiment measures against).
	DisableJoinStream bool

	// Gossip membership (opt-in). With Gossip set, membership state is
	// disseminated SWIM-style instead of flipping atomically: every node
	// keeps its own view (internal/gossip), coordinators route on their
	// local — possibly stale — ring, replicas refuse ranges they no
	// longer own (notOwner) carrying the ring events the coordinator is
	// missing, and the coordinator re-plans and retries within
	// GossipRetryBudget. With Gossip unset the atomic path is untouched:
	// no extra messages, no extra RNG draws, byte-identical transcripts.
	Gossip bool
	// GossipInterval is the probe period of each node (default 200 ms);
	// an unanswered probe after half the interval raises a suspicion.
	GossipInterval time.Duration
	// GossipSuspicion is how long a suspicion may age before the
	// suspector declares the target dead (default 4×GossipInterval);
	// a refutation from the target in that window cancels it.
	GossipSuspicion time.Duration
	// GossipPiggyback caps the rumors piggybacked per message
	// (default 6); each rumor rides at most GossipPiggyback messages.
	GossipPiggyback int
	// GossipRetryBudget caps wrong-owner re-plans per operation
	// (default 2); the budget is charged against the client deadline —
	// retries never extend the operation's timeout.
	GossipRetryBudget int
	// GossipRetryBackoff is the base backoff before a wrong-owner
	// retry, doubling per retry (default 10 ms).
	GossipRetryBackoff time.Duration

	// Hot-key fast path (opt-in). With HotCache set the cluster tracks a
	// windowed heavy-hitter profile of the coordinated traffic, promotes
	// the head keys into a hot set (with per-key consistency overrides,
	// see SetHotKeyLevel), and every coordinator keeps a read cache over
	// those keys: quorum reads fill entries, single-ack reads younger
	// than the key's freshness bound are answered without any replica
	// messages. See hotcache.go. With HotCache unset nothing changes:
	// no tracker, no cache, byte-identical transcripts.
	HotCache bool
	// HotCacheAlpha is the tolerated stale rate of cache hits: an entry
	// is served only while P(newer write exists) ≤ α under the key's
	// observed Poisson write rate (default 0.10).
	HotCacheAlpha float64
	// HotCacheMaxAge caps every entry's freshness bound regardless of
	// how cold the key's writes are (default 100 ms).
	HotCacheMaxAge time.Duration
	// HotSetSize bounds the hot set (default 16).
	HotSetSize int
	// HotSetEvalOps is how many observed operations elapse between
	// hot-set re-evaluations (default 512).
	HotSetEvalOps int
	// HotPromoteShare is the windowed read share at which a key enters
	// the hot set (default 0.01); HotDemoteShare is the share below
	// which a hot key leaves (default HotPromoteShare/2). The gap is
	// the promotion hysteresis.
	HotPromoteShare float64
	HotDemoteShare  float64

	// Fault handling.
	// MutationShed drops replica mutations that waited in the mutation
	// stage beyond this threshold (Cassandra's dropped-mutation
	// overload behaviour); 0 disables shedding.
	MutationShed        time.Duration
	Timeout             time.Duration
	DetectionDelay      time.Duration // failure-detector convergence time
	HintReplayInterval  time.Duration
	MaxHintsPerNode     int
	AntiEntropyInterval time.Duration // 0 disables anti-entropy
	AntiEntropySample   int           // keys sampled per round

	// Seed for all store-side randomness.
	Seed uint64

	seedSource *stats.Source
}

// DefaultConfig returns a workable configuration: RF 3, digest reads and
// read repair on, 100 ms timeout, Cassandra-flavoured service times.
func DefaultConfig() Config {
	return Config{
		RF:                  3,
		VNodes:              32,
		ReadService:         stats.NewLogNormal(800*time.Microsecond, 0.5),
		WriteService:        stats.NewLogNormal(500*time.Microsecond, 0.5),
		CoordOverhead:       stats.NewLogNormal(80*time.Microsecond, 0.3),
		Concurrency:         4,
		FlushLimit:          64 << 20,
		WALSyncBytes:        16 << 10,
		MaxRuns:             4,
		DigestReads:         true,
		ReadRepair:          true,
		GlobalRepairChance:  0.1,
		ReadTargets:         TargetClosest,
		Coordinator:         CoordRoundRobin,
		StreamChunkBytes:    16 << 10,
		MutationShed:        2 * time.Second,
		Timeout:             2 * time.Second,
		DetectionDelay:      1 * time.Second,
		HintReplayInterval:  5 * time.Second,
		MaxHintsPerNode:     200_000,
		AntiEntropyInterval: 0,
		AntiEntropySample:   256,
		Seed:                1,
	}
}

// streamChunkBudget returns StreamChunkBytes with the default applied:
// the chunk framing budget shared by join and decommission streams.
func (cfg *Config) streamChunkBudget() int {
	if cfg.StreamChunkBytes > 0 {
		return cfg.StreamChunkBytes
	}
	return 16 << 10
}

// Cluster is the replicated store: a set of node actors over a Network,
// plus the client entry points. In simulation all methods must be called
// from engine events (the simulation is single-threaded); live, the
// engine serializes access.
type Cluster struct {
	cfg      Config
	topo     *netsim.Topology
	net      Network
	nodes    map[netsim.NodeID]*Node
	order    []netsim.NodeID // current ring members, ascending id
	allNodes []netsim.NodeID // every node that ever had an actor (accounting)
	strategy ring.Strategy
	oracle   *Oracle
	hooks    hookSet

	// Elastic membership: at most one Join/Decommission is in flight at
	// a time; warming holds the replicas read coordinators deprioritize
	// until their post-join/post-restart catch-up window elapses.
	pending         *membershipChange
	membershipGen   uint64
	membershipQueue []queuedChange
	// draining counts scheduled-but-not-yet-run queue-drain events:
	// while one is in flight the cluster is NOT settled, even at the
	// instant the queue itself looks empty to a same-time observer.
	draining      int
	warming       map[netsim.NodeID]bool
	joins         uint64
	decommissions uint64
	retired       Usage // meters of node incarnations replaced by a rejoin
	closeErr      error // first engine-close error from membership churn

	// Gossip membership (Config.Gossip): the global append-only log of
	// membership flips. Each node's ring knowledge is a contiguous
	// prefix of this log (see internal/gossip); founders records the
	// birth member set so test hooks can rebuild a view at any prefix.
	ringEvents []gossip.RingEvent
	founders   []netsim.NodeID

	// Hot-key fast path (Config.HotCache; nil otherwise): the shared
	// hot-set tracker the per-node read caches consult. See hotcache.go.
	hot *hotTracker

	seq     uint64
	nextID  reqID
	down    map[netsim.NodeID]bool
	rr      int
	rng     *stats.Source
	stopNet stopper // non-nil when net supports cancelable timers

	// Pooled client-op slab (clientop.go): non-nil callStop selects the
	// zero-allocation client path; guardCb is the pre-bound timeout
	// callback shared by every guard timer.
	ops      []clientOp
	opFree   int32
	callStop callStopper
	guardCb  func(uint32)
}

// New assembles a cluster over the given topology and network.
func New(topo *netsim.Topology, net Network, cfg Config) *Cluster {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 32
	}
	if cfg.Gossip {
		if cfg.GossipInterval <= 0 {
			cfg.GossipInterval = 200 * time.Millisecond
		}
		if cfg.GossipSuspicion <= 0 {
			cfg.GossipSuspicion = 4 * cfg.GossipInterval
		}
		if cfg.GossipPiggyback <= 0 {
			cfg.GossipPiggyback = 6
		}
		if cfg.GossipRetryBudget <= 0 {
			cfg.GossipRetryBudget = 2
		}
		if cfg.GossipRetryBackoff <= 0 {
			cfg.GossipRetryBackoff = 10 * time.Millisecond
		}
	}
	if cfg.HotCache {
		if cfg.HotCacheAlpha <= 0 {
			cfg.HotCacheAlpha = 0.10
		}
		if cfg.HotCacheMaxAge <= 0 {
			cfg.HotCacheMaxAge = 100 * time.Millisecond
		}
		if cfg.HotSetSize <= 0 {
			cfg.HotSetSize = 16
		}
		if cfg.HotSetEvalOps <= 0 {
			cfg.HotSetEvalOps = 512
		}
		if cfg.HotPromoteShare <= 0 {
			cfg.HotPromoteShare = 0.01
		}
		if cfg.HotDemoteShare <= 0 {
			cfg.HotDemoteShare = cfg.HotPromoteShare / 2
		}
	}
	cfg.seedSource = stats.NewSource(cfg.Seed).Stream("kv")
	c := &Cluster{
		cfg:     cfg,
		topo:    topo,
		net:     net,
		nodes:   make(map[netsim.NodeID]*Node, topo.N()),
		warming: make(map[netsim.NodeID]bool),
		down:    make(map[netsim.NodeID]bool),
		rng:     stats.NewSource(cfg.Seed).Stream("kv.cluster"),
	}
	c.stopNet, _ = net.(stopper)
	c.callStop, _ = net.(callStopper)
	c.guardCb = c.guardFired
	c.opFree = noOp
	if cfg.HotCache {
		c.hot = newHotTracker(&cfg, net.Now())
	}

	members := cfg.InitialMembers
	if members == nil {
		members = topo.Nodes()
	} else {
		members = append([]netsim.NodeID(nil), members...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for i, id := range members {
			if id < 0 || int(id) >= topo.N() {
				panic(fmt.Sprintf("kv: initial member %d outside topology (N=%d)", id, topo.N()))
			}
			if i > 0 && members[i-1] == id {
				panic(fmt.Sprintf("kv: duplicate initial member %d", id))
			}
		}
	}
	c.strategy = c.buildStrategy(members)
	c.oracle = NewOracle(c.strategy.RF())
	c.founders = append([]netsim.NodeID(nil), members...)

	for _, id := range members {
		n := newNode(id, c)
		c.nodes[id] = n
		c.order = append(c.order, id)
		c.allNodes = append(c.allNodes, id)
		net.Register(id, n.Handle)
	}
	net.Register(netsim.ClientID, c.handleClientReply)

	// Stagger background tasks so they do not synchronize.
	for i, id := range c.order {
		n := c.nodes[id]
		if cfg.AntiEntropyInterval > 0 {
			net.SendLocal(id, aeTick{}, cfg.AntiEntropyInterval*time.Duration(i+1)/time.Duration(len(c.order)))
		}
		if cfg.HintReplayInterval > 0 {
			net.SendLocal(id, hintTick{}, cfg.HintReplayInterval*time.Duration(i+1)/time.Duration(len(c.order)))
		}
		if cfg.Gossip {
			n.gs = newGossipState(n, members, 0)
			net.SendLocal(id, gossipTick{epoch: n.epoch},
				cfg.GossipInterval*time.Duration(i+1)/time.Duration(len(c.order)))
		}
	}
	return c
}

// appendRingEvent logs one membership flip to the global ring-event
// log; per-node views learn it through gossip (plus the introducer
// fast-path in finishJoin/finishDecommission).
func (c *Cluster) appendRingEvent(join bool, id netsim.NodeID) {
	c.ringEvents = append(c.ringEvents, gossip.RingEvent{
		Seq:  uint64(len(c.ringEvents)) + 1,
		Join: join,
		Node: id,
	})
}

// eventsSince returns the ring-event suffix after prefix seq. The slice
// aliases the log; receivers only read it.
func (c *Cluster) eventsSince(seq uint64) []gossip.RingEvent {
	if seq >= uint64(len(c.ringEvents)) {
		return nil
	}
	return c.ringEvents[seq:]
}

// membersAt reconstructs the ring member set at ring-event prefix seq
// (founders plus the first seq flips) — the test/bench hook behind
// ResetGossipView.
func (c *Cluster) membersAt(seq uint64) []netsim.NodeID {
	members := append([]netsim.NodeID(nil), c.founders...)
	for _, ev := range c.ringEvents[:seq] {
		if ev.Join {
			members = append(members, ev.Node)
		} else {
			for i, m := range members {
				if m == ev.Node {
					members = append(members[:i], members[i+1:]...)
					break
				}
			}
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// ResetGossipView rewinds node id's membership view to ring-event
// prefix seq, as if the node had been partitioned from all gossip since
// that flip. It is a test and benchmark hook for manufacturing stale
// coordinators deterministically (Config.Gossip only).
func (c *Cluster) ResetGossipView(id netsim.NodeID, seq uint64) {
	if !c.cfg.Gossip {
		panic("kv: ResetGossipView without Config.Gossip")
	}
	if seq > uint64(len(c.ringEvents)) {
		panic(fmt.Sprintf("kv: ResetGossipView(%d, %d) beyond the event log (%d)", id, seq, len(c.ringEvents)))
	}
	n := c.nodes[id]
	if n == nil || n.gs == nil {
		panic(fmt.Sprintf("kv: ResetGossipView(%d) on a node without gossip state", id))
	}
	// rewind (not a fresh state) keeps the dissemination meters — a
	// bench that rewinds views every iteration still accumulates its
	// retry counts.
	n.gs.rewind(n, c.membersAt(seq), seq)
}

// GossipStatus reports viewer's current liveness claim about subject
// (gossip.Left when gossip is disabled or the viewer has no agent — an
// unknown node is unroutable either way).
func (c *Cluster) GossipStatus(viewer, subject netsim.NodeID) gossip.Status {
	if n := c.nodes[viewer]; n != nil && n.gs != nil {
		return n.gs.view.StatusOf(subject)
	}
	return gossip.Left
}

// ViewAgreement reports the fraction of reachable ring members whose
// view has applied the full ring-event log — the convergence signal an
// eventually-consistent controller paces on. Failed and crashed nodes
// are excluded: they cannot converge while cut off, and counting them
// would wedge a controller through any partition. Without gossip the
// placement is atomic and agreement is always total.
func (c *Cluster) ViewAgreement() float64 {
	if !c.cfg.Gossip {
		return 1
	}
	target := uint64(len(c.ringEvents))
	total, agree := 0, 0
	for _, id := range c.order {
		n := c.nodes[id]
		if n.failed || n.crashed || n.gs == nil {
			continue
		}
		total++
		if n.gs.view.RingSeq() == target {
			agree++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}

// MembershipConverged reports whether every reachable member's view
// agrees with the full membership-flip log. With gossip enabled this is
// the eventually-consistent replacement for the atomic settling signal:
// a controller should treat an enacted change as done only when the
// cluster both settled (streams and warming finished) and converged
// (every view routes on the new ring).
func (c *Cluster) MembershipConverged() bool { return c.ViewAgreement() == 1 }

// buildStrategy assembles the configured placement strategy over the
// given member set. New uses it at birth; Join/Decommission use it to
// preview the post-change placement (which keys move) before the live
// strategy is updated incrementally at the flip.
func (c *Cluster) buildStrategy(members []netsim.NodeID) ring.Strategy {
	rg := ring.New(members, c.cfg.VNodes, c.cfg.Seed)
	if len(c.cfg.PerDC) > 0 {
		return ring.NewNetworkTopologyStrategy(rg, c.topo, c.cfg.PerDC)
	}
	rf := c.cfg.RF
	if rf <= 0 {
		rf = 3
	}
	if rf > len(members) {
		panic(fmt.Sprintf("kv: RF %d exceeds cluster size %d", rf, len(members)))
	}
	return ring.NewSimpleStrategy(rg, rf)
}

// handleClientReply runs result callbacks when replies reach the client
// endpoint. Pooled reply boxes are returned before the callback runs.
func (c *Cluster) handleClientReply(_ netsim.NodeID, payload any) {
	switch m := payload.(type) {
	case *clientReadReply:
		v := *m
		*m = clientReadReply{}
		clientReadReplyPool.Put(m)
		if v.rt.cb != nil {
			v.rt.cb(v.res)
		} else {
			c.opCompleteRead(v.rt.op, v.rt.opGen, v.res)
		}
	case *clientWriteReply:
		v := *m
		*m = clientWriteReply{}
		clientWriteRplPool.Put(m)
		if v.rt.cb != nil {
			v.rt.cb(v.res)
		} else {
			c.opCompleteWrite(v.rt.op, v.rt.opGen, v.res)
		}
	case clientBatchReadReply:
		m.cb(m.res)
	case clientBatchWriteReply:
		m.cb(m.res)
	}
}

// Read issues an asynchronous read at the given consistency level; cb
// runs when the client-side reply arrives. A client-side timer (twice the
// request timeout) guarantees cb fires even when the chosen coordinator
// silently dies with the request.
func (c *Cluster) Read(key string, lvl Level, cb func(ReadResult)) {
	id := c.nextReqID()
	coord := c.pickCoordinator()
	if coord < 0 {
		cb(ReadResult{Err: ErrUnavailable, Key: key, Level: lvl})
		return
	}
	if c.callStop != nil {
		c.sendOpRead(id, coord, key, lvl, cb)
		return
	}
	done := false
	var stopGuard func()
	once := func(r ReadResult) {
		if !done {
			done = true
			if stopGuard != nil {
				stopGuard()
			}
			cb(r)
		}
	}
	c.net.Send(netsim.ClientID, coord, newClientRead(clientRead{ID: id, Key: key, Level: lvl, rt: readRoute{cb: once}}),
		msgOverhead+len(key))
	stopGuard = c.armGuard(func() {
		once(ReadResult{Err: ErrTimeout, Key: key, Level: lvl, Latency: 2 * c.cfg.Timeout})
	})
}

// Write issues an asynchronous write at the given consistency level; the
// same client-side timeout guarantee as Read applies.
func (c *Cluster) Write(key string, value []byte, lvl Level, cb func(WriteResult)) {
	id := c.nextReqID()
	coord := c.pickCoordinator()
	if coord < 0 {
		cb(WriteResult{Err: ErrUnavailable, Key: key, Level: lvl})
		return
	}
	if c.callStop != nil {
		c.sendOpWrite(id, coord, key, value, lvl, false, cb)
		return
	}
	done := false
	var stopGuard func()
	once := func(r WriteResult) {
		if !done {
			done = true
			if stopGuard != nil {
				stopGuard()
			}
			cb(r)
		}
	}
	c.net.Send(netsim.ClientID, coord, newClientWrite(clientWrite{ID: id, Key: key, Value: value, Level: lvl, rt: writeRoute{cb: once}}),
		msgOverhead+len(key)+len(value))
	stopGuard = c.armGuard(func() {
		once(WriteResult{Err: ErrTimeout, Key: key, Level: lvl, Latency: 2 * c.cfg.Timeout})
	})
}

// Delete issues a tombstone write at the given consistency level:
// Cassandra-style deletion, reconciled by last-write-wins like any other
// mutation (so late replicas converge on the deletion too).
func (c *Cluster) Delete(key string, lvl Level, cb func(WriteResult)) {
	id := c.nextReqID()
	coord := c.pickCoordinator()
	if coord < 0 {
		cb(WriteResult{Err: ErrUnavailable, Key: key, Level: lvl})
		return
	}
	if c.callStop != nil {
		c.sendOpWrite(id, coord, key, nil, lvl, true, cb)
		return
	}
	done := false
	var stopGuard func()
	once := func(r WriteResult) {
		if !done {
			done = true
			if stopGuard != nil {
				stopGuard()
			}
			cb(r)
		}
	}
	c.net.Send(netsim.ClientID, coord,
		newClientWrite(clientWrite{ID: id, Key: key, Level: lvl, rt: writeRoute{cb: once}, tombstone: true}),
		msgOverhead+len(key))
	stopGuard = c.armGuard(func() {
		once(WriteResult{Err: ErrTimeout, Key: key, Level: lvl, Latency: 2 * c.cfg.Timeout})
	})
}

// armGuard schedules the client-side no-later-than timer for an
// operation, returning a cancel function (nil when the network cannot
// cancel; the timer then fires as a no-op after completion).
func (c *Cluster) armGuard(fn func()) func() {
	if c.stopNet != nil {
		return c.stopNet.ScheduleStop(2*c.cfg.Timeout, fn)
	}
	c.net.Schedule(2*c.cfg.Timeout, fn)
	return nil
}

func (c *Cluster) nextReqID() reqID {
	c.nextID++
	return c.nextID
}

func (c *Cluster) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// pickCoordinator returns the next coordinator per policy, or -1 when no
// node is live.
func (c *Cluster) pickCoordinator() netsim.NodeID {
	candidates := c.order
	if len(c.cfg.Coordinators) > 0 {
		candidates = c.cfg.Coordinators
	} else if c.cfg.Coordinator == CoordLocalDC && c.cfg.CoordDC != "" {
		candidates = c.topo.NodesInDC(c.cfg.CoordDC)
	}
	n := len(candidates)
	if n == 0 {
		return -1
	}
	if c.cfg.Coordinator == CoordRandom {
		for tries := 0; tries < n*2; tries++ {
			id := candidates[c.rng.IntN(n)]
			if !c.down[id] && c.serving(id) {
				return id
			}
		}
		return -1
	}
	for tries := 0; tries < n; tries++ {
		id := candidates[c.rr%n]
		c.rr++
		if !c.down[id] && c.serving(id) {
			return id
		}
	}
	return -1
}

// serving reports whether id is a ring member able to coordinate client
// operations (live, warming or streaming out — not bootstrapping, not
// decommissioned, not absent). CoordLocalDC candidates come straight
// from the topology, so non-members must be filtered here.
func (c *Cluster) serving(id netsim.NodeID) bool {
	n, ok := c.nodes[id]
	return ok && (n.phase == phaseLive || n.phase == phaseWarming || n.phase == phaseLeaving)
}

// levelReachable reports whether enough replicas are live to possibly
// satisfy req. The per-DC tally is only built for per-DC requirements.
func (c *Cluster) levelReachable(replicas []netsim.NodeID, req requirement) bool {
	if req.perDC == nil {
		alive := 0
		for _, r := range replicas {
			if !c.isDown(r) {
				alive++
			}
		}
		return alive >= req.total
	}
	alive := make(map[string]int, len(req.perDC))
	for _, r := range replicas {
		if !c.isDown(r) {
			alive[c.topo.DCOf(r)]++
		}
	}
	return req.satisfiedCounts(0, alive)
}

func (c *Cluster) isDown(id netsim.NodeID) bool { return len(c.down) != 0 && c.down[id] }

// engineOptions assembles the storage options of one node.
func (c *Cluster) engineOptions(id netsim.NodeID) storage.Options {
	opts := storage.Options{
		FlushLimit: c.cfg.FlushLimit,
		SyncBytes:  c.cfg.WALSyncBytes,
		MaxRuns:    c.cfg.MaxRuns,
	}
	if c.cfg.WALDir != "" && c.cfg.Engine == storage.LSM {
		opts.Path = filepath.Join(c.cfg.WALDir, fmt.Sprintf("wal-%d.log", id))
	}
	return opts
}

// Two distinct failure modes, injectable independently:
//
//   - Fail/Recover is a NETWORK failure: the transport drops the node's
//     traffic, but the process keeps running and its state — engine
//     contents, buffered hints, queued work — is fully PRESERVED. A
//     recovered node serves exactly what it held when it was cut off.
//   - Crash/Restart is a PROCESS failure: traffic drops the same way,
//     but the node additionally LOSES its volatile state (for MemEngine
//     that is every write; for the LSM engine, the memtable and the
//     un-fsynced WAL tail). Restart rebuilds from durable state (WAL
//     replay + sorted runs) and catches up via hinted handoff and
//     anti-entropy.
//
// A node is in exactly one of three states — live, failed or crashed —
// and the four methods enforce the transitions (live→failed→live via
// Fail/Recover, live→crashed→live via Crash/Restart), panicking on any
// other sequence: mispairing them would desynchronize the transport's
// boolean down flag and the failure detector from the actor's state
// (e.g. Restart-ing a node that was also Failed would silently heal the
// partition). TestFailPreservesStateCrashLosesIt pins this contract.

// mustBeLive panics unless node id is a member that is neither failed
// nor crashed.
func (c *Cluster) mustBeLive(id netsim.NodeID, op string) *Node {
	n := c.nodes[id]
	switch {
	case n == nil || n.phase == phaseDecommissioned || n.phase == phaseBootstrapping:
		panic(fmt.Sprintf("kv: %s(%d) on a non-member node", op, id))
	case n.failed:
		panic(fmt.Sprintf("kv: %s(%d) on a failed node; Recover it first", op, id))
	case n.crashed:
		panic(fmt.Sprintf("kv: %s(%d) on a crashed node; Restart it first", op, id))
	}
	return n
}

// Fail injects a network-level node failure: the transport drops its
// traffic at once and the cluster-wide failure detector marks it down
// after the configured detection delay. The node's state is preserved.
func (c *Cluster) Fail(id netsim.NodeID) {
	c.mustBeLive(id, "Fail").failed = true
	if f, ok := c.net.(failer); ok {
		f.Fail(id)
	}
	c.net.Schedule(c.cfg.DetectionDelay, func() { c.down[id] = true })
}

// Recover reverses Fail after the detection delay. Recovering a node
// that is not failed (live, or crashed — use Restart) is a contract
// violation.
func (c *Cluster) Recover(id netsim.NodeID) {
	n := c.nodes[id]
	if !n.failed {
		panic(fmt.Sprintf("kv: Recover(%d) on a non-failed node (crashed=%v); Recover pairs with Fail", id, n.crashed))
	}
	n.failed = false
	if f, ok := c.net.(failer); ok {
		f.Recover(id)
	}
	c.net.Schedule(c.cfg.DetectionDelay, func() { delete(c.down, id) })
}

// Crash kills the node process: traffic drops like Fail, and the node
// loses its volatile state — engine memtable past the last durability
// point, coordinator contexts, queued stage work, buffered hints. The
// failure detector marks it down after the detection delay.
func (c *Cluster) Crash(id netsim.NodeID) {
	n := c.mustBeLive(id, "Crash")
	if f, ok := c.net.(failer); ok {
		f.Fail(id)
	}
	n.crash()
	c.net.Schedule(c.cfg.DetectionDelay, func() { c.down[id] = true })
}

// Restart reverses Crash: the engine recovers its durable state (the
// LSM engine reloads sorted runs and replays the fsynced WAL prefix;
// MemEngine restarts empty), traffic flows again at once, and the
// detector marks the node up after the detection delay. The node then
// converges through hinted handoff and anti-entropy like any lagging
// replica. With Config.WarmupDuration set, it re-enters service through
// the same warming state a joining node uses: it takes writes at once
// but read coordinators deprioritize it until the window elapses, so a
// replaying replica is not counted as fully live. The returned stats
// report what the engine recovered.
func (c *Cluster) Restart(id netsim.NodeID) storage.RecoverStats {
	if c.nodes[id] == nil {
		panic(fmt.Sprintf("kv: Restart(%d) on a non-member node", id))
	}
	if !c.nodes[id].crashed {
		panic(fmt.Sprintf("kv: Restart(%d) on a non-crashed node (failed=%v); Restart pairs with Crash", id, c.nodes[id].failed))
	}
	if f, ok := c.net.(failer); ok {
		f.Recover(id)
	}
	rs := c.nodes[id].restart()
	c.markWarming(id)
	c.net.Schedule(c.cfg.DetectionDelay, func() { delete(c.down, id) })
	return rs
}

// Close releases node engine resources (file-backed WALs under the live
// engine), decommissioned nodes included. The cluster must not be used
// afterwards.
func (c *Cluster) Close() error {
	first := c.closeErr // engines already closed by membership churn
	for _, id := range c.allNodes {
		if err := c.nodes[id].engine.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Oracle exposes the staleness oracle (experiments and tests).
func (c *Cluster) Oracle() *Oracle { return c.oracle }

// Topology exposes the cluster topology.
func (c *Cluster) Topology() *netsim.Topology { return c.topo }

// Strategy exposes the placement strategy.
func (c *Cluster) Strategy() ring.Strategy { return c.strategy }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// RF reports the total replication factor.
func (c *Cluster) RF() int { return c.strategy.RF() }

// Node exposes a node (tests and experiments).
func (c *Cluster) Node(id netsim.NodeID) *Node { return c.nodes[id] }

// AddHooks registers an instrumentation listener.
func (c *Cluster) AddHooks(h *Hooks) { c.hooks = append(c.hooks, h) }

// Preload seeds n records directly into every replica's engine, bypassing
// the network: the equivalent of YCSB's load phase followed by full
// quiescence. Records get version timestamps of zero so every subsequent
// write supersedes them, and the oracle ledgers them as fully propagated.
func (c *Cluster) Preload(n uint64, key func(uint64) string, value []byte) {
	now := c.net.Now()
	for i := uint64(0); i < n; i++ {
		k := key(i)
		v := storage.Version{Timestamp: 0, Seq: c.nextSeq()}
		replicas := c.strategy.Replicas(k)
		c.oracle.WriteStarted(k, v, len(replicas), now)
		c.oracle.WriteVisible(k, v)
		cell := storage.Cell{Version: v, Value: value}
		for _, r := range replicas {
			if c.nodes[r].engine.Apply(k, cell) {
				c.oracle.Applied(r, v, now)
			}
		}
	}
}

// Usage summarizes the cluster's resource consumption so far; the cost
// model combines it with the transport's traffic meter.
type Usage struct {
	Nodes         int
	BusyTime      time.Duration // summed service time across nodes
	StoredBytes   int64
	ReplicaReads  uint64
	ReplicaWrites uint64
	CoordOps      uint64
	ReadRepairs   uint64
	HintsReplayed uint64
	HintsDropped  uint64
	AERounds      uint64
	FlushedBytes  uint64
	DroppedMuts   uint64

	// Durability accounting (nonzero only with the LSM engine, except
	// Crashes and WALReplays which count for both).
	Crashes        uint64
	WALReplays     uint64
	WALBytes       uint64 // bytes appended to WALs
	WALSyncs       uint64
	LostWALRecords uint64 // un-fsynced records dropped by crashes
	Compactions    uint64
	CompactedBytes uint64 // bytes rewritten by compactions (priced I/O)

	// Elastic membership accounting. The stream counters meter the
	// sender side of snapshot streaming (data moved by Join rebalances
	// and Decommission handoffs).
	Joins          uint64
	Decommissions  uint64
	StreamChunks   uint64
	StreamedCells  uint64
	StreamedBytes  uint64
	StreamInCells  uint64 // cells applied from inbound snapshot streams
	StreamInChunks uint64
	// StreamSnapshotCells counts the cells stream senders actually read
	// out of engine snapshots. With range-addressed streaming this is
	// proportional to the moved fraction of the keyspace, not the store
	// size (the PR10 acceptance meter).
	StreamSnapshotCells uint64

	// Gossip membership accounting (nonzero only with Config.Gossip).
	GossipRounds       uint64 // probe rounds initiated
	GossipSuspicions   uint64 // suspicions raised by probe timeouts
	GossipDeadDeclared uint64 // suspicions that aged into dead verdicts
	GossipEvents       uint64 // ring events applied across views
	NotOwnerReplies    uint64 // replica-side refusals of stale-ring requests
	WrongOwnerRetries  uint64 // coordinator-side re-plans after refusals
	WarmViolations     uint64 // reads sent to warming replicas despite converged alternatives

	// Hot-key cache accounting (nonzero only with Config.HotCache).
	CacheHits          uint64 // reads answered in the coordinator, no replica messages
	CacheMisses        uint64 // servable hot-key reads that fell through to quorum
	CacheFills         uint64 // entries filled by replica-served reads
	CacheInvalidations uint64 // entries dropped by local write paths
	CacheExpired       uint64 // entries older than their freshness bound
	CacheRingEvicted   uint64 // entries dropped by ring/membership movement
	CacheStaleServed   uint64 // cache hits the oracle judged stale
	HotPromotions      uint64 // keys promoted into the hot set
	HotDemotions       uint64 // keys demoted out of the hot set
	HotKeysNow         int    // current hot-set size (point-in-time gauge)
}

// accumulateNodeUsage folds one node's meters into u. StoredBytes is a
// point-in-time gauge: data parked on a drained, off-ring node is not
// billed capacity, so decommissioned nodes contribute only their
// cumulative work counters.
func accumulateNodeUsage(u *Usage, n *Node) {
	u.BusyTime += n.BusyTime()
	if n.phase != phaseDecommissioned {
		u.StoredBytes += n.engine.Bytes()
	}
	u.ReplicaReads += n.repReads
	u.ReplicaWrites += n.repWrites
	u.CoordOps += n.coordOps
	u.ReadRepairs += n.readRepairs
	u.HintsReplayed += n.hintsReplayed
	u.HintsDropped += n.hintsDropped
	u.AERounds += n.aeRounds
	st := n.engine.Stats()
	u.FlushedBytes += st.FlushedBytes
	u.DroppedMuts += n.writeStage.dropped
	u.Crashes += st.Crashes
	u.WALReplays += st.Replays
	u.WALBytes += st.WALBytes
	u.WALSyncs += st.WALSyncs
	u.LostWALRecords += st.LostRecords
	u.Compactions += st.Compactions
	u.CompactedBytes += st.CompactedBytes
	u.StreamChunks += n.streamChunksOut
	u.StreamedCells += n.streamedOutCells
	u.StreamedBytes += n.streamedOutBytes
	u.StreamInCells += n.streamedInCells
	u.StreamInChunks += n.streamChunksIn
	u.StreamSnapshotCells += n.streamSnapshotCells
	if gs := n.gs; gs != nil {
		u.GossipRounds += gs.rounds
		u.GossipSuspicions += gs.suspicions
		u.GossipDeadDeclared += gs.deadDeclared
		u.GossipEvents += gs.eventsApplied
		u.NotOwnerReplies += gs.notOwnerReplies
		u.WrongOwnerRetries += gs.wrongOwnerRetries
		u.WarmViolations += gs.warmViolations
	}
	if rc := n.cache; rc != nil {
		u.CacheHits += rc.hits
		u.CacheMisses += rc.misses
		u.CacheFills += rc.fills
		u.CacheInvalidations += rc.invalidations
		u.CacheExpired += rc.expired
		u.CacheRingEvicted += rc.ringEvicted
		u.CacheStaleServed += rc.staleServed
	}
}

// Usage gathers the resource usage snapshot. Decommissioned nodes —
// including past incarnations replaced by a rejoin — keep contributing
// the work they did while serving.
func (c *Cluster) Usage() Usage {
	u := c.retired
	u.Nodes = len(c.order)
	u.Joins = c.joins
	u.Decommissions = c.decommissions
	for _, id := range c.allNodes {
		accumulateNodeUsage(&u, c.nodes[id])
	}
	if t := c.hot; t != nil {
		u.HotPromotions = t.promotions
		u.HotDemotions = t.demotions
		u.HotKeysNow = len(t.keys)
	}
	return u
}
