package kv

// Session is the client-facing surface workloads drive: a read/write
// session whose consistency levels are chosen by the implementation. The
// static session pins levels; the adaptive sessions in internal/core
// re-tune them at runtime — this interface is exactly the seam where the
// paper's middleware sits.
type Session interface {
	Read(key string, cb func(ReadResult))
	Write(key string, value []byte, cb func(WriteResult))
}

// StaticSession issues every operation at fixed levels (the paper's
// "static eventual" and "static strong" baselines, and any fixed level in
// between).
type StaticSession struct {
	Cluster    *Cluster
	ReadLevel  Level
	WriteLevel Level
}

// Read implements Session.
func (s StaticSession) Read(key string, cb func(ReadResult)) {
	s.Cluster.Read(key, s.ReadLevel, cb)
}

// Write implements Session.
func (s StaticSession) Write(key string, value []byte, cb func(WriteResult)) {
	s.Cluster.Write(key, value, s.WriteLevel, cb)
}
