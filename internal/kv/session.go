package kv

// Session is the client-facing surface workloads drive: reads, writes,
// deletes and multi-key batches whose consistency levels are chosen by
// the implementation. The static session pins levels; the adaptive
// sessions in internal/core re-tune them at runtime — this interface is
// exactly the seam where the paper's middleware sits. The repro.Client
// facade wraps a Session with blocking, context-aware and future-based
// forms for both the simulated and the live backend.
type Session interface {
	Read(key string, cb func(ReadResult))
	Write(key string, value []byte, cb func(WriteResult))
	Delete(key string, cb func(WriteResult))
	// BatchRead issues keys as one coordinated batch (one coordinator
	// admission, at most one request message per replica); results
	// arrive together in key order.
	BatchRead(keys []string, cb func([]ReadResult))
	// BatchWrite issues ops (puts and deletes mixed) as one coordinated
	// batch; results arrive together in op order.
	BatchWrite(ops []BatchOp, cb func([]WriteResult))
}

// StaticSession issues every operation at fixed levels (the paper's
// "static eventual" and "static strong" baselines, and any fixed level in
// between).
type StaticSession struct {
	Cluster    *Cluster
	ReadLevel  Level
	WriteLevel Level
}

// Read implements Session.
func (s StaticSession) Read(key string, cb func(ReadResult)) {
	s.Cluster.Read(key, s.ReadLevel, cb)
}

// Write implements Session.
func (s StaticSession) Write(key string, value []byte, cb func(WriteResult)) {
	s.Cluster.Write(key, value, s.WriteLevel, cb)
}

// Delete implements Session: a tombstone write at the write level.
func (s StaticSession) Delete(key string, cb func(WriteResult)) {
	s.Cluster.Delete(key, s.WriteLevel, cb)
}

// BatchRead implements Session.
func (s StaticSession) BatchRead(keys []string, cb func([]ReadResult)) {
	s.Cluster.ReadBatch(keys, s.ReadLevel, cb)
}

// BatchWrite implements Session.
func (s StaticSession) BatchWrite(ops []BatchOp, cb func([]WriteResult)) {
	s.Cluster.WriteBatch(ops, s.WriteLevel, cb)
}
