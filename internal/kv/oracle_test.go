package kv

import (
	"testing"
	"time"

	"repro/internal/storage"
)

func ver(seq uint64) storage.Version {
	return storage.Version{Timestamp: time.Duration(seq), Seq: seq}
}

func TestOracleJudgeSemantics(t *testing.T) {
	o := NewOracle(3)
	v1, v2 := ver(1), ver(2)

	// Returned the newest acknowledged version: fresh.
	if o.Judge(v1, v1, v1) {
		t.Error("matching version judged stale")
	}
	// Returned older than acknowledged: stale.
	if !o.Judge(v2, v2, v1) {
		t.Error("older version judged fresh")
	}
	// Fresh against acknowledged but missing an in-flight write: fresh,
	// counted as overlap.
	if o.Judge(v1, v2, v1) {
		t.Error("overlap read judged stale")
	}
	stale, fresh, _ := o.Counts()
	if stale != 1 || fresh != 2 {
		t.Errorf("counts: stale=%d fresh=%d", stale, fresh)
	}
	if o.OverlapReads() != 1 {
		t.Errorf("overlap = %d", o.OverlapReads())
	}
	if got := o.StaleRate(); got < 0.33 || got > 0.34 {
		t.Errorf("stale rate = %f", got)
	}
}

func TestOraclePropagationTracking(t *testing.T) {
	o := NewOracle(3)
	v := ver(1)
	o.WriteStarted("k", v, 3, 0)
	if o.InFlight() != 1 {
		t.Fatalf("in flight = %d", o.InFlight())
	}
	o.Applied(0, v, 2*time.Millisecond)
	o.Applied(0, v, 3*time.Millisecond) // duplicate: ignored
	o.Applied(1, v, 5*time.Millisecond)
	o.Applied(2, v, 9*time.Millisecond)
	if o.InFlight() != 0 {
		t.Errorf("in flight after full propagation = %d", o.InFlight())
	}
	if got := o.Propagation().Max(); got < 8*time.Millisecond || got > 10*time.Millisecond {
		t.Errorf("propagation max = %v", got)
	}
	if o.RankDelay(1).Count() != 1 || o.RankDelay(3).Count() != 1 {
		t.Error("rank delays not recorded")
	}
}

func TestOracleVisibleVsIssued(t *testing.T) {
	o := NewOracle(3)
	v1, v2 := ver(1), ver(2)
	o.WriteStarted("k", v1, 3, 0)
	o.WriteVisible("k", v1)
	o.WriteStarted("k", v2, 3, time.Millisecond) // issued, not yet visible
	if o.LatestVisible("k") != v1 {
		t.Errorf("visible = %v", o.LatestVisible("k"))
	}
	if o.LatestIssued("k") != v2 {
		t.Errorf("issued = %v", o.LatestIssued("k"))
	}
	// Acking an older version later must not regress the ledger.
	o.WriteVisible("k", v2)
	o.WriteVisible("k", v1)
	if o.LatestVisible("k") != v2 {
		t.Error("visible regressed")
	}
}

func TestOracleResetVerdicts(t *testing.T) {
	o := NewOracle(3)
	o.Judge(ver(2), ver(2), ver(1))
	o.ReadFailed()
	o.ResetVerdicts()
	stale, fresh, failed := o.Counts()
	if stale != 0 || fresh != 0 || failed != 0 || o.StaleRate() != 0 {
		t.Error("reset did not clear verdicts")
	}
}
