package kv_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/ycsb"
)

// quietConfig disables periodic background tasks so the event queue
// drains fully, letting tests assert quiescent state.
func quietConfig(seed uint64) kv.Config {
	cfg := kv.DefaultConfig()
	cfg.Seed = seed
	cfg.HintReplayInterval = 0
	cfg.AntiEntropyInterval = 0
	return cfg
}

// write and read run one operation to completion and return its result.
func (h *harness) write(key string, value []byte, lvl kv.Level) kv.WriteResult {
	var out kv.WriteResult
	done := false
	h.cluster.Write(key, value, lvl, func(r kv.WriteResult) { out = r; done = true })
	for !done && h.eng.Step() {
	}
	if !done {
		panic("write never completed")
	}
	return out
}

func (h *harness) read(key string, lvl kv.Level) kv.ReadResult {
	var out kv.ReadResult
	done := false
	h.cluster.Read(key, lvl, func(r kv.ReadResult) { out = r; done = true })
	for !done && h.eng.Step() {
	}
	if !done {
		panic("read never completed")
	}
	return out
}

func TestWriteThenReadQuorumIsFresh(t *testing.T) {
	h := newHarness(netsim.G5KTwoSites(6), quietConfig(1))
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		w := h.write(key, []byte("v"), kv.Quorum)
		if w.Err != nil {
			t.Fatalf("write: %v", w.Err)
		}
		r := h.read(key, kv.Quorum)
		if r.Err != nil || !r.Exists || r.Stale {
			t.Fatalf("quorum read after quorum write: %+v", r)
		}
		if r.Version != w.Version {
			t.Fatalf("read version %v != written %v", r.Version, w.Version)
		}
	}
}

func TestAllReplicasConvergeAfterWriteOne(t *testing.T) {
	h := newHarness(netsim.G5KTwoSites(6), quietConfig(2))
	w := h.write("converge", []byte("payload"), kv.One)
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	h.eng.Run() // drain: no periodic tasks configured
	replicas := h.cluster.Strategy().Replicas("converge")
	if len(replicas) != 3 {
		t.Fatalf("replicas = %d", len(replicas))
	}
	for _, id := range replicas {
		cell, ok := h.cluster.Node(id).Engine().Peek("converge")
		if !ok || cell.Version != w.Version {
			t.Errorf("replica %d did not converge: %v (want %v)", id, cell.Version, w.Version)
		}
	}
	if h.cluster.Oracle().InFlight() != 0 {
		t.Errorf("oracle still tracks %d in-flight writes", h.cluster.Oracle().InFlight())
	}
}

// TestConvergencePropertyRandomOps: after any run of random operations
// with no failures, once the system quiesces every key's replicas hold
// identical versions — the eventual-consistency guarantee.
func TestConvergencePropertyRandomOps(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		h := newHarness(netsim.EC2TwoAZ(8), quietConfig(seed))
		rng := h.eng.RNG().Stream("ops")
		levels := []kv.Level{kv.One, kv.Two, kv.Quorum, kv.All}
		pending := 0
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("key-%d", rng.IntN(20))
			lvl := levels[rng.IntN(len(levels))]
			pending++
			if rng.Float64() < 0.6 {
				h.cluster.Write(key, []byte(fmt.Sprintf("v%d", i)), lvl,
					func(kv.WriteResult) { pending-- })
			} else {
				h.cluster.Read(key, lvl, func(kv.ReadResult) { pending-- })
			}
			// Let the simulation interleave.
			for s := 0; s < 5; s++ {
				h.eng.Step()
			}
		}
		h.eng.Run()
		if pending != 0 {
			t.Fatalf("seed %d: %d operations never completed", seed, pending)
		}
		for k := 0; k < 20; k++ {
			key := fmt.Sprintf("key-%d", k)
			replicas := h.cluster.Strategy().Replicas(key)
			var want storage.Version
			for i, id := range replicas {
				cell, ok := h.cluster.Node(id).Engine().Peek(key)
				if !ok {
					continue
				}
				if i == 0 || cell.Version.After(want) {
					want = cell.Version
				}
			}
			for _, id := range replicas {
				cell, ok := h.cluster.Node(id).Engine().Peek(key)
				if ok && cell.Version != want {
					t.Errorf("seed %d: %s diverged on node %d: %v vs %v",
						seed, key, id, cell.Version, want)
				}
			}
		}
	}
}

func TestReadAllNeverStale(t *testing.T) {
	h := newHarness(netsim.G5KTwoSites(6), quietConfig(3))
	rng := h.eng.RNG().Stream("ops")
	stale := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", rng.IntN(5))
		h.cluster.Write(key, []byte("x"), kv.One, func(kv.WriteResult) {})
		h.cluster.Read(key, kv.All, func(r kv.ReadResult) {
			if r.Err == nil && r.Stale {
				stale++
			}
		})
		for s := 0; s < 3; s++ {
			h.eng.Step()
		}
	}
	h.eng.Run()
	if stale != 0 {
		t.Errorf("ALL reads returned stale data %d times", stale)
	}
}

func TestUnavailableAfterDetection(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(4))
	h.write("k", []byte("v"), kv.All)
	// Kill two of the three replicas.
	reps := h.cluster.Strategy().Replicas("k")
	h.cluster.Fail(reps[1])
	h.cluster.Fail(reps[2])
	h.eng.RunFor(2 * time.Second) // past the detection delay

	r := h.read("k", kv.All)
	if !errors.Is(r.Err, kv.ErrUnavailable) {
		t.Errorf("read ALL with 2/3 replicas down: err = %v, want unavailable", r.Err)
	}
	w := h.write("k", []byte("v2"), kv.Quorum)
	if !errors.Is(w.Err, kv.ErrUnavailable) {
		t.Errorf("write QUORUM with 1/3 replicas up: err = %v, want unavailable", w.Err)
	}
	// Level ONE still works.
	r = h.read("k", kv.One)
	if r.Err != nil || !r.Exists {
		t.Errorf("read ONE should succeed: %+v", r)
	}
}

func TestTimeoutBeforeDetection(t *testing.T) {
	cfg := quietConfig(5)
	cfg.Timeout = 200 * time.Millisecond
	cfg.DetectionDelay = time.Hour // failure detector never learns
	h := newHarness(netsim.SingleDC(3), cfg)
	h.write("k", []byte("v"), kv.All)
	reps := h.cluster.Strategy().Replicas("k")
	h.tr.Fail(reps[1]) // transport-level only: coordinators don't know
	r := h.read("k", kv.All)
	if !errors.Is(r.Err, kv.ErrTimeout) {
		t.Errorf("read ALL with silent replica: err = %v, want timeout", r.Err)
	}
	if r.Latency < cfg.Timeout {
		t.Errorf("timeout fired early: %v", r.Latency)
	}
}

func TestHintedHandoffReplaysAfterRecovery(t *testing.T) {
	cfg := quietConfig(6)
	cfg.HintReplayInterval = 500 * time.Millisecond
	h := newHarness(netsim.SingleDC(4), cfg)
	h.write("k", []byte("v0"), kv.All)
	reps := h.cluster.Strategy().Replicas("k")
	down := reps[2]
	h.cluster.Fail(down)
	h.eng.RunFor(2 * time.Second) // detection

	w := h.write("k", []byte("v1"), kv.One) // hint stored for down replica
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	h.eng.RunFor(time.Second)
	if cell, _ := h.cluster.Node(down).Engine().Peek("k"); cell.Version == w.Version {
		t.Fatal("down replica received write while down")
	}

	h.cluster.Recover(down)
	h.eng.RunFor(5 * time.Second) // detection + replay ticks
	cell, ok := h.cluster.Node(down).Engine().Peek("k")
	if !ok || cell.Version != w.Version {
		t.Errorf("hint not replayed: resident %v, want %v", cell.Version, w.Version)
	}
	if h.cluster.Usage().HintsReplayed == 0 {
		t.Error("no hints replayed recorded")
	}
}

func TestReadRepairHealsStaleReplica(t *testing.T) {
	cfg := quietConfig(7)
	cfg.ReadRepair = true
	cfg.GlobalRepairChance = 0
	h := newHarness(netsim.SingleDC(3), cfg)
	h.write("k", []byte("v0"), kv.All)
	reps := h.cluster.Strategy().Replicas("k")

	// Inject divergence directly: one replica misses the latest version.
	newer := storage.Cell{Version: storage.Version{Timestamp: h.eng.Now() + 1, Seq: 999}, Value: []byte("v1")}
	h.cluster.Node(reps[0]).Engine().Apply("k", newer)
	h.cluster.Node(reps[1]).Engine().Apply("k", newer)

	r := h.read("k", kv.All) // sees divergence, repairs reps[2]
	if string(r.Value) != "v1" {
		t.Fatalf("read returned %q", r.Value)
	}
	h.eng.Run()
	cell, _ := h.cluster.Node(reps[2]).Engine().Peek("k")
	if cell.Version != newer.Version {
		t.Errorf("read repair did not heal replica: %v", cell.Version)
	}
	if h.cluster.Usage().ReadRepairs == 0 {
		t.Error("no repairs recorded")
	}
}

func TestAntiEntropyConvergesPartitionedReplica(t *testing.T) {
	cfg := quietConfig(8)
	cfg.ReadRepair = false
	cfg.GlobalRepairChance = 0
	cfg.AntiEntropyInterval = 300 * time.Millisecond
	cfg.AntiEntropySample = 64
	h := newHarness(netsim.SingleDC(4), cfg)
	h.write("k", []byte("v0"), kv.All)
	reps := h.cluster.Strategy().Replicas("k")

	// Partition one replica, write new data, heal, let AE run.
	lag := reps[2]
	others := []netsim.NodeID{}
	for _, id := range h.topo.Nodes() {
		if id != lag {
			others = append(others, id)
		}
	}
	h.tr.Partition([]netsim.NodeID{lag}, others)
	w := h.write("k", []byte("v1"), kv.Quorum)
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	h.tr.Heal()
	h.eng.RunFor(10 * time.Second)

	cell, _ := h.cluster.Node(lag).Engine().Peek("k")
	if cell.Version != w.Version {
		t.Errorf("anti-entropy did not converge lagging replica: %v want %v", cell.Version, w.Version)
	}
	if h.cluster.Usage().AERounds == 0 {
		t.Error("no anti-entropy rounds ran")
	}
}

func TestDigestMismatchReturnsFreshValue(t *testing.T) {
	cfg := quietConfig(9)
	cfg.DigestReads = true
	cfg.ReadTargets = kv.TargetClosest
	h := newHarness(netsim.SingleDC(3), cfg)
	h.write("k", []byte("old"), kv.All)
	reps := h.cluster.Strategy().Replicas("k")

	// Make only the LAST-preference replicas fresh so the data request
	// hits a stale replica and the digest carries the newer version.
	newer := storage.Cell{Version: storage.Version{Timestamp: h.eng.Now() + 1, Seq: 777}, Value: []byte("new")}
	h.cluster.Node(reps[2]).Engine().Apply("k", newer)

	for i := 0; i < 20; i++ {
		r := h.read("k", kv.All)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if string(r.Value) != "new" {
			t.Fatalf("digest mismatch path returned stale bytes %q", r.Value)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func(seed uint64) (uint64, uint64, uint64) {
		topo := netsim.G5KTwoSites(8)
		cfg := kv.DefaultConfig()
		cfg.Seed = seed
		h := newHarness(topo, cfg)
		m := h.runYCSB(t, ycsb.HeavyReadUpdate(1000), kv.StaticSession{
			Cluster: h.cluster, ReadLevel: kv.One, WriteLevel: kv.One}, 5000, 16)
		return m.StaleReads, m.FreshReads, h.eng.Events()
	}
	s1, f1, e1 := run(42)
	s2, f2, e2 := run(42)
	if s1 != s2 || f1 != f2 || e1 != e2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", s1, f1, e1, s2, f2, e2)
	}
	s3, _, e3 := run(43)
	if s1 == s3 && e1 == e3 {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestPreloadVisibleEverywhere(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(10))
	value := []byte("seed")
	h.cluster.Preload(100, func(i uint64) string { return fmt.Sprintf("key-%d", i) }, value)
	for i := 0; i < 100; i++ {
		r := h.read(fmt.Sprintf("key-%d", i), kv.One)
		if r.Err != nil || !r.Exists || r.Stale {
			t.Fatalf("preloaded key %d: %+v", i, r)
		}
	}
}

func TestCoordinatorLocalDCPolicy(t *testing.T) {
	topo := netsim.G5KTwoSites(6)
	cfg := quietConfig(11)
	cfg.Coordinator = kv.CoordLocalDC
	cfg.CoordDC = topo.DCOf(0)
	h := newHarness(topo, cfg)
	for i := 0; i < 30; i++ {
		h.write(fmt.Sprintf("k%d", i), []byte("v"), kv.One)
	}
	local := h.cluster.Topology().NodesInDC(cfg.CoordDC)
	localSet := map[netsim.NodeID]bool{}
	for _, id := range local {
		localSet[id] = true
	}
	var remoteCoord uint64
	for _, id := range h.topo.Nodes() {
		if !localSet[id] {
			remoteCoord += h.cluster.Node(id).CoordOps()
		}
	}
	if remoteCoord != 0 {
		t.Errorf("remote-DC nodes coordinated %d ops under CoordLocalDC", remoteCoord)
	}
}
