package kv

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Cross-process marshal hooks for the replica-facing message set. A
// multi-process deployment runs the full cluster actor set in every
// process but serves only its local nodes; messages addressed to a node
// owned by a peer process are encoded here, framed by internal/wire and
// shipped over a TCP mesh (internal/live). Client messages (they carry
// callbacks), self-messages (they carry engine-internal pointers) and
// gossip messages (multi-process membership is static for now) never
// cross a process boundary, so they have no wire form — MarshalMessage
// reports them unencodable and the mesh treats sending one as a
// programming error.

// Wire kinds of the cross-process message set. Values are part of the
// peer protocol: append new kinds, never renumber.
const (
	wireReplicaRead byte = iota + 1
	wireReplicaReadResp
	wireReplicaWrite
	wireReplicaWriteAck
	wireReplicaBatchRead
	wireReplicaBatchReadResp
	wireReplicaBatchWrite
	wireReplicaBatchWriteAck
	wireAeOffer
	wireAeReply
	wireAePush
	wireStreamRequest
	wireStreamChunk
	wireStreamDone
	wireStreamAck
)

// MarshalMessage appends one framed message to buf and reports whether
// payload has a wire form. Encodable pooled message boxes are consumed:
// the box returns to its pool once its fields are on the wire, exactly
// as a local delivery recycles it in Handle.
func MarshalMessage(buf []byte, from, to netsim.NodeID, payload any) ([]byte, bool) {
	kind := wireKindOf(payload)
	if kind == 0 {
		return buf, false
	}
	start := len(buf)
	buf = wire.BeginFrame(buf, kind)
	buf = wire.AppendVarint(buf, int64(from))
	buf = wire.AppendVarint(buf, int64(to))
	switch m := payload.(type) {
	case *replicaRead:
		buf = wire.AppendUvarint(buf, uint64(m.ID))
		buf = wire.AppendString(buf, m.Key)
		buf = wire.AppendBool(buf, m.Digest)
		buf = wire.AppendVarint(buf, int64(m.Coord))
		buf = wire.AppendUvarint(buf, m.RingSeq)
		*m = replicaRead{}
		replicaReadPool.Put(m)
	case *replicaReadResp:
		buf = wire.AppendUvarint(buf, uint64(m.ID))
		buf = wire.AppendString(buf, m.Key)
		buf = appendWireCell(buf, m.Cell)
		buf = wire.AppendBool(buf, m.Exists)
		buf = wire.AppendBool(buf, m.Digest)
		buf = wire.AppendVarint(buf, int64(m.From))
		*m = replicaReadResp{}
		replicaReadRespPool.Put(m)
	case *replicaWrite:
		buf = wire.AppendUvarint(buf, uint64(m.ID))
		buf = wire.AppendString(buf, m.Key)
		buf = appendWireCell(buf, m.Cell)
		buf = wire.AppendVarint(buf, int64(m.Coord))
		buf = wire.AppendBool(buf, m.Repair)
		buf = wire.AppendBool(buf, m.Hint)
		buf = wire.AppendUvarint(buf, m.RingSeq)
		*m = replicaWrite{}
		replicaWritePool.Put(m)
	case *replicaWriteAck:
		buf = wire.AppendUvarint(buf, uint64(m.ID))
		buf = wire.AppendString(buf, m.Key)
		buf = appendWireVersion(buf, m.Version)
		buf = wire.AppendVarint(buf, int64(m.From))
		*m = replicaWriteAck{}
		replicaWriteAckPool.Put(m)
	case *replicaBatchRead:
		buf = wire.AppendUvarint(buf, uint64(m.ID))
		buf = appendWireInts(buf, m.Idxs)
		buf = appendWireStrings(buf, m.Keys)
		buf = wire.AppendVarint(buf, int64(m.Coord))
		buf = wire.AppendUvarint(buf, m.RingSeq)
	case *replicaBatchReadResp:
		buf = wire.AppendUvarint(buf, uint64(m.ID))
		buf = wire.AppendUvarint(buf, uint64(len(m.Items)))
		for _, it := range m.Items {
			buf = wire.AppendVarint(buf, int64(it.Idx))
			buf = appendWireCell(buf, it.Cell)
			buf = wire.AppendBool(buf, it.Exists)
		}
		buf = wire.AppendVarint(buf, int64(m.From))
	case *replicaBatchWrite:
		buf = wire.AppendUvarint(buf, uint64(m.ID))
		buf = appendWireInts(buf, m.Idxs)
		buf = appendWireStrings(buf, m.Keys)
		buf = wire.AppendUvarint(buf, uint64(len(m.Cells)))
		for _, cell := range m.Cells {
			buf = appendWireCell(buf, cell)
		}
		buf = wire.AppendVarint(buf, int64(m.Coord))
		buf = wire.AppendUvarint(buf, m.RingSeq)
	case *replicaBatchWriteAck:
		buf = wire.AppendUvarint(buf, uint64(m.ID))
		buf = appendWireInts(buf, m.Idxs)
		buf = wire.AppendVarint(buf, int64(m.From))
	case aeOffer:
		buf = appendWireStrings(buf, m.Keys)
		buf = wire.AppendUvarint(buf, uint64(len(m.Versions)))
		for _, v := range m.Versions {
			buf = appendWireVersion(buf, v)
		}
		buf = wire.AppendVarint(buf, int64(m.From))
	case aeReply:
		buf = appendWireAECells(buf, m.Updates)
		buf = appendWireStrings(buf, m.Want)
		buf = wire.AppendVarint(buf, int64(m.From))
	case aePush:
		buf = appendWireAECells(buf, m.Updates)
	case *streamRequest:
		buf = wire.AppendVarint(buf, int64(m.Joiner))
		buf = appendWireRanges(buf, m.Ranges)
		*m = streamRequest{}
		streamRequestPool.Put(m)
	case *streamChunk:
		buf = wire.AppendVarint(buf, int64(m.From))
		buf = wire.AppendBytes(buf, m.Data)
		buf = wire.AppendVarint(buf, int64(m.Count))
		*m = streamChunk{}
		streamChunkPool.Put(m)
	case *streamDone:
		buf = wire.AppendVarint(buf, int64(m.From))
		buf = wire.AppendVarint(buf, int64(m.Chunks))
		buf = wire.AppendVarint(buf, int64(m.Cells))
		buf = wire.AppendVarint(buf, int64(m.Bytes))
		buf = wire.AppendBool(buf, m.NeedAck)
		*m = streamDone{}
		streamDonePool.Put(m)
	case *streamAck:
		buf = wire.AppendVarint(buf, int64(m.From))
		*m = streamAck{}
		streamAckPool.Put(m)
	}
	return wire.EndFrame(buf, start), true
}

// wireKindOf maps an encodable payload to its wire kind (0 for messages
// with no wire form).
func wireKindOf(payload any) byte {
	switch payload.(type) {
	case *replicaRead:
		return wireReplicaRead
	case *replicaReadResp:
		return wireReplicaReadResp
	case *replicaWrite:
		return wireReplicaWrite
	case *replicaWriteAck:
		return wireReplicaWriteAck
	case *replicaBatchRead:
		return wireReplicaBatchRead
	case *replicaBatchReadResp:
		return wireReplicaBatchReadResp
	case *replicaBatchWrite:
		return wireReplicaBatchWrite
	case *replicaBatchWriteAck:
		return wireReplicaBatchWriteAck
	case aeOffer:
		return wireAeOffer
	case aeReply:
		return wireAeReply
	case aePush:
		return wireAePush
	case *streamRequest:
		return wireStreamRequest
	case *streamChunk:
		return wireStreamChunk
	case *streamDone:
		return wireStreamDone
	case *streamAck:
		return wireStreamAck
	}
	return 0
}

// UnmarshalMessage decodes one frame body produced by MarshalMessage
// into the pooled box (or value) Node.Handle dispatches on. Keys and
// values are copied out of body — the caller may reuse its read buffer
// as soon as UnmarshalMessage returns.
func UnmarshalMessage(kind byte, body []byte) (from, to netsim.NodeID, payload any, err error) {
	c := wireCursor{data: body}
	from = netsim.NodeID(c.varint())
	to = netsim.NodeID(c.varint())
	switch kind {
	case wireReplicaRead:
		payload = newReplicaRead(replicaRead{
			ID:      reqID(c.uvarint()),
			Key:     c.str(),
			Digest:  c.boolv(),
			Coord:   netsim.NodeID(c.varint()),
			RingSeq: c.uvarint(),
		})
	case wireReplicaReadResp:
		payload = newReplicaReadResp(replicaReadResp{
			ID:     reqID(c.uvarint()),
			Key:    c.str(),
			Cell:   c.cell(),
			Exists: c.boolv(),
			Digest: c.boolv(),
			From:   netsim.NodeID(c.varint()),
		})
	case wireReplicaWrite:
		payload = newReplicaWrite(replicaWrite{
			ID:      reqID(c.uvarint()),
			Key:     c.str(),
			Cell:    c.cell(),
			Coord:   netsim.NodeID(c.varint()),
			Repair:  c.boolv(),
			Hint:    c.boolv(),
			RingSeq: c.uvarint(),
		})
	case wireReplicaWriteAck:
		payload = newReplicaWriteAck(replicaWriteAck{
			ID:      reqID(c.uvarint()),
			Key:     c.str(),
			Version: c.version(),
			From:    netsim.NodeID(c.varint()),
		})
	case wireReplicaBatchRead:
		payload = &replicaBatchRead{
			ID:      reqID(c.uvarint()),
			Idxs:    c.ints(),
			Keys:    c.strings(),
			Coord:   netsim.NodeID(c.varint()),
			RingSeq: c.uvarint(),
		}
	case wireReplicaBatchReadResp:
		m := &replicaBatchReadResp{ID: reqID(c.uvarint())}
		n := int(c.uvarint())
		if n > 0 && !c.err {
			m.Items = make([]batchReadItem, 0, n)
			for i := 0; i < n && !c.err; i++ {
				m.Items = append(m.Items, batchReadItem{
					Idx:    int(c.varint()),
					Cell:   c.cell(),
					Exists: c.boolv(),
				})
			}
		}
		m.From = netsim.NodeID(c.varint())
		payload = m
	case wireReplicaBatchWrite:
		m := &replicaBatchWrite{
			ID:   reqID(c.uvarint()),
			Idxs: c.ints(),
			Keys: c.strings(),
		}
		n := int(c.uvarint())
		if n > 0 && !c.err {
			m.Cells = make([]storage.Cell, 0, n)
			for i := 0; i < n && !c.err; i++ {
				m.Cells = append(m.Cells, c.cell())
			}
		}
		m.Coord = netsim.NodeID(c.varint())
		m.RingSeq = c.uvarint()
		payload = m
	case wireReplicaBatchWriteAck:
		payload = &replicaBatchWriteAck{
			ID:   reqID(c.uvarint()),
			Idxs: c.ints(),
			From: netsim.NodeID(c.varint()),
		}
	case wireAeOffer:
		m := aeOffer{Keys: c.strings()}
		n := int(c.uvarint())
		if n > 0 && !c.err {
			m.Versions = make([]storage.Version, 0, n)
			for i := 0; i < n && !c.err; i++ {
				m.Versions = append(m.Versions, c.version())
			}
		}
		m.From = netsim.NodeID(c.varint())
		payload = m
	case wireAeReply:
		payload = aeReply{
			Updates: c.aeCells(),
			Want:    c.strings(),
			From:    netsim.NodeID(c.varint()),
		}
	case wireAePush:
		payload = aePush{Updates: c.aeCells()}
	case wireStreamRequest:
		payload = newStreamRequest(streamRequest{
			Joiner: netsim.NodeID(c.varint()),
			Ranges: c.ranges(),
		})
	case wireStreamChunk:
		payload = newStreamChunk(streamChunk{
			From:  netsim.NodeID(c.varint()),
			Data:  append([]byte(nil), c.bytes()...),
			Count: int(c.varint()),
		})
	case wireStreamDone:
		payload = newStreamDone(streamDone{
			From:    netsim.NodeID(c.varint()),
			Chunks:  int(c.varint()),
			Cells:   int(c.varint()),
			Bytes:   int(c.varint()),
			NeedAck: c.boolv(),
		})
	case wireStreamAck:
		payload = newStreamAck(streamAck{From: netsim.NodeID(c.varint())})
	default:
		return 0, 0, nil, fmt.Errorf("kv: unknown wire message kind %d", kind)
	}
	if c.err {
		return 0, 0, nil, fmt.Errorf("kv: truncated wire message kind %d", kind)
	}
	return from, to, payload, nil
}

// appendWireVersion encodes a storage version.
func appendWireVersion(buf []byte, v storage.Version) []byte {
	buf = wire.AppendVarint(buf, int64(v.Timestamp))
	return wire.AppendUvarint(buf, v.Seq)
}

// appendWireCell encodes a storage cell.
func appendWireCell(buf []byte, cell storage.Cell) []byte {
	buf = appendWireVersion(buf, cell.Version)
	buf = wire.AppendBool(buf, cell.Tombstone)
	return wire.AppendBytes(buf, cell.Value)
}

// appendWireInts encodes an int slice.
func appendWireInts(buf []byte, v []int) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = wire.AppendVarint(buf, int64(x))
	}
	return buf
}

// appendWireStrings encodes a string slice.
func appendWireStrings(buf []byte, v []string) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(v)))
	for _, s := range v {
		buf = wire.AppendString(buf, s)
	}
	return buf
}

// appendWireRanges encodes a token-range list (streamRequest).
func appendWireRanges(buf []byte, v []ring.Range) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(v)))
	for _, r := range v {
		buf = wire.AppendUvarint(buf, uint64(r.Start))
		buf = wire.AppendUvarint(buf, uint64(r.End))
	}
	return buf
}

// appendWireAECells encodes an anti-entropy cell list.
func appendWireAECells(buf []byte, v []aeCell) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(v)))
	for _, u := range v {
		buf = wire.AppendString(buf, u.Key)
		buf = appendWireCell(buf, u.Cell)
	}
	return buf
}

// wireCursor walks a frame body; the first failed read latches err and
// every later read returns zero values, so decoders check once at the
// end instead of after every field.
type wireCursor struct {
	data []byte
	err  bool
}

func (c *wireCursor) uvarint() uint64 {
	v, n := wire.Uvarint(c.data)
	if n == 0 {
		c.err = true
		return 0
	}
	c.data = c.data[n:]
	return v
}

func (c *wireCursor) varint() int64 {
	v, n := wire.Varint(c.data)
	if n == 0 {
		c.err = true
		return 0
	}
	c.data = c.data[n:]
	return v
}

func (c *wireCursor) boolv() bool {
	v, n := wire.Bool(c.data)
	if n == 0 {
		c.err = true
		return false
	}
	c.data = c.data[n:]
	return v
}

// bytes returns a view into the frame body (valid only while it is).
func (c *wireCursor) bytes() []byte {
	v, n := wire.Bytes(c.data)
	if n == 0 {
		c.err = true
		return nil
	}
	c.data = c.data[n:]
	return v
}

// str copies a length-prefixed string out of the body.
func (c *wireCursor) str() string { return string(c.bytes()) }

func (c *wireCursor) version() storage.Version {
	return storage.Version{Timestamp: time.Duration(c.varint()), Seq: c.uvarint()}
}

func (c *wireCursor) cell() storage.Cell {
	cell := storage.Cell{Version: c.version(), Tombstone: c.boolv()}
	if v := c.bytes(); len(v) > 0 {
		cell.Value = append([]byte(nil), v...)
	}
	return cell
}

func (c *wireCursor) ints() []int {
	n := int(c.uvarint())
	if n == 0 || c.err {
		return nil
	}
	v := make([]int, 0, n)
	for i := 0; i < n && !c.err; i++ {
		v = append(v, int(c.varint()))
	}
	return v
}

func (c *wireCursor) strings() []string {
	n := int(c.uvarint())
	if n == 0 || c.err {
		return nil
	}
	v := make([]string, 0, n)
	for i := 0; i < n && !c.err; i++ {
		v = append(v, c.str())
	}
	return v
}

func (c *wireCursor) ranges() []ring.Range {
	n := int(c.uvarint())
	if n == 0 || c.err {
		return nil
	}
	v := make([]ring.Range, 0, n)
	for i := 0; i < n && !c.err; i++ {
		v = append(v, ring.Range{
			Start: ring.Token(c.uvarint()),
			End:   ring.Token(c.uvarint()),
		})
	}
	return v
}

func (c *wireCursor) aeCells() []aeCell {
	n := int(c.uvarint())
	if n == 0 || c.err {
		return nil
	}
	v := make([]aeCell, 0, n)
	for i := 0; i < n && !c.err; i++ {
		v = append(v, aeCell{Key: c.str(), Cell: c.cell()})
	}
	return v
}
