package kv_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
)

// hotConfig is quietConfig with the hot-key cache armed at toy scale:
// a two-key hot set re-evaluated every four operations, so a single
// hammered key promotes within a handful of reads.
func hotConfig(seed uint64) kv.Config {
	cfg := quietConfig(seed)
	cfg.HotCache = true
	cfg.HotSetSize = 2
	cfg.HotSetEvalOps = 4
	cfg.HotPromoteShare = 0.2
	return cfg
}

// promote hammers key with ONE reads until the tracker promotes it and
// the rotating coordinators fill and serve their caches, returning how
// many of the reads were cache hits. Later evaluation windows contain
// no writes, so the key's freshness bound settles at HotCacheMaxAge.
func (h *harness) promote(t *testing.T, key string, reads int) int {
	t.Helper()
	cached := 0
	for i := 0; i < reads; i++ {
		r := h.read(key, kv.One)
		if r.Err != nil || !r.Exists {
			t.Fatalf("read %d of %s: err=%v exists=%v", i, key, r.Err, r.Exists)
		}
		if r.Cached {
			cached++
		}
	}
	return cached
}

// TestHotCacheHitAndWriteInvalidation: on a cluster where every node
// replicates every key (RF == N), hammered ONE reads promote the key
// and serve from the coordinator caches; a write at ALL invalidates the
// entry on every node, so no later read — cached or not — can ever
// return the overwritten value.
func TestHotCacheHitAndWriteInvalidation(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), hotConfig(1))
	const key = "hot-invalidate"
	if w := h.write(key, []byte("v1"), kv.All); w.Err != nil {
		t.Fatal(w.Err)
	}

	if hits := h.promote(t, key, 12); hits == 0 {
		t.Fatal("no read was served from the cache after promotion")
	}
	if got := h.cluster.HotKeys(); len(got) != 1 || got[0] != key {
		t.Fatalf("hot set = %v, want [%s]", got, key)
	}
	u := h.cluster.Usage()
	if u.HotPromotions == 0 || u.CacheFills == 0 || u.CacheHits == 0 {
		t.Fatalf("cache never engaged: %+v", u)
	}

	if w := h.write(key, []byte("v2"), kv.All); w.Err != nil {
		t.Fatal(w.Err)
	}
	for i := 0; i < 6; i++ {
		r := h.read(key, kv.One)
		if r.Err != nil || string(r.Value) != "v2" {
			t.Fatalf("read %d after overwrite: err=%v value=%q cached=%v", i, r.Err, r.Value, r.Cached)
		}
	}
	u2 := h.cluster.Usage()
	// The ALL write found an entry on every replica (each of the three
	// nodes coordinated reads of the hot key before the overwrite).
	if u2.CacheInvalidations < 3 {
		t.Errorf("invalidations = %d, want >= 3 (one per replica holding an entry)", u2.CacheInvalidations)
	}
}

// TestHotCacheFreshnessExpiry: an entry older than the key's freshness
// bound is evicted, not served — idle time beyond HotCacheMaxAge (the
// bound when the key sees no writes) forces the next read back to the
// replicas.
func TestHotCacheFreshnessExpiry(t *testing.T) {
	cfg := hotConfig(2)
	cfg.HotCacheMaxAge = 50 * time.Millisecond
	h := newHarness(netsim.SingleDC(3), cfg)
	const key = "hot-expire"
	if w := h.write(key, []byte("v1"), kv.All); w.Err != nil {
		t.Fatal(w.Err)
	}
	if hits := h.promote(t, key, 12); hits == 0 {
		t.Fatal("no cache hit before the idle gap")
	}

	h.eng.RunFor(200 * time.Millisecond) // > HotCacheMaxAge: every entry ages out

	r := h.read(key, kv.One)
	if r.Cached {
		t.Fatal("read served a cache entry older than the freshness bound")
	}
	if r.Err != nil || string(r.Value) != "v1" {
		t.Fatalf("replica read after expiry: err=%v value=%q", r.Err, r.Value)
	}
	if u := h.cluster.Usage(); u.CacheExpired == 0 {
		t.Errorf("no entry counted as expired: %+v", u)
	}
}

// TestHotCacheQuorumBypass: only single-ack reads may substitute a
// cached cell — QUORUM reads of a hot, freshly cached key must still go
// to the replicas.
func TestHotCacheQuorumBypass(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), hotConfig(3))
	const key = "hot-bypass"
	if w := h.write(key, []byte("v1"), kv.All); w.Err != nil {
		t.Fatal(w.Err)
	}
	if hits := h.promote(t, key, 12); hits == 0 {
		t.Fatal("no ONE read was served from the cache")
	}
	for i := 0; i < 6; i++ {
		if r := h.read(key, kv.Quorum); r.Cached || r.Err != nil {
			t.Fatalf("quorum read %d: cached=%v err=%v", i, r.Cached, r.Err)
		}
	}
	// The cache is still live for single-ack reads.
	if r := h.read(key, kv.One); !r.Cached {
		t.Error("ONE read after quorum traffic was not cache-served")
	}
}

// TestHotCacheRingEviction: membership movement voids fill-time
// invalidation contracts. The atomic flip of a join drops every cache
// wholesale, and under gossip a coordinator whose view moves (here:
// rewound with ResetGossipView to fake a maximally stale ring) evicts
// entries stamped with another ring rather than serving them.
func TestHotCacheRingEviction(t *testing.T) {
	cfg := hotConfig(4)
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2}
	cfg.Gossip = true
	h := newHarness(netsim.SingleDC(5), cfg)
	const key = "hot-ring"
	if w := h.write(key, []byte("v1"), kv.All); w.Err != nil {
		t.Fatal(w.Err)
	}
	if hits := h.promote(t, key, 12); hits == 0 {
		t.Fatal("no cache hit before the join")
	}
	preJoin := h.cluster.Usage()

	h.cluster.Join(3)
	h.eng.RunFor(300 * time.Millisecond) // streaming + placement flip
	h.waitConverged(t, 5*time.Second)
	postJoin := h.cluster.Usage()
	if postJoin.CacheRingEvicted <= preJoin.CacheRingEvicted {
		t.Errorf("join flip evicted nothing: %d -> %d",
			preJoin.CacheRingEvicted, postJoin.CacheRingEvicted)
	}

	// Refill on the new ring, then rewind every founder's view to the
	// pre-join prefix: their ring sequence no longer matches the stamps
	// on the refilled entries.
	if hits := h.promote(t, key, 12); hits == 0 {
		t.Fatal("no cache hit after the join converged")
	}
	for _, m := range []netsim.NodeID{0, 1, 2} {
		h.cluster.ResetGossipView(m, 0)
	}
	for i := 0; i < 8; i++ {
		r := h.read(key, kv.One)
		if r.Err != nil || string(r.Value) != "v1" {
			t.Fatalf("stale-ring read %d: err=%v value=%q", i, r.Err, r.Value)
		}
	}
	final := h.cluster.Usage()
	if final.CacheRingEvicted <= postJoin.CacheRingEvicted {
		t.Errorf("view rewind evicted nothing: %d -> %d",
			postJoin.CacheRingEvicted, final.CacheRingEvicted)
	}
}

// TestHotCacheStaleAccountingOracle: a cache hit is judged by the
// staleness oracle exactly like a replica-served read. On a cluster
// wider than RF, a write invalidates only the replicas' caches: a
// non-replica coordinator still holding an entry serves the old value
// within its freshness bound, the result carries Stale=true, and the
// CacheStaleServed meter agrees one-for-one with what clients observed.
// A monitor rides along to check the windowed feedback signals.
func TestHotCacheStaleAccountingOracle(t *testing.T) {
	cfg := hotConfig(5)
	cfg.HotSetSize = 4
	h := newHarness(netsim.SingleDC(6), cfg) // RF 3 < 6 nodes: caches outlive write invalidation
	mon := monitor.New(h.cluster.RF(), h.tr, monitor.DefaultOptions())
	h.cluster.AddHooks(mon.Hooks())

	var staleHits, freshHits uint64
	for k := 0; k < 20 && staleHits == 0; k++ {
		key := fmt.Sprintf("hot-oracle-%02d", k)
		if w := h.write(key, []byte("v1"), kv.All); w.Err != nil {
			t.Fatal(w.Err)
		}
		freshHits += uint64(h.promote(t, key, 12))
		if w := h.write(key, []byte("v2"), kv.All); w.Err != nil {
			t.Fatal(w.Err)
		}
		// Rotating coordinators: replicas answer fresh, a non-replica
		// still holding the pre-write entry answers stale from cache.
		for i := 0; i < 6; i++ {
			r := h.read(key, kv.One)
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if r.Cached && string(r.Value) == "v1" && !r.Stale {
				t.Fatalf("cache served the overwritten value without Stale: %+v", r)
			}
			if r.Cached && r.Stale {
				staleHits++
			}
			if r.Cached && !r.Stale {
				freshHits++
			}
		}
	}
	if staleHits == 0 {
		t.Fatal("no coordinator ever served a stale cache hit; the accounting path is untested")
	}
	u := h.cluster.Usage()
	if u.CacheStaleServed != staleHits {
		t.Errorf("CacheStaleServed = %d, client-observed stale cache hits = %d",
			u.CacheStaleServed, staleHits)
	}
	if u.CacheHits != staleHits+freshHits {
		t.Errorf("CacheHits = %d, client-observed cache hits = %d", u.CacheHits, staleHits+freshHits)
	}
	snap := mon.Snapshot()
	if snap.CacheHitShare <= 0 {
		t.Errorf("monitor CacheHitShare = %v, want > 0", snap.CacheHitShare)
	}
	if snap.ObservedStaleRate <= 0 {
		t.Errorf("monitor ObservedStaleRate = %v, want > 0 (stale cache serves are window feedback)", snap.ObservedStaleRate)
	}
}

// TestHotCacheOffIsInert: without Config.HotCache no tracker exists, no
// meter moves, and no read ever reports Cached — the feature is
// strictly opt-in.
func TestHotCacheOffIsInert(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(6))
	const key = "cold"
	if w := h.write(key, []byte("v1"), kv.All); w.Err != nil {
		t.Fatal(w.Err)
	}
	for i := 0; i < 12; i++ {
		if r := h.read(key, kv.One); r.Cached || r.Err != nil {
			t.Fatalf("read %d: cached=%v err=%v", i, r.Cached, r.Err)
		}
	}
	u := h.cluster.Usage()
	if u.CacheHits != 0 || u.CacheMisses != 0 || u.CacheFills != 0 || u.HotPromotions != 0 {
		t.Errorf("cache meters moved without HotCache: %+v", u)
	}
	if keys := h.cluster.HotKeys(); len(keys) != 0 {
		t.Errorf("hot set = %v without HotCache", keys)
	}
}
