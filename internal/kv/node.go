package kv

import (
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/storage"
)

// work is a unit of node CPU/disk work waiting for an execution slot.
type work struct {
	cost     time.Duration
	enqueued time.Duration
	fn       func()
}

// stage is one of the node's SEDA thread pools. Cassandra runs reads and
// mutations in separate stages; a replica whose mutation stage is backed
// up still answers reads promptly from its current (stale) state — the
// mechanism behind the high stale-read rates the paper observes under
// heavy load. shed, when positive, drops work that waited longer than the
// threshold (Cassandra's dropped-mutation load shedding). The queue is a
// head-indexed deque so dequeuing does not reslice away reusable
// capacity.
type stage struct {
	busy     int
	conc     int
	queue    []work
	head     int
	shed     time.Duration
	busyTime time.Duration
	done     uint64
	dropped  uint64
	peak     int
}

// qlen reports the number of queued (not yet running) work units.
func (st *stage) qlen() int { return len(st.queue) - st.head }

// reset drops all queued and running work (the node crashed; nothing in
// a thread pool survives a process kill). The cumulative meters
// (busyTime, done, dropped, peak) are experiment accounting and stay.
func (st *stage) reset() {
	for i := st.head; i < len(st.queue); i++ {
		st.queue[i] = work{} // release the closures
	}
	st.queue = st.queue[:0]
	st.head = 0
	st.busy = 0
}

// Node is one storage server: a message-driven actor owning a storage
// engine, a bounded-concurrency work queue (the thread-pool model that
// produces realistic saturation), coordinator state for the requests it
// coordinates, and a hint buffer for handoff. All methods run serialized —
// by the event loop in simulation, by the actor goroutine live.
type Node struct {
	id      netsim.NodeID
	cluster *Cluster
	engine  storage.Engine
	rng     *stats.Source

	// Failure-injection state machine: a node is live, failed (network
	// cut, state intact) or crashed — never both at once; Cluster.Fail/
	// Recover/Crash/Restart enforce the transitions. While crashed the
	// actor processes no messages; epoch stamps the node's self-messages
	// (work completions, admission continuations, background ticks) so
	// ones scheduled before a crash cannot resurrect pre-crash work
	// after a restart.
	failed  bool
	crashed bool
	epoch   uint32

	// Membership phase (orthogonal to the failure leg; see
	// membership.go) plus the snapshot-streaming state of an in-flight
	// Join (streamsIn/joinPending on the joiner) or Decommission
	// (decomPending on the leaver).
	phase        nodePhase
	streamsIn    map[netsim.NodeID]*streamIn
	joinPending  int
	decomPending int

	// Snapshot-streaming meters (both directions).
	streamChunksOut  uint64
	streamedOutCells uint64
	streamedOutBytes uint64
	streamChunksIn   uint64
	streamedInCells  uint64
	// streamSnapshotCells counts cells this node read out of engine
	// snapshots while serving streams — the sender-side work measure
	// range-addressed streaming shrinks to the moved fraction.
	streamSnapshotCells uint64

	// SEDA stages: reads and mutations contend for separate slots.
	readStage  stage
	writeStage stage

	// Service accounting for utilization, cost and power models.
	coordBusy   time.Duration
	repWrites   uint64
	repReads    uint64
	coordOps    uint64
	readRepairs uint64

	// Coordinator state.
	reads       map[reqID]*readCtx
	writes      map[reqID]*writeCtx
	batchReads  map[reqID]*batchReadCtx
	batchWrites map[reqID]*batchWriteCtx

	// Gossip membership agent (Config.Gossip only; nil otherwise). It
	// survives crashes — real systems persist their membership view and
	// re-seed the agent from it on restart — but its probe bookkeeping
	// is reset by restart().
	gs *gossipState

	// Coordinator-side hot-key read cache (Config.HotCache only; nil
	// otherwise). Entries are volatile: a crash drops them all.
	cache *readCache

	// Hinted handoff: writes buffered for down replicas.
	hints         map[netsim.NodeID][]hintEntry
	hintCount     int
	hintsDropped  uint64
	hintsReplayed uint64

	aeRounds uint64
	// aeSeen is the sample-dedup scratch of antiEntropyRound, reused
	// across rounds (the offered key/version slices themselves are owned
	// by the in-flight message and cannot be reused).
	aeSeen map[string]bool
}

type hintEntry struct {
	key  string
	cell storage.Cell
}

func newNode(id netsim.NodeID, c *Cluster) *Node {
	n := &Node{
		id:          id,
		cluster:     c,
		engine:      storage.New(c.cfg.Engine, c.engineOptions(id)),
		rng:         c.cfg.seedSource.StreamN("kv.node", int(id)),
		reads:       make(map[reqID]*readCtx),
		writes:      make(map[reqID]*writeCtx),
		batchReads:  make(map[reqID]*batchReadCtx),
		batchWrites: make(map[reqID]*batchWriteCtx),
		hints:       make(map[netsim.NodeID][]hintEntry),
	}
	n.readStage.conc = c.cfg.Concurrency
	n.writeStage.conc = c.cfg.Concurrency
	n.writeStage.shed = c.cfg.MutationShed
	if c.cfg.HotCache {
		n.cache = newReadCache()
	}
	return n
}

// Engine exposes the node's storage engine (tests and anti-entropy).
func (n *Node) Engine() storage.Engine { return n.engine }

// crash kills the node process: the engine drops its volatile state, and
// every piece of actor state that lives in process memory — queued and
// running stage work, coordinator contexts, buffered hints — is lost.
// Dropped contexts are not returned to their pools (in-flight events may
// still reference them; the GC reclaims them), and the timeout events
// still heading here find empty maps and no-op.
func (n *Node) crash() {
	n.crashed = true
	n.epoch++
	n.engine.Crash()
	n.readStage.reset()
	n.writeStage.reset()
	n.reads = make(map[reqID]*readCtx)
	n.writes = make(map[reqID]*writeCtx)
	n.batchReads = make(map[reqID]*batchReadCtx)
	n.batchWrites = make(map[reqID]*batchWriteCtx)
	n.hints = make(map[netsim.NodeID][]hintEntry)
	n.hintCount = 0
	if n.cache != nil {
		n.cache.dropAll() // cache entries are process memory; meters stay
	}
	// In-flight inbound streams die with the process; the senders' guard
	// timer (membership.go) keeps the membership change from wedging.
	n.streamsIn = nil
	// A crashed warming node is no longer converging; Restart re-arms
	// its own warming window. If that emptied the warming set, queued
	// membership changes may proceed.
	if n.phase == phaseWarming {
		n.phase = phaseLive
		delete(n.cluster.warming, n.id)
		n.cluster.drainMembershipQueue()
	}
}

// restart brings a crashed node back: the engine replays its durable
// state, and the background tick chains (anti-entropy, hint replay) are
// restarted under the new epoch — the pre-crash chains died with it.
func (n *Node) restart() storage.RecoverStats {
	n.crashed = false
	rs := n.engine.Recover()
	n.scheduleAE()
	n.scheduleHintTick()
	if n.gs != nil {
		// The pre-crash tick chain died with the old epoch; outstanding
		// probes are moot.
		n.gs.awaitSeq = 0
		n.cluster.net.SendLocal(n.id, gossipTick{epoch: n.epoch}, n.cluster.cfg.GossipInterval)
	}
	return rs
}

// dropWhileCrashed disposes a message delivered to a crashed node,
// returning pooled boxes so the outage does not leak them. Only local
// self-messages reach a crashed node (the transport drops network
// traffic to down nodes), but every pooled type is handled for safety.
func (n *Node) dropWhileCrashed(payload any) {
	switch m := payload.(type) {
	case *workDone:
		*m = workDone{}
		workDonePool.Put(m)
	case *coordExec:
		m.fn = nil
		coordExecPool.Put(m)
	case *coordTimeout:
		coordTimeoutPool.Put(m)
	case *clientRead:
		*m = clientRead{}
		clientReadPool.Put(m)
	case *clientWrite:
		*m = clientWrite{}
		clientWritePool.Put(m)
	case *replicaWrite:
		*m = replicaWrite{}
		replicaWritePool.Put(m)
	case *replicaWriteAck:
		*m = replicaWriteAck{}
		replicaWriteAckPool.Put(m)
	case *replicaRead:
		*m = replicaRead{}
		replicaReadPool.Put(m)
	case *replicaReadResp:
		*m = replicaReadResp{}
		replicaReadRespPool.Put(m)
	case *streamRequest:
		*m = streamRequest{}
		streamRequestPool.Put(m)
	case *streamChunk:
		*m = streamChunk{}
		streamChunkPool.Put(m)
	case *streamDone:
		*m = streamDone{}
		streamDonePool.Put(m)
	case *streamAck:
		*m = streamAck{}
		streamAckPool.Put(m)
	}
}

// submitRead enqueues read-stage work; submitWrite enqueues
// mutation-stage work.
func (n *Node) submitRead(cost time.Duration, fn func()) {
	n.submit(&n.readStage, cost, fn)
}

func (n *Node) submitWrite(cost time.Duration, fn func()) {
	n.submit(&n.writeStage, cost, fn)
}

func (n *Node) submit(st *stage, cost time.Duration, fn func()) {
	w := work{cost: cost, enqueued: n.cluster.net.Now(), fn: fn}
	if st.busy >= st.conc {
		st.queue = append(st.queue, w)
		if q := st.qlen(); q > st.peak {
			st.peak = q
		}
		return
	}
	n.run(st, w)
}

func (n *Node) run(st *stage, w work) {
	st.busy++
	st.busyTime += w.cost
	st.done++
	n.cluster.net.SendLocal(n.id, newWorkDone(st, w, n.epoch), w.cost)
}

// workDone is the self-message marking completion of a work unit. epoch
// ties it to the node incarnation that scheduled it.
type workDone struct {
	st    *stage
	w     work
	epoch uint32
}

// coordExec is the self-message completing coordinator admission work.
type coordExec struct {
	fn    func()
	epoch uint32
}

// coordWork models the request-stage overhead of coordinating an
// operation: it delays the continuation by a sampled admission cost
// without contending for read/mutation slots (Cassandra's request stage
// is rarely the bottleneck).
func (n *Node) coordWork(fn func()) {
	cost := n.cluster.cfg.CoordOverhead.Sample(n.rng)
	n.coordBusy += cost
	n.cluster.net.SendLocal(n.id, newCoordExec(fn, n.epoch), cost)
}

func (n *Node) finishWork(st *stage, w work) {
	w.fn()
	st.busy--
	// The freed slot keeps scanning past shed work: a burst of expired
	// items must not leave the slot idle until the next workDone — it
	// picks up the first non-expired item in the same event. Load
	// shedding drops work that sat in the queue beyond the shed threshold
	// instead of executing it (Cassandra's dropped mutations under
	// overload; repair and anti-entropy heal the divergence later).
	now := n.cluster.net.Now()
	for st.head < len(st.queue) && st.busy < st.conc {
		next := st.queue[st.head]
		st.queue[st.head] = work{} // release the closure
		st.head++
		if st.shed > 0 && now-next.enqueued > st.shed {
			st.dropped++
			continue
		}
		n.run(st, next)
	}
	// Reclaim the consumed prefix: reset when drained, compact when the
	// dead head outgrows the live tail.
	if st.head == len(st.queue) {
		st.queue = st.queue[:0]
		st.head = 0
	} else if st.head > 64 && st.head > len(st.queue)/2 {
		live := copy(st.queue, st.queue[st.head:])
		st.queue = st.queue[:live]
		st.head = 0
	}
}

// Utilization reports the fraction of elapsed time the node's stage slots
// were busy, given the elapsed duration of the measurement.
func (n *Node) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	busy := n.readStage.busyTime + n.writeStage.busyTime
	return float64(busy) / (float64(elapsed) * float64(n.readStage.conc+n.writeStage.conc))
}

// BusyTime reports the cumulative service time executed by the node.
func (n *Node) BusyTime() time.Duration {
	return n.readStage.busyTime + n.writeStage.busyTime + n.coordBusy
}

// DroppedMutations reports mutations shed under overload.
func (n *Node) DroppedMutations() uint64 { return n.writeStage.dropped }

// CoordOps reports how many client operations this node coordinated.
func (n *Node) CoordOps() uint64 { return n.coordOps }

// Handle dispatches one message; it is the single entry point of the
// actor. Pooled message boxes are copied out and returned to their pool
// before dispatch, so a box never outlives one delivery.
func (n *Node) Handle(from netsim.NodeID, payload any) {
	if n.crashed {
		// A dead process handles nothing. Only local self-messages get
		// here (the transport drops network traffic to down nodes);
		// their pooled boxes still need returning.
		n.dropWhileCrashed(payload)
		return
	}
	switch m := payload.(type) {
	case *workDone:
		st, w, ep := m.st, m.w, m.epoch
		*m = workDone{}
		workDonePool.Put(m)
		if ep == n.epoch {
			n.finishWork(st, w)
		}
	case *coordExec:
		fn, ep := m.fn, m.epoch
		m.fn = nil
		coordExecPool.Put(m)
		if ep == n.epoch {
			fn()
		}

	case *clientRead:
		v := *m
		*m = clientRead{}
		clientReadPool.Put(m)
		n.coordRead(v)
	case *clientWrite:
		v := *m
		*m = clientWrite{}
		clientWritePool.Put(m)
		n.coordWrite(v)
	case clientBatchRead:
		n.coordBatchRead(m)
	case clientBatchWrite:
		n.coordBatchWrite(m)
	case *coordTimeout:
		v := *m
		coordTimeoutPool.Put(m)
		n.onTimeout(v)

	case *replicaWrite:
		v := *m
		*m = replicaWrite{}
		replicaWritePool.Put(m)
		n.onReplicaWrite(v)
	case *replicaWriteAck:
		v := *m
		*m = replicaWriteAck{}
		replicaWriteAckPool.Put(m)
		n.onWriteAck(v)
	case *replicaRead:
		v := *m
		*m = replicaRead{}
		replicaReadPool.Put(m)
		n.onReplicaRead(v)
	case *replicaReadResp:
		v := *m
		*m = replicaReadResp{}
		replicaReadRespPool.Put(m)
		n.onReadResp(v)
	case *replicaBatchWrite:
		n.onReplicaBatchWrite(*m)
	case *replicaBatchWriteAck:
		n.onBatchWriteAck(*m)
	case *replicaBatchRead:
		n.onReplicaBatchRead(*m)
	case *replicaBatchReadResp:
		n.onBatchReadResp(*m)

	case aeTick:
		if m.epoch != n.epoch {
			return // pre-crash tick chain; restart started a fresh one
		}
		if n.phase == phaseDecommissioned {
			return // off the ring: the chain ends; the actor only drains
		}
		n.antiEntropyRound()
		n.scheduleAE()
	case aeOffer:
		n.onAEOffer(m)
	case aeReply:
		n.onAEReply(m)
	case aePush:
		n.onAEPush(m)

	case hintTick:
		if m.epoch != n.epoch {
			return
		}
		if n.phase == phaseDecommissioned {
			return // same chain-termination as aeTick
		}
		n.replayHints()
		n.scheduleHintTick()

	case gossipTick:
		if m.epoch != n.epoch {
			return // pre-crash chain; restart started a fresh one
		}
		n.onGossipTick()
	case gossipPing:
		n.onGossipPing(m)
	case gossipAck:
		n.onGossipAck(m)
	case gossipEvents:
		n.onGossipEventsMsg(m)
	case gossipProbeTimeout:
		if m.epoch == n.epoch {
			n.onGossipProbeTimeout(m)
		}
	case gossipSuspicionTimeout:
		if m.epoch == n.epoch {
			n.onGossipSuspicionTimeout(m)
		}
	case gossipRetry:
		if m.epoch == n.epoch {
			n.onGossipRetry(m)
		}
	case notOwner:
		n.onNotOwner(m)

	case *streamRequest:
		v := *m
		*m = streamRequest{}
		streamRequestPool.Put(m)
		n.onStreamRequest(v)
	case *streamChunk:
		v := *m
		*m = streamChunk{}
		streamChunkPool.Put(m)
		n.onStreamChunk(v)
	case *streamDone:
		v := *m
		*m = streamDone{}
		streamDonePool.Put(m)
		n.onStreamDone(v)
	case *streamAck:
		v := *m
		*m = streamAck{}
		streamAckPool.Put(m)
		n.onStreamAck(v)
	}
}

// onReplicaWrite applies a cell after write service time and acks the
// coordinator unless the write is a repair. Under gossip, a coordinated
// write for a range this replica no longer owns (its ring strictly
// newer than the coordinator's) is refused; repair and hint traffic is
// convergence machinery and applies wherever it lands.
func (n *Node) onReplicaWrite(m replicaWrite) {
	if !m.Repair && !m.Hint && n.refusesKey(m.Key, m.RingSeq) {
		n.refuseWrite(m)
		return
	}
	cost := n.cluster.cfg.WriteService.Sample(n.rng)
	n.submitWrite(cost, func() {
		n.repWrites++
		if n.engine.Apply(m.Key, m.Cell) {
			n.cluster.oracle.Applied(n.id, m.Cell.Version, n.cluster.net.Now())
		}
		n.cacheInvalidate(m.Key)
		if m.Repair {
			n.readRepairs++
			return
		}
		ack := newReplicaWriteAck(replicaWriteAck{ID: m.ID, Key: m.Key, Version: m.Cell.Version, From: n.id})
		n.cluster.net.Send(n.id, m.Coord, ack, msgOverhead)
	})
}

// onReplicaRead serves a read after read service time, unless this
// replica's strictly newer ring says the key is no longer ours (the
// ownership check is cheap and happens before any stage work).
func (n *Node) onReplicaRead(m replicaRead) {
	if n.refusesKey(m.Key, m.RingSeq) {
		n.refuseRead(m)
		return
	}
	cost := n.cluster.cfg.ReadService.Sample(n.rng)
	n.submitRead(cost, func() {
		n.repReads++
		cell, ok := n.engine.Get(m.Key)
		resp := newReplicaReadResp(replicaReadResp{
			ID: m.ID, Key: m.Key, Cell: cell, Exists: ok,
			Digest: m.Digest, From: n.id,
		})
		size := msgOverhead + digestSize
		if !m.Digest {
			size = msgOverhead + len(cell.Value)
			// Full data responses carry the value; digests only the
			// version. The coordinator re-fetches data when the digest
			// turns out newer.
		} else {
			resp.Cell.Value = nil
		}
		n.cluster.net.Send(n.id, m.Coord, resp, size)
	})
}

// storeHint buffers a write for a down replica, to be replayed when it
// recovers.
func (n *Node) storeHint(target netsim.NodeID, key string, cell storage.Cell) {
	if n.hintCount >= n.cluster.cfg.MaxHintsPerNode {
		n.hintsDropped++
		return
	}
	n.hints[target] = append(n.hints[target], hintEntry{key: key, cell: cell})
	n.hintCount++
}

// replayHints pushes buffered hints to recovered targets. Targets are
// visited in sorted order so replay is deterministic (map iteration order
// is not).
func (n *Node) replayHints() {
	targets := make([]netsim.NodeID, 0, len(n.hints))
	for t := range n.hints {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, target := range targets {
		entries := n.hints[target]
		if !n.cluster.IsMember(target) {
			// The target left the ring (decommissioned); its hints will
			// never be wanted again.
			n.hintsDropped += uint64(len(entries))
			n.hintCount -= len(entries)
			delete(n.hints, target)
			continue
		}
		if n.cluster.isDown(target) {
			continue
		}
		for _, h := range entries {
			msg := newReplicaWrite(replicaWrite{Key: h.key, Cell: h.cell, Coord: n.id, Repair: false, Hint: true})
			n.cluster.net.Send(n.id, target, msg, msgOverhead+len(h.key)+len(h.cell.Value))
			n.hintsReplayed++
		}
		n.hintCount -= len(entries)
		delete(n.hints, target)
	}
}

func (n *Node) scheduleHintTick() {
	if n.cluster.cfg.HintReplayInterval > 0 {
		n.cluster.net.SendLocal(n.id, hintTick{epoch: n.epoch}, n.cluster.cfg.HintReplayInterval)
	}
}

func (n *Node) scheduleAE() {
	if n.cluster.cfg.AntiEntropyInterval > 0 {
		// Jitter the period ±25% so rounds don't synchronize.
		base := n.cluster.cfg.AntiEntropyInterval
		jitter := time.Duration((n.rng.Float64() - 0.5) * 0.5 * float64(base))
		n.cluster.net.SendLocal(n.id, aeTick{epoch: n.epoch}, base+jitter)
	}
}
