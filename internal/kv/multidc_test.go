package kv_test

import (
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/netsim"
)

// multiDCConfig builds a two-DC cluster with explicit per-DC replica
// placement (NetworkTopologyStrategy) and LOCAL_QUORUM-friendly routing.
func multiDCHarness(seed uint64, localDC string) *harness {
	topo := netsim.G5KTwoSites(8)
	cfg := quietConfig(seed)
	cfg.RF = 0
	cfg.PerDC = map[string]int{topo.DCOf(0): 2, topo.DCOf(netsim.NodeID(topo.N() - 1)): 2}
	cfg.Coordinator = kv.CoordLocalDC
	cfg.CoordDC = localDC
	return newHarness(topo, cfg)
}

func TestNetworkTopologyPlacementInCluster(t *testing.T) {
	h := multiDCHarness(30, "")
	if h.cluster.RF() != 4 {
		t.Fatalf("RF = %d", h.cluster.RF())
	}
	for _, key := range []string{"a", "b", "c", "d"} {
		perDC := map[string]int{}
		for _, id := range h.cluster.Strategy().Replicas(key) {
			perDC[h.topo.DCOf(id)]++
		}
		for dc, n := range perDC {
			if n != 2 {
				t.Errorf("key %s: %d replicas in %s, want 2", key, n, dc)
			}
		}
	}
}

func TestLocalQuorumStaysLocal(t *testing.T) {
	topo := netsim.G5KTwoSites(8)
	local := topo.DCOf(0)
	h := multiDCHarness(31, local)

	w := h.write("k", []byte("v"), kv.LocalQuorum)
	if w.Err != nil {
		t.Fatalf("LOCAL_QUORUM write: %v", w.Err)
	}
	r := h.read("k", kv.LocalQuorum)
	if r.Err != nil || !r.Exists {
		t.Fatalf("LOCAL_QUORUM read: %+v", r)
	}
	// Local quorum never waits on the remote site: latency stays well
	// under the ~20 ms inter-site round trip.
	if r.Latency > 15*time.Millisecond {
		t.Errorf("LOCAL_QUORUM read crossed sites: %v", r.Latency)
	}
	if w.Latency > 15*time.Millisecond {
		t.Errorf("LOCAL_QUORUM write crossed sites: %v", w.Latency)
	}
}

func TestLocalQuorumReadYourWritesWithinDC(t *testing.T) {
	topo := netsim.G5KTwoSites(8)
	local := topo.DCOf(0)
	h := multiDCHarness(32, local)
	for i := 0; i < 30; i++ {
		w := h.write("k", []byte{byte(i)}, kv.LocalQuorum)
		r := h.read("k", kv.LocalQuorum)
		if r.Stale {
			t.Fatalf("iteration %d: LOCAL_QUORUM read-your-writes violated (v=%v, got %v)",
				i, w.Version, r.Version)
		}
	}
}

func TestEachQuorumRequiresEveryDC(t *testing.T) {
	h := multiDCHarness(33, "")
	w := h.write("k", []byte("v"), kv.EachQuorum)
	if w.Err != nil {
		t.Fatalf("EACH_QUORUM write: %v", w.Err)
	}
	// EACH_QUORUM waits for the remote site: latency at least one
	// inter-site trip.
	if w.Latency < 5*time.Millisecond {
		t.Errorf("EACH_QUORUM too fast to have crossed sites: %v", w.Latency)
	}

	// Kill one DC entirely: EACH_QUORUM becomes unavailable, LOCAL_QUORUM
	// (from the surviving DC) keeps working.
	remote := h.topo.DCOf(netsim.NodeID(h.topo.N() - 1))
	for _, id := range h.topo.NodesInDC(remote) {
		h.cluster.Fail(id)
	}
	h.eng.RunFor(3 * time.Second)

	w = h.write("k", []byte("v2"), kv.EachQuorum)
	if w.Err == nil {
		t.Error("EACH_QUORUM succeeded with a dead DC")
	}
	w = h.write("k", []byte("v3"), kv.LocalQuorum)
	if w.Err != nil {
		t.Errorf("LOCAL_QUORUM should survive a remote-DC outage: %v", w.Err)
	}
}
