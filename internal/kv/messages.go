package kv

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/storage"
)

// reqID identifies one client operation across the cluster.
type reqID uint64

// msgOverhead approximates the wire framing of every message in bytes.
const msgOverhead = 64

// digestSize approximates a read digest (version + checksum) in bytes.
const digestSize = 16

// clientRead enters the cluster from a client and is handled by the
// coordinator node it is addressed to.
type clientRead struct {
	ID    reqID
	Key   string
	Level Level
	cb    func(ReadResult)
}

// clientWrite is the write counterpart of clientRead; with tombstone set
// it deletes the key instead of storing a value.
type clientWrite struct {
	ID        reqID
	Key       string
	Value     []byte
	Level     Level
	tombstone bool
	cb        func(WriteResult)
}

// clientReadReply carries the result back to the client endpoint.
type clientReadReply struct {
	cb  func(ReadResult)
	res ReadResult
}

// clientWriteReply carries the result back to the client endpoint.
type clientWriteReply struct {
	cb  func(WriteResult)
	res WriteResult
}

// BatchOp is one item of a multi-key batch mutation. Delete issues a
// tombstone for Key instead of storing Value.
type BatchOp struct {
	Key    string
	Value  []byte
	Delete bool
}

// clientBatchRead admits a multi-key read on one coordinator: one
// admission for the whole batch, results delivered together in key
// order.
type clientBatchRead struct {
	ID    reqID
	Keys  []string
	Level Level
	cb    func([]ReadResult)
}

// clientBatchWrite is the write counterpart of clientBatchRead.
type clientBatchWrite struct {
	ID    reqID
	Ops   []BatchOp
	Level Level
	cb    func([]WriteResult)
}

// clientBatchReadReply carries a whole batch's results back to the
// client endpoint in one message.
type clientBatchReadReply struct {
	cb  func([]ReadResult)
	res []ReadResult
}

// clientBatchWriteReply is the write counterpart.
type clientBatchWriteReply struct {
	cb  func([]WriteResult)
	res []WriteResult
}

// replicaBatchRead asks one replica for every batch item it serves — at
// most one request message per replica per batch. Batched reads always
// carry full data (no digests): the batch already amortizes transfer,
// and per-item digest refetches would reintroduce per-key messages.
type replicaBatchRead struct {
	ID    reqID
	Idxs  []int // batch positions, parallel to Keys
	Keys  []string
	Coord netsim.NodeID
}

// batchReadItem is one replica's answer for one batch position.
type batchReadItem struct {
	Idx    int
	Cell   storage.Cell
	Exists bool
}

// replicaBatchReadResp answers a replicaBatchRead in one message.
type replicaBatchReadResp struct {
	ID    reqID
	Items []batchReadItem
	From  netsim.NodeID
}

// replicaBatchWrite carries every batch mutation a replica owns in one
// message.
type replicaBatchWrite struct {
	ID    reqID
	Idxs  []int // batch positions, parallel to Keys/Cells
	Keys  []string
	Cells []storage.Cell
	Coord netsim.NodeID
}

// replicaBatchWriteAck acknowledges all items of a replicaBatchWrite.
type replicaBatchWriteAck struct {
	ID   reqID
	Idxs []int
	From netsim.NodeID
}

// replicaWrite asks a replica to apply a cell. Repair and hint replays
// reuse it with Repair/Hint set, which keeps replica application uniform.
type replicaWrite struct {
	ID     reqID
	Key    string
	Cell   storage.Cell
	Coord  netsim.NodeID
	Repair bool // read-repair or anti-entropy write: no ack expected
	Hint   bool // replayed hint: ack expected by nobody, but applied
}

// replicaWriteAck acknowledges a replicaWrite to its coordinator.
type replicaWriteAck struct {
	ID      reqID
	Key     string
	Version storage.Version
	From    netsim.NodeID
}

// replicaRead asks a replica for its resident cell; when Digest is set
// only the version travels back.
type replicaRead struct {
	ID     reqID
	Key    string
	Digest bool
	Coord  netsim.NodeID
}

// replicaReadResp answers a replicaRead.
type replicaReadResp struct {
	ID     reqID
	Key    string
	Cell   storage.Cell
	Exists bool
	Digest bool
	From   netsim.NodeID
}

// coordTimeout fires on the coordinator when a request exceeded the
// cluster timeout.
type coordTimeout struct {
	ID    reqID
	Write bool
}

// aeTick triggers one anti-entropy round on a node. epoch ties the tick
// chain to a node incarnation: ticks scheduled before a crash do not
// duplicate the chain the restart starts.
type aeTick struct{ epoch uint32 }

// hintTick triggers hint replay attempts on a node (same epoch contract
// as aeTick).
type hintTick struct{ epoch uint32 }

// aeOffer opens an anti-entropy exchange: the initiator offers the
// versions of a sample of its keys.
type aeOffer struct {
	Keys     []string
	Versions []storage.Version
	From     netsim.NodeID
}

// aeReply answers an offer with cells newer on the responder and the list
// of keys where the initiator was newer.
type aeReply struct {
	Updates []aeCell
	Want    []string
	From    netsim.NodeID
}

// aePush closes the exchange: the initiator pushes the requested cells.
type aePush struct {
	Updates []aeCell
}

// aeCell pairs a key with its cell for anti-entropy transfer.
type aeCell struct {
	Key  string
	Cell storage.Cell
}

// streamRequest asks a current member to snapshot-stream the ranges the
// joiner will own under the pending post-join placement.
type streamRequest struct {
	Joiner netsim.NodeID
}

// streamChunk carries framed cells (storage.EncodeCell records) of a
// snapshot stream; Count is the number of cells in Data.
type streamChunk struct {
	From  netsim.NodeID
	Data  []byte
	Count int
}

// streamDone closes one snapshot stream, announcing its totals so the
// receiver can detect chunks still in flight. NeedAck marks decommission
// handoffs: the receiver acknowledges completion with a streamAck.
type streamDone struct {
	From    netsim.NodeID
	Chunks  int
	Cells   int
	Bytes   int
	NeedAck bool
}

// streamAck confirms a decommission handoff stream fully applied on the
// new owner.
type streamAck struct {
	From netsim.NodeID
}

// ReadResult reports the outcome of a read operation.
type ReadResult struct {
	Err     error
	Key     string
	Value   []byte
	Version storage.Version
	Exists  bool
	// Stale is the staleness oracle's ground-truth verdict: the value
	// returned was older than the latest write issued before the read
	// started. It is measurement infrastructure, not something a real
	// client could observe.
	Stale    bool
	Level    Level
	Latency  time.Duration
	Replicas int // replicas contacted
}

// WriteResult reports the outcome of a write operation.
type WriteResult struct {
	Err     error
	Key     string
	Version storage.Version
	Level   Level
	Latency time.Duration
	Acked   int // replica acks received by completion time
}

// Error values the store reports. They mirror Cassandra's exceptions.
type storeError string

func (e storeError) Error() string { return string(e) }

// Store-level failures.
const (
	// ErrTimeout: the coordinator did not assemble the required
	// acknowledgements within the request timeout.
	ErrTimeout = storeError("kv: operation timed out")
	// ErrUnavailable: fewer live replicas than the level requires.
	ErrUnavailable = storeError("kv: not enough live replicas for level")
	// ErrDeadline: the client-side per-operation deadline expired before
	// the result arrived.
	ErrDeadline = storeError("kv: operation deadline exceeded")
	// ErrCanceled: the operation's context was canceled before issue.
	ErrCanceled = storeError("kv: operation canceled")
)
