package kv

import (
	"time"

	"repro/internal/gossip"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/storage"
)

// reqID identifies one client operation across the cluster.
type reqID uint64

// msgOverhead approximates the wire framing of every message in bytes.
const msgOverhead = 64

// digestSize approximates a read digest (version + checksum) in bytes.
const digestSize = 16

// readRoute says how a read result finds its way back to the issuing
// client: a direct callback, or — when cb is nil — a slot in the
// cluster's pooled op slab (the zero-allocation path; opGen catches
// replies that outlive a timed-out, recycled slot).
type readRoute struct {
	cb    func(ReadResult)
	op    uint32
	opGen uint32
}

// writeRoute is the write counterpart of readRoute.
type writeRoute struct {
	cb    func(WriteResult)
	op    uint32
	opGen uint32
}

// clientRead enters the cluster from a client and is handled by the
// coordinator node it is addressed to.
type clientRead struct {
	ID    reqID
	Key   string
	Level Level
	rt    readRoute
}

// clientWrite is the write counterpart of clientRead; with tombstone set
// it deletes the key instead of storing a value.
type clientWrite struct {
	ID        reqID
	Key       string
	Value     []byte
	Level     Level
	tombstone bool
	rt        writeRoute
}

// clientReadReply carries the result back to the client endpoint.
type clientReadReply struct {
	rt  readRoute
	res ReadResult
}

// clientWriteReply carries the result back to the client endpoint.
type clientWriteReply struct {
	rt  writeRoute
	res WriteResult
}

// BatchOp is one item of a multi-key batch mutation. Delete issues a
// tombstone for Key instead of storing Value.
type BatchOp struct {
	Key    string
	Value  []byte
	Delete bool
}

// clientBatchRead admits a multi-key read on one coordinator: one
// admission for the whole batch, results delivered together in key
// order.
type clientBatchRead struct {
	ID    reqID
	Keys  []string
	Level Level
	cb    func([]ReadResult)
}

// clientBatchWrite is the write counterpart of clientBatchRead.
type clientBatchWrite struct {
	ID    reqID
	Ops   []BatchOp
	Level Level
	cb    func([]WriteResult)
}

// clientBatchReadReply carries a whole batch's results back to the
// client endpoint in one message.
type clientBatchReadReply struct {
	cb  func([]ReadResult)
	res []ReadResult
}

// clientBatchWriteReply is the write counterpart.
type clientBatchWriteReply struct {
	cb  func([]WriteResult)
	res []WriteResult
}

// replicaBatchRead asks one replica for every batch item it serves — at
// most one request message per replica per batch. Batched reads always
// carry full data (no digests): the batch already amortizes transfer,
// and per-item digest refetches would reintroduce per-key messages.
type replicaBatchRead struct {
	ID    reqID
	Idxs  []int // batch positions, parallel to Keys
	Keys  []string
	Coord netsim.NodeID
	// RingSeq is the coordinator's ring knowledge (gossip mode only);
	// a replica with a strictly newer ring refuses items it no longer
	// owns (notOwner) instead of serving them.
	RingSeq uint64
}

// batchReadItem is one replica's answer for one batch position.
type batchReadItem struct {
	Idx    int
	Cell   storage.Cell
	Exists bool
}

// replicaBatchReadResp answers a replicaBatchRead in one message.
type replicaBatchReadResp struct {
	ID    reqID
	Items []batchReadItem
	From  netsim.NodeID
}

// replicaBatchWrite carries every batch mutation a replica owns in one
// message.
type replicaBatchWrite struct {
	ID      reqID
	Idxs    []int // batch positions, parallel to Keys/Cells
	Keys    []string
	Cells   []storage.Cell
	Coord   netsim.NodeID
	RingSeq uint64 // see replicaBatchRead.RingSeq
}

// replicaBatchWriteAck acknowledges all items of a replicaBatchWrite.
type replicaBatchWriteAck struct {
	ID   reqID
	Idxs []int
	From netsim.NodeID
}

// replicaWrite asks a replica to apply a cell. Repair and hint replays
// reuse it with Repair/Hint set, which keeps replica application uniform.
type replicaWrite struct {
	ID      reqID
	Key     string
	Cell    storage.Cell
	Coord   netsim.NodeID
	Repair  bool   // read-repair or anti-entropy write: no ack expected
	Hint    bool   // replayed hint: ack expected by nobody, but applied
	RingSeq uint64 // see replicaBatchRead.RingSeq (coordinated writes only)
}

// replicaWriteAck acknowledges a replicaWrite to its coordinator.
type replicaWriteAck struct {
	ID      reqID
	Key     string
	Version storage.Version
	From    netsim.NodeID
}

// replicaRead asks a replica for its resident cell; when Digest is set
// only the version travels back.
type replicaRead struct {
	ID      reqID
	Key     string
	Digest  bool
	Coord   netsim.NodeID
	RingSeq uint64 // see replicaBatchRead.RingSeq
}

// replicaReadResp answers a replicaRead.
type replicaReadResp struct {
	ID     reqID
	Key    string
	Cell   storage.Cell
	Exists bool
	Digest bool
	From   netsim.NodeID
}

// coordTimeout fires on the coordinator when a request exceeded the
// cluster timeout.
type coordTimeout struct {
	ID    reqID
	Write bool
}

// aeTick triggers one anti-entropy round on a node. epoch ties the tick
// chain to a node incarnation: ticks scheduled before a crash do not
// duplicate the chain the restart starts.
type aeTick struct{ epoch uint32 }

// hintTick triggers hint replay attempts on a node (same epoch contract
// as aeTick).
type hintTick struct{ epoch uint32 }

// aeOffer opens an anti-entropy exchange: the initiator offers the
// versions of a sample of its keys.
type aeOffer struct {
	Keys     []string
	Versions []storage.Version
	From     netsim.NodeID
}

// aeReply answers an offer with cells newer on the responder and the list
// of keys where the initiator was newer.
type aeReply struct {
	Updates []aeCell
	Want    []string
	From    netsim.NodeID
}

// aePush closes the exchange: the initiator pushes the requested cells.
type aePush struct {
	Updates []aeCell
}

// aeCell pairs a key with its cell for anti-entropy transfer.
type aeCell struct {
	Key  string
	Cell storage.Cell
}

// streamRequest asks a current member to snapshot-stream the ranges the
// joiner will own under the pending post-join placement. Ranges are the
// ring.Diff movements the joiner enters, in ring's sorted order; every
// peer receives the same list and serves the subset it sources (the
// per-range single-source rule), so the sender walks only the moved
// arcs instead of filtering a full store snapshot per key.
type streamRequest struct {
	Joiner netsim.NodeID
	Ranges []ring.Range
}

// streamChunk carries framed cells (storage.EncodeCell records) of a
// snapshot stream; Count is the number of cells in Data.
type streamChunk struct {
	From  netsim.NodeID
	Data  []byte
	Count int
}

// streamDone closes one snapshot stream, announcing its totals so the
// receiver can detect chunks still in flight. NeedAck marks decommission
// handoffs: the receiver acknowledges completion with a streamAck.
type streamDone struct {
	From    netsim.NodeID
	Chunks  int
	Cells   int
	Bytes   int
	NeedAck bool
}

// streamAck confirms a decommission handoff stream fully applied on the
// new owner.
type streamAck struct {
	From netsim.NodeID
}

// Gossip protocol messages (Config.Gossip only). All are value types —
// each carries freshly built slices owned by the in-flight message, so
// none need pooling or dropWhileCrashed handling.

// gossipTick triggers one gossip round on a node: probe the next peer
// with piggybacked rumors. epoch has the same crash-invalidaton
// contract as aeTick.
type gossipTick struct{ epoch uint32 }

// gossipPing probes one peer, carrying the sender's ring knowledge and
// a bounded batch of liveness rumors. TargetStatus/TargetInc state the
// prober's current claim about the pingee: a pingee held suspect or
// dead refutes on receipt (incarnation bump), which is what heals a
// view after a partition even when the original rumor's piggyback
// budget is long spent.
type gossipPing struct {
	From    netsim.NodeID
	FromInc uint64 // sender's self-incarnation: the ping proves it alive
	Seq     uint64 // probe sequence on the sender; the ack echoes it
	RingSeq uint64
	// The prober's claim about the pingee (the refutation handshake).
	TargetStatus gossip.Status
	TargetInc    uint64
	Updates      []gossip.Update
}

// gossipAck answers a ping. Events bridges the sender forward when the
// responder's ring is newer; when the responder is the stale side, its
// RingSeq tells the ping sender to bridge it with a gossipEvents.
// TargetStatus/TargetInc mirror the ping's refutation handshake in the
// other direction (the responder's claim about the prober).
type gossipAck struct {
	From         netsim.NodeID
	FromInc      uint64
	Seq          uint64
	RingSeq      uint64
	TargetStatus gossip.Status
	TargetInc    uint64
	Updates      []gossip.Update
	Events       []gossip.RingEvent
}

// gossipEvents ships a missing ring-event suffix to a stale peer.
type gossipEvents struct {
	From   netsim.NodeID
	Events []gossip.RingEvent
}

// gossipProbeTimeout fires when a ping went unanswered for half the
// gossip interval: the prober suspects the target.
type gossipProbeTimeout struct {
	Seq    uint64
	Target netsim.NodeID
	epoch  uint32
}

// gossipSuspicionTimeout fires when a suspicion aged out unrefuted: the
// suspector declares the target dead (View.Confirm checks that the
// exact suspicion, by incarnation, still stands).
type gossipSuspicionTimeout struct {
	Target netsim.NodeID
	Inc    uint64
	epoch  uint32
}

// notOwner is a replica's refusal of a coordinated request for a range
// it no longer owns under its strictly newer ring. Events carries the
// ring-event suffix the coordinator is missing, so every refusal
// advances the coordinator's ring — the retry loop terminates even
// without the retry budget.
type notOwner struct {
	ID    reqID
	From  netsim.NodeID
	Write bool
	// Batch marks batched requests; Idxs/Keys list the refused items
	// (single-key refusals leave them nil and use Key).
	Batch  bool
	Idxs   []int
	Keys   []string
	Key    string
	Events []gossip.RingEvent
}

// ReadResult reports the outcome of a read operation.
type ReadResult struct {
	Err     error
	Key     string
	Value   []byte
	Version storage.Version
	Exists  bool
	// Stale is the staleness oracle's ground-truth verdict: the value
	// returned was older than the latest write issued before the read
	// started. It is measurement infrastructure, not something a real
	// client could observe.
	Stale    bool
	Level    Level
	Latency  time.Duration
	Replicas int // replicas contacted
	// Cached marks a read served from the coordinator's hot-key cache
	// (Config.HotCache): no replica was contacted. The monitor uses it
	// to report the effective post-cache load to the autoscaler.
	Cached bool
}

// WriteResult reports the outcome of a write operation.
type WriteResult struct {
	Err     error
	Key     string
	Version storage.Version
	Level   Level
	Latency time.Duration
	Acked   int // replica acks received by completion time
}

// Error values the store reports. They mirror Cassandra's exceptions.
type storeError string

func (e storeError) Error() string { return string(e) }

// Store-level failures.
const (
	// ErrTimeout: the coordinator did not assemble the required
	// acknowledgements within the request timeout.
	ErrTimeout = storeError("kv: operation timed out")
	// ErrUnavailable: fewer live replicas than the level requires.
	ErrUnavailable = storeError("kv: not enough live replicas for level")
	// ErrDeadline: the client-side per-operation deadline expired before
	// the result arrived.
	ErrDeadline = storeError("kv: operation deadline exceeded")
	// ErrCanceled: the operation's context was canceled before issue.
	ErrCanceled = storeError("kv: operation canceled")
)
