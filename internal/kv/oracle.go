package kv

import (
	"math/bits"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Oracle is the staleness ground truth: it ledgers every write the moment
// a coordinator accepts it and every replica application, so experiments
// can judge whether a read returned the latest data (Figure 1 semantics: a
// read started at X_r is stale when it returns a version older than the
// newest write with X_w ≤ X_r). It also measures true propagation times,
// which the model-validation experiment compares against Harmony's
// monitor-based estimates.
//
// The oracle is measurement infrastructure with global knowledge; nothing
// in the adaptive tuners reads it.
type Oracle struct {
	// latest carries both per-key high watermarks in one entry so the
	// read-start snapshot (every single read) costs one map lookup.
	latest  map[string]latestVersions
	pending map[storage.Version]pendingWrite

	propagation stats.Histogram   // full-propagation times T_p
	rankDelays  []stats.Histogram // delay until the i-th replica applied

	writes       uint64
	staleReads   uint64
	freshReads   uint64
	overlapReads uint64
	failedReads  uint64
}

// pendingWrite is a value-typed ledger entry; the applied replica set is
// a bitset over node ids, so for clusters up to 256 nodes (every preset,
// and then some) ledgering a write performs a single map insert and no
// allocation. Larger ids spill into a lazily allocated overflow set so
// correctness never depends on cluster size.
type pendingWrite struct {
	start    time.Duration
	replicas int
	applied  [4]uint64              // bitset of nodes that applied, ids 0..255
	overflow map[netsim.NodeID]bool // nodes outside the bitset range
}

func (p *pendingWrite) markApplied(node netsim.NodeID) bool {
	if node >= 0 && int(node) < 256 {
		w, b := node/64, uint64(1)<<(uint(node)%64)
		if p.applied[w]&b != 0 {
			return false
		}
		p.applied[w] |= b
		return true
	}
	if p.overflow[node] {
		return false
	}
	if p.overflow == nil {
		p.overflow = make(map[netsim.NodeID]bool, 1)
	}
	p.overflow[node] = true
	return true
}

func (p *pendingWrite) appliedCount() int {
	n := len(p.overflow)
	for _, w := range p.applied {
		n += bits.OnesCount64(w)
	}
	return n
}

// NewOracle returns an oracle for a store with replication factor rf.
func NewOracle(rf int) *Oracle {
	return &Oracle{
		latest:     make(map[string]latestVersions),
		pending:    make(map[storage.Version]pendingWrite),
		rankDelays: make([]stats.Histogram, rf),
	}
}

// latestVersions is one key's pair of high watermarks.
type latestVersions struct {
	issued  storage.Version // newest write accepted by a coordinator
	visible storage.Version // newest write acknowledged to a client
}

// WriteStarted ledgers a write accepted by a coordinator at time now.
func (o *Oracle) WriteStarted(key string, v storage.Version, replicas int, now time.Duration) {
	o.writes++
	if l := o.latest[key]; v.After(l.issued) {
		l.issued = v
		o.latest[key] = l
	}
	o.pending[v] = pendingWrite{start: now, replicas: replicas}
}

// WriteVisible ledgers that the write was acknowledged to its client: it
// is now part of the data a user expects subsequent reads to return.
func (o *Oracle) WriteVisible(key string, v storage.Version) {
	if l := o.latest[key]; v.After(l.visible) {
		l.visible = v
		o.latest[key] = l
	}
}

// Applied ledgers replica node applying version v of key at time now.
func (o *Oracle) Applied(node netsim.NodeID, v storage.Version, now time.Duration) {
	p, ok := o.pending[v]
	if !ok || !p.markApplied(node) {
		return
	}
	rank := p.appliedCount()
	if rank <= len(o.rankDelays) {
		o.rankDelays[rank-1].Record(now - p.start)
	}
	if rank >= p.replicas {
		o.propagation.Record(now - p.start)
		delete(o.pending, v)
		return
	}
	o.pending[v] = p
}

// Latest reports both of key's high watermarks in one lookup: the
// newest client-acknowledged version (what a user expects reads to
// return) and the newest coordinator-accepted version (Figure 1's X_w,
// which may not be client-visible yet). Coordinators snapshot the pair
// when a read starts.
func (o *Oracle) Latest(key string) (visible, issued storage.Version) {
	l := o.latest[key]
	return l.visible, l.issued
}

// LatestVisible reports the newest client-acknowledged version of key.
func (o *Oracle) LatestVisible(key string) storage.Version { return o.latest[key].visible }

// LatestIssued reports the newest coordinator-accepted version of key.
func (o *Oracle) LatestIssued(key string) storage.Version { return o.latest[key].issued }

// Judge decides whether a read got stale data and tallies the verdict.
// A read is stale when it returned a version older than the newest write
// acknowledged before the read started (user-expected data). Reads that
// are fresh by that standard but missed a still-in-flight overlapping
// write are tallied separately as overlap reads — Figure 1's wider
// "possibly stale" window.
func (o *Oracle) Judge(visibleAtStart, issuedAtStart, returned storage.Version) bool {
	stale := visibleAtStart.After(returned)
	if stale {
		o.staleReads++
	} else {
		o.freshReads++
		if issuedAtStart.After(returned) {
			o.overlapReads++
		}
	}
	return stale
}

// ReadFailed tallies a read that returned an error (not judged for
// staleness).
func (o *Oracle) ReadFailed() { o.failedReads++ }

// StaleRate reports the fraction of judged reads that were stale.
func (o *Oracle) StaleRate() float64 {
	total := o.staleReads + o.freshReads
	if total == 0 {
		return 0
	}
	return float64(o.staleReads) / float64(total)
}

// Counts reports the raw verdict tallies.
func (o *Oracle) Counts() (stale, fresh, failed uint64) {
	return o.staleReads, o.freshReads, o.failedReads
}

// OverlapReads reports reads that were fresh against acknowledged writes
// but missed an overlapping in-flight write.
func (o *Oracle) OverlapReads() uint64 { return o.overlapReads }

// Propagation returns the histogram of full-propagation times (write
// start to last replica application).
func (o *Oracle) Propagation() *stats.Histogram { return &o.propagation }

// RankDelay returns the histogram of delays until the rank-th replica
// (1-based) applied a write.
func (o *Oracle) RankDelay(rank int) *stats.Histogram { return &o.rankDelays[rank-1] }

// InFlight reports how many writes have not reached all their replicas.
func (o *Oracle) InFlight() int { return len(o.pending) }

// ResetVerdicts clears the stale/fresh tallies (the ledger itself is
// kept); experiments call it between measurement phases.
func (o *Oracle) ResetVerdicts() {
	o.staleReads, o.freshReads, o.failedReads, o.overlapReads = 0, 0, 0, 0
}
