package kv

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/storage"
)

// Batched multi-key coordination. A batch pays one coordinator admission
// and sends at most one request message per replica — the per-item
// machinery (level requirements, ack folding, read repair, staleness
// judgment, monitor hooks) is shared with the single-key path through
// readCtx/writeCtx.

// ReadBatch issues a multi-key read as one coordinated batch instead of
// len(keys) independent operations. Results arrive together, in key
// order; cb runs once. The same client-side timeout guarantee as Read
// applies to the batch as a whole.
func (c *Cluster) ReadBatch(keys []string, lvl Level, cb func([]ReadResult)) {
	if len(keys) == 0 {
		cb(nil)
		return
	}
	id := c.nextReqID()
	coord := c.pickCoordinator()
	if coord < 0 {
		cb(failedReads(keys, lvl, ErrUnavailable, 0))
		return
	}
	done := false
	var stopGuard func()
	once := func(r []ReadResult) {
		if !done {
			done = true
			if stopGuard != nil {
				stopGuard()
			}
			cb(r)
		}
	}
	size := msgOverhead
	for _, k := range keys {
		size += len(k)
	}
	c.net.Send(netsim.ClientID, coord,
		clientBatchRead{ID: id, Keys: keys, Level: lvl, cb: once}, size)
	stopGuard = c.armGuard(func() {
		once(failedReads(keys, lvl, ErrTimeout, 2*c.cfg.Timeout))
	})
}

// WriteBatch issues a multi-key mutation batch (puts and tombstones
// mixed) as one coordinated batch. Results arrive together, in op
// order; cb runs once.
func (c *Cluster) WriteBatch(ops []BatchOp, lvl Level, cb func([]WriteResult)) {
	if len(ops) == 0 {
		cb(nil)
		return
	}
	id := c.nextReqID()
	coord := c.pickCoordinator()
	if coord < 0 {
		cb(failedWrites(ops, lvl, ErrUnavailable, 0))
		return
	}
	done := false
	var stopGuard func()
	once := func(r []WriteResult) {
		if !done {
			done = true
			if stopGuard != nil {
				stopGuard()
			}
			cb(r)
		}
	}
	size := msgOverhead
	for _, op := range ops {
		size += len(op.Key) + len(op.Value)
	}
	c.net.Send(netsim.ClientID, coord,
		clientBatchWrite{ID: id, Ops: ops, Level: lvl, cb: once}, size)
	stopGuard = c.armGuard(func() {
		once(failedWrites(ops, lvl, ErrTimeout, 2*c.cfg.Timeout))
	})
}

func failedReads(keys []string, lvl Level, err error, lat time.Duration) []ReadResult {
	out := make([]ReadResult, len(keys))
	for i, k := range keys {
		out[i] = ReadResult{Err: err, Key: k, Level: lvl, Latency: lat}
	}
	return out
}

func failedWrites(ops []BatchOp, lvl Level, err error, lat time.Duration) []WriteResult {
	out := make([]WriteResult, len(ops))
	for i, op := range ops {
		out[i] = WriteResult{Err: err, Key: op.Key, Level: lvl, Latency: lat}
	}
	return out
}

// coordBatchRead admits a whole multi-key read with a single admission
// cost, then fans out at most one request message per replica.
func (n *Node) coordBatchRead(m clientBatchRead) {
	n.coordWork(func() {
		now := n.cluster.net.Now()
		n.coordOps++ // one admission for the whole batch
		n.cluster.hooks.batchStarted(now, len(m.Keys), 0)

		bctx := &batchReadCtx{
			id: m.ID, cb: m.cb,
			items:   make([]*readCtx, len(m.Keys)),
			results: make([]ReadResult, len(m.Keys)),
			pending: len(m.Keys),
		}
		deliver := func(i int) func(ReadResult) {
			return func(res ReadResult) {
				bctx.results[i] = res
				bctx.pending--
				if bctx.pending == 0 && !bctx.delivered {
					bctx.delivered = true
					n.replyBatchRead(bctx.cb, bctx.results)
				}
			}
		}

		var order []netsim.NodeID
		perReplica := make(map[netsim.NodeID]*replicaBatchRead)
		for i, key := range m.Keys {
			n.cluster.hooks.readStarted(now, key)
			if t := n.cluster.hot; t != nil {
				t.observeRead(key, now)
			}
			replicas := n.routeReplicas(key)
			req := m.Level.resolve(replicas, n.cluster.topo, n.cluster.topo.DCOf(n.id))
			ctx := getReadCtx()
			targets, ok := n.pickTargets(replicas, req, ctx.targets)
			ctx.targets = targets
			if !ok {
				putReadCtx(ctx)
				// Like the single-read path: unavailable admissions do
				// not fire readCompleted, only the oracle failure count.
				n.cluster.oracle.ReadFailed()
				deliver(i)(ReadResult{Err: ErrUnavailable, Key: key, Level: m.Level})
				continue
			}
			ctx.id, ctx.key, ctx.level, ctx.req = m.ID, key, m.Level, req
			ctx.start = now
			ctx.reply = deliver(i)
			ctx.visibleAtStart, ctx.issuedAtStart = n.cluster.oracle.Latest(key)
			if req.perDC != nil {
				ctx.ackDC = make(map[string]int, len(req.perDC))
			}
			bctx.items[i] = ctx
			for _, t := range targets {
				rb := perReplica[t]
				if rb == nil {
					rb = &replicaBatchRead{ID: m.ID, Coord: n.id, RingSeq: n.ringSeq()}
					perReplica[t] = rb
					order = append(order, t)
				}
				rb.Idxs = append(rb.Idxs, i)
				rb.Keys = append(rb.Keys, key)
			}
		}
		if bctx.pending == 0 {
			return // every item failed at admission; reply already sent
		}
		n.batchReads[m.ID] = bctx
		for _, t := range order {
			rb := perReplica[t]
			size := msgOverhead
			for _, k := range rb.Keys {
				size += len(k)
			}
			n.cluster.net.Send(n.id, t, rb, size)
		}
		n.cluster.net.SendLocal(n.id, newCoordTimeout(m.ID, false), n.cluster.cfg.Timeout)
	})
}

// onBatchReadResp folds one replica's batched response into every item
// it answers for.
func (n *Node) onBatchReadResp(m replicaBatchReadResp) {
	bctx, ok := n.batchReads[m.ID]
	if !ok {
		return
	}
	for _, it := range m.Items {
		ctx := bctx.items[it.Idx]
		if ctx == nil {
			continue // failed at admission or already finalized
		}
		if ctx.findResp(m.From) >= 0 {
			continue
		}
		resp := replicaReadResp{
			ID: m.ID, Key: ctx.key, Cell: it.Cell, Exists: it.Exists, From: m.From,
		}
		ctx.responses = append(ctx.responses, resp)
		ctx.ackTotal++
		if ctx.ackDC != nil {
			ctx.ackDC[n.cluster.topo.DCOf(m.From)]++
		}
		if resp.Exists {
			if !ctx.haveBest || resp.Cell.Version.After(ctx.best.Cell.Version) {
				ctx.best = resp
				ctx.haveBest = true
			}
			if !ctx.haveData || resp.Cell.Version.After(ctx.bestData.Cell.Version) {
				ctx.bestData = resp
				ctx.haveData = true
			}
		}
		// Batched responses always carry data, so completion never waits
		// on a digest refetch.
		if !ctx.completed && ctx.req.satisfiedCounts(ctx.ackTotal, ctx.ackDC) {
			n.tryCompleteRead(ctx)
		}
		if len(ctx.responses) >= len(ctx.targets) && ctx.delivered {
			bctx.items[it.Idx] = nil
			n.finalizeRead(ctx)
			putReadCtx(ctx)
		}
	}
	for _, ctx := range bctx.items {
		if ctx != nil {
			return
		}
	}
	delete(n.batchReads, m.ID) // every item finalized before the timeout
}

// replyBatchRead ships a whole batch's results to the client endpoint in
// one message.
func (n *Node) replyBatchRead(cb func([]ReadResult), res []ReadResult) {
	size := msgOverhead
	for _, r := range res {
		size += len(r.Value)
	}
	n.cluster.net.Send(n.id, netsim.ClientID, clientBatchReadReply{cb: cb, res: res}, size)
}

// coordBatchWrite admits a whole multi-key mutation batch with a single
// admission cost, then sends each replica one message carrying every
// cell it owns.
func (n *Node) coordBatchWrite(m clientBatchWrite) {
	n.coordWork(func() {
		now := n.cluster.net.Now()
		n.coordOps++ // one admission for the whole batch
		n.cluster.hooks.batchStarted(now, 0, len(m.Ops))

		bctx := &batchWriteCtx{
			id: m.ID, cb: m.cb,
			items:   make([]*writeCtx, len(m.Ops)),
			results: make([]WriteResult, len(m.Ops)),
			pending: len(m.Ops),
		}
		deliver := func(i int) func(WriteResult) {
			return func(res WriteResult) {
				bctx.results[i] = res
				bctx.pending--
				if bctx.pending == 0 && !bctx.delivered {
					bctx.delivered = true
					n.replyBatchWrite(bctx.cb, bctx.results)
				}
			}
		}

		var order []netsim.NodeID
		perReplica := make(map[netsim.NodeID]*replicaBatchWrite)
		for i, op := range m.Ops {
			replicas := n.routeReplicas(op.Key)
			req := m.Level.resolve(replicas, n.cluster.topo, n.cluster.topo.DCOf(n.id))
			if !n.routeReachable(replicas, req) {
				deliver(i)(WriteResult{Err: ErrUnavailable, Key: op.Key, Level: m.Level})
				continue
			}
			version := storage.Version{Timestamp: now, Seq: n.cluster.nextSeq()}
			cell := storage.Cell{Version: version, Value: op.Value, Tombstone: op.Delete}
			n.cluster.oracle.WriteStarted(op.Key, version, len(replicas), now)
			n.cluster.hooks.writeStarted(now, op.Key, version, len(replicas))
			if t := n.cluster.hot; t != nil {
				t.observeWrite(op.Key, now)
			}
			n.cacheInvalidate(op.Key)
			ctx := getWriteCtx()
			ctx.id, ctx.key, ctx.level, ctx.req = m.ID, op.Key, m.Level, req
			ctx.start = now
			ctx.reply = deliver(i)
			ctx.version = version
			ctx.replicas = len(replicas)
			if req.perDC != nil {
				ctx.ackDC = make(map[string]int, len(req.perDC))
			}
			bctx.items[i] = ctx
			if n.gs != nil {
				ctx.cell = cell
				ctx.sent = append(ctx.sent[:0], replicas...)
			}
			for _, r := range replicas {
				if n.routeDown(r) {
					n.storeHint(r, op.Key, cell)
					continue
				}
				rb := perReplica[r]
				if rb == nil {
					rb = &replicaBatchWrite{ID: m.ID, Coord: n.id, RingSeq: n.ringSeq()}
					perReplica[r] = rb
					order = append(order, r)
				}
				rb.Idxs = append(rb.Idxs, i)
				rb.Keys = append(rb.Keys, op.Key)
				rb.Cells = append(rb.Cells, cell)
			}
		}
		// The batch context lives until the timeout fires even when every
		// item completed: late replica acks are the monitor's propagation
		// signal, exactly as for single writes.
		n.batchWrites[m.ID] = bctx
		for _, r := range order {
			rb := perReplica[r]
			size := msgOverhead
			for j := range rb.Keys {
				size += len(rb.Keys[j]) + len(rb.Cells[j].Value)
			}
			n.cluster.net.Send(n.id, r, rb, size)
		}
		n.cluster.net.SendLocal(n.id, newCoordTimeout(m.ID, true), n.cluster.cfg.Timeout)
	})
}

// onBatchWriteAck folds one replica's batched acknowledgement into every
// item it covers.
func (n *Node) onBatchWriteAck(m replicaBatchWriteAck) {
	bctx, ok := n.batchWrites[m.ID]
	if !ok {
		return
	}
	for _, idx := range m.Idxs {
		if ctx := bctx.items[idx]; ctx != nil {
			n.foldWriteAck(ctx, m.From)
		}
	}
}

// replyBatchWrite ships a whole batch's results to the client endpoint
// in one message.
func (n *Node) replyBatchWrite(cb func([]WriteResult), res []WriteResult) {
	n.cluster.net.Send(n.id, netsim.ClientID, clientBatchWriteReply{cb: cb, res: res}, msgOverhead)
}

// onReplicaBatchRead serves every item of a batched read in one work
// unit (summed service time) and answers with one message. Under gossip
// it first splits off items for ranges this replica's strictly newer
// ring no longer assigns to it and refuses them in one notOwner.
func (n *Node) onReplicaBatchRead(m replicaBatchRead) {
	if n.gs != nil && n.gs.view.RingSeq() > m.RingSeq {
		var refIdxs []int
		var refKeys []string
		kept := 0
		for j, key := range m.Keys {
			if !containsNode(n.gs.strategy.Replicas(key), n.id) {
				refIdxs = append(refIdxs, m.Idxs[j])
				refKeys = append(refKeys, key)
				continue
			}
			m.Idxs[kept], m.Keys[kept] = m.Idxs[j], key
			kept++
		}
		if len(refIdxs) > 0 {
			n.refuseBatch(m.ID, m.Coord, false, m.RingSeq, refIdxs, refKeys)
		}
		if kept == 0 {
			return
		}
		m.Idxs, m.Keys = m.Idxs[:kept], m.Keys[:kept]
	}
	var cost time.Duration
	for range m.Idxs {
		cost += n.cluster.cfg.ReadService.Sample(n.rng)
	}
	n.submitRead(cost, func() {
		items := make([]batchReadItem, len(m.Idxs))
		size := msgOverhead
		for j, idx := range m.Idxs {
			n.repReads++
			cell, ok := n.engine.Get(m.Keys[j])
			items[j] = batchReadItem{Idx: idx, Cell: cell, Exists: ok}
			size += len(cell.Value)
		}
		n.cluster.net.Send(n.id, m.Coord,
			&replicaBatchReadResp{ID: m.ID, Items: items, From: n.id}, size)
	})
}

// onReplicaBatchWrite applies every cell of a batched mutation in one
// work unit and acknowledges them with one message, refusing items this
// replica's strictly newer ring assigns elsewhere (same split as
// onReplicaBatchRead).
func (n *Node) onReplicaBatchWrite(m replicaBatchWrite) {
	if n.gs != nil && n.gs.view.RingSeq() > m.RingSeq {
		var refIdxs []int
		var refKeys []string
		kept := 0
		for j, key := range m.Keys {
			if !containsNode(n.gs.strategy.Replicas(key), n.id) {
				refIdxs = append(refIdxs, m.Idxs[j])
				refKeys = append(refKeys, key)
				continue
			}
			m.Idxs[kept], m.Keys[kept], m.Cells[kept] = m.Idxs[j], key, m.Cells[j]
			kept++
		}
		if len(refIdxs) > 0 {
			n.refuseBatch(m.ID, m.Coord, true, m.RingSeq, refIdxs, refKeys)
		}
		if kept == 0 {
			return
		}
		m.Idxs, m.Keys, m.Cells = m.Idxs[:kept], m.Keys[:kept], m.Cells[:kept]
	}
	var cost time.Duration
	for range m.Idxs {
		cost += n.cluster.cfg.WriteService.Sample(n.rng)
	}
	n.submitWrite(cost, func() {
		for j := range m.Idxs {
			n.repWrites++
			if n.engine.Apply(m.Keys[j], m.Cells[j]) {
				n.cluster.oracle.Applied(n.id, m.Cells[j].Version, n.cluster.net.Now())
			}
			n.cacheInvalidate(m.Keys[j])
		}
		ack := &replicaBatchWriteAck{ID: m.ID, Idxs: m.Idxs, From: n.id}
		n.cluster.net.Send(n.id, m.Coord, ack, msgOverhead+8*len(m.Idxs))
	})
}
