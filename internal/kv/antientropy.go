package kv

import (
	"repro/internal/netsim"
	"repro/internal/storage"
)

// Anti-entropy: each round a node offers the versions of a key sample to
// one random live peer; the peer pushes back newer cells and pulls the
// ones where the initiator was ahead. Because cell application is
// last-write-wins, exchanges are idempotent and order-free, so replicas
// converge even for writes whose coordinator died before full
// propagation.

// antiEntropyRound starts one exchange with a random live peer.
func (n *Node) antiEntropyRound() {
	n.aeRounds++
	peer := n.pickAEPeer()
	if peer < 0 {
		return
	}
	count := n.engine.KeyCount()
	if count == 0 {
		return
	}
	sample := n.cluster.cfg.AntiEntropySample
	if sample <= 0 || sample > count {
		sample = count
	}
	keys := make([]string, 0, sample)
	versions := make([]storage.Version, 0, sample)
	if n.aeSeen == nil {
		n.aeSeen = make(map[string]bool, sample)
	} else {
		clear(n.aeSeen)
	}
	seen := n.aeSeen
	for len(keys) < sample {
		k := n.engine.KeyAt(n.rng.IntN(count))
		if seen[k] {
			// Collision in the sample: accept fewer keys rather than
			// loop unboundedly on tiny stores.
			if len(seen) >= count {
				break
			}
			continue
		}
		seen[k] = true
		cell, ok := n.engine.Peek(k)
		if !ok {
			continue
		}
		keys = append(keys, k)
		versions = append(versions, cell.Version)
	}
	size := msgOverhead
	for _, k := range keys {
		size += len(k) + 16
	}
	cost := n.cluster.cfg.ReadService.Sample(n.rng)
	n.submitRead(cost, func() {
		n.cluster.net.Send(n.id, peer, aeOffer{Keys: keys, Versions: versions, From: n.id}, size)
	})
}

// pickAEPeer returns a random live node other than n, or -1.
func (n *Node) pickAEPeer() netsim.NodeID {
	order := n.cluster.order
	if len(order) < 2 {
		return -1
	}
	for tries := 0; tries < 8; tries++ {
		p := order[n.rng.IntN(len(order))]
		if p != n.id && !n.cluster.isDown(p) {
			return p
		}
	}
	return -1
}

// onAEOffer answers an exchange: push cells where this node is newer,
// pull keys where the initiator is newer.
func (n *Node) onAEOffer(m aeOffer) {
	cost := n.cluster.cfg.ReadService.Sample(n.rng)
	n.submitRead(cost, func() {
		var updates []aeCell
		var want []string
		size := msgOverhead
		for i, key := range m.Keys {
			local, ok := n.engine.Peek(key)
			switch {
			case !ok || m.Versions[i].After(local.Version):
				want = append(want, key)
				size += len(key)
			case local.Version.After(m.Versions[i]):
				updates = append(updates, aeCell{Key: key, Cell: local})
				size += len(key) + len(local.Value) + 16
			}
		}
		n.cluster.net.Send(n.id, m.From, aeReply{Updates: updates, Want: want, From: n.id}, size)
	})
}

// onAEReply applies the peer's newer cells and pushes the requested ones.
func (n *Node) onAEReply(m aeReply) {
	cost := n.cluster.cfg.WriteService.Sample(n.rng)
	n.submitWrite(cost, func() {
		n.applyAECells(m.Updates)
		if len(m.Want) == 0 {
			return
		}
		var push []aeCell
		size := msgOverhead
		for _, key := range m.Want {
			if cell, ok := n.engine.Peek(key); ok {
				push = append(push, aeCell{Key: key, Cell: cell})
				size += len(key) + len(cell.Value) + 16
			}
		}
		n.cluster.net.Send(n.id, m.From, aePush{Updates: push}, size)
	})
}

// onAEPush applies pushed cells, closing the exchange.
func (n *Node) onAEPush(m aePush) {
	cost := n.cluster.cfg.WriteService.Sample(n.rng)
	n.submitWrite(cost, func() { n.applyAECells(m.Updates) })
}

func (n *Node) applyAECells(cells []aeCell) {
	for _, u := range cells {
		if n.engine.Apply(u.Key, u.Cell) {
			n.cluster.oracle.Applied(n.id, u.Cell.Version, n.cluster.net.Now())
		}
		n.cacheInvalidate(u.Key)
	}
}
