package kv_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/kv"
	"repro/internal/netsim"
)

// gossipConfig is quietConfig with SWIM membership dissemination on and
// three founders of a five-node topology.
func gossipConfig(seed uint64) kv.Config {
	cfg := quietConfig(seed)
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2}
	cfg.Gossip = true
	return cfg
}

func gkey(i int) string { return fmt.Sprintf("%03d-gossip", i) }

// waitConverged runs the simulation until every reachable view agrees
// with the membership-flip log (bounded, loud on overrun).
func (h *harness) waitConverged(t *testing.T, bound time.Duration) time.Duration {
	t.Helper()
	start := h.eng.Now()
	for h.cluster.ViewAgreement() < 1 {
		if h.eng.Now()-start > bound {
			t.Fatalf("views did not converge within %v (agreement %.2f)",
				bound, h.cluster.ViewAgreement())
		}
		h.eng.RunFor(50 * time.Millisecond)
	}
	return h.eng.Now() - start
}

// TestGossipJoinConvergesViews: after a join, per-node views converge on
// the new ring through gossip alone, MembershipConverged flips true, and
// the dissemination meters show ring events actually traveled.
func TestGossipJoinConvergesViews(t *testing.T) {
	h := newHarness(netsim.SingleDC(5), gossipConfig(11))
	for i := 0; i < 40; i++ {
		if w := h.write(gkey(i), []byte("pre-join"), kv.All); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	if !h.cluster.MembershipConverged() {
		t.Fatal("founding cluster must start converged")
	}

	h.cluster.Join(3)
	h.eng.RunFor(300 * time.Millisecond) // streaming
	h.waitConverged(t, 5*time.Second)
	if !h.cluster.MembershipConverged() {
		t.Fatal("not converged after join")
	}
	u := h.cluster.Usage()
	if u.GossipRounds == 0 {
		t.Error("no gossip rounds ran")
	}
	if u.GossipEvents == 0 {
		t.Error("no ring events disseminated")
	}

	// The new ring must actually serve: every key readable at quorum.
	for i := 0; i < 40; i++ {
		if r := h.read(gkey(i), kv.Quorum); r.Err != nil || !r.Exists {
			t.Fatalf("key %s after join: err=%v exists=%v", gkey(i), r.Err, r.Exists)
		}
	}
}

// TestGossipSuspicionAndRefutation: a failed node is suspected and then
// declared dead by its peers' local detectors; on recovery the
// refutation handshake resurrects it in every view — no global reset.
func TestGossipSuspicionAndRefutation(t *testing.T) {
	cfg := gossipConfig(13)
	cfg.InitialMembers = []netsim.NodeID{0, 1, 2, 3}
	h := newHarness(netsim.SingleDC(4), cfg)
	h.eng.RunFor(time.Second)

	h.cluster.Fail(1)
	// Enough for every peer to probe node 1 and age the suspicion out.
	h.eng.RunFor(4 * time.Second)
	u := h.cluster.Usage()
	if u.GossipSuspicions == 0 {
		t.Fatal("no suspicions raised against the failed node")
	}
	if u.GossipDeadDeclared == 0 {
		t.Fatal("no death verdict after the suspicion aged out")
	}
	for _, viewer := range []netsim.NodeID{0, 2, 3} {
		if st := h.cluster.GossipStatus(viewer, 1); st == gossip.Alive {
			t.Fatalf("viewer %d still believes the failed node alive", viewer)
		}
	}

	h.cluster.Recover(1)
	deadline := h.eng.Now() + 10*time.Second
	healed := func() bool {
		for _, viewer := range []netsim.NodeID{0, 2, 3} {
			if h.cluster.GossipStatus(viewer, 1) != gossip.Alive {
				return false
			}
		}
		return h.cluster.GossipStatus(1, 0) == gossip.Alive
	}
	for !healed() && h.eng.Now() < deadline {
		h.eng.RunFor(100 * time.Millisecond)
	}
	if !healed() {
		t.Fatal("refutation did not resurrect the recovered node in every view")
	}
	// The healed ring serves at All — every coordinator routes to node 1
	// again.
	if w := h.write(gkey(0), []byte("post-heal"), kv.All); w.Err != nil {
		t.Fatalf("write at All after heal: %v", w.Err)
	}
}

// staleRingSetup joins node 3, converges every view, then rewinds all
// views except the joiner's and one displaced old owner's to the
// pre-join prefix. It returns a key the join moved plus the displaced
// replica: a stale coordinator contacts the displaced node, which
// refuses (strictly newer ring, no longer an owner) and teaches it the
// missing events — the wrong-owner fallback under a maximally stale
// ring.
func staleRingSetup(t *testing.T, seed uint64) (h *harness, key string, joiner, displaced netsim.NodeID) {
	t.Helper()
	cfg := gossipConfig(seed)
	cfg.WarmupDuration = 0 // no warming: isolate the stale-ring machinery
	h = newHarness(netsim.SingleDC(5), cfg)
	joiner = 3

	oldReps := make(map[string][]netsim.NodeID)
	for i := 0; i < 120; i++ {
		k := gkey(i)
		oldReps[k] = append([]netsim.NodeID(nil), h.cluster.Strategy().Replicas(k)...)
		if w := h.write(k, []byte("v0"), kv.All); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	h.cluster.Join(joiner)
	h.eng.RunFor(300 * time.Millisecond)
	h.waitConverged(t, 5*time.Second)

	displaced = -1
	for i := 0; i < 120; i++ {
		k := gkey(i)
		newR := h.cluster.Strategy().Replicas(k)
		if !containsID(newR, joiner) {
			continue
		}
		for _, r := range oldReps[k] {
			if !containsID(newR, r) {
				key, displaced = k, r
				break
			}
		}
		if displaced >= 0 {
			break
		}
	}
	if displaced < 0 {
		t.Fatal("no key was displaced by the join")
	}
	for _, m := range h.cluster.Members() {
		if m != joiner && m != displaced {
			h.cluster.ResetGossipView(m, 0)
		}
	}
	return h, key, joiner, displaced
}

func containsID(list []netsim.NodeID, id netsim.NodeID) bool {
	for _, n := range list {
		if n == id {
			return true
		}
	}
	return false
}

// TestStaleRingNotOwnerFallback: coordinators on a maximally stale
// (pre-join) ring still meet quorum within the deadline for every
// operation shape — the displaced replica's notOwner refusal advances
// their ring and the retry contacts the true owners.
func TestStaleRingNotOwnerFallback(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, h *harness, key string)
	}{
		{"read", func(t *testing.T, h *harness, key string) {
			r := h.read(key, kv.Quorum)
			if r.Err != nil || string(r.Value) != "v0" {
				t.Fatalf("stale-ring read: err=%v value=%q", r.Err, r.Value)
			}
		}},
		{"write", func(t *testing.T, h *harness, key string) {
			if w := h.write(key, []byte("v1"), kv.Quorum); w.Err != nil {
				t.Fatalf("stale-ring write: %v", w.Err)
			}
		}},
		// All-level: quorum target selection may skip the displaced
		// replica entirely; All guarantees the stale coordinator contacts
		// it and gets refused.
		{"batch-read", func(t *testing.T, h *harness, key string) {
			res := h.batchRead([]string{key, gkey(0), gkey(1)}, kv.All)
			for _, r := range res {
				if r.Err != nil || !r.Exists {
					t.Fatalf("stale-ring batch read %s: err=%v exists=%v", r.Key, r.Err, r.Exists)
				}
			}
		}},
		{"batch-write", func(t *testing.T, h *harness, key string) {
			ops := []kv.BatchOp{{Key: key, Value: []byte("v1")}, {Key: gkey(0), Value: []byte("v1")}}
			for _, w := range h.batchWrite(ops, kv.Quorum) {
				if w.Err != nil {
					t.Fatalf("stale-ring batch write %s: %v", w.Key, w.Err)
				}
			}
		}},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, key, joiner, _ := staleRingSetup(t, 17+uint64(ci))
			before := h.cluster.Usage()
			// Repeat the op: coordinator choice is random, and a stale
			// coordinator converges the moment it is taught — several
			// attempts guarantee at least one exercised the fallback.
			for i := 0; i < 10; i++ {
				tc.run(t, h, key)
			}
			u := h.cluster.Usage()
			if u.NotOwnerReplies == before.NotOwnerReplies {
				t.Error("no wrong-owner refusal was triggered")
			}
			if u.WrongOwnerRetries == before.WrongOwnerRetries {
				t.Error("no wrong-owner retry ran")
			}
			if tc.name == "write" || tc.name == "batch-write" {
				// The retry must have shipped the cell to the new owner.
				h.eng.RunFor(time.Second)
				if _, ok := h.cluster.Node(joiner).Engine().Get(key); !ok {
					t.Error("retried write never reached the new owner")
				}
			}
		})
	}
}

// TestGossipRetryBudgetExhaustionFailsLoudly: with retries disabled, a
// stale coordinator whose only path to quorum is through the refusing
// displaced replica must fail with a loud timeout, not hang.
func TestGossipRetryBudgetExhaustionFailsLoudly(t *testing.T) {
	cfg := gossipConfig(23)
	cfg.WarmupDuration = 0
	cfg.GossipRetryBudget = 1
	h := newHarness(netsim.SingleDC(5), cfg)
	for i := 0; i < 40; i++ {
		if w := h.write(gkey(i), []byte("v0"), kv.All); w.Err != nil {
			t.Fatal(w.Err)
		}
	}
	h.cluster.Join(3)
	h.eng.RunFor(300 * time.Millisecond)
	h.waitConverged(t, 5*time.Second)
	for _, m := range h.cluster.Members() {
		if m != 3 {
			h.cluster.ResetGossipView(m, 0)
		}
	}
	// Reads at All on the stale ring: any displaced replica refuses, the
	// single budgeted retry re-plans, and the operation either completes
	// or times out — always a definite result within the deadline.
	for i := 0; i < 40; i++ {
		r := h.read(gkey(i), kv.All)
		if r.Err != nil && r.Err != kv.ErrTimeout {
			t.Fatalf("unexpected error shape: %v", r.Err)
		}
	}
}
