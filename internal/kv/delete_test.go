package kv_test

import (
	"testing"

	"repro/internal/kv"
	"repro/internal/netsim"
)

func (h *harness) del(key string, lvl kv.Level) kv.WriteResult {
	var out kv.WriteResult
	done := false
	h.cluster.Delete(key, lvl, func(r kv.WriteResult) { out = r; done = true })
	for !done && h.eng.Step() {
	}
	return out
}

func TestDeleteHidesKey(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(20))
	h.write("k", []byte("v"), kv.Quorum)
	d := h.del("k", kv.Quorum)
	if d.Err != nil {
		t.Fatalf("delete: %v", d.Err)
	}
	r := h.read("k", kv.Quorum)
	if r.Err != nil {
		t.Fatalf("read after delete: %v", r.Err)
	}
	if r.Exists || r.Value != nil {
		t.Errorf("deleted key still visible: %+v", r)
	}
}

func TestDeleteThenRewriteResurrects(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(21))
	h.write("k", []byte("v1"), kv.Quorum)
	h.del("k", kv.Quorum)
	w := h.write("k", []byte("v2"), kv.Quorum)
	if w.Err != nil {
		t.Fatal(w.Err)
	}
	r := h.read("k", kv.Quorum)
	if !r.Exists || string(r.Value) != "v2" {
		t.Errorf("rewrite after delete: %+v", r)
	}
}

func TestDeleteTombstonePropagatesToAllReplicas(t *testing.T) {
	h := newHarness(netsim.G5KTwoSites(6), quietConfig(22))
	h.write("k", []byte("v"), kv.All)
	d := h.del("k", kv.One) // async tombstone propagation
	h.eng.Run()             // quiesce
	for _, id := range h.cluster.Strategy().Replicas("k") {
		cell, ok := h.cluster.Node(id).Engine().Peek("k")
		if !ok || !cell.Tombstone || cell.Version != d.Version {
			t.Errorf("replica %d tombstone state: %+v", id, cell)
		}
	}
}

func TestDeleteOfMissingKeySucceeds(t *testing.T) {
	h := newHarness(netsim.SingleDC(3), quietConfig(23))
	if d := h.del("nope", kv.Quorum); d.Err != nil {
		t.Errorf("delete of missing key: %v", d.Err)
	}
	if r := h.read("nope", kv.One); r.Exists {
		t.Error("missing key exists after delete")
	}
}
