package ring

import (
	"testing"

	"repro/internal/netsim"
)

// BenchmarkAddRemoveNode measures one scale-up + scale-down cycle on a
// 64-node ring with incremental placement recompute — the rebalance cost
// a membership change pays before any data moves.
func BenchmarkAddRemoveNode(b *testing.B) {
	s := NewSimpleStrategy(New(nodeIDs(64), 32, 7), 3)
	joiner := netsim.NodeID(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddNode(joiner)
		s.RemoveNode(joiner)
	}
}

// BenchmarkReplicasLookup pins the per-operation placement lookup cost
// after a membership change (the table must stay a zero-alloc cache).
func BenchmarkReplicasLookup(b *testing.B) {
	s := NewSimpleStrategy(New(nodeIDs(16), 32, 7), 3)
	s.AddNode(16)
	keys := sampleKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Replicas(keys[i%len(keys)])) != 3 {
			b.Fatal("bad replica set")
		}
	}
}
