package ring

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

func nodeIDs(n int) []netsim.NodeID {
	out := make([]netsim.NodeID, n)
	for i := range out {
		out[i] = netsim.NodeID(i)
	}
	return out
}

func TestKeyTokenDeterministic(t *testing.T) {
	if KeyToken("alpha") != KeyToken("alpha") {
		t.Error("token not deterministic")
	}
	if KeyToken("alpha") == KeyToken("beta") {
		t.Error("trivial token collision")
	}
}

func TestSimpleStrategyProperties(t *testing.T) {
	r := New(nodeIDs(10), 16, 7)
	s := SimpleStrategy{Ring: r, Factor: 3}
	if s.RF() != 3 {
		t.Errorf("RF = %d", s.RF())
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(key string) bool {
		reps := s.Replicas(key)
		if len(reps) != 3 {
			return false
		}
		seen := map[netsim.NodeID]bool{}
		for _, n := range reps {
			if seen[n] || n < 0 || int(n) >= 10 {
				return false
			}
			seen[n] = true
		}
		// Determinism: the same key maps to the same ordered set.
		again := s.Replicas(key)
		for i := range reps {
			if reps[i] != again[i] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestPlacementTableMatchesWalk pins that the precomputed placement
// tables agree with a fresh ring walk for every key — the table is a pure
// cache, not a semantic change.
func TestPlacementTableMatchesWalk(t *testing.T) {
	r := New(nodeIDs(10), 16, 7)
	fast := NewSimpleStrategy(r, 3)
	slow := SimpleStrategy{Ring: r, Factor: 3} // zero table: walking fallback
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key%05d", i)
		a, b := fast.Replicas(key), slow.Replicas(key)
		if len(a) != len(b) {
			t.Fatalf("key %s: table %v vs walk %v", key, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %s: table %v vs walk %v", key, a, b)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := New(nodeIDs(8), 64, 3)
	s := SimpleStrategy{Ring: r, Factor: 1}
	counts := make(map[netsim.NodeID]int)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[s.Replicas(fmt.Sprintf("key-%d", i))[0]]++
	}
	want := keys / 8
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %d owns %d keys (expected ≈%d): poor balance", n, c, want)
		}
	}
}

func TestRingSeedChangesPlacement(t *testing.T) {
	a := SimpleStrategy{Ring: New(nodeIDs(8), 16, 1), Factor: 1}
	b := SimpleStrategy{Ring: New(nodeIDs(8), 16, 2), Factor: 1}
	diff := 0
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Replicas(k)[0] != b.Replicas(k)[0] {
			diff++
		}
	}
	if diff < 50 {
		t.Errorf("different seeds placed %d/100 keys identically", 100-diff)
	}
}

func TestWalkVisitsAllNodesOnce(t *testing.T) {
	r := New(nodeIDs(6), 8, 1)
	var visited []netsim.NodeID
	r.Walk("somekey", func(n netsim.NodeID) bool {
		visited = append(visited, n)
		return true
	})
	if len(visited) != 6 {
		t.Fatalf("walk visited %d nodes", len(visited))
	}
	seen := map[netsim.NodeID]bool{}
	for _, n := range visited {
		if seen[n] {
			t.Fatal("walk revisited a node")
		}
		seen[n] = true
	}
}

func TestPrimaryIsFirstWalkNode(t *testing.T) {
	r := New(nodeIDs(6), 8, 1)
	var first netsim.NodeID = -1
	r.Walk("k", func(n netsim.NodeID) bool { first = n; return false })
	if p := r.Primary("k"); p != first {
		t.Errorf("primary %d != first walk node %d", p, first)
	}
}

func TestNetworkTopologyStrategy(t *testing.T) {
	topo := netsim.NewTopology()
	topo.AddDC("dc1", "r", 5)
	topo.AddDC("dc2", "r", 5)
	r := New(topo.Nodes(), 16, 9)
	s := NewNetworkTopologyStrategy(r, topo, map[string]int{"dc1": 2, "dc2": 3})
	if s.RF() != 5 {
		t.Errorf("RF = %d", s.RF())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := s.Replicas(key)
		if len(reps) != 5 {
			t.Fatalf("replicas = %d", len(reps))
		}
		perDC := map[string]int{}
		for _, n := range reps {
			perDC[topo.DCOf(n)]++
		}
		if perDC["dc1"] != 2 || perDC["dc2"] != 3 {
			t.Fatalf("per-DC placement %v for %s", perDC, key)
		}
	}
}

func TestNetworkTopologyStrategyPanicsWhenDCThin(t *testing.T) {
	topo := netsim.NewTopology()
	topo.AddDC("dc1", "r", 1)
	r := New(topo.Nodes(), 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for under-provisioned DC")
		}
	}()
	NewNetworkTopologyStrategy(r, topo, map[string]int{"dc1": 3})
}

func TestRingSingleNode(t *testing.T) {
	r := New(nodeIDs(1), 4, 1)
	s := SimpleStrategy{Ring: r, Factor: 1}
	if got := s.Replicas("k"); len(got) != 1 || got[0] != 0 {
		t.Errorf("single-node ring: %v", got)
	}
}
