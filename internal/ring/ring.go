// Package ring implements the consistent-hash token ring and the replica
// placement strategies of the replicated store: SimpleStrategy (first RF
// distinct nodes clockwise) and NetworkTopologyStrategy (per-datacenter
// replica counts), mirroring Cassandra's partitioners.
package ring

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// Token is a position on the hash ring.
type Token uint64

// KeyToken maps a key to its ring position (FNV-1a, uniform enough for
// simulation purposes and fully deterministic). The hash is computed
// inline: this runs once or twice per client operation and must not
// allocate.
func KeyToken(key string) Token {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return Token(h)
}

type vnode struct {
	token Token
	node  netsim.NodeID
}

// Ring is an immutable token ring with virtual nodes.
type Ring struct {
	vnodes []vnode
	nodes  []netsim.NodeID
}

// New builds a ring for the given nodes with vnodesPerNode virtual nodes
// each. Virtual node tokens are derived deterministically from the seed,
// so the same (nodes, vnodes, seed) triple always produces the same
// placement.
func New(nodes []netsim.NodeID, vnodesPerNode int, seed uint64) *Ring {
	if vnodesPerNode <= 0 {
		vnodesPerNode = 1
	}
	r := &Ring{nodes: append([]netsim.NodeID(nil), nodes...)}
	r.vnodes = make([]vnode, 0, len(nodes)*vnodesPerNode)
	for _, n := range nodes {
		for v := 0; v < vnodesPerNode; v++ {
			tok := Token(stats.FNVHash64(seed ^ stats.FNVHash64(uint64(n)<<20|uint64(v))))
			r.vnodes = append(r.vnodes, vnode{token: tok, node: n})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].token != r.vnodes[j].token {
			return r.vnodes[i].token < r.vnodes[j].token
		}
		return r.vnodes[i].node < r.vnodes[j].node
	})
	return r
}

// Nodes returns the ring members.
func (r *Ring) Nodes() []netsim.NodeID { return r.nodes }

// N reports the number of distinct nodes on the ring.
func (r *Ring) N() int { return len(r.nodes) }

// search returns the index of the first vnode with token ≥ t (wrapping).
func (r *Ring) search(t Token) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].token >= t })
	if i == len(r.vnodes) {
		return 0
	}
	return i
}

// Walk visits distinct nodes clockwise from the key's token until visit
// returns false or all nodes have been seen.
func (r *Ring) Walk(key string, visit func(netsim.NodeID) bool) {
	if len(r.vnodes) == 0 {
		return
	}
	start := r.search(KeyToken(key))
	seen := make(map[netsim.NodeID]bool, len(r.nodes))
	for i := 0; i < len(r.vnodes); i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[vn.node] {
			continue
		}
		seen[vn.node] = true
		if !visit(vn.node) {
			return
		}
		if len(seen) == len(r.nodes) {
			return
		}
	}
}

// Primary returns the first node clockwise from the key's token.
func (r *Ring) Primary(key string) netsim.NodeID {
	var p netsim.NodeID = -1
	r.Walk(key, func(n netsim.NodeID) bool { p = n; return false })
	return p
}

// Strategy chooses the replica set of a key. Implementations must be
// deterministic: the same key always maps to the same ordered replica
// list.
type Strategy interface {
	// Replicas returns the replica nodes of key in preference order
	// (the first entry is the primary).
	Replicas(key string) []netsim.NodeID
	// RF reports the total replication factor.
	RF() int
}

// The ring is immutable, so a key's replica set depends only on the
// vnode its token lands on. Both strategies therefore precompute the
// replica list of every start vnode at construction and answer Replicas
// with a shared table lookup: zero walking and zero allocation per
// operation. Callers must not mutate the returned slice.

// SimpleStrategy places replicas on the first RF distinct nodes clockwise
// from the key's token, ignoring topology.
type SimpleStrategy struct {
	Ring   *Ring
	Factor int

	table [][]netsim.NodeID // lazily built per-vnode replica lists
}

// placements precomputes one replica list per start vnode using pick to
// select from the clockwise distinct-node walk.
func placements(r *Ring, pick func(walk []netsim.NodeID) []netsim.NodeID) [][]netsim.NodeID {
	table := make([][]netsim.NodeID, len(r.vnodes))
	walk := make([]netsim.NodeID, 0, len(r.nodes))
	seen := make(map[netsim.NodeID]bool, len(r.nodes))
	for start := range r.vnodes {
		walk = walk[:0]
		clear(seen)
		for i := 0; i < len(r.vnodes) && len(walk) < len(r.nodes); i++ {
			vn := r.vnodes[(start+i)%len(r.vnodes)]
			if !seen[vn.node] {
				seen[vn.node] = true
				walk = append(walk, vn.node)
			}
		}
		table[start] = pick(walk)
	}
	return table
}

// NewSimpleStrategy builds the strategy with its placement table.
func NewSimpleStrategy(r *Ring, factor int) *SimpleStrategy {
	s := &SimpleStrategy{Ring: r, Factor: factor}
	s.table = placements(r, func(walk []netsim.NodeID) []netsim.NodeID {
		n := factor
		if n > len(walk) {
			n = len(walk)
		}
		return append([]netsim.NodeID(nil), walk[:n]...)
	})
	return s
}

// Replicas implements Strategy.
func (s *SimpleStrategy) Replicas(key string) []netsim.NodeID {
	if s.table == nil {
		// Zero-constructed strategy (tests): fall back to walking.
		out := make([]netsim.NodeID, 0, s.Factor)
		s.Ring.Walk(key, func(n netsim.NodeID) bool {
			out = append(out, n)
			return len(out) < s.Factor
		})
		return out
	}
	return s.table[s.Ring.search(KeyToken(key))]
}

// RF implements Strategy.
func (s *SimpleStrategy) RF() int { return s.Factor }

// NetworkTopologyStrategy places a configured number of replicas in each
// datacenter: it walks the ring clockwise and takes nodes whose DC still
// has unfilled quota, Cassandra's multi-DC placement.
type NetworkTopologyStrategy struct {
	Ring    *Ring
	Topo    *netsim.Topology
	PerDC   map[string]int
	factor  int
	factSet bool
	table   [][]netsim.NodeID
}

// NewNetworkTopologyStrategy builds the strategy; perDC maps datacenter
// name to replica count.
func NewNetworkTopologyStrategy(r *Ring, topo *netsim.Topology, perDC map[string]int) *NetworkTopologyStrategy {
	total := 0
	for dc, n := range perDC {
		if len(topo.NodesInDC(dc)) < n {
			panic(fmt.Sprintf("ring: DC %q has fewer nodes than replicas (%d < %d)",
				dc, len(topo.NodesInDC(dc)), n))
		}
		total += n
	}
	s := &NetworkTopologyStrategy{Ring: r, Topo: topo, PerDC: perDC, factor: total, factSet: true}
	need := make(map[string]int, len(perDC))
	s.table = placements(r, func(walk []netsim.NodeID) []netsim.NodeID {
		for dc, n := range perDC {
			need[dc] = n
		}
		out := make([]netsim.NodeID, 0, total)
		for _, n := range walk {
			if len(out) == total {
				break
			}
			if dc := topo.DCOf(n); need[dc] > 0 {
				need[dc]--
				out = append(out, n)
			}
		}
		return out
	})
	return s
}

// Replicas implements Strategy.
func (s *NetworkTopologyStrategy) Replicas(key string) []netsim.NodeID {
	return s.table[s.Ring.search(KeyToken(key))]
}

// RF implements Strategy.
func (s *NetworkTopologyStrategy) RF() int { return s.factor }
