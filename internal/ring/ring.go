// Package ring implements the consistent-hash token ring and the replica
// placement strategies of the replicated store: SimpleStrategy (first RF
// distinct nodes clockwise) and NetworkTopologyStrategy (per-datacenter
// replica counts), mirroring Cassandra's partitioners.
//
// The ring is mutable: AddNode and RemoveNode splice a node's virtual
// nodes in or out, moving only the ~1/N of key ownership adjacent to the
// new tokens (consistent hashing's rebalance guarantee). Tokens are a
// pure function of (node, vnode index, seed), so a ring grown
// incrementally is bit-identical to one built fresh from the final
// member list — the property membership changes in the deterministic
// simulator rely on.
package ring

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// Token is a position on the hash ring.
type Token uint64

// KeyToken maps a key to its ring position (FNV-1a, uniform enough for
// simulation purposes and fully deterministic). The hash is computed
// inline: this runs once or twice per client operation and must not
// allocate.
func KeyToken(key string) Token {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return Token(h)
}

type vnode struct {
	token Token
	node  netsim.NodeID
}

// Ring is a token ring with virtual nodes. It is immutable under
// lookups; AddNode/RemoveNode mutate it between operations (the
// simulator's membership changes run on the event loop, serialized with
// every lookup).
type Ring struct {
	vnodes []vnode
	nodes  []netsim.NodeID

	vnodesPerNode int
	seed          uint64
}

// nodeTokens derives the vnode tokens of one node, sorted ascending.
// The derivation matches New exactly, so incremental membership changes
// reproduce the fresh-build ring bit for bit.
func nodeTokens(n netsim.NodeID, vnodesPerNode int, seed uint64) []vnode {
	out := make([]vnode, 0, vnodesPerNode)
	for v := 0; v < vnodesPerNode; v++ {
		tok := Token(stats.FNVHash64(seed ^ stats.FNVHash64(uint64(n)<<20|uint64(v))))
		out = append(out, vnode{token: tok, node: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].token < out[j].token })
	return out
}

// vnodeLess is the ring ordering: by token, ties broken by node id.
func vnodeLess(a, b vnode) bool {
	if a.token != b.token {
		return a.token < b.token
	}
	return a.node < b.node
}

// New builds a ring for the given nodes with vnodesPerNode virtual nodes
// each. Virtual node tokens are derived deterministically from the seed,
// so the same (nodes, vnodes, seed) triple always produces the same
// placement.
func New(nodes []netsim.NodeID, vnodesPerNode int, seed uint64) *Ring {
	if vnodesPerNode <= 0 {
		vnodesPerNode = 1
	}
	r := &Ring{
		nodes:         append([]netsim.NodeID(nil), nodes...),
		vnodesPerNode: vnodesPerNode,
		seed:          seed,
	}
	r.vnodes = make([]vnode, 0, len(nodes)*vnodesPerNode)
	for _, n := range nodes {
		for v := 0; v < vnodesPerNode; v++ {
			tok := Token(stats.FNVHash64(seed ^ stats.FNVHash64(uint64(n)<<20|uint64(v))))
			r.vnodes = append(r.vnodes, vnode{token: tok, node: n})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return vnodeLess(r.vnodes[i], r.vnodes[j]) })
	return r
}

// Has reports whether id is a ring member.
func (r *Ring) Has(id netsim.NodeID) bool {
	for _, n := range r.nodes {
		if n == id {
			return true
		}
	}
	return false
}

// AddNode splices id's virtual nodes into the ring and returns their
// post-insert indices in ascending order. Only keys whose token now
// lands on (or walks through) one of the new vnodes change owners —
// about 1/N of the ring. Adding a present node panics.
func (r *Ring) AddNode(id netsim.NodeID) []int {
	if r.Has(id) {
		panic(fmt.Sprintf("ring: AddNode(%d): already a member", id))
	}
	add := nodeTokens(id, r.vnodesPerNode, r.seed)
	merged := make([]vnode, 0, len(r.vnodes)+len(add))
	positions := make([]int, 0, len(add))
	i, j := 0, 0
	for i < len(r.vnodes) || j < len(add) {
		if j >= len(add) || (i < len(r.vnodes) && vnodeLess(r.vnodes[i], add[j])) {
			merged = append(merged, r.vnodes[i])
			i++
		} else {
			positions = append(positions, len(merged))
			merged = append(merged, add[j])
			j++
		}
	}
	r.vnodes = merged
	r.nodes = append(r.nodes, id)
	return positions
}

// RemoveNode splices id's virtual nodes out of the ring and returns
// their pre-removal indices in ascending order. Keys the node owned fall
// to the next distinct node clockwise; nothing else moves. Removing a
// non-member panics.
func (r *Ring) RemoveNode(id netsim.NodeID) []int {
	if !r.Has(id) {
		panic(fmt.Sprintf("ring: RemoveNode(%d): not a member", id))
	}
	var positions []int
	kept := r.vnodes[:0]
	for i := range r.vnodes {
		if r.vnodes[i].node == id {
			positions = append(positions, i)
			continue
		}
		kept = append(kept, r.vnodes[i])
	}
	r.vnodes = kept
	for i, n := range r.nodes {
		if n == id {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
	return positions
}

// Nodes returns the ring members. Callers must not mutate the slice.
func (r *Ring) Nodes() []netsim.NodeID { return r.nodes }

// N reports the number of distinct nodes on the ring.
func (r *Ring) N() int { return len(r.nodes) }

// VNodes reports the number of virtual nodes on the ring.
func (r *Ring) VNodes() int { return len(r.vnodes) }

// search returns the index of the first vnode with token ≥ t (wrapping).
func (r *Ring) search(t Token) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].token >= t })
	if i == len(r.vnodes) {
		return 0
	}
	return i
}

// walkFrom visits distinct nodes clockwise starting at vnode index start
// until visit returns false or all nodes have been seen.
func (r *Ring) walkFrom(start int, seen map[netsim.NodeID]bool, visit func(netsim.NodeID) bool) {
	for i := 0; i < len(r.vnodes); i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[vn.node] {
			continue
		}
		seen[vn.node] = true
		if !visit(vn.node) {
			return
		}
		if len(seen) == len(r.nodes) {
			return
		}
	}
}

// Walk visits distinct nodes clockwise from the key's token until visit
// returns false or all nodes have been seen.
func (r *Ring) Walk(key string, visit func(netsim.NodeID) bool) {
	if len(r.vnodes) == 0 {
		return
	}
	r.walkFrom(r.search(KeyToken(key)), make(map[netsim.NodeID]bool, len(r.nodes)), visit)
}

// Primary returns the first node clockwise from the key's token.
func (r *Ring) Primary(key string) netsim.NodeID {
	var p netsim.NodeID = -1
	r.Walk(key, func(n netsim.NodeID) bool { p = n; return false })
	return p
}

// affectedStarts reports which start vnodes' placement walks could reach
// any of the changed positions before completing: walking
// counter-clockwise from each changed position, a start is affected
// until the arc between it and the changed position already contains
// `need` distinct nodes (its walk would have ended before the change).
// The changed positions themselves are always marked. Distinct-node
// counts are monotone in the arc length, so the backward scan stops at
// the first unaffected start.
func (r *Ring) affectedStarts(changed []int, need int) []bool {
	mark := make([]bool, len(r.vnodes))
	if need > len(r.nodes) {
		need = len(r.nodes)
	}
	seen := make(map[netsim.NodeID]bool, need)
	for _, p := range changed {
		mark[p] = true
		clear(seen)
		for step := 1; step < len(r.vnodes); step++ {
			i := (p - step + len(r.vnodes)) % len(r.vnodes)
			seen[r.vnodes[i].node] = true
			if len(seen) >= need {
				break // the walk from i completes inside the arc
			}
			mark[i] = true
		}
	}
	return mark
}

// Strategy chooses the replica set of a key. Implementations must be
// deterministic: the same key always maps to the same ordered replica
// list. AddNode/RemoveNode apply a membership change to the underlying
// ring and bring the placement tables up to date.
type Strategy interface {
	// Replicas returns the replica nodes of key in preference order
	// (the first entry is the primary). Replicas(key) is exactly
	// ReplicasAt(KeyToken(key)).
	Replicas(key string) []netsim.NodeID
	// ReplicasAt returns the replica set of the arc containing token t,
	// in preference order. A key's placement is a function of its arc
	// alone, so one lookup answers for every key on the arc.
	ReplicasAt(t Token) []netsim.NodeID
	// Ranges returns every arc of the ring with its replica set,
	// ascending by end token with the wrapping arc first (the package
	// ordering invariant).
	Ranges() []RangePlacement
	// RF reports the total replication factor.
	RF() int
	// AddNode adds a node to the ring and updates placement.
	AddNode(id netsim.NodeID)
	// RemoveNode removes a node from the ring and updates placement.
	RemoveNode(id netsim.NodeID)
}

// The ring mutates only between operations, so a key's replica set
// depends only on the vnode its token lands on. Both strategies
// therefore precompute the replica list of every start vnode and answer
// Replicas with a shared table lookup: zero walking and zero allocation
// per operation. Callers must not mutate the returned slice. Membership
// changes recompute the table incrementally (SimpleStrategy touches only
// the ~RF/N affected arc; NetworkTopologyStrategy rebuilds, since its
// quota-constrained walks have no local bound).

// SimpleStrategy places replicas on the first RF distinct nodes clockwise
// from the key's token, ignoring topology.
type SimpleStrategy struct {
	Ring   *Ring
	Factor int

	table [][]netsim.NodeID // lazily built per-vnode replica lists
}

// placements precomputes one replica list per start vnode using pick to
// select from the clockwise distinct-node walk.
func placements(r *Ring, pick func(walk []netsim.NodeID) []netsim.NodeID) [][]netsim.NodeID {
	table := make([][]netsim.NodeID, len(r.vnodes))
	walk := make([]netsim.NodeID, 0, len(r.nodes))
	seen := make(map[netsim.NodeID]bool, len(r.nodes))
	for start := range r.vnodes {
		walk = walk[:0]
		clear(seen)
		r.walkFrom(start, seen, func(n netsim.NodeID) bool {
			walk = append(walk, n)
			return true
		})
		table[start] = pick(walk)
	}
	return table
}

// recomputeEntry rebuilds the table entry of one start vnode.
func recomputeEntry(r *Ring, table [][]netsim.NodeID, start int,
	walk []netsim.NodeID, seen map[netsim.NodeID]bool,
	pick func(walk []netsim.NodeID) []netsim.NodeID) {
	walk = walk[:0]
	clear(seen)
	r.walkFrom(start, seen, func(n netsim.NodeID) bool {
		walk = append(walk, n)
		return true
	})
	table[start] = pick(walk)
}

// NewSimpleStrategy builds the strategy with its placement table.
func NewSimpleStrategy(r *Ring, factor int) *SimpleStrategy {
	s := &SimpleStrategy{Ring: r, Factor: factor}
	s.table = placements(r, s.pick)
	return s
}

// pick keeps the first Factor distinct nodes of a walk.
func (s *SimpleStrategy) pick(walk []netsim.NodeID) []netsim.NodeID {
	n := s.Factor
	if n > len(walk) {
		n = len(walk)
	}
	return append([]netsim.NodeID(nil), walk[:n]...)
}

// AddNode implements Strategy: the new node's vnodes are spliced in and
// only the affected arc of the placement table — starts whose first-RF
// walk reaches a new vnode — is recomputed.
func (s *SimpleStrategy) AddNode(id netsim.NodeID) {
	positions := s.Ring.AddNode(id)
	if s.table == nil {
		return // walking fallback: nothing cached
	}
	// Splice placeholder entries so the table stays parallel to vnodes.
	for _, p := range positions {
		s.table = append(s.table, nil)
		copy(s.table[p+1:], s.table[p:])
		s.table[p] = nil
	}
	s.recomputeAffected(positions)
}

// RemoveNode implements Strategy: the node's vnodes are spliced out, the
// matching table entries dropped, and exactly the entries that listed
// the node as a replica are recomputed (an entry without the node walks
// the same surviving vnodes in the same order, so it cannot change).
func (s *SimpleStrategy) RemoveNode(id netsim.NodeID) {
	positions := s.Ring.RemoveNode(id)
	if s.table == nil {
		return
	}
	for k := len(positions) - 1; k >= 0; k-- {
		p := positions[k]
		s.table = append(s.table[:p], s.table[p+1:]...)
	}
	walk := make([]netsim.NodeID, 0, len(s.Ring.nodes))
	seen := make(map[netsim.NodeID]bool, len(s.Ring.nodes))
	for start, reps := range s.table {
		for _, rep := range reps {
			if rep == id {
				recomputeEntry(s.Ring, s.table, start, walk, seen, s.pick)
				break
			}
		}
	}
}

// recomputeAffected rebuilds the table entries whose walk could have
// changed.
func (s *SimpleStrategy) recomputeAffected(positions []int) {
	need := s.Factor
	affected := s.Ring.affectedStarts(positions, need)
	walk := make([]netsim.NodeID, 0, len(s.Ring.nodes))
	seen := make(map[netsim.NodeID]bool, len(s.Ring.nodes))
	for start, hit := range affected {
		if hit {
			recomputeEntry(s.Ring, s.table, start, walk, seen, s.pick)
		}
	}
}

// Replicas implements Strategy.
func (s *SimpleStrategy) Replicas(key string) []netsim.NodeID {
	return s.ReplicasAt(KeyToken(key))
}

// ReplicasAt implements Strategy.
func (s *SimpleStrategy) ReplicasAt(t Token) []netsim.NodeID {
	if s.table == nil {
		// Zero-constructed strategy (tests): fall back to walking.
		if len(s.Ring.vnodes) == 0 {
			return nil
		}
		out := make([]netsim.NodeID, 0, s.Factor)
		s.Ring.walkFrom(s.Ring.search(t), make(map[netsim.NodeID]bool, len(s.Ring.nodes)),
			func(n netsim.NodeID) bool {
				out = append(out, n)
				return len(out) < s.Factor
			})
		return out
	}
	return s.table[s.Ring.search(t)]
}

// Ranges implements Strategy.
func (s *SimpleStrategy) Ranges() []RangePlacement {
	return strategyRanges(s.Ring, s.ReplicasAt)
}

// RF implements Strategy.
func (s *SimpleStrategy) RF() int { return s.Factor }

// NetworkTopologyStrategy places a configured number of replicas in each
// datacenter: it walks the ring clockwise and takes nodes whose DC still
// has unfilled quota, Cassandra's multi-DC placement.
type NetworkTopologyStrategy struct {
	Ring    *Ring
	Topo    *netsim.Topology
	PerDC   map[string]int
	factor  int
	factSet bool
	table   [][]netsim.NodeID
}

// NewNetworkTopologyStrategy builds the strategy; perDC maps datacenter
// name to replica count.
func NewNetworkTopologyStrategy(r *Ring, topo *netsim.Topology, perDC map[string]int) *NetworkTopologyStrategy {
	total := 0
	for dc, n := range perDC {
		members := 0
		for _, id := range r.Nodes() {
			if topo.DCOf(id) == dc {
				members++
			}
		}
		if members < n {
			panic(fmt.Sprintf("ring: DC %q has fewer nodes than replicas (%d < %d)",
				dc, members, n))
		}
		total += n
	}
	s := &NetworkTopologyStrategy{Ring: r, Topo: topo, PerDC: perDC, factor: total, factSet: true}
	s.rebuild()
	return s
}

// rebuild recomputes the whole placement table (quota-constrained walks
// have no locally bounded affected arc, so membership changes rebuild).
func (s *NetworkTopologyStrategy) rebuild() {
	need := make(map[string]int, len(s.PerDC))
	s.table = placements(s.Ring, func(walk []netsim.NodeID) []netsim.NodeID {
		for dc, n := range s.PerDC {
			need[dc] = n
		}
		out := make([]netsim.NodeID, 0, s.factor)
		for _, n := range walk {
			if len(out) == s.factor {
				break
			}
			if dc := s.Topo.DCOf(n); need[dc] > 0 {
				need[dc]--
				out = append(out, n)
			}
		}
		return out
	})
}

// AddNode implements Strategy.
func (s *NetworkTopologyStrategy) AddNode(id netsim.NodeID) {
	s.Ring.AddNode(id)
	s.rebuild()
}

// RemoveNode implements Strategy. Removing a node that leaves a DC with
// fewer members than its replica quota panics, mirroring the
// constructor's under-provisioning check.
func (s *NetworkTopologyStrategy) RemoveNode(id netsim.NodeID) {
	dc := s.Topo.DCOf(id)
	members := 0
	for _, n := range s.Ring.Nodes() {
		if n != id && s.Topo.DCOf(n) == dc {
			members++
		}
	}
	if members < s.PerDC[dc] {
		panic(fmt.Sprintf("ring: removing %d leaves DC %q under-provisioned (%d < %d)",
			id, dc, members, s.PerDC[dc]))
	}
	s.Ring.RemoveNode(id)
	s.rebuild()
}

// Replicas implements Strategy.
func (s *NetworkTopologyStrategy) Replicas(key string) []netsim.NodeID {
	return s.table[s.Ring.search(KeyToken(key))]
}

// ReplicasAt implements Strategy.
func (s *NetworkTopologyStrategy) ReplicasAt(t Token) []netsim.NodeID {
	return s.table[s.Ring.search(t)]
}

// Ranges implements Strategy.
func (s *NetworkTopologyStrategy) Ranges() []RangePlacement {
	return strategyRanges(s.Ring, s.ReplicasAt)
}

// RF implements Strategy.
func (s *NetworkTopologyStrategy) RF() int { return s.factor }
