// Package ring implements the consistent-hash token ring and the replica
// placement strategies of the replicated store: SimpleStrategy (first RF
// distinct nodes clockwise) and NetworkTopologyStrategy (per-datacenter
// replica counts), mirroring Cassandra's partitioners.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// Token is a position on the hash ring.
type Token uint64

// KeyToken maps a key to its ring position (FNV-1a, uniform enough for
// simulation purposes and fully deterministic).
func KeyToken(key string) Token {
	h := fnv.New64a()
	h.Write([]byte(key))
	return Token(h.Sum64())
}

type vnode struct {
	token Token
	node  netsim.NodeID
}

// Ring is an immutable token ring with virtual nodes.
type Ring struct {
	vnodes []vnode
	nodes  []netsim.NodeID
}

// New builds a ring for the given nodes with vnodesPerNode virtual nodes
// each. Virtual node tokens are derived deterministically from the seed,
// so the same (nodes, vnodes, seed) triple always produces the same
// placement.
func New(nodes []netsim.NodeID, vnodesPerNode int, seed uint64) *Ring {
	if vnodesPerNode <= 0 {
		vnodesPerNode = 1
	}
	r := &Ring{nodes: append([]netsim.NodeID(nil), nodes...)}
	r.vnodes = make([]vnode, 0, len(nodes)*vnodesPerNode)
	for _, n := range nodes {
		for v := 0; v < vnodesPerNode; v++ {
			tok := Token(stats.FNVHash64(seed ^ stats.FNVHash64(uint64(n)<<20|uint64(v))))
			r.vnodes = append(r.vnodes, vnode{token: tok, node: n})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].token != r.vnodes[j].token {
			return r.vnodes[i].token < r.vnodes[j].token
		}
		return r.vnodes[i].node < r.vnodes[j].node
	})
	return r
}

// Nodes returns the ring members.
func (r *Ring) Nodes() []netsim.NodeID { return r.nodes }

// N reports the number of distinct nodes on the ring.
func (r *Ring) N() int { return len(r.nodes) }

// search returns the index of the first vnode with token ≥ t (wrapping).
func (r *Ring) search(t Token) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].token >= t })
	if i == len(r.vnodes) {
		return 0
	}
	return i
}

// Walk visits distinct nodes clockwise from the key's token until visit
// returns false or all nodes have been seen.
func (r *Ring) Walk(key string, visit func(netsim.NodeID) bool) {
	if len(r.vnodes) == 0 {
		return
	}
	start := r.search(KeyToken(key))
	seen := make(map[netsim.NodeID]bool, len(r.nodes))
	for i := 0; i < len(r.vnodes); i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[vn.node] {
			continue
		}
		seen[vn.node] = true
		if !visit(vn.node) {
			return
		}
		if len(seen) == len(r.nodes) {
			return
		}
	}
}

// Primary returns the first node clockwise from the key's token.
func (r *Ring) Primary(key string) netsim.NodeID {
	var p netsim.NodeID = -1
	r.Walk(key, func(n netsim.NodeID) bool { p = n; return false })
	return p
}

// Strategy chooses the replica set of a key. Implementations must be
// deterministic: the same key always maps to the same ordered replica
// list.
type Strategy interface {
	// Replicas returns the replica nodes of key in preference order
	// (the first entry is the primary).
	Replicas(key string) []netsim.NodeID
	// RF reports the total replication factor.
	RF() int
}

// SimpleStrategy places replicas on the first RF distinct nodes clockwise
// from the key's token, ignoring topology.
type SimpleStrategy struct {
	Ring   *Ring
	Factor int
}

// Replicas implements Strategy.
func (s SimpleStrategy) Replicas(key string) []netsim.NodeID {
	out := make([]netsim.NodeID, 0, s.Factor)
	s.Ring.Walk(key, func(n netsim.NodeID) bool {
		out = append(out, n)
		return len(out) < s.Factor
	})
	return out
}

// RF implements Strategy.
func (s SimpleStrategy) RF() int { return s.Factor }

// NetworkTopologyStrategy places a configured number of replicas in each
// datacenter: it walks the ring clockwise and takes nodes whose DC still
// has unfilled quota, Cassandra's multi-DC placement.
type NetworkTopologyStrategy struct {
	Ring    *Ring
	Topo    *netsim.Topology
	PerDC   map[string]int
	factor  int
	factSet bool
}

// NewNetworkTopologyStrategy builds the strategy; perDC maps datacenter
// name to replica count.
func NewNetworkTopologyStrategy(r *Ring, topo *netsim.Topology, perDC map[string]int) *NetworkTopologyStrategy {
	total := 0
	for dc, n := range perDC {
		if len(topo.NodesInDC(dc)) < n {
			panic(fmt.Sprintf("ring: DC %q has fewer nodes than replicas (%d < %d)",
				dc, len(topo.NodesInDC(dc)), n))
		}
		total += n
	}
	return &NetworkTopologyStrategy{Ring: r, Topo: topo, PerDC: perDC, factor: total, factSet: true}
}

// Replicas implements Strategy.
func (s *NetworkTopologyStrategy) Replicas(key string) []netsim.NodeID {
	need := make(map[string]int, len(s.PerDC))
	for dc, n := range s.PerDC {
		need[dc] = n
	}
	remaining := s.factor
	out := make([]netsim.NodeID, 0, s.factor)
	s.Ring.Walk(key, func(n netsim.NodeID) bool {
		dc := s.Topo.DCOf(n)
		if need[dc] > 0 {
			need[dc]--
			remaining--
			out = append(out, n)
		}
		return remaining > 0
	})
	return out
}

// RF implements Strategy.
func (s *NetworkTopologyStrategy) RF() int { return s.factor }
