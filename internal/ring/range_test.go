package ring

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
)

func TestRangeContains(t *testing.T) {
	plain := Range{Start: 100, End: 200}
	for tok, want := range map[Token]bool{100: false, 101: true, 200: true, 201: false, 0: false} {
		if got := plain.Contains(tok); got != want {
			t.Errorf("plain.Contains(%d) = %v, want %v", tok, got, want)
		}
	}
	if plain.Wraps() {
		t.Error("plain arc reported wrapping")
	}
	wrap := Range{Start: ^Token(0) - 10, End: 10}
	for tok, want := range map[Token]bool{^Token(0) - 10: false, ^Token(0) - 9: true, ^Token(0): true, 0: true, 10: true, 11: false, 500: false} {
		if got := wrap.Contains(tok); got != want {
			t.Errorf("wrap.Contains(%d) = %v, want %v", tok, got, want)
		}
	}
	if !wrap.Wraps() {
		t.Error("wrap arc not reported wrapping")
	}
	full := Range{Start: 42, End: 42}
	for _, tok := range []Token{0, 41, 42, 43, ^Token(0)} {
		if !full.Contains(tok) {
			t.Errorf("full ring excludes token %d", tok)
		}
	}
}

// TestRingRangesPartition pins that the per-node arcs partition the
// whole token space: probing boundaries, their neighbors and a spread
// of tokens, every token lands in exactly one node's range set.
func TestRingRangesPartition(t *testing.T) {
	r := New(nodeIDs(8), 16, 7)
	perNode := make(map[netsim.NodeID][]Range, 8)
	wraps := 0
	for _, id := range r.Nodes() {
		rs := r.Ranges(id)
		perNode[id] = rs
		for i, rg := range rs {
			if rg.Wraps() {
				wraps++
				if i != 0 {
					t.Errorf("node %d: wrapping arc at position %d, want first", id, i)
				}
			}
			if i > 0 && rs[i-1].End >= rg.End {
				t.Errorf("node %d: ranges not ascending by End", id)
			}
		}
	}
	if wraps != 1 {
		t.Fatalf("expected exactly one wrapping arc ring-wide, got %d", wraps)
	}
	var probes []Token
	for _, vn := range r.vnodes {
		probes = append(probes, vn.token-1, vn.token, vn.token+1)
	}
	for i := 0; i < 512; i++ {
		probes = append(probes, KeyToken(fmt.Sprintf("probe-%d", i)))
	}
	for _, tok := range probes {
		owners := 0
		var owner netsim.NodeID = -1
		for id, rs := range perNode {
			hit := false
			for _, rg := range rs {
				if rg.Contains(tok) {
					hit = true
				}
			}
			if RangesContain(rs, tok) != hit {
				t.Fatalf("RangesContain disagrees with linear scan at token %d", tok)
			}
			if hit {
				owners++
				owner = id
			}
		}
		if owners != 1 {
			t.Fatalf("token %d owned by %d nodes", tok, owners)
		}
		// The primary owner of the arc is the first node clockwise.
		if got := r.vnodes[r.search(tok)].node; got != owner {
			t.Fatalf("token %d: range owner %d != search owner %d", tok, owner, got)
		}
	}
}

// nakedStrategy forwards to an underlying strategy while hiding its
// concrete type, forcing Diff onto the generic all-arcs path.
type nakedStrategy struct{ Strategy }

// TestDiffFastPathMatchesGeneric pins that the SimpleStrategy
// affected-arc fast path and the generic full comparison produce the
// same movements for joins and removals.
func TestDiffFastPathMatchesGeneric(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 13} {
		for _, vn := range []int{1, 4, 16} {
			old := NewSimpleStrategy(New(nodeIDs(n), vn, 7), 3)
			join := NewSimpleStrategy(New(nodeIDs(n), vn, 7), 3)
			join.AddNode(netsim.NodeID(n))
			leave := NewSimpleStrategy(New(nodeIDs(n), vn, 7), 3)
			leave.RemoveNode(netsim.NodeID(n / 2))
			for name, next := range map[string]*SimpleStrategy{"join": join, "leave": leave} {
				fast := Diff(old, next)
				slow := Diff(nakedStrategy{old}, nakedStrategy{next})
				if len(fast) != len(slow) {
					t.Fatalf("n=%d vn=%d %s: fast %d movements, generic %d", n, vn, name, len(fast), len(slow))
				}
				for i := range fast {
					if fast[i].Range != slow[i].Range ||
						!nodesEqual(fast[i].Old, slow[i].Old) || !nodesEqual(fast[i].New, slow[i].New) {
						t.Fatalf("n=%d vn=%d %s: movement %d differs: %+v vs %+v", n, vn, name, i, fast[i], slow[i])
					}
				}
			}
		}
	}
}

// diffParity checks the tentpole contract on a key sample: a key's
// token is covered by Diff's ranges exactly when its replica list
// changes between the two placements.
func diffParity(t *testing.T, old, next Strategy, keys []string) {
	t.Helper()
	moves := Diff(old, next)
	ranges := make([]Range, 0, len(moves))
	for _, mv := range moves {
		if nodesEqual(mv.Old, mv.New) {
			t.Fatalf("movement %v with identical replica sets", mv.Range)
		}
		ranges = append(ranges, mv.Range)
	}
	for _, k := range keys {
		tok := KeyToken(k)
		changed := !nodesEqual(old.Replicas(k), next.Replicas(k))
		covered := RangesContain(ranges, tok)
		if changed != covered {
			t.Fatalf("key %s (token %d): changed=%v covered=%v", k, tok, changed, covered)
		}
		if covered {
			// The covering movement's Old/New must be the key's actual
			// before/after replica lists.
			for _, mv := range moves {
				if mv.Range.Contains(tok) {
					if !nodesEqual(mv.Old, old.Replicas(k)) || !nodesEqual(mv.New, next.Replicas(k)) {
						t.Fatalf("key %s: movement sets %v→%v, key sets %v→%v",
							k, mv.Old, mv.New, old.Replicas(k), next.Replicas(k))
					}
				}
			}
		}
	}
}

// TestDiffParitySimple is the range-vs-per-key parity property test for
// SimpleStrategy across joins, removals and multi-node changes.
func TestDiffParitySimple(t *testing.T) {
	keys := sampleKeys(2000)
	for _, seed := range []uint64{1, 7, 99} {
		for _, n := range []int{2, 4, 8} {
			build := func(ids []netsim.NodeID) Strategy {
				return NewSimpleStrategy(New(ids, 16, seed), 3)
			}
			base := nodeIDs(n)
			diffParity(t, build(base), build(append(nodeIDs(n), netsim.NodeID(n))), keys)       // join
			diffParity(t, build(base), build(base[1:]), keys)                                   // leave
			diffParity(t, build(base), build(append(nodeIDs(n)[1:], netsim.NodeID(n+3))), keys) // swap (generic path)
		}
	}
}

// TestDiffParityNetworkTopology runs the same parity property over the
// multi-DC strategy (always the generic Diff path).
func TestDiffParityNetworkTopology(t *testing.T) {
	topo := netsim.NewTopology()
	dc1 := topo.AddDC("dc1", "r", 5)
	dc2 := topo.AddDC("dc2", "r", 5)
	keys := sampleKeys(1500)
	build := func(members []netsim.NodeID) Strategy {
		return NewNetworkTopologyStrategy(New(members, 16, 9), topo, map[string]int{"dc1": 2, "dc2": 2})
	}
	base := append(append([]netsim.NodeID(nil), dc1[:3]...), dc2[:3]...)
	joined := append(append([]netsim.NodeID(nil), base...), dc1[3])
	left := append(append([]netsim.NodeID(nil), dc1[:3]...), dc2[1:3]...)
	diffParity(t, build(base), build(joined), keys)
	diffParity(t, build(base), build(left), keys)
}

// TestDiffEmpty pins that an unchanged membership yields no movements.
func TestDiffEmpty(t *testing.T) {
	a := NewSimpleStrategy(New(nodeIDs(5), 16, 7), 3)
	b := NewSimpleStrategy(New(nodeIDs(5), 16, 7), 3)
	if moves := Diff(a, b); len(moves) != 0 {
		t.Fatalf("identical placements produced %d movements", len(moves))
	}
	if moves := Diff(nakedStrategy{a}, nakedStrategy{b}); len(moves) != 0 {
		t.Fatal("generic path produced movements for identical placements")
	}
}

// TestDiffWrapArc pins that a movement crossing token 0 is emitted as a
// wrapping range, ordered first, and covers tokens on both sides of 0.
func TestDiffWrapArc(t *testing.T) {
	// Find a join whose movement set includes the wrap arc: the arc
	// ending at the lowest boundary changes owners for some (seed, n).
	for seed := uint64(1); seed < 64; seed++ {
		old := NewSimpleStrategy(New(nodeIDs(4), 8, seed), 2)
		next := NewSimpleStrategy(New(nodeIDs(4), 8, seed), 2)
		next.AddNode(4)
		moves := Diff(old, next)
		if len(moves) == 0 || !moves[0].Range.Wraps() {
			continue
		}
		wrap := moves[0].Range
		for i, mv := range moves {
			if i > 0 && mv.Range.Wraps() {
				t.Fatalf("seed %d: second wrapping movement at %d", seed, i)
			}
		}
		if !wrap.Contains(0) || !wrap.Contains(^Token(0)) {
			t.Fatalf("seed %d: wrap arc %+v misses a side of token 0", seed, wrap)
		}
		ranges := make([]Range, 0, len(moves))
		for _, mv := range moves {
			ranges = append(ranges, mv.Range)
		}
		if !RangesContain(ranges, 0) {
			t.Fatalf("seed %d: RangesContain misses token 0 inside wrap arc", seed)
		}
		return
	}
	t.Fatal("no seed produced a wrapping movement; test construction broken")
}

// TestMovementGainedLost pins the set-difference helpers.
func TestMovementGainedLost(t *testing.T) {
	mv := Movement{Old: []netsim.NodeID{1, 2, 3}, New: []netsim.NodeID{4, 2, 1}}
	if g := mv.Gained(); len(g) != 1 || g[0] != 4 {
		t.Errorf("Gained = %v", g)
	}
	if l := mv.Lost(); len(l) != 1 || l[0] != 3 {
		t.Errorf("Lost = %v", l)
	}
}
