package ring

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
)

// sampleKeys returns a deterministic key set for ownership measurements.
func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("rebalance-key-%06d", i)
	}
	return keys
}

// TestAddNodeMatchesFreshBuild pins the incremental-equals-fresh
// property: a ring grown via AddNode is bit-identical to one built by
// New over the final member list, and the incrementally maintained
// placement table answers exactly like a freshly built strategy.
func TestAddNodeMatchesFreshBuild(t *testing.T) {
	const vn, seed, rf = 16, 7, 3
	grown := NewSimpleStrategy(New(nodeIDs(6), vn, seed), rf)
	grown.AddNode(6)
	grown.AddNode(7)
	grown.RemoveNode(2)

	want := []netsim.NodeID{0, 1, 3, 4, 5, 6, 7}
	fresh := NewSimpleStrategy(New(want, vn, seed), rf)

	if got := grown.Ring.VNodes(); got != fresh.Ring.VNodes() {
		t.Fatalf("vnode count %d != fresh %d", got, fresh.Ring.VNodes())
	}
	for i := range grown.Ring.vnodes {
		if grown.Ring.vnodes[i] != fresh.Ring.vnodes[i] {
			t.Fatalf("vnode %d: %+v != fresh %+v", i, grown.Ring.vnodes[i], fresh.Ring.vnodes[i])
		}
	}
	for _, k := range sampleKeys(2000) {
		a, b := grown.Replicas(k), fresh.Replicas(k)
		if len(a) != len(b) {
			t.Fatalf("key %s: %v != fresh %v", k, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %s: %v != fresh %v", k, a, b)
			}
		}
	}
}

// TestRebalancedTablesMatchWalk verifies, after every membership change,
// that each strategy's placement table agrees entry-for-entry with a
// fresh ring walk — the incremental recompute is a pure cache update.
func TestRebalancedTablesMatchWalk(t *testing.T) {
	s := NewSimpleStrategy(New(nodeIDs(8), 32, 11), 3)
	check := func(step string) {
		t.Helper()
		want := placements(s.Ring, s.pick)
		if len(want) != len(s.table) {
			t.Fatalf("%s: table has %d entries, walk %d", step, len(s.table), len(want))
		}
		for i := range want {
			if len(want[i]) != len(s.table[i]) {
				t.Fatalf("%s: entry %d: table %v vs walk %v", step, i, s.table[i], want[i])
			}
			for j := range want[i] {
				if want[i][j] != s.table[i][j] {
					t.Fatalf("%s: entry %d: table %v vs walk %v", step, i, s.table[i], want[i])
				}
			}
		}
	}
	ops := []struct {
		name   string
		mutate func()
	}{
		{"add-8", func() { s.AddNode(8) }},
		{"add-9", func() { s.AddNode(9) }},
		{"remove-0", func() { s.RemoveNode(0) }},
		{"remove-9", func() { s.RemoveNode(9) }},
		{"add-10", func() { s.AddNode(10) }},
		{"remove-3", func() { s.RemoveNode(3) }},
	}
	check("initial")
	for _, op := range ops {
		op.mutate()
		check(op.name)
	}
}

// TestAddNodeOwnershipDelta pins consistent hashing's rebalance bound:
// adding one node to an N-node ring moves only about 1/(N+1) of primary
// ownership (within vnode-variance slack), and removing it again
// restores the original placement exactly.
func TestAddNodeOwnershipDelta(t *testing.T) {
	const n = 8
	s := NewSimpleStrategy(New(nodeIDs(n), 64, 3), 3)
	keys := sampleKeys(20000)

	before := make([]netsim.NodeID, len(keys))
	for i, k := range keys {
		before[i] = s.Replicas(k)[0]
	}

	s.AddNode(n)
	moved := 0
	for i, k := range keys {
		now := s.Replicas(k)[0]
		if now != before[i] {
			moved++
			if now != n {
				// Primary ownership may only move TO the new node; any
				// other movement breaks minimal rebalancing.
				t.Fatalf("key %s moved %d -> %d (not the new node)", k, before[i], now)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	ideal := 1.0 / float64(n+1)
	if frac > ideal*2 {
		t.Errorf("add moved %.1f%% of primaries, want ≈%.1f%% (≤2× slack)", 100*frac, 100*ideal)
	}
	if frac < ideal/3 {
		t.Errorf("add moved only %.1f%% of primaries, want ≈%.1f%%", 100*frac, 100*ideal)
	}

	s.RemoveNode(n)
	for i, k := range keys {
		if got := s.Replicas(k)[0]; got != before[i] {
			t.Fatalf("key %s: primary %d after add+remove, originally %d", k, got, before[i])
		}
	}
}

// TestRebalanceDeterminism pins that the same membership-change sequence
// on the same seed produces identical placement, run to run.
func TestRebalanceDeterminism(t *testing.T) {
	build := func() *SimpleStrategy {
		s := NewSimpleStrategy(New(nodeIDs(5), 16, 42), 3)
		s.AddNode(5)
		s.RemoveNode(1)
		s.AddNode(6)
		return s
	}
	a, b := build(), build()
	for _, k := range sampleKeys(1000) {
		ra, rb := a.Replicas(k), b.Replicas(k)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("key %s: %v vs %v across identical runs", k, ra, rb)
			}
		}
	}
}

// TestNetworkTopologyRebalance verifies the multi-DC strategy maintains
// per-DC quotas across joins and removals.
func TestNetworkTopologyRebalance(t *testing.T) {
	topo := netsim.NewTopology()
	ids1 := topo.AddDC("dc1", "r", 4)
	topo.AddDC("dc2", "r", 4)
	extra := topo.AddNode("dc1-extra", "dc1", "r")

	members := append(append([]netsim.NodeID(nil), ids1[:3]...), topo.NodesInDC("dc2")[:3]...)
	r := New(members, 16, 9)
	s := NewNetworkTopologyStrategy(r, topo, map[string]int{"dc1": 2, "dc2": 2})

	checkQuotas := func(step string) {
		t.Helper()
		for _, k := range sampleKeys(500) {
			perDC := map[string]int{}
			for _, n := range s.Replicas(k) {
				perDC[topo.DCOf(n)]++
			}
			if perDC["dc1"] != 2 || perDC["dc2"] != 2 {
				t.Fatalf("%s: quotas %v for key %s", step, perDC, k)
			}
		}
	}
	checkQuotas("initial")
	s.AddNode(extra)
	checkQuotas("after add")
	s.RemoveNode(ids1[0])
	checkQuotas("after remove")
}

// TestNetworkTopologyRemovePanicsWhenThin pins the under-provisioning
// guard on removal.
func TestNetworkTopologyRemovePanicsWhenThin(t *testing.T) {
	topo := netsim.NewTopology()
	ids := topo.AddDC("dc1", "r", 2)
	r := New(ids, 8, 1)
	s := NewNetworkTopologyStrategy(r, topo, map[string]int{"dc1": 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic removing below DC quota")
		}
	}()
	s.RemoveNode(ids[0])
}

// TestAddExistingAndRemoveMissingPanic pins the membership contract.
func TestAddExistingAndRemoveMissingPanic(t *testing.T) {
	r := New(nodeIDs(3), 8, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddNode of a member should panic")
			}
		}()
		r.AddNode(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RemoveNode of a non-member should panic")
			}
		}()
		r.RemoveNode(9)
	}()
}
