// Token ranges: first-class arcs of the hash ring. Ownership and
// membership-change deltas are expressed as ranges so that join and
// decommission streams (and any future repair) can address exactly the
// moved fraction of the keyspace instead of filtering a full store walk
// per key.
//
// Ordering invariant: every range list produced here — Ranges, Diff,
// RangePlacement lists — is sorted ascending by end token with the
// single wrapping arc (if any) first. Consumers iterate ranges in that
// sorted token order; iterating a map of ranges would leak map order
// into stream order and break transcript determinism (repolint's
// determinism analyzer flags that shape).
package ring

import (
	"sort"

	"repro/internal/netsim"
)

// Range is one arc of the token ring: the half-open interval
// (Start, End] in clockwise token order. End < Start means the arc
// wraps through token 0; Start == End covers the whole ring (the only
// arc of a single-vnode ring).
type Range struct {
	Start, End Token
}

// Contains reports whether t lies on the arc.
func (r Range) Contains(t Token) bool {
	if r.Start < r.End {
		return t > r.Start && t <= r.End
	}
	// Wrapping (or full-ring) arc: past Start, or up to End after 0.
	return t > r.Start || t <= r.End
}

// Wraps reports whether the arc crosses token 0 (the full-ring arc
// counts as wrapping).
func (r Range) Wraps() bool { return r.Start >= r.End }

// RangesContain reports whether t lies in any of the ranges. The list
// must follow the package ordering invariant: ascending by End,
// mutually disjoint, at most one wrapping arc and that one first — the
// shape Ranges and Diff produce — so a binary search on End plus a
// wrap check on the first element decides membership.
func RangesContain(rs []Range, t Token) bool {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].End >= t })
	if i < len(rs) && rs[i].Contains(t) {
		return true
	}
	return len(rs) > 0 && rs[0].Wraps() && rs[0].Contains(t)
}

// arcs returns the distinct arc boundaries of the ring ascending, with
// the primary owner of each boundary's arc. Vnodes tied on a token
// collapse into one boundary owned by the lowest node id (vnodeLess
// order): the later duplicates own empty arcs, which are no arcs.
func (r *Ring) arcs() (bounds []Token, owners []netsim.NodeID) {
	bounds = make([]Token, 0, len(r.vnodes))
	owners = make([]netsim.NodeID, 0, len(r.vnodes))
	for i := range r.vnodes {
		if i > 0 && r.vnodes[i].token == r.vnodes[i-1].token {
			continue
		}
		bounds = append(bounds, r.vnodes[i].token)
		owners = append(owners, r.vnodes[i].node)
	}
	return bounds, owners
}

// Ranges returns the arcs primarily owned by id: for each of id's
// distinct vnode tokens t, the arc from the previous distinct boundary
// (exclusive) to t (inclusive). Sorted ascending by End, wrapping arc
// first; a single-vnode ring yields the full-ring arc Start == End.
func (r *Ring) Ranges(id netsim.NodeID) []Range {
	bounds, owners := r.arcs()
	var out []Range
	for j, tok := range bounds {
		if owners[j] != id {
			continue
		}
		prev := bounds[(j-1+len(bounds))%len(bounds)]
		out = append(out, Range{Start: prev, End: tok})
	}
	return out
}

// RangePlacement is one arc with its replica set.
type RangePlacement struct {
	Range    Range
	Replicas []netsim.NodeID
}

// strategyRanges decomposes a ring into its arcs and attaches each
// arc's replica set via at (which must answer for any token on the
// arc; the end token is the representative).
func strategyRanges(r *Ring, at func(Token) []netsim.NodeID) []RangePlacement {
	bounds, _ := r.arcs()
	out := make([]RangePlacement, 0, len(bounds))
	for j, tok := range bounds {
		prev := bounds[(j-1+len(bounds))%len(bounds)]
		out = append(out, RangePlacement{
			Range:    Range{Start: prev, End: tok},
			Replicas: at(tok),
		})
	}
	return out
}

// Movement is one arc whose replica set changes under a membership
// change: the keys on Range move from the Old replica set to the New
// one. Old and New are in preference order; callers must not mutate
// them (they alias placement tables).
type Movement struct {
	Range Range
	Old   []netsim.NodeID
	New   []netsim.NodeID
}

// Gained returns the nodes that acquire the arc (in New's preference
// order); Lost returns the nodes that give it up.
func (m Movement) Gained() []netsim.NodeID { return nodesMinus(m.New, m.Old) }

// Lost returns the nodes that stop replicating the arc.
func (m Movement) Lost() []netsim.NodeID { return nodesMinus(m.Old, m.New) }

func nodesMinus(a, b []netsim.NodeID) []netsim.NodeID {
	var out []netsim.NodeID
	for _, n := range a {
		if !nodesHave(b, n) {
			out = append(out, n)
		}
	}
	return out
}

func nodesHave(ns []netsim.NodeID, id netsim.NodeID) bool {
	for _, n := range ns {
		if n == id {
			return true
		}
	}
	return false
}

func nodesEqual(a, b []netsim.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns exactly the movements the membership change from old to
// next implies: the arcs whose replica sets differ, each with its
// before and after sets. The two rings' boundary tokens are merged, so
// every returned sub-arc has a single replica set under each placement
// and Old/New describe all of its keys at once. Adjacent sub-arcs with
// identical movements coalesce. Output follows the package ordering
// invariant (ascending by End, wrapping arc first).
//
// When both strategies are SimpleStrategy and the change is a single
// node joining or leaving, only the affected arc — starts whose
// first-RF clockwise walk reaches the changed node's vnodes — is
// compared; everything outside it is provably unchanged.
func Diff(old, next Strategy) []Movement {
	op, np := old.Ranges(), next.Ranges()
	// A side with no ring contributes no boundaries: every arc of the
	// other side moves wholesale.
	if len(op) == 0 && len(np) == 0 {
		return nil
	}
	if len(op) == 0 {
		out := make([]Movement, 0, len(np))
		for _, rp := range np {
			out = append(out, Movement{Range: rp.Range, New: rp.Replicas})
		}
		return out
	}
	if len(np) == 0 {
		out := make([]Movement, 0, len(op))
		for _, rp := range op {
			out = append(out, Movement{Range: rp.Range, Old: rp.Replicas})
		}
		return out
	}

	bounds := make([]Token, 0, len(op)+len(np))
	for _, rp := range op {
		bounds = append(bounds, rp.Range.End)
	}
	for _, rp := range np {
		bounds = append(bounds, rp.Range.End)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	dedup := bounds[:0]
	for i, t := range bounds {
		if i == 0 || t != bounds[i-1] {
			dedup = append(dedup, t)
		}
	}
	bounds = dedup

	unaffected := diffMask(old, next)
	var out []Movement
	for j, tok := range bounds {
		if unaffected != nil && unaffected(tok) {
			continue
		}
		co, cn := old.ReplicasAt(tok), next.ReplicasAt(tok)
		if nodesEqual(co, cn) {
			continue
		}
		prev := bounds[(j-1+len(bounds))%len(bounds)]
		mv := Movement{Range: Range{Start: prev, End: tok}, Old: co, New: cn}
		if n := len(out); n > 0 && out[n-1].Range.End == mv.Range.Start &&
			nodesEqual(out[n-1].Old, mv.Old) && nodesEqual(out[n-1].New, mv.New) {
			out[n-1].Range.End = mv.Range.End
			continue
		}
		out = append(out, mv)
	}
	return out
}

// diffMask returns a predicate reporting tokens provably unchanged by
// the membership delta, or nil when every sub-arc must be compared.
// The fast path applies to a SimpleStrategy pair differing by exactly
// one node: a start's first-RF walk that completes before reaching any
// of the changed node's vnodes visits identical vnodes under both
// rings, so its replica list cannot differ — precisely the complement
// of affectedStarts, evaluated on the ring that contains the node.
func diffMask(old, next Strategy) func(Token) bool {
	so, ok := old.(*SimpleStrategy)
	if !ok {
		return nil
	}
	sn, ok := next.(*SimpleStrategy)
	if !ok || so.Factor != sn.Factor {
		return nil
	}
	added := nodesMinus(sn.Ring.nodes, so.Ring.nodes)
	removed := nodesMinus(so.Ring.nodes, sn.Ring.nodes)
	if len(added)+len(removed) != 1 {
		return nil
	}
	host := sn.Ring
	id := netsim.NodeID(-1)
	if len(added) == 1 {
		id = added[0]
	} else {
		host, id = so.Ring, removed[0]
	}
	var positions []int
	for i := range host.vnodes {
		if host.vnodes[i].node == id {
			positions = append(positions, i)
		}
	}
	mark := host.affectedStarts(positions, sn.Factor)
	return func(t Token) bool { return !mark[host.search(t)] }
}
