package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBillInstancesHourlyRounding(t *testing.T) {
	p := EC2East2013()
	u := Usage{Nodes: 10, Duration: 90 * time.Minute}
	b := p.BillFor(u)
	// 90 min rounds to 2 hours: 10 × 2 × $0.24.
	if math.Abs(b.Instances-4.80) > 1e-9 {
		t.Errorf("instances = %f, want 4.80", b.Instances)
	}
}

func TestBillPerSecondAndSmooth(t *testing.T) {
	u := Usage{Nodes: 10, Duration: 90 * time.Minute}
	ps := EC2East2013().PerSecond().BillFor(u)
	want := 10 * 1.5 * 0.24
	if math.Abs(ps.Instances-want) > 0.001 {
		t.Errorf("per-second instances = %f, want %f", ps.Instances, want)
	}
	sm := EC2East2013().Smooth().BillFor(u)
	if math.Abs(sm.Instances-want) > 1e-9 {
		t.Errorf("smooth instances = %f, want %f", sm.Instances, want)
	}
}

func TestBillStorageProrated(t *testing.T) {
	p := EC2East2013().Smooth()
	u := Usage{Nodes: 1, Duration: 730 * time.Hour, StoredBytes: 100 * GB}
	b := p.BillFor(u)
	// A full month of 100 GB at $0.10/GB-month.
	if math.Abs(b.Storage-10.0) > 1e-6 {
		t.Errorf("storage = %f, want 10.0", b.Storage)
	}
}

func TestBillNetworkTiers(t *testing.T) {
	p := EC2East2013()
	u := Usage{InterDCBytes: 100 * GB, InterRegionBytes: 50 * GB}
	b := p.BillFor(u)
	if math.Abs(b.Network-(100*0.01+50*0.02)) > 1e-9 {
		t.Errorf("network = %f", b.Network)
	}
}

func TestBillTotalIsSumProperty(t *testing.T) {
	p := EC2East2013()
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(nodes uint8, mins uint16, gb, dcGB, regGB uint16) bool {
		u := Usage{
			Nodes:            int(nodes),
			Duration:         time.Duration(mins) * time.Minute,
			StoredBytes:      float64(gb) * GB,
			InterDCBytes:     float64(dcGB) * GB,
			InterRegionBytes: float64(regGB) * GB,
		}
		b := p.BillFor(u)
		if b.Instances < 0 || b.Storage < 0 || b.Network < 0 {
			return false
		}
		return math.Abs(b.Total()-(b.Instances+b.Storage+b.Network)) < 1e-9
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestBillMonotoneInDurationProperty(t *testing.T) {
	p := EC2East2013().PerSecond()
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(minsA, minsB uint16) bool {
		if minsA > minsB {
			minsA, minsB = minsB, minsA
		}
		ua := Usage{Nodes: 5, Duration: time.Duration(minsA) * time.Minute, StoredBytes: GB}
		ub := Usage{Nodes: 5, Duration: time.Duration(minsB) * time.Minute, StoredBytes: GB}
		return p.BillFor(ua).Total() <= p.BillFor(ub).Total()+1e-9
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPerMillionOps(t *testing.T) {
	b := Bill{Instances: 2, Storage: 1, Network: 1}
	if got := PerMillionOps(b, 2_000_000); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("per-M = %f", got)
	}
	if PerMillionOps(b, 0) != 0 {
		t.Error("zero ops must price zero")
	}
}

func TestZeroUsageZeroBill(t *testing.T) {
	if total := EC2East2013().BillFor(Usage{}).Total(); total != 0 {
		t.Errorf("empty usage billed %f", total)
	}
}

func TestBillString(t *testing.T) {
	s := Bill{Instances: 1, Storage: 0.5, Network: 0.25}.String()
	if !strings.Contains(s, "1.75") {
		t.Errorf("bill string: %s", s)
	}
}

func TestWithStorageIOPricesDurability(t *testing.T) {
	base := EC2East2013()
	io := base.WithStorageIO()
	u := Usage{
		WALBytes:       10 * GB,
		Fsyncs:         2_000_000,
		CompactedBytes: 4 * GB,
	}
	// Base catalog: durability traffic is free.
	if got := base.BillFor(u); got.IO != 0 || got.Total() != 0 {
		t.Errorf("base catalog priced I/O: %+v", got)
	}
	b := io.BillFor(u)
	want := 10*0.05 + 2*0.10 + 4*0.05
	if math.Abs(b.IO-want) > 1e-9 {
		t.Errorf("io = %f, want %f", b.IO, want)
	}
	if math.Abs(b.Total()-want) > 1e-9 {
		t.Errorf("total = %f, want io-only %f", b.Total(), want)
	}
	if !strings.Contains(io.Name, "+io") {
		t.Errorf("catalog name %q missing +io", io.Name)
	}
}

func TestBillStringRendersIOOnlyWhenNonzero(t *testing.T) {
	plain := Bill{Instances: 1, Storage: 0.5, Network: 0.25}.String()
	if strings.Contains(plain, "io") {
		t.Errorf("zero-I/O bill rendered an io part: %s", plain)
	}
	priced := Bill{Instances: 1, IO: 0.125}.String()
	if !strings.Contains(priced, "io $0.1250") {
		t.Errorf("priced bill missing io part: %s", priced)
	}
	if !strings.Contains(priced, "1.1250") {
		t.Errorf("io part not in total: %s", priced)
	}
}

func TestZeroIOPricesLeaveBillsUnchangedProperty(t *testing.T) {
	// The base catalogs keep every pre-existing bill byte-identical no
	// matter how much durability I/O the usage records.
	p := EC2East2013()
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(nodes uint8, mins uint16, walGB, fsyncsM, compGB uint16) bool {
		clean := Usage{Nodes: int(nodes), Duration: time.Duration(mins) * time.Minute, StoredBytes: GB}
		dirty := clean
		dirty.WALBytes = float64(walGB) * GB
		dirty.Fsyncs = float64(fsyncsM) * 1e6
		dirty.CompactedBytes = float64(compGB) * GB
		a, b := p.BillFor(clean), p.BillFor(dirty)
		return a == b && a.String() == b.String()
	}, cfg); err != nil {
		t.Error(err)
	}
}
