// Package cost implements the monetary-cost substrate of the paper's
// §III-B: a cloud pricing catalog and the decomposition of a storage
// deployment's bill into the three parts the paper identifies — VM
// instances, storage, and network — computed from metered resource usage.
package cost

import (
	"fmt"
	"math"
	"time"
)

// GB is one gigabyte in bytes.
const GB = 1 << 30

// HoursPerMonth converts GB-month storage prices to per-hour proration
// (730 h, the cloud-billing convention).
const HoursPerMonth = 730.0

// Pricing is a cloud price catalog. All prices in dollars.
type Pricing struct {
	Name string

	// InstanceHour is the on-demand price of one storage VM per hour.
	InstanceHour float64
	// BillingGranularity rounds instance time up per node (2013-era EC2
	// billed whole hours; set time.Second for modern per-second billing).
	BillingGranularity time.Duration

	// StorageGBMonth is the block-storage price per GB-month, prorated
	// by run duration.
	StorageGBMonth float64

	// InterDCPerGB prices traffic between availability zones of one
	// region; InterRegionPerGB prices WAN traffic between regions.
	InterDCPerGB     float64
	InterRegionPerGB float64

	// Storage-I/O prices. Zero in the base catalogs — every pre-existing
	// bill is unchanged until a catalog switches them on (WithStorageIO).
	// WALPerGB prices bytes appended to write-ahead logs, FsyncPerMillion
	// prices fsync calls as provisioned-IOPS requests, and
	// CompactionPerGB prices the bytes compaction rewrites.
	WALPerGB        float64
	FsyncPerMillion float64
	CompactionPerGB float64
}

// EC2East2013 is the paper-era us-east-1 catalog: m1.large on-demand at
// $0.24/h, EBS standard at $0.10/GB-month, $0.01/GB between availability
// zones and $0.02/GB between regions.
func EC2East2013() Pricing {
	return Pricing{
		Name:               "ec2-us-east-1-2013",
		InstanceHour:       0.24,
		BillingGranularity: time.Hour,
		StorageGBMonth:     0.10,
		InterDCPerGB:       0.01,
		InterRegionPerGB:   0.02,
	}
}

// PerSecond returns a copy of p with per-second instance billing, the
// ablation knob for billing granularity.
func (p Pricing) PerSecond() Pricing {
	p.BillingGranularity = time.Second
	p.Name += "+per-second"
	return p
}

// WithStorageIO returns a copy of p with the storage-I/O prices
// switched on, EBS-standard-flavoured for the paper era: $0.05 per GB
// written to the WAL, $0.10 per million I/O requests (fsyncs), and
// $0.05 per GB rewritten by compaction. With these at zero (the
// default) durability traffic is free and Mem and LSM deployments price
// identically; switched on, the tuner and the provisioner can weigh
// consistency levels and engines against real disk spend.
func (p Pricing) WithStorageIO() Pricing {
	p.WALPerGB = 0.05
	p.FsyncPerMillion = 0.10
	p.CompactionPerGB = 0.05
	p.Name += "+io"
	return p
}

// Smooth returns a copy of p with exact (unrounded) instance billing;
// normalized per-operation comparisons use it so short scaled runs are
// not quantized by the billing unit.
func (p Pricing) Smooth() Pricing {
	p.BillingGranularity = time.Nanosecond
	p.Name += "+smooth"
	return p
}

// Usage is the metered consumption a bill is computed from.
type Usage struct {
	Nodes            int
	Duration         time.Duration
	StoredBytes      float64 // logical dataset size resident on disk (replicas included)
	InterDCBytes     float64
	InterRegionBytes float64

	// Storage-I/O volumes (kv.Usage's durability counters). Priced only
	// when the catalog's I/O prices are nonzero.
	WALBytes       float64 // bytes appended to write-ahead logs
	Fsyncs         float64 // fsync calls (provisioned-IOPS requests)
	CompactedBytes float64 // bytes rewritten by compaction
}

// Bill is the paper's three-part decomposition, extended with the
// storage-I/O part (zero under catalogs that do not price I/O).
type Bill struct {
	Instances float64
	Storage   float64
	Network   float64
	IO        float64
}

// Total sums the parts.
func (b Bill) Total() float64 { return b.Instances + b.Storage + b.Network + b.IO }

// String renders the decomposition. The I/O part appears only when
// nonzero, so catalogs without I/O pricing render exactly as before.
func (b Bill) String() string {
	s := fmt.Sprintf("$%.4f (vm $%.4f + storage $%.4f + network $%.4f",
		b.Total(), b.Instances, b.Storage, b.Network)
	if b.IO != 0 {
		s += fmt.Sprintf(" + io $%.4f", b.IO)
	}
	return s + ")"
}

// BillFor prices a usage record under the catalog.
func (p Pricing) BillFor(u Usage) Bill {
	var b Bill
	if u.Nodes > 0 && u.Duration > 0 {
		g := p.BillingGranularity
		if g <= 0 {
			g = time.Hour
		}
		units := math.Ceil(float64(u.Duration) / float64(g))
		b.Instances = float64(u.Nodes) * units * p.InstanceHour * (float64(g) / float64(time.Hour))
	}
	b.Storage = (u.StoredBytes / GB) * p.StorageGBMonth * (u.Duration.Hours() / HoursPerMonth)
	b.Network = (u.InterDCBytes/GB)*p.InterDCPerGB + (u.InterRegionBytes/GB)*p.InterRegionPerGB
	b.IO = (u.WALBytes/GB)*p.WALPerGB + (u.Fsyncs/1e6)*p.FsyncPerMillion +
		(u.CompactedBytes/GB)*p.CompactionPerGB
	return b
}

// PerMillionOps normalizes a bill to dollars per million operations, the
// unit Bismar compares levels in (runs at different levels take different
// wall-clock times, so absolute bills are not comparable).
func PerMillionOps(b Bill, ops uint64) float64 {
	if ops == 0 {
		return 0
	}
	return b.Total() / float64(ops) * 1e6
}
