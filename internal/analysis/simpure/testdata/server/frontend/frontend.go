// Package frontend sits in server scope: the TCP front end owns real
// sockets and per-connection goroutines by design, so none of the
// simpure rules bind here.
package frontend

import (
	"net"
	"sync"
)

type Frontend struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	conns map[net.Conn]struct{}
}

func (f *Frontend) Serve(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		f.conns[c] = struct{}{}
		f.mu.Unlock()
		f.wg.Add(1)
		go f.handle(c)
	}
}

func (f *Frontend) handle(c net.Conn) {
	defer f.wg.Done()
	c.Close()
}
