// Package codec pins the scope boundary from the other side: "wire" is
// NOT an exempt segment. Codecs are pure byte manipulation, so a codec
// package reaching for sockets or goroutines is still a finding.
package codec

import "net" // want `import of net in deterministic sim package`

func Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

func Encode(dst []byte, v uint32) []byte {
	go func() {}() // want `go statement in deterministic sim package`
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
