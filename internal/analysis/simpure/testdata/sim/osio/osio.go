// Package osio exercises the real-file-I/O rule: files, directories and
// processes touch the machine; reading configuration does not.
package osio

import "os"

func persist(path string, b []byte) {
	_ = os.WriteFile(path, b, 0o644) // want `os\.WriteFile in deterministic sim package`
	f, err := os.Open(path)          // want `os\.Open in deterministic sim package`
	if err == nil {
		_ = f
	}
	_ = os.Remove(path) // want `os\.Remove in deterministic sim package`
}

// Environment reads are deterministic per process and stay legal.
func workers() string { return os.Getenv("REPRO_WORKERS") }
