// Package syncuse exercises the sync rule: the single-goroutine sim
// needs no locking, and only sync.Pool is blessed.
package syncuse

import (
	"sync"
	"sync/atomic"
)

var mu sync.Mutex // want `sync\.Mutex in deterministic sim package`

var count atomic.Int64 // want `sync/atomic\.Int64 in deterministic sim package`

func bump() {
	mu.Lock()    // want `sync\.Lock in deterministic sim package`
	count.Add(1) // want `sync/atomic\.Add in deterministic sim package`
	mu.Unlock()  // want `sync\.Unlock in deterministic sim package`
}

type box struct{ n int }

var boxes = sync.Pool{New: func() any { return new(box) }}

// sync.Pool and its methods are the blessed exception (message pools).
func roundTrip() {
	b := boxes.Get().(*box)
	b.n++
	boxes.Put(b)
}
