package netimp

import "os/exec" // want `import of os/exec in deterministic sim package`

var _ = exec.Command
