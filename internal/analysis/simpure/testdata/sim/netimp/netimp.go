// Package netimp exercises the real-I/O import rule.
package netimp

import "net" // want `import of net in deterministic sim package`

var _ = net.JoinHostPort
