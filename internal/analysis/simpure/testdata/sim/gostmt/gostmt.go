// Package gostmt exercises the goroutine rule: under the discrete-event
// engine there is exactly one goroutine.
package gostmt

func fanOut(fs []func()) {
	for _, f := range fs {
		go f() // want `go statement in deterministic sim package`
	}
}

// Plain calls are, of course, fine.
func inline(fs []func()) {
	for _, f := range fs {
		f()
	}
}
