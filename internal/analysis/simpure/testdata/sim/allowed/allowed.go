// Package allowed exercises directive suppression for simpure: shared
// sim/live plumbing may justify a lock, and the directive documents why.
package allowed

import "sync"

type futureLike struct {
	mu sync.Mutex //repolint:allow simpure resolved from live-engine goroutines; the sim path never contends
}

func (f *futureLike) poke() {
	//repolint:allow simpure resolved from live-engine goroutines; the sim path never contends
	f.mu.Lock()
	f.mu.Unlock() //repolint:allow simpure resolved from live-engine goroutines; the sim path never contends
}
