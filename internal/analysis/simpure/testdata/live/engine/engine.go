// Package engine sits in live scope: wall-clock concurrency is its
// whole job, so none of the simpure rules bind.
package engine

import "sync"

type Engine struct {
	mu sync.Mutex
}

func (e *Engine) Do(f func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f()
}

func (e *Engine) Spawn(f func()) {
	go e.Do(f)
}
