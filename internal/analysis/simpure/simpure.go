// Package simpure checks the sim/live split: deterministic simulation
// packages must not spawn goroutines, perform real network or file
// I/O, or use sync primitives other than sync.Pool.
//
// Under the discrete-event engine there is exactly one goroutine;
// concurrency is *modeled* by scheduling events, never by the runtime.
// A stray `go` statement or mutex doesn't just risk a data race — it
// silently breaks replay, because goroutine interleaving is invisible
// to the transcript. sync.Pool is the single blessed exception (PR2's
// message pools), safe because pooled boxes never cross a delivery.
// internal/live and cmd/ are exempt by scope: wall-clock concurrency
// is their whole job.
package simpure

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "simpure",
	Doc: "forbid go statements, real net/os I/O and sync primitives (except sync.Pool) " +
		"in deterministic sim packages; sim concurrency must go through the scheduler",
	Run: run,
}

// osIO lists the os entry points that touch the real machine. Reading
// configuration (os.Getenv) and process identity stay legal; files,
// directories and processes do not.
var osIO = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	"Rename": true, "Stat": true, "Lstat": true, "Chdir": true,
	"Truncate": true, "Link": true, "Symlink": true, "Pipe": true,
	"StartProcess": true,
}

func run(pass *analysis.Pass) {
	if !analysis.SimScope(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		checkImports(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in deterministic sim package: model concurrency as scheduler events (sim.Engine.Schedule)")
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.Ident:
				checkSyncUse(pass, n)
			}
			return true
		})
	}
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "net" || strings.HasPrefix(path, "net/") || path == "os/exec" {
			pass.Reportf(imp.Pos(), "import of %s in deterministic sim package: real I/O belongs in internal/live or cmd/", path)
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if analysis.PkgPathOf(fn) == "os" && osIO[fn.Name()] {
		pass.Reportf(call.Pos(), "os.%s in deterministic sim package: real file I/O belongs in internal/live or behind a live-only configuration", fn.Name())
	}
}

// checkSyncUse flags any reference into sync or sync/atomic except the
// sync.Pool type and its methods.
func checkSyncUse(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if path != "sync" && path != "sync/atomic" {
		return
	}
	if path == "sync" && syncPoolObject(obj) {
		return
	}
	// Skip the package-qualifier ident itself ("sync" in sync.Mutex);
	// the selected name carries the report.
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return
	}
	pass.Reportf(id.Pos(), "%s.%s in deterministic sim package: the single-goroutine sim needs no locking; only sync.Pool is blessed (message pools)", path, obj.Name())
}

// syncPoolObject reports whether obj is sync.Pool itself, one of its
// fields (New), or one of its methods (Get, Put).
func syncPoolObject(obj types.Object) bool {
	if obj.Name() == "Pool" {
		return true
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return analysis.IsSyncPool(sig.Recv().Type())
		}
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Pool's New field, reached as pool.New = ...
		return true
	}
	return false
}
