package simpure_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simpure"
)

func TestSimpure(t *testing.T) {
	analysistest.Run(t, "testdata", simpure.Analyzer)
}
