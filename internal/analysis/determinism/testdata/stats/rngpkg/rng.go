// Package rngpkg sits in stats scope, which hosts the blessed RNG
// wrapper: importing math/rand is its whole purpose.
package rngpkg

import "math/rand"

func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
