// Package frontend sits in server scope: the TCP front end measures
// real request latency against the wall clock, so the determinism rules
// do not bind here.
package frontend

import "time"

func Deadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}

func Throttle() {
	time.Sleep(time.Millisecond)
}
