// Package driver sits in cmd/ scope: drivers run in real time, so the
// wall-clock and map-order rules do not bind here.
package driver

import "time"

func Stamp() time.Time { return time.Now() }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
