// Package clock exercises the wall-clock rules: every nondeterministic
// time entry point is flagged, pure time arithmetic is not.
package clock

import "time"

func bad() (time.Time, time.Time) {
	time.Sleep(50 * time.Millisecond) // want `wall-clock time\.Sleep`
	t := time.Now()                   // want `wall-clock time\.Now`
	<-time.After(time.Second)         // want `wall-clock time\.After`
	_ = time.Since(t)                 // want `wall-clock time\.Since`
	_ = time.Until(t)                 // want `wall-clock time\.Until`
	tk := time.NewTicker(time.Second) // want `wall-clock time\.NewTicker`
	tk.Stop()
	return t, <-tk.C
}

// Pure time arithmetic stays legal: durations and explicit instants
// carry no wall-clock reads.
func good(d time.Duration) time.Time {
	deadline := time.Unix(0, 0).Add(d)
	return deadline.Add(3 * time.Millisecond)
}
