// Package maporder exercises the map-iteration-order rules: building a
// slice from a map range without sorting it, or feeding map order into
// scheduling or hashing, makes map order program behavior.
package maporder

import (
	"hash/fnv"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends to out`
		out = append(out, k)
	}
	return out
}

// Sorting after the loop erases the map order; this is the blessed
// collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type scheduler struct{}

func (scheduler) Schedule(at int, f func()) {}

func driveUnsorted(s scheduler, jobs map[int]func()) {
	for at, f := range jobs {
		s.Schedule(at, f) // want `map iteration drives`
	}
}

func digestUnsorted(m map[string]string) uint32 {
	h := fnv.New32a()
	for k, v := range m {
		h.Write([]byte(k + v)) // want `map iteration drives`
	}
	return h.Sum32()
}

// Hashing over sorted keys is order-independent: the map range only
// collects, the hash loop ranges over the sorted slice.
func digestSorted(m map[string]string) uint32 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New32a()
	for _, k := range keys {
		h.Write([]byte(k + m[k]))
	}
	return h.Sum32()
}
