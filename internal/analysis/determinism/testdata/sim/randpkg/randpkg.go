// Package randpkg exercises the RNG rule: importing the global
// math/rand families outside the stats packages is forbidden.
package randpkg

import "math/rand" // want `import of math/rand in sim-reachable package`

func roll(r *rand.Rand) int { return r.Intn(6) }
