package randpkg

import randv2 "math/rand/v2" // want `import of math/rand/v2 in sim-reachable package`

func rollV2(r *randv2.Rand) int { return r.IntN(6) }
