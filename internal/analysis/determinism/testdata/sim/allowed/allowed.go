// Package allowed exercises the //repolint:allow directive: a directive
// with a reason suppresses its own line and the line below, and only
// for the named rule.
package allowed

import "time"

// The directive on the line above a finding suppresses it.
func boot() int64 {
	//repolint:allow determinism boot stamp, never fed into a transcript
	return time.Now().UnixNano()
}

// A trailing directive suppresses its own line.
func stamp() int64 {
	return time.Now().UnixNano() //repolint:allow determinism boot stamp, never fed into a transcript
}

// A directive for a different rule suppresses nothing here.
func wrongRule() time.Time {
	//repolint:allow simpure timers are fine here
	return time.Now() // want `wall-clock time\.Now`
}

// A directive two lines above the finding is out of range.
func tooFar() time.Time {
	//repolint:allow determinism boot stamp, never fed into a transcript

	return time.Now() // want `wall-clock time\.Now`
}
