// Package rangeorder pins the determinism rule the range-addressed
// streaming refactor leans on: movement plans and per-target stream
// fan-out must iterate ranges in sorted token order, never in map
// order. A plan built from a map range without a sort, or a sender
// driven directly from one, would make map order the wire order — and
// the membership determinism hashes would flap.
package rangeorder

import "sort"

type tokenRange struct{ start, end uint64 }

type movement struct {
	r       tokenRange
	targets []int
}

// planUnsorted collects a movement plan straight out of a map range:
// the plan's order (and so the stream send order) would follow map
// order.
func planUnsorted(gained map[uint64]movement) []movement {
	var plan []movement
	for _, mv := range gained { // want `map iteration appends to plan`
		plan = append(plan, mv)
	}
	return plan
}

// planSorted is the blessed shape — collect, then sort by the ranges'
// end tokens so the plan iterates the ring in ascending token order no
// matter how the movements were keyed.
func planSorted(gained map[uint64]movement) []movement {
	var plan []movement
	for _, mv := range gained {
		plan = append(plan, mv)
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].r.end < plan[j].r.end })
	return plan
}

type sender struct{}

func (sender) Send(to int, r tokenRange) {}

// streamUnsorted drives a network sender from a map range: chunk order
// on the wire would follow map order.
func streamUnsorted(s sender, owed map[int]tokenRange) {
	for to, r := range owed {
		s.Send(to, r) // want `map iteration drives`
	}
}
