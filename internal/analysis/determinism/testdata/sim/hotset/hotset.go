// Package hotset exercises the map-order rules against the hot-key
// tracker's shape: promotion candidates live in read-count sketches
// (maps), and both the promoted set and any invalidation fan-out driven
// from those maps must not inherit map iteration order. The real
// tracker (kv/hotcache.go) walks its sketch's sorted Top() order for
// exactly this reason.
package hotset

import "sort"

type sched struct{}

func (sched) Schedule(at int, f func()) {}

// promoteUnsorted builds the hot set straight off the sketch map: two
// runs with the same seed promote different keys.
func promoteUnsorted(reads map[string]uint64, k int) []string {
	var hot []string
	for key := range reads { // want `map iteration appends to hot`
		if len(hot) < k {
			hot = append(hot, key)
		}
	}
	return hot
}

// promoteSorted collects, sorts by (count desc, key asc), then
// truncates — the tracker's blessed idiom. Clean.
func promoteSorted(reads map[string]uint64, k int) []string {
	keys := make([]string, 0, len(reads))
	for key := range reads {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if reads[keys[i]] != reads[keys[j]] {
			return reads[keys[i]] > reads[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return keys
}

// invalidateUnsorted schedules per-entry eviction timers in map order:
// the timer queue's tie-break order becomes program behavior.
func invalidateUnsorted(s sched, entries map[string]func()) {
	for _, evict := range entries {
		s.Schedule(0, evict) // want `map iteration drives`
	}
}

// invalidateSorted drains the cache in key order. Clean.
func invalidateSorted(s sched, entries map[string]func()) {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Schedule(0, entries[k])
	}
}
