// Package determinism checks that sim-reachable code cannot observe
// wall-clock time or unseeded randomness, and that map iteration order
// cannot leak into anything order-sensitive.
//
// The repo's headline guarantee — same seed, same transcript, same
// hash — holds only if every source of nondeterminism is funneled
// through the sim scheduler (the blessed clock) and
// internal/stats.Source (the blessed RNG). This analyzer turns that
// convention into a compile-time error:
//
//   - calls to time.Now, time.Since, time.Until and the wall-clock
//     timer constructors (time.After, time.Sleep, time.Tick,
//     time.NewTicker, time.NewTimer, time.AfterFunc) are forbidden;
//   - importing math/rand or math/rand/v2 is forbidden outside
//     internal/stats, whose Source wraps a seeded PCG;
//   - a `range` over a map whose loop body appends to a slice declared
//     outside the loop is flagged unless the function later sorts that
//     slice, and so is a loop body that feeds values straight into
//     scheduling, sending or hashing — map order would become program
//     behavior in both cases.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand and order-sensitive map iteration " +
		"in sim-reachable packages; the sim scheduler is the only clock and " +
		"internal/stats.Source the only RNG",
	Run: run,
}

// wallClock lists the time package's nondeterministic entry points.
// Pure arithmetic (time.Duration, time.Unix construction) stays legal.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Sleep": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) {
	if !analysis.SimScope(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		checkImports(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			}
			return true
		})
	}
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	if analysis.RandExempt(pass.Pkg.Path()) {
		return
	}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(), "import of %s in sim-reachable package: derive a seeded stream from internal/stats.Source instead", path)
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if analysis.PkgPathOf(fn) == "time" && wallClock[fn.Name()] {
		pass.Reportf(call.Pos(), "wall-clock time.%s in sim-reachable package: take the current time and timers from the sim scheduler (sim.Engine)", fn.Name())
	}
}

// checkMapRanges walks a function body looking for `range` statements
// over maps whose iteration order can become observable behavior.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	// Case 1: the loop appends to a slice declared outside the loop and
	// the function never sorts it afterwards — the slice's element
	// order is then the map's iteration order.
	for _, sliceObj := range outerAppends(pass, rng) {
		if !sortedAfter(pass, fnBody, rng.End(), sliceObj) {
			pass.Reportf(rng.Pos(), "map iteration appends to %s without a deterministic sort: map order becomes slice order", sliceObj.Name())
		}
	}
	// Case 2: the loop body feeds values directly into scheduling,
	// sending or hashing — sinks whose call order is behavior.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if sink := orderSink(pass, call, fn); sink != "" {
			pass.Reportf(call.Pos(), "map iteration drives %s: call order would follow map order; collect and sort the keys first", sink)
		}
		return true
	})
}

// outerAppends returns the distinct slice variables declared outside
// rng that the loop body grows with append.
func outerAppends(pass *analysis.Pass, rng *ast.RangeStmt) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(asg.Lhs) <= i {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				continue // shadowed: not the builtin append
			}
			lhs, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var)
			if !ok || seen[v] {
				continue
			}
			// Declared outside the range statement?
			if v.Pos() < rng.Pos() || v.Pos() > rng.End() {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether the function body contains, after pos, a
// sort.* / slices.Sort* call that references v.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, pos token.Pos, v *types.Var) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		pkg := analysis.PkgPathOf(fn)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == v {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// orderSink classifies callees whose invocation order is observable:
// scheduler and network entry points, and hash writes. Hash writes are
// recognized by the receiver expression's type (hash.Hash et al. embed
// Write from io.Writer, so the method's own package would say "io").
func orderSink(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) string {
	name := fn.Name()
	if name == "Schedule" || name == "ScheduleCall" || name == "Send" {
		return fn.FullName()
	}
	if name == "Write" || name == "Sum" {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		if named := namedOf(pass.TypesInfo.TypeOf(sel.X)); named != nil && named.Obj().Pkg() != nil {
			p := named.Obj().Pkg().Path()
			if p == "hash" || strings.HasPrefix(p, "hash/") || strings.HasPrefix(p, "crypto/") {
				return fn.FullName()
			}
		}
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
