package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Scope rules. The repo's invariants are not uniform: the live engine
// and the command-line drivers are *supposed* to touch wall clocks,
// goroutines and real files. Scope is decided purely on import-path
// segments so the same rules govern the real module and the
// analysistest fixtures.

func hasSegment(path string, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// SegmentIn reports whether path contains any of the given segments.
func SegmentIn(path string, segs ...string) bool {
	for _, seg := range segs {
		if hasSegment(path, seg) {
			return true
		}
	}
	return false
}

// SimScope reports whether the package at path is held to the
// deterministic-simulation invariants (determinism, simpure).
// Exempt: cmd/ and examples/ (drivers), live packages (wall-clock by
// design), server (the TCP front end: per-connection goroutines and
// real sockets by design), testutil (test-process plumbing), and the
// analysis suite itself (it shells out to the go tool). The wire
// package is *not* exempt: codecs are pure byte manipulation and stay
// under the determinism rules.
func SimScope(path string) bool {
	for _, seg := range []string{"cmd", "examples", "live", "server", "testutil", "analysis", "testdata"} {
		if hasSegment(path, seg) {
			return false
		}
	}
	return true
}

// RandExempt reports whether path hosts the blessed RNG: math/rand may
// only be imported by the stats package (internal/stats/rng.go wraps it
// behind deterministic seeded streams).
func RandExempt(path string) bool { return hasSegment(path, "stats") }

// ErrflowScope reports whether discarded storage-path errors are
// flagged in this package. Live is *included*: the file-backed WAL
// runs there and its recovery semantics hinge on error propagation.
// Drivers and the analyzer suite are exempt.
func ErrflowScope(path string) bool {
	for _, seg := range []string{"cmd", "examples", "testutil", "analysis", "testdata"} {
		if hasSegment(path, seg) {
			return false
		}
	}
	return true
}

// Type-resolution helpers shared by the analyzers.

// Callee resolves the static callee of a call, whether a package
// function, a method, or a method value; nil for dynamic calls through
// function-typed variables and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.F
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function or method
// pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// PkgPathOf returns the defining package path of fn, or "".
func PkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsSyncPool reports whether t is sync.Pool or *sync.Pool.
func IsSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// ResultError reports whether a call's type carries an error: the index
// of the error in the result tuple (or 0 for a bare error result) and
// whether one exists.
func ResultError(info *types.Info, call *ast.CallExpr) (int, int, bool) {
	tv, ok := info.Types[call]
	if !ok {
		return 0, 0, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i, t.Len(), true
			}
		}
		return 0, t.Len(), false
	default:
		if isErrorType(tv.Type) {
			return 0, 1, true
		}
	}
	return 0, 0, false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
