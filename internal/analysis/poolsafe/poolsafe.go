// Package poolsafe checks the sync.Pool message lifecycle the hot path
// depends on: a pooled value must be released exactly once, never used
// after release, and never retained past its delivery.
//
// PR2 made every per-replica message a pooled box: senders take a box,
// receivers copy the value out and return the box before dispatching.
// Violations are memory-safety bugs of the worst kind — a box reused
// while an alias is still live corrupts an unrelated in-flight message,
// and the symptom appears far from the cause. The analyzer is
// intraprocedural and flow-aware within each function:
//
//   - use-after-release: any read of a variable after it was returned
//     to its pool on some path;
//   - double-release: a second Put of the same variable, including a
//     Put of a loop-outer variable on every iteration;
//   - escape: a pooled value captured by a `go` statement, or stored
//     into a field/map/global and *then* released by the same function
//     (the retained alias outlives the release).
//
// Release wrappers (a function that Puts its parameter) and acquire
// wrappers (a function returning a value it took from a pool) are
// discovered per package, so the kv new*/release* helpers check the
// same as direct pool.Get/Put calls.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "flag use-after-release, double-release and escapes of sync.Pool-managed values: " +
		"a pooled box must be released exactly once and never retained past its delivery",
	Run: run,
}

func run(pass *analysis.Pass) {
	w := wrappers(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				newChecker(pass, w).checkFunc(fd)
			}
		}
	}
}

// wrapperSet records the package's pool helper functions.
type wrapperSet struct {
	acquire map[*types.Func]bool // returns a value taken from a pool
	release map[*types.Func]int  // param index the function Puts
}

func wrappers(pass *analysis.Pass) *wrapperSet {
	w := &wrapperSet{acquire: map[*types.Func]bool{}, release: map[*types.Func]int{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			// Acquire wrapper: calls (*sync.Pool).Get and returns a
			// pointer — the kv new* constructors.
			if sig.Results().Len() >= 1 {
				if _, ptr := sig.Results().At(0).Type().(*types.Pointer); ptr && callsPoolMethod(pass, fd.Body, "Get") {
					w.acquire[fn] = true
				}
			}
			// Release wrapper: Puts one of its parameters.
			if idx, ok := putsParam(pass, fd, sig); ok {
				w.release[fn] = idx
			}
		}
	}
	return w
}

func callsPoolMethod(pass *analysis.Pass, body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && fn.Name() == name {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && analysis.IsSyncPool(sig.Recv().Type()) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func putsParam(pass *analysis.Pass, fd *ast.FuncDecl, sig *types.Signature) (int, bool) {
	idx, ok := -1, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, okc := n.(*ast.CallExpr)
		if !okc || len(call.Args) != 1 {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Put" {
			return true
		}
		if s, oks := fn.Type().(*types.Signature); !oks || s.Recv() == nil || !analysis.IsSyncPool(s.Recv().Type()) {
			return true
		}
		id, okid := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !okid {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == obj {
				idx, ok = i, true
			}
		}
		return true
	})
	return idx, ok
}

// varState tracks one variable through the linear scan.
type varState struct {
	acquired   bool      // value came from a pool in this function
	releasedAt token.Pos // nonzero once returned to its pool on some path
	deferred   bool      // a deferred release is pending
	storedAt   token.Pos // stored into a field/map/global while live
	storedIn   string
}

type checker struct {
	pass     *analysis.Pass
	w        *wrapperSet
	state    map[*types.Var]*varState
	reported map[token.Pos]bool
}

func newChecker(pass *analysis.Pass, w *wrapperSet) *checker {
	return &checker{pass: pass, w: w, state: map[*types.Var]*varState{}, reported: map[token.Pos]bool{}}
}

func (c *checker) get(v *types.Var) *varState {
	s := c.state[v]
	if s == nil {
		s = &varState{}
		c.state[v] = s
	}
	return s
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if !c.reported[pos] {
		c.reported[pos] = true
		c.pass.Reportf(pos, format, args...)
	}
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.scanStmts(fd.Body.List)
}

// clone snapshots the state for branch-local analysis.
func (c *checker) clone() map[*types.Var]*varState {
	m := make(map[*types.Var]*varState, len(c.state))
	for k, v := range c.state {
		cp := *v
		m[k] = &cp
	}
	return m
}

// merge folds a non-terminating branch's state back: releases observed
// on any live path become may-releases on the main path.
func (c *checker) merge(branch map[*types.Var]*varState) {
	for v, bs := range branch {
		s := c.get(v)
		if bs.releasedAt != 0 && s.releasedAt == 0 {
			s.releasedAt = bs.releasedAt
		}
		s.deferred = s.deferred || bs.deferred
		s.acquired = s.acquired || bs.acquired
		if bs.storedAt != 0 && s.storedAt == 0 {
			s.storedAt, s.storedIn = bs.storedAt, bs.storedIn
		}
	}
}

func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (c *checker) scanStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		c.scanStmt(s)
	}
}

func (c *checker) branch(stmts []ast.Stmt) {
	saved := c.state
	c.state = c.clone()
	c.scanStmts(stmts)
	branchState := c.state
	c.state = saved
	if !terminates(stmts) {
		c.merge(branchState)
	}
}

func (c *checker) scanStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.scanStmts(s.List)
	case *ast.ExprStmt:
		if v, pos, ok := c.releaseCall(s.X); ok {
			c.release(v, pos)
			return
		}
		c.checkUses(s.X)
	case *ast.DeferStmt:
		if v, pos, ok := c.releaseCall(s.Call); ok {
			st := c.get(v)
			if st.releasedAt != 0 || st.deferred {
				c.reportf(pos, "%s is returned to its pool twice (deferred release duplicates an earlier one)", v.Name())
			}
			st.deferred = true
			return
		}
		c.checkUses(s.Call)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkUses(rhs)
		}
		for i, lhs := range s.Lhs {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if v, ok := c.pass.TypesInfo.ObjectOf(l).(*types.Var); ok {
					st := c.get(v)
					st.releasedAt, st.deferred, st.storedAt = 0, false, 0
					st.acquired = len(s.Rhs) > i && c.isAcquire(s.Rhs[i])
				}
			case *ast.SelectorExpr, *ast.IndexExpr:
				c.checkUses(l)
				if len(s.Rhs) > i {
					c.recordStore(l, s.Rhs[i])
				}
			default:
				c.checkUses(l)
			}
		}
	case *ast.GoStmt:
		c.checkGoEscape(s)
	case *ast.IfStmt:
		if s.Init != nil {
			c.scanStmt(s.Init)
		}
		c.checkUses(s.Cond)
		c.branch(s.Body.List)
		if s.Else != nil {
			c.branch([]ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.scanStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkUses(s.Cond)
		}
		c.loopBody(s.Body, s.Pos(), s.End())
	case *ast.RangeStmt:
		c.checkUses(s.X)
		c.loopBody(s.Body, s.Pos(), s.End())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.scanStmt(s.Init)
		}
		if s.Tag != nil {
			c.checkUses(s.Tag)
		}
		for _, cc := range s.Body.List {
			c.branch(cc.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.scanStmt(s.Init)
		}
		for _, cc := range s.Body.List {
			c.branch(cc.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			c.branch(cc.(*ast.CommClause).Body)
		}
	case *ast.ReturnStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.LabeledStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.checkUses(e)
				return false
			}
			return true
		})
	default:
		// Branch/empty statements carry no expressions to check.
	}
}

// loopBody analyzes a loop body and flags releases of loop-outer
// variables that are not reassigned first: such a Put runs on every
// iteration but the box was taken once.
func (c *checker) loopBody(body *ast.BlockStmt, loopPos, loopEnd token.Pos) {
	saved := c.state
	c.state = c.clone()
	assigned := map[*types.Var]bool{}
	for _, st := range body.List {
		c.noteAssigned(st, assigned)
		if v, pos, ok := c.releaseStmt(st); ok {
			if (v.Pos() < loopPos || v.Pos() > loopEnd) && !assigned[v] {
				c.reportf(pos, "%s is returned to its pool inside a loop without being reacquired: released once per iteration", v.Name())
			}
		}
		c.scanStmt(st)
	}
	branchState := c.state
	c.state = saved
	c.merge(branchState)
}

// noteAssigned records plain assignments so a reacquired variable
// (m := pool.Get... inside the loop) is not flagged by loopBody.
func (c *checker) noteAssigned(s ast.Stmt, assigned map[*types.Var]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		if asg, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range asg.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
						assigned[v] = true
					}
				}
			}
		}
		return true
	})
}

// releaseStmt unwraps an ExprStmt release at the top level of a block.
func (c *checker) releaseStmt(s ast.Stmt) (*types.Var, token.Pos, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, 0, false
	}
	return c.releaseCall(es.X)
}

// releaseCall recognizes pool.Put(v) and releaseWrapper(v) calls,
// returning the released variable.
func (c *checker) releaseCall(e ast.Expr) (*types.Var, token.Pos, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, 0, false
	}
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return nil, 0, false
	}
	argIdx := -1
	if fn.Name() == "Put" && len(call.Args) == 1 {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && analysis.IsSyncPool(sig.Recv().Type()) {
			argIdx = 0
		}
	}
	if i, ok := c.w.release[fn]; ok && i < len(call.Args) {
		argIdx = i
	}
	if argIdx < 0 {
		return nil, 0, false
	}
	id, ok := ast.Unparen(call.Args[argIdx]).(*ast.Ident)
	if !ok {
		return nil, 0, false
	}
	v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return nil, 0, false
	}
	// The other arguments are ordinary uses.
	for i, a := range call.Args {
		if i != argIdx {
			c.checkUses(a)
		}
	}
	return v, call.Pos(), true
}

func (c *checker) release(v *types.Var, pos token.Pos) {
	st := c.get(v)
	if st.releasedAt != 0 || st.deferred {
		c.reportf(pos, "%s is returned to its pool twice", v.Name())
		return
	}
	if st.storedAt != 0 {
		c.reportf(pos, "%s was stored in %s and is now returned to its pool: the retained reference outlives the release", v.Name(), st.storedIn)
	}
	st.releasedAt = pos
}

// isAcquire reports whether e produces a pooled value: pool.Get()
// (possibly behind a type assertion) or an acquire-wrapper call.
func (c *checker) isAcquire(e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if c.w.acquire[fn] {
		return true
	}
	if fn.Name() == "Get" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && analysis.IsSyncPool(sig.Recv().Type()) {
			return true
		}
	}
	return false
}

// checkUses reports reads of released variables within e.
func (c *checker) checkUses(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok {
			return true
		}
		if st := c.state[v]; st != nil && st.releasedAt != 0 {
			c.reportf(id.Pos(), "use of %s after it was returned to its pool at line %d", v.Name(), c.pass.Fset.Position(st.releasedAt).Line)
		}
		return true
	})
}

// recordStore notes a pooled value stored into a field, map entry or
// global; the store only becomes a finding if the same function later
// releases the value (see release).
func (c *checker) recordStore(lhs ast.Expr, rhs ast.Expr) {
	id, ok := ast.Unparen(rhs).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	st := c.state[v]
	if st == nil || !st.acquired || st.releasedAt != 0 {
		return
	}
	st.storedAt = lhs.Pos()
	st.storedIn = exprString(lhs)
}

// checkGoEscape flags pooled values captured by a goroutine.
func (c *checker) checkGoEscape(s *ast.GoStmt) {
	ast.Inspect(s.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok {
			return true
		}
		if st := c.state[v]; st != nil && st.acquired {
			c.reportf(id.Pos(), "pooled %s captured by a goroutine: pooled values must not outlive their delivery", v.Name())
		}
		return true
	})
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "expression"
}
