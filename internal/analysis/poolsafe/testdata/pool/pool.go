// Package pool exercises the poolsafe lifecycle rules against a
// miniature of the kv message pools: a pooled box type, an acquire
// wrapper (newMsg) and a release wrapper (releaseMsg), both discovered
// by the analyzer rather than hard-coded.
package pool

import "sync"

type msg struct {
	key string
	val []byte
}

var msgPool = sync.Pool{New: func() any { return new(msg) }}

func newMsg(key string) *msg {
	m := msgPool.Get().(*msg)
	m.key = key
	return m
}

func releaseMsg(m *msg) {
	m.key = ""
	m.val = nil
	msgPool.Put(m)
}
