package pool

type holder struct{ last *msg }

// Round trip: acquire, fill, release once. Clean.
func roundTrip(key string) {
	m := newMsg(key)
	m.val = append(m.val[:0], key...)
	releaseMsg(m)
}

func useAfterRelease(key string) string {
	m := newMsg(key)
	releaseMsg(m)
	return m.key // want `use of m after it was returned to its pool`
}

func doubleRelease(key string) {
	m := newMsg(key)
	releaseMsg(m)
	releaseMsg(m) // want `m is returned to its pool twice`
}

func deferredDouble(key string) {
	m := newMsg(key)
	defer releaseMsg(m)
	releaseMsg(m) // want `m is returned to its pool twice`
}

func deferAfterRelease(key string) {
	m := newMsg(key)
	releaseMsg(m)
	defer releaseMsg(m) // want `deferred release duplicates an earlier one`
}

// Direct pool calls check the same as the wrappers.
func direct(key string) {
	m := msgPool.Get().(*msg)
	m.key = key
	msgPool.Put(m)
	msgPool.Put(m) // want `m is returned to its pool twice`
}

func storeThenRelease(h *holder, key string) {
	m := newMsg(key)
	h.last = m
	releaseMsg(m) // want `m was stored in h\.last and is now returned to its pool`
}

// Storing without releasing is a legal ownership transfer: the holder
// now owns the box and releases it later.
func stash(h *holder, key string) {
	h.last = newMsg(key)
}

func goroutineCapture(key string) {
	m := newMsg(key)
	go process(m) // want `pooled m captured by a goroutine`
	releaseMsg(m)
}

func process(*msg) {}

func loopRelease(keys []string) {
	m := newMsg("shared")
	for range keys {
		releaseMsg(m) // want `m is returned to its pool inside a loop without being reacquired`
	}
}

// Reacquiring inside the loop is the correct per-iteration pattern.
func loopReacquire(keys []string) {
	for _, k := range keys {
		m := newMsg(k)
		releaseMsg(m)
	}
}

// A branch that releases and returns leaves the fall-through path clean.
func branchRelease(key string, early bool) {
	m := newMsg(key)
	if early {
		releaseMsg(m)
		return
	}
	m.val = nil
	releaseMsg(m)
}

// A may-release branch poisons later uses: on the true path the box is
// already back in the pool when the read runs.
func mayRelease(key string, early bool) string {
	m := newMsg(key)
	if early {
		releaseMsg(m)
	}
	return m.key // want `use of m after it was returned to its pool`
}

// Returning an acquired box hands ownership to the caller. Clean.
func handoff(key string) *msg {
	return newMsg(key)
}
