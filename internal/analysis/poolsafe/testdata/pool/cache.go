package pool

// A miniature of the coordinator read cache, built the way PR 8
// deliberately did NOT build it: with pooled entries. The real cache
// (kv/hotcache.go) stores plain values in its map precisely because a
// pooled entry has every lifecycle hazard below — a served reference
// outliving an invalidation, an invalidation racing a drop-all, a fill
// recycling a box the map still points to. These cases pin that the
// analyzer would catch each of them if entries ever became pooled.

import "sync"

type entry struct {
	key string
	val []byte
	seq uint64
}

var entryPool = sync.Pool{New: func() any { return new(entry) }}

func newEntry(key string) *entry {
	e := entryPool.Get().(*entry)
	e.key = key
	return e
}

func releaseEntry(e *entry) {
	e.key, e.val, e.seq = "", nil, 0
	entryPool.Put(e)
}

type cache struct {
	entries map[string]*entry
}

// fill hands the freshly acquired entry to the map: a legal ownership
// transfer, the cache releases it at invalidation time. Clean.
func (c *cache) fill(key string, val []byte, seq uint64) {
	e := newEntry(key)
	e.val = val
	e.seq = seq
	c.entries[key] = e
}

// fillThenRelease recycles the box the map still points at: the next
// fill of ANY key hands out the same memory and the stale alias serves
// another key's value.
func (c *cache) fillThenRelease(key string, val []byte) {
	e := newEntry(key)
	e.val = val
	c.entries[key] = e
	releaseEntry(e) // want `e was stored in c\.entries\[\.\.\.\] and is now returned to its pool`
}

// serveAfterInvalidate reads the value out of a box already back in the
// pool — the classic serve/invalidate race collapsed into one function.
func serveAfterInvalidate(key string) []byte {
	e := newEntry(key)
	releaseEntry(e)
	return e.val // want `use of e after it was returned to its pool`
}

// invalidateTwice models a write invalidation racing a ring-change
// drop-all: both paths release the same box.
func invalidateTwice(key string) {
	e := newEntry(key)
	releaseEntry(e)
	releaseEntry(e) // want `e is returned to its pool twice`
}

// mayInvalidate poisons the serve path: on the invalidated branch the
// box is already recycled when the read runs.
func mayInvalidate(key string, stale bool) []byte {
	e := newEntry(key)
	if stale {
		releaseEntry(e)
	}
	return e.val // want `use of e after it was returned to its pool`
}

// dropAll releases each entry exactly once per iteration because each
// iteration rebinds the range variable. Clean.
func (c *cache) dropAll() {
	for k, e := range c.entries {
		delete(c.entries, k)
		releaseEntry(e)
	}
}

// asyncFill captures a pooled box in a goroutine: the fill callback may
// run after an invalidation recycled the box.
func (c *cache) asyncFill(key string, apply func(*entry)) {
	e := newEntry(key)
	go apply(e) // want `pooled e captured by a goroutine`
	releaseEntry(e)
}
