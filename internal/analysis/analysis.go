// Package analysis is repolint's analyzer framework: a compact offline
// reimplementation of the golang.org/x/tools/go/analysis surface the
// suite needs, plus the repo-specific scope rules that decide which
// packages each invariant binds.
//
// The invariants themselves (see the sibling packages determinism,
// poolsafe, simpure and errflow) encode conventions this repo otherwise
// enforces only by review: bit-reproducible simulations, sync.Pool
// message lifecycle, the sim/live split, and error propagation on the
// consistent-prefix recovery paths.
//
// Any finding can be suppressed in place with a directive comment:
//
//	//repolint:allow <rule> <reason>
//
// on the flagged line or the line above it. The reason is mandatory —
// a bare allow is itself a diagnostic — so every exemption documents
// why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	Name string // rule name used in diagnostics and allow directives
	Doc  string // one-paragraph description for help output
	Run  func(*Pass)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a resolved diagnostic as emitted by Run.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}

// directive is one parsed //repolint:allow comment.
type directive struct {
	line   int
	rule   string
	reason string
}

var directiveRE = regexp.MustCompile(`^//repolint:allow(?:\s+(\S+))?\s*(.*)$`)

// parseDirectives scans a file for //repolint:allow comments. Malformed
// directives (missing rule or reason) are reported through report as
// rule "repolint" findings.
func parseDirectives(fset *token.FileSet, f *ast.File, report func(Finding)) []directive {
	var ds []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//repolint:") {
				continue
			}
			pos := fset.Position(c.Pos())
			m := directiveRE.FindStringSubmatch(c.Text)
			if m == nil {
				report(Finding{Pos: pos, Rule: "repolint", Message: fmt.Sprintf("unrecognized repolint directive %q", c.Text)})
				continue
			}
			rule, reason := m[1], strings.TrimSpace(m[2])
			if rule == "" {
				report(Finding{Pos: pos, Rule: "repolint", Message: "repolint:allow directive is missing a rule name"})
				continue
			}
			if reason == "" {
				report(Finding{Pos: pos, Rule: "repolint", Message: fmt.Sprintf("repolint:allow %s requires a reason: //repolint:allow %s <why this is safe>", rule, rule)})
				continue
			}
			ds = append(ds, directive{line: pos.Line, rule: rule, reason: reason})
		}
	}
	return ds
}

// allowed reports whether a directive for rule covers line: directives
// apply to their own line (trailing comment) and to the line below
// (comment on its own line above the flagged statement).
func allowed(ds []directive, rule string, line int) bool {
	for _, d := range ds {
		if d.rule == rule && (d.line == line || d.line == line-1) {
			return true
		}
	}
	return false
}

// Run executes every analyzer over every package and returns the
// surviving findings sorted by position. Allow directives are resolved
// here so individual analyzers stay oblivious to suppression.
//
// Test files are exempt across the board: _test.go code links into the
// test binary, not the sim binary, so it is neither sim-reachable nor
// on a recovery path (a seeded rand stream in a property test is fine).
// This also keeps the standalone runner, the analysistest meta-check
// and `go vet -vettool` (which feeds test variants) in agreement.
func Run(pkgs []*load.Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		var files []*ast.File
		for _, f := range pkg.Files {
			if ff := pkg.Fset.File(f.Pos()); ff != nil && strings.HasSuffix(ff.Name(), "_test.go") {
				continue
			}
			files = append(files, f)
		}
		perFile := map[*ast.File][]directive{}
		for _, f := range files {
			perFile[f] = parseDirectives(pkg.Fset, f, func(fd Finding) {
				findings = append(findings, fd)
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				for f, ds := range perFile {
					ff := pkg.Fset.File(f.Pos())
					if ff != nil && ff.Name() == pos.Filename && allowed(ds, a.Name, pos.Line) {
						return
					}
				}
				findings = append(findings, Finding{Pos: pos, Rule: a.Name, Message: d.Message})
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings
}
