// Package load type-checks Go packages for the repolint analyzers using
// only the standard library. The usual driver for go/analysis tooling is
// golang.org/x/tools/go/packages; this repo builds offline, so the loader
// reimplements the small slice it needs: `go list -deps -json` supplies
// the file sets and import graphs, and go/types checks everything from
// source in dependency order. Standard-library packages are checked once
// per process and cached; module packages are re-checked per call so
// tests always see fresh code.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listed mirrors the `go list -json` fields the loader consumes.
type listed struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
}

// loadMu serializes whole loads: std packages are checked once per
// process and shared by identity, so two interleaved loads must never
// build the same std package twice. Loads are rare (a handful per test
// binary); coarse serialization is free and removes every identity race.
var (
	loadMu sync.Mutex

	listCache = map[string]*listed{} // import path -> metadata

	stdFset  = token.NewFileSet()
	stdCache = map[string]*types.Package{} // std import path -> checked package
)

// goList runs `go list -deps -json` for args in dir and folds the
// results into the process-wide metadata cache. CGO is disabled so the
// pure-Go file sets are selected and everything type-checks from source.
func goList(dir string, args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-deps", "-json=ImportPath,Name,Dir,Standard,GoFiles,Imports,ImportMap"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listed)
		if err := dec.Decode(p); err != nil {
			return fmt.Errorf("go list %s: decoding: %v", strings.Join(args, " "), err)
		}
		listCache[p.ImportPath] = p
	}
	return nil
}

func lookupListed(dir, path string) (*listed, error) {
	if p := listCache[path]; p != nil {
		return p, nil
	}
	if err := goList(dir, path); err != nil {
		return nil, err
	}
	p := listCache[path]
	if p == nil {
		return nil, fmt.Errorf("go list did not resolve %q", path)
	}
	return p, nil
}

// checker builds types.Package values from source, memoizing standard
// library results across the whole process.
type checker struct {
	dir      string // directory for go list invocations
	fset     *token.FileSet
	mine     map[string]*types.Package // every package resolved this call
	testdata map[string]string         // import path -> dir overrides (analysistest)
	out      []*Package
}

func (c *checker) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.mine[path]; ok {
		return p, nil
	}
	if cached := stdCache[path]; cached != nil {
		c.mine[path] = cached
		return cached, nil
	}

	var (
		dir       string
		files     []string
		importMap map[string]string
		std       bool
	)
	if tdir, ok := c.testdata[path]; ok {
		dir = tdir
		ents, err := os.ReadDir(tdir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			n := e.Name()
			if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				files = append(files, n)
			}
		}
		sort.Strings(files)
	} else {
		l, err := lookupListed(c.dir, path)
		if err != nil {
			return nil, err
		}
		if l.Name == "" || len(l.GoFiles) == 0 {
			return nil, fmt.Errorf("package %s has no Go files", path)
		}
		dir, files, importMap, std = l.Dir, l.GoFiles, l.ImportMap, l.Standard
	}

	// Std files live in the shared std FileSet so cached std packages
	// keep valid positions across calls; module files use the per-call
	// FileSet handed to the analyzers.
	fset := c.fset
	if std {
		fset = stdFset
	}
	var astFiles []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if mapped, ok := importMap[imp]; ok {
				imp = mapped
			} else if c.testdata != nil {
				if _, ok := c.testdata[imp]; ok {
					return c.check(imp)
				}
			}
			return c.check(imp)
		}),
		// The compiled stdlib carries build-constraint knowledge the
		// source checker lacks; ignoring FakeImportC-style edge cases,
		// source-checking std is supported (go/types' TestStdlib does
		// exactly this).
		Error: func(err error) {},
	}
	pkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil && !std {
		// Std packages occasionally produce benign soft errors under
		// source checking; module packages must check cleanly.
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	if std {
		stdCache[path] = pkg
		c.mine[path] = pkg
		return pkg, nil
	}
	c.mine[path] = pkg
	c.out = append(c.out, &Package{Path: path, Fset: fset, Files: astFiles, Types: pkg, Info: info})
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Packages loads and type-checks the module packages matching patterns
// (resolved by `go list` in dir), returning one Package per non-std
// package in the match set, sorted by import path.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Enumerate the match set (not its deps) first so only matched
	// packages are returned, then check them, pulling deps as needed.
	cmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var roots []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			roots = append(roots, line)
		}
	}
	// One batched -deps walk primes the metadata cache for the closure.
	if err := goList(dir, patterns...); err != nil {
		return nil, err
	}

	c := &checker{dir: dir, fset: token.NewFileSet(), mine: map[string]*types.Package{}}
	var pkgs []*Package
	for _, root := range roots {
		if _, err := c.check(root); err != nil {
			return nil, err
		}
	}
	for _, p := range c.out {
		for _, root := range roots {
			if p.Path == root {
				pkgs = append(pkgs, p)
				break
			}
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Dir loads analysistest-style packages: every directory under root that
// contains .go files becomes a package whose import path is its
// root-relative slash path. Imports resolve against sibling testdata
// packages first, then the standard library.
func Dir(root string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	testdata := map[string]string{}
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		testdata[filepath.ToSlash(rel)] = filepath.Dir(path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	c := &checker{dir: root, fset: token.NewFileSet(), mine: map[string]*types.Package{}, testdata: testdata}
	var paths []string
	for p := range testdata {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := c.check(p); err != nil {
			return nil, err
		}
	}
	sort.Slice(c.out, func(i, j int) bool { return c.out[i].Path < c.out[j].Path })
	return c.out, nil
}
