// Package analysistest runs repolint analyzers over testdata fixture
// packages and checks their findings against `// want` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (reimplemented
// offline on the repo's own loader).
//
// A fixture line that should be flagged carries a trailing comment with
// one quoted regexp per expected finding on that line:
//
//	t := time.Now() // want `wall-clock time\.Now`
//
// Lines without a want comment must produce no findings.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads every package under dir (testdata layout: one directory per
// package) and checks analyzer findings against want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Dir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, func(file string, line int, res []*regexp.Regexp) {
				wants[key{file, line}] = res
			})
		}
	}

	findings := analysis.Run(pkgs, analyzers)
	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, fd := range findings {
		k := key{fd.Pos.Filename, fd.Pos.Line}
		res := wants[k]
		ok := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(fd.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s: %s: %s", fd.Pos, fd.Rule, fd.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// collectWants parses `// want` trailing comments.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, add func(string, int, []*regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") && text != "want" {
				continue
			}
			pos := fset.Position(c.Pos())
			var res []*regexp.Regexp
			for _, m := range wantRE.FindAllStringSubmatch(text[4:], -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
				}
				res = append(res, re)
			}
			if len(res) == 0 {
				t.Fatalf("%s: want comment with no patterns", pos)
			}
			add(pos.Filename, pos.Line, res)
		}
	}
}

// CheckClean asserts the packages matching patterns in dir produce zero
// findings across the given analyzers.
func CheckClean(t *testing.T, dir string, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	findings := analysis.Run(pkgs, analyzers)
	for _, fd := range findings {
		t.Errorf("%s", fd)
	}
	if len(findings) > 0 {
		t.Errorf("%d repolint findings; the repo must be repolint-clean (fix or annotate with //repolint:allow <rule> <reason>)", len(findings))
	}
}
