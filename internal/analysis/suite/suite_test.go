package suite_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/suite"
)

// TestRepoIsRepolintClean is the meta-invariant: the module itself must
// stay clean under its own analyzers. Every new finding must be fixed
// or carry a //repolint:allow <rule> <reason> directive.
func TestRepoIsRepolintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check is slow; the CI lint job runs the same check via go vet -vettool")
	}
	analysistest.CheckClean(t, "../../..", suite.All(), "./...")
}
