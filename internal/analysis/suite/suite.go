// Package suite assembles the full repolint analyzer set so the
// cmd/repolint driver, the benchreport wall-time entry and the
// repo-cleanliness meta-test all run exactly the same rules.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errflow"
	"repro/internal/analysis/poolsafe"
	"repro/internal/analysis/simpure"
)

// All returns the repolint analyzers in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		poolsafe.Analyzer,
		simpure.Analyzer,
		errflow.Analyzer,
	}
}
