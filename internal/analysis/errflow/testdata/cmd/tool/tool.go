// Package tool sits in cmd/ scope: drivers report errors to the
// terminal on their own terms, so errflow does not bind.
package tool

import "storage/engine"

func run(e engine.Engine) {
	e.Apply(nil)
}
