// Package kvnode calls into the storage fixture: discarding any of
// those errors is a finding; propagating them is not.
package kvnode

import "storage/engine"

func apply(e engine.Engine, b []byte) {
	e.Apply(b)      // want `discarded error result`
	_ = e.Apply(b)  // want `assigned to _`
	defer e.Close() // want `discarded error deferred result`
}

func open(path string) *engine.WAL {
	w, _ := engine.Open(path) // want `assigned to _`
	return w
}

// Propagating the errors is the correct shape.
func applyChecked(e engine.Engine, b []byte) error {
	if err := e.Apply(b); err != nil {
		return err
	}
	return e.Close()
}

func localErr() error { return nil }

// Discarding a non-storage error is outside this analyzer's charter.
func fine() {
	localErr()
}
