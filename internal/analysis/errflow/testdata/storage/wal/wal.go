// Package wal sits in a storage segment, so the write-side file
// primitives become storage-critical too: a swallowed fsync error turns
// "crash loses the un-synced suffix" into "crash loses acked writes".
package wal

import "os"

func flush(f *os.File, b []byte) {
	f.Write(b)      // want `discarded error result of \(\*os\.File\)\.Write`
	defer f.Close() // want `discarded error deferred result of \(\*os\.File\)\.Close`
}

func sync(f *os.File) {
	_ = f.Sync() // want `error result of \(\*os\.File\)\.Sync assigned to _`
}

// Checked propagation is clean.
func flushChecked(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// A justified discard carries a directive with its reason.
func bestEffort(f *os.File) {
	f.Sync() //repolint:allow errflow best-effort readahead warm-up; durability is not promised here
}
