// Package engine is a storage-segment fixture: by path, every
// error-returning function and method here is storage-critical,
// including calls through the Engine interface.
package engine

import "errors"

type Engine interface {
	Apply(b []byte) error
	Close() error
}

type WAL struct{ sealed bool }

func (w *WAL) Append(b []byte) error {
	if w.sealed {
		return errors.New("append to sealed wal")
	}
	return nil
}

func (w *WAL) Sync() error { return nil }

func Open(path string) (*WAL, error) {
	if path == "" {
		return nil, errors.New("empty path")
	}
	return &WAL{}, nil
}
