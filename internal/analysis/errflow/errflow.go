// Package errflow checks that errors on the storage, WAL and
// snapshot-stream paths are propagated, not dropped.
//
// Consistent-prefix recovery is an error-flow property: the LSM engine
// recovers exactly the WAL prefix that was durably acked, which is only
// true if every append/sync/close error made it back to the caller
// that acked. A swallowed fsync error converts "crash loses the
// un-synced suffix" into "crash silently loses acked writes". The
// analyzer flags any statement that discards an error result —
// `eng.Apply(...)` as a bare statement, `_ =` in the error position, or
// a deferred call — when the callee is storage-critical:
//
//   - any function or method defined in a package with a "storage"
//     path segment (engines, WAL, snapshot codec), including calls
//     through the Engine interface;
//   - write-side file primitives ((*os.File).Write/Sync/Close/Truncate,
//     (*bufio.Writer).Write/Flush) when the caller itself is in a
//     storage or live package, where the file-backed WAL runs.
package errflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc: "flag discarded errors on storage/WAL/stream paths: consistent-prefix recovery " +
		"semantics depend on append/sync/close errors reaching the caller",
	Run: run,
}

func run(pass *analysis.Pass) {
	path := pass.Pkg.Path()
	if !analysis.ErrflowScope(path) {
		return
	}
	fileCritical := analysis.SegmentIn(path, "storage", "live")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				checkDiscard(pass, s.X, fileCritical, "result")
			case *ast.DeferStmt:
				checkDiscard(pass, s.Call, fileCritical, "deferred result")
			case *ast.GoStmt:
				checkDiscard(pass, s.Call, fileCritical, "result")
			case *ast.AssignStmt:
				checkBlankAssign(pass, s, fileCritical)
			}
			return true
		})
	}
}

// checkDiscard flags a call used as a bare statement when it returns an
// error from a storage-critical callee.
func checkDiscard(pass *analysis.Pass, e ast.Expr, fileCritical bool, what string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	_, _, hasErr := analysis.ResultError(pass.TypesInfo, call)
	if !hasErr {
		return
	}
	if name := criticalCallee(pass, call, fileCritical); name != "" {
		pass.Reportf(call.Pos(), "discarded error %s of %s: recovery semantics on this path depend on the error reaching the caller", what, name)
	}
}

// checkBlankAssign flags `_ = ...` (or `v, _ := ...`) where the blank
// swallows the error position of a storage-critical call.
func checkBlankAssign(pass *analysis.Pass, s *ast.AssignStmt, fileCritical bool) {
	// Only the single-call multi-assign form `a, _ := f()` and the
	// direct `_ = f()` can hide an error result.
	if len(s.Rhs) == 1 && len(s.Lhs) >= 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		errIdx, n, hasErr := analysis.ResultError(pass.TypesInfo, call)
		if !hasErr {
			return
		}
		var blankAt int = -1
		if n == 1 && len(s.Lhs) == 1 {
			blankAt = 0
		} else if len(s.Lhs) == n {
			blankAt = errIdx
		}
		if blankAt < 0 {
			return
		}
		if id, ok := s.Lhs[blankAt].(*ast.Ident); !ok || id.Name != "_" {
			return
		}
		if name := criticalCallee(pass, call, fileCritical); name != "" {
			pass.Reportf(s.Pos(), "error result of %s assigned to _: recovery semantics on this path depend on the error reaching the caller", name)
		}
		return
	}
	// a, b = f(), g(): per-position expressions, no tuple to hide in.
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if _, _, hasErr := analysis.ResultError(pass.TypesInfo, call); !hasErr {
			continue
		}
		if name := criticalCallee(pass, call, fileCritical); name != "" {
			pass.Reportf(s.Pos(), "error result of %s assigned to _: recovery semantics on this path depend on the error reaching the caller", name)
		}
	}
}

// criticalCallee classifies the call's static callee; it returns a
// display name when the callee is storage-critical, else "".
func criticalCallee(pass *analysis.Pass, call *ast.CallExpr, fileCritical bool) string {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	if analysis.SegmentIn(analysis.PkgPathOf(fn), "storage") {
		return fn.FullName()
	}
	if !fileCritical {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	rp, rn, m := named.Obj().Pkg().Path(), named.Obj().Name(), fn.Name()
	if rp == "os" && rn == "File" && (m == "Write" || m == "WriteString" || m == "Sync" || m == "Close" || m == "Truncate") {
		return fn.FullName()
	}
	if rp == "bufio" && rn == "Writer" && (m == "Write" || m == "Flush" || m == "WriteString") {
		return fn.FullName()
	}
	return ""
}
