package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, comment string) ([]directive, []Finding) {
	t.Helper()
	src := "package p\n\n" + comment + "\nvar X int\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var findings []Finding
	ds := parseDirectives(fset, f, func(fd Finding) { findings = append(findings, fd) })
	return ds, findings
}

func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment    string
		directives int
		finding    string // substring of the expected finding, "" for none
	}{
		{"//repolint:allow determinism boot stamp only", 1, ""},
		{"//repolint:allow determinism", 0, "requires a reason"},
		{"//repolint:allow", 0, "missing a rule name"},
		{"//repolint:nonsense", 0, "unrecognized repolint directive"},
		{"// an ordinary comment", 0, ""},
	}
	for _, tc := range cases {
		ds, findings := parseOne(t, tc.comment)
		if len(ds) != tc.directives {
			t.Errorf("%q: got %d directives, want %d", tc.comment, len(ds), tc.directives)
		}
		if tc.finding == "" {
			if len(findings) != 0 {
				t.Errorf("%q: unexpected findings %v", tc.comment, findings)
			}
			continue
		}
		if len(findings) != 1 || !strings.Contains(findings[0].Message, tc.finding) {
			t.Errorf("%q: got findings %v, want one containing %q", tc.comment, findings, tc.finding)
		}
	}
}

func TestDirectiveFields(t *testing.T) {
	ds, _ := parseOne(t, "//repolint:allow simpure live-only file WAL; the sim engine runs on memWAL")
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	if ds[0].rule != "simpure" {
		t.Errorf("rule = %q, want simpure", ds[0].rule)
	}
	if ds[0].reason != "live-only file WAL; the sim engine runs on memWAL" {
		t.Errorf("reason = %q", ds[0].reason)
	}
	if ds[0].line != 3 {
		t.Errorf("line = %d, want 3", ds[0].line)
	}
}

func TestAllowedLineCoverage(t *testing.T) {
	ds := []directive{{line: 10, rule: "determinism", reason: "r"}}
	for _, tc := range []struct {
		rule string
		line int
		want bool
	}{
		{"determinism", 10, true},  // trailing comment on the flagged line
		{"determinism", 11, true},  // comment on its own line above
		{"determinism", 12, false}, // two lines below is out of range
		{"determinism", 9, false},  // directives never reach upward
		{"simpure", 10, false},     // rule must match
	} {
		if got := allowed(ds, tc.rule, tc.line); got != tc.want {
			t.Errorf("allowed(%s, line %d) = %v, want %v", tc.rule, tc.line, got, tc.want)
		}
	}
}
