package core

import (
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// flipTuner alternates between two levels on every decision.
type flipTuner struct {
	n int
}

func (f *flipTuner) Name() string { return "flip" }
func (f *flipTuner) Decide(monitor.Snapshot) Decision {
	f.n++
	if f.n%2 == 1 {
		return Decision{ReadLevel: kv.One, WriteLevel: kv.One, Reason: "odd"}
	}
	return Decision{ReadLevel: kv.Quorum, WriteLevel: kv.One, Reason: "even"}
}

func newControllerHarness(t *testing.T, tuner Tuner, interval time.Duration) (*sim.Engine, *Controller, *kv.Cluster) {
	t.Helper()
	eng := sim.New(1)
	topo := netsim.SingleDC(3)
	tr := netsim.NewTransport(eng, topo)
	cfg := kv.DefaultConfig()
	cfg.HintReplayInterval = 0
	cfg.AntiEntropyInterval = 0
	cl := kv.New(topo, tr, cfg)
	mon := monitor.New(cl.RF(), tr, monitor.DefaultOptions())
	cl.AddHooks(mon.Hooks())
	ctl := NewController(mon, tuner, tr, interval)
	return eng, ctl, cl
}

func TestControllerTicksAndJournals(t *testing.T) {
	eng, ctl, _ := newControllerHarness(t, &flipTuner{}, 100*time.Millisecond)
	ctl.Start()
	eng.RunUntil(time.Second)
	ctl.Stop()
	j := ctl.Journal()
	if len(j) < 10 || len(j) > 12 {
		t.Errorf("journal entries = %d, want ≈11", len(j))
	}
	// Flip tuner changes level on every tick.
	if ctl.LevelChanges() < len(j)-1 {
		t.Errorf("level changes = %d over %d decisions", ctl.LevelChanges(), len(j))
	}
	for i := 1; i < len(j); i++ {
		if j[i].At-j[i-1].At != 100*time.Millisecond {
			t.Errorf("tick spacing %v", j[i].At-j[i-1].At)
		}
	}
}

func TestControllerStopHaltsTicks(t *testing.T) {
	eng, ctl, _ := newControllerHarness(t, StaticTuner{Read: kv.One, Write: kv.One}, 50*time.Millisecond)
	ctl.Start()
	eng.RunUntil(200 * time.Millisecond)
	ctl.Stop()
	n := len(ctl.Journal())
	eng.RunUntil(time.Second)
	if len(ctl.Journal()) > n+1 {
		t.Errorf("controller kept ticking after Stop: %d → %d", n, len(ctl.Journal()))
	}
}

func TestControllerStartIdempotent(t *testing.T) {
	eng, ctl, _ := newControllerHarness(t, StaticTuner{Read: kv.One, Write: kv.One}, 100*time.Millisecond)
	ctl.Start()
	ctl.Start()
	eng.RunUntil(350 * time.Millisecond)
	ctl.Stop()
	if n := len(ctl.Journal()); n > 5 {
		t.Errorf("double Start doubled ticks: %d", n)
	}
}

func TestAdaptiveSessionUsesCurrentLevels(t *testing.T) {
	eng, ctl, cl := newControllerHarness(t, &flipTuner{}, 100*time.Millisecond)
	var levels []kv.Level
	cl.AddHooks(&kv.Hooks{ReadCompleted: func(_ time.Duration, res kv.ReadResult) {
		levels = append(levels, res.Level)
	}})
	ctl.Start()
	sess := ctl.Session(cl)

	// One read per control period.
	for i := 0; i < 6; i++ {
		sess.Read("k", func(kv.ReadResult) {})
		eng.RunFor(100 * time.Millisecond)
	}
	ctl.Stop()
	eng.RunFor(time.Second)

	sawOne, sawQuorum := false, false
	for _, l := range levels {
		switch l {
		case kv.One:
			sawOne = true
		case kv.Quorum:
			sawQuorum = true
		}
	}
	if !sawOne || !sawQuorum {
		t.Errorf("adaptive session did not follow tuner flips: %v", levels)
	}
}

func TestStaticTuner(t *testing.T) {
	s := StaticTuner{Read: kv.Quorum, Write: kv.One}
	d := s.Decide(monitor.Snapshot{})
	if d.ReadLevel != kv.Quorum || d.WriteLevel != kv.One {
		t.Errorf("decision = %+v", d)
	}
	if s.Name() != "static-QUORUM/ONE" {
		t.Errorf("name = %s", s.Name())
	}
}

func TestBootstrapDecisionIsSafe(t *testing.T) {
	_, ctl, _ := newControllerHarness(t, StaticTuner{Read: kv.One, Write: kv.One}, time.Second)
	// Before Start, the posture must be the conservative bootstrap.
	if ctl.Current().ReadLevel != kv.Quorum {
		t.Errorf("bootstrap read level = %v", ctl.Current().ReadLevel)
	}
}
