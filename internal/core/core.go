// Package core is the adaptive consistency framework the paper's tuners
// plug into: a Tuner turns monitor snapshots into consistency-level
// decisions, and a Controller re-evaluates the tuner periodically and
// applies its decision to every operation of a session. Harmony
// (internal/harmony) and Bismar (internal/bismar) are Tuner
// implementations; static levels are wrapped by StaticTuner so the
// baselines run through the same machinery.
package core

import (
	"fmt"
	"time"

	"repro/internal/kv"
	"repro/internal/monitor"
)

// Clock is the scheduling surface controllers need.
type Clock interface {
	Now() time.Duration
	Schedule(d time.Duration, fn func())
}

// Decision is a tuner's output for one control period.
type Decision struct {
	ReadLevel  kv.Level
	WriteLevel kv.Level
	// EstimatedStaleRate is the tuner's own prediction of the stale-read
	// fraction under the chosen levels.
	EstimatedStaleRate float64
	// Efficiency is the consistency-cost efficiency of the chosen level
	// (Bismar); zero for tuners that do not price levels.
	Efficiency float64
	// Reason summarizes why the levels were chosen, for journals.
	Reason string
}

// Tuner decides consistency levels from monitoring snapshots.
type Tuner interface {
	// Name identifies the tuner in reports.
	Name() string
	// Decide inspects a snapshot and returns the levels to use until the
	// next control period.
	Decide(snap monitor.Snapshot) Decision
}

// StaticTuner pins fixed levels (the paper's static baselines).
type StaticTuner struct {
	Read  kv.Level
	Write kv.Level
}

// Name implements Tuner.
func (s StaticTuner) Name() string {
	return fmt.Sprintf("static-%v/%v", s.Read, s.Write)
}

// Decide implements Tuner.
func (s StaticTuner) Decide(monitor.Snapshot) Decision {
	return Decision{ReadLevel: s.Read, WriteLevel: s.Write, Reason: "static"}
}

// JournalEntry records one control decision with the snapshot highlights
// that led to it.
type JournalEntry struct {
	At        time.Duration
	Decision  Decision
	ReadRate  float64
	WriteRate float64
	Tp        time.Duration
}

// Controller periodically re-evaluates a tuner and exposes the current
// decision to adaptive sessions. Not safe for concurrent use; the engine
// serializes access.
type Controller struct {
	Monitor  *monitor.Monitor
	Tuner    Tuner
	Clock    Clock
	Interval time.Duration

	cur          Decision
	journal      []JournalEntry
	levelChanges int
	started      bool
	stopped      bool
}

// NewController wires a controller; interval ≤ 0 defaults to one second.
func NewController(mon *monitor.Monitor, tuner Tuner, clock Clock, interval time.Duration) *Controller {
	if interval <= 0 {
		interval = time.Second
	}
	return &Controller{
		Monitor:  mon,
		Tuner:    tuner,
		Clock:    clock,
		Interval: interval,
		// Before the first snapshot the safest posture is the strongest
		// level; the first control tick relaxes it as soon as evidence
		// arrives.
		cur: Decision{ReadLevel: kv.Quorum, WriteLevel: kv.One, Reason: "bootstrap"},
	}
}

// Start begins the control loop: an immediate evaluation, then one per
// interval.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	c.tick()
}

// Stop halts rescheduling after the next tick fires.
func (c *Controller) Stop() { c.stopped = true }

func (c *Controller) tick() {
	if c.stopped {
		return
	}
	snap := c.Monitor.Snapshot()
	d := c.Tuner.Decide(snap)
	if d.ReadLevel != c.cur.ReadLevel || d.WriteLevel != c.cur.WriteLevel {
		c.levelChanges++
	}
	c.cur = d
	c.journal = append(c.journal, JournalEntry{
		At:        snap.Now,
		Decision:  d,
		ReadRate:  snap.ReadRate,
		WriteRate: snap.WriteRate,
		Tp:        snap.PropagationTime(),
	})
	c.Clock.Schedule(c.Interval, c.tick)
}

// Current reports the decision in force.
func (c *Controller) Current() Decision { return c.cur }

// Journal returns the decision history.
func (c *Controller) Journal() []JournalEntry { return c.journal }

// LevelChanges reports how many times the decision changed.
func (c *Controller) LevelChanges() int { return c.levelChanges }

// Session returns a session that stamps every operation with the
// controller's current levels — the adaptive middleware of the paper.
func (c *Controller) Session(cluster *kv.Cluster) kv.Session {
	return adaptiveSession{ctl: c, cluster: cluster}
}

type adaptiveSession struct {
	ctl     *Controller
	cluster *kv.Cluster
}

// Read implements kv.Session with the current adaptive read level. A
// hot key carrying its own tuned level (kv.SetHotKeyLevel, the per-key
// Harmony path) overrides the global decision for exactly that key.
func (s adaptiveSession) Read(key string, cb func(kv.ReadResult)) {
	lvl := s.ctl.cur.ReadLevel
	if hot, ok := s.cluster.HotReadLevel(key); ok {
		lvl = hot
	}
	s.cluster.Read(key, lvl, cb)
}

// Write implements kv.Session with the current adaptive write level.
func (s adaptiveSession) Write(key string, value []byte, cb func(kv.WriteResult)) {
	s.cluster.Write(key, value, s.ctl.cur.WriteLevel, cb)
}

// Delete implements kv.Session: a tombstone write at the current
// adaptive write level.
func (s adaptiveSession) Delete(key string, cb func(kv.WriteResult)) {
	s.cluster.Delete(key, s.ctl.cur.WriteLevel, cb)
}

// BatchRead implements kv.Session: the whole batch is stamped with the
// read level in force at issue time.
func (s adaptiveSession) BatchRead(keys []string, cb func([]kv.ReadResult)) {
	s.cluster.ReadBatch(keys, s.ctl.cur.ReadLevel, cb)
}

// BatchWrite implements kv.Session: the whole batch is stamped with the
// write level in force at issue time.
func (s adaptiveSession) BatchWrite(ops []kv.BatchOp, cb func([]kv.WriteResult)) {
	s.cluster.WriteBatch(ops, s.ctl.cur.WriteLevel, cb)
}
